/* Tiled matrix multiplication with a boundary clamp on the output row —
 * the NVIDIA-SDK guard idiom. The clamp is a divergent-but-pure diamond
 * (both arms side-effect-free, reconverging at the immediate
 * postdominator), so the lane compiler must if-convert it and keep the
 * kernel on the masked wg-vec path instead of falling back to the
 * scalar sweep. check.sh gates the report verdict. */
#define TS 16
__kernel void matmul(__global float *C, __global const float *A,
                     __global const float *B, int N, int K) {
  __local float As[TS][TS];
  __local float Bs[TS][TS];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  int row = gy;
  if (row >= N) row = N - 1;
  float acc = 0.0f;
  for (int t = 0; t < K / TS; t++) {
    As[ly][lx] = A[gy * K + t * TS + lx];
    Bs[ly][lx] = B[(t * TS + ly) * N + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TS; k++) {
      acc += As[ly][k] * Bs[k][lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[row * N + gx] = acc;
}
