/* Negative test: the staging store runs one element past the declared
   extent of the local tile (work-item 15 writes tmp[16] of tmp[0..15]).

   Expected findings (groverc report / sanitize --local 16):
     static:  GRV-OOB-STATIC  (bounds-check)
     dynamic: GRV-SAN-OOB     (sanitize; the access aborts the launch)   */
__kernel void oob_index(__global float *out, __global const float *in) {
  __local float tmp[16];
  int lx = get_local_id(0);
  tmp[lx + 1] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = tmp[lx];
}
