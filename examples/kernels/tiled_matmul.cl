/* Tiled matrix multiply: both operand tiles are staged in local memory
   (the classic software-cache pattern Grover undoes). Used by check.sh as
   a --verify-each smoke test for the full transform pipeline. */
#define T 8
__kernel void tiled_matmul(__global float *C, __global const float *A,
                           __global const float *B, int N) {
  __local float Asub[T][T];
  __local float Bsub[T][T];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  float acc = 0.0f;
  for (int t = 0; t < N / T; t++) {
    Asub[ly][lx] = A[gy * N + t * T + lx];
    Bsub[ly][lx] = B[(t * T + ly) * N + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < T; k++) {
      acc = acc + Asub[ly][k] * Bsub[k][lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[gy * N + gx] = acc;
}
