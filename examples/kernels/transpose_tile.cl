/* Matrix transpose through a local tile, so both the global read and the
   global write stay row-contiguous (the paper's Fig. 1 motivation). */
#define S 16
__kernel void transpose_tile(__global float *out, __global const float *in,
                             int W, int H) {
  __local float tile[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  tile[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(1) * H + get_global_id(0)] = tile[lx][ly];
}
