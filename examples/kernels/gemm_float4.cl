/* tinygrad-style float4-accumulator GEMM: each work-item produces one
 * float4 of C = A * B. The A tile is staged in local memory (scalar
 * floats, reused across the 4 lanes of every B column vector); B is read
 * directly as float4. C is M x N4 float4s, A is M x K floats, B is
 * K x N4 float4s. Launch: global (N4, M), local (TS, TS). */
#define TS 16
__kernel void gemm4(__global float4 *C, __global const float *A,
                    __global const float4 *B, int N4, int K) {
  __local float As[TS][TS];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0); /* float4 column of C */
  int gy = get_global_id(1); /* row of C */
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int t = 0; t < K / TS; t++) {
    As[ly][lx] = A[gy * K + t * TS + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TS; k++) {
      acc = acc + As[ly][k] * B[(t * TS + k) * N4 + gx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[gy * N4 + gx] = acc;
}
