/* Negative test: the barrier sits under a work-item-dependent branch, so
   half the work-group waits at a barrier the other half never reaches —
   undefined behaviour in OpenCL, a hang on real hardware.

   Expected findings (groverc report / sanitize --local 16):
     static:  GRV-BARRIER-DIV  (barrier-check)
     dynamic: GRV-SAN-DIV      (launch aborts with barrier divergence)   */
__kernel void divergent_barrier(__global float *out, __global const float *in) {
  __local float tmp[16];
  int lx = get_local_id(0);
  tmp[lx] = in[lx];
  if (lx < 8) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[lx] = tmp[15 - lx];
}
