/* Negative test: every work-item of the group stores to the same __local
   element with no reduction protocol — a write/write data race.

   Expected findings (groverc report / sanitize --local 16):
     static:  GRV-RACE-MUST  (race-check)
     dynamic: GRV-SAN-WW     (sanitize)                                  */
__kernel void racy_store(__global float *out, __global const float *in) {
  __local float acc[16];
  int lx = get_local_id(0);
  acc[0] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = acc[0];
}
