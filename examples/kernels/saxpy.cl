/* No local memory at all: exercises the pipeline (and --verify-each) on a
   kernel where Grover has no candidates and must change nothing. */
__kernel void saxpy(__global float *y, __global const float *x, float a,
                    int n) {
  int i = get_global_id(0);
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
