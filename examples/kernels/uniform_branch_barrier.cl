/* Positive companion of bad_divergent_barrier.cl: this barrier also sits
   under a branch, but the condition is *group-uniform* (every work-item
   of a group computes the same group id), so all work-items of a group
   agree on reaching it — well-defined OpenCL, and the region verifier
   must not reject it. Guards against over-conservative barrier-region
   formation: a barrier under uniform control still qualifies for the
   wg-loop execution path.

   Expected: groverc report shows "execution path (with local memory):
   wg-loop"; groverc sanitize --local 16 is clean.                       */
__kernel void uniform_branch_barrier(__global float *out,
                                     __global const float *in) {
  __local float tile[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  if (get_group_id(0) % 2 == 0) {
    tile[l] = in[g] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[g] = tile[15 - l];
  } else {
    out[g] = in[g];
  }
}
