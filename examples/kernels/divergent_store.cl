/* A store under divergent control: each work-item conditionally writes
 * its own __local slot. Legal (race-free, uniform barriers) but not
 * maskable — masking never executes side effects for inactive lanes, so
 * the region must keep its scalar-sweep verdict, with the offending
 * store's source location in the bail reason. check.sh gates the
 * report verdict string. */
__kernel void scatter_guard(__global int *out, __global const int *in,
                            int n) {
  __local int tmp[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int v = in[g];
  tmp[l] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  if (v > n) { tmp[l] = v; }
  barrier(CLK_LOCAL_MEM_FENCE);
  out[g] = tmp[l];
}
