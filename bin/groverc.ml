(* groverc — the Grover compiler driver.

   Reads an OpenCL C kernel file, disables local memory usage (paper Fig. 9
   pipeline) and prints the analysis report and the transformed IR.

     groverc transform kernel.cl
     groverc transform kernel.cl --only As --define S=16
     groverc report kernel.cl
     groverc autotune NVD-MT --platform SNB
     groverc passes                       (list the registered passes)
     groverc pipeline kernel.cl --passes=canon,mem2reg,dce --time-passes
     groverc -passes=canon,mem2reg,simplify,cse,dce --time-passes --verify-each
       (no subcommand: runs the pass pipeline over all bundled suite kernels)

   All commands accept --diag-format=json to emit machine-readable
   diagnostics and pass statistics for the bench/autotune layer. *)

open Cmdliner
module Diag = Grover_support.Diag
module Pass = Grover_passes.Pass

(* Referencing the Grover pass forces Grover_core to link, which registers
   "grover" in the pass registry for -passes= pipelines; likewise the
   analysis passes (barrier-check, race-check, bounds-check, analyze). *)
let grover_pass = Grover_core.Grover.pass
let analyze_pass = Grover_analysis.Analysis.analyze_pass

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_defines defs =
  List.map
    (fun d ->
      match String.index_opt d '=' with
      | Some i ->
          (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
      | None -> (d, "1"))
    defs

(* -- Diagnostics and instrumentation flags (shared by the commands) ---------- *)

type diag_format = Text | Json

let diag_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "diag-format" ] ~docv:"FMT"
        ~doc:"Diagnostic output format: $(b,text) (file:line:col: severity: \
              message, on stderr) or $(b,json) (one JSON object per line, on \
              stdout).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"LIST"
        ~doc:
          "Comma-separated pass pipeline to run instead of the default (see \
           $(b,groverc passes) for the registry). Also accepted as \
           $(b,-passes=LIST).")

let time_passes_arg =
  Arg.(
    value & flag
    & info [ "time-passes" ]
        ~doc:"Print an aggregated per-pass timing table (wall-clock time, \
              instruction-count delta, changed/unchanged).")

let print_changed_arg =
  Arg.(
    value & flag
    & info [ "print-changed" ]
        ~doc:"Print the IR after every pass that changed it.")

let verify_each_arg =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:"Re-run the IR verifier after every pass and fail on the first \
              pass that breaks the IR.")

(* "X", "X,Y" or "X,Y,Z" -> a work-size triple (missing dimensions are 1). *)
let size_conv : (int * int * int) Arg.conv =
  let parse s =
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let dims = List.map int_of_string_opt parts in
    if List.exists (fun d -> match d with Some d -> d <= 0 | None -> true) dims
    then Error (`Msg (Printf.sprintf "invalid work size %S (want X[,Y[,Z]])" s))
    else
      match List.filter_map Fun.id dims with
      | [ x ] -> Ok (x, 1, 1)
      | [ x; y ] -> Ok (x, y, 1)
      | [ x; y; z ] -> Ok (x, y, z)
      | _ -> Error (`Msg (Printf.sprintf "invalid work size %S (want X[,Y[,Z]])" s))
  in
  let print ppf (x, y, z) = Format.fprintf ppf "%d,%d,%d" x y z in
  Arg.conv (parse, print)

let local_arg =
  Arg.(
    value
    & opt (some size_conv) None
    & info [ "local" ] ~docv:"X[,Y[,Z]]"
        ~doc:
          "Work-group size the kernel is launched with. The static analyses \
           assume 16 per thread-indexed dimension when not given.")

let emit_diag fmt ?file (d : Diag.t) : unit =
  match fmt with
  | Text -> prerr_endline (Diag.to_string ?file d)
  | Json -> print_endline (Diag.to_json ?file d)

let emit_diags fmt ?file ds = List.iter (emit_diag fmt ?file) ds

let emit_timing fmt (c : Pass.ctx) : unit =
  match fmt with
  | Text ->
      print_string "=== pass timing ===\n";
      print_string (Pass.timing_table c)
  | Json -> List.iter print_endline (Pass.stats_json c)

(** Run [f]; on a front-end / verifier / internal error print one located
    diagnostic in the requested format and exit 1 (never a backtrace). *)
let guarded fmt ?file (f : unit -> unit) : unit Term.ret =
  try
    f ();
    `Ok ()
  with
  | Grover_clc.Loc.Error (l, m) ->
      emit_diag fmt ?file (Diag.of_loc_error l m);
      exit 1
  | Diag.Fatal d ->
      emit_diag fmt ?file d;
      exit 1
  | Grover_ir.Verify.Invalid_ir m ->
      emit_diag fmt ?file (Diag.errorf ~pass:"verify" "invalid IR: %s" m);
      exit 1
  | Grover_ir.Emit_c.Unstructured m ->
      emit_diag fmt ?file (Diag.errorf ~pass:"emit-c" "cannot emit OpenCL C: %s" m);
      exit 1

let parse_pipeline fmt ?file (spec : string) : Pass.t list =
  match Pass.parse spec with
  | Ok ps -> ps
  | Error d ->
      emit_diag fmt ?file d;
      exit 1

let mk_ctx ~verify_each ~print_changed () =
  Pass.ctx ~verify_each ~print_changed ~print:print_string ()

(* After everything ran: surface collected diagnostics and timing, and fail
   if anything reached error severity. *)
let finish fmt ?file ~time_passes (c : Pass.ctx) : unit =
  emit_diags fmt ?file (Pass.diags c);
  if time_passes then emit_timing fmt c;
  if Pass.errors c <> [] then exit 1

(* -- transform ---------------------------------------------------------------- *)

let transform_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"NAME"
          ~doc:"Restrict the transformation to the named local buffer(s).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let show_before =
    Arg.(
      value & flag
      & info [ "show-before" ] ~doc:"Also print the IR before the pass.")
  in
  let emit_c =
    Arg.(
      value & flag
      & info [ "emit-c" ]
          ~doc:
            "Print the transformed kernel as OpenCL C source (for a vendor \
             runtime) instead of IR.")
  in
  let run file only defines show_before emit_c passes time_passes print_changed
      verify_each fmt =
    let src = read_file file in
    let defines = parse_defines defines in
    let only = if only = [] then None else Some only in
    let custom =
      Option.map (fun spec -> parse_pipeline fmt ~file spec) passes
    in
    guarded fmt ~file (fun () ->
        let ctx = mk_ctx ~verify_each ~print_changed () in
        let fns = Grover_ir.Lower.compile ~defines src in
        List.iter
          (fun fn ->
            (match custom with
            | Some ps -> ignore (Pass.run_pipeline ctx ps fn)
            | None -> Grover_passes.Pipeline.normalize ~ctx fn);
            if show_before then begin
              Printf.printf "; === %s (with local memory) ===\n"
                fn.Grover_ir.Ssa.f_name;
              print_string (Grover_ir.Printer.func_to_string fn)
            end;
            (* With a custom pipeline the user decides where (and whether)
               Grover runs; the default path runs it after normalisation. *)
            (match custom with
            | Some _ -> ()
            | None ->
                let o = Grover_core.Grover.run ?only ~ctx fn in
                List.iter
                  (fun e -> print_endline (Grover_core.Report.to_string e))
                  o.Grover_core.Grover.reports;
                List.iter
                  (fun (n, r) -> Printf.printf "; rejected %s: %s\n" n r)
                  o.Grover_core.Grover.rejected;
                Printf.printf "; === %s (local memory disabled: %s) ===\n"
                  fn.Grover_ir.Ssa.f_name
                  (if o.Grover_core.Grover.transformed = [] then "nothing to do"
                   else String.concat ", " o.Grover_core.Grover.transformed));
            if emit_c then print_string (Grover_ir.Emit_c.kernel_to_c fn)
            else print_string (Grover_ir.Printer.func_to_string fn))
          fns;
        finish fmt ~file ~time_passes ctx)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Disable local memory usage in an OpenCL kernel file.")
    Term.(
      ret
        (const run $ file $ only $ defines $ show_before $ emit_c $ passes_arg
       $ time_passes_arg $ print_changed_arg $ verify_each_arg
       $ diag_format_arg))

(* -- report -------------------------------------------------------------------- *)

(* The execution path the compiled engine would pick for [fn] — the same
   policy as [Runtime.plan] with no overrides. The kernel is compiled (so
   lane-batchability reflects what the lane compiler actually accepted,
   not just the static region verdict) but nothing is executed. *)
let path_line (fn : Grover_ir.Ssa.func) : string =
  let v = Grover_ir.Regions.form fn in
  let c = Grover_ocl.Interp.prepare ~engine:Grover_ocl.Interp.Compiled fn in
  let path =
    if not c.Grover_ocl.Interp.has_barrier then "fiberless"
    else if Grover_ocl.Runtime.wgvec_capable c then
      Printf.sprintf "wg-vec, %d lanes" (Grover_ocl.Interp.lane_width_of c)
    else if Grover_ocl.Runtime.wg_capable c then "wg-loop"
    else "fiber"
  in
  Printf.sprintf "%s (%s)" path (Grover_ir.Regions.describe v)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let run file defines local fmt =
    let src = read_file file in
    let defines = parse_defines defines in
    guarded fmt ~file (fun () ->
        let saw_error = ref false in
        let fns = Grover_ir.Lower.compile ~defines src in
        List.iter
          (fun fn ->
            Grover_passes.Pipeline.normalize fn;
            (* The legality verdict describes the *original* kernel, so the
               static analyses run before Grover rewrites the locals away. *)
            let actx = mk_ctx ~verify_each:false ~print_changed:false () in
            Grover_analysis.Analysis.analyze ?local_size:local actx fn;
            let legality =
              Grover_analysis.Analysis.legality (Pass.diags actx)
            in
            (* [Grover.run] mutates [fn] into the without_lm version, so
               the original's execution path must be derived first. *)
            let with_lm_path = path_line fn in
            let o = Grover_core.Grover.run fn in
            let without_lm_path = path_line fn in
            Printf.printf "kernel %s:\n" fn.Grover_ir.Ssa.f_name;
            List.iter
              (fun e -> print_endline (Grover_core.Report.to_string e))
              o.Grover_core.Grover.reports;
            List.iter
              (fun (n, r) -> Printf.printf "  rejected %s: %s\n" n r)
              o.Grover_core.Grover.rejected;
            Printf.printf "  legality: %s\n" legality;
            Printf.printf "  execution path (with local memory): %s\n"
              with_lm_path;
            Printf.printf "  execution path (local memory disabled): %s\n"
              without_lm_path;
            emit_diags fmt ~file (Pass.diags actx);
            if Pass.errors actx <> [] then saw_error := true)
          fns;
        if !saw_error then exit 1)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Print the GL/LS/LL/nGL index analysis and the static legality \
          verdict (barrier-check, race-check, bounds-check) without \
          transforming.")
    Term.(ret (const run $ file $ defines $ local_arg $ diag_format_arg))

(* -- sanitize ------------------------------------------------------------------- *)

(* Run the static passes on a normalised kernel; returns true if they
   reached error severity. Diagnostics are emitted immediately. *)
let static_half fmt ?file ~local (fn : Grover_ir.Ssa.func) : bool =
  let actx = mk_ctx ~verify_each:false ~print_changed:false () in
  Grover_analysis.Analysis.analyze ?local_size:local actx fn;
  emit_diags fmt ?file (Pass.diags actx);
  Pass.errors actx <> []

(* Sanitize a kernel file by synthesizing a launch: one work-group (races
   are intra-group), every pointer argument bound to a fresh buffer with
   deterministic contents, scalar arguments from --arg or defaults. *)
let sanitize_file fmt ~(file : string) ~(kernel : string option)
    ~(global : (int * int * int) option) ~(local : (int * int * int) option)
    ~(elems : int option) ~(scalars : (string * float) list)
    ~(defines : (string * string) list) : bool =
  let module Ssa = Grover_ir.Ssa in
  let src = read_file file in
  let fns = Grover_ir.Lower.compile ~defines src in
  let fn =
    match kernel with
    | Some k -> (
        match List.find_opt (fun f -> f.Ssa.f_name = k) fns with
        | Some f -> f
        | None ->
            emit_diag fmt ~file (Diag.errorf "kernel %s not found in %s" k file);
            exit 1)
    | None -> (
        match fns with
        | f :: _ -> f
        | [] ->
            emit_diag fmt ~file (Diag.errorf "no kernels in %s" file);
            exit 1)
  in
  Grover_passes.Pipeline.normalize fn;
  let static_errors = static_half fmt ~file ~local fn in
  let local =
    match local with
    | Some l -> l
    | None -> fst (Grover_analysis.Config.box_for fn)
  in
  let global = Option.value global ~default:local in
  let gx, gy, gz = global in
  let elems = match elems with Some n -> n | None -> max 64 (4 * gx * gy * gz) in
  let mem = Grover_ocl.Memory.create () in
  let args =
    List.map
      (fun (a : Ssa.arg) ->
        match a.Ssa.a_ty with
        | Ssa.Ptr (_, elem_ty) ->
            let buf =
              Grover_ocl.Memory.alloc mem ~name:a.Ssa.a_name elem_ty elems
            in
            if Ssa.ty_is_float elem_ty then
              Grover_ocl.Memory.fill_floats buf (fun i ->
                  float_of_int (i mod 17) *. 0.25)
            else Grover_ocl.Memory.fill_ints buf (fun i -> i mod 13);
            Grover_ocl.Runtime.Abuf buf
        | t when Ssa.ty_is_integer t ->
            Grover_ocl.Runtime.Aint
              (match List.assoc_opt a.Ssa.a_name scalars with
              | Some v -> int_of_float v
              | None -> gx)
        | _ ->
            Grover_ocl.Runtime.Afloat
              (Option.value (List.assoc_opt a.Ssa.a_name scalars) ~default:1.0))
      fn.Ssa.f_args
  in
  let compiled = Grover_ocl.Interp.prepare fn in
  let cfg = { Grover_ocl.Runtime.global; local; queues = 1 } in
  let dyn =
    try
      let _totals, findings =
        Grover_ocl.Runtime.run_sanitized compiled ~cfg ~args ~mem ()
      in
      List.map (Grover_ocl.Sanitize.to_diag ~file) findings
    with Grover_ocl.Runtime.Launch_error m ->
      [ Diag.errorf ~file ~pass:"sanitize" ~code:"GRV-SAN-DIV" "%s" m ]
  in
  emit_diags fmt dyn;
  Printf.printf "%s: %s\n" fn.Ssa.f_name
    (match List.length dyn with
    | 0 -> "sanitizer clean"
    | 1 -> "1 sanitizer finding"
    | n -> Printf.sprintf "%d sanitizer findings" n);
  static_errors || dyn <> []

(* Sanitize a bundled benchmark: its real workload, geometry and output
   validation, via the suite harness. *)
let sanitize_case fmt (case : Grover_suite.Kit.case) ~(scale : int) : bool =
  let r =
    Grover_suite.Harness.sanitize_run ~scale case Grover_suite.Harness.With_lm
  in
  let static_errors =
    static_half fmt ~local:(Some r.Grover_suite.Harness.sz_local)
      r.Grover_suite.Harness.sz_fn
  in
  let dyn =
    List.map
      (fun f -> Grover_ocl.Sanitize.to_diag f)
      r.Grover_suite.Harness.sz_findings
  in
  emit_diags fmt dyn;
  let check_failed =
    match r.Grover_suite.Harness.sz_check with
    | Ok () -> false
    | Error m ->
        emit_diag fmt
          (Diag.errorf ~pass:"sanitize" "sanitized run produced wrong output: %s"
             m);
        true
  in
  Printf.printf "%-11s %s\n" case.Grover_suite.Kit.id
    (match List.length dyn with
    | 0 -> "sanitizer clean"
    | 1 -> "1 sanitizer finding"
    | n -> Printf.sprintf "%d sanitizer findings" n);
  static_errors || dyn <> [] || check_failed

let sanitize_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel file, a bundled benchmark id (see $(b,groverc list)) or \
             $(b,all) for the whole suite.")
  in
  let kernel =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel" ] ~docv:"NAME"
          ~doc:"Kernel to launch (file targets; default: the first one).")
  in
  let global =
    Arg.(
      value
      & opt (some size_conv) None
      & info [ "global" ] ~docv:"X[,Y[,Z]]"
          ~doc:"Global work size (file targets; default: one work-group).")
  in
  let elems =
    Arg.(
      value
      & opt (some int) None
      & info [ "elems" ] ~docv:"N"
          ~doc:
            "Elements per synthesized buffer argument (file targets; default: \
             4x the global work size).")
  in
  let scalars =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "arg" ] ~docv:"NAME=VALUE"
          ~doc:
            "Value for a scalar kernel argument (file targets; default: the \
             x-extent of the global size for ints, 1.0 for floats).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition (file targets only).")
  in
  let scale =
    Arg.(
      value & opt int 4
      & info [ "scale" ]
          ~doc:"Problem-size divisor (benchmark targets only).")
  in
  let run target kernel global local elems scalars defines scale fmt =
    ignore analyze_pass;
    let defines = parse_defines defines in
    guarded fmt (fun () ->
        let failed =
          try
            if Sys.file_exists target then
              sanitize_file fmt ~file:target ~kernel ~global ~local ~elems
                ~scalars ~defines
            else if String.lowercase_ascii target = "all" then
              List.fold_left
                (fun acc c -> sanitize_case fmt c ~scale || acc)
                false Grover_suite.Suite.all
            else
              match Grover_suite.Suite.by_id target with
              | Some c -> sanitize_case fmt c ~scale
              | None ->
                  emit_diag fmt
                    (Diag.errorf
                       "unknown sanitize target %s (expected a kernel file, a \
                        benchmark id or \"all\")"
                       target);
                  exit 1
          with Grover_suite.Harness.Harness_error m ->
            emit_diag fmt (Diag.errorf ~pass:"sanitize" "%s" m);
            true
        in
        if failed then exit 1)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Execute a kernel under the dynamic race/out-of-bounds sanitizer \
          (shadow memory with per-work-item last-accessor metadata), after \
          running the static legality passes. Exits 1 on any finding.")
    Term.(
      ret
        (const run $ target $ kernel $ global $ local_arg $ elems $ scalars
       $ defines $ scale $ diag_format_arg))

(* -- pipeline (also the default command) --------------------------------------- *)

(* What to run the pipeline over: a kernel file on disk, a bundled
   benchmark id, or "all" = every case of the paper's Table I suite. *)
let pipeline_targets fmt (target : string) (defines : (string * string) list) :
    (string * string option * (string * string) list * string) list =
  (* (display name, file, defines, source) *)
  if Sys.file_exists target then
    [ (target, Some target, defines, read_file target) ]
  else if String.lowercase_ascii target = "all" then
    List.map
      (fun (c : Grover_suite.Kit.case) ->
        (c.Grover_suite.Kit.id, None, c.Grover_suite.Kit.defines,
         c.Grover_suite.Kit.source))
      Grover_suite.Suite.all
  else
    match Grover_suite.Suite.by_id target with
    | Some c ->
        [ (c.Grover_suite.Kit.id, None, c.Grover_suite.Kit.defines,
           c.Grover_suite.Kit.source) ]
    | None ->
        emit_diag fmt
          (Diag.errorf
             "unknown pipeline target %s (expected a kernel file, a \
              benchmark id or \"all\"); try: %s"
             target
             (String.concat ", "
                (List.map
                   (fun c -> c.Grover_suite.Kit.id)
                   Grover_suite.Suite.all)));
        exit 1

let pipeline_term =
  let target =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel file, a bundled benchmark id (see $(b,groverc list)) or \
             $(b,all) for the whole suite.")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition (file targets only).")
  in
  let run target defines passes time_passes print_changed verify_each fmt =
    ignore grover_pass;
    let defines = parse_defines defines in
    let ps =
      match passes with
      | Some spec -> parse_pipeline fmt spec
      | None -> [ Grover_passes.Pipeline.normalize_pass ]
    in
    let ctx = mk_ctx ~verify_each ~print_changed () in
    let targets = pipeline_targets fmt target defines in
    guarded fmt (fun () ->
        List.iter
          (fun (name, file, defines, src) ->
            let fns =
              try Grover_ir.Lower.compile ~defines src
              with Grover_clc.Loc.Error (l, m) ->
                emit_diag fmt ?file
                  (Diag.of_loc_error ?file:(Some (Option.value ~default:name file)) l m);
                exit 1
            in
            List.iter
              (fun fn ->
                let before = Pass.instr_count fn in
                let changed = Pass.run_pipeline ctx ps fn in
                Printf.printf "%-12s %-24s %4d -> %4d instrs  %s\n" name
                  fn.Grover_ir.Ssa.f_name before (Pass.instr_count fn)
                  (if changed then "changed" else "unchanged"))
              fns)
          targets;
        finish fmt ~time_passes ctx)
  in
  Term.(
    ret
      (const run $ target $ defines $ passes_arg $ time_passes_arg
     $ print_changed_arg $ verify_each_arg $ diag_format_arg))

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run a pass pipeline (default: normalize) over a kernel file, a \
          bundled benchmark or the whole suite, with per-pass diagnostics \
          and timing. This is also the default command: \
          $(b,groverc -passes=... --time-passes) runs over the whole suite.")
    pipeline_term

(* -- passes --------------------------------------------------------------------- *)

let passes_cmd =
  let run () =
    ignore grover_pass;
    List.iter
      (fun p -> Printf.printf "%-14s %s\n" (Pass.name p) (Pass.descr p))
      (Pass.all ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "passes" ~doc:"List the registered passes and combinators.")
    Term.(ret (const run $ const ()))

(* -- autotune ------------------------------------------------------------------- *)

let autotune_cmd =
  let bench =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:"A bundled benchmark id (e.g. NVD-MT; see groverc list).")
  in
  let platform =
    Arg.(
      value & opt string "SNB"
      & info [ "platform" ] ~docv:"NAME"
          ~doc:"Simulated platform: Fermi, Kepler, Tahiti, SNB, Nehalem, MIC.")
  in
  let scale =
    Arg.(value & opt int 2 & info [ "scale" ] ~doc:"Problem-size divisor.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Also measure host wall-clock throughput of both versions on $(docv) \
             OCaml domains (0 = recommended domain count). The simulated timing \
             above is unaffected.")
  in
  let run bench platform scale domains =
    match
      ( Grover_suite.Suite.by_id bench,
        Grover_memsim.Platform.by_name platform )
    with
    | None, _ ->
        `Error
          ( false,
            Printf.sprintf "unknown benchmark %s; try: %s" bench
              (String.concat ", "
                 (List.map
                    (fun c -> c.Grover_suite.Kit.id)
                    Grover_suite.Suite.all)) )
    | _, None -> `Error (false, "unknown platform " ^ platform)
    | Some case, Some plat ->
        let cmp = Grover_suite.Harness.compare case ~platform:plat ~scale in
        Printf.printf "%s on %s:\n" cmp.Grover_suite.Harness.case_id platform;
        Printf.printf "  with local memory:    %.3f ms [%s path]\n"
          (cmp.Grover_suite.Harness.with_lm.Grover_suite.Harness.seconds *. 1e3)
          cmp.Grover_suite.Harness.with_lm.Grover_suite.Harness.path;
        Printf.printf "  without local memory: %.3f ms [%s path]\n"
          (cmp.Grover_suite.Harness.without_lm.Grover_suite.Harness.seconds *. 1e3)
          cmp.Grover_suite.Harness.without_lm.Grover_suite.Harness.path;
        Printf.printf "  normalized perf:      %.2f -> keep the version %s\n"
          cmp.Grover_suite.Harness.normalized
          (if cmp.Grover_suite.Harness.normalized > 1.0 then
             "WITHOUT local memory"
           else "WITH local memory");
        if domains <> 1 then begin
          Printf.printf "host throughput (%s domain%s requested):\n"
            (if domains = 0 then "auto" else string_of_int domains)
            (if domains = 1 then "" else "s");
          List.iter
            (fun (label, v) ->
              let r = Grover_suite.Harness.wallclock ~domains case v ~scale in
              Printf.printf
                "  %-21s %.3f ms, %.0f work-items/sec [%s path, %d pool \
                 domain%s]\n"
                label
                (r.Grover_suite.Harness.wc_seconds *. 1e3)
                (float_of_int r.Grover_suite.Harness.wc_items
                /. r.Grover_suite.Harness.wc_seconds)
                r.Grover_suite.Harness.wc_path
                r.Grover_suite.Harness.wc_domains
                (if r.Grover_suite.Harness.wc_domains = 1 then "" else "s"))
            [ ("with local memory:", Grover_suite.Harness.With_lm);
              ("without local memory:", Grover_suite.Harness.Without_lm) ]
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Run a bundled benchmark with and without local memory on a \
          simulated platform and pick the faster version.")
    Term.(ret (const run $ bench $ platform $ scale $ domains))

(* -- list ----------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (c : Grover_suite.Kit.case) ->
        Printf.printf "%-11s %-30s %s\n" c.Grover_suite.Kit.id
          c.Grover_suite.Kit.origin c.Grover_suite.Kit.description)
      Grover_suite.Suite.all;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled benchmarks.")
    Term.(ret (const run $ const ()))

(* -- main ----------------------------------------------------------------------- *)

(* LLVM-style single-dash spelling: -passes=... is rewritten to the
   cmdliner-standard --passes=... before parsing. *)
let argv =
  Array.map
    (fun a ->
      if String.length a >= 7
         && String.sub a 0 7 = "-passes"
         && not (String.length a >= 8 && String.sub a 0 8 = "--passes")
      then "-" ^ a
      else a)
    Sys.argv

let () =
  let info =
    Cmd.info "groverc" ~version:"1.0.0"
      ~doc:"Disable local memory usage in OpenCL kernels (Grover, ICPP 2014)."
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info ~default:pipeline_term
          [ transform_cmd; report_cmd; sanitize_cmd; pipeline_cmd; passes_cmd;
            autotune_cmd; list_cmd ]))
