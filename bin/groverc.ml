(* groverc — the Grover compiler driver.

   Reads an OpenCL C kernel file, disables local memory usage (paper Fig. 9
   pipeline) and prints the analysis report and the transformed IR.

     groverc transform kernel.cl
     groverc transform kernel.cl --only As --define S=16
     groverc report kernel.cl
     groverc autotune NVD-MT --platform SNB
     groverc passes                       (list the registered passes)
     groverc pipeline kernel.cl --passes=canon,mem2reg,dce --time-passes
     groverc -passes=canon,mem2reg,simplify,cse,dce --time-passes --verify-each
       (no subcommand: runs the pass pipeline over all bundled suite kernels)

   All commands accept --diag-format=json to emit machine-readable
   diagnostics and pass statistics for the bench/autotune layer. *)

open Cmdliner
module Diag = Grover_support.Diag
module Pass = Grover_passes.Pass
module Cache = Grover_cache.Compile_cache
module Atdb = Grover_cache.Autotune_db

(* Referencing the Grover pass forces Grover_core to link, which registers
   "grover" in the pass registry for -passes= pipelines; likewise the
   analysis passes (barrier-check, race-check, bounds-check, analyze). *)
let grover_pass = Grover_core.Grover.pass
let analyze_pass = Grover_analysis.Analysis.analyze_pass

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_defines defs =
  List.map
    (fun d ->
      match String.index_opt d '=' with
      | Some i ->
          (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
      | None -> (d, "1"))
    defs

(* -- Diagnostics and instrumentation flags (shared by the commands) ---------- *)

type diag_format = Text | Json

let diag_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "diag-format" ] ~docv:"FMT"
        ~doc:"Diagnostic output format: $(b,text) (file:line:col: severity: \
              message, on stderr) or $(b,json) (one JSON object per line, on \
              stdout).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"LIST"
        ~doc:
          "Comma-separated pass pipeline to run instead of the default (see \
           $(b,groverc passes) for the registry). Also accepted as \
           $(b,-passes=LIST).")

let time_passes_arg =
  Arg.(
    value & flag
    & info [ "time-passes" ]
        ~doc:"Print an aggregated per-pass timing table (wall-clock time, \
              instruction-count delta, changed/unchanged).")

let print_changed_arg =
  Arg.(
    value & flag
    & info [ "print-changed" ]
        ~doc:"Print the IR after every pass that changed it.")

let verify_each_arg =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:"Re-run the IR verifier after every pass and fail on the first \
              pass that breaks the IR.")

(* "X", "X,Y" or "X,Y,Z" -> a work-size triple (missing dimensions are 1). *)
let size_conv : (int * int * int) Arg.conv =
  let parse s =
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let dims = List.map int_of_string_opt parts in
    if List.exists (fun d -> match d with Some d -> d <= 0 | None -> true) dims
    then Error (`Msg (Printf.sprintf "invalid work size %S (want X[,Y[,Z]])" s))
    else
      match List.filter_map Fun.id dims with
      | [ x ] -> Ok (x, 1, 1)
      | [ x; y ] -> Ok (x, y, 1)
      | [ x; y; z ] -> Ok (x, y, z)
      | _ -> Error (`Msg (Printf.sprintf "invalid work size %S (want X[,Y[,Z]])" s))
  in
  let print ppf (x, y, z) = Format.fprintf ppf "%d,%d,%d" x y z in
  Arg.conv (parse, print)

let local_arg =
  Arg.(
    value
    & opt (some size_conv) None
    & info [ "local" ] ~docv:"X[,Y[,Z]]"
        ~doc:
          "Work-group size the kernel is launched with. The static analyses \
           assume 16 per thread-indexed dimension when not given.")

(* -- Compile-cache flags (shared by transform / pipeline / report) ----------- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Content-addressed compile-cache directory: compiled artifacts are \
           reused across runs, and the autotune database lives at \
           $(docv)/autotune.db. Also read from $(b,GROVER_CACHE_DIR); no \
           directory means no caching.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Compile from scratch even when a cache directory is configured.")

let resolve_cache_dir (cache_dir : string option) : string option =
  match cache_dir with
  | Some d -> Some d
  | None -> (
      match Sys.getenv_opt "GROVER_CACHE_DIR" with
      | None | Some "" -> None
      | Some d -> Some d)

(* The cache replays stored results; per-pass instrumentation only exists on
   a real run, so instrumented invocations always compile. *)
let cache_for ~(cache_dir : string option) ~(no_cache : bool)
    ~(instrumented : bool) : Cache.t option =
  if no_cache || instrumented then None
  else
    match resolve_cache_dir cache_dir with
    | Some dir -> Some (Cache.create ~dir ())
    | None -> None

let emit_cache_stats (t : Cache.t option) : unit =
  match t with
  | Some t -> prerr_endline (Cache.stats_line t)
  | None -> ()

let emit_diag fmt ?file (d : Diag.t) : unit =
  match fmt with
  | Text -> prerr_endline (Diag.to_string ?file d)
  | Json -> print_endline (Diag.to_json ?file d)

let emit_diags fmt ?file ds = List.iter (emit_diag fmt ?file) ds

let emit_timing fmt (c : Pass.ctx) : unit =
  match fmt with
  | Text ->
      print_string "=== pass timing ===\n";
      print_string (Pass.timing_table c)
  | Json -> List.iter print_endline (Pass.stats_json c)

(** Run [f]; on a front-end / verifier / internal error print one located
    diagnostic in the requested format and exit 1 (never a backtrace). *)
let guarded fmt ?file (f : unit -> unit) : unit Term.ret =
  try
    f ();
    `Ok ()
  with
  | Grover_clc.Loc.Error (l, m) ->
      emit_diag fmt ?file (Diag.of_loc_error l m);
      exit 1
  | Diag.Fatal d ->
      emit_diag fmt ?file d;
      exit 1
  | Grover_ir.Verify.Invalid_ir m ->
      emit_diag fmt ?file (Diag.errorf ~pass:"verify" "invalid IR: %s" m);
      exit 1
  | Grover_ir.Emit_c.Unstructured m ->
      emit_diag fmt ?file (Diag.errorf ~pass:"emit-c" "cannot emit OpenCL C: %s" m);
      exit 1

let parse_pipeline fmt ?file (spec : string) : Pass.t list =
  match Pass.parse spec with
  | Ok ps -> ps
  | Error d ->
      emit_diag fmt ?file d;
      exit 1

let mk_ctx ~verify_each ~print_changed () =
  Pass.ctx ~verify_each ~print_changed ~print:print_string ()

(* After everything ran: surface collected diagnostics and timing, and fail
   if anything reached error severity. *)
let finish fmt ?file ~time_passes (c : Pass.ctx) : unit =
  emit_diags fmt ?file (Pass.diags c);
  if time_passes then emit_timing fmt c;
  if Pass.errors c <> [] then exit 1

(* -- transform ---------------------------------------------------------------- *)

let transform_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"NAME"
          ~doc:"Restrict the transformation to the named local buffer(s).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let show_before =
    Arg.(
      value & flag
      & info [ "show-before" ] ~doc:"Also print the IR before the pass.")
  in
  let emit_c =
    Arg.(
      value & flag
      & info [ "emit-c" ]
          ~doc:
            "Print the transformed kernel as OpenCL C source (for a vendor \
             runtime) instead of IR.")
  in
  let run file only defines show_before emit_c passes time_passes print_changed
      verify_each fmt cache_dir no_cache =
    let src = read_file file in
    let defines = parse_defines defines in
    let only = if only = [] then None else Some only in
    let custom =
      Option.map (fun spec -> parse_pipeline fmt ~file spec) passes
    in
    let cache =
      cache_for ~cache_dir ~no_cache
        ~instrumented:(time_passes || print_changed || verify_each)
    in
    guarded fmt ~file (fun () ->
        match cache with
        | Some t ->
            (* Staged path: compile through the content-addressed cache and
               replay the stored artifact (reports, diagnostics, final IR). *)
            let pipeline =
              match custom with
              | Some ps -> ps
              | None -> [ Grover_passes.Pipeline.normalize_pass ]
            in
            let variant =
              match custom with
              | Some _ -> Cache.With_lm
              | None -> Cache.Without_lm only
            in
            let pr =
              Cache.compile t (Cache.request ~defines ~pipeline ~variant src)
            in
            let before =
              if show_before && custom = None then
                Some
                  (Cache.compile t
                     (Cache.request ~defines ~pipeline ~variant:Cache.With_lm
                        src))
              else None
            in
            List.iter
              (fun (ka : Cache.kernel_art) ->
                (if show_before then
                   let bka =
                     match before with
                     | Some bpr -> Cache.find_art bpr ~name:ka.Cache.ka_name
                     | None -> Some ka
                   in
                   match bka with
                   | Some bka ->
                       Printf.printf "; === %s (with local memory) ===\n"
                         ka.Cache.ka_name;
                       print_string
                         (Grover_ir.Printer.func_to_string bka.Cache.ka_fn)
                   | None -> ());
                (match ka.Cache.ka_outcome with
                | None -> ()
                | Some o ->
                    List.iter
                      (fun e -> print_endline (Grover_core.Report.to_string e))
                      o.Grover_core.Grover.reports;
                    List.iter
                      (fun (n, r) -> Printf.printf "; rejected %s: %s\n" n r)
                      o.Grover_core.Grover.rejected;
                    Printf.printf "; === %s (local memory disabled: %s) ===\n"
                      ka.Cache.ka_name
                      (if o.Grover_core.Grover.transformed = [] then
                         "nothing to do"
                       else
                         String.concat ", " o.Grover_core.Grover.transformed));
                if emit_c then
                  print_string (Grover_ir.Emit_c.kernel_to_c ka.Cache.ka_fn)
                else
                  print_string
                    (Grover_ir.Printer.func_to_string ka.Cache.ka_fn))
              pr.Cache.pr_art.Cache.art_kernels;
            let diags =
              List.concat_map
                (fun ka -> ka.Cache.ka_diags)
                pr.Cache.pr_art.Cache.art_kernels
            in
            emit_diags fmt ~file diags;
            emit_cache_stats cache;
            if List.exists Diag.is_error diags then exit 1
        | None ->
            let ctx = mk_ctx ~verify_each ~print_changed () in
            let fns = Grover_ir.Lower.compile ~defines src in
            List.iter
              (fun fn ->
                (match custom with
                | Some ps -> ignore (Pass.run_pipeline ctx ps fn)
                | None -> Grover_passes.Pipeline.normalize ~ctx fn);
                if show_before then begin
                  Printf.printf "; === %s (with local memory) ===\n"
                    fn.Grover_ir.Ssa.f_name;
                  print_string (Grover_ir.Printer.func_to_string fn)
                end;
                (* With a custom pipeline the user decides where (and whether)
                   Grover runs; the default path runs it after normalisation. *)
                (match custom with
                | Some _ -> ()
                | None ->
                    let o = Grover_core.Grover.run ?only ~ctx fn in
                    List.iter
                      (fun e -> print_endline (Grover_core.Report.to_string e))
                      o.Grover_core.Grover.reports;
                    List.iter
                      (fun (n, r) -> Printf.printf "; rejected %s: %s\n" n r)
                      o.Grover_core.Grover.rejected;
                    Printf.printf "; === %s (local memory disabled: %s) ===\n"
                      fn.Grover_ir.Ssa.f_name
                      (if o.Grover_core.Grover.transformed = [] then
                         "nothing to do"
                       else
                         String.concat ", " o.Grover_core.Grover.transformed));
                if emit_c then print_string (Grover_ir.Emit_c.kernel_to_c fn)
                else print_string (Grover_ir.Printer.func_to_string fn))
              fns;
            finish fmt ~file ~time_passes ctx)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Disable local memory usage in an OpenCL kernel file.")
    Term.(
      ret
        (const run $ file $ only $ defines $ show_before $ emit_c $ passes_arg
       $ time_passes_arg $ print_changed_arg $ verify_each_arg
       $ diag_format_arg $ cache_dir_arg $ no_cache_arg))

(* -- report -------------------------------------------------------------------- *)

(* The execution path the compiled engine would pick for [fn] — the same
   policy as [Runtime.plan] with no overrides. The kernel is compiled (so
   lane-batchability reflects what the lane compiler actually accepted,
   not just the static region verdict) but nothing is executed. Returns
   the path line plus one lane verdict per parallel region: the static
   {!Regions} classification, narrowed to a scalar-sweep verdict when the
   lane compiler rejected a segment the static analysis accepted. *)
let path_info (fn : Grover_ir.Ssa.func) : string * string list =
  let v = Grover_ir.Regions.form fn in
  let c = Grover_ocl.Interp.prepare ~engine:Grover_ocl.Interp.Compiled fn in
  let path =
    if not c.Grover_ocl.Interp.has_barrier then "fiberless"
    else if Grover_ocl.Runtime.wgvec_capable c then
      Printf.sprintf "wg-vec, %d lanes" (Grover_ocl.Interp.lane_width_of c)
    else if Grover_ocl.Runtime.wg_capable c then "wg-loop"
    else "fiber"
  in
  let regions =
    match v with
    | Grover_ir.Regions.Fallback _ -> []
    | Grover_ir.Regions.Formed info ->
        let flags = Grover_ocl.Interp.lane_entry_flags c in
        Array.to_list
          (Array.mapi
             (fun e lv ->
               let refined =
                 match (lv, flags) with
                 | Grover_ir.Regions.Scalar _, _ -> lv
                 | _, Some fl when not fl.(e) ->
                     Grover_ir.Regions.Scalar "unbatchable instruction"
                 | _, _ -> lv
               in
               Grover_ir.Regions.verdict_string refined)
             info.Grover_ir.Regions.lane_entries)
  in
  (Printf.sprintf "%s (%s)" path (Grover_ir.Regions.describe v), regions)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let run file defines local fmt cache_dir =
    let src = read_file file in
    let defines = parse_defines defines in
    (* A populated autotune DB (under the cache dir) adds a "tuned:" line
       per kernel: the recorded winner for each measured launch site. *)
    let db =
      match resolve_cache_dir cache_dir with
      | Some dir ->
          let f = Atdb.default_file ~cache_dir:dir in
          if Sys.file_exists f then Some (Atdb.load f) else None
      | None -> None
    in
    guarded fmt ~file (fun () ->
        let saw_error = ref false in
        let fns = Grover_ir.Lower.compile ~defines src in
        List.iter
          (fun fn ->
            let khash =
              Cache.kernel_hash ~source:src ~defines
                ~name:fn.Grover_ir.Ssa.f_name
            in
            Grover_passes.Pipeline.normalize fn;
            (* The legality verdict describes the *original* kernel, so the
               static analyses run before Grover rewrites the locals away. *)
            let actx = mk_ctx ~verify_each:false ~print_changed:false () in
            Grover_analysis.Analysis.analyze ?local_size:local actx fn;
            let legality =
              Grover_analysis.Analysis.legality (Pass.diags actx)
            in
            (* [Grover.run] mutates [fn] into the without_lm version, so
               the original's execution path must be derived first. *)
            let with_lm_path, with_lm_regions = path_info fn in
            let o = Grover_core.Grover.run fn in
            let without_lm_path, without_lm_regions = path_info fn in
            Printf.printf "kernel %s:\n" fn.Grover_ir.Ssa.f_name;
            List.iter
              (fun e -> print_endline (Grover_core.Report.to_string e))
              o.Grover_core.Grover.reports;
            List.iter
              (fun (n, r) -> Printf.printf "  rejected %s: %s\n" n r)
              o.Grover_core.Grover.rejected;
            Printf.printf "  legality: %s\n" legality;
            let print_regions version regions =
              List.iteri
                (fun e r ->
                  Printf.printf "    region %d: %s\n" e r;
                  Pass.remarkf actx ~pass:"lane-check" ~code:"GRV-LANE"
                    "%s: region %d (%s): %s" fn.Grover_ir.Ssa.f_name e version
                    r)
                regions
            in
            Printf.printf "  execution path (with local memory): %s\n"
              with_lm_path;
            print_regions "with local memory" with_lm_regions;
            Printf.printf "  execution path (local memory disabled): %s\n"
              without_lm_path;
            print_regions "local memory disabled" without_lm_regions;
            (match db with
            | None -> ()
            | Some db ->
                List.iter
                  (fun (e : Atdb.entry) ->
                    if
                      e.Atdb.e_kernel = fn.Grover_ir.Ssa.f_name
                      && e.Atdb.e_khash = khash
                    then
                      let gx, gy, gz = e.Atdb.e_global
                      and lx, ly, lz = e.Atdb.e_local in
                      Printf.printf
                        "  tuned: %s [%s path%s] for %d,%d,%d/%d,%d,%d on %s \
                         (np %.2f)\n"
                        e.Atdb.e_version e.Atdb.e_path
                        (if e.Atdb.e_lane_width > 1 then
                           Printf.sprintf ", %d lanes" e.Atdb.e_lane_width
                         else "")
                        gx gy gz lx ly lz e.Atdb.e_platform e.Atdb.e_np)
                  (Atdb.entries db));
            emit_diags fmt ~file (Pass.diags actx);
            if Pass.errors actx <> [] then saw_error := true)
          fns;
        if !saw_error then exit 1)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Print the GL/LS/LL/nGL index analysis and the static legality \
          verdict (barrier-check, race-check, bounds-check) without \
          transforming. With a populated autotune DB ($(b,--cache-dir)), \
          also prints the recorded $(b,tuned:) winner per kernel.")
    Term.(
      ret
        (const run $ file $ defines $ local_arg $ diag_format_arg
       $ cache_dir_arg))

(* -- sanitize ------------------------------------------------------------------- *)

(* Run the static passes on a normalised kernel; returns true if they
   reached error severity. Diagnostics are emitted immediately. *)
let static_half fmt ?file ~local (fn : Grover_ir.Ssa.func) : bool =
  let actx = mk_ctx ~verify_each:false ~print_changed:false () in
  Grover_analysis.Analysis.analyze ?local_size:local actx fn;
  emit_diags fmt ?file (Pass.diags actx);
  Pass.errors actx <> []

(* Sanitize a kernel file by synthesizing a launch: one work-group (races
   are intra-group), every pointer argument bound to a fresh buffer with
   deterministic contents, scalar arguments from --arg or defaults. *)
let sanitize_file fmt ~(file : string) ~(kernel : string option)
    ~(global : (int * int * int) option) ~(local : (int * int * int) option)
    ~(elems : int option) ~(scalars : (string * float) list)
    ~(defines : (string * string) list) : bool =
  let module Ssa = Grover_ir.Ssa in
  let src = read_file file in
  let fns = Grover_ir.Lower.compile ~defines src in
  let fn =
    match kernel with
    | Some k -> (
        match List.find_opt (fun f -> f.Ssa.f_name = k) fns with
        | Some f -> f
        | None ->
            emit_diag fmt ~file (Diag.errorf "kernel %s not found in %s" k file);
            exit 1)
    | None -> (
        match fns with
        | f :: _ -> f
        | [] ->
            emit_diag fmt ~file (Diag.errorf "no kernels in %s" file);
            exit 1)
  in
  Grover_passes.Pipeline.normalize fn;
  let static_errors = static_half fmt ~file ~local fn in
  let local =
    match local with
    | Some l -> l
    | None -> fst (Grover_analysis.Config.box_for fn)
  in
  let global = Option.value global ~default:local in
  let gx, gy, gz = global in
  let elems = match elems with Some n -> n | None -> max 64 (4 * gx * gy * gz) in
  let mem = Grover_ocl.Memory.create () in
  let args =
    List.map
      (fun (a : Ssa.arg) ->
        match a.Ssa.a_ty with
        | Ssa.Ptr (_, elem_ty) ->
            let buf =
              Grover_ocl.Memory.alloc mem ~name:a.Ssa.a_name elem_ty elems
            in
            if Ssa.ty_is_float elem_ty then
              Grover_ocl.Memory.fill_floats buf (fun i ->
                  float_of_int (i mod 17) *. 0.25)
            else Grover_ocl.Memory.fill_ints buf (fun i -> i mod 13);
            Grover_ocl.Runtime.Abuf buf
        | t when Ssa.ty_is_integer t ->
            Grover_ocl.Runtime.Aint
              (match List.assoc_opt a.Ssa.a_name scalars with
              | Some v -> int_of_float v
              | None -> gx)
        | _ ->
            Grover_ocl.Runtime.Afloat
              (Option.value (List.assoc_opt a.Ssa.a_name scalars) ~default:1.0))
      fn.Ssa.f_args
  in
  let compiled = Grover_ocl.Interp.prepare fn in
  let cfg = { Grover_ocl.Runtime.global; local; queues = 1 } in
  let dyn =
    try
      let _totals, findings =
        Grover_ocl.Runtime.run_sanitized compiled ~cfg ~args ~mem ()
      in
      List.map (Grover_ocl.Sanitize.to_diag ~file) findings
    with Grover_ocl.Runtime.Launch_error m ->
      [ Diag.errorf ~file ~pass:"sanitize" ~code:"GRV-SAN-DIV" "%s" m ]
  in
  emit_diags fmt dyn;
  Printf.printf "%s: %s\n" fn.Ssa.f_name
    (match List.length dyn with
    | 0 -> "sanitizer clean"
    | 1 -> "1 sanitizer finding"
    | n -> Printf.sprintf "%d sanitizer findings" n);
  static_errors || dyn <> []

(* Sanitize a bundled benchmark: its real workload, geometry and output
   validation, via the suite harness. *)
let sanitize_case fmt (case : Grover_suite.Kit.case) ~(scale : int) : bool =
  let r =
    Grover_suite.Harness.sanitize_run ~scale case Grover_suite.Harness.With_lm
  in
  let static_errors =
    static_half fmt ~local:(Some r.Grover_suite.Harness.sz_local)
      r.Grover_suite.Harness.sz_fn
  in
  let dyn =
    List.map
      (fun f -> Grover_ocl.Sanitize.to_diag f)
      r.Grover_suite.Harness.sz_findings
  in
  emit_diags fmt dyn;
  let check_failed =
    match r.Grover_suite.Harness.sz_check with
    | Ok () -> false
    | Error m ->
        emit_diag fmt
          (Diag.errorf ~pass:"sanitize" "sanitized run produced wrong output: %s"
             m);
        true
  in
  Printf.printf "%-11s %s\n" case.Grover_suite.Kit.id
    (match List.length dyn with
    | 0 -> "sanitizer clean"
    | 1 -> "1 sanitizer finding"
    | n -> Printf.sprintf "%d sanitizer findings" n);
  static_errors || dyn <> [] || check_failed

let sanitize_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel file, a bundled benchmark id (see $(b,groverc list)) or \
             $(b,all) for the whole suite.")
  in
  let kernel =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel" ] ~docv:"NAME"
          ~doc:"Kernel to launch (file targets; default: the first one).")
  in
  let global =
    Arg.(
      value
      & opt (some size_conv) None
      & info [ "global" ] ~docv:"X[,Y[,Z]]"
          ~doc:"Global work size (file targets; default: one work-group).")
  in
  let elems =
    Arg.(
      value
      & opt (some int) None
      & info [ "elems" ] ~docv:"N"
          ~doc:
            "Elements per synthesized buffer argument (file targets; default: \
             4x the global work size).")
  in
  let scalars =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "arg" ] ~docv:"NAME=VALUE"
          ~doc:
            "Value for a scalar kernel argument (file targets; default: the \
             x-extent of the global size for ints, 1.0 for floats).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition (file targets only).")
  in
  let scale =
    Arg.(
      value & opt int 4
      & info [ "scale" ]
          ~doc:"Problem-size divisor (benchmark targets only).")
  in
  let run target kernel global local elems scalars defines scale fmt =
    ignore analyze_pass;
    let defines = parse_defines defines in
    guarded fmt (fun () ->
        let failed =
          try
            if Sys.file_exists target then
              sanitize_file fmt ~file:target ~kernel ~global ~local ~elems
                ~scalars ~defines
            else if String.lowercase_ascii target = "all" then
              List.fold_left
                (fun acc c -> sanitize_case fmt c ~scale || acc)
                false Grover_suite.Suite.all
            else
              match Grover_suite.Suite.by_id target with
              | Some c -> sanitize_case fmt c ~scale
              | None ->
                  emit_diag fmt
                    (Diag.errorf
                       "unknown sanitize target %s (expected a kernel file, a \
                        benchmark id or \"all\")"
                       target);
                  exit 1
          with Grover_suite.Harness.Harness_error m ->
            emit_diag fmt (Diag.errorf ~pass:"sanitize" "%s" m);
            true
        in
        if failed then exit 1)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Execute a kernel under the dynamic race/out-of-bounds sanitizer \
          (shadow memory with per-work-item last-accessor metadata), after \
          running the static legality passes. Exits 1 on any finding.")
    Term.(
      ret
        (const run $ target $ kernel $ global $ local_arg $ elems $ scalars
       $ defines $ scale $ diag_format_arg))

(* -- pipeline (also the default command) --------------------------------------- *)

(* What to run the pipeline over: a kernel file on disk, a bundled
   benchmark id, or "all" = every case of the paper's Table I suite. *)
let pipeline_targets fmt (target : string) (defines : (string * string) list) :
    (string * string option * (string * string) list * string) list =
  (* (display name, file, defines, source) *)
  if Sys.file_exists target then
    [ (target, Some target, defines, read_file target) ]
  else if String.lowercase_ascii target = "all" then
    List.map
      (fun (c : Grover_suite.Kit.case) ->
        (c.Grover_suite.Kit.id, None, c.Grover_suite.Kit.defines,
         c.Grover_suite.Kit.source))
      Grover_suite.Suite.all
  else
    match Grover_suite.Suite.by_id target with
    | Some c ->
        [ (c.Grover_suite.Kit.id, None, c.Grover_suite.Kit.defines,
           c.Grover_suite.Kit.source) ]
    | None ->
        emit_diag fmt
          (Diag.errorf
             "unknown pipeline target %s (expected a kernel file, a \
              benchmark id or \"all\"); try: %s"
             target
             (String.concat ", "
                (List.map
                   (fun c -> c.Grover_suite.Kit.id)
                   Grover_suite.Suite.all)));
        exit 1

let pipeline_term =
  let target =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel file, a bundled benchmark id (see $(b,groverc list)) or \
             $(b,all) for the whole suite.")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition (file targets only).")
  in
  let run target defines passes time_passes print_changed verify_each fmt
      cache_dir no_cache =
    ignore grover_pass;
    let defines = parse_defines defines in
    let ps =
      match passes with
      | Some spec -> parse_pipeline fmt spec
      | None -> [ Grover_passes.Pipeline.normalize_pass ]
    in
    let cache =
      cache_for ~cache_dir ~no_cache
        ~instrumented:(time_passes || print_changed || verify_each)
    in
    let targets = pipeline_targets fmt target defines in
    guarded fmt (fun () ->
        match cache with
        | Some t ->
            (* Staged path: one request per target, cache misses compiled
               concurrently over the runtime's domain pool. *)
            let rqs =
              List.map
                (fun (_, _, defines, src) ->
                  Cache.request ~defines ~pipeline:ps src)
                targets
            in
            let prs = Cache.compile_batch t rqs in
            let diags = ref [] in
            List.iter2
              (fun (name, file, _, _) (pr : Cache.prepared) ->
                List.iter
                  (fun (ka : Cache.kernel_art) ->
                    Printf.printf "%-12s %-24s %4d -> %4d instrs  %s\n" name
                      ka.Cache.ka_name ka.Cache.ka_before ka.Cache.ka_after
                      (if ka.Cache.ka_changed then "changed" else "unchanged");
                    diags :=
                      !diags
                      @ List.map (fun d -> (file, d)) ka.Cache.ka_diags)
                  pr.Cache.pr_art.Cache.art_kernels)
              targets prs;
            List.iter (fun (file, d) -> emit_diag fmt ?file d) !diags;
            emit_cache_stats cache;
            if List.exists (fun (_, d) -> Diag.is_error d) !diags then exit 1
        | None ->
            let ctx = mk_ctx ~verify_each ~print_changed () in
            List.iter
              (fun (name, file, defines, src) ->
                let fns =
                  try Grover_ir.Lower.compile ~defines src
                  with Grover_clc.Loc.Error (l, m) ->
                    emit_diag fmt ?file
                      (Diag.of_loc_error
                         ?file:(Some (Option.value ~default:name file))
                         l m);
                    exit 1
                in
                List.iter
                  (fun fn ->
                    let before = Pass.instr_count fn in
                    let changed = Pass.run_pipeline ctx ps fn in
                    Printf.printf "%-12s %-24s %4d -> %4d instrs  %s\n" name
                      fn.Grover_ir.Ssa.f_name before (Pass.instr_count fn)
                      (if changed then "changed" else "unchanged"))
                  fns)
              targets;
            finish fmt ~time_passes ctx)
  in
  Term.(
    ret
      (const run $ target $ defines $ passes_arg $ time_passes_arg
     $ print_changed_arg $ verify_each_arg $ diag_format_arg $ cache_dir_arg
     $ no_cache_arg))

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run a pass pipeline (default: normalize) over a kernel file, a \
          bundled benchmark or the whole suite, with per-pass diagnostics \
          and timing. This is also the default command: \
          $(b,groverc -passes=... --time-passes) runs over the whole suite.")
    pipeline_term

(* -- passes --------------------------------------------------------------------- *)

let passes_cmd =
  let run () =
    ignore grover_pass;
    List.iter
      (fun p -> Printf.printf "%-14s %s\n" (Pass.name p) (Pass.descr p))
      (Pass.all ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "passes" ~doc:"List the registered passes and combinators.")
    Term.(ret (const run $ const ()))

(* -- autotune ------------------------------------------------------------------- *)

let autotune_cmd =
  let bench =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:"A bundled benchmark id (e.g. NVD-MT; see groverc list).")
  in
  let platform =
    Arg.(
      value & opt string "SNB"
      & info [ "platform" ] ~docv:"NAME"
          ~doc:"Simulated platform: Fermi, Kepler, Tahiti, SNB, Nehalem, MIC.")
  in
  let scale =
    Arg.(value & opt int 2 & info [ "scale" ] ~doc:"Problem-size divisor.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Also measure host wall-clock throughput of both versions on $(docv) \
             OCaml domains (0 = recommended domain count). The simulated timing \
             above is unaffected.")
  in
  let save =
    Arg.(
      value & opt bool true
      & info [ "save" ] ~docv:"BOOL"
          ~doc:
            "Persist the host wall-clock winner (version, execution path, \
             lane width) into the autotune database, keyed by kernel content \
             hash, platform and launch geometry. $(b,Runtime.plan) and \
             $(b,groverc report) consult it. Default $(b,true); \
             $(b,--save=false) only prints.")
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:
            "Autotune database file (default: $(b,CACHE_DIR/autotune.db) \
             under --cache-dir / GROVER_CACHE_DIR, or \
             $(b,.grover-cache/autotune.db)).")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"N"
          ~doc:
            "Wall-clock repetitions per version; the minimum is recorded \
             (noise only ever slows a run down).")
  in
  let run bench platform scale domains save db_file reps cache_dir =
    match
      ( Grover_suite.Suite.by_id bench,
        Grover_memsim.Platform.by_name platform )
    with
    | None, _ ->
        `Error
          ( false,
            Printf.sprintf "unknown benchmark %s; try: %s" bench
              (String.concat ", "
                 (List.map
                    (fun c -> c.Grover_suite.Kit.id)
                    Grover_suite.Suite.all)) )
    | _, None -> `Error (false, "unknown platform " ^ platform)
    | Some case, Some plat ->
        let cmp = Grover_suite.Harness.compare case ~platform:plat ~scale in
        Printf.printf "%s on %s:\n" cmp.Grover_suite.Harness.case_id platform;
        Printf.printf "  with local memory:    %.3f ms [%s path]\n"
          (cmp.Grover_suite.Harness.with_lm.Grover_suite.Harness.seconds *. 1e3)
          cmp.Grover_suite.Harness.with_lm.Grover_suite.Harness.path;
        Printf.printf "  without local memory: %.3f ms [%s path]\n"
          (cmp.Grover_suite.Harness.without_lm.Grover_suite.Harness.seconds *. 1e3)
          cmp.Grover_suite.Harness.without_lm.Grover_suite.Harness.path;
        Printf.printf "  normalized perf:      %.2f -> keep the version %s\n"
          cmp.Grover_suite.Harness.normalized
          (if cmp.Grover_suite.Harness.normalized > 1.0 then
             "WITHOUT local memory"
           else "WITH local memory");
        let wc =
          (* Host wall-clock timing, min-of-N per version: printed when
             --domains asks for it, recorded when --save (the default). *)
          if save || domains <> 1 then
            Some
              (List.map
                 (fun v ->
                   (v, Grover_suite.Harness.wallclock ~domains ~reps case v ~scale))
                 [ Grover_suite.Harness.With_lm; Grover_suite.Harness.Without_lm ])
          else None
        in
        (match wc with
        | Some runs when domains <> 1 ->
            Printf.printf "host throughput (%s domain%s requested):\n"
              (if domains = 0 then "auto" else string_of_int domains)
              (if domains = 1 then "" else "s");
            List.iter
              (fun (v, r) ->
                let label =
                  match v with
                  | Grover_suite.Harness.With_lm -> "with local memory:"
                  | Grover_suite.Harness.Without_lm -> "without local memory:"
                in
                Printf.printf
                  "  %-21s %.3f ms, %.0f work-items/sec [%s path, %d pool \
                   domain%s]\n"
                  label
                  (r.Grover_suite.Harness.wc_seconds *. 1e3)
                  (float_of_int r.Grover_suite.Harness.wc_items
                  /. r.Grover_suite.Harness.wc_seconds)
                  r.Grover_suite.Harness.wc_path
                  r.Grover_suite.Harness.wc_domains
                  (if r.Grover_suite.Harness.wc_domains = 1 then "" else "s"))
              runs
        | _ -> ());
        (match (save, wc) with
        | true, Some runs ->
            let t_of v = List.assoc v runs in
            let rw = t_of Grover_suite.Harness.With_lm
            and rwo = t_of Grover_suite.Harness.Without_lm in
            let np =
              rw.Grover_suite.Harness.wc_seconds
              /. rwo.Grover_suite.Harness.wc_seconds
            in
            let winner, wr =
              if np > 1.0 then ("without_lm", rwo) else ("with_lm", rw)
            in
            let w = case.Grover_suite.Kit.mk ~scale in
            let file =
              match db_file with
              | Some f -> f
              | None ->
                  let dir =
                    Option.value
                      (resolve_cache_dir cache_dir)
                      ~default:".grover-cache"
                  in
                  Atdb.default_file ~cache_dir:dir
            in
            let db = Atdb.load file in
            Atdb.record db
              {
                Atdb.e_kernel = case.Grover_suite.Kit.kernel;
                e_khash =
                  Cache.kernel_hash ~source:case.Grover_suite.Kit.source
                    ~defines:case.Grover_suite.Kit.defines
                    ~name:case.Grover_suite.Kit.kernel;
                e_platform = Atdb.host_platform;
                e_global = w.Grover_suite.Kit.global;
                e_local = w.Grover_suite.Kit.local;
                e_version = winner;
                e_path = wr.Grover_suite.Harness.wc_path;
                e_lane_width = wr.Grover_suite.Harness.wc_lane_width;
                e_np = np;
                e_t_with = rw.Grover_suite.Harness.wc_seconds;
                e_t_without = rwo.Grover_suite.Harness.wc_seconds;
                e_tuned_by = Atdb.tuned_by_measured;
              };
            Atdb.save db;
            let gx, gy, gz = w.Grover_suite.Kit.global
            and lx, ly, lz = w.Grover_suite.Kit.local in
            Printf.printf
              "  saved: %s [%s path%s] for %d,%d,%d/%d,%d,%d (host np %.2f, \
               min of %d) -> %s\n"
              winner wr.Grover_suite.Harness.wc_path
              (if wr.Grover_suite.Harness.wc_lane_width > 1 then
                 Printf.sprintf ", %d lanes"
                   wr.Grover_suite.Harness.wc_lane_width
               else "")
              gx gy gz lx ly lz np reps file
        | _ -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Run a bundled benchmark with and without local memory, pick the \
          faster version, and record the winner in the persistent autotune \
          database (disable with $(b,--save=false)).")
    Term.(
      ret
        (const run $ bench $ platform $ scale $ domains $ save $ db_arg $ reps
       $ cache_dir_arg))

(* -- promote -------------------------------------------------------------------- *)

(* The insertion direction of the bidirectional optimizer: promote reused
   global loads back into __local tiles (lib/promote), validate the result
   (race certification + sanitizer + output check), and optionally pick the
   overall winner — with_lm / without_lm / promoted — analytically
   (--predict, memsim model) or by wall-clock (--measure), recording the
   decision into the autotune DB with its provenance. *)
let promote_cmd =
  let module H = Grover_suite.Harness in
  let module Kit = Grover_suite.Kit in
  let module Promote = Grover_promote.Promote in
  let module Predict = Grover_memsim.Predict in
  let module P = Grover_memsim.Platform in
  let module Runtime = Grover_ocl.Runtime in
  let module Interp = Grover_ocl.Interp in
  let target =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A kernel file, a bundled benchmark id (see $(b,groverc list)), \
             or $(b,all) for the whole suite.")
  in
  let predict =
    Arg.(
      value & flag
      & info [ "predict" ]
          ~doc:
            "Rank with_lm / without_lm / promoted analytically with the \
             memsim cost model (no timing) and record the winner in the \
             autotune database with $(b,tuned-by: predictor).")
  in
  let measure =
    Arg.(
      value & flag
      & info [ "measure" ]
          ~doc:
            "Wall-clock all three variants on the host (min of $(b,--reps)) \
             and record the winner with $(b,tuned-by: measured).")
  in
  let scale =
    Arg.(value & opt int 4 & info [ "scale" ] ~doc:"Problem-size divisor.")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"N"
          ~doc:"Wall-clock repetitions per variant for $(b,--measure).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition (file targets).")
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:
            "Autotune database file (default: $(b,CACHE_DIR/autotune.db) \
             under --cache-dir / GROVER_CACHE_DIR, or \
             $(b,.grover-cache/autotune.db)).")
  in
  let print_outcome indent (o : Promote.outcome) =
    List.iter
      (fun (name, reuse) ->
        Printf.printf "%sstaged %s through __local (x%d reuse)\n" indent name
          reuse)
      o.Promote.promoted;
    if o.Promote.tile_bytes > 0 then
      Printf.printf "%s__local bytes added: %d\n" indent o.Promote.tile_bytes;
    List.iter
      (fun (n, r) -> Printf.printf "%snot staged %s: %s\n" indent n r)
      o.Promote.p_rejected
  in
  (* One suite case: promote, validate, optionally rank and record. Returns
     false when a promoted kernel fails validation or a ranked variant
     produces a wrong result. *)
  let run_case ~predict ~measure ~scale ~reps ~db_file (case : Kit.case) : bool
      =
    let pm = H.promote_run ~scale case in
    let o = pm.H.pm_outcome in
    let n = List.length o.Promote.promoted in
    Printf.printf "%s: %s\n" case.Kit.id
      (if n = 0 then "no promotion (kernel left as-is)"
       else
         Printf.sprintf "promoted %d load%s into __local tiles" n
           (if n = 1 then "" else "s"));
    print_outcome "  " o;
    let promoted_ok =
      if n = 0 then true
      else begin
        Printf.printf "  race check: %s\n"
          (if pm.H.pm_race_free then "race-free" else "NOT RACE-FREE");
        Printf.printf "  sanitizer:  %s\n"
          (match pm.H.pm_findings with
          | [] -> "clean"
          | fs -> Printf.sprintf "%d finding(s)" (List.length fs));
        Printf.printf "  output:     %s\n"
          (match pm.H.pm_check with
          | Ok () -> "matches host reference"
          | Error m -> "WRONG: " ^ m);
        pm.H.pm_race_free && pm.H.pm_findings = []
        && pm.H.pm_check = Ok ()
      end
    in
    if (not promoted_ok) || not (predict || measure) then promoted_ok
    else begin
      let w = case.Kit.mk ~scale in
      let lx, ly, lz = w.Kit.local in
      let wg = lx * ly * lz in
      let fn_with, _ = H.compile_version case H.With_lm in
      let fn_without, _ = H.compile_version case H.Without_lm in
      let variants =
        [ ("with_lm", fn_with); ("without_lm", fn_without) ]
        @ (if n > 0 then [ ("promoted", pm.H.pm_fn) ] else [])
      in
      (* Each variant runs once on the host to collect the memory-traffic
         totals the model consumes — and to re-check its output. *)
      let execd =
        List.map
          (fun (label, fn) ->
            let _, totals, _, check, path =
              H.execute case fn ~scale ~platform:None
            in
            (label, fn, totals, path, check))
          variants
      in
      let wrong =
        List.filter_map
          (fun (label, _, _, _, check) ->
            match check with
            | Ok () -> None
            | Error m -> Some (label ^ ": " ^ m))
          execd
      in
      if wrong <> [] then begin
        List.iter (fun m -> Printf.printf "  WRONG OUTPUT %s\n" m) wrong;
        false
      end
      else begin
        let record_entry ~winner ~path ~lane_width ~np ~t_with ~t_without
            ~tuned_by =
          let db = Atdb.load db_file in
          Atdb.record db
            {
              Atdb.e_kernel = case.Kit.kernel;
              e_khash =
                Cache.kernel_hash ~source:case.Kit.source
                  ~defines:case.Kit.defines ~name:case.Kit.kernel;
              e_platform = Atdb.host_platform;
              e_global = w.Kit.global;
              e_local = w.Kit.local;
              e_version = winner;
              e_path = path;
              e_lane_width = lane_width;
              e_np = np;
              e_t_with = t_with;
              e_t_without = t_without;
              e_tuned_by = tuned_by;
            };
          Atdb.save db;
          Printf.printf "  saved: %s (np %.2f) -> %s [tuned-by: %s]\n" winner
            np db_file tuned_by
        in
        if predict then begin
          let inputs =
            List.map
              (fun (label, fn, totals, _, _) ->
                ( label,
                  {
                    Predict.totals;
                    wg_size = wg;
                    vectorized = H.uses_vector_types fn;
                  } ))
              execd
          in
          let ranking = Predict.rank P.snb inputs in
          Printf.printf "  predictor ranking (%s model):\n" P.snb.P.name;
          List.iteri
            (fun i (r : Predict.ranked) ->
              Printf.printf "    %d. %-10s %.6f s\n" (i + 1)
                r.Predict.rk_label r.Predict.rk_seconds)
            ranking;
          let seconds_of l =
            (List.find
               (fun (r : Predict.ranked) -> r.Predict.rk_label = l)
               ranking)
              .Predict.rk_seconds
          in
          let winner = (List.hd ranking).Predict.rk_label in
          let _, _, _, wpath, _ =
            List.find (fun (l, _, _, _, _) -> l = winner) execd
          in
          record_entry ~winner ~path:wpath ~lane_width:1
            ~np:(seconds_of "with_lm" /. seconds_of "without_lm")
            ~t_with:(seconds_of "with_lm")
            ~t_without:(seconds_of "without_lm")
            ~tuned_by:Atdb.tuned_by_predictor
        end;
        if measure then begin
          let timed =
            List.map
              (fun (label, fn, _, _, _) ->
                let compiled = Interp.prepare fn in
                let best = ref infinity in
                for _ = 1 to reps do
                  let wm = case.Kit.mk ~scale in
                  let cfgm =
                    {
                      Runtime.global = wm.Kit.global;
                      local = wm.Kit.local;
                      queues = 1;
                    }
                  in
                  let t0 = Unix.gettimeofday () in
                  let (_ : Grover_ocl.Trace.totals) =
                    Runtime.launch compiled ~cfg:cfgm ~args:wm.Kit.args
                      ~mem:wm.Kit.mem ()
                  in
                  let dt = Unix.gettimeofday () -. t0 in
                  if dt < !best then best := dt
                done;
                (label, compiled, !best))
              execd
          in
          Printf.printf "  measured (min of %d):\n" reps;
          List.iter
            (fun (label, _, t) ->
              Printf.printf "    %-10s %.3f ms\n" label (t *. 1e3))
            timed;
          let wl, wc, _ =
            List.fold_left
              (fun (al, ac, at) (l, c, t) ->
                if t < at then (l, c, t) else (al, ac, at))
              (let l, c, t = List.hd timed in
               (l, c, t))
              (List.tl timed)
          in
          let t_of l =
            let _, _, t = List.find (fun (l', _, _) -> l' = l) timed in
            t
          in
          let cfg =
            { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
          in
          record_entry ~winner:wl
            ~path:(Runtime.path_name (Runtime.plan wc ~cfg ()))
            ~lane_width:(Interp.lane_width_of wc)
            ~np:(t_of "with_lm" /. t_of "without_lm")
            ~t_with:(t_of "with_lm") ~t_without:(t_of "without_lm")
            ~tuned_by:Atdb.tuned_by_measured
        end;
        true
      end
    end
  in
  let run_file ~defines ~local file : bool =
    let src = read_file file in
    let fns = Grover_ir.Lower.compile ~defines src in
    List.for_all
      (fun fn ->
        Grover_passes.Pipeline.normalize fn;
        let outcome =
          Grover_analysis.Config.with_local local (fun () ->
              Promote.run fn)
        in
        let n = List.length outcome.Promote.promoted in
        Printf.printf "%s: %s\n" fn.Grover_ir.Ssa.f_name
          (if n = 0 then "no promotion (kernel left as-is)"
           else
             Printf.sprintf "promoted %d load%s into __local tiles" n
               (if n = 1 then "" else "s"));
        print_outcome "  " outcome;
        if n = 0 then true
        else begin
          let reports, _box, _assumed =
            Grover_analysis.Config.with_local local (fun () ->
                Grover_analysis.Race.analyse fn)
          in
          let race_free =
            List.for_all
              (fun (r : Grover_analysis.Race.report) ->
                r.Grover_analysis.Race.r_verdict
                = Grover_analysis.Race.Race_free)
              reports
          in
          Printf.printf "  race check: %s\n"
            (if race_free then "race-free" else "NOT RACE-FREE");
          print_string (Grover_ir.Printer.func_to_string fn);
          race_free
        end)
      fns
  in
  let run target predict measure scale reps defines db_file local cache_dir
      fmt =
    let defines = parse_defines defines in
    let db_file =
      match db_file with
      | Some f -> f
      | None ->
          let dir =
            Option.value (resolve_cache_dir cache_dir)
              ~default:".grover-cache"
          in
          Atdb.default_file ~cache_dir:dir
    in
    let cases =
      if target = "all" then Some Grover_suite.Suite.all
      else Option.map (fun c -> [ c ]) (Grover_suite.Suite.by_id target)
    in
    match cases with
    | Some cases -> (
        try
          let ok =
            List.fold_left
              (fun acc case ->
                run_case ~predict ~measure ~scale ~reps ~db_file case && acc)
              true cases
          in
          if ok then `Ok ()
          else `Error (false, "promotion validation failed (see above)")
        with H.Harness_error m -> `Error (false, m))
    | None ->
        if not (Sys.file_exists target) then
          `Error
            ( false,
              Printf.sprintf
                "%s is neither a benchmark id nor a file; try: %s" target
                (String.concat ", "
                   (List.map (fun c -> c.Kit.id) Grover_suite.Suite.all)) )
        else if predict || measure then
          `Error
            ( false,
              "--predict/--measure rank executions and need a bundled \
               benchmark (file targets have no workload)" )
        else
          guarded fmt ~file:target (fun () ->
              if not (run_file ~defines ~local target) then exit 1)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Stage reused global loads back into __local tiles (the insertion \
          direction of the bidirectional optimizer), validate the result, \
          and optionally record the with_lm / without_lm / promoted winner \
          in the autotune database ($(b,--predict) for the analytic model, \
          $(b,--measure) for wall-clock).")
    Term.(
      ret
        (const run $ target $ predict $ measure $ scale $ reps $ defines
       $ db_arg $ local_arg $ cache_dir_arg $ diag_format_arg))

(* -- run ------------------------------------------------------------------------ *)

let run_cmd =
  let module H = Grover_suite.Harness in
  let module Kit = Grover_suite.Kit in
  let target =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"BENCHMARK"
          ~doc:
            "A bundled benchmark id (see $(b,groverc list)), or $(b,all) for \
             the whole suite.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Independent copies of each (benchmark, version) launch to \
             enqueue — the whole set is submitted to one out-of-order \
             command queue and drained across the domain pool.")
  in
  let scale =
    Arg.(value & opt int 4 & info [ "scale" ] ~doc:"Problem-size divisor.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domain-pool width for the queue drain (0 = recommended domain \
             count; requests beyond the host's parallelism are clamped).")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:
            "Run the same launch set serially (one launch at a time, one \
             domain) instead of through the queue — the baseline the queue \
             is measured against.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print each launch's event timeline — enqueue, submission to \
             the scheduler (dependencies resolved) and completion, the \
             OpenCL profiling-timestamp analogues — relative to the first \
             enqueue.")
  in
  let run target jobs scale domains sequential profile =
    let cases =
      if target = "all" then Some Grover_suite.Suite.all
      else
        Option.map (fun c -> [ c ]) (Grover_suite.Suite.by_id target)
    in
    match cases with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown benchmark %s; try: %s" target
              (String.concat ", "
                 (List.map (fun c -> c.Kit.id) Grover_suite.Suite.all)) )
    | Some _ when jobs < 1 -> `Error (false, "--jobs must be >= 1")
    | Some _ when sequential && profile ->
        `Error
          ( false,
            "--profile reads the queue's event timestamps; it cannot be \
             combined with --sequential" )
    | Some cases -> (
        let set =
          List.concat_map
            (fun c -> [ (c, H.With_lm); (c, H.Without_lm) ])
            cases
        in
        try
          let pls = H.prepare_launches ~jobs ~scale set in
          let seconds, events =
            if sequential then (fst (H.run_sequential pls), [])
            else begin
              let dt, evs = H.run_queued_events ~domains pls in
              (dt, evs)
            end
          in
          H.validate_launches pls;
          let items = H.launch_items pls in
          let requested = Grover_ocl.Runtime.resolve_domains domains in
          let width =
            min requested (Grover_ocl.Runtime.effective_domain_cap ())
          in
          Printf.printf
            "%s: %d launches (%d jobs x %d kernel versions), %d work-items\n"
            (if sequential then "sequential" else "queued")
            (List.length pls) jobs (List.length set) items;
          Printf.printf "  %.3f ms, %.0f work-items/sec%s\n" (seconds *. 1e3)
            (float_of_int items /. seconds)
            (if sequential then ""
             else
               Printf.sprintf ", %d pool domain%s%s" width
                 (if width = 1 then "" else "s")
                 (if width < requested then
                    Printf.sprintf " (clamped from %d)" requested
                  else ""));
          Printf.printf "  all outputs validated against host references\n";
          if profile then begin
            let t0 =
              List.fold_left
                (fun acc (_, ev) ->
                  let q, _, _ = Grover_ocl.Event.profile ev in
                  min acc q)
                infinity events
            in
            Printf.printf
              "  event timeline (ms after first enqueue; wait = queued -> \
               submitted, exec = submitted -> completed):\n";
            List.iter
              (fun (label, ev) ->
                let q, s, c = Grover_ocl.Event.profile ev in
                Printf.printf
                  "    %-24s queued %+8.3f  submitted %+8.3f  completed \
                   %+8.3f  (wait %.3f, exec %.3f)\n"
                  label
                  ((q -. t0) *. 1e3)
                  ((s -. t0) *. 1e3)
                  ((c -. t0) *. 1e3)
                  ((s -. q) *. 1e3)
                  ((c -. s) *. 1e3))
              events
          end;
          `Ok ()
        with
        | H.Harness_error m -> `Error (false, m)
        | Grover_ocl.Runtime.Launch_error m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Submit bundled benchmarks (both kernel versions, $(b,--jobs) \
          copies each) to one out-of-order command queue and drain it over \
          the domain pool, validating every output.")
    Term.(
      ret (const run $ target $ jobs $ scale $ domains $ sequential $ profile))

(* -- cache ---------------------------------------------------------------------- *)

let cache_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
      & info [] ~docv:"ACTION"
          ~doc:"$(b,stats) prints the cache contents; $(b,clear) removes the \
                compiled artifacts (and, with $(b,--db), the autotune \
                database).")
  in
  let clear_db =
    Arg.(
      value & flag
      & info [ "db" ]
          ~doc:"With $(b,clear): also remove the autotune database.")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:
            "With $(b,clear): instead of removing everything, trim the disk \
             tier to at most $(docv) bytes, evicting least-recently used \
             artifacts first (by mtime; cache hits refresh it). \
             $(b,GROVER_CACHE_MAX_BYTES) applies the same budget \
             automatically on every store.")
  in
  let run action clear_db max_bytes cache_dir =
    match resolve_cache_dir cache_dir with
    | None ->
        `Error
          ( false,
            "no cache directory configured (use --cache-dir or \
             GROVER_CACHE_DIR)" )
    | Some dir -> (
        let db_file = Atdb.default_file ~cache_dir:dir in
        match action with
        | `Stats ->
            let t = Cache.create ~dir () in
            let db_entries, measured, predicted =
              if Sys.file_exists db_file then begin
                let db = Atdb.load db_file in
                let m, p = Atdb.provenance_counts db in
                (Atdb.size db, m, p)
              end
              else (0, 0, 0)
            in
            Printf.printf "cache dir:        %s\n" dir;
            Printf.printf "artifacts:        %d (%d bytes)\n"
              (Cache.disk_size t) (Cache.disk_bytes t);
            Printf.printf "autotune entries: %d (%d measured, %d predictor)\n"
              db_entries measured predicted;
            `Ok ()
        | `Clear -> (
            let t = Cache.create ~dir () in
            match max_bytes with
            | Some mb when mb < 0 -> `Error (false, "--max-bytes must be >= 0")
            | Some mb ->
                let removed, freed = Cache.trim t ~max_bytes:mb in
                Printf.printf
                  "trimmed %d artifact%s (%d bytes) from %s; %d bytes kept\n"
                  removed
                  (if removed = 1 then "" else "s")
                  freed dir (Cache.disk_bytes t);
                `Ok ()
            | None ->
                let n = Cache.disk_size t in
                Cache.clear t;
                Printf.printf "removed %d artifact%s from %s\n" n
                  (if n = 1 then "" else "s")
                  dir;
                if clear_db && Sys.file_exists db_file then begin
                  Sys.remove db_file;
                  Printf.printf "removed %s\n" db_file
                end;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the content-addressed compile cache and the \
          autotune database.")
    Term.(ret (const run $ action $ clear_db $ max_bytes $ cache_dir_arg))

(* -- list ----------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (c : Grover_suite.Kit.case) ->
        Printf.printf "%-11s %-30s %s\n" c.Grover_suite.Kit.id
          c.Grover_suite.Kit.origin c.Grover_suite.Kit.description)
      Grover_suite.Suite.all;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled benchmarks.")
    Term.(ret (const run $ const ()))

(* -- main ----------------------------------------------------------------------- *)

(* LLVM-style single-dash spelling: -passes=... is rewritten to the
   cmdliner-standard --passes=... before parsing. *)
let argv =
  Array.map
    (fun a ->
      if String.length a >= 7
         && String.sub a 0 7 = "-passes"
         && not (String.length a >= 8 && String.sub a 0 8 = "--passes")
      then "-" ^ a
      else a)
    Sys.argv

let () =
  let info =
    Cmd.info "groverc" ~version:"1.0.0"
      ~doc:"Disable local memory usage in OpenCL kernels (Grover, ICPP 2014)."
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info ~default:pipeline_term
          [ transform_cmd; report_cmd; sanitize_cmd; pipeline_cmd; passes_cmd;
            autotune_cmd; promote_cmd; run_cmd; cache_cmd; list_cmd ]))
