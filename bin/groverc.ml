(* groverc — the Grover compiler driver.

   Reads an OpenCL C kernel file, disables local memory usage (paper Fig. 9
   pipeline) and prints the analysis report and the transformed IR.

     groverc transform kernel.cl
     groverc transform kernel.cl --only As --define S=16
     groverc report kernel.cl
     groverc autotune kernel.cl --platform SNB ... (needs embedded workloads,
       so autotune runs the bundled benchmark suite by id instead)
     groverc autotune NVD-MT --platform SNB
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_defines defs =
  List.map
    (fun d ->
      match String.index_opt d '=' with
      | Some i ->
          (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
      | None -> (d, "1"))
    defs

(* -- transform ---------------------------------------------------------------- *)

let transform_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"NAME"
          ~doc:"Restrict the transformation to the named local buffer(s).")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let show_before =
    Arg.(
      value & flag
      & info [ "show-before" ] ~doc:"Also print the IR before the pass.")
  in
  let emit_c =
    Arg.(
      value & flag
      & info [ "emit-c" ]
          ~doc:
            "Print the transformed kernel as OpenCL C source (for a vendor \
             runtime) instead of IR.")
  in
  let run file only defines show_before emit_c =
    let src = read_file file in
    let defines = parse_defines defines in
    let only = if only = [] then None else Some only in
    try
      let fns = Grover_ir.Lower.compile ~defines src in
      List.iter
        (fun fn ->
          Grover_passes.Pipeline.normalize fn;
          if show_before then begin
            Printf.printf "; === %s (with local memory) ===\n"
              fn.Grover_ir.Ssa.f_name;
            print_string (Grover_ir.Printer.func_to_string fn)
          end;
          let o = Grover_core.Grover.run ?only fn in
          List.iter
            (fun e ->
              print_endline (Grover_core.Report.to_string e))
            o.Grover_core.Grover.reports;
          List.iter
            (fun (n, r) -> Printf.printf "; rejected %s: %s\n" n r)
            o.Grover_core.Grover.rejected;
          Printf.printf "; === %s (local memory disabled: %s) ===\n"
            fn.Grover_ir.Ssa.f_name
            (if o.Grover_core.Grover.transformed = [] then "nothing to do"
             else String.concat ", " o.Grover_core.Grover.transformed);
          if emit_c then print_string (Grover_ir.Emit_c.kernel_to_c fn)
          else print_string (Grover_ir.Printer.func_to_string fn))
        fns;
      `Ok ()
    with
    | Grover_clc.Loc.Error (l, m) ->
        `Error (false, Format.asprintf "%s:%a: %s" file Grover_clc.Loc.pp l m)
    | Grover_ir.Verify.Invalid_ir m -> `Error (false, "internal: " ^ m)
    | Grover_ir.Emit_c.Unstructured m ->
        `Error (false, "cannot emit OpenCL C: " ^ m)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Disable local memory usage in an OpenCL kernel file.")
    Term.(ret (const run $ file $ only $ defines $ show_before $ emit_c))

(* -- report -------------------------------------------------------------------- *)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL.cl")
  in
  let defines =
    Arg.(
      value & opt_all string []
      & info [ "define"; "D" ] ~docv:"NAME=VALUE"
          ~doc:"Preprocessor definition.")
  in
  let run file defines =
    let src = read_file file in
    let defines = parse_defines defines in
    try
      List.iter
        (fun (fn, o) ->
          Printf.printf "kernel %s:\n" fn.Grover_ir.Ssa.f_name;
          List.iter
            (fun e -> print_endline (Grover_core.Report.to_string e))
            o.Grover_core.Grover.reports;
          List.iter
            (fun (n, r) -> Printf.printf "  rejected %s: %s\n" n r)
            o.Grover_core.Grover.rejected)
        (Grover_core.Grover.run_on_source ~defines src);
      `Ok ()
    with Grover_clc.Loc.Error (l, m) ->
      `Error (false, Format.asprintf "%s:%a: %s" file Grover_clc.Loc.pp l m)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Print the GL/LS/LL/nGL index analysis without transforming.")
    Term.(ret (const run $ file $ defines))

(* -- autotune ------------------------------------------------------------------- *)

let autotune_cmd =
  let bench =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:"A bundled benchmark id (e.g. NVD-MT; see groverc list).")
  in
  let platform =
    Arg.(
      value & opt string "SNB"
      & info [ "platform" ] ~docv:"NAME"
          ~doc:"Simulated platform: Fermi, Kepler, Tahiti, SNB, Nehalem, MIC.")
  in
  let scale =
    Arg.(value & opt int 2 & info [ "scale" ] ~doc:"Problem-size divisor.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Also measure host wall-clock throughput of both versions on $(docv) \
             OCaml domains (0 = recommended domain count). The simulated timing \
             above is unaffected.")
  in
  let run bench platform scale domains =
    match
      ( Grover_suite.Suite.by_id bench,
        Grover_memsim.Platform.by_name platform )
    with
    | None, _ ->
        `Error
          ( false,
            Printf.sprintf "unknown benchmark %s; try: %s" bench
              (String.concat ", "
                 (List.map
                    (fun c -> c.Grover_suite.Kit.id)
                    Grover_suite.Suite.all)) )
    | _, None -> `Error (false, "unknown platform " ^ platform)
    | Some case, Some plat ->
        let cmp = Grover_suite.Harness.compare case ~platform:plat ~scale in
        Printf.printf "%s on %s:\n" cmp.Grover_suite.Harness.case_id platform;
        Printf.printf "  with local memory:    %.3f ms\n"
          (cmp.Grover_suite.Harness.with_lm.Grover_suite.Harness.seconds *. 1e3);
        Printf.printf "  without local memory: %.3f ms\n"
          (cmp.Grover_suite.Harness.without_lm.Grover_suite.Harness.seconds *. 1e3);
        Printf.printf "  normalized perf:      %.2f -> keep the version %s\n"
          cmp.Grover_suite.Harness.normalized
          (if cmp.Grover_suite.Harness.normalized > 1.0 then
             "WITHOUT local memory"
           else "WITH local memory");
        if domains <> 1 then begin
          Printf.printf "host throughput (%s domain%s):\n"
            (if domains = 0 then "auto" else string_of_int domains)
            (if domains = 1 then "" else "s");
          List.iter
            (fun (label, v) ->
              let seconds, items =
                Grover_suite.Harness.wallclock ~domains case v ~scale
              in
              Printf.printf "  %-21s %.3f ms, %.0f work-items/sec\n" label
                (seconds *. 1e3)
                (float_of_int items /. seconds))
            [ ("with local memory:", Grover_suite.Harness.With_lm);
              ("without local memory:", Grover_suite.Harness.Without_lm) ]
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Run a bundled benchmark with and without local memory on a \
          simulated platform and pick the faster version.")
    Term.(ret (const run $ bench $ platform $ scale $ domains))

(* -- list ----------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (c : Grover_suite.Kit.case) ->
        Printf.printf "%-11s %-30s %s\n" c.Grover_suite.Kit.id
          c.Grover_suite.Kit.origin c.Grover_suite.Kit.description)
      Grover_suite.Suite.all;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled benchmarks.")
    Term.(ret (const run $ const ()))

let () =
  let info =
    Cmd.info "groverc" ~version:"1.0.0"
      ~doc:"Disable local memory usage in OpenCL kernels (Grover, ICPP 2014)."
  in
  exit (Cmd.eval (Cmd.group info [ transform_cmd; report_cmd; autotune_cmd; list_cmd ]))
