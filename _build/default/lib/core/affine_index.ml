(** Extraction of affine forms from IR index expressions.

    Walks the def-use chain of an index value — the same traversal that
    builds the paper's index expression trees — and folds it into an affine
    form over atoms. Integer casts are width changes on indexes and are
    treated as transparent (indexes are assumed in range, as the paper does
    implicitly by working on the source-level index expressions). *)

open Grover_ir
open Ssa
module Form = Atom.Form
module Q = Grover_support.Rational

(* A non-affine construct (e.g. lx * W with W an argument) stops the
   analysis; the caller then rejects the candidate. *)
let rec form_of (v : value) : Form.t option =
  match v with
  | Cint (_, n) -> Some (Form.of_int n)
  | Cfloat _ -> None
  | Arg _ -> Some (Form.atom v)
  | Vinstr i -> (
      match i.op with
      | Call _ | Phi _ -> Some (Form.atom v)
      | Binop (Add, a, b) -> map2 Form.add a b
      | Binop (Sub, a, b) -> map2 Form.sub a b
      | Binop (Mul, a, b) -> (
          match (form_of a, form_of b) with
          | Some fa, Some fb -> Form.mul fa fb
          | _ -> None)
      | Binop (Shl, a, Cint (_, s)) when s >= 0 && s < 62 ->
          Option.map (Form.scale (Q.of_int (1 lsl s))) (form_of a)
      | Binop ((Sdiv | Udiv), a, Cint (_, d)) when d > 0 -> (
          (* Exact only when every coefficient divides; used by kernels that
             recover a row index as (flat / width). *)
          match form_of a with
          | Some fa ->
              let q = Q.make 1 d in
              let scaled = Form.scale q fa in
              (* Accept only if the division is exact on all coefficients. *)
              let exact = ref (Q.is_integer (Form.constant scaled)) in
              Form.fold
                (fun _ c () -> if not (Q.is_integer c) then exact := false)
                scaled ();
              if !exact then Some scaled else None
          | None -> None)
      | Cast ((Sext | Zext | Trunc | Bitcast), x, t) when ty_is_integer t ->
          form_of x
      | _ -> None)

and map2 f a b =
  match (form_of a, form_of b) with
  | Some fa, Some fb -> Some (f fa fb)
  | _ -> None

(** Atoms of a form that are [get_local_id] calls, ordered by dimension. *)
let lid_atoms (f : Form.t) : value list =
  Form.atoms f
  |> List.filter Atom.is_lid
  |> List.sort (fun a b ->
         compare (Option.get (Atom.lid_dim a)) (Option.get (Atom.lid_dim b)))

(** Split a form into (thread-id terms, everything else). *)
let split_lid (f : Form.t) : Form.t * Form.t = Form.split ~on:Atom.is_lid f
