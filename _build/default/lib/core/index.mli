(** Data-index determination (paper §IV-C, Fig. 7): decomposing a flat
    local-array element index into per-dimension indexes.

    The IR linearises multi-dimensional accesses, so the paper's
    ['+ -> *' ] tree pattern becomes exact arithmetic here: each affine
    term splits across dimensions by truncated division by the dimension
    strides. The derived pattern of Fig. 7(b) (loop-dependent low-dimension
    terms) needs no special case. *)

module Form := Atom.Form

val strides : int list -> int list
(** [strides [d0; d1; d2]] is [[d1*d2; d2; 1]]. *)

val split_dims : dims:int list -> Form.t -> Form.t list option
(** Per-dimension indexes, highest dimension first; [None] when a
    coefficient is non-integral. Recombining with {!flatten} restores the
    input. *)

val flatten : dims:int list -> Form.t list -> Form.t
(** Inverse of {!split_dims}. *)
