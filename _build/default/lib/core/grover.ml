(** Grover — the compiler pass that disables local memory usage in OpenCL
    kernels (Fang, Sips, Jääskeläinen, Varbanescu; ICPP 2014).

    [run] takes a normalised kernel (see {!Grover_passes.Pipeline.normalize})
    and rewrites every selected software-cache use of local memory into
    direct global loads:

    + select candidates and classify GL/LS/LL operations ({!Access});
    + determine per-dimension data indexes ({!Affine_index}, {!Index});
    + create and solve the linear system for the thread-index
      correspondence ({!Solve});
    + duplicate the GL index chain with the solution substituted, insert
      the nGL, and replace the LL's uses ({!Rewrite});
    + clean up: DCE removes the dead staging code, and redundant local
      barriers are removed.

    Candidates that do not fit the software-cache pattern are left intact
    and reported with the reason, mirroring the paper's §VI-D limitations. *)

open Grover_ir
module Pass = Grover_passes

type outcome = {
  transformed : string list;  (** candidate names rewritten *)
  rejected : (string * string) list;  (** candidate name, reason *)
  reports : Report.entry list;
  barriers_removed : int;
}

let no_candidates = { transformed = []; rejected = []; reports = []; barriers_removed = 0 }

(** Transform [fn] in place.

    @param only restrict the rewrite to local buffers with these source
    names (e.g. [["As"]] to reproduce NVD-MM-A). Buffers not selected are
    preserved untouched and do not appear in [rejected]. *)
let run ?(only : string list option) (fn : Ssa.func) : outcome =
  Atom.assign_phi_names fn;
  let selected name =
    match only with None -> true | Some names -> List.mem name names
  in
  let classified = Access.candidates fn in
  let plans, rejected =
    List.fold_left
      (fun (plans, rejected) c ->
        match c with
        | Error r ->
            if selected r.Access.rej_name then
              (plans, (r.Access.rej_name, r.Access.reason) :: rejected)
            else (plans, rejected)
        | Ok cand ->
            if not (selected cand.Access.cand_name) then (plans, rejected)
            else (
              match Rewrite.analyse fn cand with
              | Ok plan -> (plan :: plans, rejected)
              | Error e ->
                  (plans, (e.Rewrite.err_candidate, e.Rewrite.err_reason) :: rejected)))
      ([], []) classified
  in
  let plans = List.rev plans and rejected = List.rev rejected in
  if plans = [] then { no_candidates with rejected }
  else begin
    let applied = List.map (fun plan -> (plan, Rewrite.apply fn plan)) plans in
    (* The staging code is now dead; remove it, then the barriers that only
       guarded it. *)
    Pass.Pipeline.cleanup fn;
    let barriers_removed = Rewrite.remove_local_barriers fn in
    Pass.Pipeline.cleanup fn;
    Verify.run fn;
    let reports =
      List.map
        (fun (plan, ngls) ->
          Report.of_plan ~kernel:fn.Ssa.f_name ~barriers_removed plan ~ngls)
        applied
    in
    {
      transformed = List.map (fun (p, _) -> p.Rewrite.cand.Access.cand_name) applied;
      rejected;
      reports;
      barriers_removed;
    }
  end

(** Compile + normalise + transform: the whole Fig. 9 pipeline on source.
    Returns one (function, outcome) per kernel in the source. *)
let run_on_source ?defines ?only (src : string) : (Ssa.func * outcome) list =
  Lower.compile ?defines src
  |> List.map (fun fn ->
         Pass.Pipeline.normalize fn;
         let o = run ?only fn in
         (fn, o))
