(** Index expression trees (paper §IV-B, Fig. 6) and the instruction
    duplication algorithm (paper Algorithm 1).

    A tree node mirrors the paper's [ExprNode]: a value, a [state] flag
    marking whether the node must be updated (i.e. its subtree contains a
    thread-index leaf being substituted), child pointers and a parent
    pointer. Building recurses through operand chains and stops at the four
    leaf kinds: call instructions, constants, arguments and phi nodes.

    [duplicate] re-creates the marked spine of the tree as fresh
    instructions inserted before a given point, re-using the unmarked shared
    subexpressions exactly as the paper describes, and splicing substitution
    values at the substituted leaves. *)

open Grover_ir
open Ssa

type node = {
  value : value;
  mutable state : bool;  (** needs update during duplication *)
  children : node list;
  mutable parent : node option;
}

let is_leaf_value (v : value) : bool =
  match v with
  | Cint _ | Cfloat _ | Arg _ -> true
  | Vinstr { op = Call _ | Phi _; _ } -> true
  | Vinstr _ -> false

(** Build the expression tree rooted at [v]. *)
let rec build (v : value) : node =
  let children =
    if is_leaf_value v then []
    else
      match v with
      | Vinstr i -> List.map build (operands i.op)
      | _ -> []
  in
  let n = { value = v; state = false; children; parent = None } in
  List.iter (fun c -> c.parent <- Some n) children;
  n

(** Mark every node whose value satisfies [p], and backtrack the [state]
    flag up to the root (paper §IV-E). Returns true if anything matched. *)
let mark (root : node) ~(p : value -> bool) : bool =
  let any = ref false in
  let rec go n =
    if p n.value then begin
      any := true;
      let rec up m =
        if not m.state then begin
          m.state <- true;
          match m.parent with Some par -> up par | None -> ()
        end
      in
      up n
    end;
    List.iter go n.children
  in
  go root;
  !any

let leaves (root : node) : node list =
  let acc = ref [] in
  let rec go n =
    if n.children = [] then acc := n :: !acc else List.iter go n.children
  in
  go root;
  List.rev !acc

(** Paper Algorithm 1. [subst v] supplies the replacement for substituted
    leaves (returning [None] leaves the value as-is). New instructions are
    inserted into [block] before instruction [pos], in post-order, so every
    operand is defined before its user. *)
let duplicate (root : node) ~(subst : value -> value option)
    ~(block : block) ~(pos : instr) : value =
  let rec dup (n : node) : value =
    match subst n.value with
    | Some replacement -> replacement
    | None ->
        if not n.state || n.children = [] then n.value
        else begin
          match n.value with
          | Vinstr old ->
              let new_ops = List.map dup n.children in
              (* Rebuild the opcode with the duplicated operands, in order. *)
              let remaining = ref new_ops in
              let next _ =
                match !remaining with
                | v :: rest ->
                    remaining := rest;
                    v
                | [] -> invalid_arg "duplicate: operand arity mismatch"
              in
              let op' = map_operands ~f:next old.op in
              let fresh = fresh_instr op' in
              insert_before block ~before:pos fresh;
              Vinstr fresh
          | v ->
              (* A marked leaf with no substitution: constants and arguments
                 are immutable values, reuse them. *)
              v
        end
  in
  dup root

(* -- Rendering (used by reports and the CLI) ------------------------------ *)

let rec render_value ?(depth = 12) (v : value) : string =
  if depth = 0 then "..."
  else
    match v with
    | Cint (_, n) -> string_of_int n
    | Cfloat f -> Printf.sprintf "%g" f
    | Arg _ -> Atom.name v
    | Vinstr i -> (
        match i.op with
        | Call _ | Phi _ -> Atom.name v
        | Binop (b, x, y) ->
            let sym =
              match b with
              | Add | Fadd -> "+"
              | Sub | Fsub -> "-"
              | Mul | Fmul -> "*"
              | Sdiv | Udiv | Fdiv -> "/"
              | Srem | Urem | Frem -> "%"
              | Shl -> "<<"
              | Ashr | Lshr -> ">>"
              | And -> "&"
              | Or -> "|"
              | Xor -> "^"
            in
            Printf.sprintf "(%s %s %s)"
              (render_value ~depth:(depth - 1) x)
              sym
              (render_value ~depth:(depth - 1) y)
        | Cast (_, x, _) -> render_value ~depth:(depth - 1) x
        | Load { ptr; index } ->
            Printf.sprintf "%s[%s]"
              (render_value ~depth:(depth - 1) ptr)
              (render_value ~depth:(depth - 1) index)
        | Alloca { aname; _ } -> aname
        | Select (c, a, b) ->
            Printf.sprintf "(%s ? %s : %s)"
              (render_value ~depth:(depth - 1) c)
              (render_value ~depth:(depth - 1) a)
              (render_value ~depth:(depth - 1) b)
        | _ -> Printf.sprintf "v%d" i.iid)

let render (root : node) : string = render_value root.value
