(** The transformation engine (paper §IV-E/F): given a candidate and the
    solved thread-index correspondence, create the new global load (nGL)
    and its index instructions before each local load (LL), and replace the
    LL's uses.

    The engine is plan/apply: every LL of a candidate is analysed first
    (pure); IR is only mutated once the whole candidate is known to be
    transformable, so a failing kernel is never left half-rewritten. *)

open Grover_ir
open Ssa
module Form = Atom.Form
module Q = Grover_support.Rational

type ll_plan = {
  ll : instr;
  gl : instr;
  ls : instr;
  solution : Solve.solution;
  ls_dims : Form.t list;
  ll_dims : Form.t list;
}

type plan = { cand : Access.candidate; lls : ll_plan list }

type error = { err_candidate : string; err_reason : string }

let fail c reason = Error { err_candidate = c.Access.cand_name; err_reason = reason }

let effective_dims (c : Access.candidate) : int list =
  if c.Access.dims = [] then [ 1 ] else c.Access.dims

(* -- Analysis -------------------------------------------------------------- *)

let instr_of = function Vinstr i -> Some i | _ -> None

(* Values the rewrite will reference at the LL insertion point: solution
   atoms plus the re-used (unmarked) parts of the GL chain. All must
   dominate the LL. *)
let dominance_ok (dom : Dom.t) (ll : instr) (vs : value list) : bool =
  List.for_all
    (fun v ->
      match instr_of v with
      | None -> true
      | Some def -> Dom.def_dominates_use dom ~def ~use:ll)
    vs

(* Collect the values [duplicate] would reuse: unmarked children of marked
   nodes, and the root itself if unmarked. *)
let reused_values (root : Expr_tree.node) : value list =
  let acc = ref [] in
  let rec go (n : Expr_tree.node) =
    if not n.Expr_tree.state then acc := n.Expr_tree.value :: !acc
    else List.iter go n.Expr_tree.children
  in
  go root;
  !acc

let analyse_ll (dom : Dom.t) (c : Access.candidate) (ll : instr) :
    (ll_plan, error) result =
  let dims = effective_dims c in
  let ll_index = match ll.op with Load { index; _ } -> index | _ -> assert false in
  match Affine_index.form_of ll_index with
  | None -> fail c "the local-load index is not an affine expression"
  | Some ll_flat -> (
      match Index.split_dims ~dims ll_flat with
      | None -> fail c "the local-load index does not decompose over the array shape"
      | Some ll_dims ->
          (* Try each (GL, LS) pair until one yields a usable solution
             (paper §IV-A: any pair gives the same correspondence; trying
             all of them is strictly more robust). *)
          let rec try_pairs last_err = function
            | [] ->
                Error
                  (Option.value last_err
                     ~default:
                       { err_candidate = c.Access.cand_name;
                         err_reason = "no usable (GL, LS) pair" })
            | (gl, ls) :: rest -> (
                let attempt =
                  let ls_index =
                    match ls.op with Store { index; _ } -> index | _ -> assert false
                  in
                  match Affine_index.form_of ls_index with
                  | None -> fail c "the local-store index is not affine"
                  | Some ls_flat -> (
                      match Index.split_dims ~dims ls_flat with
                      | None ->
                          fail c
                            "the local-store index does not decompose over \
                             the array shape"
                      | Some ls_dims -> (
                          match Solve.solve ~ls_dims ~ll_dims with
                          | Error f -> fail c (Solve.failure_message f)
                          | Ok solution -> (
                              (* The GL index may only depend on thread ids
                                 that the solution covers. *)
                              let gl_index =
                                match gl.op with
                                | Load { index; _ } -> index
                                | _ -> assert false
                              in
                              let tree = Expr_tree.build gl_index in
                              let solved_lids = List.map fst solution in
                              let is_solved v =
                                List.exists (value_equal v) solved_lids
                              in
                              let unsolved_lid = ref false in
                              ignore
                                (Expr_tree.mark tree ~p:(fun v ->
                                     if Atom.is_lid v && not (is_solved v) then
                                       unsolved_lid := true;
                                     is_solved v));
                              if !unsolved_lid then
                                fail c
                                  "the global-load index depends on a thread \
                                   id the store-index map does not determine"
                              else
                                let needed =
                                  reused_values tree
                                  @ List.concat_map
                                      (fun (_, f) -> Form.atoms f)
                                      solution
                                in
                                if not (dominance_ok dom ll needed) then
                                  fail c
                                    "a value needed by the new index does \
                                     not dominate the local load"
                                else Ok { ll; gl; ls; solution; ls_dims; ll_dims })))
                in
                match attempt with
                | Ok p -> Ok p
                | Error e -> try_pairs (Some e) rest)
          in
          try_pairs None c.Access.pairs)

let analyse (fn : func) (c : Access.candidate) : (plan, error) result =
  let dom = Dom.compute fn in
  (* Element types must match: the LL reads what the GL staged. *)
  let gl_elem_ok =
    List.for_all
      (fun (gl, _) ->
        match gl.op with
        | Load { ptr; _ } -> elem_of_ptr (type_of ptr) = c.Access.elem
        | _ -> false)
      c.Access.pairs
  in
  if not gl_elem_ok then
    fail c "the staged global data has a different element type"
  else
    let rec go acc = function
      | [] -> Ok { cand = c; lls = List.rev acc }
      | ll :: rest -> (
          match analyse_ll dom c ll with
          | Ok p -> go (p :: acc) rest
          | Error e -> Error e)
    in
    go [] c.Access.lls

(* -- Application ------------------------------------------------------------ *)

let to_i32 ~emit (v : value) : value =
  match type_of v with
  | I32 -> v
  | I1 | I8 | I16 -> emit (Cast (Sext, v, I32))
  | I64 -> emit (Cast (Trunc, v, I32))
  | _ -> invalid_arg "to_i32: non-integer index component"

(* Materialise an affine form as i32 arithmetic before the LL. *)
let materialise ~emit (f : Form.t) : value =
  match Form.to_atom f with
  | Some a -> to_i32 ~emit a
  | None ->
      let const = Option.get (Q.to_int (Form.constant f)) in
      Form.fold
        (fun atom coeff acc ->
          let c = Option.get (Q.to_int coeff) in
          let base = to_i32 ~emit atom in
          let term =
            if c = 1 then base else emit (Binop (Mul, base, Cint (I32, c)))
          in
          match acc with
          | Cint (I32, 0) -> term
          | _ -> emit (Binop (Add, acc, term)))
        f
        (Cint (I32, const))

let apply_ll (p : ll_plan) : instr =
  let block =
    match p.ll.parent with Some b -> b | None -> invalid_arg "detached LL"
  in
  let emit op =
    let i = fresh_instr op in
    insert_before block ~before:p.ll i;
    Vinstr i
  in
  (* Materialise the solution (paper §IV-D result), then duplicate the GL
     index chain substituting the thread-id leaves (paper §IV-E/F). *)
  let subst_tbl =
    List.map (fun (lid, f) -> (lid, materialise ~emit f)) p.solution
  in
  let gl_index = match p.gl.op with Load { index; _ } -> index | _ -> assert false in
  let tree = Expr_tree.build gl_index in
  let solved_lids = List.map fst subst_tbl in
  ignore
    (Expr_tree.mark tree ~p:(fun v -> List.exists (value_equal v) solved_lids));
  let subst v =
    List.find_map
      (fun (lid, repl) -> if value_equal v lid then Some repl else None)
      subst_tbl
  in
  let new_index = Expr_tree.duplicate tree ~subst ~block ~pos:p.ll in
  let gl_ptr = match p.gl.op with Load { ptr; _ } -> ptr | _ -> assert false in
  let ngl = fresh_instr (Load { ptr = gl_ptr; index = new_index }) in
  insert_before block ~before:p.ll ngl;
  ngl

let apply (fn : func) (plan : plan) : (instr * instr) list =
  (* Returns (LL, nGL) pairs; the caller builds reports from them. *)
  List.map
    (fun p ->
      let ngl = apply_ll p in
      replace_uses fn ~target:(Vinstr p.ll) ~by:(Vinstr ngl);
      (p.ll, ngl))
    plan.lls

(* -- Barrier cleanup (paper Fig. 1(b): barriers become redundant) ----------- *)

let has_local_memory_ops (fn : func) : bool =
  fold_instrs
    (fun acc i ->
      acc
      ||
      match i.op with
      | Load { ptr; _ } | Store { ptr; _ } -> (
          match type_of ptr with Ptr (Local, _) -> true | _ -> false)
      | Alloca { aspace = Local; _ } -> true
      | _ -> false)
    false fn

(** Remove local-fence barriers once no local memory operation remains.
    Mixed-fence barriers are narrowed to their global fence. *)
let remove_local_barriers (fn : func) : int =
  if has_local_memory_ops fn then 0
  else begin
    let removed = ref 0 in
    List.iter
      (fun b ->
        b.instrs <-
          List.filter_map
            (fun i ->
              match i.op with
              | Barrier { blocal = true; bglobal = false } ->
                  incr removed;
                  None
              | Barrier { blocal = true; bglobal = true } ->
                  i.op <- Barrier { blocal = false; bglobal = true };
                  Some i
              | _ -> Some i)
            b.instrs)
      fn.blocks;
    !removed
  end
