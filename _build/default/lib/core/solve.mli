(** Creating and solving the linear system of paper §III-B S2 / §IV-D.

    Unknowns are the [get_local_id] atoms of the local-store (LS) index;
    equations come from the per-dimension LS and LL indexes. Grover only
    proceeds on a unique, integral solution. *)

open Grover_ir

type solution = (Ssa.value * Atom.Form.t) list
(** Thread-index atom -> affine replacement (e.g. [lx' = ly]). *)

type failure =
  | Not_affine
  | Singular  (** the store-index map is not uniquely invertible *)
  | Inconsistent_dim of int
      (** a dimension without unknowns never matches between LS and LL *)
  | Non_integral  (** the solution needs fractional coefficients *)

val failure_message : failure -> string

val solve :
  ls_dims:Atom.Form.t list ->
  ll_dims:Atom.Form.t list ->
  (solution, failure) result
(** [solve ~ls_dims ~ll_dims] determines which thread wrote the element the
    local load reads. Dimension lists must have equal length (one form per
    local-array dimension, highest dimension first). *)
