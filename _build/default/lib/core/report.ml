(** Human-readable summaries of Grover's analysis, in the shape of the
    paper's Table III: the GL, LS, LL and nGL data indexes per candidate. *)

open Grover_ir
open Ssa
module Form = Atom.Form

type entry = {
  kernel : string;
  candidate : string;
  gl_index : string;  (** rendered flat global-load index expression *)
  ls_index : string list;  (** per-dimension LS index, highest dim first *)
  ll_index : string list;  (** per-dimension LL index of the first local load *)
  ngl_index : string;  (** rendered flat new-global-load index expression *)
  solution : (string * string) list;  (** lx' = ..., ly' = ... *)
  barriers_removed : int;
}

let form_to_string (f : Form.t) : string = Format.asprintf "%a" Form.pp f

let dims_to_string (fs : string list) : string =
  "(" ^ String.concat ", " fs ^ ")"

let of_plan ~(kernel : string) ~(barriers_removed : int)
    (plan : Rewrite.plan) ~(ngls : (instr * instr) list) : entry =
  match (plan.Rewrite.lls, ngls) with
  | first :: _, (_, first_ngl) :: _ ->
      let gl_index =
        match first.Rewrite.gl.op with
        | Load { index; _ } -> Expr_tree.render_value index
        | _ -> "?"
      in
      let ngl_index =
        match first_ngl.op with
        | Load { index; _ } -> Expr_tree.render_value index
        | _ -> "?"
      in
      {
        kernel;
        candidate = plan.Rewrite.cand.Access.cand_name;
        gl_index;
        ls_index = List.map form_to_string first.Rewrite.ls_dims;
        ll_index = List.map form_to_string first.Rewrite.ll_dims;
        ngl_index;
        solution =
          List.map
            (fun (lid, f) -> (Atom.name lid ^ "'", form_to_string f))
            first.Rewrite.solution;
        barriers_removed;
      }
  | _ -> invalid_arg "Report.of_plan: empty plan"

let pp_entry ppf (e : entry) =
  Format.fprintf ppf "@[<v 2>%s / %s:@,GL  index: %s@,LS  index: %s@,LL  index: %s@,nGL index: %s@,solution : %s@,barriers removed: %d@]"
    e.kernel e.candidate e.gl_index
    (dims_to_string e.ls_index)
    (dims_to_string e.ll_index)
    e.ngl_index
    (String.concat ", "
       (List.map (fun (l, r) -> Printf.sprintf "%s = %s" l r) e.solution))
    e.barriers_removed

let to_string (e : entry) : string = Format.asprintf "%a" pp_entry e
