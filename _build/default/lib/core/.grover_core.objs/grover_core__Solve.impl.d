lib/core/solve.ml: Affine_index Array Atom Grover_ir Grover_support List Option Printf Ssa
