lib/core/report.mli: Atom Format Grover_ir Rewrite Ssa
