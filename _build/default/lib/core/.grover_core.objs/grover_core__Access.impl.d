lib/core/access.ml: Grover_ir List Ssa
