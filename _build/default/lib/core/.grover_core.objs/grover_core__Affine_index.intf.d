lib/core/affine_index.mli: Atom Grover_ir Ssa
