lib/core/solve.mli: Atom Grover_ir Ssa
