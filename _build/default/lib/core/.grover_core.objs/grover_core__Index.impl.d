lib/core/index.ml: Array Atom Grover_support List
