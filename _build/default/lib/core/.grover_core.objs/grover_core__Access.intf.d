lib/core/access.mli: Grover_ir Ssa
