lib/core/atom.ml: Format Grover_ir Grover_support Hashtbl List Printf Ssa Stdlib
