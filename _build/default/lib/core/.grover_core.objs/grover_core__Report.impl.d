lib/core/report.ml: Access Atom Expr_tree Format Grover_ir List Printf Rewrite Ssa String
