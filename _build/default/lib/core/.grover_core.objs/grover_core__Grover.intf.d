lib/core/grover.mli: Grover_ir Report
