lib/core/affine_index.ml: Atom Grover_ir Grover_support List Option Ssa
