lib/core/index.mli: Atom
