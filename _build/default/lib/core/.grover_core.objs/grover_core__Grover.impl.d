lib/core/grover.ml: Access Atom Grover_ir Grover_passes List Lower Report Rewrite Ssa Verify
