lib/core/expr_tree.ml: Atom Grover_ir List Printf Ssa
