lib/core/rewrite.ml: Access Affine_index Atom Dom Expr_tree Grover_ir Grover_support Index List Option Solve Ssa
