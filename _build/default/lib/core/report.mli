(** Human-readable summaries of Grover's analysis — the shape of the
    paper's Table III: the GL, LS, LL and nGL data indexes per candidate. *)

open Grover_ir

type entry = {
  kernel : string;
  candidate : string;  (** source name of the local buffer *)
  gl_index : string;  (** rendered flat global-load index expression *)
  ls_index : string list;  (** per-dimension LS index, highest dim first *)
  ll_index : string list;  (** per-dimension LL index of the first local load *)
  ngl_index : string;  (** rendered flat new-global-load index expression *)
  solution : (string * string) list;  (** e.g. [("lx'", "ly"); ("ly'", "lx")] *)
  barriers_removed : int;
}

val form_to_string : Atom.Form.t -> string
val dims_to_string : string list -> string

val of_plan :
  kernel:string ->
  barriers_removed:int ->
  Rewrite.plan ->
  ngls:(Ssa.instr * Ssa.instr) list ->
  entry
(** Build an entry from an applied rewrite plan and its (LL, nGL) pairs. *)

val pp_entry : Format.formatter -> entry -> unit
val to_string : entry -> string
