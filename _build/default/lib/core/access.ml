(** Candidate selection (paper §IV-A): find the local data structures used
    as software caches and classify their accesses into GL (global load),
    LS (local store) and LL (local load) operations. *)

open Grover_ir
open Ssa

type candidate = {
  base : value;  (** the local alloca (or __local pointer argument) *)
  cand_name : string;
  dims : int list;  (** declared shape; [count] when unknown *)
  elem : ty;
  pairs : (instr * instr) list;  (** (GL load, LS store) pairs, in program order *)
  lls : instr list;  (** local loads from this structure *)
}

type rejection = { rej_name : string; reason : string }

let base_info (v : value) : (string * int list * ty) option =
  match v with
  | Vinstr { op = Alloca { aspace = Local; elem; dims; count; aname }; _ } ->
      let dims = if dims = [] then [ count ] else dims in
      Some ((if aname = "" then "local" else aname), dims, elem)
  | Arg a -> (
      match a.a_ty with
      | Ptr (Local, elem) -> Some (a.a_name, [], elem)
      | _ -> None)
  | _ -> None

(* Unwrap value-preserving casts: a staged element may travel through a
   bitcast between the global load and the local store. *)
let rec unwrap (v : value) : value =
  match v with
  | Vinstr { op = Cast (Bitcast, x, _); _ } -> unwrap x
  | _ -> v

let is_global_load (v : value) : instr option =
  match unwrap v with
  | Vinstr ({ op = Load { ptr; _ }; _ } as i) -> (
      match type_of ptr with
      | Ptr ((Global | Constant), _) -> Some i
      | _ -> None)
  | _ -> None

(** All local bases in the function, in definition order. *)
let local_bases (fn : func) : value list =
  let allocas =
    fold_instrs
      (fun acc i ->
        match i.op with
        | Alloca { aspace = Local; _ } -> Vinstr i :: acc
        | _ -> acc)
      [] fn
    |> List.rev
  in
  let args =
    List.filter_map
      (fun a ->
        match a.a_ty with Ptr (Local, _) -> Some (Arg a) | _ -> None)
      fn.f_args
  in
  allocas @ args

(** Classify every access to [base]. Returns either a candidate fitting the
    software-cache pattern, or the reason it does not fit. *)
let classify (fn : func) (base : value) : (candidate, rejection) result =
  match base_info base with
  | None -> invalid_arg "classify: not a local base"
  | Some (cand_name, dims, elem) ->
      let pairs = ref [] and lls = ref [] in
      let bad = ref None in
      let reject reason = if !bad = None then bad := Some reason in
      iter_instrs
        (fun i ->
          match i.op with
          | Load { ptr; _ } when value_equal ptr base -> lls := i :: !lls
          | Store { ptr; v; _ } when value_equal ptr base -> (
              match is_global_load v with
              | Some gl -> pairs := (gl, i) :: !pairs
              | None ->
                  reject
                    "local memory is written with computed values (used as \
                     scratch storage, not as a software cache)")
          | _ ->
              if List.exists (fun o -> value_equal o base) (operands i.op) then
                reject "the local buffer escapes into a non-memory operation")
        fn;
      (match (!pairs, !lls) with
      | [], _ -> reject "no (GL, LS) staging pair found"
      | _, [] -> reject "the staged data is never read from local memory"
      | _ -> ());
      (match !bad with
      | Some reason -> Error { rej_name = cand_name; reason }
      | None ->
          Ok
            {
              base;
              cand_name;
              dims;
              elem;
              pairs = List.rev !pairs;
              lls = List.rev !lls;
            })

let candidates (fn : func) : (candidate, rejection) result list =
  List.map (classify fn) (local_bases fn)
