(** Candidate selection (paper §IV-A): finding the local data structures
    used as software caches and classifying their accesses into GL (global
    load), LS (local store) and LL (local load) operations. *)

open Grover_ir

type candidate = {
  base : Ssa.value;  (** the local alloca (or [__local] pointer argument) *)
  cand_name : string;
  dims : int list;  (** declared shape; [[]] when unknown (pointer arg) *)
  elem : Ssa.ty;
  pairs : (Ssa.instr * Ssa.instr) list;
      (** (GL load, LS store) staging pairs, in program order. Multi-pass
          staging (paper's convolution case) yields several pairs; any of
          them determines the same correspondence. *)
  lls : Ssa.instr list;  (** local loads from this structure *)
}

type rejection = { rej_name : string; reason : string }

val local_bases : Ssa.func -> Ssa.value list
(** All local buffers of the kernel, in definition order. *)

val classify : Ssa.func -> Ssa.value -> (candidate, rejection) result
(** Classify every access to one local buffer. [Error] when the buffer does
    not fit the software-cache pattern (scratch usage, escapes, no staging
    pair, staged data never read). *)

val candidates : Ssa.func -> (candidate, rejection) result list
(** [classify] applied to every local buffer. *)
