(** Creating and solving the linear system (paper §III-B S2, §IV-D).

    Unknowns are the [get_local_id] atoms appearing in the LS index; the
    coefficient matrix comes from the per-dimension LS indexes; the
    right-hand sides are the per-dimension LL indexes minus the LS
    remainder terms. The system must have a unique solution, and the
    solution must have integer coefficients so it can be materialised as
    integer index arithmetic. *)

open Grover_ir
open Ssa
module Form = Atom.Form
module Q = Grover_support.Rational

type solution = (value * Form.t) list
(** Mapping: thread-index atom -> affine replacement. *)

type failure =
  | Not_affine  (** an index expression is not affine in the analysed atoms *)
  | Singular  (** the LS index map is not invertible (paper S2) *)
  | Inconsistent_dim of int
      (** a dimension without unknowns differs between LS and LL *)
  | Non_integral  (** the solution needs fractional coefficients *)

let failure_message = function
  | Not_affine -> "index expression is not affine"
  | Singular -> "the store-index map is not uniquely invertible"
  | Inconsistent_dim d ->
      Printf.sprintf "dimension %d of the load never matches the store" d
  | Non_integral -> "the solution has non-integral coefficients"

(** [solve ~ls_dims ~ll_dims] determines which thread [lx', ly', lz')] wrote
    the element the LL reads, as affine forms over the LL's atoms. *)
let solve ~(ls_dims : Form.t list) ~(ll_dims : Form.t list) :
    (solution, failure) result =
  (* Unknowns: lid atoms across all LS dimensions, ordered by dimension. *)
  let unknowns =
    List.concat_map Affine_index.lid_atoms ls_dims
    |> List.sort_uniq Atom.compare
    |> List.sort (fun a b ->
           compare (Option.get (Atom.lid_dim a)) (Option.get (Atom.lid_dim b)))
  in
  let n = List.length unknowns in
  if n = 0 then
    (* Nothing to invert: every thread stores the same element(s); the LL
       index directly selects the element, so the empty solution works iff
       every dimension is consistent. The caller still substitutes nothing.
       Consistency: LS remainder must be able to equal the LL index; since
       work-items share the block, accept and let the LL index stand. *)
    Ok []
  else begin
    (* Build equations only from dimensions that mention unknowns; other
       dimensions are consistency checks. *)
    let eqs = ref [] and checks = ref [] in
    List.iteri
      (fun i (ls_d, ll_d) ->
        let lid_part, rest = Affine_index.split_lid ls_d in
        if Form.atoms lid_part = [] then checks := (i, rest, ll_d) :: !checks
        else eqs := (lid_part, Form.sub ll_d rest) :: !eqs)
      (List.combine ls_dims ll_dims);
    let eqs = List.rev !eqs in
    if List.length eqs <> n then Error Singular
    else begin
      let a =
        Array.of_list
          (List.map
             (fun (lid_part, _) ->
               Array.of_list
                 (List.map (fun u -> Form.coeff u lid_part) unknowns))
             eqs)
      in
      let b = Array.of_list (List.map snd eqs) in
      match Atom.Solver.solve a b with
      | Atom.Solver.Singular -> Error Singular
      | Atom.Solver.Unique sol ->
          (* Integer-coefficient requirement for materialisation. *)
          let integral f =
            Q.is_integer (Form.constant f)
            && Form.fold (fun _ c acc -> acc && Q.is_integer c) f true
          in
          if not (Array.for_all integral sol) then Error Non_integral
          else begin
            (* Check dimensions without unknowns: after substituting the
               solution, LS remainder must equal the LL dimension. *)
            let subst_all f =
              List.fold_left2
                (fun acc u s -> Form.subst u s acc)
                f unknowns (Array.to_list sol)
            in
            let bad =
              List.find_opt
                (fun (_, rest, ll_d) ->
                  not (Form.equal (subst_all rest) ll_d))
                !checks
            in
            match bad with
            | Some (i, _, _) -> Error (Inconsistent_dim i)
            | None ->
                Ok (List.combine unknowns (Array.to_list sol))
          end
    end
  end
