(** Data-index determination (paper §IV-C, Fig. 7).

    The IR linearises multi-dimensional local accesses into a flat element
    index, so the '+ -> *' tree pattern of the paper becomes an exact
    arithmetic decomposition here: given the declared shape of the local
    array, each affine term of the flat index is split across dimensions by
    Euclidean division by the dimension strides. On the benchmark kernels
    this computes exactly the (x, y, z) tuples of the paper's Table III,
    and it additionally handles the 'derived pattern' of Fig. 7(b) (a
    loop-dependent term folded into the low dimension) with no special
    case. *)

module Form = Atom.Form
module Q = Grover_support.Rational

(** Strides for a shape: [dims = [d0; d1; d2]] gives [ [d1*d2; d2; 1] ]. *)
let strides (dims : int list) : int list =
  let rec go = function
    | [] -> []
    | [ _ ] -> [ 1 ]
    | _ :: rest as l ->
        ignore l;
        let tail = go rest in
        (List.hd rest * List.hd tail) :: tail
  in
  go dims

(* Truncated division: the sign of the remainder follows the coefficient.
   This matches the syntactic structure of flipped indexes such as
   [lm[7 - ly][7 - lx]], whose flat form is [63 - 8*ly - lx]: the [-lx]
   term must stay whole in the low dimension ([q = 0, r = -1]), not wrap
   into the high dimension as Euclidean division would. *)
let trunc_div_mod (c : int) (s : int) : int * int =
  let q = c / s in
  (q, c - (q * s))

(** Split a flat affine index into per-dimension affine indexes.

    Returns [None] when a coefficient is non-integral (the decomposition
    would not be exact). The result has one form per dimension, highest
    dimension first, and recombining with the strides yields the input. *)
let split_dims ~(dims : int list) (f : Form.t) : Form.t list option =
  let n = List.length dims in
  if n <= 1 then Some [ f ]
  else
    let ss = strides dims in
    let out = Array.make n Form.zero in
    let exception Not_integral in
    let scatter coeff mk =
      match Q.to_int coeff with
      | None -> raise Not_integral
      | Some c ->
          let rem = ref c in
          List.iteri
            (fun i s ->
              let q, r = trunc_div_mod !rem s in
              out.(i) <- Form.add out.(i) (mk q);
              rem := r)
            ss;
          assert (!rem = 0)
    in
    match
      Form.fold
        (fun atom coeff () ->
          scatter coeff (fun q -> Form.scale (Q.of_int q) (Form.atom atom)))
        f
        (scatter (Form.constant f) (fun q -> Form.const (Q.of_int q)))
    with
    | () -> Some (Array.to_list out)
    | exception Not_integral -> None

(** Recombine per-dimension indexes into the flat index (for checking). *)
let flatten ~(dims : int list) (parts : Form.t list) : Form.t =
  let ss = strides dims in
  List.fold_left2
    (fun acc s p -> Form.add acc (Form.scale (Q.of_int s) p))
    Form.zero ss parts
