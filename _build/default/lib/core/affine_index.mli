(** Extraction of affine forms from IR index expressions (paper §IV-B/C).

    Walks the def-use chain of an index value and folds it into an affine
    form over atoms (calls, arguments, phis). Returns [None] for non-affine
    constructs (e.g. a product of two atoms), which rejects the candidate —
    exactly the paper's linearity assumption (Eq. 2). *)

open Grover_ir

val form_of : Ssa.value -> Atom.Form.t option
(** Affine form of an index value; [None] when not affine in the atoms. *)

val lid_atoms : Atom.Form.t -> Ssa.value list
(** The [get_local_id] atoms of a form, ordered by dimension. *)

val split_lid : Atom.Form.t -> Atom.Form.t * Atom.Form.t
(** Separate the thread-id terms from the rest (remainder + constant). *)
