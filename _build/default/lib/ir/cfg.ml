(** Control-flow-graph views: numbering, reverse postorder, predecessors. *)

open Ssa

type t = {
  fn : func;
  order : block array;  (** blocks in reverse postorder; index 0 = entry *)
  index : (int, int) Hashtbl.t;  (** block id -> rpo index *)
  preds : block list array;  (** predecessors per rpo index *)
}

let compute (fn : func) : t =
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b.bid) then begin
      Hashtbl.add visited b.bid ();
      List.iter dfs (successors b);
      post := b :: !post
    end
  in
  dfs (entry fn);
  let order = Array.of_list !post in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.add index b.bid i) order;
  let preds = Array.make (Array.length order) [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt index s.bid with
          | Some i -> preds.(i) <- b :: preds.(i)
          | None -> ())
        (successors b))
    order;
  { fn; order; index; preds }

let rpo_index (t : t) (b : block) : int =
  match Hashtbl.find_opt t.index b.bid with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "block %s.%d unreachable" b.b_name b.bid)

let is_reachable (t : t) (b : block) : bool = Hashtbl.mem t.index b.bid

let preds (t : t) (b : block) : block list = t.preds.(rpo_index t b)

let n_blocks (t : t) : int = Array.length t.order

(** Drop blocks unreachable from the entry (keeps phi lists consistent). *)
let prune_unreachable (fn : func) : unit =
  let t = compute fn in
  let reachable b = is_reachable t b in
  fn.blocks <- List.filter reachable fn.blocks;
  iter_instrs
    (fun i ->
      match i.op with
      | Phi p -> p.incoming <- List.filter (fun (b, _) -> reachable b) p.incoming
      | _ -> ())
    fn
