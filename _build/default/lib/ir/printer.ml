(** Textual rendering of the IR, LLVM-flavoured. Stable enough to assert on
    in tests and to show users in the examples and the [groverc] CLI. *)

open Ssa

let rec pp_ty ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | I1 -> Format.pp_print_string ppf "i1"
  | I8 -> Format.pp_print_string ppf "i8"
  | I16 -> Format.pp_print_string ppf "i16"
  | I32 -> Format.pp_print_string ppf "i32"
  | I64 -> Format.pp_print_string ppf "i64"
  | F32 -> Format.pp_print_string ppf "f32"
  | Vec (t, n) -> Format.fprintf ppf "<%d x %a>" n pp_ty t
  | Ptr (sp, t) -> Format.fprintf ppf "%a %s*" pp_ty t (space_name sp)

and space_name = function
  | Global -> "global"
  | Local -> "local"
  | Constant -> "constant"
  | Private -> "private"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | Shl -> "shl" | Ashr -> "ashr" | Lshr -> "lshr"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Frem -> "frem"

let icmp_name = function
  | Ieq -> "eq" | Ine -> "ne"
  | Islt -> "slt" | Isle -> "sle" | Isgt -> "sgt" | Isge -> "sge"
  | Iult -> "ult" | Iule -> "ule" | Iugt -> "ugt" | Iuge -> "uge"

let fcmp_name = function
  | Foeq -> "oeq" | Fone -> "one"
  | Folt -> "olt" | Fole -> "ole" | Fogt -> "ogt" | Foge -> "oge"

let cast_name = function
  | Sext -> "sext" | Zext -> "zext" | Trunc -> "trunc"
  | Si_to_fp -> "sitofp" | Ui_to_fp -> "uitofp" | Fp_to_si -> "fptosi"
  | Bitcast -> "bitcast"

let pp_value ppf (v : value) =
  match v with
  | Cint (I1, n) -> Format.fprintf ppf "%s" (if n <> 0 then "true" else "false")
  | Cint (_, n) -> Format.fprintf ppf "%d" n
  | Cfloat f -> Format.fprintf ppf "%h" f
  | Arg a -> Format.fprintf ppf "%%%s" a.a_name
  | Vinstr i -> Format.fprintf ppf "%%v%d" i.iid

let pp_typed ppf v = Format.fprintf ppf "%a %a" pp_ty (type_of v) pp_value v

let pp_block_ref ppf (b : block) = Format.fprintf ppf "%%%s.%d" b.b_name b.bid

let pp_opcode ppf (op : opcode) =
  match op with
  | Binop (b, x, y) ->
      Format.fprintf ppf "%s %a, %a" (binop_name b) pp_typed x pp_value y
  | Icmp (c, x, y) ->
      Format.fprintf ppf "icmp %s %a, %a" (icmp_name c) pp_typed x pp_value y
  | Fcmp (c, x, y) ->
      Format.fprintf ppf "fcmp %s %a, %a" (fcmp_name c) pp_typed x pp_value y
  | Select (c, x, y) ->
      Format.fprintf ppf "select %a, %a, %a" pp_typed c pp_typed x pp_typed y
  | Cast (k, v, t) ->
      Format.fprintf ppf "%s %a to %a" (cast_name k) pp_typed v pp_ty t
  | Call { callee; args; ret } ->
      Format.fprintf ppf "call %a @%s(%a)" pp_ty ret callee
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_typed)
        args
  | Alloca { aspace; elem; count; dims; aname } ->
      Format.fprintf ppf "alloca %s %a x %d [%s] ; %s" (space_name aspace)
        pp_ty elem count
        (String.concat "x" (List.map string_of_int dims))
        aname
  | Load { ptr; index } ->
      Format.fprintf ppf "load %a[%a]" pp_typed ptr pp_value index
  | Store { ptr; index; v } ->
      Format.fprintf ppf "store %a, %a[%a]" pp_typed v pp_typed ptr pp_value index
  | Extract (v, lane) ->
      Format.fprintf ppf "extractelement %a, %a" pp_typed v pp_value lane
  | Insert (v, lane, s) ->
      Format.fprintf ppf "insertelement %a, %a, %a" pp_typed v pp_value lane
        pp_typed s
  | Vecbuild (t, vs) ->
      Format.fprintf ppf "vecbuild %a (%a)" pp_ty t
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_value)
        vs
  | Phi { incoming; p_ty } ->
      Format.fprintf ppf "phi %a %a" pp_ty p_ty
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (b, v) ->
             Format.fprintf ppf "[%a, %a]" pp_value v pp_block_ref b))
        incoming
  | Br b -> Format.fprintf ppf "br %a" pp_block_ref b
  | Cond_br (c, t, e) ->
      Format.fprintf ppf "br %a, %a, %a" pp_typed c pp_block_ref t pp_block_ref e
  | Ret -> Format.pp_print_string ppf "ret void"
  | Barrier { blocal; bglobal } ->
      Format.fprintf ppf "barrier%s%s"
        (if blocal then " local" else "")
        (if bglobal then " global" else "")

let pp_instr ppf (i : instr) =
  match type_of_opcode i.op with
  | Void -> Format.fprintf ppf "  %a" pp_opcode i.op
  | _ -> Format.fprintf ppf "  %%v%d = %a" i.iid pp_opcode i.op

let pp_block ppf (b : block) =
  Format.fprintf ppf "%s.%d:@." b.b_name b.bid;
  List.iter (fun i -> Format.fprintf ppf "%a@." pp_instr i) b.instrs;
  match b.term with
  | Some t -> Format.fprintf ppf "%a@." pp_instr t
  | None -> Format.fprintf ppf "  <missing terminator>@."

let pp_func ppf (fn : func) =
  Format.fprintf ppf "kernel @%s(%a) {@." fn.f_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%a %%%s" pp_ty a.a_ty a.a_name))
    fn.f_args;
  List.iter (fun b -> pp_block ppf b) fn.blocks;
  Format.fprintf ppf "}@."

let func_to_string fn = Format.asprintf "%a" pp_func fn
