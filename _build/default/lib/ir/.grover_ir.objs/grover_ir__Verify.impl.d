lib/ir/verify.ml: Cfg Dom Format List Printer Ssa
