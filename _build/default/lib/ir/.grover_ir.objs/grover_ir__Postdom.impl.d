lib/ir/postdom.ml: Array Cfg List Ssa
