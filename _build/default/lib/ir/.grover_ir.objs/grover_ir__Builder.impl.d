lib/ir/builder.ml: Ssa
