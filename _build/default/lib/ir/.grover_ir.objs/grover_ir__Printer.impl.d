lib/ir/printer.ml: Format List Ssa String
