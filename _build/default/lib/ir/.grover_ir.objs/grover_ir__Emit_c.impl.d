lib/ir/emit_c.ml: Buffer Cfg Dom Hashtbl List Postdom Printf Ssa String
