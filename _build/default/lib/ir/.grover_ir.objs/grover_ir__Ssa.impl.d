lib/ir/ssa.ml: Float List Option
