lib/ir/lower.ml: Ast Builder Builtins Cfg Grover_clc Hashtbl List Loc Option Parser Sema Ssa Verify
