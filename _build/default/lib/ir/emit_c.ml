(** OpenCL C source emission.

    Turns a (possibly Grover-transformed) kernel back into compilable
    OpenCL C, so the tool's output can be handed to a real vendor runtime —
    the role SPIR export plays in the paper's Fig. 9 pipeline.

    The CFGs produced by this pipeline are reducible and structured
    (diamonds and natural loops), so emission is a structural walk:
    conditionals re-join at the branch block's immediate post-dominator and
    natural loops become [for (;;)] with an exit [break]. Phi nodes are
    destructed into assignments on the incoming edges. Instructions are
    emitted in three-address form ([v12 = v10 + v11;]), which is ugly but
    unambiguous; a round-trip through the front-end validates it.

    @raise Unstructured when the CFG does not fit (e.g. hand-built IR with
    irreducible flow). *)

open Ssa

exception Unstructured of string

let fail fmt = Printf.ksprintf (fun m -> raise (Unstructured m)) fmt

(* -- Names and types -------------------------------------------------------- *)

let var (i : instr) = Printf.sprintf "v%d" i.iid

let rec c_type (t : ty) : string =
  match t with
  | Void -> "void"
  | I1 -> "int"
  | I8 -> "uchar"
  | I16 -> "ushort"
  | I32 -> "int"
  | I64 -> "long"
  | F32 -> "float"
  | Vec (e, n) -> Printf.sprintf "%s%d" (c_type e) n
  | Ptr (_, e) -> c_type e ^ "*"

let space_qual = function
  | Global -> "__global "
  | Constant -> "__constant "
  | Local -> "__local "
  | Private -> ""

let float_lit (f : float) : string =
  let s = Printf.sprintf "%.9g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then
    s ^ "f"
  else s ^ ".0f"

let alloca_name (i : instr) : string =
  match i.op with
  | Alloca { aname; _ } when aname <> "" -> Printf.sprintf "%s_%d" aname i.iid
  | _ -> Printf.sprintf "arr%d" i.iid

let rv (v : value) : string =
  match v with
  | Cint (I1, n) -> if n <> 0 then "1" else "0"
  | Cint (_, n) -> string_of_int n
  | Cfloat f -> float_lit f
  | Arg a -> a.a_name
  | Vinstr ({ op = Alloca _; _ } as i) -> alloca_name i
  | Vinstr i -> var i

let unsigned_cast (t : ty) : string =
  match t with
  | I8 -> "(uchar)"
  | I16 -> "(ushort)"
  | I32 -> "(uint)"
  | I64 -> "(ulong)"
  | _ -> ""

(* -- Per-instruction statements ---------------------------------------------- *)

let lane_suffix (lane : value) : string =
  match lane with
  | Cint (_, n) when n >= 0 && n < 16 -> Printf.sprintf ".s%x" n
  | _ -> fail "dynamic vector lane indexes cannot be emitted as OpenCL C"

let icmp_c (c : icmp) (a : value) (b : value) : string =
  let u = unsigned_cast (type_of a) in
  match c with
  | Ieq -> Printf.sprintf "%s == %s" (rv a) (rv b)
  | Ine -> Printf.sprintf "%s != %s" (rv a) (rv b)
  | Islt -> Printf.sprintf "%s < %s" (rv a) (rv b)
  | Isle -> Printf.sprintf "%s <= %s" (rv a) (rv b)
  | Isgt -> Printf.sprintf "%s > %s" (rv a) (rv b)
  | Isge -> Printf.sprintf "%s >= %s" (rv a) (rv b)
  | Iult -> Printf.sprintf "%s%s < %s%s" u (rv a) u (rv b)
  | Iule -> Printf.sprintf "%s%s <= %s%s" u (rv a) u (rv b)
  | Iugt -> Printf.sprintf "%s%s > %s%s" u (rv a) u (rv b)
  | Iuge -> Printf.sprintf "%s%s >= %s%s" u (rv a) u (rv b)

let fcmp_c (c : fcmp) (a : value) (b : value) : string =
  let op =
    match c with
    | Foeq -> "==" | Fone -> "!=" | Folt -> "<" | Fole -> "<="
    | Fogt -> ">" | Foge -> ">="
  in
  Printf.sprintf "%s %s %s" (rv a) op (rv b)

let binop_c (b : binop) (x : value) (y : value) : string =
  let u = unsigned_cast (type_of x) in
  match b with
  | Add | Fadd -> Printf.sprintf "%s + %s" (rv x) (rv y)
  | Sub | Fsub -> Printf.sprintf "%s - %s" (rv x) (rv y)
  | Mul | Fmul -> Printf.sprintf "%s * %s" (rv x) (rv y)
  | Sdiv | Fdiv -> Printf.sprintf "%s / %s" (rv x) (rv y)
  | Udiv -> Printf.sprintf "%s%s / %s%s" u (rv x) u (rv y)
  | Srem | Frem -> Printf.sprintf "%s %% %s" (rv x) (rv y)
  | Urem -> Printf.sprintf "%s%s %% %s%s" u (rv x) u (rv y)
  | Shl -> Printf.sprintf "%s << %s" (rv x) (rv y)
  | Ashr -> Printf.sprintf "%s >> %s" (rv x) (rv y)
  | Lshr -> Printf.sprintf "%s%s >> %s" u (rv x) (rv y)
  | And -> Printf.sprintf "%s & %s" (rv x) (rv y)
  | Or -> Printf.sprintf "%s | %s" (rv x) (rv y)
  | Xor -> Printf.sprintf "%s ^ %s" (rv x) (rv y)

(* Instruction -> statement lines (empty for phis and allocas). *)
let instr_stmts (i : instr) : string list =
  match i.op with
  | Phi _ | Alloca _ -> []
  | Binop (b, x, y) -> [ Printf.sprintf "%s = %s;" (var i) (binop_c b x y) ]
  | Icmp (c, x, y) -> [ Printf.sprintf "%s = %s;" (var i) (icmp_c c x y) ]
  | Fcmp (c, x, y) -> [ Printf.sprintf "%s = %s;" (var i) (fcmp_c c x y) ]
  | Select (c, x, y) ->
      [ Printf.sprintf "%s = %s ? %s : %s;" (var i) (rv c) (rv x) (rv y) ]
  | Cast (k, v, t) ->
      let cast =
        match k with
        | Sext | Trunc | Bitcast | Fp_to_si -> Printf.sprintf "(%s)" (c_type t)
        | Zext -> Printf.sprintf "(%s)%s" (c_type t) (unsigned_cast (type_of v))
        | Si_to_fp -> "(float)"
        | Ui_to_fp -> Printf.sprintf "(float)%s" (unsigned_cast (type_of v))
      in
      [ Printf.sprintf "%s = %s%s;" (var i) cast (rv v) ]
  | Call { callee; args; ret } ->
      let call =
        Printf.sprintf "%s(%s)" callee (String.concat ", " (List.map rv args))
      in
      if ret = Void then [ call ^ ";" ]
      else [ Printf.sprintf "%s = %s;" (var i) call ]
  | Load { ptr; index } ->
      [ Printf.sprintf "%s = %s[%s];" (var i) (rv ptr) (rv index) ]
  | Store { ptr; index; v } ->
      [ Printf.sprintf "%s[%s] = %s;" (rv ptr) (rv index) (rv v) ]
  | Extract (v, lane) ->
      [ Printf.sprintf "%s = %s%s;" (var i) (rv v) (lane_suffix lane) ]
  | Insert (v, lane, s) ->
      [ Printf.sprintf "%s = %s;" (var i) (rv v);
        Printf.sprintf "%s%s = %s;" (var i) (lane_suffix lane) (rv s) ]
  | Vecbuild (t, vs) ->
      [ Printf.sprintf "%s = (%s)(%s);" (var i) (c_type t)
          (String.concat ", " (List.map rv vs)) ]
  | Barrier { blocal; bglobal } ->
      let flags =
        match (blocal, bglobal) with
        | true, true -> "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE"
        | true, false -> "CLK_LOCAL_MEM_FENCE"
        | false, true -> "CLK_GLOBAL_MEM_FENCE"
        | false, false -> "CLK_LOCAL_MEM_FENCE"
      in
      [ Printf.sprintf "barrier(%s);" flags ]
  | Br _ | Cond_br _ | Ret -> []

(* -- Structured emission ------------------------------------------------------- *)

type context = {
  fn : func;
  dom : Dom.t;
  pdom : Postdom.t;
  headers : (int, unit) Hashtbl.t;  (** loop-header block ids *)
  bodies : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** header bid -> block ids of the natural loop *)
  buf : Buffer.t;
  mutable indent : int;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

(* Copies for the phis of [target] along the edge [src -> target].
   Two-phase (through per-phi temporaries) so that parallel-copy semantics
   survive swaps and chains among the phis. *)
let phi_copies ctx ~(src : block) ~(target : block) : unit =
  let phis =
    List.filter_map
      (fun i ->
        match i.op with
        | Phi { incoming; _ } -> (
            match List.find_opt (fun (b, _) -> b.bid = src.bid) incoming with
            | Some (_, v) -> Some (i, v)
            | None -> fail "phi without incoming for emitted edge")
        | _ -> None)
      target.instrs
  in
  match phis with
  | [] -> ()
  | [ (i, v) ] -> line ctx "%s = %s;" (var i) (rv v)
  | _ ->
      List.iter (fun (i, v) -> line ctx "%s_t = %s;" (var i) (rv v)) phis;
      List.iter (fun (i, _) -> line ctx "%s = %s_t;" (var i) (var i)) phis

let is_back_edge ctx ~(src : block) ~(target : block) : bool =
  Hashtbl.mem ctx.headers target.bid && Dom.dominates ctx.dom target src

(* Emit the region starting at [b] and stopping (exclusive) at [stop].
   [loop] is the innermost enclosing (header, exit) pair. *)
let rec emit_region ctx (b : block) ~(stop : block option)
    ~(loop : (block * block option) option) : unit =
  match stop with
  | Some s when s.bid = b.bid -> ()
  | _ ->
      if Hashtbl.mem ctx.headers b.bid then emit_loop ctx b ~stop ~loop
      else emit_straight ctx b ~stop ~loop

and emit_body ctx (b : block) : unit =
  List.iter (fun i -> List.iter (fun s -> line ctx "%s" s) (instr_stmts i)) b.instrs

and goto ctx (src : block) (target : block) ~(stop : block option)
    ~(loop : (block * block option) option) : unit =
  phi_copies ctx ~src ~target;
  if is_back_edge ctx ~src ~target then begin
    match loop with
    | Some (h, _) when h.bid = target.bid -> () (* end of iteration *)
    | _ -> fail "back edge to a non-enclosing loop header"
  end
  else
    match loop with
    | Some (_, Some ex) when ex.bid = target.bid -> line ctx "break;"
    | _ -> emit_region ctx target ~stop ~loop

and emit_straight ctx (b : block) ~stop ~loop : unit =
  emit_body ctx b;
  match b.term with
  | Some { op = Ret; _ } -> line ctx "return;"
  | Some { op = Br t; _ } -> goto ctx b t ~stop ~loop
  | Some { op = Cond_br (c, t, e); _ } -> (
      let join = Postdom.immediate ctx.pdom b in
      let emit_branch target =
        ctx.indent <- ctx.indent + 1;
        goto ctx b target ~stop:join ~loop;
        ctx.indent <- ctx.indent - 1
      in
      line ctx "if (%s) {" (rv c);
      emit_branch t;
      line ctx "} else {";
      emit_branch e;
      line ctx "}";
      match join with
      | Some j ->
          (* Continue after the join unless (a) it is the outer stop, or
             (b) it is the enclosing loop's exit or header — in those cases
             every branch already emitted its own transfer (break / end of
             iteration) and nothing falls through to here. *)
          let is_loop_boundary =
            match loop with
            | Some (h, ex) ->
                h.bid = j.bid
                || (match ex with Some e -> e.bid = j.bid | None -> false)
            | None -> false
          in
          if
            (not is_loop_boundary)
            && (match stop with Some s -> s.bid <> j.bid | None -> true)
          then emit_region ctx j ~stop ~loop
      | None -> ())
  | _ -> fail "missing terminator"

and emit_loop ctx (header : block) ~stop ~loop : unit =
  (* Determine the loop exit: the header's cond_br arm that leaves the
     natural loop body. *)
  let body =
    match Hashtbl.find_opt ctx.bodies header.bid with
    | Some b -> b
    | None -> fail "loop body missing for %s.%d" header.b_name header.bid
  in
  let exit_block, body_entry, negate =
    match header.term with
    | Some { op = Cond_br (_, t, e); _ } ->
        let in_loop x = Hashtbl.mem body x.bid in
        if not (in_loop t) then (Some t, e, false)
        else if not (in_loop e) then (Some e, t, true)
        else fail "cannot identify the loop exit of %s.%d" header.b_name header.bid
    | Some { op = Br t; _ } -> (None, t, true)
    | _ -> fail "loop header without branch"
  in
  line ctx "for (;;) {";
  ctx.indent <- ctx.indent + 1;
  emit_body ctx header;
  (match (header.term, exit_block) with
  | Some { op = Cond_br (c, _, _); _ }, Some ex ->
      line ctx "if (%s%s%s) {" (if negate then "!(" else "") (rv c)
        (if negate then ")" else "");
      ctx.indent <- ctx.indent + 1;
      phi_copies ctx ~src:header ~target:ex;
      line ctx "break;";
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      phi_copies ctx ~src:header ~target:body_entry;
      emit_region ctx body_entry ~stop:(Some header)
        ~loop:(Some (header, exit_block))
  | Some { op = Br _; _ }, None ->
      phi_copies ctx ~src:header ~target:body_entry;
      emit_region ctx body_entry ~stop:(Some header)
        ~loop:(Some (header, exit_block))
  | _ -> fail "unsupported loop shape");
  ctx.indent <- ctx.indent - 1;
  line ctx "}";
  match exit_block with
  | Some ex -> emit_region ctx ex ~stop ~loop
  | None -> ()

(* -- Top level -------------------------------------------------------------------- *)

let kernel_to_c (fn : func) : string =
  let dom = Dom.compute fn in
  let pdom = Postdom.compute fn in
  let cfg = dom.Dom.cfg in
  let headers = Hashtbl.create 4 in
  let bodies = Hashtbl.create 4 in
  (* Natural loops from back edges: body = header + everything reaching the
     latch without passing the header. *)
  let add_loop (latch : block) (header : block) =
    Hashtbl.replace headers header.bid ();
    let body =
      match Hashtbl.find_opt bodies header.bid with
      | Some b -> b
      | None ->
          let b = Hashtbl.create 8 in
          Hashtbl.replace b header.bid ();
          Hashtbl.replace bodies header.bid b;
          b
    in
    let rec pull (x : block) =
      if not (Hashtbl.mem body x.bid) then begin
        Hashtbl.replace body x.bid ();
        List.iter pull (Cfg.preds cfg x)
      end
    in
    pull latch
  in
  iter_instrs
    (fun i ->
      match (i.op, i.parent) with
      | Br t, Some src when Dom.dominates dom t src -> add_loop src t
      | Cond_br (_, t, e), Some src ->
          if Dom.dominates dom t src then add_loop src t;
          if Dom.dominates dom e src then add_loop src e
      | _ -> ())
    fn;
  let buf = Buffer.create 1024 in
  let ctx = { fn; dom; pdom; headers; bodies; buf; indent = 1 } in
  (* Signature. *)
  let param (a : arg) =
    match a.a_ty with
    | Ptr (sp, e) -> Printf.sprintf "%s%s *%s" (space_qual sp) (c_type e) a.a_name
    | t -> Printf.sprintf "%s %s" (c_type t) a.a_name
  in
  Buffer.add_string buf
    (Printf.sprintf "__kernel void %s(%s) {\n" fn.f_name
       (String.concat ", " (List.map param fn.f_args)));
  (* Declarations: arrays first (multi-dimensional local arrays are
     accessed flat in the IR, so they are declared flat), then scalar
     temporaries. *)
  iter_instrs
    (fun i ->
      match i.op with
      | Alloca { aspace; elem; count; _ } ->
          line ctx "%s%s %s[%d];"
            (match aspace with Local -> "__local " | _ -> "")
            (c_type elem) (alloca_name i) count
      | _ -> ())
    fn;
  iter_instrs
    (fun i ->
      match i.op with
      | Alloca _ -> ()
      | Phi _ ->
          let t = type_of_opcode i.op in
          line ctx "%s %s;" (c_type t) (var i);
          line ctx "%s %s_t;" (c_type t) (var i)
      | _ -> (
          match type_of_opcode i.op with
          | Void -> ()
          | t -> line ctx "%s %s;" (c_type t) (var i)))
    fn;
  emit_region ctx (entry fn) ~stop:None ~loop:None;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
