(** Post-dominator analysis: the Cooper–Harvey–Kennedy algorithm run on the
    reversed CFG, with a virtual exit joining all [Ret] blocks. Needed by
    the OpenCL C emitter to find the join block of a conditional. *)

open Ssa

type t = {
  cfg : Cfg.t;
  ipdom : int array;
      (** immediate post-dominator as an rpo index; [-1] means the virtual
          exit is the immediate post-dominator *)
}

let compute (fn : func) : t =
  let cfg = Cfg.compute fn in
  let n = Cfg.n_blocks cfg in
  (* Reverse postorder of the reversed graph = postorder of the forward
     graph; iterate in that order. Virtual exit = index n. *)
  let order =
    (* Postorder over the forward graph, exits first when iterating
       backwards; we simply iterate indices from high rpo to low, which is
       a reverse topological-ish order good enough for convergence. *)
    Array.init n (fun i -> n - 1 - i)
  in
  let ipdom = Array.make (n + 1) (-2) in
  (* -2 = undefined; exit (n) post-dominates itself. *)
  ipdom.(n) <- n;
  let succs i =
    let b = cfg.Cfg.order.(i) in
    match successors b with
    | [] -> [ n ] (* Ret: flows to the virtual exit *)
    | ss -> List.map (Cfg.rpo_index cfg) ss
  in
  let intersect a b =
    if a = b then a
    else if a = -2 then b
    else if b = -2 then a
    else begin
      (* Walk up the ipdom chain; indices compare by "closer to exit":
         larger rpo index is later in the function. Use chain walking with
         a depth map instead: compute by repeated parent steps. *)
      let rec ancestors x acc =
        if x = n || ipdom.(x) = -2 then x :: acc
        else if List.mem x acc then acc
        else ancestors ipdom.(x) (x :: acc)
      in
      let pa = ancestors a [] in
      let rec first_common x =
        if List.mem x pa then x
        else if x = n || ipdom.(x) = -2 then n
        else first_common ipdom.(x)
      in
      first_common b
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun i ->
        let processed = List.filter (fun s -> ipdom.(s) <> -2) (succs i) in
        match processed with
        | [] -> ()
        | first :: rest ->
            let new_ipdom = List.fold_left intersect first rest in
            if ipdom.(i) <> new_ipdom then begin
              ipdom.(i) <- new_ipdom;
              changed := true
            end)
      order
  done;
  (* ipdom currently stores, for each node, the representative of its
     post-dominator set head. Convert the self-reference at exit. *)
  { cfg; ipdom = Array.init n (fun i -> if ipdom.(i) = n then -1 else ipdom.(i)) }

(** Immediate post-dominator block of [b]; [None] when it is the virtual
    exit. *)
let immediate (t : t) (b : block) : block option =
  let i = Cfg.rpo_index t.cfg b in
  let p = t.ipdom.(i) in
  if p < 0 then None else Some t.cfg.Cfg.order.(p)
