(** OpenCL C builtin functions known to the front-end.

    Work-item functions take a dimension index and return [size_t] (modelled
    as [int]); math builtins are generically typed over float scalars and
    vectors; [barrier] takes fence flags. The predefined fence-flag macros
    are exposed as constants so kernels can say
    [barrier(CLK_LOCAL_MEM_FENCE)]. *)

type category =
  | Work_item  (** (uint dim) -> int : get_global_id and friends *)
  | Work_dim  (** () -> int : get_work_dim *)
  | Barrier  (** (uint flags) -> void *)
  | Math_1  (** gentype -> gentype over float base *)
  | Math_2  (** (gentype, gentype) -> gentype over float base *)
  | Math_3  (** (gentype, gentype, gentype) -> gentype over float base *)
  | Int_2  (** (igentype, igentype) -> igentype *)
  | Int_3  (** (igentype, igentype, igentype) -> igentype *)
  | Any_2  (** min/max: int or float gentype *)
  | Dot  (** (floatN, floatN) -> float *)

let work_item_functions =
  [ "get_global_id"; "get_local_id"; "get_group_id"; "get_global_size";
    "get_local_size"; "get_num_groups"; "get_global_offset" ]

let table : (string * category) list =
  List.map (fun n -> (n, Work_item)) work_item_functions
  @ [ ("get_work_dim", Work_dim);
      ("barrier", Barrier);
      ("sqrt", Math_1); ("native_sqrt", Math_1);
      ("rsqrt", Math_1); ("native_rsqrt", Math_1);
      ("fabs", Math_1);
      ("exp", Math_1); ("native_exp", Math_1);
      ("log", Math_1); ("native_log", Math_1);
      ("sin", Math_1); ("native_sin", Math_1);
      ("cos", Math_1); ("native_cos", Math_1);
      ("floor", Math_1); ("ceil", Math_1);
      ("fmax", Math_2); ("fmin", Math_2);
      ("pow", Math_2); ("fmod", Math_2); ("hypot", Math_2);
      ("native_divide", Math_2);
      ("mad", Math_3); ("fma", Math_3); ("clamp", Math_3); ("mix", Math_3);
      ("abs", Math_1);
      ("mul24", Int_2); ("mad24", Int_3);
      ("min", Any_2); ("max", Any_2);
      ("dot", Dot) ]

let category name = List.assoc_opt name table

let is_builtin name = category name <> None

(* Fence flags as in cl.h; usable with | in kernels. *)
let predefined_constants =
  [ ("CLK_LOCAL_MEM_FENCE", 1); ("CLK_GLOBAL_MEM_FENCE", 2) ]
