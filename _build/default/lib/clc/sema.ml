(** Type algebra of the OpenCL C subset: classification, usual arithmetic
    conversions, operator result types and implicit-conversion legality.

    The AST-to-IR lowering ([Grover_ir.Lower]) performs the actual checking
    pass; this module holds the pure typing rules so they can be tested in
    isolation. *)

open Ast

let is_integer_scalar = function
  | Bool | Char | UChar | Short | UShort | Int | UInt | Long | ULong -> true
  | Float -> false

let is_signed = function
  | Char | Short | Int | Long -> true
  | Bool | UChar | UShort | UInt | ULong | Float -> false

let scalar_rank = function
  | Bool -> 0
  | Char | UChar -> 1
  | Short | UShort -> 2
  | Int | UInt -> 3
  | Long | ULong -> 4
  | Float -> 5

let scalar_bits = function
  | Bool -> 1
  | Char | UChar -> 8
  | Short | UShort -> 16
  | Int | UInt | Float -> 32
  | Long | ULong -> 64

let sizeof_scalar s = max 1 (scalar_bits s / 8)

let rec sizeof = function
  | Void -> 0
  | Scalar s -> sizeof_scalar s
  | Vector (s, n) ->
      (* OpenCL: a 3-vector occupies the space of a 4-vector. *)
      let n = if n = 3 then 4 else n in
      sizeof_scalar s * n
  | Ptr _ -> 8
  | Array (t, n) -> sizeof t * n

let rec elem_type = function
  | Array (t, _) -> elem_type t
  | t -> t

(** Total number of scalar/vector elements in a (possibly nested) array. *)
let rec array_length = function
  | Array (t, n) -> n * array_length t
  | _ -> 1

let is_arith = function Scalar _ | Vector _ -> true | _ -> false
let is_integer_ty = function Scalar s -> is_integer_scalar s | _ -> false

let is_float_based = function
  | Scalar Float | Vector (Float, _) -> true
  | _ -> false

(** Usual arithmetic conversions, restricted to OpenCL's rules: vectors only
    combine with their own scalar base type (which is then splatted) or with
    an identical vector type. Returns the common type. *)
let usual_conversions loc t1 t2 =
  match (t1, t2) with
  | Scalar s1, Scalar s2 ->
      if s1 = s2 then t1
      else
        let r1 = scalar_rank s1 and r2 = scalar_rank s2 in
        if r1 > r2 then t1
        else if r2 > r1 then t2
        else begin
          (* Same rank, mixed signedness: unsigned wins, as in C. *)
          match (is_signed s1, is_signed s2) with
          | true, false -> t2
          | false, true -> t1
          | _ -> t1
        end
  | Vector (s1, n1), Vector (s2, n2) ->
      if s1 = s2 && n1 = n2 then t1
      else
        Loc.errorf loc "cannot combine %s and %s" (ty_name t1) (ty_name t2)
  | Vector (s, _), Scalar s' when scalar_rank s' <= scalar_rank s -> t1
  | Scalar s', Vector (s, _) when scalar_rank s' <= scalar_rank s -> t2
  | _ ->
      Loc.errorf loc "cannot combine %s and %s in arithmetic" (ty_name t1)
        (ty_name t2)

(** Result type of a binary operator applied to already-converted operands
    of common type [t]. *)
let binop_result loc op t =
  match op with
  | Add | Sub | Mul | Div ->
      if is_arith t then t
      else Loc.errorf loc "operator %s needs arithmetic operands" (binop_name op)
  | Rem | Shl | Shr | BAnd | BOr | BXor ->
      if is_integer_ty t || (match t with Vector (s, _) -> is_integer_scalar s | _ -> false)
      then t
      else Loc.errorf loc "operator %s needs integer operands" (binop_name op)
  | Lt | Gt | Le | Ge | Eq | Ne -> (
      match t with
      | Scalar _ -> Scalar Int (* comparisons yield int 0/1, as in C *)
      | Vector (_, n) -> Vector (Int, n)
      | _ -> Loc.errorf loc "cannot compare values of type %s" (ty_name t))
  | LAnd | LOr -> Scalar Int

(** Can a value of type [src] be implicitly converted to [dst]? OpenCL C
    allows the scalar conversions of C plus scalar->vector splat. *)
let implicit_ok ~src ~dst =
  match (src, dst) with
  | t1, t2 when t1 = t2 -> true
  | Scalar _, Scalar _ -> true
  | Scalar s, Vector (v, _) -> scalar_rank s <= scalar_rank v
  | Ptr (sp1, t1), Ptr (sp2, t2) -> sp1 = sp2 && t1 = t2
  | Array (t1, _), Ptr (_, t2) -> t1 = t2 (* array decay *)
  | _ -> false

(** Result type of a builtin call given argument types. *)
let builtin_result loc name (args : ty list) : ty =
  let gentype_of = function
    | [] -> Loc.errorf loc "%s expects at least one argument" name
    | t :: rest ->
        List.iter
          (fun t' ->
            if t' <> t && not (implicit_ok ~src:t' ~dst:t) then
              Loc.errorf loc "%s: mismatched argument types %s vs %s" name
                (ty_name t) (ty_name t'))
          rest;
        t
  in
  match Builtins.category name with
  | None -> Loc.errorf loc "unknown function %s" name
  | Some cat -> (
      match cat with
      | Builtins.Work_item -> (
          match args with
          | [ t ] when is_integer_ty t -> Scalar Int
          | _ -> Loc.errorf loc "%s expects one integer argument" name)
      | Builtins.Work_dim ->
          if args = [] then Scalar Int
          else Loc.errorf loc "get_work_dim takes no arguments"
      | Builtins.Barrier -> (
          match args with
          | [ t ] when is_integer_ty t -> Void
          | _ -> Loc.errorf loc "barrier expects one integer flag argument")
      | Builtins.Math_1 -> (
          match args with
          | [ t ] when is_arith t -> t
          | _ -> Loc.errorf loc "%s expects one arithmetic argument" name)
      | Builtins.Math_2 | Builtins.Any_2 | Builtins.Int_2 -> (
          match args with
          | [ _; _ ] -> gentype_of args
          | _ -> Loc.errorf loc "%s expects two arguments" name)
      | Builtins.Math_3 | Builtins.Int_3 -> (
          match args with
          | [ _; _; _ ] -> gentype_of args
          | _ -> Loc.errorf loc "%s expects three arguments" name)
      | Builtins.Dot -> (
          match args with
          | [ Vector (Float, n); Vector (Float, m) ] when n = m -> Scalar Float
          | [ Scalar Float; Scalar Float ] -> Scalar Float
          | _ -> Loc.errorf loc "dot expects two float vectors"))

(** Vector component letters -> lane index. Supports .x/.y/.z/.w and
    .s0-.s9/.sa-.sf single-component selections. *)
let component_index loc ~width field =
  let idx =
    match field with
    | "x" -> Some 0
    | "y" -> Some 1
    | "z" -> Some 2
    | "w" -> Some 3
    | _ ->
        if String.length field = 2 && field.[0] = 's' then
          let c = Char.lowercase_ascii field.[1] in
          if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
          else if c >= 'a' && c <= 'f' then Some (Char.code c - Char.code 'a' + 10)
          else None
        else None
  in
  match idx with
  | Some i when i < width -> i
  | Some i ->
      Loc.errorf loc "component .%s (lane %d) out of range for width %d" field
        i width
  | None -> Loc.errorf loc "unsupported vector component .%s" field
