(** Recursive-descent parser for the OpenCL C subset. *)

open Ast

type state = { toks : (Token.t * Loc.t) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let peek_loc st = snd st.toks.(st.cur)

let peek_ahead st n =
  let i = st.cur + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.Eof

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let next st =
  let t = peek st and l = peek_loc st in
  advance st;
  (t, l)

let expect_punct st p =
  match next st with
  | Token.Punct q, _ when q = p -> ()
  | tok, l -> Loc.errorf l "expected %S but found %a" p Token.pp tok

let eat_punct st p =
  match peek st with
  | Token.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let eat_kw st k =
  match peek st with
  | Token.Kw q when q = k ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match next st with
  | Token.Ident name, _ -> name
  | tok, l -> Loc.errorf l "expected an identifier but found %a" Token.pp tok

(* -- Types -------------------------------------------------------------- *)

let scalar_of_name = function
  | "bool" -> Some Bool
  | "char" -> Some Char
  | "uchar" -> Some UChar
  | "short" -> Some Short
  | "ushort" -> Some UShort
  | "int" -> Some Int
  | "uint" -> Some UInt
  | "long" -> Some Long
  | "ulong" -> Some ULong
  | "float" -> Some Float
  | "size_t" -> Some Int (* flat model: size_t behaves as int *)
  | _ -> None

let vector_of_name name =
  let n = String.length name in
  if n < 2 then None
  else
    let digits_start =
      let rec back i =
        if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then back (i - 1)
        else i
      in
      back n
    in
    if digits_start = n || digits_start = 0 then None
    else
      let base = String.sub name 0 digits_start in
      let width = int_of_string (String.sub name digits_start (n - digits_start)) in
      match scalar_of_name base with
      | Some s when List.mem width [ 2; 3; 4; 8; 16 ] -> Some (Vector (s, width))
      | _ -> None

let is_type_qualifier = function
  | Token.Kw ("const" | "restrict" | "volatile") -> true
  | _ -> false

let is_addr_space_kw = function
  | Token.Kw ("global" | "local" | "constant" | "private") -> true
  | _ -> false

let addr_space_of_kw = function
  | "global" -> Global
  | "local" -> Local
  | "constant" -> Constant
  | _ -> Private

(* Does the token sequence at the cursor start a type? Used to resolve the
   cast-vs-expression ambiguity after '('. *)
let starts_type st =
  let rec scan n =
    match peek_ahead st n with
    | tok when is_type_qualifier tok || is_addr_space_kw tok -> scan (n + 1)
    | Token.Kw "unsigned" | Token.Kw "signed" -> true
    | Token.Kw
        ( "void" | "bool" | "char" | "uchar" | "short" | "ushort" | "int"
        | "uint" | "long" | "ulong" | "float" | "size_t" ) ->
        true
    | Token.Ident name -> vector_of_name name <> None
    | _ -> false
  in
  scan 0

let rec skip_qualifiers st =
  if is_type_qualifier (peek st) then begin
    advance st;
    skip_qualifiers st
  end

(* Parses [addr_space? qualifiers? base stars] and returns the type plus the
   explicit address space if one was written. *)
let parse_type st : addr_space option * ty =
  let space = ref None in
  let rec pre () =
    match peek st with
    | tok when is_type_qualifier tok ->
        advance st;
        pre ()
    | Token.Kw (("global" | "local" | "constant" | "private") as sp) ->
        advance st;
        space := Some (addr_space_of_kw sp);
        pre ()
    | _ -> ()
  in
  pre ();
  let l = peek_loc st in
  let base =
    match next st with
    | Token.Kw "void", _ -> Void
    | Token.Kw "unsigned", _ ->
        (match peek st with
        | Token.Kw ("char" | "short" | "int" | "long") -> (
            match next st with
            | Token.Kw "char", _ -> Scalar UChar
            | Token.Kw "short", _ -> Scalar UShort
            | Token.Kw "int", _ -> Scalar UInt
            | _ -> Scalar ULong)
        | _ -> Scalar UInt)
    | Token.Kw "signed", _ ->
        (match peek st with
        | Token.Kw ("char" | "short" | "int" | "long") -> (
            match next st with
            | Token.Kw "char", _ -> Scalar Char
            | Token.Kw "short", _ -> Scalar Short
            | Token.Kw "int", _ -> Scalar Int
            | _ -> Scalar Long)
        | _ -> Scalar Int)
    | Token.Kw kw, lk -> (
        match scalar_of_name kw with
        | Some s -> Scalar s
        | None -> Loc.errorf lk "%s does not start a type" kw)
    | Token.Ident name, lk -> (
        match vector_of_name name with
        | Some v -> v
        | None -> Loc.errorf lk "unknown type %s" name)
    | tok, lk -> Loc.errorf lk "expected a type, found %a" Token.pp tok
  in
  ignore l;
  let rec stars ty =
    if eat_punct st "*" then begin
      skip_qualifiers st;
      let sp = match !space with Some sp -> sp | None -> Private in
      stars (Ptr (sp, ty))
    end
    else ty
  in
  let ty = stars base in
  (!space, ty)

(* -- Expressions --------------------------------------------------------- *)

(* Precedence-climbing table for binary operators; level 0 is weakest. *)
let binop_levels =
  [| [ ("||", LOr) ];
     [ ("&&", LAnd) ];
     [ ("|", BOr) ];
     [ ("^", BXor) ];
     [ ("&", BAnd) ];
     [ ("==", Eq); ("!=", Ne) ];
     [ ("<", Lt); (">", Gt); ("<=", Le); (">=", Ge) ];
     [ ("<<", Shl); (">>", Shr) ];
     [ ("+", Add); ("-", Sub) ];
     [ ("*", Mul); ("/", Div); ("%", Rem) ] |]

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let compound op =
    advance st;
    let rhs = parse_assign st in
    { desc = Assign (lhs, { desc = Binop (op, lhs, rhs); loc = lhs.loc }); loc = lhs.loc }
  in
  match peek st with
  | Token.Punct "=" ->
      advance st;
      let rhs = parse_assign st in
      { desc = Assign (lhs, rhs); loc = lhs.loc }
  | Token.Punct "+=" -> compound Add
  | Token.Punct "-=" -> compound Sub
  | Token.Punct "*=" -> compound Mul
  | Token.Punct "/=" -> compound Div
  | Token.Punct "%=" -> compound Rem
  | Token.Punct "<<=" -> compound Shl
  | Token.Punct ">>=" -> compound Shr
  | Token.Punct "&=" -> compound BAnd
  | Token.Punct "|=" -> compound BOr
  | Token.Punct "^=" -> compound BXor
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if eat_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let e = parse_cond st in
    { desc = Cond (c, t, e); loc = c.loc }
  end
  else c

and parse_binary st level =
  if level >= Array.length binop_levels then parse_unary st
  else begin
    let lhs = ref (parse_binary st (level + 1)) in
    let ops = binop_levels.(level) in
    let rec loop () =
      match peek st with
      | Token.Punct p -> (
          match List.assoc_opt p ops with
          | Some op ->
              advance st;
              let rhs = parse_binary st (level + 1) in
              lhs := { desc = Binop (op, !lhs, rhs); loc = !lhs.loc };
              loop ()
          | None -> ())
      | _ -> ()
    in
    loop ();
    !lhs
  end

and parse_unary st =
  let l = peek_loc st in
  match peek st with
  | Token.Punct "-" ->
      advance st;
      { desc = Unop (Neg, parse_unary st); loc = l }
  | Token.Punct "+" ->
      advance st;
      parse_unary st
  | Token.Punct "!" ->
      advance st;
      { desc = Unop (Not, parse_unary st); loc = l }
  | Token.Punct "~" ->
      advance st;
      { desc = Unop (BNot, parse_unary st); loc = l }
  | Token.Punct "++" ->
      advance st;
      { desc = Pre_incr (true, parse_unary st); loc = l }
  | Token.Punct "--" ->
      advance st;
      { desc = Pre_incr (false, parse_unary st); loc = l }
  | Token.Punct "(" when starts_type_after_paren st ->
      advance st;
      let _, ty = parse_type st in
      expect_punct st ")";
      (* "(float4)(a, b, c, d)" is a vector literal; "(int)x" is a cast. *)
      (match (ty, peek st) with
      | (Vector _ | Scalar _), Token.Punct "(" ->
          advance st;
          let args = parse_args st in
          if List.length args > 1 then { desc = Vec_lit (ty, args); loc = l }
          else (
            match args with
            | [ e ] -> { desc = Cast (ty, e); loc = l }
            | _ -> Loc.errorf l "empty cast expression")
      | _ -> { desc = Cast (ty, parse_unary st); loc = l })
  | _ -> parse_postfix st

and starts_type_after_paren st =
  match peek st with
  | Token.Punct "(" ->
      let saved = st.cur in
      advance st;
      let r = starts_type st in
      st.cur <- saved;
      r
  | _ -> false

and parse_args st =
  if eat_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if eat_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    match peek st with
    | Token.Punct "[" ->
        advance st;
        let i = parse_expr st in
        expect_punct st "]";
        e := { desc = Index (!e, i); loc = !e.loc };
        loop ()
    | Token.Punct "." ->
        advance st;
        let field = expect_ident st in
        e := { desc = Member (!e, field); loc = !e.loc };
        loop ()
    | Token.Punct "++" ->
        advance st;
        e := { desc = Post_incr (true, !e); loc = !e.loc };
        loop ()
    | Token.Punct "--" ->
        advance st;
        e := { desc = Post_incr (false, !e); loc = !e.loc };
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  match next st with
  | Token.Int_lit n, l -> { desc = Int_lit n; loc = l }
  | Token.Float_lit f, l -> { desc = Float_lit f; loc = l }
  | Token.Ident name, l ->
      if peek st = Token.Punct "(" then begin
        advance st;
        let args = parse_args st in
        { desc = Call (name, args); loc = l }
      end
      else { desc = Ident name; loc = l }
  | Token.Punct "(", _ ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | tok, l -> Loc.errorf l "expected an expression, found %a" Token.pp tok

(* -- Statements ---------------------------------------------------------- *)

let rec parse_array_suffix st ty =
  if eat_punct st "[" then begin
    let l = peek_loc st in
    let size =
      match next st with
      | Token.Int_lit n, _ -> n
      | tok, lk ->
          Loc.errorf lk
            "array sizes must be integer constants after preprocessing, found %a"
            Token.pp tok
    in
    expect_punct st "]";
    ignore l;
    let inner = parse_array_suffix st ty in
    Array (inner, size)
  end
  else ty

let rec parse_stmt st : stmt =
  let l = peek_loc st in
  match peek st with
  | Token.Punct "{" ->
      advance st;
      let body = parse_block_items st in
      { s_desc = Sblock body; s_loc = l }
  | Token.Kw "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let then_s = parse_stmt st in
      let else_s = if eat_kw st "else" then Some (parse_stmt st) else None in
      { s_desc = Sif (c, then_s, else_s); s_loc = l }
  | Token.Kw "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if eat_punct st ";" then None
        else if starts_type st then begin
          let d = parse_decl_stmt st in
          Some d
        end
        else begin
          let e = parse_expr st in
          expect_punct st ";";
          Some { s_desc = Sexpr e; s_loc = e.loc }
        end
      in
      let cond = if peek st = Token.Punct ";" then None else Some (parse_expr st) in
      expect_punct st ";";
      let step = if peek st = Token.Punct ")" then None else Some (parse_expr st) in
      expect_punct st ")";
      let body = parse_stmt st in
      { s_desc = Sfor (init, cond, step, body); s_loc = l }
  | Token.Kw "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let body = parse_stmt st in
      { s_desc = Swhile (c, body); s_loc = l }
  | Token.Kw "do" ->
      advance st;
      let body = parse_stmt st in
      if not (eat_kw st "while") then
        Loc.errorf (peek_loc st) "expected 'while' after do-body";
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      { s_desc = Sdo (body, c); s_loc = l }
  | Token.Kw "return" ->
      advance st;
      let e = if peek st = Token.Punct ";" then None else Some (parse_expr st) in
      expect_punct st ";";
      { s_desc = Sreturn e; s_loc = l }
  | Token.Kw "break" ->
      advance st;
      expect_punct st ";";
      { s_desc = Sbreak; s_loc = l }
  | Token.Kw "continue" ->
      advance st;
      expect_punct st ";";
      { s_desc = Scontinue; s_loc = l }
  | _ when starts_type st -> parse_decl_stmt st
  | _ ->
      let e = parse_expr st in
      expect_punct st ";";
      { s_desc = Sexpr e; s_loc = l }

(* One declaration statement; comma-separated declarators become a block. *)
and parse_decl_stmt st : stmt =
  let l = peek_loc st in
  let space, base_ty = parse_type st in
  let space = match space with Some sp -> sp | None -> Private in
  let one () =
    let dl = peek_loc st in
    let name = expect_ident st in
    let ty = parse_array_suffix st base_ty in
    let init = if eat_punct st "=" then Some (parse_expr st) else None in
    { d_name = name; d_ty = ty; d_space = space; d_init = init; d_loc = dl }
  in
  let rec loop acc =
    let d = one () in
    if eat_punct st "," then loop (d :: acc)
    else begin
      expect_punct st ";";
      List.rev (d :: acc)
    end
  in
  match loop [] with
  | [ d ] -> { s_desc = Sdecl d; s_loc = l }
  | ds ->
      { s_desc = Sblock (List.map (fun d -> { s_desc = Sdecl d; s_loc = d.d_loc }) ds);
        s_loc = l }

and parse_block_items st : stmt list =
  let rec loop acc =
    if eat_punct st "}" then List.rev acc
    else if peek st = Token.Eof then
      Loc.errorf (peek_loc st) "unexpected end of file inside a block"
    else loop (parse_stmt st :: acc)
  in
  loop []

(* -- Top level ----------------------------------------------------------- *)

let parse_param st : param =
  let l = peek_loc st in
  let space, ty = parse_type st in
  skip_qualifiers st;
  let name = expect_ident st in
  let ty = parse_array_suffix st ty in
  ignore space;
  { p_name = name; p_ty = ty; p_loc = l }

let parse_kernel st : kernel =
  let l = peek_loc st in
  if not (eat_kw st "kernel") then
    Loc.errorf l "top-level declarations must be __kernel functions";
  (match parse_type st with
  | _, Void -> ()
  | _, ty -> Loc.errorf l "kernels must return void, not %s" (ty_name ty));
  let name = expect_ident st in
  expect_punct st "(";
  let params =
    if eat_punct st ")" then []
    else begin
      let rec loop acc =
        let p = parse_param st in
        if eat_punct st "," then loop (p :: acc)
        else begin
          expect_punct st ")";
          List.rev (p :: acc)
        end
      in
      loop []
    end
  in
  expect_punct st "{";
  let body = parse_block_items st in
  { k_name = name; k_params = params; k_body = body; k_loc = l }

let parse_program toks : program =
  let st = { toks = Array.of_list toks; cur = 0 } in
  let rec loop acc =
    if peek st = Token.Eof then { kernels = List.rev acc }
    else loop (parse_kernel st :: acc)
  in
  loop []

let parse ?defines src = parse_program (Lexer.tokenize ?defines src)
