(** Source locations for diagnostics. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let pp ppf { line; col } = Format.fprintf ppf "%d:%d" line col

exception Error of t * string
(** The front-end's single error channel: lexing, parsing and semantic
    errors all carry a location and a human-readable message. *)

let errorf loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt
