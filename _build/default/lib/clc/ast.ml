(** Abstract syntax for the OpenCL C subset.

    The subset covers everything the eleven benchmark kernels need: scalar
    and vector arithmetic, pointers qualified with OpenCL address spaces,
    [__local] array declarations, structured control flow, and calls to
    OpenCL builtins (work-item functions, [barrier], math functions). *)

type addr_space = Global | Local | Constant | Private

type scalar =
  | Bool
  | Char
  | UChar
  | Short
  | UShort
  | Int
  | UInt
  | Long
  | ULong
  | Float

type ty =
  | Void
  | Scalar of scalar
  | Vector of scalar * int  (** e.g. [float4] = [Vector (Float, 4)] *)
  | Ptr of addr_space * ty
  | Array of ty * int  (** fixed-size array; nested for multi-dim *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | BAnd | BOr | BXor
  | LAnd | LOr

type unop = Neg | Not | BNot

type expr = { desc : expr_desc; loc : Loc.t }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of expr * expr  (** lvalue = rvalue; compound ops are desugared *)
  | Index of expr * expr  (** a[i] *)
  | Member of expr * string  (** vector component access: v.x, v.s3 *)
  | Call of string * expr list
  | Cast of ty * expr
  | Vec_lit of ty * expr list  (** (float4)(a, b, c, d) *)
  | Cond of expr * expr * expr  (** c ? a : b *)
  | Pre_incr of bool * expr  (** true = increment, false = decrement *)
  | Post_incr of bool * expr

type decl = {
  d_name : string;
  d_ty : ty;
  d_space : addr_space;
  d_init : expr option;
  d_loc : Loc.t;
}

type stmt = { s_desc : stmt_desc; s_loc : Loc.t }

and stmt_desc =
  | Sdecl of decl
  | Sexpr of expr
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Sfor of stmt option * expr option * expr option * stmt
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue

type param = {
  p_name : string;
  p_ty : ty;
  p_loc : Loc.t;
}

type kernel = {
  k_name : string;
  k_params : param list;
  k_body : stmt list;
  k_loc : Loc.t;
}

type program = { kernels : kernel list }

(* -- Pretty-printing (used by diagnostics and tests) ------------------- *)

let scalar_name = function
  | Bool -> "bool"
  | Char -> "char"
  | UChar -> "uchar"
  | Short -> "short"
  | UShort -> "ushort"
  | Int -> "int"
  | UInt -> "uint"
  | Long -> "long"
  | ULong -> "ulong"
  | Float -> "float"

let space_name = function
  | Global -> "__global"
  | Local -> "__local"
  | Constant -> "__constant"
  | Private -> "__private"

let rec ty_name = function
  | Void -> "void"
  | Scalar s -> scalar_name s
  | Vector (s, n) -> Printf.sprintf "%s%d" (scalar_name s) n
  | Ptr (sp, t) -> Printf.sprintf "%s %s*" (space_name sp) (ty_name t)
  | Array (t, n) -> Printf.sprintf "%s[%d]" (ty_name t) n

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | BAnd -> "&" | BOr -> "|" | BXor -> "^"
  | LAnd -> "&&" | LOr -> "||"
