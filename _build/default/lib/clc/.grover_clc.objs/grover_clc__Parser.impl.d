lib/clc/parser.ml: Array Ast Lexer List Loc String Token
