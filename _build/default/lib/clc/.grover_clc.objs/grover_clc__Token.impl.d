lib/clc/token.ml: Format List String
