lib/clc/ast.ml: Loc Printf
