lib/clc/builtins.ml: List
