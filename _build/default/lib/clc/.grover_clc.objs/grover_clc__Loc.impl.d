lib/clc/loc.ml: Format
