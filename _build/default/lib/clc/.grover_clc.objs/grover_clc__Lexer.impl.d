lib/clc/lexer.ml: Hashtbl List Loc String Token
