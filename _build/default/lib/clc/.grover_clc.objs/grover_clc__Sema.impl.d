lib/clc/sema.ml: Ast Builtins Char List Loc String
