(** Tokens of the OpenCL C subset. *)

type t =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Kw of string  (** reserved word, canonicalised (e.g. "__kernel" -> "kernel") *)
  | Punct of string  (** operator or punctuation, e.g. "+", "<<=", "(" *)
  | Eof

let keywords =
  [ "kernel"; "global"; "local"; "constant"; "private";
    "if"; "else"; "for"; "while"; "do"; "return"; "break"; "continue";
    "void"; "bool"; "char"; "uchar"; "short"; "ushort"; "int"; "uint";
    "long"; "ulong"; "float"; "size_t";
    "const"; "restrict"; "volatile"; "unsigned"; "signed" ]

(* "__kernel" and "kernel" are interchangeable in OpenCL C; we canonicalise
   the double-underscore spellings at the lexer level. *)
let canonical_keyword s =
  let stripped =
    if String.length s > 2 && String.sub s 0 2 = "__" then
      String.sub s 2 (String.length s - 2)
    else s
  in
  if List.mem stripped keywords then Some stripped else None

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Float_lit f -> Format.fprintf ppf "%g" f
  | Ident s -> Format.pp_print_string ppf s
  | Kw s -> Format.pp_print_string ppf s
  | Punct s -> Format.pp_print_string ppf s
  | Eof -> Format.pp_print_string ppf "<eof>"

let to_string t = Format.asprintf "%a" pp t
