(** Exact rational arithmetic on machine integers.

    Grover's linear systems (paper Eq. 3) have tiny coefficients (tile sizes,
    thread-index multipliers), so machine-word rationals with explicit
    overflow checking are sufficient and keep the library dependency-free.
    All values are kept in canonical form: the denominator is positive and
    [gcd num den = 1]. *)

type t = private { num : int; den : int }

exception Overflow
(** Raised when an intermediate product or sum would not fit in an OCaml
    native [int]. With the index expressions found in real OpenCL kernels
    this never fires; it exists so that silent wrap-around is impossible. *)

exception Division_by_zero_q
(** Raised on division by the zero rational or on [make _ 0]. *)

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero_q if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool

val to_int : t -> int option
(** [to_int q] is [Some n] iff [q] is the integer [n]. *)

val to_float : t -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
