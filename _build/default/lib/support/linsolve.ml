module Q = Rational

module type SPACE = sig
  type t

  val zero : t
  val add : t -> t -> t
  val scale : Rational.t -> t -> t
end

module Make (V : SPACE) = struct
  type outcome = Unique of V.t array | Singular

  let solve a b =
    let n = Array.length a in
    if Array.length b <> n then invalid_arg "Linsolve.solve: size mismatch";
    Array.iter
      (fun row ->
        if Array.length row <> n then
          invalid_arg "Linsolve.solve: matrix not square")
      a;
    (* Work on copies: elimination is destructive. *)
    let a = Array.map Array.copy a in
    let b = Array.copy b in
    let exception Sing in
    try
      for col = 0 to n - 1 do
        (* Partial pivoting by first non-zero entry (exact arithmetic needs
           no magnitude-based pivot choice). *)
        let pivot = ref (-1) in
        (try
           for row = col to n - 1 do
             if not (Q.is_zero a.(row).(col)) then begin
               pivot := row;
               raise Exit
             end
           done
         with Exit -> ());
        if !pivot < 0 then raise Sing;
        if !pivot <> col then begin
          let tmp = a.(col) in
          a.(col) <- a.(!pivot);
          a.(!pivot) <- tmp;
          let tmp = b.(col) in
          b.(col) <- b.(!pivot);
          b.(!pivot) <- tmp
        end;
        let inv_p = Q.inv a.(col).(col) in
        for j = col to n - 1 do
          a.(col).(j) <- Q.mul inv_p a.(col).(j)
        done;
        b.(col) <- V.scale inv_p b.(col);
        for row = 0 to n - 1 do
          if row <> col && not (Q.is_zero a.(row).(col)) then begin
            let factor = Q.neg a.(row).(col) in
            for j = col to n - 1 do
              a.(row).(j) <- Q.add a.(row).(j) (Q.mul factor a.(col).(j))
            done;
            b.(row) <- V.add b.(row) (V.scale factor b.(col))
          end
        done
      done;
      Unique b
    with Sing -> Singular
end
