module Q = Rational

module type ATOM = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (A : ATOM) = struct
  module M = Map.Make (A)

  (* Invariant: no binding in [terms] maps to the zero rational. *)
  type t = { terms : Q.t M.t; const : Q.t }

  let const c = { terms = M.empty; const = c }
  let of_int n = const (Q.of_int n)
  let atom a = { terms = M.singleton a Q.one; const = Q.zero }
  let zero = const Q.zero
  let one = const Q.one

  let norm c = if Q.is_zero c then None else Some c

  let add f g =
    let merge _ c1 c2 =
      match (c1, c2) with
      | Some c1, Some c2 -> norm (Q.add c1 c2)
      | (Some _ as c), None | None, (Some _ as c) -> c
      | None, None -> None
    in
    { terms = M.merge merge f.terms g.terms; const = Q.add f.const g.const }

  let scale k f =
    if Q.is_zero k then zero
    else
      { terms = M.map (fun c -> Q.mul k c) f.terms;
        const = Q.mul k f.const }

  let neg f = scale Q.minus_one f
  let sub f g = add f (neg g)

  let to_const f = if M.is_empty f.terms then Some f.const else None

  let mul f g =
    match (to_const f, to_const g) with
    | Some c, _ -> Some (scale c g)
    | _, Some c -> Some (scale c f)
    | None, None -> None

  let coeff a f = match M.find_opt a f.terms with Some c -> c | None -> Q.zero
  let constant f = f.const
  let atoms f = M.fold (fun a _ acc -> a :: acc) f.terms [] |> List.rev

  let split ~on f =
    let sel, rest = M.partition (fun a _ -> on a) f.terms in
    ({ terms = sel; const = Q.zero }, { terms = rest; const = f.const })

  let subst a v f =
    match M.find_opt a f.terms with
    | None -> f
    | Some c -> add { f with terms = M.remove a f.terms } (scale c v)

  let to_atom f =
    if not (Q.is_zero f.const) then None
    else
      match M.bindings f.terms with
      | [ (a, c) ] when Q.is_one c -> Some a
      | _ -> None

  let is_zero f = M.is_empty f.terms && Q.is_zero f.const
  let equal f g = Q.equal f.const g.const && M.equal Q.equal f.terms g.terms
  let fold fn f acc = M.fold fn f.terms acc

  let pp ppf f =
    let pp_term first ppf (a, c) =
      if Q.equal c Q.one then
        Format.fprintf ppf "%s%a" (if first then "" else " + ") A.pp a
      else if Q.equal c Q.minus_one then
        Format.fprintf ppf "%s%a" (if first then "-" else " - ") A.pp a
      else if Q.sign c > 0 then
        Format.fprintf ppf "%s%a*%a"
          (if first then "" else " + ")
          Q.pp c A.pp a
      else
        Format.fprintf ppf "%s%a*%a"
          (if first then "-" else " - ")
          Q.pp (Q.neg c) A.pp a
    in
    let bindings = M.bindings f.terms in
    match bindings with
    | [] -> Q.pp ppf f.const
    | first :: rest ->
        pp_term true ppf first;
        List.iter (fun t -> pp_term false ppf t) rest;
        if not (Q.is_zero f.const) then
          if Q.sign f.const > 0 then Format.fprintf ppf " + %a" Q.pp f.const
          else Format.fprintf ppf " - %a" Q.pp (Q.neg f.const)
end
