(** A minimal growable array (OCaml 5.1 predates stdlib [Dynarray]).
    Used for trace-event buffers where list cells would dominate. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~(dummy : 'a) : 'a t = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let push (t : 'a t) (x : 'a) : unit =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get (t : 'a t) (i : int) : 'a =
  if i < 0 || i >= t.len then invalid_arg "Varray.get";
  t.data.(i)

let clear (t : 'a t) : unit = t.len <- 0

let iter (f : 'a -> unit) (t : 'a t) : unit =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_array (t : 'a t) : 'a array = Array.sub t.data 0 t.len

let fold (f : 'acc -> 'a -> 'acc) (acc : 'acc) (t : 'a t) : 'acc =
  let r = ref acc in
  for i = 0 to t.len - 1 do
    r := f !r t.data.(i)
  done;
  !r
