(** Exact Gaussian elimination with symbolic right-hand sides.

    Solves the square system [A * x = b] of paper Eq. 3, where [A] holds the
    rational coefficients of the local-store index in the local thread ids
    and each entry of [b] is an element of a vector space over ℚ — in
    Grover, an affine form over IR atoms. Grover only proceeds when the
    solution is unique (paper §III-B, S2), so a rank-deficient matrix is
    reported as [Singular] and the transformation is abandoned. *)

module type SPACE = sig
  type t

  val zero : t
  val add : t -> t -> t
  val scale : Rational.t -> t -> t
end

module Make (V : SPACE) : sig
  type outcome =
    | Unique of V.t array  (** The single solution vector. *)
    | Singular  (** [A] is not invertible: the index map is not reversible. *)

  val solve : Rational.t array array -> V.t array -> outcome
  (** [solve a b] solves [a * x = b] for [x].
      @raise Invalid_argument if [a] is not square or [b]'s length differs. *)
end
