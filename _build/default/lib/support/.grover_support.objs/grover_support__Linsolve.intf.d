lib/support/linsolve.mli: Rational
