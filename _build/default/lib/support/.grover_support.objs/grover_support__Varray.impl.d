lib/support/varray.ml: Array
