lib/support/affine.mli: Format Rational
