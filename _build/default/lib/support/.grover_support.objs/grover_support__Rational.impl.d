lib/support/rational.ml: Format Stdlib
