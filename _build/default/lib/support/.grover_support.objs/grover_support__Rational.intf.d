lib/support/rational.mli: Format
