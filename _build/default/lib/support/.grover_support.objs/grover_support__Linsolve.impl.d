lib/support/linsolve.ml: Array Rational
