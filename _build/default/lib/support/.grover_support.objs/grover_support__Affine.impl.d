lib/support/affine.ml: Format List Map Rational
