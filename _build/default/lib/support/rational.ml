type t = { num : int; den : int }

exception Overflow
exception Division_by_zero_q

(* Overflow-checked primitive operations. OCaml ints are 63-bit; checking
   via the inverse operation is exact and branch-cheap. *)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let checked_add a b =
  let s = a + b in
  (* Overflow iff both operands share a sign that the sum lost. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero_q
  else if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let num = checked_mul s num and den = checked_mul s den in
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b =
  make
    (checked_add (checked_mul a.num b.den) (checked_mul b.num a.den))
    (checked_mul a.den b.den)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (checked_mul a.num b.num) (checked_mul a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero_q else make a.den a.num

let div a b = mul a (inv b)

let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  (* Cross-multiplication keeps the comparison exact. *)
  Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let sign a = Stdlib.compare a.num 0

let is_zero a = a.num = 0
let is_one a = a.num = 1 && a.den = 1
let is_integer a = a.den = 1

let to_int a = if a.den = 1 then Some a.num else None
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
