(** Affine linear forms over symbolic atoms with rational coefficients.

    An affine form is [c0 + c1*a1 + ... + cn*an] where the [ai] are opaque
    atoms (in Grover: IR values such as [get_local_id(0)] calls, loop phis,
    or kernel arguments) and the [ci] are exact rationals. Affine forms are
    the currency of the whole pass: local store indices are affine in the
    local thread ids (paper Eq. 2), and the solution of the linear system
    (paper Eq. 3) is an affine form per unknown. *)

module type ATOM = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (A : ATOM) : sig
  type t

  val const : Rational.t -> t
  val of_int : int -> t
  val atom : A.t -> t
  val zero : t
  val one : t

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : Rational.t -> t -> t

  val mul : t -> t -> t option
  (** [mul a b] is the product if at least one side is constant (affine forms
      are not closed under general multiplication), [None] otherwise. *)

  val coeff : A.t -> t -> Rational.t
  (** Coefficient of an atom ([zero] when absent). *)

  val constant : t -> Rational.t
  (** The constant term. *)

  val atoms : t -> A.t list
  (** Atoms with non-zero coefficient, in [A.compare] order. *)

  val split : on:(A.t -> bool) -> t -> t * t
  (** [split ~on f] separates [f] into (terms whose atom satisfies [on],
      the rest including the constant). The two halves sum back to [f]. *)

  val subst : A.t -> t -> t -> t
  (** [subst a v f] replaces atom [a] by the affine form [v] inside [f]. *)

  val to_const : t -> Rational.t option
  (** [Some c] iff the form has no atoms. *)

  val to_atom : t -> A.t option
  (** [Some a] iff the form is exactly [1*a + 0]. *)

  val is_zero : t -> bool
  val equal : t -> t -> bool

  val fold : (A.t -> Rational.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  (** Fold over the atom terms (constant excluded). *)

  val pp : Format.formatter -> t -> unit
end
