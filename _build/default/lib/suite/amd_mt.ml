(** AMD-MT: AMD-SDK-style Matrix Transpose with explicit vector data types.
    Each work-item moves 4x4 matrix elements (four [float4]s) through a
    local tile — the amortisation the paper credits for AMD-MT's flat
    profile (§VI-C). The four static staging stores give Grover four
    (GL, LS) pairs; only the pair with the matching intra-slab row offset
    yields an integral solution, so this kernel exercises the
    pair-selection loop of §IV-A.

    The port transposes at float4-block granularity: the intra-vector
    shuffle of the original needs dynamic component selection, which is
    outside the front-end subset and does not change the memory traffic
    (see DESIGN.md). *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define BW 8
__kernel void amd_transpose(__global float4 *out, __global const float4 *in,
                            int W4, int H4) {
  __local float4 lm[32][8];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly * 4 + 0][lx] = in[(wx * 32 + ly * 4 + 0) * W4 + (wy * BW + lx)];
  lm[ly * 4 + 1][lx] = in[(wx * 32 + ly * 4 + 1) * W4 + (wy * BW + lx)];
  lm[ly * 4 + 2][lx] = in[(wx * 32 + ly * 4 + 2) * W4 + (wy * BW + lx)];
  lm[ly * 4 + 3][lx] = in[(wx * 32 + ly * 4 + 3) * W4 + (wy * BW + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[(wy * BW + ly) * H4 + wx * 32 + lx * 4 + 0] = lm[lx * 4 + 0][ly];
  out[(wy * BW + ly) * H4 + wx * 32 + lx * 4 + 1] = lm[lx * 4 + 1][ly];
  out[(wy * BW + ly) * H4 + wx * 32 + lx * 4 + 2] = lm[lx * 4 + 2][ly];
  out[(wy * BW + ly) * H4 + wx * 32 + lx * 4 + 3] = lm[lx * 4 + 3][ly];
}
|}

let base_n4 = 64 (* matrix is base_n4 x base_n4 float4 elements *)

let mk ~scale : Kit.workload =
  let n4 = max 32 (base_n4 / scale) in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let out = Memory.alloc mem vec4 (n4 * n4) in
  let inp = Memory.alloc mem vec4 (n4 * n4) in
  let gen = Kit.float_gen 7 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    (* Block transpose over float4 elements: out[r][c] = in[c][r], lanes
       preserved. *)
    let expected = Array.make (n4 * n4 * 4) 0.0 in
    for r = 0 to n4 - 1 do
      for c = 0 to n4 - 1 do
        for l = 0 to 3 do
          expected.((((r * n4) + c) * 4) + l) <- i.((((c * n4) + r) * 4) + l)
        done
      done
    done;
    Kit.check_floats ~label:"AMD-MT" ~expected ~actual:o ~eps:0.0
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n4; Runtime.Aint n4 ];
    (* Each work-item covers a 4-row float4 slab: x spans n4/4 slabs of the
       32-row block dimension, y spans the 8-wide dimension. *)
    global = (n4 / 4, n4, 1);
    local = (8, 8, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "AMD-MT";
    origin = "AMD SDK";
    description =
      "Matrix transpose with float4 vector types; 4x4 elements per work-item";
    dataset = Printf.sprintf "%dx%d float4s" base_n4 base_n4;
    source;
    kernel = "amd_transpose";
    defines = [];
    remove = None;
    mk;
  }
