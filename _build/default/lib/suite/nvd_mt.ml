(** NVD-MT: the NVIDIA-SDK-style Matrix Transpose of the paper's Fig. 1.
    A 16x16 tile is staged in local memory so that both the global read and
    the global write are row-contiguous (coalesced on GPUs). *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define S 16
__kernel void transpose(__global float *out, __global const float *in,
                        int W, int H) {
  __local float lm[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float val = lm[lx][ly];
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  out[gy * H + gx] = val;
}
|}

let base_n = 256

let mk ~scale : Kit.workload =
  let n = max 16 (base_n / scale) in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Ssa.F32 (n * n) in
  let gen = Kit.float_gen 42 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    let expected = Array.init (n * n) (fun k -> i.((k mod n * n) + (k / n))) in
    Kit.check_floats ~label:"NVD-MT" ~expected ~actual:o ~eps:0.0
  in
  {
    Kit.mem;
    args = [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ];
    global = (n, n, 1);
    local = (16, 16, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "NVD-MT";
    origin = "NVIDIA SDK";
    description = "Matrix transpose, 16x16 tile staged in local memory";
    dataset = Printf.sprintf "%dx%d floats" base_n base_n;
    source;
    kernel = "transpose";
    defines = [];
    remove = None;
    mk;
  }
