(** AMD-MM: AMD-SDK-style matrix multiplication with vector data types.
    Each work-item produces one [float4] of C; only the column-accessed
    matrix B (a [float4] buffer with a 4 KiB physical row stride) is staged
    in local memory. Disabling that staging exposes the same-set cache
    collisions of the strided column walk — the kernel the paper reports
    losing the most from Grover's transformation on SNB. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define TS 8
__kernel void amd_matmul(__global float4 *C, __global const float *A,
                         __global const float4 *B, int N4, int K) {
  __local float4 Bs[TS][TS];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int t = 0; t < K / TS; t++) {
    Bs[ly][lx] = B[(t * TS + ly) * N4 + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TS; k++) {
      acc = acc + A[gy * K + t * TS + k] * Bs[k][lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[gy * N4 + gx] = acc;
}
|}

let base_m = 64 (* C slab is base_m rows x (8*4) columns of floats *)
let row_stride4 = 256 (* B row stride in float4s: 256 * 16B = 4 KiB *)
let base_k = 64

let mk ~scale : Kit.workload =
  let m = max 8 (base_m / scale) in
  let k = max 8 (base_k / scale) in
  let n4 = row_stride4 in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let c = Memory.alloc mem vec4 (m * n4) in
  let a = Memory.alloc mem Ssa.F32 (m * k) in
  let b = Memory.alloc mem vec4 (k * n4) in
  let gen = Kit.float_gen 2718 in
  Memory.fill_floats a (fun _ -> gen ());
  Memory.fill_floats b (fun _ -> gen ());
  let cols4 = 8 (* float4 columns of C computed per row: one 8-wide WG tile *) in
  let check () =
    let av = Memory.to_float_array a
    and bv = Memory.to_float_array b
    and cv = Memory.to_float_array c in
    let ok = ref (Ok ()) in
    (try
       for i = 0 to m - 1 do
         for j4 = 0 to cols4 - 1 do
           for l = 0 to 3 do
             let acc = ref 0.0 in
             for kk = 0 to k - 1 do
               acc :=
                 !acc
                 +. (av.((i * k) + kk) *. bv.((((kk * n4) + j4) * 4) + l))
             done;
             let got = cv.((((i * n4) + j4) * 4) + l) in
             let tol = 1e-6 *. Float.max 1.0 (Float.abs !acc) in
             if Float.abs (got -. !acc) > tol then begin
               ok :=
                 Error
                   (Printf.sprintf "AMD-MM: C[%d][%d].%d expected %.6g got %.6g"
                      i j4 l !acc got);
               raise Exit
             end
           done
         done
       done
     with Exit -> ());
    !ok
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf c; Runtime.Abuf a; Runtime.Abuf b; Runtime.Aint n4;
        Runtime.Aint k ];
    global = (cols4, m, 1);
    local = (8, 8, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "AMD-MM";
    origin = "AMD SDK (MatrixMultiplication)";
    description =
      "float4 matrix multiplication; the column-accessed matrix B is staged \
       in local memory";
    dataset =
      Printf.sprintf "C slab %dx32 floats, K=%d, B row stride %d float4s"
        base_m base_k row_stride4;
    source;
    kernel = "amd_matmul";
    defines = [];
    remove = None;
    mk;
  }
