(** ROD-SC: Rodinia streamcluster's distance kernel. The 16 coordinates of
    the current cluster centre live far apart in memory (column-major,
    stride N); they are gathered into a small contiguous local array shared
    by all work-items (work-group index component zero, paper Table III).
    Note the global-load index [lx * stride] is *not* affine in constants —
    the stride is a kernel argument — which exercises Grover's tree
    substitution beyond the affine analysis of the local indexes. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define D 16
__kernel void sc_dist(__global float *dist, __global const float *pts,
                      __global const float *centre, int n, int stride) {
  __local float c[D];
  int lx = get_local_id(0);
  if (lx < D) {
    c[lx] = centre[lx * stride];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  int gid = get_global_id(0);
  float acc = 0.0f;
  for (int d = 0; d < D; d++) {
    float diff = pts[d * n + gid] - c[d];
    acc = acc + diff * diff;
  }
  dist[gid] = acc;
}
|}

let dims = 16
let base_n = 4096

let mk ~scale : Kit.workload =
  let n = max 256 (base_n / scale) in
  let stride = n in
  let mem = Memory.create () in
  let dist = Memory.alloc mem Ssa.F32 n in
  let pts = Memory.alloc mem Ssa.F32 (dims * n) in
  let centre = Memory.alloc mem Ssa.F32 (dims * stride) in
  let gen = Kit.float_gen 31337 in
  Memory.fill_floats pts (fun _ -> gen ());
  Memory.fill_floats centre (fun _ -> gen ());
  let check () =
    let p = Memory.to_float_array pts
    and c = Memory.to_float_array centre
    and dv = Memory.to_float_array dist in
    let expected =
      Array.init n (fun g ->
          let acc = ref 0.0 in
          for d = 0 to dims - 1 do
            let diff = p.((d * n) + g) -. c.(d * stride) in
            acc := !acc +. (diff *. diff)
          done;
          !acc)
    in
    Kit.check_floats ~label:"ROD-SC" ~expected ~actual:dv ~eps:1e-6
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf dist; Runtime.Abuf pts; Runtime.Abuf centre;
        Runtime.Aint n; Runtime.Aint stride ];
    global = (n, 1, 1);
    local = (64, 1, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "ROD-SC";
    origin = "Rodinia (streamcluster)";
    description =
      "Point-to-centre distances; 16 strided centre coordinates gathered \
       into local memory";
    dataset = Printf.sprintf "%d points, %d dimensions" base_n dims;
    source;
    kernel = "sc_dist";
    defines = [];
    remove = None;
    mk;
  }
