lib/suite/amd_rg.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
