lib/suite/amd_ss.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
