lib/suite/nvd_nbody.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
