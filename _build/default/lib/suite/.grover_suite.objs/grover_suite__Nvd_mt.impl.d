lib/suite/nvd_mt.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
