lib/suite/pab_st.ml: Array Float Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
