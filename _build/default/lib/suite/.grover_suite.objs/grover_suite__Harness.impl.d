lib/suite/harness.ml: Grover_core Grover_ir Grover_memsim Grover_ocl Grover_passes Interp Kit List Lower Option Printf Runtime Ssa String Trace
