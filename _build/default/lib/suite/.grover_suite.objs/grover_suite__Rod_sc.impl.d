lib/suite/rod_sc.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
