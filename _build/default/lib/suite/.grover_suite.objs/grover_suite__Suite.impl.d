lib/suite/suite.ml: Amd_mm Amd_mt Amd_rg Amd_ss Kit List Nvd_mm Nvd_mt Nvd_nbody Pab_st Rod_sc String
