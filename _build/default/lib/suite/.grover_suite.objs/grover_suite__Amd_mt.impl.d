lib/suite/amd_mt.ml: Array Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
