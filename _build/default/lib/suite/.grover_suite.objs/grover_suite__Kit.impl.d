lib/suite/kit.ml: Array Float Grover_ocl Memory Printf Runtime
