lib/suite/nvd_mm.ml: Array Float Grover_ir Grover_ocl Kit Memory Printf Runtime Ssa
