(** Shared plumbing for the benchmark suite: the benchmark-case record, and
    deterministic pseudo-random dataset generation. *)

open Grover_ocl

type workload = {
  mem : Memory.t;
  args : Runtime.arg_binding list;
  global : int * int * int;
  local : int * int * int;
  check : unit -> (unit, string) result;
      (** host-reference validation of the output buffers *)
}

type case = {
  id : string;  (** paper identifier, e.g. "NVD-MT" *)
  origin : string;  (** which SDK / suite the original came from *)
  description : string;
  dataset : string;  (** human-readable dataset description *)
  source : string;  (** OpenCL C *)
  kernel : string;
  defines : (string * string) list;
  remove : string list option;
      (** local buffers Grover should disable; [None] = all *)
  mk : scale:int -> workload;
      (** builds the dataset; [scale] = 1 is the benchmark size, smaller
          problems for tests use [scale] > 1 as a divisor *)
}

(* Deterministic xorshift PRNG so runs are reproducible without seeding
   global state. *)
let prng seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land 0x3FFFFFFFFFFFFFFF;
    !s

let float_gen seed =
  let next = prng seed in
  fun () -> float_of_int (next () mod 2048 - 1024) /. 256.0

let check_floats ~(label : string) ~(expected : float array)
    ~(actual : float array) ~(eps : float) : (unit, string) result =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "%s: length mismatch (%d vs %d)" label
         (Array.length expected) (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        let a = actual.(i) in
        let tol = eps *. Float.max 1.0 (Float.abs e) in
        if Float.abs (e -. a) > tol && !bad = None then bad := Some (i, e, a))
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a) ->
        Error (Printf.sprintf "%s: element %d expected %.6g got %.6g" label i e a)
  end

let check_ints ~(label : string) ~(expected : int array) ~(actual : int array)
    : (unit, string) result =
  let bad = ref None in
  Array.iteri
    (fun i e -> if actual.(i) <> e && !bad = None then bad := Some (i, e, actual.(i)))
    expected;
  match !bad with
  | None -> Ok ()
  | Some (i, e, a) ->
      Error (Printf.sprintf "%s: element %d expected %d got %d" label i e a)
