(** AMD-RG: the transpose stage of AMD's RecursiveGaussian image filter.
    Pixels are RGBA [float4] values; a 16x16-pixel tile is staged in local
    memory and written back transposed. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define S 16
__kernel void rg_transpose(__global float4 *out, __global const float4 *in,
                           int W, int H) {
  __local float4 tile[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  tile[ly][lx] = in[(wy * S + ly) * W + (wx * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float4 p = tile[lx][ly];
  int ox = wy * S + lx;
  int oy = wx * S + ly;
  out[oy * H + ox] = p;
}
|}

let base_n = 128 (* image is base_n x base_n pixels *)

let mk ~scale : Kit.workload =
  let n = max 16 (base_n / scale) in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let out = Memory.alloc mem vec4 (n * n) in
  let inp = Memory.alloc mem vec4 (n * n) in
  let gen = Kit.float_gen 123 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    let expected = Array.make (n * n * 4) 0.0 in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        for l = 0 to 3 do
          expected.((((r * n) + c) * 4) + l) <- i.((((c * n) + r) * 4) + l)
        done
      done
    done;
    Kit.check_floats ~label:"AMD-RG" ~expected ~actual:o ~eps:0.0
  in
  {
    Kit.mem;
    args = [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ];
    global = (n, n, 1);
    local = (16, 16, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "AMD-RG";
    origin = "AMD SDK (RecursiveGaussian)";
    description = "RGBA image transpose stage; float4 pixels staged in a 16x16 tile";
    dataset = Printf.sprintf "%dx%d RGBA pixels" base_n base_n;
    source;
    kernel = "rg_transpose";
    defines = [];
    remove = None;
    mk;
  }
