(** AMD-SS: StringSearch. The pattern string is staged into local memory
    once per work-group and then shared by every work-item — the case where
    the work-group component of the global index is zero (paper Table III:
    all work-items share the same data block). *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define PATLEN 16
__kernel void string_search(__global int *matches, __global const uchar *text,
                            __global const uchar *pattern, int text_len) {
  __local uchar lpat[PATLEN];
  int l = get_local_id(0);
  if (l < PATLEN) lpat[l] = pattern[l];
  barrier(CLK_LOCAL_MEM_FENCE);
  int gid = get_global_id(0);
  int ok = 1;
  for (int j = 0; j < PATLEN; j++) {
    if (text[gid + j] != lpat[j]) ok = 0;
  }
  matches[gid] = ok;
}
|}

let pat_len = 16
let base_text = 32768

let mk ~scale : Kit.workload =
  let n = max 256 (base_text / scale) in
  let mem = Memory.create () in
  let matches = Memory.alloc mem Ssa.I32 n in
  let text = Memory.alloc mem Ssa.I8 (n + pat_len) in
  let pattern = Memory.alloc mem Ssa.I8 pat_len in
  let next = Kit.prng 99 in
  Memory.fill_ints text (fun _ -> next () mod 4);
  (* A pattern that occurs with reasonable probability. *)
  Memory.fill_ints pattern (fun i -> i mod 4);
  let check () =
    let t = Memory.to_int_array text and p = Memory.to_int_array pattern in
    let expected =
      Array.init n (fun g ->
          let ok = ref 1 in
          for j = 0 to pat_len - 1 do
            if t.(g + j) <> p.(j) then ok := 0
          done;
          !ok)
    in
    Kit.check_ints ~label:"AMD-SS" ~expected ~actual:(Memory.to_int_array matches)
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf matches; Runtime.Abuf text; Runtime.Abuf pattern;
        Runtime.Aint n ];
    global = (n, 1, 1);
    local = (64, 1, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "AMD-SS";
    origin = "AMD SDK";
    description = "String search; the pattern is staged in local memory and shared";
    dataset = Printf.sprintf "%d-byte text, %d-byte pattern" base_text pat_len;
    source;
    kernel = "string_search";
    defines = [];
    remove = None;
    mk;
  }
