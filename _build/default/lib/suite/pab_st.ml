(** PAB-ST: Parboil-style stencil. A 16-wide row segment plus a two-column
    halo is staged in local memory, which requires *two* static (GL, LS)
    pairs — the multi-pass staging case of paper §IV-A; either pair yields
    the same global-local correspondence. North/south neighbours are read
    directly from global memory. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define S 16
__kernel void stencil(__global float *out, __global const float *in, int W) {
  __local float t[16][18];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int gx = get_global_id(0) + 1;
  int gy = get_global_id(1) + 1;
  t[ly][lx] = in[gy * W + wx * S + lx];
  if (lx < 2) {
    t[ly][lx + 16] = in[gy * W + wx * S + lx + 16];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  float west = t[ly][lx];
  float center = t[ly][lx + 1];
  float east = t[ly][lx + 2];
  float north = in[(gy - 1) * W + gx];
  float south = in[(gy + 1) * W + gx];
  out[gy * W + gx] = 0.2f * (west + center + east + north + south);
}
|}

(* Interior is (W-2) x (H-2); both must be multiples of 16. *)
let base_w = 258
let base_h = 66

let mk ~scale : Kit.workload =
  let iw = max 16 ((base_w - 2) / scale / 16 * 16) in
  let ih = max 16 ((base_h - 2) / scale / 16 * 16) in
  let w = iw + 2 and h = ih + 2 in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.F32 (w * h) in
  let inp = Memory.alloc mem Ssa.F32 (w * h) in
  let gen = Kit.float_gen 77 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    let ok = ref (Ok ()) in
    (try
       for y = 1 to h - 2 do
         for x = 1 to w - 2 do
           let e =
             0.2
             *. (i.((y * w) + x - 1) +. i.((y * w) + x) +. i.((y * w) + x + 1)
                +. i.(((y - 1) * w) + x)
                +. i.(((y + 1) * w) + x))
           in
           let got = o.((y * w) + x) in
           if Float.abs (got -. e) > 1e-6 *. Float.max 1.0 (Float.abs e) then begin
             ok :=
               Error
                 (Printf.sprintf "PAB-ST: out[%d][%d] expected %.6g got %.6g" y x
                    e got);
             raise Exit
           end
         done
       done
     with Exit -> ());
    !ok
  in
  {
    Kit.mem;
    args = [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint w ];
    global = (iw, ih, 1);
    local = (16, 16, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "PAB-ST";
    origin = "Parboil (stencil)";
    description =
      "5-point stencil; row segments plus halo staged in local memory with \
       two (GL, LS) pairs";
    dataset = Printf.sprintf "%dx%d grid" base_w base_h;
    source;
    kernel = "stencil";
    defines = [];
    remove = None;
    mk;
  }
