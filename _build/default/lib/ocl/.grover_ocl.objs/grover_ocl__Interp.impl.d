lib/ocl/interp.ml: Array Effect Float Grover_ir Grover_support Hashtbl List Memory Printf Ssa Trace
