lib/ocl/runtime.ml: Array Domain Effect Grover_ir Grover_passes Hashtbl Interp List Lower Memory Printf Queue Ssa Trace
