lib/ocl/trace.ml: Grover_ir Grover_support Ssa
