lib/ocl/memory.ml: Array Grover_ir Printf Ssa
