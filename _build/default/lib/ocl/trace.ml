(** Memory-access traces and per-work-group execution statistics, the
    interface between the execution engine and the performance simulator. *)

open Grover_ir

type event = {
  addr : int;  (** byte address *)
  bytes : int;
  is_write : bool;
  space : Ssa.space;
  wi : int;  (** linear work-item id within its work-group *)
}

let dummy_event =
  { addr = 0; bytes = 0; is_write = false; space = Ssa.Global; wi = 0 }

type wg_stats = {
  wg_id : int;
  queue : int;  (** hardware queue (core / CU) the group ran on *)
  wg_size : int;
  mutable int_ops : int;
  mutable float_ops : int;
  mutable special_ops : int;  (** sqrt/rsqrt/exp/... *)
  mutable branches : int;
  mutable barriers : int;  (** barrier *instances* (per work-item) *)
  mutable barrier_rounds : int;  (** barrier sites crossed by the group *)
  events : event Grover_support.Varray.t;
}

let fresh_stats ~wg_id ~queue ~wg_size : wg_stats =
  {
    wg_id;
    queue;
    wg_size;
    int_ops = 0;
    float_ops = 0;
    special_ops = 0;
    branches = 0;
    barriers = 0;
    barrier_rounds = 0;
    events = Grover_support.Varray.create ~dummy:dummy_event;
  }

(** Aggregated totals over a whole launch (correctness runs often only need
    these, not the raw events). *)
type totals = {
  mutable t_int_ops : int;
  mutable t_float_ops : int;
  mutable t_special_ops : int;
  mutable t_branches : int;
  mutable t_barriers : int;
  mutable t_loads : int;
  mutable t_stores : int;
  mutable t_local_accesses : int;
  mutable t_groups : int;
}

let empty_totals () =
  {
    t_int_ops = 0;
    t_float_ops = 0;
    t_special_ops = 0;
    t_branches = 0;
    t_barriers = 0;
    t_loads = 0;
    t_stores = 0;
    t_local_accesses = 0;
    t_groups = 0;
  }

let accumulate (tot : totals) (s : wg_stats) : unit =
  tot.t_int_ops <- tot.t_int_ops + s.int_ops;
  tot.t_float_ops <- tot.t_float_ops + s.float_ops;
  tot.t_special_ops <- tot.t_special_ops + s.special_ops;
  tot.t_branches <- tot.t_branches + s.branches;
  tot.t_barriers <- tot.t_barriers + s.barriers;
  tot.t_groups <- tot.t_groups + 1;
  Grover_support.Varray.iter
    (fun e ->
      if e.is_write then tot.t_stores <- tot.t_stores + 1
      else tot.t_loads <- tot.t_loads + 1;
      if e.space = Ssa.Local then
        tot.t_local_accesses <- tot.t_local_accesses + 1)
    s.events
