(** The work-item interpreter.

    Executes one kernel instance per work-item directly over the SSA IR.
    [barrier()] gets its real OpenCL semantics from OCaml 5 effect handlers:
    each work-item runs as a fiber; hitting a barrier performs
    [Barrier_hit], the group scheduler parks the continuation, and resumes
    every work-item of the group once all of them have arrived. Memory
    accesses stream into the group's {!Trace.wg_stats} for the performance
    simulator. *)

open Grover_ir
open Ssa

type rv =
  | RInt of int
  | RFloat of float
  | RVecF of float array
  | RVecI of int array
  | RBuf of Memory.buffer

exception Kernel_trap of string

let trap fmt = Printf.ksprintf (fun m -> raise (Kernel_trap m)) fmt

(* -- Compiled form ---------------------------------------------------------- *)

type compiled = {
  fn : func;
  slots : (int, int) Hashtbl.t;  (** instruction id -> environment slot *)
  n_slots : int;
  local_allocas : instr list;  (** local arrays, allocated once per group *)
}

let prepare (fn : func) : compiled =
  let slots = Hashtbl.create 64 in
  let n = ref 0 in
  iter_instrs
    (fun i ->
      Hashtbl.replace slots i.iid !n;
      incr n)
    fn;
  let local_allocas =
    fold_instrs
      (fun acc i ->
        match i.op with
        | Alloca { aspace = Local; _ } -> i :: acc
        | _ -> acc)
      [] fn
    |> List.rev
  in
  { fn; slots; n_slots = !n; local_allocas }

(* -- Work-item context ------------------------------------------------------- *)

type wi_ctx = {
  lid : int array;  (** 3 entries *)
  gid : int array;
  grp : int array;
  lsz : int array;
  gsz : int array;
  ngr : int array;
  flat_lid : int;  (** linear id within the group, for traces *)
}

type _ Effect.t += Barrier_hit : unit Effect.t

(* -- Scalar helpers ----------------------------------------------------------- *)

let as_int = function
  | RInt n -> n
  | RFloat f -> trap "expected int, got float %g" f
  | _ -> trap "expected int, got aggregate"

let as_float = function
  | RFloat f -> f
  | RInt n -> trap "expected float, got int %d" n
  | _ -> trap "expected float, got aggregate"

let as_buf = function RBuf b -> b | _ -> trap "expected a pointer"

let mask_of = function
  | I1 -> 1
  | I8 -> 0xff
  | I16 -> 0xffff
  | I32 -> 0xffffffff
  | _ -> -1

let sext_of t n =
  match t with
  | I1 -> n land 1 (* i1 is canonically 0/1, matching icmp results *)
  | I8 ->
      let n = n land 0xff in
      if n >= 0x80 then n - 0x100 else n
  | I16 ->
      let n = n land 0xffff in
      if n >= 0x8000 then n - 0x10000 else n
  | I32 ->
      let n = n land 0xffffffff in
      if n >= 0x80000000 then n - 0x100000000 else n
  | _ -> n

let int_binop t op a b =
  let u x = x land mask_of t in
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Sdiv -> if b = 0 then trap "division by zero" else a / b
  | Udiv -> if b = 0 then trap "division by zero" else u a / u b
  | Srem -> if b = 0 then trap "remainder by zero" else a mod b
  | Urem -> if b = 0 then trap "remainder by zero" else u a mod u b
  | Shl -> a lsl (b land 63)
  | Ashr -> a asr (b land 63)
  | Lshr -> u a lsr (b land 63)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | _ -> trap "float binop on ints"

let float_binop op a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Frem -> Float.rem a b
  | _ -> trap "int binop on floats"

let icmp_op t c a b =
  let u x = x land mask_of t in
  match c with
  | Ieq -> a = b
  | Ine -> a <> b
  | Islt -> a < b
  | Isle -> a <= b
  | Isgt -> a > b
  | Isge -> a >= b
  | Iult -> u a < u b
  | Iule -> u a <= u b
  | Iugt -> u a > u b
  | Iuge -> u a >= u b

let fcmp_op c a b =
  match c with
  | Foeq -> a = b
  | Fone -> a <> b
  | Folt -> a < b
  | Fole -> a <= b
  | Fogt -> a > b
  | Foge -> a >= b

let lanes_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

(* -- Builtin math ---------------------------------------------------------- *)

let special_fns =
  [ "sqrt"; "native_sqrt"; "rsqrt"; "native_rsqrt"; "exp"; "native_exp";
    "log"; "native_log"; "sin"; "native_sin"; "cos"; "native_cos"; "pow";
    "hypot"; "native_divide" ]

let math1 name x =
  match name with
  | "sqrt" | "native_sqrt" -> Float.sqrt x
  | "rsqrt" | "native_rsqrt" -> 1.0 /. Float.sqrt x
  | "fabs" -> Float.abs x
  | "exp" | "native_exp" -> Float.exp x
  | "log" | "native_log" -> Float.log x
  | "sin" | "native_sin" -> Float.sin x
  | "cos" | "native_cos" -> Float.cos x
  | "floor" -> Float.floor x
  | "ceil" -> Float.ceil x
  | _ -> trap "unknown unary math builtin %s" name

let math2 name a b =
  match name with
  | "fmax" -> Float.max a b
  | "fmin" -> Float.min a b
  | "pow" -> Float.pow a b
  | "fmod" -> Float.rem a b
  | "hypot" -> Float.hypot a b
  | "native_divide" -> a /. b
  | _ -> trap "unknown binary math builtin %s" name

(* -- The interpreter ---------------------------------------------------------- *)

type wi_state = {
  c : compiled;
  env : rv array;
  args : rv array;
  ctx : wi_ctx;
  stats : Trace.wg_stats;
  local_bufs : (int, Memory.buffer) Hashtbl.t;  (** alloca iid -> group buffer *)
  mem : Memory.t;
  queue : int;
  mutable private_offset : int;  (** bump offset in the private address region *)
}

let slot st (i : instr) : int = Hashtbl.find st.c.slots i.iid

let rec eval (st : wi_state) (v : value) : rv =
  match v with
  | Cint (t, n) -> RInt (sext_of t n)
  | Cfloat f -> RFloat f
  | Arg a -> st.args.(a.a_index)
  | Vinstr i -> st.env.(slot st i)

and record_access (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) : unit =
  Grover_support.Varray.push st.stats.Trace.events
    {
      Trace.addr = Memory.addr_of b idx;
      bytes = b.Memory.elem_bytes;
      is_write;
      space = b.Memory.space;
      wi = st.ctx.flat_lid;
    }

and load_elem (st : wi_state) (b : Memory.buffer) (idx : int) : rv =
  record_access st b idx ~is_write:false;
  match b.Memory.elem with
  | F32 -> RFloat (Memory.get_float b idx)
  | I1 | I8 | I16 | I32 | I64 -> RInt (Memory.get_int b idx)
  | Vec (F32, n) -> RVecF (Array.init n (fun l -> Memory.get_lane_float b idx l))
  | Vec (_, n) -> RVecI (Array.init n (fun l -> Memory.get_lane_int b idx l))
  | _ -> trap "load of unsupported element type"

and store_elem (st : wi_state) (b : Memory.buffer) (idx : int) (v : rv) : unit =
  record_access st b idx ~is_write:true;
  match v with
  | RFloat f -> Memory.set_float b idx f
  | RInt n -> Memory.set_int b idx n
  | RVecF a -> Array.iteri (fun l x -> Memory.set_lane_float b idx l x) a
  | RVecI a -> Array.iteri (fun l x -> Memory.set_lane_int b idx l x) a
  | RBuf _ -> trap "cannot store a pointer"

and exec_call (st : wi_state) callee (args : rv list) : rv =
  let dim_of = function
    | [ RInt d ] -> if d >= 0 && d < 3 then d else trap "dimension out of range"
    | _ -> trap "%s expects a dimension" callee
  in
  match callee with
  | "get_local_id" -> RInt st.ctx.lid.(dim_of args)
  | "get_global_id" -> RInt st.ctx.gid.(dim_of args)
  | "get_group_id" -> RInt st.ctx.grp.(dim_of args)
  | "get_local_size" -> RInt st.ctx.lsz.(dim_of args)
  | "get_global_size" -> RInt st.ctx.gsz.(dim_of args)
  | "get_num_groups" -> RInt st.ctx.ngr.(dim_of args)
  | "get_global_offset" -> RInt 0
  | "get_work_dim" -> RInt 3
  | "dot" -> (
      match args with
      | [ RVecF a; RVecF b ] ->
          let s = ref 0.0 in
          Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
          RFloat !s
      | [ RFloat a; RFloat b ] -> RFloat (a *. b)
      | _ -> trap "dot expects float vectors")
  | "mad" | "fma" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat c ] -> RFloat ((a *. b) +. c)
      | [ RVecF a; RVecF b; RVecF c ] ->
          RVecF (Array.init (Array.length a) (fun i -> (a.(i) *. b.(i)) +. c.(i)))
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad argument mismatch")
  | "clamp" -> (
      match args with
      | [ RFloat x; RFloat lo; RFloat hi ] -> RFloat (Float.min (Float.max x lo) hi)
      | [ RInt x; RInt lo; RInt hi ] -> RInt (min (max x lo) hi)
      | _ -> trap "clamp argument mismatch")
  | "mix" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat t ] -> RFloat (a +. ((b -. a) *. t))
      | _ -> trap "mix argument mismatch")
  | "min" | "max" -> (
      let pick_i : int -> int -> int = if callee = "min" then min else max in
      let pick_f : float -> float -> float =
        if callee = "min" then Float.min else Float.max
      in
      match args with
      | [ RInt a; RInt b ] -> RInt (pick_i a b)
      | [ RFloat a; RFloat b ] -> RFloat (pick_f a b)
      | _ -> trap "min/max argument mismatch")
  | "abs" -> (
      match args with
      | [ RInt a ] -> RInt (abs a)
      | [ RFloat a ] -> RFloat (Float.abs a)
      | _ -> trap "abs argument mismatch")
  | "mul24" -> (
      match args with
      | [ RInt a; RInt b ] -> RInt (a * b)
      | _ -> trap "mul24 argument mismatch")
  | "mad24" -> (
      match args with
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad24 argument mismatch")
  | "fmax" | "fmin" | "pow" | "fmod" | "hypot" | "native_divide" -> (
      match args with
      | [ RFloat a; RFloat b ] -> RFloat (math2 callee a b)
      | [ RVecF a; RVecF b ] -> RVecF (lanes_map2 (math2 callee) a b)
      | _ -> trap "%s argument mismatch" callee)
  | _ -> (
      (* Remaining builtins are unary float math. *)
      match args with
      | [ RFloat x ] -> RFloat (math1 callee x)
      | [ RVecF a ] -> RVecF (Array.map (math1 callee) a)
      | _ -> trap "unsupported call %s" callee)

and exec_instr (st : wi_state) (i : instr) : unit =
  let set rv = st.env.(slot st i) <- rv in
  match i.op with
  | Binop (op, a, b) -> (
      match (eval st a, eval st b) with
      | RInt x, RInt y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
          set (RInt (int_binop (type_of a) op x y))
      | RFloat x, RFloat y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
          set (RFloat (float_binop op x y))
      | RVecF x, RVecF y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + Array.length x;
          set (RVecF (lanes_map2 (float_binop op) x y))
      | RVecI x, RVecI y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + Array.length x;
          set (RVecI (lanes_map2 (int_binop I32 op) x y))
      | _ -> trap "binop operand mismatch")
  | Icmp (c, a, b) ->
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (RInt (if icmp_op (type_of a) c (as_int (eval st a)) (as_int (eval st b)) then 1 else 0))
  | Fcmp (c, a, b) ->
      st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
      set (RInt (if fcmp_op c (as_float (eval st a)) (as_float (eval st b)) then 1 else 0))
  | Select (c, a, b) ->
      set (if as_int (eval st c) <> 0 then eval st a else eval st b)
  | Cast (k, v, t) -> (
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      let rv = eval st v in
      match (k, rv) with
      | (Sext | Bitcast), RInt n -> set (RInt (sext_of (type_of v) n))
      | Zext, RInt n -> set (RInt (n land mask_of (type_of v)))
      | Trunc, RInt n -> set (RInt (sext_of t n))
      | Si_to_fp, RInt n -> set (RFloat (float_of_int n))
      | Ui_to_fp, RInt n -> set (RFloat (float_of_int (n land mask_of (type_of v))))
      | Fp_to_si, RFloat f -> set (RInt (int_of_float f))
      | Bitcast, rv -> set rv
      | _ -> trap "unsupported cast")
  | Call { callee; args; _ } ->
      if List.mem callee special_fns then
        st.stats.Trace.special_ops <- st.stats.Trace.special_ops + 1
      else st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (exec_call st callee (List.map (eval st) args))
  | Alloca { aspace = Local; _ } -> (
      match Hashtbl.find_opt st.local_bufs i.iid with
      | Some b -> set (RBuf b)
      | None -> trap "local alloca without a group buffer")
  | Alloca { aspace = Private; elem; count; _ } ->
      (* Private arrays live in a per-queue private address region; the
         data array itself is fresh per work-item. *)
      let base =
        0x0000_1000 + (st.queue * 0x0010_0000) + st.private_offset
      in
      st.private_offset <- st.private_offset + (count * ty_size_bytes elem);
      let b =
        Memory.alloc_at st.mem ~space:Private ~base_addr:base elem count
      in
      set (RBuf b)
  | Alloca _ -> trap "unsupported alloca space"
  | Load { ptr; index } ->
      set (load_elem st (as_buf (eval st ptr)) (as_int (eval st index)))
  | Store { ptr; index; v } ->
      store_elem st (as_buf (eval st ptr)) (as_int (eval st index)) (eval st v)
  | Extract (v, lane) -> (
      let l = as_int (eval st lane) in
      match eval st v with
      | RVecF a -> set (RFloat a.(l))
      | RVecI a -> set (RInt a.(l))
      | _ -> trap "extract from non-vector")
  | Insert (v, lane, s) -> (
      let l = as_int (eval st lane) in
      match (eval st v, eval st s) with
      | RVecF a, RFloat x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecF a)
      | RVecI a, RInt x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecI a)
      | _ -> trap "insert mismatch")
  | Vecbuild (t, vs) -> (
      match t with
      | Vec (F32, _) -> set (RVecF (Array.of_list (List.map (fun v -> as_float (eval st v)) vs)))
      | Vec (_, _) -> set (RVecI (Array.of_list (List.map (fun v -> as_int (eval st v)) vs)))
      | _ -> trap "vecbuild of non-vector")
  | Phi _ -> trap "phi executed outside block entry"
  | Barrier _ ->
      st.stats.Trace.barriers <- st.stats.Trace.barriers + 1;
      Effect.perform Barrier_hit
  | Br _ | Cond_br _ | Ret -> trap "terminator executed as body instruction"

and run_workitem (st : wi_state) : unit =
  let cur = ref (entry st.c.fn) in
  let prev = ref None in
  let running = ref true in
  while !running do
    let blk = !cur in
    (* Phase 1: evaluate all phis against the incoming edge, then commit. *)
    let phis =
      List.filter_map
        (fun i ->
          match i.op with
          | Phi { incoming; _ } -> (
              match !prev with
              | None -> trap "phi in entry block"
              | Some p -> (
                  match
                    List.find_opt (fun (b, _) -> b.bid = p.bid) incoming
                  with
                  | Some (_, v) -> Some (i, eval st v)
                  | None -> trap "phi has no incoming for predecessor"))
          | _ -> None)
        blk.instrs
    in
    List.iter (fun (i, rv) -> st.env.(slot st i) <- rv) phis;
    List.iter
      (fun i -> match i.op with Phi _ -> () | _ -> exec_instr st i)
      blk.instrs;
    (match blk.term with
    | Some { op = Br target; _ } ->
        prev := Some blk;
        cur := target
    | Some { op = Cond_br (c, t, e); _ } ->
        st.stats.Trace.branches <- st.stats.Trace.branches + 1;
        prev := Some blk;
        cur := if as_int (eval st c) <> 0 then t else e
    | Some { op = Ret; _ } -> running := false
    | _ -> trap "missing terminator")
  done
