lib/passes/canon.ml: Grover_clc Grover_ir Hashtbl List Ssa
