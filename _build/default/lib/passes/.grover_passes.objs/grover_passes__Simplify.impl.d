lib/passes/simplify.ml: Cfg Float Grover_ir Hashtbl List Mem2reg Ssa
