lib/passes/pipeline.ml: Canon Cse Dce Grover_ir Licm Mem2reg Simplify Ssa Verify
