lib/passes/dce.ml: Grover_ir Hashtbl List Option Ssa
