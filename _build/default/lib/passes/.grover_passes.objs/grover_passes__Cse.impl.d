lib/passes/cse.ml: Array Cfg Dom Format Grover_ir Hashtbl List Printer Printf Ssa String
