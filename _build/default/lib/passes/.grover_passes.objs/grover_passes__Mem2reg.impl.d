lib/passes/mem2reg.ml: Array Cfg Dom Grover_ir Hashtbl List Ssa
