lib/passes/licm.ml: Array Cfg Cse Dom Grover_ir Hashtbl List Ssa
