(** Canonicalisation of work-item builtin calls.

    [get_local_id(0)] is a pure, work-item-invariant function: every call
    with the same constant dimension yields the same value. This pass keeps
    a single canonical call per (function, dimension) in the entry block and
    rewrites all duplicates to use it — a tiny value-numbering step that
    guarantees Grover sees one atom per thread-index coordinate. *)

open Grover_ir
open Ssa

let is_workitem_call = function
  | Call { callee; args = [ Cint (_, _) ]; _ } ->
      List.mem callee Grover_clc.Builtins.work_item_functions
  | Call { callee = "get_work_dim"; args = []; _ } -> true
  | _ -> false

let key = function
  | Call { callee; args = [ Cint (_, d) ]; _ } -> (callee, d)
  | Call { callee; _ } -> (callee, -1)
  | _ -> invalid_arg "key"

(* Rewrite get_global_id(d) as get_group_id(d)*get_local_size(d) +
   get_local_id(d). Global-load indexes are then explicit in the work-group
   and local thread indexes — the (w, l) decomposition the paper's S3
   assumes — even for kernels written in terms of global ids. *)
let expand_global_ids (fn : func) : bool =
  let e = entry fn in
  let changed = ref false in
  let expansions = ref [] in
  iter_instrs
    (fun i ->
      match i.op with
      | Call { callee = "get_global_id"; args = [ Cint (t, d) ]; _ } ->
          let call name =
            fresh_instr (Call { callee = name; args = [ Cint (t, d) ]; ret = I32 })
          in
          let grp = call "get_group_id" in
          let lsz = call "get_local_size" in
          let lid = call "get_local_id" in
          let mul = fresh_instr (Binop (Mul, Vinstr grp, Vinstr lsz)) in
          let add = fresh_instr (Binop (Add, Vinstr mul, Vinstr lid)) in
          expansions := (i, [ grp; lsz; lid; mul; add ]) :: !expansions
      | _ -> ())
    fn;
  List.iter
    (fun (gid_call, new_instrs) ->
      (* Splice the expansion right after the original call's position in
         the entry block (the call itself is hoisted there by [run]). *)
      List.iter
        (fun ni ->
          ni.parent <- Some e;
          ())
        new_instrs;
      (* Insert in order at the head of the entry block. *)
      e.instrs <- new_instrs @ e.instrs;
      let add = List.nth new_instrs 4 in
      replace_uses fn ~target:(Vinstr gid_call) ~by:(Vinstr add);
      (match gid_call.parent with
      | Some b -> remove_instr b gid_call
      | None -> ());
      changed := true)
    !expansions;
  !changed

let run (fn : func) : bool =
  let canonical : (string * int, instr) Hashtbl.t = Hashtbl.create 8 in
  let duplicates = ref [] in
  iter_instrs
    (fun i ->
      if is_workitem_call i.op then
        let k = key i.op in
        match Hashtbl.find_opt canonical k with
        | None -> Hashtbl.add canonical k i
        | Some c -> duplicates := (i, c) :: !duplicates)
    fn;
  (* Hoist the canonical calls to the top of the entry block (after other
     hoisted calls) so they dominate every use. *)
  let e = entry fn in
  Hashtbl.iter
    (fun _ c ->
      match c.parent with
      | Some b ->
          remove_instr b c;
          c.parent <- Some e;
          e.instrs <- c :: e.instrs
      | None -> ())
    canonical;
  List.iter
    (fun (dup, c) ->
      replace_uses fn ~target:(Vinstr dup) ~by:(Vinstr c);
      match dup.parent with
      | Some b -> remove_instr b dup
      | None -> ())
    !duplicates;
  !duplicates <> []
