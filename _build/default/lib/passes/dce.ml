(** Dead-code elimination.

    Removes value-producing instructions with no uses, then allocas whose
    remaining uses are only stores (dead stores first, then the alloca).
    This is the pass that performs Grover's "remove the redundant
    instructions" step after local loads are re-routed to global memory. *)

open Grover_ir
open Ssa

let has_side_effect (i : instr) : bool =
  match i.op with
  | Store _ | Barrier _ | Br _ | Cond_br _ | Ret -> true
  | Call _ -> false (* all supported builtins are pure; barrier is an opcode *)
  | _ -> false

let remove_unused (fn : func) : bool =
  (* Count uses across the function in one sweep. *)
  let uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
  iter_instrs
    (fun i ->
      List.iter
        (fun o ->
          match o with
          | Vinstr j ->
              Hashtbl.replace uses j.iid
                (1 + Option.value ~default:0 (Hashtbl.find_opt uses j.iid))
          | _ -> ())
        (operands i.op))
    fn;
  let changed = ref false in
  List.iter
    (fun b ->
      let keep i =
        has_side_effect i
        || type_of_opcode i.op <> Void
           && Option.value ~default:0 (Hashtbl.find_opt uses i.iid) > 0
        || (match i.op with Alloca _ -> true | _ -> false)
           && Option.value ~default:0 (Hashtbl.find_opt uses i.iid) > 0
      in
      let before = List.length b.instrs in
      b.instrs <- List.filter keep b.instrs;
      if List.length b.instrs <> before then changed := true)
    fn.blocks;
  !changed

(* An alloca whose loads are all gone: delete its stores, then itself. *)
let remove_write_only_allocas (fn : func) : bool =
  let allocas =
    fold_instrs
      (fun acc i -> match i.op with Alloca _ -> i :: acc | _ -> acc)
      [] fn
  in
  let changed = ref false in
  List.iter
    (fun a ->
      let read_or_escapes = ref false in
      iter_instrs
        (fun i ->
          match i.op with
          | Store { ptr = Vinstr p; index; v } when p.iid = a.iid ->
              (* The index and stored value are ordinary uses only if they
                 mention the alloca itself. *)
              List.iter
                (fun o ->
                  match o with
                  | Vinstr j when j.iid = a.iid -> read_or_escapes := true
                  | _ -> ())
                [ index; v ]
          | _ ->
              if
                List.exists
                  (fun o -> match o with Vinstr j -> j.iid = a.iid | _ -> false)
                  (operands i.op)
              then read_or_escapes := true)
        fn;
      if not !read_or_escapes then begin
        List.iter
          (fun b ->
            let before = List.length b.instrs in
            b.instrs <-
              List.filter
                (fun i ->
                  match i.op with
                  | Store { ptr = Vinstr p; _ } when p.iid = a.iid -> false
                  | Alloca _ when i.iid = a.iid -> false
                  | _ -> true)
                b.instrs;
            if List.length b.instrs <> before then changed := true)
          fn.blocks
      end)
    allocas;
  !changed

let run (fn : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    if remove_unused fn then continue_ := true;
    if remove_write_only_allocas fn then continue_ := true;
    if !continue_ then changed := true
  done;
  !changed
