(** Constant folding and algebraic simplification.

    Keeps index expressions in the normal form Grover's tree matcher
    expects: constants folded, additive/multiplicative identities removed,
    and comparison round-trips ([icmp ne (zext i1 c), 0]) collapsed. *)

open Grover_ir
open Ssa

let mask_of = function
  | I1 -> 1
  | I8 -> 0xff
  | I16 -> 0xffff
  | I32 -> 0xffffffff
  | _ -> -1

(* Reinterpret the masked bits as a signed value of the type's width. *)
let signed_of t n =
  match t with
  | I1 -> n land 1 (* i1 is canonically 0/1, matching icmp results *)
  | I8 ->
      let n = n land 0xff in
      if n >= 0x80 then n - 0x100 else n
  | I16 ->
      let n = n land 0xffff in
      if n >= 0x8000 then n - 0x10000 else n
  | I32 ->
      let n = n land 0xffffffff in
      if n >= 0x80000000 then n - 0x100000000 else n
  | _ -> n

let wrap t n = Cint (t, signed_of t n)

let fold_int_binop t op a b : value option =
  let u x = x land mask_of t in
  match op with
  | Add -> Some (wrap t (a + b))
  | Sub -> Some (wrap t (a - b))
  | Mul -> Some (wrap t (a * b))
  | Sdiv -> if b = 0 then None else Some (wrap t (a / b))
  | Udiv -> if b = 0 then None else Some (wrap t (u a / u b))
  | Srem -> if b = 0 then None else Some (wrap t (a mod b))
  | Urem -> if b = 0 then None else Some (wrap t (u a mod u b))
  | Shl -> Some (wrap t (a lsl (b land 63)))
  | Ashr -> Some (wrap t (a asr (b land 63)))
  | Lshr -> Some (wrap t (u a lsr (b land 63)))
  | And -> Some (wrap t (a land b))
  | Or -> Some (wrap t (a lor b))
  | Xor -> Some (wrap t (a lxor b))
  | Fadd | Fsub | Fmul | Fdiv | Frem -> None

let fold_float_binop op a b : value option =
  match op with
  | Fadd -> Some (Cfloat (a +. b))
  | Fsub -> Some (Cfloat (a -. b))
  | Fmul -> Some (Cfloat (a *. b))
  | Fdiv -> Some (Cfloat (a /. b))
  | Frem -> Some (Cfloat (Float.rem a b))
  | _ -> None

let fold_icmp t c a b : value option =
  let u x = x land mask_of t in
  let r =
    match c with
    | Ieq -> a = b
    | Ine -> a <> b
    | Islt -> a < b
    | Isle -> a <= b
    | Isgt -> a > b
    | Isge -> a >= b
    | Iult -> u a < u b
    | Iule -> u a <= u b
    | Iugt -> u a > u b
    | Iuge -> u a >= u b
  in
  Some (Cint (I1, if r then 1 else 0))

let is_zero = function Cint (_, 0) -> true | Cfloat 0.0 -> true | _ -> false
let is_one = function Cint (_, 1) -> true | Cfloat 1.0 -> true | _ -> false

(* One local rewrite step: Some v means "this instruction is just v". *)
let simplify_op (op : opcode) : value option =
  match op with
  | Binop (bop, Cint (t, a), Cint (_, b)) -> fold_int_binop t bop a b
  | Binop (bop, Cfloat a, Cfloat b) -> fold_float_binop bop a b
  | Binop ((Add | Or | Xor), x, z) when is_zero z -> Some x
  | Binop ((Add | Or | Xor), z, x) when is_zero z -> Some x
  | Binop (Sub, x, z) when is_zero z -> Some x
  | Binop ((Sub | Xor), x, y)
    when value_equal x y
         && (match type_of x with
            | I1 | I8 | I16 | I32 | I64 -> true
            | _ -> false) ->
      Some (Cint (type_of x, 0))
  | Binop (And, x, y) when value_equal x y -> Some x
  | Binop (Or, x, y) when value_equal x y -> Some x
  | Binop ((Shl | Ashr | Lshr), x, z) when is_zero z -> Some x
  | Binop (Mul, x, o) when is_one o -> Some x
  | Binop (Mul, o, x) when is_one o -> Some x
  | Binop (Mul, _, z) when is_zero z -> Some z
  | Binop (Mul, z, _) when is_zero z -> Some z
  | Binop (And, _, (Cint (_, 0) as z)) -> Some z
  | Binop (And, (Cint (_, 0) as z), _) -> Some z
  | Binop (Fadd, x, z) when is_zero z -> Some x
  | Binop (Fadd, z, x) when is_zero z -> Some x
  | Binop (Fsub, x, z) when is_zero z -> Some x
  | Binop (Fmul, x, o) when is_one o -> Some x
  | Binop (Fmul, o, x) when is_one o -> Some x
  | Icmp (c, Cint (t, a), Cint (_, b)) -> fold_icmp t c a b
  (* icmp ne (zext i1 c to _), 0  ==>  c *)
  | Icmp (Ine, Vinstr { op = Cast (Zext, c, _); _ }, Cint (_, 0))
    when type_of c = I1 ->
      Some c
  | Icmp (Ieq, Vinstr { op = Cast (Zext, c, _); _ }, Cint (_, 1))
    when type_of c = I1 ->
      Some c
  | Select (Cint (I1, 1), a, _) -> Some a
  | Select (Cint (I1, 0), _, b) -> Some b
  | Select (_, a, b) when value_equal a b -> Some a
  | Cast (k, Cint (t, n), dst) -> (
      match (k, dst) with
      | (Sext | Trunc), _ when dst <> F32 -> Some (wrap dst (signed_of t n))
      | Zext, _ when dst <> F32 -> Some (Cint (dst, n land mask_of t))
      | Si_to_fp, F32 -> Some (Cfloat (float_of_int (signed_of t n)))
      | Ui_to_fp, F32 -> Some (Cfloat (float_of_int (n land mask_of t)))
      | _ -> None)
  | Cast (Fp_to_si, Cfloat f, dst) when dst <> F32 ->
      Some (wrap dst (int_of_float f))
  | Cast ((Sext | Zext | Trunc | Bitcast), v, dst) when type_of v = dst -> Some v
  | Extract (Vinstr { op = Vecbuild (_, vs); _ }, Cint (_, lane))
    when lane >= 0 && lane < List.length vs ->
      Some (List.nth vs lane)
  | _ -> None

(* Dead-branch folding: cond_br on a constant becomes an unconditional br. *)
let fold_branches (fn : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      match b.term with
      | Some ({ op = Cond_br (Cint (I1, c), t, e); _ } as term) ->
          let target = if c <> 0 then t else e in
          let dropped = if c <> 0 then e else t in
          term.op <- Br target;
          (* The dropped edge disappears: fix the orphan's phis. *)
          List.iter
            (fun i ->
              match i.op with
              | Phi p ->
                  p.incoming <-
                    List.filter (fun (src, _) -> src.bid <> b.bid) p.incoming
              | _ -> ())
            dropped.instrs;
          changed := true
      | _ -> ())
    fn.blocks;
  if !changed then Cfg.prune_unreachable fn;
  !changed

let run (fn : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let rewrites =
      fold_instrs
        (fun acc i ->
          match simplify_op i.op with
          | Some v -> (i, v) :: acc
          | None -> acc)
        [] fn
    in
    (* Rewrites may chain (i1 -> i2 while i2 -> c): resolve to the final
       value so no use ends up pointing at a deleted instruction. *)
    let tbl = Hashtbl.create 16 in
    List.iter (fun (i, v) -> Hashtbl.replace tbl i.iid v) rewrites;
    let rec resolve v =
      match v with
      | Vinstr i -> (
          match Hashtbl.find_opt tbl i.iid with
          | Some v' -> resolve v'
          | None -> v)
      | _ -> v
    in
    List.iter
      (fun (i, _) ->
        replace_uses fn ~target:(Vinstr i) ~by:(resolve (Vinstr i));
        (match i.parent with Some b -> remove_instr b i | None -> ());
        continue_ := true;
        changed := true)
      rewrites;
    if fold_branches fn then begin
      continue_ := true;
      changed := true
    end;
    if !continue_ then Mem2reg.remove_trivial_phis fn
  done;
  !changed
