(** Pass orchestration. [normalize] is the pipeline every kernel goes
    through before Grover's analysis; [cleanup] runs after its rewriting. *)

open Grover_ir

let fixpoint (fn : Ssa.func) : unit =
  let continue_ = ref true in
  while !continue_ do
    let a = Simplify.run fn in
    let b = Cse.run fn in
    let c = Dce.run fn in
    continue_ := a || b || c
  done;
  if Licm.run fn then begin
    let continue_ = ref true in
    while !continue_ do
      let a = Simplify.run fn in
      let b = Cse.run fn in
      let c = Dce.run fn in
      continue_ := a || b || c
    done
  end

(** Work-item-call canonicalisation + mem2reg + simplify/DCE to fixpoint;
    verified on exit. *)
let normalize (fn : Ssa.func) : unit =
  ignore (Canon.run fn);
  ignore (Canon.expand_global_ids fn);
  ignore (Canon.run fn);
  Mem2reg.run fn;
  fixpoint fn;
  Verify.run fn

(** Post-transformation cleanup: the same fixpoint (DCE removes the dead
    local stores/allocas the rewrite left behind). *)
let cleanup (fn : Ssa.func) : unit =
  fixpoint fn;
  Verify.run fn
