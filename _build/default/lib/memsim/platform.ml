(** Platform descriptions: the six processors of the paper's Table II,
    modelled at the level that determines the local-memory trade-off.

    CPUs (and the MIC) are cache-only: local memory is ordinary cached
    memory, work-items of a group run serially on one core between
    barriers, and a barrier costs a fiber switch per work-item. GPUs have
    banked scratch-pad memories, per-warp coalescing of global accesses,
    and near-free hardware barriers. *)

type kind = Cpu | Gpu | Mic

type costs = {
  c_int : float;  (** cycles per integer op (per work-item) *)
  c_float : float;
  c_special : float;  (** sqrt/exp/... *)
  c_branch : float;
  c_wi_dispatch : float;
      (** CPU: fixed per-work-item overhead of the runtime's work-item loop *)
  c_barrier_wi : float;  (** CPU: extra per-work-item cost per barrier round
                             (region re-entry after loop fission) *)
  c_barrier_round : float;  (** fixed cost per barrier round *)
}

type cpu_mem = {
  l1 : Cache.config;
  l2 : Cache.config option;  (** per-core *)
  llc : Cache.config option;  (** shared; None on MIC (distributed L2) *)
  mem_latency : int;
}

type gpu_mem = {
  segment : int;  (** coalescing segment size in bytes (transaction width) *)
  l1g : Cache.config option;
      (** per-CU L1 that caches *global* loads (GCN/Tahiti); NVIDIA's Fermi
          and Kepler route global loads past L1 in their default OpenCL
          configuration, hence [None] *)
  l2g : Cache.config option;  (** device-level cache, tracks segments *)
  trans_cost : float;  (** cycles per memory transaction (bandwidth bound) *)
  spm_cost : float;  (** cycles per conflict-free SPM warp access *)
  banks : int;
  mem_latency : int;  (** extra cycles on an L2 miss *)
}

type mem_model = Cpu_mem of cpu_mem | Gpu_mem of gpu_mem

type t = {
  name : string;
  kind : kind;
  cores : int;  (** cores (CPU) or SMs / CUs (GPU) *)
  freq_ghz : float;
  simd : int;  (** implicit vectorisation width across work-items (CPU) *)
  warp : int;  (** lockstep width (GPU); 1 on CPUs *)
  costs : costs;
  mem : mem_model;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

let cpu_costs =
  {
    c_int = 1.0;
    c_float = 1.0;
    c_special = 12.0;
    c_branch = 2.0;
    c_wi_dispatch = 15.0;
    c_barrier_wi = 6.0;
    c_barrier_round = 150.0;
  }

let gpu_costs =
  {
    c_int = 1.0;
    c_float = 1.0;
    c_special = 4.0;
    c_branch = 2.0;
    c_wi_dispatch = 0.0;
    c_barrier_wi = 0.0;
    c_barrier_round = 30.0;
  }

(* -- The three cache-only processors of Fig. 10 --------------------------- *)

let snb : t =
  {
    name = "SNB";
    kind = Cpu;
    cores = 8;
    freq_ghz = 2.0;
    simd = 8;
    warp = 1;
    costs = cpu_costs;
    mem =
      Cpu_mem
        {
          l1 = { Cache.size_bytes = kib 32; line_bytes = 64; ways = 8; latency = 4 };
          l2 =
            Some { Cache.size_bytes = kib 256; line_bytes = 64; ways = 8; latency = 12 };
          llc =
            Some { Cache.size_bytes = mib 20; line_bytes = 64; ways = 16; latency = 40 };
          mem_latency = 200;
        };
  }

let nehalem : t =
  {
    name = "Nehalem";
    kind = Cpu;
    cores = 4;
    freq_ghz = 2.4;
    simd = 4;
    warp = 1;
    costs = { cpu_costs with c_barrier_wi = 7.0 };
    mem =
      Cpu_mem
        {
          l1 = { Cache.size_bytes = kib 32; line_bytes = 64; ways = 8; latency = 4 };
          l2 =
            Some { Cache.size_bytes = kib 256; line_bytes = 64; ways = 8; latency = 11 };
          llc =
            Some { Cache.size_bytes = mib 8; line_bytes = 64; ways = 16; latency = 38 };
          mem_latency = 220;
        };
  }

let mic : t =
  {
    name = "MIC";
    kind = Mic;
    cores = 60;
    freq_ghz = 1.05;
    simd = 16;
    warp = 1;
    (* In-order cores with heavy per-work-item scalar overhead: staging
       costs drown in the baseline, flattening the with/without profile. *)
    costs =
      { cpu_costs with c_wi_dispatch = 250.0; c_barrier_wi = 2.0; c_special = 8.0 };
    mem =
      Cpu_mem
        {
          l1 = { Cache.size_bytes = kib 32; line_bytes = 64; ways = 8; latency = 3 };
          (* Knights Corner: a large private L2 per core, no shared LLC —
             the distributed last-level cache the paper credits for MIC's
             flat with/without-local-memory profile. *)
          l2 =
            Some { Cache.size_bytes = kib 512; line_bytes = 64; ways = 8; latency = 24 };
          llc = None;
          mem_latency = 300;
        };
  }

(* -- The three GPUs of Fig. 2 ---------------------------------------------- *)

let fermi : t =
  {
    name = "Fermi";
    kind = Gpu;
    cores = 16;
    freq_ghz = 1.54;
    simd = 1;
    warp = 32;
    costs = gpu_costs;
    mem =
      Gpu_mem
        {
          segment = 128;
          l1g = None;
          l2g =
            Some { Cache.size_bytes = kib 768; line_bytes = 128; ways = 16; latency = 8 };
          trans_cost = 36.0;
          spm_cost = 2.0;
          banks = 32;
          mem_latency = 60;
        };
  }

let kepler : t =
  {
    name = "Kepler";
    kind = Gpu;
    cores = 13;
    freq_ghz = 0.71;
    simd = 1;
    warp = 32;
    costs = gpu_costs;
    mem =
      Gpu_mem
        {
          segment = 128;
          l1g = None;
          l2g =
            Some
              { Cache.size_bytes = kib 1536; line_bytes = 128; ways = 16; latency = 8 };
          trans_cost = 30.0;
          spm_cost = 2.0;
          banks = 32;
          mem_latency = 50;
        };
  }

let tahiti : t =
  {
    name = "Tahiti";
    kind = Gpu;
    cores = 32;
    freq_ghz = 0.925;
    simd = 1;
    warp = 64;
    costs = gpu_costs;
    mem =
      Gpu_mem
        {
          segment = 64;
          l1g =
            Some { Cache.size_bytes = kib 8; line_bytes = 64; ways = 2; latency = 2 };
          l2g =
            Some { Cache.size_bytes = kib 768; line_bytes = 64; ways = 16; latency = 8 };
          trans_cost = 24.0;
          spm_cost = 2.5;
          banks = 32;
          mem_latency = 55;
        };
  }

let all : t list = [ fermi; kepler; tahiti; snb; nehalem; mic ]
let cache_only : t list = [ snb; nehalem; mic ]

let by_name (n : string) : t option =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii n) all
