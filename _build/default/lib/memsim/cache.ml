(** A set-associative, write-allocate, write-back cache with LRU
    replacement. Addresses are byte addresses; the cache tracks lines. *)

type config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
  latency : int;  (** cycles on hit *)
}

type t = {
  cfg : config;
  sets : int;
  tags : int array;  (** [set * ways + way] -> line tag, -1 = invalid *)
  lru : int array;  (** recency counter per slot; larger = more recent *)
  dirty : bool array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create (cfg : config) : t =
  if cfg.size_bytes mod (cfg.line_bytes * cfg.ways) <> 0 then
    invalid_arg "Cache.create: size must divide into ways * line";
  let sets = cfg.size_bytes / (cfg.line_bytes * cfg.ways) in
  {
    cfg;
    sets;
    tags = Array.make (sets * cfg.ways) (-1);
    lru = Array.make (sets * cfg.ways) 0;
    dirty = Array.make (sets * cfg.ways) false;
    tick = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let reset (c : t) : unit =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.lru 0 (Array.length c.lru) 0;
  Array.fill c.dirty 0 (Array.length c.dirty) false;
  c.tick <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.writebacks <- 0

let line_of (c : t) (addr : int) : int = addr / c.cfg.line_bytes

(** Access one cache line. Returns [true] on hit. On miss the line is
    allocated (write-allocate for writes too), possibly writing back a
    dirty victim. *)
let access_line (c : t) ~(line : int) ~(is_write : bool) : bool =
  c.tick <- c.tick + 1;
  let set = line mod c.sets in
  let base = set * c.cfg.ways in
  let found = ref (-1) in
  for w = 0 to c.cfg.ways - 1 do
    if c.tags.(base + w) = line then found := w
  done;
  if !found >= 0 then begin
    let w = !found in
    c.hits <- c.hits + 1;
    c.lru.(base + w) <- c.tick;
    if is_write then c.dirty.(base + w) <- true;
    true
  end
  else begin
    c.misses <- c.misses + 1;
    (* Choose the LRU victim. *)
    let victim = ref 0 in
    for w = 1 to c.cfg.ways - 1 do
      if c.lru.(base + w) < c.lru.(base + !victim) then victim := w
    done;
    let w = !victim in
    if c.tags.(base + w) >= 0 && c.dirty.(base + w) then
      c.writebacks <- c.writebacks + 1;
    c.tags.(base + w) <- line;
    c.lru.(base + w) <- c.tick;
    c.dirty.(base + w) <- is_write;
    false
  end

(** Access [bytes] bytes at [addr]; accesses spanning lines touch each line.
    Returns the number of line misses (0 = all hits). *)
let access (c : t) ~(addr : int) ~(bytes : int) ~(is_write : bool) : int =
  let first = line_of c addr in
  let last = line_of c (addr + max 1 bytes - 1) in
  let misses = ref 0 in
  for line = first to last do
    if not (access_line c ~line ~is_write) then incr misses
  done;
  !misses

type stats = { s_hits : int; s_misses : int; s_writebacks : int }

let stats (c : t) : stats =
  { s_hits = c.hits; s_misses = c.misses; s_writebacks = c.writebacks }
