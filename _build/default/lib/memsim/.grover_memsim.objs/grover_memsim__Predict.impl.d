lib/memsim/predict.ml: Cache Grover_ocl Platform Trace
