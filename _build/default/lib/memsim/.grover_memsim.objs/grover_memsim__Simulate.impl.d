lib/memsim/simulate.ml: Array Cache Grover_ir Grover_ocl Grover_support Hashtbl List Option Platform Trace
