lib/memsim/platform.ml: Cache List String
