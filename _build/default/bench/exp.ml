(* Experiment drivers shared by the bench subcommands: runs the paper's
   figures and tables on the simulated platforms and prints them in the
   paper's shape. *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module P = Grover_memsim.Platform

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* -- Table I: benchmarks and datasets -------------------------------------- *)

let table1 () =
  header "Table I: Selected benchmarks";
  Printf.printf "%-11s %-28s %s\n" "ID" "Origin" "Dataset";
  List.iter
    (fun (c : Kit.case) ->
      Printf.printf "%-11s %-28s %s\n" c.Kit.id c.Kit.origin c.Kit.dataset)
    Grover_suite.Suite.all

(* -- Table II: platforms ----------------------------------------------------- *)

let table2 () =
  header "Table II: The six simulated platforms";
  Printf.printf "%-9s %-5s %6s %8s %6s %6s  %s\n" "Name" "Kind" "Cores"
    "GHz" "SIMD" "Warp" "Memory model";
  List.iter
    (fun (p : P.t) ->
      let kind =
        match p.P.kind with P.Cpu -> "CPU" | P.Gpu -> "GPU" | P.Mic -> "MIC"
      in
      let mem_desc =
        match p.P.mem with
        | P.Cpu_mem m ->
            Printf.sprintf "L1 %dK%s%s"
              (m.P.l1.Grover_memsim.Cache.size_bytes / 1024)
              (match m.P.l2 with
              | Some c ->
                  Printf.sprintf ", L2 %dK" (c.Grover_memsim.Cache.size_bytes / 1024)
              | None -> "")
              (match m.P.llc with
              | Some c ->
                  Printf.sprintf ", shared LLC %dM"
                    (c.Grover_memsim.Cache.size_bytes / 1024 / 1024)
              | None -> ", distributed LLC (per-core L2 only)")
        | P.Gpu_mem g ->
            Printf.sprintf "SPM (%d banks), %dB segments%s" g.P.banks g.P.segment
              (match g.P.l2g with
              | Some c ->
                  Printf.sprintf ", L2 %dK" (c.Grover_memsim.Cache.size_bytes / 1024)
              | None -> "")
      in
      Printf.printf "%-9s %-5s %6d %8.2f %6d %6d  %s\n" p.P.name kind p.P.cores
        p.P.freq_ghz p.P.simd p.P.warp mem_desc)
    P.all

(* -- Fig. 1 / Fig. 9: the transformation pipeline on NVD-MT ----------------- *)

let fig1 () =
  header "Fig. 1: Removing local memory usage on Matrix Transpose";
  let case = Grover_suite.Nvd_mt.case in
  print_string case.Kit.source;
  let fn, outcome = H.compile_version case H.Without_lm in
  (match outcome with
  | Some o ->
      List.iter
        (fun e -> print_endline (Grover_core.Report.to_string e))
        o.Grover_core.Grover.reports
  | None -> ());
  print_endline "\nTransformed kernel (local memory disabled):";
  print_string (Grover_ir.Printer.func_to_string fn)

let fig9 () =
  header "Fig. 9: The compilation pipeline";
  let case = Grover_suite.Nvd_mt.case in
  Printf.printf
    "OpenCL C (%d bytes)\n  |> front-end (lex/parse/sema)\n  |> SSA IR \
     lowering\n  |> normalisation (canon, gid expansion, mem2reg, simplify, \
     DCE)\n  |> GROVER (candidate selection, index analysis, linear solve, \
     rewrite)\n  |> cleanup (DCE, barrier removal)\n  |> execution engine / \
     simulated platforms\n"
    (String.length case.Kit.source);
  let fns = Grover_ir.Lower.compile case.Kit.source in
  List.iter
    (fun fn ->
      Grover_passes.Pipeline.normalize fn;
      let n_before =
        Grover_ir.Ssa.fold_instrs (fun n _ -> n + 1) 0 fn
      in
      let o = Grover_core.Grover.run fn in
      let n_after = Grover_ir.Ssa.fold_instrs (fun n _ -> n + 1) 0 fn in
      Printf.printf
        "kernel %s: %d instructions with local memory -> %d without; \
         transformed=[%s]\n"
        fn.Grover_ir.Ssa.f_name n_before n_after
        (String.concat ";" o.Grover_core.Grover.transformed))
    fns

(* -- Table III: data indexes -------------------------------------------------- *)

let table3 () =
  header "Table III: Determining the data index of nGL";
  List.iter
    (fun (c : Kit.case) ->
      match H.compile_version c H.Without_lm with
      | _, Some o ->
          List.iter
            (fun (e : Grover_core.Report.entry) ->
              Printf.printf "%-11s %-4s LS=%-18s LL=%-18s\n%11s nGL=%s\n" c.Kit.id
                e.Grover_core.Report.candidate
                (Grover_core.Report.dims_to_string e.Grover_core.Report.ls_index)
                (Grover_core.Report.dims_to_string e.Grover_core.Report.ll_index)
                ""
                e.Grover_core.Report.ngl_index)
            o.Grover_core.Grover.reports
      | _, None -> Printf.printf "%-11s (not transformed)\n" c.Kit.id)
    Grover_suite.Suite.all

(* -- Fig. 2 / Fig. 10: normalized performance --------------------------------- *)

let bar np =
  let n = int_of_float (np *. 20.0 +. 0.5) in
  String.make (min n 60) '#'

let run_cases ~(platforms : P.t list) ~(cases : Kit.case list) ~(scale : int) :
    H.comparison list =
  List.concat_map
    (fun (p : P.t) ->
      List.map
        (fun (c : Kit.case) ->
          let cmp = H.compare c ~platform:p ~scale in
          (match cmp.H.with_lm.H.valid with
          | Error m -> Printf.printf "!! %s/%s with-lm INVALID: %s\n" c.Kit.id p.P.name m
          | Ok () -> ());
          (match cmp.H.without_lm.H.valid with
          | Error m ->
              Printf.printf "!! %s/%s grover INVALID: %s\n" c.Kit.id p.P.name m
          | Ok () -> ());
          cmp)
        cases)
    platforms

let print_np (cmps : H.comparison list) =
  Printf.printf "%-11s %-9s %10s %10s %8s  %-7s %s\n" "Benchmark" "Platform"
    "t_with(ms)" "t_wout(ms)" "np" "verdict" "";
  List.iter
    (fun (c : H.comparison) ->
      Printf.printf "%-11s %-9s %10.3f %10.3f %8.2f  %-7s %s\n" c.H.case_id
        c.H.platform
        (c.H.with_lm.H.seconds *. 1e3)
        (c.H.without_lm.H.seconds *. 1e3)
        c.H.normalized
        (H.verdict_name (H.classify c.H.normalized))
        (bar c.H.normalized))
    cmps

let fig2 ~scale () =
  header
    "Fig. 2: Performance impact of removing local memory on MT and MM (6 \
     platforms; np > 1 means removal wins)";
  let cases = [ Grover_suite.Nvd_mt.case; Grover_suite.Nvd_mm.case_a ] in
  let cmps = run_cases ~platforms:P.all ~cases ~scale in
  print_np cmps;
  cmps

let fig10 ~scale () =
  header
    "Fig. 10: Normalized performance after disabling local memory (SNB, \
     Nehalem, MIC)";
  let cmps =
    run_cases ~platforms:P.cache_only ~cases:Grover_suite.Suite.all ~scale
  in
  print_np cmps;
  cmps

(* -- Table IV: the gain/loss distribution -------------------------------------- *)

let table4 ?(cmps : H.comparison list option) ~scale () =
  let cmps =
    match cmps with Some c -> c | None -> fig10 ~scale ()
  in
  header "Table IV: Performance gain/loss distribution (5% threshold)";
  let count p v =
    List.length
      (List.filter
         (fun (c : H.comparison) ->
           c.H.platform = p && H.classify c.H.normalized = v)
         cmps)
  in
  let platforms = [ "SNB"; "Nehalem"; "MIC" ] in
  Printf.printf "%-9s %s  Total (%%)\n" ""
    (String.concat "  " (List.map (Printf.sprintf "%-8s") platforms));
  let total = List.length cmps in
  List.iter
    (fun v ->
      let per = List.map (fun p -> count p v) platforms in
      let sum = List.fold_left ( + ) 0 per in
      Printf.printf "%-9s %s  %d (%d%%)\n"
        (String.capitalize_ascii (H.verdict_name v))
        (String.concat "  " (List.map (Printf.sprintf "%-8d") per))
        sum
        (if total = 0 then 0 else 100 * sum / total))
    [ H.Gain; H.Loss; H.Similar ]
