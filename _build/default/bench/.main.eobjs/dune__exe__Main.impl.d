bench/main.ml: Ablation Analyze Array Bechamel Benchmark Exp Grover_suite Hashtbl Instance List Measure Predictor Printf Staged Sys Test Time Toolkit
