bench/predictor.ml: Exp Float Grover_memsim Grover_suite List Printf
