bench/ablation.ml: Exp Grover_memsim Grover_suite Printf
