bench/exp.ml: Grover_core Grover_ir Grover_memsim Grover_passes Grover_suite List Printf String
