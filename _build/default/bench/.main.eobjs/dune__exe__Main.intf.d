bench/main.mli:
