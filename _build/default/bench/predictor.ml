(* Evaluation of the analytical (countless) performance model against the
   trace-driven simulator — the paper's §VIII "model the performance
   benefits/losses on CPUs" future-work item, and a quantitative argument
   for its empirical methodology. *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module P = Grover_memsim.Platform
module Predict = Grover_memsim.Predict

let eval_case (case : Kit.case) (plat : P.t) ~scale =
  let cmp = H.compare case ~platform:plat ~scale in
  let wg_size =
    let x, y, z = (case.Kit.mk ~scale).Kit.local in
    x * y * z
  in
  let fn_vectorized =
    let fn, _ = H.compile_version case H.With_lm in
    H.uses_vector_types fn
  in
  let inp (r : H.run) =
    { Predict.totals = r.H.totals; wg_size; vectorized = fn_vectorized }
  in
  let np_pred =
    Predict.predict_np plat ~with_lm:(inp cmp.H.with_lm)
      ~without_lm:(inp cmp.H.without_lm)
  in
  (cmp.H.normalized, np_pred)

let run ~scale () =
  Exp.header
    "Predictor: analytical (countless) model vs trace-driven simulation \
     (np on SNB)";
  Printf.printf "%-11s %10s %10s %8s  %s\n" "Benchmark" "np (sim)" "np (model)"
    "|err|" "";
  let errs = ref [] in
  List.iter
    (fun (case : Kit.case) ->
      let np_sim, np_pred = eval_case case P.snb ~scale in
      let err = Float.abs (np_sim -. np_pred) in
      errs := (case.Kit.id, np_sim, np_pred, err) :: !errs;
      Printf.printf "%-11s %10.2f %10.2f %8.2f  %s\n" case.Kit.id np_sim np_pred
        err
        (if np_sim < 1.0 && np_pred > 1.0 then "<- WRONG SIGN: model says remove, simulation says keep"
         else if err > 0.15 then "<- countless model over-estimates the removal benefit"
         else ""))
    Grover_suite.Suite.all;
  let errs = List.rev !errs in
  let mae =
    List.fold_left (fun a (_, _, _, e) -> a +. e) 0.0 errs
    /. float_of_int (List.length errs)
  in
  Printf.printf "\nmean absolute error: %.3f\n" mae;
  print_endline
    "A first-order model tracks the overhead-driven cases but over-estimates\n\
     the benefit where the removed accesses were cache-cheap, and flips the\n\
     sign on the cache-layout losses (AMD-MM) — the paper's argument for\n\
     empirical auto-tuning over modelling, quantified."
