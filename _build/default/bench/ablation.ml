(* Ablation studies for the design choices DESIGN.md calls out: each
   ablation switches one mechanism off and shows which experimental shape it
   is responsible for. *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module P = Grover_memsim.Platform

let np case platform ~scale = (H.compare case ~platform ~scale).H.normalized

let np_forced case platform ~scale ~vectorized =
  (H.compare ~vectorized_override:vectorized case ~platform ~scale).H.normalized

let row label a b = Printf.printf "  %-42s %8.2f %10.2f\n" label a b

(* 1. Barrier cost: how much of the CPU-side gain is barrier removal? *)
let barrier_cost ~scale () =
  Exp.header "Ablation 1: CPU barrier cost (NVD-MT normalized perf on SNB)";
  let free_barriers =
    {
      P.snb with
      P.name = "SNB-nobarrier";
      P.costs =
        { P.snb.P.costs with P.c_barrier_wi = 0.0; c_barrier_round = 0.0 };
    }
  in
  Printf.printf "  %-42s %8s %10s\n" "" "baseline" "ablated";
  row "barrier cost zeroed"
    (np Grover_suite.Nvd_mt.case P.snb ~scale)
    (np Grover_suite.Nvd_mt.case free_barriers ~scale);
  print_endline
    "  (if np drops toward 1, the measured gain is driven by the barrier\n\
    \   and work-item loop-fission overhead the transformation removes)"

(* 2. Implicit work-item vectorisation: responsible for absorbing the
   column-access penalty of NVD-MM-B. *)
let simd_coalescing ~scale () =
  Exp.header
    "Ablation 2: CPU SIMD lane coalescing (NVD-MM-B normalized perf on SNB)";
  Printf.printf "  %-42s %8s %10s\n" "" "baseline" "ablated";
  row "lane coalescing disabled (scalar work-items)"
    (np_forced Grover_suite.Nvd_mm.case_b P.snb ~scale ~vectorized:false)
    (np_forced Grover_suite.Nvd_mm.case_b P.snb ~scale ~vectorized:true);
  print_endline
    "  (without 8-wide lane execution every work-item pays the strided\n\
    \   column walk individually: the loss deepens sharply)"

(* 3. Tahiti's global-load L1: why Tahiti tolerates removal better than
   Fermi/Kepler. *)
let tahiti_l1 ~scale () =
  Exp.header "Ablation 3: Tahiti per-CU global L1 (NVD-MM-A normalized perf)";
  let no_l1 =
    match P.tahiti.P.mem with
    | P.Gpu_mem g ->
        { P.tahiti with P.name = "Tahiti-noL1"; P.mem = P.Gpu_mem { g with P.l1g = None } }
    | _ -> assert false
  in
  Printf.printf "  %-42s %8s %10s\n" "" "baseline" "ablated";
  row "global-load L1 removed"
    (np Grover_suite.Nvd_mm.case_a P.tahiti ~scale)
    (np Grover_suite.Nvd_mm.case_a no_l1 ~scale);
  print_endline
    "  (without the L1, every de-staged broadcast load becomes a full\n\
    \   memory transaction, as on Fermi/Kepler: removal turns into a loss)"

(* 4. MIC's distributed last-level cache: the paper's §VI-C explanation for
   MIC's flat profile. Counterfactually give MIC a small shared LLC and a
   small per-core L2. *)
let mic_llc ~scale () =
  Exp.header
    "Ablation 4: MIC distributed LLC (NVD-MM-B normalized perf on MIC)";
  let unified =
    match P.mic.P.mem with
    | P.Cpu_mem m ->
        {
          P.mic with
          P.name = "MIC-unifiedLLC";
          P.mem =
            P.Cpu_mem
              {
                m with
                P.l2 =
                  Some
                    { Grover_memsim.Cache.size_bytes = 128 * 1024;
                      line_bytes = 64; ways = 8; latency = 12 };
                llc =
                  Some
                    { Grover_memsim.Cache.size_bytes = 8 * 1024 * 1024;
                      line_bytes = 64; ways = 16; latency = 60 };
              };
        }
    | _ -> assert false
  in
  Printf.printf "  %-42s %8s %10s\n" "" "baseline" "ablated";
  row "large per-core L2 replaced by shared LLC"
    (np Grover_suite.Nvd_mm.case_b P.mic ~scale)
    (np Grover_suite.Nvd_mm.case_b unified ~scale);
  print_endline
    "  (the paper credits MIC's per-core 512K L2 for its flat profile:\n\
    \   shrinking it moves MIC toward the SNB/Nehalem behaviour)"

let all ~scale () =
  barrier_cost ~scale ();
  simd_coalescing ~scale ();
  tahiti_l1 ~scale ();
  mic_llc ~scale ()
