(* Emit demo: show the OpenCL C source Grover produces for a kernel.
   Run with: dune exec examples/emit_demo.exe -- [CASE-ID] [--with-lm] *)
let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let id = match List.filter (fun a -> a <> "--with-lm") args with
    | x :: _ -> x | [] -> "NVD-MT" in
  let version =
    if List.mem "--with-lm" args then Grover_suite.Harness.With_lm
    else Grover_suite.Harness.Without_lm in
  match Grover_suite.Suite.by_id id with
  | None -> prerr_endline ("unknown case " ^ id); exit 2
  | Some case ->
    let fn, _ = Grover_suite.Harness.compile_version case version in
    print_string (Grover_ir.Emit_c.kernel_to_c fn)
