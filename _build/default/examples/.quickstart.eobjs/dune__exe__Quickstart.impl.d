examples/quickstart.ml: Grover_core Grover_ir Grover_passes List Printf
