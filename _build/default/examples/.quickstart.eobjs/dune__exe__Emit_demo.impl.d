examples/emit_demo.ml: Array Grover_ir Grover_suite List Sys
