examples/matmul_variants.mli:
