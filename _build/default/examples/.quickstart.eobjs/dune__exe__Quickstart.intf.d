examples/quickstart.mli:
