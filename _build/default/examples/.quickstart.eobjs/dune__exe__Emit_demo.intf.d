examples/emit_demo.mli:
