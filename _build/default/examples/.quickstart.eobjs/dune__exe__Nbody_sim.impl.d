examples/nbody_sim.ml: Array Float Grover_core Grover_ir Grover_ocl Grover_passes Grover_suite Interp Lower Memory Printf Runtime Ssa
