examples/matmul_variants.ml: Grover_core Grover_memsim Grover_suite List Printf String
