examples/autotune.mli:
