examples/autotune.ml: Grover_memsim Grover_suite List Printf
