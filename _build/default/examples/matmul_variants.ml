(* Matmul variants: candidate selection (paper §V-B).

   oclMatrixMul stages both input matrices in local memory. Grover's
   candidate restriction derives the paper's three test cases from the one
   kernel: NVD-MM-A (disable the A tile), NVD-MM-B (disable the B tile) and
   NVD-MM-AB (disable both). This example shows the per-variant reports and
   compares all four versions on the SNB platform.

   Run with: dune exec examples/matmul_variants.exe *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module P = Grover_memsim.Platform

let () =
  let base = Grover_suite.Nvd_mm.case_a in
  print_endline "The kernel (both matrices staged in local memory):";
  print_string base.Kit.source;
  print_newline ();
  (* Show what Grover does for each candidate selection. *)
  List.iter
    (fun (label, case) ->
      let _, outcome = H.compile_version case H.Without_lm in
      match outcome with
      | Some o ->
          Printf.printf "=== %s: transformed [%s], %d barrier(s) removed\n"
            label
            (String.concat ", " o.Grover_core.Grover.transformed)
            o.Grover_core.Grover.barriers_removed;
          List.iter
            (fun e ->
              Printf.printf "    %s: nGL = %s\n"
                e.Grover_core.Report.candidate e.Grover_core.Report.ngl_index)
            o.Grover_core.Grover.reports
      | None -> ())
    [ ("NVD-MM-A", Grover_suite.Nvd_mm.case_a);
      ("NVD-MM-B", Grover_suite.Nvd_mm.case_b);
      ("NVD-MM-AB", Grover_suite.Nvd_mm.case_ab) ];
  print_newline ();
  (* Compare the four versions on SNB. *)
  let plat = P.snb in
  Printf.printf "Simulated on %s (C slab, B row stride 4 KiB):\n" plat.P.name;
  let with_lm, _ =
    H.run_version Grover_suite.Nvd_mm.case_a H.With_lm ~scale:2
      ~platform:(Some plat)
  in
  Printf.printf "  %-22s %10.3f ms\n" "with local memory" (with_lm.H.seconds *. 1e3);
  List.iter
    (fun (label, case) ->
      let r, _ = H.run_version case H.Without_lm ~scale:2 ~platform:(Some plat) in
      (match r.H.valid with
      | Ok () -> ()
      | Error m -> failwith (label ^ ": " ^ m));
      Printf.printf "  %-22s %10.3f ms  (np %.2f)\n" label (r.H.seconds *. 1e3)
        (with_lm.H.seconds /. r.H.seconds))
    [ ("NVD-MM-A (A removed)", Grover_suite.Nvd_mm.case_a);
      ("NVD-MM-B (B removed)", Grover_suite.Nvd_mm.case_b);
      ("NVD-MM-AB (both)", Grover_suite.Nvd_mm.case_ab) ];
  print_newline ();
  print_endline
    "The column-accessed B matrix benefits from the contiguous layout of\n\
     its local tile (its 4 KiB row stride makes tile columns collide in one\n\
     L1 set), so removing only B's staging loses; removing A's is free."
