(* Autotune: the paper's headline use-case (§I, §VII).

   Grover makes "local memory on/off" an automatic tuning knob: compile the
   kernel both ways, run both on the target platform, keep the faster one.
   This example tunes Matrix Transpose across all six simulated platforms
   and prints the per-platform decision — reproducing the paper's
   observation that the right answer differs per platform.

   Run with: dune exec examples/autotune.exe *)

module H = Grover_suite.Harness
module P = Grover_memsim.Platform

let () =
  let case = Grover_suite.Nvd_mt.case in
  Printf.printf "Autotuning %s (%s)\n\n" case.Grover_suite.Kit.id
    case.Grover_suite.Kit.description;
  Printf.printf "%-9s %12s %12s %8s  %s\n" "Platform" "with-lm(ms)"
    "no-lm(ms)" "np" "decision";
  List.iter
    (fun (p : P.t) ->
      let cmp = H.compare case ~platform:p ~scale:2 in
      (match (cmp.H.with_lm.H.valid, cmp.H.without_lm.H.valid) with
      | Ok (), Ok () -> ()
      | Error m, _ | _, Error m -> failwith ("validation failed: " ^ m));
      Printf.printf "%-9s %12.3f %12.3f %8.2f  %s\n" p.P.name
        (cmp.H.with_lm.H.seconds *. 1e3)
        (cmp.H.without_lm.H.seconds *. 1e3)
        cmp.H.normalized
        (if cmp.H.normalized > 1.05 then "disable local memory"
         else if cmp.H.normalized < 0.95 then "keep local memory"
         else "either (within 5%)"))
    P.all;
  print_newline ();
  print_endline
    "Both versions were validated against the host reference on every\n\
     platform; only their simulated execution time differs."
