(* Quickstart: run Grover on the paper's Fig. 1 kernel (NVIDIA-SDK-style
   Matrix Transpose) and show the kernel before and after local memory is
   disabled.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
#define S 16
__kernel void transpose(__global float *out, __global const float *in,
                        int W, int H) {
  __local float lm[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float val = lm[lx][ly];
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  out[gy * H + gx] = val;
}
|}

let () =
  print_endline "── OpenCL C source ─────────────────────────────────────────";
  print_string source;
  (* Compile and normalise (Clang + standard LLVM passes in the paper). *)
  let fns = Grover_ir.Lower.compile source in
  List.iter
    (fun fn ->
      Grover_passes.Pipeline.normalize fn;
      print_endline "── IR with local memory (input to Grover) ─────────────────";
      print_string (Grover_ir.Printer.func_to_string fn);
      (* The Grover pass itself. *)
      let outcome = Grover_core.Grover.run fn in
      print_endline "── Grover report ──────────────────────────────────────────";
      List.iter
        (fun (name, reason) ->
          Printf.printf "rejected %s: %s\n" name reason)
        outcome.Grover_core.Grover.rejected;
      List.iter
        (fun e -> print_endline (Grover_core.Report.to_string e))
        outcome.Grover_core.Grover.reports;
      print_endline "── IR without local memory (Grover output) ────────────────";
      print_string (Grover_ir.Printer.func_to_string fn))
    fns
