(* NBody: an end-to-end simulation step through the public API.

   Builds the N-body benchmark workload by hand (rather than through the
   suite harness) to show the full user-facing flow: compile OpenCL C,
   normalise, optionally run Grover, allocate buffers, launch over an
   NDRange, and read results back — then integrate positions one time step
   and report the energy drift between the two kernel versions (zero: the
   transformation is exact).

   Run with: dune exec examples/nbody_sim.exe *)

open Grover_ir
open Grover_ocl

let n = 256
let eps = 0.01
let dt = 0.001

let source = Grover_suite.Nvd_nbody.case.Grover_suite.Kit.source

let run_accel ~use_grover (pos_data : float array) : float array =
  let fn =
    match Lower.compile source with [ f ] -> f | _ -> failwith "one kernel"
  in
  Grover_passes.Pipeline.normalize fn;
  if use_grover then begin
    let o = Grover_core.Grover.run fn in
    assert (o.Grover_core.Grover.transformed = [ "sh" ])
  end;
  let compiled = Interp.prepare fn in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let accel = Memory.alloc mem vec4 n in
  let pos = Memory.alloc mem vec4 n in
  Memory.fill_floats pos (fun i -> pos_data.(i));
  ignore
    (Runtime.launch compiled
       ~cfg:{ Runtime.global = (n, 1, 1); local = (64, 1, 1); queues = 4 }
       ~args:
         [ Runtime.Abuf accel; Runtime.Abuf pos; Runtime.Aint n;
           Runtime.Afloat eps ]
       ~mem ());
  Memory.to_float_array accel

let () =
  (* Plummer-ish disc of bodies. *)
  let gen = Grover_suite.Kit.float_gen 2024 in
  let pos = Array.init (n * 4) (fun i -> if i mod 4 = 3 then 1.0 else gen ()) in
  let vel = Array.make (n * 4) 0.0 in
  Printf.printf "N-body step: %d bodies, eps=%.3g, dt=%.3g\n" n eps dt;
  let acc_with = run_accel ~use_grover:false pos in
  let acc_without = run_accel ~use_grover:true pos in
  (* The transformation must be exact: same reads, same arithmetic. *)
  let max_diff = ref 0.0 in
  Array.iteri
    (fun i a -> max_diff := Float.max !max_diff (Float.abs (a -. acc_without.(i))))
    acc_with;
  Printf.printf "max |accel(with lm) - accel(grover)| = %g\n" !max_diff;
  assert (!max_diff = 0.0);
  (* Integrate one leapfrog step with the (identical) accelerations. *)
  for i = 0 to n - 1 do
    for c = 0 to 2 do
      vel.((4 * i) + c) <- vel.((4 * i) + c) +. (dt *. acc_with.((4 * i) + c));
      pos.((4 * i) + c) <- pos.((4 * i) + c) +. (dt *. vel.((4 * i) + c))
    done
  done;
  let speed2 i =
    (vel.(4 * i) ** 2.) +. (vel.((4 * i) + 1) ** 2.) +. (vel.((4 * i) + 2) ** 2.)
  in
  let kinetic = ref 0.0 in
  for i = 0 to n - 1 do
    kinetic := !kinetic +. (0.5 *. pos.((4 * i) + 3) *. speed2 i)
  done;
  Printf.printf "kinetic energy after one step: %.6f\n" !kinetic;
  print_endline "OK: Grover's kernel is bit-identical to the original."
