test/test_core.ml: Alcotest Grover_core Grover_ir Grover_ocl Grover_passes Grover_support Interp List Lower Memory Printf QCheck QCheck_alcotest Runtime Ssa String
