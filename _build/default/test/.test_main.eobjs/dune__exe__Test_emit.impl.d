test/test_emit.ml: Alcotest Emit_c Grover_ir Grover_memsim Grover_ocl Grover_passes List Lower Memory Postdom Printf QCheck QCheck_alcotest Runtime Ssa String
