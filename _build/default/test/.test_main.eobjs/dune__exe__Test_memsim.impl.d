test/test_memsim.ml: Alcotest Array Grover_ir Grover_memsim Grover_ocl Grover_support List Printf QCheck QCheck_alcotest Trace
