test/test_passes.ml: Alcotest Array Dom Grover_core Grover_ir Grover_ocl Grover_passes Hashtbl Interp List Lower Memory Runtime Ssa Verify
