test/test_clc.ml: Alcotest Ast Grover_clc Lexer List Loc Parser Sema String Token
