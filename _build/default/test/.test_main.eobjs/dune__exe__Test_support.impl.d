test/test_support.ml: Alcotest Array Format Grover_support List Printf QCheck QCheck_alcotest String
