test/test_ir.ml: Alcotest Array Builder Cfg Dom Grover_clc Grover_ir Grover_passes List Lower Printer Printf QCheck QCheck_alcotest Ssa String Verify
