test/test_main.ml: Alcotest List Test_clc Test_core Test_emit Test_ir Test_memsim Test_ocl Test_passes Test_suite Test_support
