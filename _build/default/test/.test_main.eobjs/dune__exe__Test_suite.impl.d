test/test_suite.ml: Alcotest Grover_core Grover_ir Grover_ocl Grover_passes Grover_suite List Printf Runtime String Trace
