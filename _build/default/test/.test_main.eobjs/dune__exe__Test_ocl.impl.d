test/test_ocl.ml: Alcotest Array Grover_core Grover_ir Grover_ocl Grover_passes Interp Lower Memory Printf Runtime Ssa Trace
