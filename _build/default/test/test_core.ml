(* Unit tests for the Grover pass itself: candidate selection, expression
   trees, dimension splitting, the linear solve, rejection paths, and a
   property test that checks semantic equivalence on randomly generated
   staging kernels. *)

open Grover_ir
module G = Grover_core
module Q = Grover_support.Rational
module Form = G.Atom.Form

let compile1 src =
  match Lower.compile src with
  | [ fn ] ->
      Grover_passes.Pipeline.normalize fn;
      fn
  | _ -> Alcotest.fail "expected one kernel"

let run_grover ?only src =
  let fn = compile1 src in
  (fn, G.Grover.run ?only fn)

(* -- Candidate selection ---------------------------------------------------- *)

let staging_kernel body =
  Printf.sprintf
    {|__kernel void k(__global float *out, __global const float *in) {
        __local float lm[16];
        int lx = get_local_id(0);
        %s
        out[get_global_id(0)] = v;
      }|}
    body

let test_candidates_found () =
  let fn =
    compile1
      (staging_kernel
         {|lm[lx] = in[get_global_id(0)];
           barrier(CLK_LOCAL_MEM_FENCE);
           float v = lm[15 - lx];|})
  in
  match G.Access.candidates fn with
  | [ Ok c ] ->
      Alcotest.(check string) "name" "lm" c.G.Access.cand_name;
      Alcotest.(check int) "one pair" 1 (List.length c.G.Access.pairs);
      Alcotest.(check int) "one LL" 1 (List.length c.G.Access.lls);
      Alcotest.(check (list int)) "dims" [ 16 ] c.G.Access.dims
  | _ -> Alcotest.fail "expected one accepted candidate"

let test_scratch_usage_rejected () =
  (* Local memory written with a computed value: not a software cache. *)
  let _, o =
    run_grover
      (staging_kernel
         {|lm[lx] = in[get_global_id(0)] * 2.0f;
           barrier(CLK_LOCAL_MEM_FENCE);
           float v = lm[lx];|})
  in
  Alcotest.(check (list string)) "nothing transformed" [] o.G.Grover.transformed;
  match o.G.Grover.rejected with
  | [ (_, reason) ] ->
      Alcotest.(check bool) "mentions scratch" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected one rejection"

let test_reduction_rejected () =
  (* The classic tree reduction reads AND writes local memory: the paper's
     §VI-D limitation. *)
  let _, o =
    run_grover
      {|__kernel void reduce(__global float *out, __global const float *in) {
          __local float sm[64];
          int lx = get_local_id(0);
          sm[lx] = in[get_global_id(0)];
          barrier(CLK_LOCAL_MEM_FENCE);
          for (int s = 32; s > 0; s = s >> 1) {
            if (lx < s) sm[lx] = sm[lx] + sm[lx + s];
            barrier(CLK_LOCAL_MEM_FENCE);
          }
          if (lx == 0) out[get_group_id(0)] = sm[0];
        }|}
  in
  Alcotest.(check (list string)) "reduction untouched" [] o.G.Grover.transformed;
  Alcotest.(check bool) "rejected with a reason" true (o.G.Grover.rejected <> [])

let test_non_invertible_rejected () =
  (* Every work-item stores to slot lx/2: the index map is not injective,
     so the system lx' / 2 = j has no unique integral solution. *)
  let _, o =
    run_grover
      (staging_kernel
         {|lm[lx / 2] = in[get_global_id(0)];
           barrier(CLK_LOCAL_MEM_FENCE);
           float v = lm[lx];|})
  in
  Alcotest.(check (list string)) "not transformed" [] o.G.Grover.transformed

let test_data_dependent_index_rejected () =
  (* The store index depends on loaded data: not analysable. *)
  let _, o =
    run_grover
      {|__kernel void k(__global float *out, __global const float *in,
                        __global const int *idx) {
          __local float lm[16];
          int lx = get_local_id(0);
          lm[idx[lx]] = in[lx];
          barrier(CLK_LOCAL_MEM_FENCE);
          out[get_global_id(0)] = lm[lx];
        }|}
  in
  Alcotest.(check (list string)) "not transformed" [] o.G.Grover.transformed;
  Alcotest.(check bool) "has rejection reason" true (o.G.Grover.rejected <> [])

let test_only_filter () =
  let src =
    {|__kernel void k(__global float *out, __global const float *a,
                      __global const float *b) {
        __local float la[16];
        __local float lb[16];
        int lx = get_local_id(0);
        la[lx] = a[get_global_id(0)];
        lb[lx] = b[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = la[15 - lx] + lb[15 - lx];
      }|}
  in
  let _, o = run_grover ~only:[ "la" ] src in
  Alcotest.(check (list string)) "only la" [ "la" ] o.G.Grover.transformed;
  Alcotest.(check (list (pair string string))) "lb untouched, not rejected" []
    o.G.Grover.rejected

let test_barriers_kept_when_local_remains () =
  let src =
    {|__kernel void k(__global float *out, __global const float *a,
                      __global const float *b) {
        __local float la[16];
        __local float lb[16];
        int lx = get_local_id(0);
        la[lx] = a[get_global_id(0)];
        lb[lx] = b[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = la[15 - lx] + lb[15 - lx];
      }|}
  in
  let fn, o = run_grover ~only:[ "la" ] src in
  Alcotest.(check int) "no barrier removed" 0 o.G.Grover.barriers_removed;
  let barriers =
    Ssa.fold_instrs
      (fun n i -> match i.Ssa.op with Ssa.Barrier _ -> n + 1 | _ -> n)
      0 fn
  in
  Alcotest.(check int) "barrier still present" 1 barriers

let test_mixed_fence_narrowed () =
  let src =
    staging_kernel
      {|lm[lx] = in[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);
        float v = lm[15 - lx];|}
  in
  let fn, _ = run_grover src in
  let global_barriers =
    Ssa.fold_instrs
      (fun n i ->
        match i.Ssa.op with
        | Ssa.Barrier { blocal = false; bglobal = true } -> n + 1
        | Ssa.Barrier _ -> Alcotest.fail "local fence should be gone"
        | _ -> n)
      0 fn
  in
  Alcotest.(check int) "global fence survives" 1 global_barriers

(* -- Expression trees --------------------------------------------------------- *)

let test_expr_tree_leaves () =
  let fn =
    compile1
      {|__kernel void k(__global float *out, __global const float *in, int W) {
          int lx = get_local_id(0);
          out[get_global_id(0)] = in[lx * W + 3];
        }|}
  in
  let gl =
    Ssa.fold_instrs
      (fun acc i ->
        match i.Ssa.op with
        | Ssa.Load { ptr = Ssa.Arg { a_name = "in"; _ }; index } -> Some index
        | _ -> acc)
      None fn
  in
  match gl with
  | None -> Alcotest.fail "no global load"
  | Some index ->
      let tree = G.Expr_tree.build index in
      let leaves = G.Expr_tree.leaves tree in
      (* lx (call), W (arg), 3 (const): all paper leaf kinds. *)
      Alcotest.(check int) "three leaves" 3 (List.length leaves);
      List.iter
        (fun (n : G.Expr_tree.node) ->
          Alcotest.(check bool) "is a leaf kind" true
            (G.Expr_tree.is_leaf_value n.G.Expr_tree.value))
        leaves;
      let marked = G.Expr_tree.mark tree ~p:G.Atom.is_lid in
      Alcotest.(check bool) "lx marked" true marked;
      Alcotest.(check bool) "root needs update" true tree.G.Expr_tree.state

let test_expr_tree_render () =
  let fn = compile1 "__kernel void k(__global float *o, int W) { o[2 * W + 1] = 0.0f; }" in
  let idx =
    Ssa.fold_instrs
      (fun acc i ->
        match i.Ssa.op with Ssa.Store { index; _ } -> Some index | _ -> acc)
      None fn
  in
  match idx with
  | Some v ->
      let s = G.Expr_tree.render_value v in
      Alcotest.(check bool) ("mentions W: " ^ s) true
        (String.length s >= 1)
  | None -> Alcotest.fail "no store"

(* -- Dimension splitting -------------------------------------------------------- *)

let atom_of_int_phi = ()

let test_strides () =
  Alcotest.(check (list int)) "2d" [ 16; 1 ] (G.Index.strides [ 8; 16 ]);
  Alcotest.(check (list int)) "3d" [ 12; 4; 1 ] (G.Index.strides [ 2; 3; 4 ]);
  Alcotest.(check (list int)) "1d" [ 1 ] (G.Index.strides [ 7 ])

let test_split_dims_roundtrip () =
  ignore atom_of_int_phi;
  (* A purely constant flat index decomposes and recombines exactly. *)
  let dims = [ 4; 8 ] in
  for flat = 0 to 31 do
    let f = Form.of_int flat in
    match G.Index.split_dims ~dims f with
    | Some parts ->
        let back = G.Index.flatten ~dims parts in
        Alcotest.(check bool)
          (Printf.sprintf "flat %d roundtrips" flat)
          true (Form.equal back f);
        (match List.map Form.to_const parts with
        | [ Some hi; Some lo ] ->
            Alcotest.(check (option int)) "hi" (Some (flat / 8)) (Q.to_int hi);
            Alcotest.(check (option int)) "lo" (Some (flat mod 8)) (Q.to_int lo)
        | _ -> Alcotest.fail "expected constant parts")
    | None -> Alcotest.fail "constant split must succeed"
  done

let prop_split_flatten =
  QCheck.Test.make ~name:"split_dims inverts flatten" ~count:300
    QCheck.(
      pair
        (pair (int_range 1 8) (int_range 1 16))
        (pair (int_range 0 7) (int_range 0 15)))
    (fun ((d0, d1), (i0, i1)) ->
      QCheck.assume (i0 < d0 && i1 < d1);
      let dims = [ d0; d1 ] in
      let flat = Form.of_int ((i0 * d1) + i1) in
      match G.Index.split_dims ~dims flat with
      | Some parts -> Form.equal (G.Index.flatten ~dims parts) flat
      | None -> false)

(* -- Solve ------------------------------------------------------------------------ *)

let test_solve_failure_messages () =
  List.iter
    (fun f -> Alcotest.(check bool) "non-empty" true (G.Solve.failure_message f <> ""))
    [ G.Solve.Not_affine; G.Solve.Singular; G.Solve.Inconsistent_dim 1;
      G.Solve.Non_integral ]

(* -- Property: random staging kernels are transformed correctly ------------------- *)

(* Generate kernels of the form:

     lm[a*lx + b*ly + c][d*lx + e*ly + f] = in[GL(lx, ly)];
     barrier; v = lm[p][q]; out[gid] = v;

   with an invertible integer matrix [[a b];[d e]] whose image stays in
   bounds, and check that Grover transforms them and that execution matches
   the untransformed kernel bit for bit. *)
let gen_staging_case =
  let open QCheck.Gen in
  (* Invertible 2x2 maps over a 8x8 local tile with wg size 8x8 that keep
     indexes in [0, 8): permutation-with-flip style maps. *)
  let* swap = bool in
  let* flip_x = bool in
  let* flip_y = bool in
  let* ll_swap = bool in
  return (swap, flip_x, flip_y, ll_swap)

let render_staging (swap, flip_x, flip_y, ll_swap) =
  let x_expr = if flip_x then "(7 - lx)" else "lx" in
  let y_expr = if flip_y then "(7 - ly)" else "ly" in
  let row, col = if swap then (x_expr, y_expr) else (y_expr, x_expr) in
  let ll_row, ll_col = if ll_swap then ("lx", "ly") else ("ly", "lx") in
  Printf.sprintf
    {|__kernel void k(__global float *out, __global const float *in, int W) {
        __local float lm[8][8];
        int lx = get_local_id(0);
        int ly = get_local_id(1);
        int wx = get_group_id(0);
        int wy = get_group_id(1);
        lm[%s][%s] = in[(wy * 8 + ly) * W + wx * 8 + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        float v = lm[%s][%s];
        out[get_global_id(1) * W + get_global_id(0)] = v;
      }|}
    row col ll_row ll_col

let exec_staging fn =
  let open Grover_ocl in
  let compiled = Interp.prepare fn in
  let mem = Memory.create () in
  let n = 16 in
  let out = Memory.alloc mem Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Ssa.F32 (n * n) in
  Memory.fill_floats inp (fun i -> float_of_int i +. 0.5);
  ignore
    (Runtime.launch compiled
       ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
       ~args:[ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n ]
       ~mem ());
  Memory.to_float_array out

let prop_random_staging_equivalent =
  QCheck.Test.make ~name:"random staging kernels transform correctly" ~count:16
    (QCheck.make
       ~print:(fun c -> render_staging c)
       gen_staging_case)
    (fun params ->
      let src = render_staging params in
      let reference =
        let fn = compile1 src in
        exec_staging fn
      in
      let fn = compile1 src in
      let o = G.Grover.run fn in
      if o.G.Grover.transformed <> [ "lm" ] then false
      else begin
        let transformed = exec_staging fn in
        reference = transformed
      end)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "grover-candidates",
      [ Alcotest.test_case "found" `Quick test_candidates_found;
        Alcotest.test_case "scratch usage rejected" `Quick test_scratch_usage_rejected;
        Alcotest.test_case "reduction rejected" `Quick test_reduction_rejected;
        Alcotest.test_case "non-invertible rejected" `Quick test_non_invertible_rejected;
        Alcotest.test_case "data-dependent index rejected" `Quick
          test_data_dependent_index_rejected;
        Alcotest.test_case "only filter" `Quick test_only_filter;
        Alcotest.test_case "barriers kept" `Quick test_barriers_kept_when_local_remains;
        Alcotest.test_case "mixed fence narrowed" `Quick test_mixed_fence_narrowed ] );
    ( "grover-trees",
      [ Alcotest.test_case "leaves" `Quick test_expr_tree_leaves;
        Alcotest.test_case "render" `Quick test_expr_tree_render ] );
    ( "grover-index",
      [ Alcotest.test_case "strides" `Quick test_strides;
        Alcotest.test_case "split roundtrip" `Quick test_split_dims_roundtrip ] );
    qsuite "grover-index-props" [ prop_split_flatten ];
    ( "grover-solve",
      [ Alcotest.test_case "failure messages" `Quick test_solve_failure_messages ] );
    qsuite "grover-equivalence-props" [ prop_random_staging_equivalent ] ]
