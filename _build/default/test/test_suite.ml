(* Suite-level tests: every benchmark must (a) compile, (b) be transformed
   by Grover, (c) produce host-reference-correct results both with local
   memory and after Grover disabled it, and (d) lose all local traffic when
   every candidate is removed. *)

open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit

let scale = 4 (* small datasets: tests must stay fast *)

let check_valid id = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" id m

let test_case_with_lm (case : Kit.case) () =
  let run, _ = H.run_version case H.With_lm ~scale ~platform:None in
  check_valid (case.Kit.id ^ " (with lm)") run.H.valid;
  Alcotest.(check bool)
    (case.Kit.id ^ " uses local memory")
    true
    (run.H.totals.Trace.t_local_accesses > 0)

let test_case_without_lm (case : Kit.case) () =
  let run, outcome = H.run_version case H.Without_lm ~scale ~platform:None in
  check_valid (case.Kit.id ^ " (grover)") run.H.valid;
  match outcome with
  | Some o ->
      Alcotest.(check bool)
        (case.Kit.id ^ " transformed something")
        true
        (o.Grover_core.Grover.transformed <> [])
  | None -> Alcotest.fail "missing outcome"

let test_full_removal_drops_local (case : Kit.case) () =
  (* When no candidate restriction applies, all local traffic must vanish. *)
  if case.Kit.remove = None then begin
    let run, _ = H.run_version case H.Without_lm ~scale ~platform:None in
    Alcotest.(check int)
      (case.Kit.id ^ " local accesses")
      0 run.H.totals.Trace.t_local_accesses;
    Alcotest.(check int) (case.Kit.id ^ " barriers") 0 run.H.totals.Trace.t_barriers
  end

(* Round trip: IR -> emitted OpenCL C -> front-end -> execution must still
   validate against the host reference, for both kernel versions. This
   exercises the structurizer (loops, diamonds, phi destruction) on every
   benchmark. *)
let test_emit_roundtrip (case : Kit.case) (v : H.version) () =
  let fn, _ = H.compile_version case v in
  let c_src = Grover_ir.Emit_c.kernel_to_c fn in
  let fn2 =
    match Grover_ir.Lower.compile c_src with
    | [ f ] -> f
    | _ -> Alcotest.fail "emitted source must contain one kernel"
  in
  Grover_passes.Pipeline.normalize fn2;
  let w = case.Kit.mk ~scale in
  let compiled = Grover_ocl.Interp.prepare fn2 in
  ignore
    (Runtime.launch compiled
       ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
       ~args:w.Kit.args ~mem:w.Kit.mem ());
  match w.Kit.check () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s round-trip: %s" case.Kit.id m

let per_case_tests =
  List.concat_map
    (fun (case : Kit.case) ->
      [ Alcotest.test_case (case.Kit.id ^ " with-lm valid") `Quick
          (test_case_with_lm case);
        Alcotest.test_case (case.Kit.id ^ " grover valid") `Quick
          (test_case_without_lm case);
        Alcotest.test_case (case.Kit.id ^ " no local traffic") `Quick
          (test_full_removal_drops_local case);
        Alcotest.test_case (case.Kit.id ^ " C round-trip (with lm)") `Quick
          (test_emit_roundtrip case H.With_lm);
        Alcotest.test_case (case.Kit.id ^ " C round-trip (grover)") `Quick
          (test_emit_roundtrip case H.Without_lm) ])
    Grover_suite.Suite.all

(* NVD-MM partial removals must keep the *other* matrix in local memory. *)
let test_partial_removal_keeps_other () =
  let case = Grover_suite.Nvd_mm.case_a in
  let run, _ = H.run_version case H.Without_lm ~scale ~platform:None in
  check_valid "NVD-MM-A" run.H.valid;
  Alcotest.(check bool) "Bs still uses local memory" true
    (run.H.totals.Trace.t_local_accesses > 0);
  Alcotest.(check bool) "barriers still present" true
    (run.H.totals.Trace.t_barriers > 0)

let test_table3_indexes () =
  (* The nGL abstractions of paper Table III, on the kernels where the
     index is characteristic. *)
  let report_of (case : Kit.case) =
    let fn, outcome = H.compile_version case H.Without_lm in
    ignore fn;
    match outcome with
    | Some o -> o.Grover_core.Grover.reports
    | None -> Alcotest.fail "no outcome"
  in
  (* NVD-MT: solution must swap lx and ly. *)
  (match report_of Grover_suite.Nvd_mt.case with
  | [ e ] ->
      Alcotest.(check (list (pair string string)))
        "NVD-MT solution"
        [ ("lx'", "ly"); ("ly'", "lx") ]
        e.Grover_core.Report.solution
  | _ -> Alcotest.fail "NVD-MT: expected one report");
  (* AMD-SS: the solution maps lx to the loop variable. *)
  (match report_of Grover_suite.Amd_ss.case with
  | [ e ] -> (
      match e.Grover_core.Report.solution with
      | [ ("lx'", v) ] ->
          (* The loop counter is a phi; its display name comes from the
             per-kernel pool (i, j, k, ...). *)
          Alcotest.(check bool)
            (Printf.sprintf "AMD-SS solution %S is a loop phi" v)
            true
            (List.mem v [ "i"; "j"; "k" ])
      | s ->
          Alcotest.failf "AMD-SS: unexpected solution %s"
            (String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) s)))
  | _ -> Alcotest.fail "AMD-SS: expected one report");
  (* ROD-SC: nGL must contain the strided index (solution * stride). *)
  match report_of Grover_suite.Rod_sc.case with
  | [ e ] ->
      let ngl = e.Grover_core.Report.ngl_index in
      let contains s sub =
        let n = String.length sub in
        let found = ref false in
        for i = 0 to String.length s - n do
          if String.sub s i n = sub then found := true
        done;
        !found
      in
      Alcotest.(check bool)
        (Printf.sprintf "ROD-SC nGL %S mentions stride" ngl)
        true
        (contains ngl "stride")
  | _ -> Alcotest.fail "ROD-SC: expected one report"

let suite =
  [ ("benchmarks", per_case_tests);
    ( "benchmark-details",
      [ Alcotest.test_case "partial removal keeps other matrix" `Quick
          test_partial_removal_keeps_other;
        Alcotest.test_case "table III indexes" `Quick test_table3_indexes ] ) ]
