(* Front-end tests: lexer, preprocessor, parser, typing rules. *)

open Grover_clc

let lex ?defines src =
  List.map fst (Lexer.tokenize ?defines src)
  |> List.filter (fun t -> t <> Token.Eof)

let toks = Alcotest.testable Token.pp Token.equal

(* -- Lexer ----------------------------------------------------------------- *)

let test_lex_basic () =
  Alcotest.(check (list toks))
    "tokens"
    [ Token.Kw "int"; Token.Ident "x"; Token.Punct "="; Token.Int_lit 42;
      Token.Punct ";" ]
    (lex "int x = 42;")

let test_lex_canonical_keywords () =
  Alcotest.(check (list toks))
    "__kernel = kernel"
    [ Token.Kw "kernel"; Token.Kw "global"; Token.Kw "local" ]
    (lex "__kernel __global local")

let test_lex_floats () =
  Alcotest.(check (list toks))
    "floats"
    [ Token.Float_lit 1.5; Token.Float_lit 2.0; Token.Float_lit 0.5;
      Token.Float_lit 1e-3 ]
    (lex "1.5 2.0f 0.5f 1e-3f")

let test_lex_float_vs_member () =
  (* 'a[i].x' must not glue '. x' into a float. *)
  Alcotest.(check (list toks))
    "member access"
    [ Token.Ident "a"; Token.Punct "["; Token.Ident "i"; Token.Punct "]";
      Token.Punct "."; Token.Ident "x" ]
    (lex "a[i].x")

let test_lex_hex () =
  Alcotest.(check (list toks)) "hex" [ Token.Int_lit 255 ] (lex "0xFF")

let test_lex_operators () =
  Alcotest.(check (list toks))
    "multi-char ops"
    [ Token.Punct "<<="; Token.Punct ">>"; Token.Punct "<="; Token.Punct "==";
      Token.Punct "&&"; Token.Punct "++" ]
    (lex "<<= >> <= == && ++")

let test_lex_comments () =
  Alcotest.(check (list toks))
    "comments stripped"
    [ Token.Int_lit 1; Token.Int_lit 2 ]
    (lex "1 /* mid /* not nested */ // line\n 2 // trailing")

let test_macro_define () =
  Alcotest.(check (list toks))
    "#define substitution"
    [ Token.Int_lit 16; Token.Punct "*"; Token.Int_lit 16 ]
    (lex "#define S 16\nS * S")

let test_macro_nested () =
  Alcotest.(check (list toks))
    "nested macros"
    [ Token.Punct "("; Token.Int_lit 4; Token.Punct "+"; Token.Int_lit 1;
      Token.Punct ")" ]
    (lex "#define A 4\n#define B (A + 1)\nB")

let test_macro_external_defines () =
  Alcotest.(check (list toks))
    "-D style defines"
    [ Token.Int_lit 32 ]
    (lex ~defines:[ ("WIDTH", "32") ] "WIDTH")

let test_macro_undef () =
  Alcotest.(check (list toks))
    "#undef"
    [ Token.Int_lit 8; Token.Ident "S" ]
    (lex "#define S 8\nS\n#undef S\nS")

let test_lex_error_reporting () =
  match Lexer.tokenize "int @ x" with
  | exception Loc.Error ({ line = 1; col = 5 }, _) -> ()
  | exception Loc.Error (l, m) ->
      Alcotest.failf "wrong location %a for %s" Loc.pp l m
  | _ -> Alcotest.fail "expected a lexer error"

(* -- Parser ----------------------------------------------------------------- *)

let parse_kernel src =
  match (Parser.parse src).Ast.kernels with
  | [ k ] -> k
  | ks -> Alcotest.failf "expected 1 kernel, got %d" (List.length ks)

let mt_source =
  {|
#define S 16
__kernel void transpose(__global float *out, __global const float *in,
                        int W, int H) {
  __local float lm[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float val = lm[lx][ly];
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  out[gy * H + gx] = val;
}
|}

let test_parse_mt () =
  let k = parse_kernel mt_source in
  Alcotest.(check string) "name" "transpose" k.Ast.k_name;
  Alcotest.(check int) "params" 4 (List.length k.Ast.k_params);
  (* The local array declaration must carry the Local space and S*S size. *)
  let found = ref false in
  List.iter
    (fun s ->
      match s.Ast.s_desc with
      | Ast.Sdecl d when d.Ast.d_name = "lm" ->
          found := true;
          Alcotest.(check bool) "local space" true (d.Ast.d_space = Ast.Local);
          Alcotest.(check int) "total elems" 256 (Sema.array_length d.Ast.d_ty)
      | _ -> ())
    k.Ast.k_body;
  Alcotest.(check bool) "lm declared" true !found

let test_parse_precedence () =
  let k = parse_kernel
      "__kernel void f(__global int *a) { a[0] = 1 + 2 * 3; }"
  in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sexpr { desc = Ast.Assign (_, rhs); _ }; _ } ] -> (
      match rhs.Ast.desc with
      | Ast.Binop (Ast.Add, { desc = Ast.Int_lit 1; _ },
                   { desc = Ast.Binop (Ast.Mul, _, _); _ }) ->
          ()
      | _ -> Alcotest.fail "precedence wrong: expected 1 + (2 * 3)")
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_vector_literal () =
  let k =
    parse_kernel
      "__kernel void f(__global float4 *a) { a[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f); }"
  in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sexpr { desc = Ast.Assign (_, rhs); _ }; _ } ] -> (
      match rhs.Ast.desc with
      | Ast.Vec_lit (Ast.Vector (Ast.Float, 4), args) ->
          Alcotest.(check int) "4 components" 4 (List.length args)
      | _ -> Alcotest.fail "expected a float4 literal")
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_cast_vs_paren () =
  let k = parse_kernel "__kernel void f(__global int *a, float x) { a[0] = (int)x; }" in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sexpr { desc = Ast.Assign (_, rhs); _ }; _ } ] -> (
      match rhs.Ast.desc with
      | Ast.Cast (Ast.Scalar Ast.Int, _) -> ()
      | _ -> Alcotest.fail "expected a cast")
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_for_loop () =
  let k =
    parse_kernel
      "__kernel void f(__global int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }"
  in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sfor (Some _, Some _, Some _, _); _ } ] -> ()
  | _ -> Alcotest.fail "expected a for loop with all three clauses"

let test_parse_compound_assign () =
  let k = parse_kernel "__kernel void f(__global int *a) { a[0] += 2; }" in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sexpr { desc = Ast.Assign (_, rhs); _ }; _ } ] -> (
      match rhs.Ast.desc with
      | Ast.Binop (Ast.Add, _, _) -> ()
      | _ -> Alcotest.fail "+= must desugar to assign of add")
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_multi_declarator () =
  let k = parse_kernel "__kernel void f() { int i = 1, j = 2; }" in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sblock [ d1; d2 ]; _ } ] ->
      (match (d1.Ast.s_desc, d2.Ast.s_desc) with
      | Ast.Sdecl a, Ast.Sdecl b ->
          Alcotest.(check string) "first" "i" a.Ast.d_name;
          Alcotest.(check string) "second" "j" b.Ast.d_name
      | _ -> Alcotest.fail "expected two declarations")
  | _ -> Alcotest.fail "expected a block of two declarations"

let test_parse_error_location () =
  match Parser.parse "__kernel void f( { }" with
  | exception Loc.Error (_, msg) ->
      Alcotest.(check bool) "message mentions expectation" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_ternary () =
  let k = parse_kernel "__kernel void f(__global int *a, int n) { a[0] = n > 0 ? n : -n; }" in
  match k.Ast.k_body with
  | [ { Ast.s_desc = Ast.Sexpr { desc = Ast.Assign (_, { desc = Ast.Cond _; _ }); _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected a conditional expression"

(* -- Sema typing rules ------------------------------------------------------ *)

let test_sema_conversions () =
  let loc = Loc.dummy in
  Alcotest.(check string) "int+float"
    "float"
    (Ast.ty_name (Sema.usual_conversions loc (Ast.Scalar Ast.Int) (Ast.Scalar Ast.Float)));
  Alcotest.(check string) "int+uint"
    "uint"
    (Ast.ty_name (Sema.usual_conversions loc (Ast.Scalar Ast.Int) (Ast.Scalar Ast.UInt)));
  Alcotest.(check string) "float4+float"
    "float4"
    (Ast.ty_name
       (Sema.usual_conversions loc (Ast.Vector (Ast.Float, 4)) (Ast.Scalar Ast.Float)))

let test_sema_sizeof () =
  Alcotest.(check int) "float" 4 (Sema.sizeof (Ast.Scalar Ast.Float));
  Alcotest.(check int) "float4" 16 (Sema.sizeof (Ast.Vector (Ast.Float, 4)));
  Alcotest.(check int) "float3 pads to 4" 16 (Sema.sizeof (Ast.Vector (Ast.Float, 3)));
  Alcotest.(check int) "int[4][4]" 64
    (Sema.sizeof (Ast.Array (Ast.Array (Ast.Scalar Ast.Int, 4), 4)))

let test_sema_components () =
  Alcotest.(check int) "x" 0 (Sema.component_index Loc.dummy ~width:4 "x");
  Alcotest.(check int) "w" 3 (Sema.component_index Loc.dummy ~width:4 "w");
  Alcotest.(check int) "s2" 2 (Sema.component_index Loc.dummy ~width:4 "s2");
  (match Sema.component_index Loc.dummy ~width:2 "z" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail ".z out of range for width 2")

let test_sema_builtins () =
  let loc = Loc.dummy in
  Alcotest.(check string) "get_local_id" "int"
    (Ast.ty_name (Sema.builtin_result loc "get_local_id" [ Ast.Scalar Ast.Int ]));
  Alcotest.(check string) "sqrt float" "float"
    (Ast.ty_name (Sema.builtin_result loc "sqrt" [ Ast.Scalar Ast.Float ]));
  Alcotest.(check string) "dot" "float"
    (Ast.ty_name
       (Sema.builtin_result loc "dot"
          [ Ast.Vector (Ast.Float, 4); Ast.Vector (Ast.Float, 4) ]));
  match Sema.builtin_result loc "frobnicate" [] with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "unknown builtin must be rejected"

let suite =
  [ ( "lexer",
      [ Alcotest.test_case "basic" `Quick test_lex_basic;
        Alcotest.test_case "keyword canonicalisation" `Quick test_lex_canonical_keywords;
        Alcotest.test_case "floats" `Quick test_lex_floats;
        Alcotest.test_case "float vs member" `Quick test_lex_float_vs_member;
        Alcotest.test_case "hex" `Quick test_lex_hex;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "error location" `Quick test_lex_error_reporting ] );
    ( "preprocessor",
      [ Alcotest.test_case "define" `Quick test_macro_define;
        Alcotest.test_case "nested" `Quick test_macro_nested;
        Alcotest.test_case "external defines" `Quick test_macro_external_defines;
        Alcotest.test_case "undef" `Quick test_macro_undef ] );
    ( "parser",
      [ Alcotest.test_case "matrix transpose" `Quick test_parse_mt;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "vector literal" `Quick test_parse_vector_literal;
        Alcotest.test_case "cast vs paren" `Quick test_parse_cast_vs_paren;
        Alcotest.test_case "for loop" `Quick test_parse_for_loop;
        Alcotest.test_case "compound assignment" `Quick test_parse_compound_assign;
        Alcotest.test_case "multi declarator" `Quick test_parse_multi_declarator;
        Alcotest.test_case "ternary" `Quick test_parse_ternary;
        Alcotest.test_case "error location" `Quick test_parse_error_location ] );
    ( "sema",
      [ Alcotest.test_case "usual conversions" `Quick test_sema_conversions;
        Alcotest.test_case "sizeof" `Quick test_sema_sizeof;
        Alcotest.test_case "vector components" `Quick test_sema_components;
        Alcotest.test_case "builtin results" `Quick test_sema_builtins ] ) ]
