(* Tests for the OpenCL C emitter, the post-dominator analysis behind it,
   and the analytical performance predictor. *)

open Grover_ir
module Pass = Grover_passes

let compile1 src =
  match Lower.compile src with
  | [ fn ] ->
      Pass.Pipeline.normalize fn;
      fn
  | _ -> Alcotest.fail "expected one kernel"

(* -- Post-dominators ----------------------------------------------------------- *)

let test_postdom_diamond () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { if (n > 0) a[0] = 1; else a[1] = 2; a[2] = 3; }"
  in
  let pdom = Postdom.compute fn in
  let entry = Ssa.entry fn in
  match Postdom.immediate pdom entry with
  | Some join ->
      (* The join must be the block containing the a[2] store. *)
      let has_final_store =
        List.exists
          (fun i ->
            match i.Ssa.op with
            | Ssa.Store { index = Ssa.Cint (_, 2); _ } -> true
            | _ -> false)
          join.Ssa.instrs
      in
      Alcotest.(check bool) "join holds the final store" true has_final_store
  | None -> Alcotest.fail "diamond entry must have a post-dominator"

let test_postdom_straightline () =
  let fn = compile1 "__kernel void f(__global int *a) { a[0] = 1; }" in
  let pdom = Postdom.compute fn in
  Alcotest.(check bool) "single block postdominated by exit" true
    (Postdom.immediate pdom (Ssa.entry fn) = None)

(* -- Emitter -------------------------------------------------------------------- *)

let roundtrip_outputs src ~launch ~read =
  let direct =
    let fn = compile1 src in
    let c = Grover_ocl.Interp.prepare fn in
    read (launch c)
  in
  let via_c =
    let fn = compile1 src in
    let emitted = Emit_c.kernel_to_c fn in
    let fn2 =
      match Lower.compile emitted with
      | [ f ] ->
          Pass.Pipeline.normalize f;
          f
      | _ -> Alcotest.fail "one kernel expected in emitted source"
    in
    let c = Grover_ocl.Interp.prepare fn2 in
    read (launch c)
  in
  (direct, via_c)

let int_kernel_roundtrip name src =
  let open Grover_ocl in
  let launch c =
    let mem = Memory.create () in
    let out = Memory.alloc mem Ssa.I32 32 in
    ignore
      (Runtime.launch c
         ~cfg:{ Runtime.global = (32, 1, 1); local = (8, 1, 1); queues = 1 }
         ~args:[ Runtime.Abuf out ] ~mem ());
    out
  in
  let d, v = roundtrip_outputs src ~launch ~read:Memory.to_int_array in
  Alcotest.(check bool) (name ^ " identical") true (d = v)

let test_emit_loop_roundtrip () =
  int_kernel_roundtrip "loop"
    "__kernel void f(__global int *out) { int s = 0; for (int i = 0; i <= get_global_id(0); i++) s += i * i; out[get_global_id(0)] = s; }"

let test_emit_nested_if_roundtrip () =
  int_kernel_roundtrip "nested if"
    {|__kernel void f(__global int *out) {
        int g = get_global_id(0);
        int r;
        if (g % 2 == 0) {
          if (g % 4 == 0) r = 4; else r = 2;
        } else {
          r = 1;
        }
        out[g] = r;
      }|}

let test_emit_nested_loops_roundtrip () =
  int_kernel_roundtrip "nested loops"
    {|__kernel void f(__global int *out) {
        int g = get_global_id(0);
        int acc = 0;
        for (int i = 0; i < 4; i++) {
          for (int j = 0; j < i; j++) {
            acc += i * j + g;
          }
        }
        out[g] = acc;
      }|}

let test_emit_while_roundtrip () =
  int_kernel_roundtrip "while"
    {|__kernel void f(__global int *out) {
        int g = get_global_id(0);
        int x = g + 40;
        while (x > 5) { x = x / 2; }
        out[g] = x;
      }|}

let test_emit_break_continue_roundtrip () =
  int_kernel_roundtrip "break/continue"
    {|__kernel void f(__global int *out) {
        int g = get_global_id(0);
        int acc = 0;
        for (int i = 0; i < 32; i++) {
          if (i % 3 == 0) continue;
          if (i > g) break;
          acc += i;
        }
        out[g] = acc;
      }|}

let test_emit_vector_roundtrip () =
  let open Grover_ocl in
  let src =
    {|__kernel void f(__global float4 *out, __global const float4 *a) {
        int g = get_global_id(0);
        float4 v = a[g];
        v.y = v.x + v.w;
        out[g] = v * (float4)(2.0f, 2.0f, 2.0f, 2.0f);
      }|}
  in
  let launch c =
    let mem = Memory.create () in
    let vec4 = Ssa.Vec (Ssa.F32, 4) in
    let out = Memory.alloc mem vec4 8 in
    let a = Memory.alloc mem vec4 8 in
    Memory.fill_floats a (fun i -> float_of_int i *. 0.5);
    ignore
      (Runtime.launch c
         ~cfg:{ Runtime.global = (8, 1, 1); local = (4, 1, 1); queues = 1 }
         ~args:[ Runtime.Abuf out; Runtime.Abuf a ] ~mem ());
    out
  in
  let d, v = roundtrip_outputs src ~launch ~read:Memory.to_float_array in
  Alcotest.(check bool) "vector kernel identical" true (d = v)

let test_emit_contains_local_decl () =
  let fn =
    compile1
      {|__kernel void f(__global float *out, __global const float *in) {
          __local float tile[64];
          tile[get_local_id(0)] = in[get_global_id(0)];
          barrier(CLK_LOCAL_MEM_FENCE);
          out[get_global_id(0)] = tile[63 - get_local_id(0)];
        }|}
  in
  let c = Emit_c.kernel_to_c fn in
  let contains sub =
    let n = String.length sub in
    let found = ref false in
    for i = 0 to String.length c - n do
      if String.sub c i n = sub then found := true
    done;
    !found
  in
  Alcotest.(check bool) "__local declaration" true (contains "__local float");
  Alcotest.(check bool) "barrier" true (contains "barrier(CLK_LOCAL_MEM_FENCE)");
  Alcotest.(check bool) "kernel qualifier" true (contains "__kernel void f(")

(* Property: random structured kernels survive the C round trip. *)
let gen_struct_src =
  let open QCheck.Gen in
  let* a = int_range 1 5 in
  let* b = int_range 1 7 in
  let* use_if = bool in
  let* use_loop = bool in
  let body =
    (if use_loop then
       Printf.sprintf "for (int i = 0; i < %d; i++) { acc += i * %d; }" a b
     else Printf.sprintf "acc += %d;" (a * b))
    ^
    if use_if then
      Printf.sprintf " if (g %% %d == 0) { acc = acc * 2; } else { acc = acc + %d; }" (a + 1) b
    else ""
  in
  return
    (Printf.sprintf
       "__kernel void f(__global int *out) { int g = get_global_id(0); int acc = g; %s out[g] = acc; }"
       body)

let prop_emit_roundtrip =
  QCheck.Test.make ~name:"random structured kernels round-trip through C"
    ~count:40
    (QCheck.make ~print:(fun s -> s) gen_struct_src)
    (fun src ->
      let open Grover_ocl in
      let launch c =
        let mem = Memory.create () in
        let out = Memory.alloc mem Ssa.I32 16 in
        ignore
          (Runtime.launch c
             ~cfg:{ Runtime.global = (16, 1, 1); local = (4, 1, 1); queues = 1 }
             ~args:[ Runtime.Abuf out ] ~mem ());
        out
      in
      let d, v = roundtrip_outputs src ~launch ~read:Memory.to_int_array in
      d = v)

(* -- Predictor -------------------------------------------------------------------- *)

let test_predictor_positive_and_monotone () =
  let mk_totals ~ops ~barriers ~groups =
    let t = Grover_ocl.Trace.empty_totals () in
    t.Grover_ocl.Trace.t_int_ops <- ops;
    t.Grover_ocl.Trace.t_barriers <- barriers;
    t.Grover_ocl.Trace.t_groups <- groups;
    t.Grover_ocl.Trace.t_loads <- ops / 2;
    t
  in
  let plat = Grover_memsim.Platform.snb in
  let p ops barriers =
    Grover_memsim.Predict.predict plat
      {
        Grover_memsim.Predict.totals = mk_totals ~ops ~barriers ~groups:4;
        wg_size = 64;
        vectorized = false;
      }
  in
  Alcotest.(check bool) "positive" true (p 1000 0 > 0.0);
  Alcotest.(check bool) "more work costs more" true (p 2000 0 > p 1000 0);
  Alcotest.(check bool) "barriers cost" true (p 1000 256 > p 1000 0)

let test_predictor_rejects_gpu () =
  match
    Grover_memsim.Predict.predict Grover_memsim.Platform.fermi
      {
        Grover_memsim.Predict.totals = Grover_ocl.Trace.empty_totals ();
        wg_size = 64;
        vectorized = false;
      }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "GPU platforms must be rejected"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "postdom",
      [ Alcotest.test_case "diamond join" `Quick test_postdom_diamond;
        Alcotest.test_case "straight line" `Quick test_postdom_straightline ] );
    ( "emit-c",
      [ Alcotest.test_case "loop" `Quick test_emit_loop_roundtrip;
        Alcotest.test_case "nested if" `Quick test_emit_nested_if_roundtrip;
        Alcotest.test_case "nested loops" `Quick test_emit_nested_loops_roundtrip;
        Alcotest.test_case "while" `Quick test_emit_while_roundtrip;
        Alcotest.test_case "break/continue" `Quick test_emit_break_continue_roundtrip;
        Alcotest.test_case "vector kernel" `Quick test_emit_vector_roundtrip;
        Alcotest.test_case "local declaration" `Quick test_emit_contains_local_decl ] );
    qsuite "emit-c-props" [ prop_emit_roundtrip ];
    ( "predictor",
      [ Alcotest.test_case "positive and monotone" `Quick
          test_predictor_positive_and_monotone;
        Alcotest.test_case "rejects GPU platforms" `Quick test_predictor_rejects_gpu ] ) ]
