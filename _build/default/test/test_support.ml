(* Unit and property tests for the exact-arithmetic substrate. *)

module Q = Grover_support.Rational

module Str_atom = struct
  type t = string

  let compare = String.compare
  let pp = Format.pp_print_string
end

module Aff = Grover_support.Affine.Make (Str_atom)

module Aff_space = struct
  type t = Aff.t

  let zero = Aff.zero
  let add = Aff.add
  let scale = Aff.scale
end

module Solver = Grover_support.Linsolve.Make (Aff_space)

let q a b = Q.make a b

let check_q = Alcotest.testable Q.pp Q.equal
let check_aff = Alcotest.testable Aff.pp Aff.equal

(* -- Rational unit tests -------------------------------------------------- *)

let test_q_normalisation () =
  Alcotest.check check_q "6/4 = 3/2" (q 3 2) (q 6 4);
  Alcotest.check check_q "-6/-4 = 3/2" (q 3 2) (q (-6) (-4));
  Alcotest.check check_q "6/-4 = -3/2" (q (-3) 2) (q 6 (-4));
  Alcotest.check check_q "0/7 = 0" Q.zero (q 0 7)

let test_q_arith () =
  Alcotest.check check_q "1/2 + 1/3" (q 5 6) (Q.add (q 1 2) (q 1 3));
  Alcotest.check check_q "1/2 - 1/3" (q 1 6) (Q.sub (q 1 2) (q 1 3));
  Alcotest.check check_q "2/3 * 3/4" (q 1 2) (Q.mul (q 2 3) (q 3 4));
  Alcotest.check check_q "(2/3) / (4/3)" (q 1 2) (Q.div (q 2 3) (q 4 3));
  Alcotest.check_raises "div by zero" Q.Division_by_zero_q (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_q_predicates () =
  Alcotest.(check bool) "is_integer 4/2" true (Q.is_integer (q 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Q.is_integer (q 1 2));
  Alcotest.(check (option int)) "to_int 6/3" (Some 2) (Q.to_int (q 6 3));
  Alcotest.(check (option int)) "to_int 1/2" None (Q.to_int (q 1 2));
  Alcotest.(check int) "sign -5" (-1) (Q.sign (q (-5) 1));
  Alcotest.(check int) "compare 1/3 1/2" (-1) (Q.compare (q 1 3) (q 1 2))

let test_q_overflow () =
  Alcotest.check_raises "mul overflow" Q.Overflow (fun () ->
      ignore (Q.mul (Q.of_int max_int) (Q.of_int 2)))

(* -- Rational property tests ---------------------------------------------- *)

let small_q =
  QCheck.map
    (fun (n, d) -> q n d)
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 1000))

let prop_add_comm =
  QCheck.Test.make ~name:"q add commutative" ~count:500
    QCheck.(pair small_q small_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"q mul associative" ~count:500
    QCheck.(triple small_q small_q small_q)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.mul b c)) (Q.mul (Q.mul a b) c))

let prop_add_inverse =
  QCheck.Test.make ~name:"q a + (-a) = 0" ~count:500 small_q (fun a ->
      Q.is_zero (Q.add a (Q.neg a)))

let prop_mul_inverse =
  QCheck.Test.make ~name:"q a * 1/a = 1" ~count:500 small_q (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.is_one (Q.mul a (Q.inv a)))

let prop_distributive =
  QCheck.Test.make ~name:"q distributivity" ~count:500
    QCheck.(triple small_q small_q small_q)
    (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

(* -- Affine forms ---------------------------------------------------------- *)

let x = Aff.atom "x"
let y = Aff.atom "y"

let test_affine_basics () =
  let f = Aff.add (Aff.scale (q 2 1) x) (Aff.of_int 3) in
  Alcotest.check check_q "coeff x" (q 2 1) (Aff.coeff "x" f);
  Alcotest.check check_q "coeff y" Q.zero (Aff.coeff "y" f);
  Alcotest.check check_q "const" (q 3 1) (Aff.constant f);
  Alcotest.(check (list string)) "atoms" [ "x" ] (Aff.atoms f)

let test_affine_cancellation () =
  let f = Aff.sub (Aff.add x y) (Aff.add x y) in
  Alcotest.(check bool) "x+y-(x+y) = 0" true (Aff.is_zero f)

let test_affine_subst () =
  (* f = 2x + y; substitute x := y + 1 gives 3y + 2. *)
  let f = Aff.add (Aff.scale (q 2 1) x) y in
  let g = Aff.subst "x" (Aff.add y Aff.one) f in
  Alcotest.check check_aff "subst result"
    (Aff.add (Aff.scale (q 3 1) y) (Aff.of_int 2))
    g

let test_affine_split () =
  let f = Aff.add (Aff.add (Aff.scale (q 2 1) x) y) (Aff.of_int 7) in
  let sel, rest = Aff.split ~on:(fun a -> a = "x") f in
  Alcotest.check check_aff "selected" (Aff.scale (q 2 1) x) sel;
  Alcotest.check check_aff "rest" (Aff.add y (Aff.of_int 7)) rest;
  Alcotest.check check_aff "halves sum back" f (Aff.add sel rest)

let test_affine_to_atom () =
  Alcotest.(check bool) "x is atom" true (Aff.to_atom x = Some "x");
  Alcotest.(check bool) "2x is not an atom" true
    (Aff.to_atom (Aff.scale (q 2 1) x) = None);
  Alcotest.(check bool) "x+1 is not an atom" true
    (Aff.to_atom (Aff.add x Aff.one) = None)

let test_affine_mul () =
  let cx = Aff.scale (q 3 1) x in
  (match Aff.mul cx (Aff.of_int 2) with
  | Some r -> Alcotest.check check_aff "3x * 2 = 6x" (Aff.scale (q 6 1) x) r
  | None -> Alcotest.fail "const multiplication should succeed");
  Alcotest.(check bool) "x * y rejected" true (Aff.mul x y = None)

let gen_affine =
  QCheck.map
    (fun (cx, cy, c) ->
      Aff.add
        (Aff.add (Aff.scale (Q.of_int cx) x) (Aff.scale (Q.of_int cy) y))
        (Aff.of_int c))
    QCheck.(triple (int_range (-20) 20) (int_range (-20) 20) (int_range (-20) 20))

let prop_affine_add_comm =
  QCheck.Test.make ~name:"affine add commutative" ~count:300
    QCheck.(pair gen_affine gen_affine)
    (fun (f, g) -> Aff.equal (Aff.add f g) (Aff.add g f))

let prop_affine_scale_distributes =
  QCheck.Test.make ~name:"affine scale distributes" ~count:300
    QCheck.(triple small_q gen_affine gen_affine)
    (fun (k, f, g) ->
      Aff.equal (Aff.scale k (Aff.add f g)) (Aff.add (Aff.scale k f) (Aff.scale k g)))

(* -- Linear solver --------------------------------------------------------- *)

let test_solve_identity () =
  (* x = a; y = b. *)
  let a = [| [| Q.one; Q.zero |]; [| Q.zero; Q.one |] |] in
  let b = [| Aff.atom "a"; Aff.atom "b" |] in
  match Solver.solve a b with
  | Solver.Unique sol ->
      Alcotest.check check_aff "x" (Aff.atom "a") sol.(0);
      Alcotest.check check_aff "y" (Aff.atom "b") sol.(1)
  | Solver.Singular -> Alcotest.fail "identity is not singular"

let test_solve_swap () =
  (* The Matrix Transpose system of the paper (Sec. III-C):
     lx' = y_LL, ly' = x_LL written as 0*lx + 1*ly = x_LL; 1*lx + 0*ly = y_LL. *)
  let a = [| [| Q.zero; Q.one |]; [| Q.one; Q.zero |] |] in
  let b = [| Aff.atom "x_LL"; Aff.atom "y_LL" |] in
  match Solver.solve a b with
  | Solver.Unique sol ->
      Alcotest.check check_aff "lx = y_LL" (Aff.atom "y_LL") sol.(0);
      Alcotest.check check_aff "ly = x_LL" (Aff.atom "x_LL") sol.(1)
  | Solver.Singular -> Alcotest.fail "swap is not singular"

let test_solve_singular () =
  let a = [| [| Q.one; Q.one |]; [| Q.of_int 2; Q.of_int 2 |] |] in
  let b = [| Aff.atom "p"; Aff.atom "q" |] in
  match Solver.solve a b with
  | Solver.Singular -> ()
  | Solver.Unique _ -> Alcotest.fail "rank-1 system must be singular"

let test_solve_3x3 () =
  (* x + 2y + z = p ; y - z = q ; 2x + z = r  (invertible). *)
  let a =
    [| [| Q.one; Q.of_int 2; Q.one |];
       [| Q.zero; Q.one; Q.of_int (-1) |];
       [| Q.of_int 2; Q.zero; Q.one |] |]
  in
  let b = [| Aff.atom "p"; Aff.atom "q"; Aff.atom "r" |] in
  match Solver.solve a b with
  | Solver.Unique sol ->
      (* Verify A * sol = b symbolically. *)
      let n = 3 in
      for i = 0 to n - 1 do
        let lhs = ref Aff.zero in
        for j = 0 to n - 1 do
          lhs := Aff.add !lhs (Aff.scale a.(i).(j) sol.(j))
        done;
        Alcotest.check check_aff (Printf.sprintf "row %d" i) b.(i) !lhs
      done
  | Solver.Singular -> Alcotest.fail "3x3 system is invertible"

(* Random invertible integer systems: generate random solution & matrix,
   compute b = A*x, solve, compare. *)
let prop_solver_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun (m, xs) ->
        Printf.sprintf "matrix %s solution %s"
          (String.concat ";"
             (Array.to_list (Array.map (fun r ->
                  String.concat "," (Array.to_list (Array.map string_of_int r))) m)))
          (String.concat "," (Array.to_list (Array.map string_of_int xs))))
      QCheck.Gen.(
        let* n = int_range 1 3 in
        let* m = array_size (return n) (array_size (return n) (int_range (-5) 5)) in
        let* xs = array_size (return n) (int_range (-9) 9) in
        return (m, xs))
  in
  QCheck.Test.make ~name:"solver recovers planted solution" ~count:300 gen
    (fun (m, xs) ->
      let n = Array.length m in
      let a = Array.map (Array.map Q.of_int) m in
      (* b_i = sum_j a_ij * x_j, as constant affine forms *)
      let b =
        Array.init n (fun i ->
            let acc = ref Aff.zero in
            for j = 0 to n - 1 do
              acc := Aff.add !acc (Aff.scale a.(i).(j) (Aff.of_int xs.(j)))
            done;
            !acc)
      in
      match Solver.solve a b with
      | Solver.Unique sol ->
          Array.for_all2
            (fun s x -> Aff.equal s (Aff.of_int x))
            sol xs
      | Solver.Singular ->
          (* Singular matrices are legitimately rejected; check the rank is
             actually deficient by a determinant test for n <= 3. *)
          let det =
            match n with
            | 1 -> m.(0).(0)
            | 2 -> (m.(0).(0) * m.(1).(1)) - (m.(0).(1) * m.(1).(0))
            | _ ->
                m.(0).(0) * ((m.(1).(1) * m.(2).(2)) - (m.(1).(2) * m.(2).(1)))
                - m.(0).(1) * ((m.(1).(0) * m.(2).(2)) - (m.(1).(2) * m.(2).(0)))
                + m.(0).(2) * ((m.(1).(0) * m.(2).(1)) - (m.(1).(1) * m.(2).(0)))
          in
          det = 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "rational",
      [ Alcotest.test_case "normalisation" `Quick test_q_normalisation;
        Alcotest.test_case "arithmetic" `Quick test_q_arith;
        Alcotest.test_case "predicates" `Quick test_q_predicates;
        Alcotest.test_case "overflow" `Quick test_q_overflow ] );
    qsuite "rational-props"
      [ prop_add_comm; prop_mul_assoc; prop_add_inverse; prop_mul_inverse;
        prop_distributive ];
    ( "affine",
      [ Alcotest.test_case "basics" `Quick test_affine_basics;
        Alcotest.test_case "cancellation" `Quick test_affine_cancellation;
        Alcotest.test_case "substitution" `Quick test_affine_subst;
        Alcotest.test_case "split" `Quick test_affine_split;
        Alcotest.test_case "to_atom" `Quick test_affine_to_atom;
        Alcotest.test_case "mul" `Quick test_affine_mul ] );
    qsuite "affine-props" [ prop_affine_add_comm; prop_affine_scale_distributes ];
    ( "linsolve",
      [ Alcotest.test_case "identity" `Quick test_solve_identity;
        Alcotest.test_case "transpose swap" `Quick test_solve_swap;
        Alcotest.test_case "singular" `Quick test_solve_singular;
        Alcotest.test_case "3x3" `Quick test_solve_3x3 ] );
    qsuite "linsolve-props" [ prop_solver_roundtrip ] ]
