(* Pass-manager tests: the registry-driven default pipeline must be
   bit-identical to the historical hard-wired pass sequence on every suite
   kernel (same IR, same Grover outcome), normalize must be idempotent
   (qcheck), and the manager plumbing itself — registry, parsing,
   combinators, stats, diagnostics, --verify-each — must behave. *)

open Grover_ir
module Pass = Grover_passes.Pass
module Pipeline = Grover_passes.Pipeline
module P = Grover_passes
module Diag = Grover_support.Diag
module Loc = Grover_support.Loc
module Suite = Grover_suite.Suite
module Kit = Grover_suite.Kit
module Grover = Grover_core.Grover

(* -- helpers ---------------------------------------------------------------- *)

let compile_kernel ?(defines = []) (kernel : string) (src : string) : Ssa.func =
  let fns = Lower.compile ~defines src in
  match List.find_opt (fun f -> f.Ssa.f_name = kernel) fns with
  | Some f -> f
  | None -> Alcotest.failf "kernel %s missing after compile" kernel

let compile1 src =
  match Lower.compile src with
  | [ fn ] -> fn
  | fns -> Alcotest.failf "expected 1 kernel, got %d" (List.length fns)

let simple_src =
  "__kernel void f(__global int *a, int x) { a[0] = x * 2 + 1; }"

let contains ~(needle : string) (hay : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  || (let found = ref false in
      for i = 0 to nh - nn do
        if (not !found) && String.sub hay i nn = needle then found := true
      done;
      !found)

(* The printer emits raw global value ids (%v<N>) and block ids (name.<N>),
   so two separate compiles of the same source differ textually even when
   structurally identical. Renumber both token kinds by order of first
   appearance to get a compile-independent canonical form. *)
let canonical_ir (s : string) : string =
  let b = Buffer.create (String.length s) in
  let vmap : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let bmap : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let vnext = ref 0 and bnext = ref 0 in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if
      c = '%' && !i + 2 < n && s.[!i + 1] = 'v' && is_digit s.[!i + 2]
    then begin
      let j = ref (!i + 2) in
      while !j < n && is_digit s.[!j] do incr j done;
      let id = String.sub s (!i + 2) (!j - !i - 2) in
      let canon =
        match Hashtbl.find_opt vmap id with
        | Some k -> k
        | None ->
            let k = !vnext in
            incr vnext;
            Hashtbl.add vmap id k;
            k
      in
      Buffer.add_string b (Printf.sprintf "%%v#%d" canon);
      i := !j
    end
    else if c = '.' && !i + 1 < n && is_digit s.[!i + 1] then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit s.[!j] do incr j done;
      (* Only rewrite tokens that look like block ids ("header.12:",
         "%body.7,"), not hex-float fractions ("0x1.8p+1"). *)
      let terminated =
        !j >= n
        || match s.[!j] with
           | ':' | ' ' | '\n' | ',' | ')' | ']' -> true
           | _ -> false
      in
      if terminated then begin
        let id = String.sub s (!i + 1) (!j - !i - 1) in
        let canon =
          match Hashtbl.find_opt bmap id with
          | Some k -> k
          | None ->
              let k = !bnext in
              incr bnext;
              Hashtbl.add bmap id k;
              k
        in
        Buffer.add_string b (Printf.sprintf ".#%d" canon);
        i := !j
      end
      else begin
        Buffer.add_char b c;
        incr i
      end
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  Buffer.contents b

let canon_print fn = canonical_ir (Printer.func_to_string fn)

(* -- the old hard-wired sequence (verbatim replica) ------------------------- *)

(* What Pipeline.normalize was before the pass manager existed. The new
   registry pipeline must reproduce it bit for bit. *)
let old_fix_loop (fn : Ssa.func) : unit =
  let continue_ = ref true in
  while !continue_ do
    let s = P.Simplify.run fn in
    let c = P.Cse.run fn in
    let d = P.Dce.run fn in
    continue_ := s || c || d
  done

let old_fixpoint (fn : Ssa.func) : unit =
  old_fix_loop fn;
  if P.Licm.run fn then old_fix_loop fn

let old_normalize (fn : Ssa.func) : unit =
  ignore (P.Canon.run fn);
  ignore (P.Canon.expand_global_ids fn);
  ignore (P.Canon.run fn);
  ignore (P.Mem2reg.run fn);
  old_fixpoint fn;
  Verify.run fn

(* -- equivalence: new registry pipeline vs the old sequence ----------------- *)

let check_outcomes_equal id (a : Grover.outcome) (b : Grover.outcome) =
  Alcotest.(check (list string))
    (id ^ " transformed") a.Grover.transformed b.Grover.transformed;
  Alcotest.(check (list (pair string string)))
    (id ^ " rejected") a.Grover.rejected b.Grover.rejected;
  Alcotest.(check int)
    (id ^ " barriers removed") a.Grover.barriers_removed
    b.Grover.barriers_removed;
  Alcotest.(check int)
    (id ^ " report count")
    (List.length a.Grover.reports)
    (List.length b.Grover.reports)

let test_equivalence (case : Kit.case) () =
  let fn_old =
    compile_kernel ~defines:case.Kit.defines case.Kit.kernel case.Kit.source
  in
  let fn_new =
    compile_kernel ~defines:case.Kit.defines case.Kit.kernel case.Kit.source
  in
  old_normalize fn_old;
  Pipeline.normalize fn_new;
  Alcotest.(check string)
    (case.Kit.id ^ " normalized IR identical")
    (canon_print fn_old) (canon_print fn_new);
  let o_old = Grover.run ?only:case.Kit.remove fn_old in
  let o_new = Grover.run ?only:case.Kit.remove fn_new in
  check_outcomes_equal case.Kit.id o_old o_new;
  Alcotest.(check string)
    (case.Kit.id ^ " transformed IR identical")
    (canon_print fn_old) (canon_print fn_new)

(* -- idempotence: a second normalize reports no change ---------------------- *)

let second_normalize_changes (fn : Ssa.func) : bool =
  Pipeline.normalize fn;
  let c = Pass.ctx () in
  Pass.run_pass c Pipeline.normalize_pass fn

let test_normalize_idempotent_suite (case : Kit.case) () =
  let fn =
    compile_kernel ~defines:case.Kit.defines case.Kit.kernel case.Kit.source
  in
  Alcotest.(check bool)
    (case.Kit.id ^ " second normalize is a no-op")
    false
    (second_normalize_changes fn)

(* Random kernels: straight-line expressions, a diamond and a loop, so the
   property also covers phi placement and LICM. *)
let gen_kernel_src =
  let open QCheck.Gen in
  let rec expr depth =
    if depth = 0 then oneof [ map string_of_int (int_range 0 9); return "x" ]
    else
      let* l = expr (depth - 1) in
      let* r = expr (depth - 1) in
      let* op = oneofl [ "+"; "-"; "*" ] in
      return (Printf.sprintf "(%s %s %s)" l op r)
  in
  let* d = int_range 1 4 in
  let* e = expr d in
  oneofl
    [ Printf.sprintf "__kernel void f(__global int *a, int x) { a[0] = %s; }" e;
      Printf.sprintf
        "__kernel void f(__global int *a, int x) { if (x > 0) { a[0] = %s; } \
         else { a[0] = 0; } }"
        e;
      Printf.sprintf
        "__kernel void f(__global int *a, int x) { for (int i = 0; i < 8; \
         i++) { a[i] = %s + i; } }"
        e ]

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent on random kernels" ~count:100
    (QCheck.make ~print:(fun s -> s) gen_kernel_src)
    (fun src ->
      let fn = compile1 src in
      not (second_normalize_changes fn))

(* -- registry and pipeline parsing ------------------------------------------ *)

let test_registry () =
  List.iter
    (fun n ->
      match Pass.find n with
      | Some p -> Alcotest.(check string) ("name of " ^ n) n (Pass.name p)
      | None -> Alcotest.failf "pass '%s' not registered" n)
    [ "canon"; "expand-gids"; "mem2reg"; "simplify"; "cse"; "dce"; "licm";
      "verify"; "simplify-fix"; "normalize"; "cleanup" ];
  Alcotest.(check bool) "unknown absent" true (Pass.find "nope" = None)

let test_parse_ok () =
  match Pass.parse "canon, mem2reg ,dce" with
  | Ok ps ->
      Alcotest.(check (list string))
        "parsed names"
        [ "canon"; "mem2reg"; "dce" ]
        (List.map Pass.name ps)
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_parse_unknown () =
  match Pass.parse "canon,bogus" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error d ->
      Alcotest.(check bool) "is error" true (Diag.is_error d);
      let m = Diag.to_string d in
      Alcotest.(check bool)
        "mentions the pass" true
        (contains ~needle:"bogus" m)

let test_parse_empty () =
  match Pass.parse " , " with
  | Ok _ -> Alcotest.fail "expected parse error on empty spec"
  | Error d -> Alcotest.(check bool) "is error" true (Diag.is_error d)

(* -- combinators ------------------------------------------------------------ *)

let test_seq_order () =
  let trace = ref [] in
  let mk n = Pass.make n ~descr:"test" (fun _ _ -> trace := n :: !trace; false) in
  let s = Pass.seq "s" [ mk "a"; mk "b"; mk "c" ] in
  let fn = compile1 simple_src in
  let c = Pass.ctx () in
  let changed = Pass.run_pass c s fn in
  Alcotest.(check bool) "seq of no-ops unchanged" false changed;
  Alcotest.(check (list string)) "runs in order" [ "a"; "b"; "c" ]
    (List.rev !trace)

let test_fixpoint_stabilises () =
  let left = ref 3 in
  let p =
    Pass.make "count" ~descr:"test" (fun _ _ ->
        if !left > 0 then begin decr left; true end else false)
  in
  let fp = Pass.fixpoint "count-fix" [ p ] in
  let fn = compile1 simple_src in
  let c = Pass.ctx () in
  let changed = Pass.run_pass c fp fn in
  Alcotest.(check bool) "fixpoint reports change" true changed;
  (* 3 changing rounds + 1 stable round, plus the fixpoint's own stat. *)
  let runs = List.filter (fun s -> s.Pass.st_pass = "count") (Pass.stats c) in
  Alcotest.(check int) "member ran until stable" 4 (List.length runs);
  Alcotest.(check int) "changed rounds" 3
    (List.length (List.filter (fun s -> s.Pass.st_changed) runs))

let test_until_stable () =
  let left = ref 2 in
  let p =
    Pass.make "tick" ~descr:"test" (fun _ _ ->
        if !left > 0 then begin decr left; true end else false)
  in
  let fn = compile1 simple_src in
  let c = Pass.ctx () in
  Alcotest.(check bool) "changed" true
    (Pass.run_pass c (Pass.until_stable p) fn);
  Alcotest.(check int) "drained" 0 !left

(* -- instrumentation -------------------------------------------------------- *)

let test_stats_recorded () =
  let fn = compile1 simple_src in
  let c = Pass.ctx () in
  Pipeline.normalize ~ctx:c fn;
  let stats = Pass.stats c in
  Alcotest.(check bool) "stats recorded" true (stats <> []);
  List.iter
    (fun s ->
      if s.Pass.st_seconds < 0.0 then
        Alcotest.failf "%s: negative time" s.Pass.st_pass;
      if s.Pass.st_before < 0 || s.Pass.st_after < 0 then
        Alcotest.failf "%s: negative instr count" s.Pass.st_pass)
    stats;
  Alcotest.(check bool) "normalize composite recorded" true
    (List.exists (fun s -> s.Pass.st_pass = "normalize") stats);
  (* The composite's after-count is the function's final instruction count. *)
  let top = List.find (fun s -> s.Pass.st_pass = "normalize") stats in
  Alcotest.(check int) "composite after = final count"
    (Pass.instr_count fn) top.Pass.st_after;
  (* The summary aggregates every run exactly once. *)
  let total_runs =
    List.fold_left (fun n s -> n + s.Pass.sm_runs) 0 (Pass.summarize c)
  in
  Alcotest.(check int) "summary covers all runs" (List.length stats) total_runs;
  let table = Pass.timing_table c in
  Alcotest.(check bool) "table has header" true
    (String.length table > 4 && String.sub table 0 4 = "pass")

let test_print_changed () =
  let fn = compile1 simple_src in
  let out = Buffer.create 256 in
  let c = Pass.ctx ~print_changed:true ~print:(Buffer.add_string out) () in
  Pipeline.normalize ~ctx:c fn;
  let s = Buffer.contents out in
  Alcotest.(check bool) "snapshots printed" true (String.length s > 0);
  Alcotest.(check bool) "mentions a pass" true
    (contains ~needle:"; IR after" s)

(* -- verify-each and failure conversion ------------------------------------- *)

let break_ir =
  Pass.make "break-ir" ~descr:"deliberately corrupt the IR (test only)"
    (fun _ fn ->
      (List.hd fn.Ssa.blocks).Ssa.term <- None;
      true)

let test_verify_each_catches () =
  let fn = compile1 simple_src in
  Pipeline.normalize fn;
  let c = Pass.ctx ~verify_each:true () in
  (match Pass.run_pass c break_ir fn with
  | _ -> Alcotest.fail "expected Diag.Fatal from --verify-each"
  | exception Diag.Fatal d ->
      Alcotest.(check bool) "fatal is error" true (Diag.is_error d));
  match Pass.errors c with
  | [] -> Alcotest.fail "error diagnostic not recorded on the context"
  | d :: _ ->
      Alcotest.(check bool) "names the pass" true
        (d.Diag.pass = Some "break-ir")

let test_verify_each_off_is_lenient () =
  (* Without --verify-each the manager does not re-check, mirroring the
     production default; the corruption only surfaces at the next Verify. *)
  let fn = compile1 simple_src in
  Pipeline.normalize fn;
  let c = Pass.ctx () in
  Alcotest.(check bool) "runs fine" true (Pass.run_pass c break_ir fn);
  Alcotest.(check bool) "no error diag" true (Pass.errors c = [])

(* -- diagnostics ------------------------------------------------------------ *)

let test_diag_to_string () =
  let d =
    Diag.errorf ~loc:{ Loc.line = 3; col = 7 } ~pass:"lower"
      "unknown variable x"
  in
  Alcotest.(check string) "located error"
    "k.cl:3:7: error: [lower] unknown variable x"
    (Diag.to_string ~file:"k.cl" d);
  Alcotest.(check string) "fileless error" "3:7: error: [lower] unknown variable x"
    (Diag.to_string d);
  let r = Diag.remarkf ~pass:"grover" "kept 'As'" in
  Alcotest.(check string) "unlocated remark" "remark: [grover] kept 'As'"
    (Diag.to_string r)

let test_diag_to_json () =
  let d =
    Diag.errorf ~loc:{ Loc.line = 2; col = 5 } ~pass:"sema" "bad \"quote\""
  in
  let j = Diag.to_json ~file:"a.cl" d in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (contains ~needle j))
    [ "\"severity\": \"error\""; "\"file\": \"a.cl\""; "\"line\": 2";
      "\"col\": 5"; "\"pass\": \"sema\""; "\\\"quote\\\"" ]

let test_grover_remarks () =
  (* Running Grover under a ctx surfaces Table-III outcomes as remarks. *)
  let case = List.hd Suite.all in
  let fn =
    compile_kernel ~defines:case.Kit.defines case.Kit.kernel case.Kit.source
  in
  let c = Pass.ctx () in
  Pipeline.normalize ~ctx:c fn;
  let o = Grover.run ?only:case.Kit.remove ~ctx:c fn in
  Alcotest.(check bool) "transformed something" true (o.Grover.transformed <> []);
  let remarks =
    List.filter (fun d -> d.Diag.severity = Diag.Remark) (Pass.diags c)
  in
  Alcotest.(check bool) "remarks emitted" true (remarks <> []);
  Alcotest.(check bool) "remark names grover" true
    (List.for_all (fun d -> d.Diag.pass = Some "grover") remarks)

(* -- suite ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [ ( "pass-manager equivalence",
      List.map
        (fun case ->
          Alcotest.test_case case.Kit.id `Quick (test_equivalence case))
        Suite.all );
    ( "pass-manager idempotence",
      List.map
        (fun case ->
          Alcotest.test_case case.Kit.id `Quick
            (test_normalize_idempotent_suite case))
        Suite.all
      @ qsuite [ prop_normalize_idempotent ] );
    ( "pass-manager registry",
      [ Alcotest.test_case "base passes registered" `Quick test_registry;
        Alcotest.test_case "parse pipeline" `Quick test_parse_ok;
        Alcotest.test_case "parse unknown pass" `Quick test_parse_unknown;
        Alcotest.test_case "parse empty spec" `Quick test_parse_empty ] );
    ( "pass-manager combinators",
      [ Alcotest.test_case "seq order" `Quick test_seq_order;
        Alcotest.test_case "fixpoint stabilises" `Quick test_fixpoint_stabilises;
        Alcotest.test_case "until_stable" `Quick test_until_stable ] );
    ( "pass-manager instrumentation",
      [ Alcotest.test_case "stats recorded" `Quick test_stats_recorded;
        Alcotest.test_case "print changed" `Quick test_print_changed;
        Alcotest.test_case "verify-each catches corruption" `Quick
          test_verify_each_catches;
        Alcotest.test_case "verify-each off is lenient" `Quick
          test_verify_each_off_is_lenient ] );
    ( "diagnostics",
      [ Alcotest.test_case "to_string" `Quick test_diag_to_string;
        Alcotest.test_case "to_json" `Quick test_diag_to_json;
        Alcotest.test_case "grover remarks" `Quick test_grover_remarks ] ) ]
