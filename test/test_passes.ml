(* Unit tests for the optimisation passes added around Grover: CSE, LICM,
   work-item call canonicalisation and global-id expansion. *)

open Grover_ir
module Pass = Grover_passes

let compile1 src =
  match Lower.compile src with
  | [ fn ] -> fn
  | _ -> Alcotest.fail "expected one kernel"

let count p fn = Ssa.fold_instrs (fun n i -> if p i.Ssa.op then n + 1 else n) 0 fn

let count_calls name fn =
  count
    (function
      | Ssa.Call { callee; _ } when callee = name -> true | _ -> false)
    fn

(* -- canonicalisation --------------------------------------------------------- *)

let test_canon_unifies_workitem_calls () =
  let fn =
    compile1
      "__kernel void f(__global int *a) { a[get_local_id(0)] = get_local_id(0) + get_local_id(1); }"
  in
  ignore (Pass.Canon.run fn);
  Verify.run fn;
  Alcotest.(check int) "one get_local_id(0)" 2 (count_calls "get_local_id" fn)

let test_expand_global_ids () =
  let fn = compile1 "__kernel void f(__global int *a) { a[get_global_id(0)] = 1; }" in
  ignore (Pass.Canon.run fn);
  ignore (Pass.Canon.expand_global_ids fn);
  Verify.run fn;
  Alcotest.(check int) "gid call gone" 0 (count_calls "get_global_id" fn);
  Alcotest.(check int) "group id appears" 1 (count_calls "get_group_id" fn);
  Alcotest.(check int) "local size appears" 1 (count_calls "get_local_size" fn);
  Alcotest.(check int) "local id appears" 1 (count_calls "get_local_id" fn)

let test_expansion_preserves_semantics () =
  (* Executed result must be identical before/after expansion. *)
  let src = "__kernel void f(__global int *a) { a[get_global_id(0)] = get_global_id(0) * 3; }" in
  let run fn =
    let open Grover_ocl in
    let compiled = Interp.prepare fn in
    let mem = Memory.create () in
    let a = Memory.alloc mem Ssa.I32 32 in
    ignore
      (Runtime.launch compiled
         ~cfg:{ Runtime.global = (32, 1, 1); local = (8, 1, 1); queues = 1 }
         ~args:[ Runtime.Abuf a ] ~mem ());
    Memory.to_int_array a
  in
  let plain = run (compile1 src) in
  let fn = compile1 src in
  ignore (Pass.Canon.run fn);
  ignore (Pass.Canon.expand_global_ids fn);
  let expanded = run fn in
  Alcotest.(check bool) "same results" true (plain = expanded)

(* -- CSE ------------------------------------------------------------------------ *)

let test_cse_merges_duplicates () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int x, int y) { a[0] = (x + y) * (x + y); }"
  in
  ignore (Pass.Mem2reg.run fn);
  ignore (Pass.Cse.run fn);
  ignore (Pass.Dce.run fn);
  Verify.run fn;
  Alcotest.(check int) "one addition left" 1
    (count (function Ssa.Binop (Ssa.Add, _, _) -> true | _ -> false) fn)

let test_cse_commutative () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int x, int y) { a[0] = (x + y) + (y + x); }"
  in
  ignore (Pass.Mem2reg.run fn);
  ignore (Pass.Cse.run fn);
  ignore (Pass.Dce.run fn);
  Verify.run fn;
  (* x+y and y+x unify; one add computes the sum, one adds the two. *)
  Alcotest.(check int) "two additions" 2
    (count (function Ssa.Binop (Ssa.Add, _, _) -> true | _ -> false) fn)

let test_cse_does_not_merge_loads () =
  (* Loads are not pure (stores may intervene): never merged. *)
  let fn =
    compile1
      "__kernel void f(__global int *a) { int v = a[0]; a[0] = v + 1; int w = a[0]; a[1] = w; }"
  in
  Pass.Pipeline.normalize fn;
  Alcotest.(check int) "two loads survive" 2
    (count (function Ssa.Load _ -> true | _ -> false) fn)

let test_cse_respects_dominance () =
  (* The same expression in two sibling branches must NOT merge (neither
     dominates the other). *)
  let fn =
    compile1
      {|__kernel void f(__global int *a, int x, int n) {
          if (n > 0) a[0] = x * 7; else a[1] = x * 7;
        }|}
  in
  ignore (Pass.Mem2reg.run fn);
  ignore (Pass.Cse.run fn);
  Verify.run fn;
  Alcotest.(check int) "both multiplications survive" 2
    (count (function Ssa.Binop (Ssa.Mul, _, _) -> true | _ -> false) fn)

(* -- LICM ------------------------------------------------------------------------ *)

let licm_kernel =
  {|__kernel void f(__global int *a, int n, int x, int y) {
      for (int i = 0; i < n; i++) {
        a[i] = i + (x * y + 5);
      }
    }|}

let in_loop_muls fn =
  (* Count multiplications located in blocks that are part of a loop (have a
     back edge). After LICM the x*y must live in a preheader. *)
  let dom = Dom.compute fn in
  let loops = Pass.Licm.find_loops fn dom in
  List.fold_left
    (fun acc (l : Pass.Licm.loop) ->
      Hashtbl.fold
        (fun bid () acc ->
          match List.find_opt (fun b -> b.Ssa.bid = bid) fn.Ssa.blocks with
          | Some b ->
              acc
              + List.length
                  (List.filter
                     (fun i ->
                       match i.Ssa.op with Ssa.Binop (Ssa.Mul, _, _) -> true | _ -> false)
                     b.Ssa.instrs)
          | None -> acc)
        l.Pass.Licm.blocks acc)
    0 loops

let test_licm_hoists_invariant () =
  let fn = compile1 licm_kernel in
  ignore (Pass.Mem2reg.run fn);
  let before = in_loop_muls fn in
  ignore (Pass.Licm.run fn);
  Verify.run fn;
  let after = in_loop_muls fn in
  Alcotest.(check bool) "had a mul in the loop" true (before > 0);
  Alcotest.(check int) "no mul left in the loop" 0 after

let test_licm_preserves_semantics () =
  let run fn =
    let open Grover_ocl in
    let compiled = Interp.prepare fn in
    let mem = Memory.create () in
    let a = Memory.alloc mem Ssa.I32 16 in
    ignore
      (Runtime.launch compiled
         ~cfg:{ Runtime.global = (1, 1, 1); local = (1, 1, 1); queues = 1 }
         ~args:
           [ Runtime.Abuf a; Runtime.Aint 16; Runtime.Aint 3; Runtime.Aint 4 ]
         ~mem ());
    Memory.to_int_array a
  in
  let plain =
    let fn = compile1 licm_kernel in
    ignore (Pass.Mem2reg.run fn);
    run fn
  in
  let hoisted =
    let fn = compile1 licm_kernel in
    ignore (Pass.Mem2reg.run fn);
    ignore (Pass.Licm.run fn);
    run fn
  in
  Alcotest.(check bool) "same results" true (plain = hoisted)

let test_licm_keeps_guarded_division () =
  (* x / n inside "if (n != 0)" must not be hoisted past the guard. *)
  let fn =
    compile1
      {|__kernel void f(__global int *a, int n, int x) {
          for (int i = 0; i < 4; i++) {
            if (n != 0) a[i] = x / n;
            else a[i] = 0;
          }
        }|}
  in
  ignore (Pass.Mem2reg.run fn);
  ignore (Pass.Licm.run fn);
  Verify.run fn;
  (* Run with n = 0: must not trap. *)
  let open Grover_ocl in
  let compiled = Interp.prepare fn in
  let mem = Memory.create () in
  let a = Memory.alloc mem Ssa.I32 4 in
  ignore
    (Runtime.launch compiled
       ~cfg:{ Runtime.global = (1, 1, 1); local = (1, 1, 1); queues = 1 }
       ~args:[ Runtime.Abuf a; Runtime.Aint 0; Runtime.Aint 7 ]
       ~mem ());
  Alcotest.(check (list int)) "zeros" [ 0; 0; 0; 0 ]
    (Array.to_list (Memory.to_int_array a))

(* LICM after Grover: the re-created nGL index terms that do not depend on
   the loop hoist out of it. *)
let test_licm_after_grover () =
  let src =
    {|__kernel void f(__global float *out, __global const float *in, int n) {
        __local float sh[64];
        int lx = get_local_id(0);
        float acc = 0.0f;
        for (int t = 0; t < n / 64; t++) {
          sh[lx] = in[t * 64 + lx];
          barrier(CLK_LOCAL_MEM_FENCE);
          for (int j = 0; j < 64; j++) {
            acc += sh[j];
          }
          barrier(CLK_LOCAL_MEM_FENCE);
        }
        out[get_global_id(0)] = acc;
      }|}
  in
  let fn = compile1 src in
  Pass.Pipeline.normalize fn;
  let o = Grover_core.Grover.run fn in
  Alcotest.(check (list string)) "transformed" [ "sh" ] o.Grover_core.Grover.transformed;
  Verify.run fn;
  (* The multiplication t*64 of the nGL index is invariant in the inner j
     loop; after cleanup (which includes LICM) the inner loop body must not
     contain it. *)
  let dom = Dom.compute fn in
  let loops = Pass.Licm.find_loops fn dom in
  Alcotest.(check bool) "loops found" true (List.length loops >= 2);
  let inner_has_shl_or_mul =
    List.exists
      (fun (l : Pass.Licm.loop) ->
        (* inner loop: contains the nGL load (from "in") *)
        let contains_ngl = ref false and has_mul = ref false in
        Hashtbl.iter
          (fun bid () ->
            match List.find_opt (fun b -> b.Ssa.bid = bid) fn.Ssa.blocks with
            | Some b ->
                List.iter
                  (fun i ->
                    match i.Ssa.op with
                    | Ssa.Load { ptr = Ssa.Arg { a_name = "in"; _ }; _ } ->
                        contains_ngl := true
                    | Ssa.Binop ((Ssa.Mul | Ssa.Shl), _, Ssa.Cint (_, 64)) ->
                        has_mul := true
                    | _ -> ())
                  b.Ssa.instrs
            | None -> ())
          l.Pass.Licm.blocks;
        (* The inner loop contains the nGL but its t*64 was hoisted; only
           loops that also contain the staging (outer) may keep it. *)
        !contains_ngl && !has_mul
        && not (Hashtbl.length l.Pass.Licm.blocks > 4))
      loops
  in
  Alcotest.(check bool) "t*64 hoisted from the inner loop" false
    inner_has_shl_or_mul

let suite =
  [ ( "canon",
      [ Alcotest.test_case "unifies work-item calls" `Quick
          test_canon_unifies_workitem_calls;
        Alcotest.test_case "expands global ids" `Quick test_expand_global_ids;
        Alcotest.test_case "expansion preserves semantics" `Quick
          test_expansion_preserves_semantics ] );
    ( "cse",
      [ Alcotest.test_case "merges duplicates" `Quick test_cse_merges_duplicates;
        Alcotest.test_case "commutative" `Quick test_cse_commutative;
        Alcotest.test_case "does not merge loads" `Quick test_cse_does_not_merge_loads;
        Alcotest.test_case "respects dominance" `Quick test_cse_respects_dominance ] );
    ( "licm",
      [ Alcotest.test_case "hoists invariants" `Quick test_licm_hoists_invariant;
        Alcotest.test_case "preserves semantics" `Quick test_licm_preserves_semantics;
        Alcotest.test_case "keeps guarded division" `Quick
          test_licm_keeps_guarded_division;
        Alcotest.test_case "after grover" `Quick test_licm_after_grover ] ) ]
