(** Tests for the staged compile cache and the persistent autotune DB:
    key invalidation (every input dimension reaches the hash; formatting
    does not), artifact determinism, cached-vs-uncached launch identity
    across the whole suite, the disk/LRU tiers, batch compilation, and
    [Runtime.plan] resolving its decision from a populated DB. *)

open Grover_ir
open Grover_ocl
module Cache = Grover_cache.Compile_cache
module Atdb = Grover_cache.Autotune_db
module Pass = Grover_passes.Pass
module Pipeline = Grover_passes.Pipeline
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit

let base_source =
  {|__kernel void k(__global float *out, __global const float *a, int n) {
      __local float tmp[16];
      int l = get_local_id(0);
      int g = get_global_id(0);
      tmp[l] = a[g] * 2.0f;
      barrier(CLK_LOCAL_MEM_FENCE);
      if (g < n) out[g] = tmp[l] + 1.0f;
    }|}

let key rq = Cache.key_of_request rq

(* -- Cache keys --------------------------------------------------------------- *)

let check_formatting_insensitive () =
  (* Comments and whitespace are erased by the canonical token stream. *)
  let reformatted =
    {|/* a comment */
__kernel void k(__global float *out, __global const float *a, int n)
{
  __local float tmp[ 16 ];
  int l = get_local_id(0); int g = get_global_id(0);   // trailing
  tmp[l] = a[g] * 2.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  if (g < n)
    out[g] = tmp[l] + 1.0f;
}|}
  in
  Alcotest.(check string)
    "comment/whitespace edits keep the key"
    (key (Cache.request base_source))
    (key (Cache.request reformatted))

let check_each_dimension_invalidates () =
  let base = Cache.request base_source in
  let distinct what rq =
    if key rq = key base then
      Alcotest.failf "%s edit did not change the key" what
  in
  distinct "source"
    (Cache.request
       {|__kernel void k(__global float *out, __global const float *a, int n) {
           out[get_global_id(0)] = a[get_global_id(0)];
         }|});
  distinct "defines" { base with Cache.rq_defines = [ ("W", "8") ] };
  distinct "pipeline spec"
    { base with
      Cache.rq_pipeline = [ Pipeline.normalize_pass; Pipeline.cleanup_pass ] };
  distinct "variant" { base with Cache.rq_variant = Cache.Without_lm None };
  distinct "variant selection"
    { base with Cache.rq_variant = Cache.Without_lm (Some [ "tmp" ]) };
  (* Explicit engines on both sides: the base request resolves its engine
     from GROVER_ENGINE, which CI sets to either value. *)
  let tree = { base with Cache.rq_engine = Some Interp.Tree } in
  let compiled = { base with Cache.rq_engine = Some Interp.Compiled } in
  if key tree = key compiled then
    Alcotest.fail "engine edit did not change the key";
  distinct "lane width" { base with Cache.rq_lane_width = Some 4 }

let check_defines_order_insensitive () =
  let a = Cache.request ~defines:[ ("A", "1"); ("B", "2") ] base_source in
  let b = Cache.request ~defines:[ ("B", "2"); ("A", "1") ] base_source in
  Alcotest.(check string) "define order keys equally" (key a) (key b)

let prop_constant_edits =
  QCheck.Test.make ~name:"keys equal iff embedded constant equal" ~count:40
    QCheck.(pair (int_range 0 999) (int_range 0 999))
    (fun (a, b) ->
      let src c =
        Printf.sprintf
          "__kernel void k(__global int *out) { out[get_global_id(0)] = %d; }"
          c
      in
      let ka = key (Cache.request (src a)) in
      let kb = key (Cache.request (src b)) in
      (a = b) = (ka = kb))

let prop_lane_widths =
  QCheck.Test.make ~name:"keys equal iff lane width equal" ~count:30
    QCheck.(pair (int_range 1 16) (int_range 1 16))
    (fun (w1, w2) ->
      let k w = key (Cache.request ~lane_width:w base_source) in
      (w1 = w2) = (k w1 = k w2))

(* -- Determinism --------------------------------------------------------------- *)

let check_determinism () =
  List.iter
    (fun (case : Kit.case) ->
      List.iter
        (fun variant ->
          let rq =
            Cache.request ~defines:case.Kit.defines ~variant case.Kit.source
          in
          let k = key rq in
          let bytes () =
            Marshal.to_string (Cache.build_artifact rq ~key:k) []
          in
          if not (String.equal (bytes ()) (bytes ())) then
            Alcotest.failf "%s (%s): artifacts not bit-identical" case.Kit.id
              (Cache.variant_spec variant))
        [ Cache.With_lm; Cache.Without_lm case.Kit.remove ])
    Grover_suite.Suite.all

(* -- Cached vs uncached launches ----------------------------------------------- *)

let snapshot_buffers (mem : Memory.t) :
    (int * Ssa.space * Memory.storage) list =
  mem.Memory.buffers
  |> List.map (fun (b : Memory.buffer) ->
         (b.Memory.bid, b.Memory.space, b.Memory.st))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let launch (case : Kit.case) (compiled : Interp.compiled) =
  let w = case.Kit.mk ~scale:4 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ()
  in
  (totals, snapshot_buffers w.Kit.mem, w.Kit.check ())

let check_cached_matches_uncached (case : Kit.case) (v : H.version) () =
  let fn, _ = H.compile_version case v in
  let u_tot, u_bufs, u_valid = launch case (Interp.prepare fn) in
  (match u_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "uncached run invalid: %s" m);
  let cache = Cache.create () in
  let variant =
    match v with
    | H.With_lm -> Cache.With_lm
    | H.Without_lm -> Cache.Without_lm case.Kit.remove
  in
  let rq = Cache.request ~defines:case.Kit.defines ~variant case.Kit.source in
  let run_cached label =
    let pr = Cache.compile cache rq in
    let compiled =
      match Cache.find_kernel pr ~name:case.Kit.kernel with
      | Some c -> c
      | None -> Alcotest.failf "%s: kernel missing from cache value" label
    in
    let tot, bufs, valid = launch case compiled in
    (match valid with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s run invalid: %s" label m);
    (tot, bufs)
  in
  let c_tot, c_bufs = run_cached "cached (miss)" in
  Alcotest.(check bool) "identical totals" true (u_tot = c_tot);
  Alcotest.(check bool) "bit-identical buffers" true (compare u_bufs c_bufs = 0);
  (* A memory-tier hit must replay the exact same launch. *)
  let h_tot, h_bufs = run_cached "cached (mem hit)" in
  Alcotest.(check bool) "hit totals identical" true (c_tot = h_tot);
  Alcotest.(check bool) "hit buffers identical" true (compare c_bufs h_bufs = 0);
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.st_misses;
  Alcotest.(check int) "one mem hit" 1 s.Cache.st_mem_hits

let cached_uncached_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.map
        (fun (v, vn) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s" case.Kit.id vn)
            `Quick
            (check_cached_matches_uncached case v))
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

(* -- Disk tier and LRU --------------------------------------------------------- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "grover-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)

let check_disk_tier () =
  let dir = fresh_dir () in
  let rq = Cache.request ~variant:(Cache.Without_lm None) base_source in
  let c1 = Cache.create ~dir () in
  let pr1 = Cache.compile c1 rq in
  Alcotest.(check int) "cold: one miss" 1 (Cache.stats c1).Cache.st_misses;
  Alcotest.(check int) "cold: artifact on disk" 1 (Cache.disk_size c1);
  (* A fresh cache instance over the same directory hits the disk tier
     and re-prepares an identical artifact. *)
  let c2 = Cache.create ~dir () in
  let pr2 = Cache.compile c2 rq in
  let s2 = Cache.stats c2 in
  Alcotest.(check int) "warm: disk hit" 1 s2.Cache.st_disk_hits;
  Alcotest.(check int) "warm: no miss" 0 s2.Cache.st_misses;
  Alcotest.(check bool) "disk artifact bit-identical" true
    (String.equal
       (Marshal.to_string pr1.Cache.pr_art [])
       (Marshal.to_string pr2.Cache.pr_art []));
  (* Corruption degrades to a rebuild, never an error. *)
  let k = Cache.key_of_request rq in
  let oc = open_out (Filename.concat dir (k ^ ".art")) in
  output_string oc "not an artifact";
  close_out oc;
  let c3 = Cache.create ~dir () in
  let _pr3 = Cache.compile c3 rq in
  Alcotest.(check int) "corrupt: rebuilt as a miss" 1
    (Cache.stats c3).Cache.st_misses;
  (* [clear] drops artifacts but keeps the autotune DB alongside them. *)
  let db_file = Atdb.default_file ~cache_dir:dir in
  let oc = open_out db_file in
  close_out oc;
  Cache.clear c3;
  Alcotest.(check int) "cleared disk tier" 0 (Cache.disk_size c3);
  Alcotest.(check bool) "autotune.db survives clear" true
    (Sys.file_exists db_file)

let check_lru_eviction () =
  let cache = Cache.create ~mem_capacity:2 () in
  let rq w = Cache.request ~lane_width:w base_source in
  List.iter (fun w -> ignore (Cache.compile cache (rq w))) [ 1; 2; 3 ];
  let s = Cache.stats cache in
  Alcotest.(check int) "three misses" 3 s.Cache.st_misses;
  Alcotest.(check bool) "evicted at capacity" true (s.Cache.st_evictions >= 1);
  Alcotest.(check bool) "memory tier bounded" true (Cache.mem_size cache <= 2);
  (* The LRU victim was the least-recently-used entry: width 1. *)
  ignore (Cache.compile cache (rq 1));
  Alcotest.(check int) "evictee misses again" 4 (Cache.stats cache).Cache.st_misses

let check_disk_trim () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let rq w = Cache.request ~lane_width:w base_source in
  let art w = Filename.concat dir (Cache.key_of_request (rq w) ^ ".art") in
  let size w = (Unix.stat (art w)).Unix.st_size in
  List.iter (fun w -> ignore (Cache.compile cache (rq w))) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "four artifacts" 4 (Cache.disk_size cache);
  Alcotest.(check bool) "disk_bytes sums them" true
    (Cache.disk_bytes cache >= size 1 + size 2 + size 3 + size 4);
  (* Distinct, strictly increasing mtimes: widths 1 and 2 are the LRU
     victims by construction (same-second store times would tie). *)
  List.iteri
    (fun i w ->
      let t = 1000.0 +. float_of_int i in
      Unix.utimes (art w) t t)
    [ 1; 2; 3; 4 ];
  let removed, freed = Cache.trim cache ~max_bytes:(size 3 + size 4) in
  Alcotest.(check int) "evicted the two oldest" 2 removed;
  Alcotest.(check bool) "freed their bytes" true (freed > 0);
  Alcotest.(check bool) "newest survive" true
    (Sys.file_exists (art 3) && Sys.file_exists (art 4));
  Alcotest.(check bool) "oldest gone" true
    (not (Sys.file_exists (art 1)) && not (Sys.file_exists (art 2)));
  (* A disk-tier hit refreshes the artifact's mtime, so the entry it
     served moves to the back of the eviction order. *)
  Unix.utimes (art 3) 1000.0 1000.0;
  Unix.utimes (art 4) 1001.0 1001.0;
  let c2 = Cache.create ~dir () in
  ignore (Cache.compile c2 (rq 3));
  Alcotest.(check int) "disk hit" 1 (Cache.stats c2).Cache.st_disk_hits;
  let removed2, _ = Cache.trim c2 ~max_bytes:(size 3) in
  Alcotest.(check int) "one more evicted" 1 removed2;
  Alcotest.(check bool) "touched artifact kept over newer-stored" true
    (Sys.file_exists (art 3) && not (Sys.file_exists (art 4)));
  Cache.clear c2;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let check_max_bytes_budget () =
  let with_env var v f =
    let old = Sys.getenv_opt var in
    Unix.putenv var v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
      f
  in
  (* Resolution: the explicit argument wins over the environment; an
     unparseable or non-positive environment value disables the budget. *)
  with_env "GROVER_CACHE_MAX_BYTES" "123" (fun () ->
      Alcotest.(check bool) "env budget honored" true
        ((Cache.create ()).Cache.max_bytes = Some 123);
      Alcotest.(check bool) "argument wins over env" true
        ((Cache.create ~max_bytes:5 ()).Cache.max_bytes = Some 5));
  with_env "GROVER_CACHE_MAX_BYTES" "abc" (fun () ->
      Alcotest.(check bool) "unparseable env disables budget" true
        ((Cache.create ()).Cache.max_bytes = None));
  with_env "GROVER_CACHE_MAX_BYTES" "0" (fun () ->
      Alcotest.(check bool) "non-positive env disables budget" true
        ((Cache.create ()).Cache.max_bytes = None));
  (* Enforcement: a budget smaller than any artifact keeps the disk tier
     empty — every store trims immediately. *)
  let dir = fresh_dir () in
  let cache = Cache.create ~dir ~max_bytes:1 () in
  let rq w = Cache.request ~lane_width:w base_source in
  List.iter (fun w -> ignore (Cache.compile cache (rq w))) [ 1; 2 ];
  Alcotest.(check int) "budget enforced on store" 0 (Cache.disk_size cache);
  Alcotest.(check bool) "evictions counted" true
    ((Cache.stats cache).Cache.st_evictions >= 2);
  Cache.clear cache;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let check_batch () =
  let cache = Cache.create () in
  let rqs =
    List.map
      (fun (case : Kit.case) ->
        Cache.request ~defines:case.Kit.defines
          ~variant:(Cache.Without_lm case.Kit.remove) case.Kit.source)
      Grover_suite.Suite.all
  in
  (* Duplicate the first request so owner-dedup is exercised. *)
  let rqs = rqs @ [ List.hd rqs ] in
  let batched = Cache.compile_batch cache rqs in
  Alcotest.(check int) "positionally aligned" (List.length rqs)
    (List.length batched);
  let seq_cache = Cache.create () in
  let sequential = List.map (Cache.compile seq_cache) rqs in
  List.iteri
    (fun i (b, s) ->
      if
        not
          (String.equal
             (Marshal.to_string b.Cache.pr_art [])
             (Marshal.to_string s.Cache.pr_art []))
      then Alcotest.failf "request %d: batch and sequential artifacts differ" i)
    (List.combine batched sequential);
  let dup_key = Cache.key_of_request (List.hd rqs) in
  let distinct =
    List.sort_uniq compare (List.map Cache.key_of_request rqs)
  in
  ignore dup_key;
  Alcotest.(check int) "duplicates compiled once"
    (List.length distinct)
    (Cache.stats cache).Cache.st_misses

(* -- Autotune DB --------------------------------------------------------------- *)

let entry ?(kernel = "k") ?(khash = "h0") ?(global = (64, 1, 1))
    ?(local = (16, 1, 1)) ?(version = "without_lm") ?(path = "wg-loop")
    ?(lane_width = 8) ?(tuned_by = Atdb.tuned_by_measured) () : Atdb.entry =
  {
    Atdb.e_kernel = kernel;
    e_khash = khash;
    e_platform = Atdb.host_platform;
    e_global = global;
    e_local = local;
    e_version = version;
    e_path = path;
    e_lane_width = lane_width;
    e_np = 1.25;
    e_t_with = 0.005;
    e_t_without = 0.004;
    e_tuned_by = tuned_by;
  }

let check_db_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let file = Atdb.default_file ~cache_dir:dir in
  let db = Atdb.load file in
  Alcotest.(check int) "empty db" 0 (Atdb.size db);
  Atdb.record db (entry ());
  Atdb.record db (entry ~kernel:"other" ~path:"fiberless" ());
  (* Same site again: replaces, not appends. *)
  Atdb.record db (entry ~version:"with_lm" ());
  Alcotest.(check int) "same-site record replaces" 2 (Atdb.size db);
  Atdb.save db;
  let db2 = Atdb.load file in
  Alcotest.(check int) "reloaded both entries" 2 (Atdb.size db2);
  (match
     Atdb.lookup db2 ~kernel:"k" ~global:(64, 1, 1) ~local:(16, 1, 1) ()
   with
  | Some e ->
      Alcotest.(check string) "replaced version" "with_lm" e.Atdb.e_version;
      Alcotest.(check string) "path" "wg-loop" e.Atdb.e_path;
      Alcotest.(check int) "lane width" 8 e.Atdb.e_lane_width
  | None -> Alcotest.fail "lookup missed a recorded site");
  Alcotest.(check bool) "stale khash filtered" true
    (Atdb.lookup db2 ~kernel:"k" ~khash:"different" ~global:(64, 1, 1)
       ~local:(16, 1, 1) ()
    = None);
  Alcotest.(check bool) "unknown geometry misses" true
    (Atdb.lookup db2 ~kernel:"k" ~global:(128, 1, 1) ~local:(16, 1, 1) ()
    = None);
  (* Unparseable lines are skipped, not fatal. *)
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "garbage line\n";
  close_out oc;
  Alcotest.(check int) "garbage line skipped" 2 (Atdb.size (Atdb.load file))

(* Provenance: predictor-sourced entries survive a save/load round trip,
   the measured/predictor split is reported, and pre-provenance "atdb1"
   lines still parse (as measured). *)
let check_db_provenance () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let file = Atdb.default_file ~cache_dir:dir in
  let db = Atdb.load file in
  Atdb.record db (entry ());
  Atdb.record db (entry ~kernel:"p1" ~tuned_by:Atdb.tuned_by_predictor ());
  Atdb.record db
    (entry ~kernel:"p2" ~version:"promoted"
       ~tuned_by:Atdb.tuned_by_predictor ());
  let m, p = Atdb.provenance_counts db in
  Alcotest.(check (pair int int)) "measured/predictor split" (1, 2) (m, p);
  Atdb.save db;
  let db2 = Atdb.load file in
  Alcotest.(check (pair int int))
    "split survives reload" (1, 2)
    (Atdb.provenance_counts db2);
  (match
     Atdb.lookup db2 ~kernel:"p2" ~global:(64, 1, 1) ~local:(16, 1, 1) ()
   with
  | Some e ->
      Alcotest.(check string) "predictor provenance kept"
        Atdb.tuned_by_predictor e.Atdb.e_tuned_by;
      Alcotest.(check string) "promoted version kept" "promoted"
        e.Atdb.e_version
  | None -> Alcotest.fail "predictor entry lost on reload");
  (* A v1 line: 12 tab-separated fields, no provenance column. *)
  let v1 =
    String.concat "\t"
      [ "atdb1"; "old"; "h1"; Atdb.host_platform; "64,1,1"; "16,1,1";
        "without_lm"; "wg-loop"; "8"; "1.100000"; "0.005000000";
        "0.004000000" ]
  in
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc (v1 ^ "\n");
  close_out oc;
  let db3 = Atdb.load file in
  Alcotest.(check int) "atdb1 line parses" 4 (Atdb.size db3);
  match
    Atdb.lookup db3 ~kernel:"old" ~global:(64, 1, 1) ~local:(16, 1, 1) ()
  with
  | Some e ->
      Alcotest.(check string) "atdb1 entries count as measured"
        Atdb.tuned_by_measured e.Atdb.e_tuned_by
  | None -> Alcotest.fail "atdb1 entry not loaded"

let check_tuned_of_entry () =
  let t = Atdb.tuned_of_entry (entry ()) in
  Alcotest.(check string) "version" "without_lm" t.Runtime.tn_version;
  Alcotest.(check bool) "path" true (t.Runtime.tn_path = Some Runtime.Wg_loop);
  Alcotest.(check bool) "lane width" true (t.Runtime.tn_lane_width = Some 8)

(** The acceptance property: with a populated DB installed, [Runtime.plan]
    resolves version / path / lane width by lookup — no execution of either
    kernel version happens anywhere in this test. *)
let check_plan_consults_db () =
  (* A forced path in the environment would shadow the tuner (by design:
     force > tuned); neutralize it for the duration of this test. *)
  let forced = Sys.getenv_opt "GROVER_FORCE_PATH" in
  Unix.putenv "GROVER_FORCE_PATH" "";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "GROVER_FORCE_PATH" (Option.value forced ~default:""))
  @@ fun () ->
  let case =
    List.find (fun (c : Kit.case) -> c.Kit.id = "NVD-MT") Grover_suite.Suite.all
  in
  let fn, _ = H.compile_version case H.With_lm in
  (* Explicit engine: only the closure-compiled engine is wg-vec capable,
     and CI runs this test under GROVER_ENGINE=tree too. *)
  let compiled = Interp.prepare ~engine:Interp.Compiled fn in
  let w = case.Kit.mk ~scale:4 in
  let cfg =
    { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
  in
  let default_path = (Runtime.plan compiled ~cfg ()).Runtime.path in
  Alcotest.(check bool) "barrier kernel defaults to wg-vec" true
    (default_path = Runtime.Wg_vec);
  let khash =
    Cache.kernel_hash ~source:case.Kit.source ~defines:case.Kit.defines
      ~name:case.Kit.kernel
  in
  let db = Atdb.load (Filename.concat (fresh_dir ()) "autotune.db") in
  Atdb.record db
    (entry ~kernel:case.Kit.kernel ~khash ~global:w.Kit.global
       ~local:w.Kit.local ~path:"wg-loop" ~lane_width:4 ());
  Atdb.install_tuner ~khash_of:(fun _ -> Some khash) db;
  Fun.protect ~finally:Atdb.clear_tuner (fun () ->
      let p = Runtime.plan compiled ~cfg () in
      Alcotest.(check bool) "plan takes the tuned path" true
        (p.Runtime.path = Runtime.Wg_loop);
      (* Drivers read version / lane width through the same hook. *)
      (match Runtime.lookup_tuned ~name:case.Kit.kernel ~cfg with
      | Some t ->
          Alcotest.(check string) "tuned version" "without_lm"
            t.Runtime.tn_version;
          Alcotest.(check bool) "tuned lane width" true
            (t.Runtime.tn_lane_width = Some 4)
      | None -> Alcotest.fail "tuner installed but lookup missed");
      (* A different geometry has no entry: static choice again. *)
      let gx, gy, gz = w.Kit.global in
      let other = { cfg with Runtime.global = (gx * 2, gy, gz) } in
      Alcotest.(check bool) "unknown geometry falls back" true
        ((Runtime.plan compiled ~cfg:other ()).Runtime.path = default_path);
      (* A stale khash (source changed since tuning) is ignored. *)
      Atdb.install_tuner ~khash_of:(fun _ -> Some "stale") db;
      Alcotest.(check bool) "stale entry ignored" true
        ((Runtime.plan compiled ~cfg ()).Runtime.path = default_path));
  Alcotest.(check bool) "cleared tuner restores static choice" true
    ((Runtime.plan compiled ~cfg ()).Runtime.path = default_path)

(* -- Env diagnostics ----------------------------------------------------------- *)

let check_env_fallbacks () =
  let with_env var v f =
    let old = Sys.getenv_opt var in
    Unix.putenv var v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
      f
  in
  with_env "GROVER_ENGINE" "bogus" (fun () ->
      Alcotest.(check bool) "unknown engine falls back to compiled" true
        (Interp.default_engine () = Interp.Compiled));
  with_env "GROVER_ENGINE" "tree" (fun () ->
      Alcotest.(check bool) "tree selects the tree engine" true
        (Interp.default_engine () = Interp.Tree));
  with_env "GROVER_LANE_WIDTH" "abc" (fun () ->
      Alcotest.(check bool) "unparseable width falls back to auto" true
        (Interp.lane_width_env () = None));
  with_env "GROVER_LANE_WIDTH" "4" (fun () ->
      Alcotest.(check bool) "numeric width honored" true
        (Interp.lane_width_env () = Some 4));
  with_env "GROVER_LANE_WIDTH" "99" (fun () ->
      Alcotest.(check bool) "oversize width clamped" true
        (Interp.lane_width_env () = Some 16))

let suite =
  [
    ( "cache.keys",
      [
        Alcotest.test_case "formatting-insensitive" `Quick
          check_formatting_insensitive;
        Alcotest.test_case "every dimension invalidates" `Quick
          check_each_dimension_invalidates;
        Alcotest.test_case "define order irrelevant" `Quick
          check_defines_order_insensitive;
        QCheck_alcotest.to_alcotest prop_constant_edits;
        QCheck_alcotest.to_alcotest prop_lane_widths;
      ] );
    ( "cache.determinism",
      [ Alcotest.test_case "artifacts bit-identical" `Quick check_determinism ]
    );
    ("cache.cached-vs-uncached", cached_uncached_cases);
    ( "cache.tiers",
      [
        Alcotest.test_case "disk tier roundtrip" `Quick check_disk_tier;
        Alcotest.test_case "lru eviction" `Quick check_lru_eviction;
        Alcotest.test_case "disk trim (lru by mtime)" `Quick check_disk_trim;
        Alcotest.test_case "disk budget (max bytes)" `Quick
          check_max_bytes_budget;
        Alcotest.test_case "batch compile" `Quick check_batch;
      ] );
    ( "cache.autotune",
      [
        Alcotest.test_case "db roundtrip" `Quick check_db_roundtrip;
        Alcotest.test_case "db provenance" `Quick check_db_provenance;
        Alcotest.test_case "tuned_of_entry" `Quick check_tuned_of_entry;
        Alcotest.test_case "plan consults db" `Quick check_plan_consults_db;
        Alcotest.test_case "env fallbacks" `Quick check_env_fallbacks;
      ] );
  ]
