(* Out-of-order command-queue tests: differential equivalence of queued
   vs sequential submission over the whole suite, buffer-hazard ordering
   (RAW/WAW/WAR), read/write barrier semantics, argument-mode derivation,
   plan clamping against the domain cap, error propagation through
   [finish], and a qcheck property over random event DAGs. *)

open Grover_ir
open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit

(* The container this suite develops on has a single hardware thread, so
   the default domain cap folds every parallel request to one domain.
   Concurrency tests opt into oversubscription explicitly. *)
let with_domain_cap (n : int) (f : unit -> 'a) : 'a =
  Runtime.set_domain_cap (Some n);
  Fun.protect ~finally:(fun () -> Runtime.set_domain_cap None) f

(* Global/Constant buffers only: sequential launches allocate their
   local/private scratch into the workload memory while queued launches
   use per-domain arenas, so only the user-visible spaces compare. *)
let global_storages (pls : H.prepared_launch list) =
  List.map
    (fun (pl : H.prepared_launch) ->
      pl.H.pl_w.Kit.mem.Memory.buffers
      |> List.filter (fun (b : Memory.buffer) ->
             match b.Memory.space with
             | Ssa.Global | Ssa.Constant -> true
             | _ -> false)
      |> List.map (fun (b : Memory.buffer) -> (b.Memory.bid, b.Memory.st))
      |> List.sort compare)
    pls

(* -- Differential: queued = sequential over the whole suite ----------------- *)

let check_queued_matches_sequential (engine : Interp.engine) () =
  let set =
    List.concat_map
      (fun c -> [ (c, H.With_lm); (c, H.Without_lm) ])
      Grover_suite.Suite.all
  in
  let pls_seq = H.prepare_launches ~engine ~jobs:2 ~scale:8 set in
  let pls_q = H.prepare_launches ~engine ~jobs:2 ~scale:8 set in
  let _, tot_seq = H.run_sequential pls_seq in
  let _, tot_q = with_domain_cap 3 (fun () -> H.run_queued ~domains:0 pls_q) in
  H.validate_launches pls_seq;
  H.validate_launches pls_q;
  Alcotest.(check bool)
    "global buffers bit-identical" true
    (global_storages pls_seq = global_storages pls_q);
  Alcotest.(check bool) "per-launch totals identical" true (tot_seq = tot_q)

(* -- Hazard ordering on real launches --------------------------------------- *)

let incr_src =
  "__kernel void incr(__global float *a) { int i = get_global_id(0); a[i] = a[i] + 1.0f; }"

let copy2_src =
  "__kernel void copy2(__global float *dst, __global const float *src) { int i = get_global_id(0); dst[i] = 2.0f * src[i]; }"

let test_hazard_chain () =
  (* incr;incr;incr on b (RAW/WAW serialize), copy2 a<-b (RAW on b),
     incr b again (WAR: must wait for copy2's read). Deterministic
     end-state regardless of pool width, and seqnos in hazard order. *)
  with_domain_cap 3 (fun () ->
      let inc = Runtime.compile_kernel incr_src ~name:"incr" in
      let cp = Runtime.compile_kernel copy2_src ~name:"copy2" in
      let mem = Memory.create () in
      let n = 64 in
      let a = Memory.alloc mem Ssa.F32 n in
      let b = Memory.alloc mem Ssa.F32 n in
      let q = Queue.create () in
      let cfg =
        { Runtime.global = (n, 1, 1); local = (8, 1, 1); queues = 1 }
      in
      let e1 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      let e2 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      let e3 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      let ec =
        Queue.enqueue_nd_range q cp ~cfg
          ~args:[ Runtime.Abuf a; Runtime.Abuf b ] ()
      in
      let e4 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      Queue.finish q;
      let seq ev = Event.seqno ev in
      Alcotest.(check bool) "incr chain ordered" true
        (seq e1 < seq e2 && seq e2 < seq e3);
      Alcotest.(check bool) "copy after third incr (RAW)" true
        (seq e3 < seq ec);
      Alcotest.(check bool) "fourth incr after copy (WAR)" true
        (seq ec < seq e4);
      Array.iter
        (fun v -> Alcotest.(check (float 0.0)) "b = 4 incrs" 4.0 v)
        (Memory.to_float_array b);
      Array.iter
        (fun v -> Alcotest.(check (float 0.0)) "a = 2 * (3 incrs)" 6.0 v)
        (Memory.to_float_array a))

let test_read_write_barriers () =
  with_domain_cap 2 (fun () ->
      let inc = Runtime.compile_kernel incr_src ~name:"incr" in
      let mem = Memory.create () in
      let n = 32 in
      let b = Memory.alloc mem Ssa.F32 n in
      let q = Queue.create () in
      let cfg =
        { Runtime.global = (n, 1, 1); local = (8, 1, 1); queues = 1 }
      in
      let e1 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      (* The read barrier completes only after the writer... *)
      let er = Queue.enqueue_read q b () in
      (* ...and a write barrier fences later touches behind it. *)
      let ew = Queue.enqueue_write q b () in
      let e2 = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      let em = Queue.enqueue_marker q () in
      Queue.wait q er;
      Alcotest.(check bool) "wait completed the read barrier" true
        (Event.is_complete er);
      Queue.finish q;
      let seq ev = Event.seqno ev in
      Alcotest.(check bool) "read barrier after writer" true (seq e1 < seq er);
      Alcotest.(check bool) "write barrier after reader (WAR)" true
        (seq er < seq ew);
      Alcotest.(check bool) "second launch after write barrier" true
        (seq ew < seq e2);
      Alcotest.(check bool) "marker last" true (seq e2 < seq em);
      (* Profiling timestamps: queued <= submitted <= completed on every
         event, and a dependent command is submitted no earlier than its
         dependency completed. *)
      List.iter
        (fun ev ->
          let q, s, c = Event.profile ev in
          Alcotest.(check bool) "queued <= submitted <= completed" true
            (q <= s && s <= c))
        [ e1; er; ew; e2; em ];
      let _, s2, _ = Event.profile e2 and _, _, cw = Event.profile ew in
      Alcotest.(check bool) "dependent submitted after dep completed" true
        (cw <= s2);
      Array.iter
        (fun v -> Alcotest.(check (float 0.0)) "b incremented twice" 2.0 v)
        (Memory.to_float_array b))

(* -- Argument-mode derivation ------------------------------------------------ *)

let test_arg_modes () =
  let inc = Runtime.compile_kernel incr_src ~name:"incr" in
  let cp = Runtime.compile_kernel copy2_src ~name:"copy2" in
  (match Queue.arg_modes inc.Interp.fn with
  | [| (r, w) |] ->
      Alcotest.(check bool) "incr reads its arg" true r;
      Alcotest.(check bool) "incr writes its arg" true w
  | _ -> Alcotest.fail "incr: expected one arg mode");
  match Queue.arg_modes cp.Interp.fn with
  | [| (dr, dw); (sr, sw) |] ->
      Alcotest.(check bool) "copy2 dst write-only" true ((not dr) && dw);
      Alcotest.(check bool) "copy2 src read-only" true (sr && not sw)
  | _ -> Alcotest.fail "copy2: expected two arg modes"

(* -- Plan clamping ----------------------------------------------------------- *)

let test_plan_clamp () =
  let inc = Runtime.compile_kernel incr_src ~name:"incr" in
  let cfg =
    { Runtime.global = (64, 1, 1); local = (8, 1, 1); queues = 1 }
  in
  with_domain_cap 1 (fun () ->
      let p = Runtime.plan inc ~cfg ~domains:4 () in
      Alcotest.(check int) "request recorded" 4 p.Runtime.domains_requested;
      Alcotest.(check int) "cap 1 folds to one domain" 1 p.Runtime.domains_used;
      Alcotest.(check bool) "clamp reported" true p.Runtime.domains_clamped);
  with_domain_cap 4 (fun () ->
      let p = Runtime.plan inc ~cfg ~domains:4 () in
      Alcotest.(check int) "8 groups feed 4 domains" 4 p.Runtime.domains_used;
      Alcotest.(check bool) "no clamp at cap" false p.Runtime.domains_clamped;
      (* Two groups cannot profitably feed four domains. *)
      let small =
        { Runtime.global = (16, 1, 1); local = (8, 1, 1); queues = 1 }
      in
      let p = Runtime.plan inc ~cfg:small ~domains:4 () in
      Alcotest.(check int) "share clamp" 1 p.Runtime.domains_used;
      Alcotest.(check bool) "share clamp reported" true
        p.Runtime.domains_clamped;
      Alcotest.(check int) "auto resolves to the cap" 4
        (Runtime.resolve_domains 0))

(* -- Error propagation -------------------------------------------------------- *)

let test_finish_raises () =
  with_domain_cap 2 (fun () ->
      let inc = Runtime.compile_kernel incr_src ~name:"incr" in
      let mem = Memory.create () in
      let b = Memory.alloc mem Ssa.F32 16 in
      let q = Queue.create () in
      (* 64 work-items over a 16-element buffer: out of bounds. *)
      let cfg =
        { Runtime.global = (64, 1, 1); local = (8, 1, 1); queues = 1 }
      in
      let ev = Queue.enqueue_nd_range q inc ~cfg ~args:[ Runtime.Abuf b ] () in
      let raised =
        match Queue.finish q with
        | () -> false
        | exception _ -> true
      in
      Alcotest.(check bool) "finish re-raises the launch failure" true raised;
      Alcotest.(check bool) "event completed with an error" true
        (Event.is_complete ev && Event.error ev <> None))

(* -- Random event DAGs -------------------------------------------------------- *)

(* Each command increments one of three buffers and waits on a random
   subset of earlier events (on top of the implicit hazards). After
   [finish]: everything completed, every event's completion seqno exceeds
   all of its dependencies' (explicit waits and same-buffer program
   order), and each buffer holds exactly its increment count. *)
let prop_dag_order =
  QCheck.Test.make ~count:30 ~name:"queue: random DAGs complete in dep order"
    QCheck.(
      list_of_size (Gen.int_range 1 12)
        (pair (int_bound 2) (small_list (int_bound 11))))
    (fun cmds ->
      with_domain_cap 3 (fun () ->
          let inc = Runtime.compile_kernel incr_src ~name:"incr" in
          let mem = Memory.create () in
          let n = 32 in
          let bufs = Array.init 3 (fun _ -> Memory.alloc mem Ssa.F32 n) in
          let q = Queue.create () in
          let cfg =
            { Runtime.global = (n, 1, 1); local = (8, 1, 1); queues = 1 }
          in
          let evs =
            List.fold_left
              (fun acc (bi, wix) ->
                let earlier =
                  Array.of_list (List.rev_map (fun (ev, _, _) -> ev) acc)
                in
                let wait =
                  List.filter_map
                    (fun w ->
                      if Array.length earlier = 0 then None
                      else Some earlier.(w mod Array.length earlier))
                    wix
                in
                let ev =
                  Queue.enqueue_nd_range q inc ~cfg
                    ~args:[ Runtime.Abuf bufs.(bi) ]
                    ~wait ()
                in
                (ev, bi, wait) :: acc)
              [] cmds
            |> List.rev
          in
          Queue.finish q;
          let ok_complete =
            List.for_all (fun (ev, _, _) -> Event.is_complete ev) evs
          in
          let ok_waits =
            List.for_all
              (fun (ev, _, wait) ->
                List.for_all (fun w -> Event.seqno w < Event.seqno ev) wait)
              evs
          in
          (* Same-buffer commands serialize in enqueue order. *)
          let ok_hazards =
            List.for_all
              (fun bi ->
                let seqs =
                  List.filter_map
                    (fun (ev, b, _) ->
                      if b = bi then Some (Event.seqno ev) else None)
                    evs
                in
                List.sort compare seqs = seqs)
              [ 0; 1; 2 ]
          in
          let counts = Array.make 3 0 in
          List.iter (fun (_, bi, _) -> counts.(bi) <- counts.(bi) + 1) evs;
          let ok_values =
            Array.for_all2
              (fun b c ->
                Array.for_all
                  (fun v -> v = float_of_int c)
                  (Memory.to_float_array b))
              bufs counts
          in
          ok_complete && ok_waits && ok_hazards && ok_values))

let suite =
  [
    ( "queue",
      [
        Alcotest.test_case "queued matches sequential (compiled)" `Slow
          (check_queued_matches_sequential Interp.Compiled);
        Alcotest.test_case "queued matches sequential (tree)" `Slow
          (check_queued_matches_sequential Interp.Tree);
        Alcotest.test_case "buffer hazards serialize launches" `Quick
          test_hazard_chain;
        Alcotest.test_case "read/write barriers and markers" `Quick
          test_read_write_barriers;
        Alcotest.test_case "arg modes from IR provenance" `Quick test_arg_modes;
        Alcotest.test_case "plan clamps to the domain cap" `Quick
          test_plan_clamp;
        Alcotest.test_case "finish re-raises launch failures" `Quick
          test_finish_raises;
        QCheck_alcotest.to_alcotest prop_dag_order;
      ] );
  ]
