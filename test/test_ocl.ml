(* Execution-engine tests: interpreter correctness, barrier semantics, and
   semantic equivalence of kernels before/after Grover. *)

open Grover_ir
open Grover_ocl

let mt_source =
  {|
#define S 8
__kernel void transpose(__global float *out, __global const float *in,
                        int W, int H) {
  __local float lm[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float val = lm[lx][ly];
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  out[gy * H + gx] = val;
}
|}

let launch_1d c mem args ~n ~wg =
  Runtime.launch c
    ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
    ~args ~mem ()

(* -- Basic kernels -------------------------------------------------------- *)

let test_vector_add () =
  let src =
    "__kernel void vadd(__global float *c, __global const float *a, __global const float *b) { int i = get_global_id(0); c[i] = a[i] + b[i]; }"
  in
  let c = Runtime.compile_kernel src ~name:"vadd" in
  let mem = Memory.create () in
  let n = 64 in
  let bc = Memory.alloc mem Ssa.F32 n in
  let ba = Memory.alloc mem Ssa.F32 n in
  let bb = Memory.alloc mem Ssa.F32 n in
  Memory.fill_floats ba (fun i -> float_of_int i);
  Memory.fill_floats bb (fun i -> float_of_int (2 * i));
  ignore (launch_1d c mem [ Runtime.Abuf bc; Runtime.Abuf ba; Runtime.Abuf bb ] ~n ~wg:16);
  let out = Memory.to_float_array bc in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "c[%d]" i) (float_of_int (3 * i)) v)
    out

let test_loop_sum () =
  let src =
    "__kernel void s(__global int *out, __global const int *a, int n) { int acc = 0; for (int i = 0; i < n; i++) acc += a[i]; out[get_global_id(0)] = acc; }"
  in
  let c = Runtime.compile_kernel src ~name:"s" in
  let mem = Memory.create () in
  let n = 10 in
  let out = Memory.alloc mem Ssa.I32 1 in
  let a = Memory.alloc mem Ssa.I32 n in
  Memory.fill_ints a (fun i -> i + 1);
  ignore
    (launch_1d c mem [ Runtime.Abuf out; Runtime.Abuf a; Runtime.Aint n ] ~n:1 ~wg:1);
  Alcotest.(check int) "sum 1..10" 55 (Memory.to_int_array out).(0)

let test_conditional () =
  let src =
    "__kernel void f(__global int *out) { int i = get_global_id(0); if (i % 2 == 0) out[i] = i; else out[i] = -i; }"
  in
  let c = Runtime.compile_kernel src ~name:"f" in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.I32 16 in
  ignore (launch_1d c mem [ Runtime.Abuf out ] ~n:16 ~wg:4);
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "out[%d]" i)
        (if i mod 2 = 0 then i else -i)
        v)
    (Memory.to_int_array out)

let test_vector_types () =
  let src =
    "__kernel void f(__global float4 *out, __global const float4 *a) { int i = get_global_id(0); float4 v = a[i]; out[i] = v * v; }"
  in
  let c = Runtime.compile_kernel src ~name:"f" in
  let mem = Memory.create () in
  let out = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) 4 in
  let a = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) 4 in
  Memory.fill_floats a (fun i -> float_of_int i);
  ignore (launch_1d c mem [ Runtime.Abuf out; Runtime.Abuf a ] ~n:4 ~wg:2);
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "lane %d" i)
        (float_of_int (i * i))
        v)
    (Memory.to_float_array out)

let test_math_builtins () =
  let src =
    "__kernel void f(__global float *out, __global const float *a) { int i = get_global_id(0); out[i] = sqrt(a[i]) + rsqrt(a[i]) + fabs(-a[i]); }"
  in
  let c = Runtime.compile_kernel src ~name:"f" in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.F32 4 in
  let a = Memory.alloc mem Ssa.F32 4 in
  Memory.fill_floats a (fun i -> float_of_int (i + 1));
  ignore (launch_1d c mem [ Runtime.Abuf out; Runtime.Abuf a ] ~n:4 ~wg:4);
  Array.iteri
    (fun i v ->
      let x = float_of_int (i + 1) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "out[%d]" i)
        (sqrt x +. (1.0 /. sqrt x) +. x)
        v)
    (Memory.to_float_array out)

(* -- Barrier semantics ------------------------------------------------------ *)

let test_barrier_reversal () =
  (* Work-items stage their id, then read their neighbour's slot: correct
     only if the barrier actually synchronises the group. *)
  let src =
    {|__kernel void rev(__global int *out) {
        __local int tmp[16];
        int l = get_local_id(0);
        int n = get_local_size(0);
        tmp[l] = l;
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = tmp[n - 1 - l];
      }|}
  in
  let c = Runtime.compile_kernel src ~name:"rev" in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.I32 32 in
  ignore (launch_1d c mem [ Runtime.Abuf out ] ~n:32 ~wg:16);
  Array.iteri
    (fun i v ->
      (* tmp holds local ids, so the reversal yields 15 - (i mod 16). *)
      Alcotest.(check int) (Printf.sprintf "out[%d]" i) (15 - (i mod 16)) v)
    (Memory.to_int_array out)

let test_barrier_rounds_counted () =
  let src =
    {|__kernel void f(__global int *out) {
        __local int tmp[4];
        tmp[get_local_id(0)] = 1;
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = tmp[0];
        barrier(CLK_LOCAL_MEM_FENCE);
      }|}
  in
  let c = Runtime.compile_kernel src ~name:"f" in
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.I32 4 in
  let rounds = ref 0 in
  ignore
    (Runtime.launch c
       ~cfg:{ Runtime.global = (4, 1, 1); local = (4, 1, 1); queues = 1 }
       ~args:[ Runtime.Abuf out ] ~mem
       ~on_group:(fun s -> rounds := s.Trace.barrier_rounds)
       ());
  Alcotest.(check int) "two barrier rounds" 2 !rounds

(* -- Transpose: with local memory, and after Grover -------------------------- *)

let run_transpose fn_compiled n =
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Ssa.F32 (n * n) in
  Memory.fill_floats inp (fun i -> float_of_int i +. 0.25);
  ignore
    (Runtime.launch fn_compiled
       ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
       ~args:
         [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ]
       ~mem ());
  (Memory.to_float_array inp, Memory.to_float_array out)

let test_transpose_with_local () =
  let c = Runtime.compile_kernel mt_source ~name:"transpose" in
  let n = 32 in
  let inp, out = run_transpose c n in
  for r = 0 to n - 1 do
    for cl = 0 to n - 1 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "out[%d][%d]" r cl)
        inp.((cl * n) + r)
        out.((r * n) + cl)
    done
  done

let test_transpose_grover_equivalent () =
  (* Run the same kernel after Grover removed local memory: bit-identical. *)
  let fn =
    match Lower.compile mt_source with [ f ] -> f | _ -> assert false
  in
  Grover_passes.Pipeline.normalize fn;
  let outcome = Grover_core.Grover.run fn in
  Alcotest.(check (list string)) "lm transformed" [ "lm" ]
    outcome.Grover_core.Grover.transformed;
  let c = Interp.prepare fn in
  let n = 32 in
  let inp, out = run_transpose c n in
  for r = 0 to n - 1 do
    for cl = 0 to n - 1 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "out[%d][%d]" r cl)
        inp.((cl * n) + r)
        out.((r * n) + cl)
    done
  done

let test_transpose_grover_no_local_traffic () =
  let fn =
    match Lower.compile mt_source with [ f ] -> f | _ -> assert false
  in
  Grover_passes.Pipeline.normalize fn;
  ignore (Grover_core.Grover.run fn);
  let c = Interp.prepare fn in
  let mem = Memory.create () in
  let n = 16 in
  let out = Memory.alloc mem Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Ssa.F32 (n * n) in
  let totals =
    Runtime.launch c
      ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
      ~args:
        [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ]
      ~mem ()
  in
  Alcotest.(check int) "no local accesses" 0 totals.Trace.t_local_accesses;
  Alcotest.(check int) "no barriers" 0 totals.Trace.t_barriers

(* -- Parallel (multi-domain) execution ----------------------------------------- *)

(* Explicit domain requests are clamped to the host's recommended domain
   count (the over-provisioning fix); these tests exercise the actual
   multi-domain dispatch machinery, so they lift the cap for their
   duration — oversubscribing a small host is fine for correctness
   checks. *)
let with_domain_cap (n : int) (f : unit -> 'a) : 'a =
  Runtime.set_domain_cap (Some n);
  Fun.protect ~finally:(fun () -> Runtime.set_domain_cap None) f

let test_parallel_matches_sequential () =
  let c = Runtime.compile_kernel mt_source ~name:"transpose" in
  let n = 64 in
  let run ~domains =
    let mem = Memory.create () in
    let out = Memory.alloc mem Ssa.F32 (n * n) in
    let inp = Memory.alloc mem Ssa.F32 (n * n) in
    Memory.fill_floats inp (fun i -> float_of_int i);
    ignore
      (Runtime.launch c
         ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
         ~args:
           [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ]
         ~mem ~domains ());
    Memory.to_float_array out
  in
  let seq = run ~domains:1
  and par = with_domain_cap 4 (fun () -> run ~domains:4) in
  Alcotest.(check bool) "parallel result matches sequential" true (seq = par)

let test_parallel_rejects_tracing () =
  let c = Runtime.compile_kernel mt_source ~name:"transpose" in
  let mem = Memory.create () in
  let n = 16 in
  let out = Memory.alloc mem Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Ssa.F32 (n * n) in
  match
    with_domain_cap 2 (fun () ->
        Runtime.launch c
          ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
          ~args:
            [
              Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n;
            ]
          ~mem
          ~on_group:(fun _ -> ())
          ~domains:2 ())
  with
  | exception Runtime.Launch_error _ -> ()
  | _ -> Alcotest.fail "tracing + parallel must be rejected"

(* -- Differential: compiled engine vs the tree-walk oracle --------------------
   Every suite kernel, in both versions, must produce bit-identical buffers
   and identical launch totals under the closure-compiled engine and the
   legacy tree-walking engine (kept exactly for this test). *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit

(* Buffer contents by allocation id; Private/Local scratch included, so the
   comparison also covers local staging and private spill arrays. [compare]
   rather than [=] so NaN payloads compare deterministically. *)
let snapshot_buffers (mem : Memory.t) : (int * Ssa.space * Memory.storage) list =
  mem.Memory.buffers
  |> List.map (fun (b : Memory.buffer) -> (b.Memory.bid, b.Memory.space, b.Memory.st))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let run_engine (case : Kit.case) (v : H.version) ~(engine : Interp.engine) :
    Trace.totals * (int * Ssa.space * Memory.storage) list * (unit, string) result =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare ~engine fn in
  let w = case.Kit.mk ~scale:8 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ()
  in
  (totals, snapshot_buffers w.Kit.mem, w.Kit.check ())

let check_engines_agree (case : Kit.case) (v : H.version) () =
  let t_tot, t_bufs, t_valid = run_engine case v ~engine:Interp.Tree in
  let c_tot, c_bufs, c_valid = run_engine case v ~engine:Interp.Compiled in
  (match t_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "tree engine invalid output: %s" m);
  (match c_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "compiled engine invalid output: %s" m);
  Alcotest.(check bool) "identical launch totals" true (t_tot = c_tot);
  Alcotest.(check bool) "bit-identical buffers" true (compare t_bufs c_bufs = 0)

let differential_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.map
        (fun (v, vn) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s" case.Kit.id vn)
            `Quick
            (check_engines_agree case v))
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

let diff_prop_source =
  {|__kernel void k(__global float *out, __global const float *a, int n) {
      __local float tmp[8];
      int l = get_local_id(0);
      int g = get_global_id(0);
      tmp[l] = a[g] * 0.5f;
      barrier(CLK_LOCAL_MEM_FENCE);
      float acc = 0.0f;
      for (int i = 0; i <= l; i++) acc += tmp[i];
      if (g % 2 == 0) out[g] = acc; else out[g] = -acc + (float)n;
    }|}

let prop_engines_agree =
  QCheck.Test.make ~name:"engines agree on random launch shapes" ~count:25
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (groups, wg) ->
      let n = groups * wg in
      let run engine =
        let fn =
          match Lower.compile diff_prop_source with
          | [ f ] -> f
          | _ -> assert false
        in
        Grover_passes.Pipeline.normalize fn;
        let c = Interp.prepare ~engine fn in
        let mem = Memory.create () in
        let out = Memory.alloc mem Ssa.F32 n in
        let a = Memory.alloc mem Ssa.F32 n in
        Memory.fill_floats a (fun i -> float_of_int (i - 3) /. 7.0);
        let totals =
          Runtime.launch c
            ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
            ~args:[ Runtime.Abuf out; Runtime.Abuf a; Runtime.Aint n ]
            ~mem ()
        in
        (totals, Memory.to_float_array out)
      in
      let t_tot, t_out = run Interp.Tree in
      let c_tot, c_out = run Interp.Compiled in
      t_tot = c_tot && compare t_out c_out = 0)

(* -- Differential: fiberless fast path vs the fiber scheduler -----------------
   Statically barrier-free kernels (every Grover-transformed suite version,
   plus barrier-free originals) execute without fibers; [~force_fibers:true]
   runs the same launch under the effect-handler scheduler. Both paths must
   produce bit-identical buffers and identical totals. Kernels with
   barriers take the fiber path either way, so the check is uniform over
   the whole suite x both versions. *)

let run_path (case : Kit.case) (v : H.version) ~(force_fibers : bool) :
    Trace.totals * (int * Ssa.space * Memory.storage) list * (unit, string) result =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare fn in
  let w = case.Kit.mk ~scale:8 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ~force_fibers ()
  in
  (totals, snapshot_buffers w.Kit.mem, w.Kit.check ())

let check_paths_agree (case : Kit.case) (v : H.version) () =
  let f_tot, f_bufs, f_valid = run_path case v ~force_fibers:false in
  let s_tot, s_bufs, s_valid = run_path case v ~force_fibers:true in
  (match f_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fast path invalid output: %s" m);
  (match s_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fiber path invalid output: %s" m);
  Alcotest.(check bool) "identical launch totals" true (f_tot = s_tot);
  Alcotest.(check bool) "bit-identical buffers" true (compare f_bufs s_bufs = 0)

let fastpath_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.map
        (fun (v, vn) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s" case.Kit.id vn)
            `Quick
            (check_paths_agree case v))
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

(* -- Differential: wg-loop region executor vs the fiber scheduler -------------
   The barrier-region path replaces fibers for kernels whose barriers all
   sit in group-uniform control flow. Its work-item sweep must reproduce
   the fiber scheduler bit for bit: same buffers (local and private
   scratch included, so context spill/restore is covered) and the same
   launch totals (so the trace stream — cost model, barrier rounds —
   is unchanged). Checked over the whole suite x both kernel versions x
   both engines; on the tree engine the default plan degrades to
   fiberless/fiber, which keeps the comparison meaningful there too. *)

let run_sched (case : Kit.case) (v : H.version) ~(engine : Interp.engine)
    ~(force_fibers : bool) :
    Trace.totals * (int * Ssa.space * Memory.storage) list * (unit, string) result =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare ~engine fn in
  let w = case.Kit.mk ~scale:8 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ~force_fibers ()
  in
  (totals, snapshot_buffers w.Kit.mem, w.Kit.check ())

let check_wgloop_agrees (case : Kit.case) (v : H.version)
    (engine : Interp.engine) () =
  let d_tot, d_bufs, d_valid = run_sched case v ~engine ~force_fibers:false in
  let f_tot, f_bufs, f_valid = run_sched case v ~engine ~force_fibers:true in
  (match d_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "default path invalid output: %s" m);
  (match f_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fiber path invalid output: %s" m);
  Alcotest.(check bool) "identical launch totals" true (d_tot = f_tot);
  Alcotest.(check bool) "bit-identical buffers" true (compare d_bufs f_bufs = 0)

let wgloop_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.concat_map
        (fun (v, vn) ->
          List.map
            (fun (e, en) ->
              Alcotest.test_case
                (Printf.sprintf "%s %s %s" case.Kit.id vn en)
                `Quick
                (check_wgloop_agrees case v e))
            [ (Interp.Compiled, "compiled"); (Interp.Tree, "tree") ])
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

(* -- Differential: wg-vec lane batching vs wg-loop vs the fiber scheduler ----
   The lane-batched executor changes the innermost execution
   representation (struct-of-arrays lane slots, uniform values computed
   once per batch), so it is held to the same standard as every other
   path: bit-identical buffers and identical launch totals against the
   one-work-item region sweep and the fiber scheduler, over the whole
   suite x both kernel versions x both engines. [force_path] degrades
   exactly like the default plan (wg-vec -> wg-loop -> fiberless/fiber),
   so kernels the lane compiler rejects still run — just further down
   the ladder. *)

let run_forced (case : Kit.case) (v : H.version) ~(engine : Interp.engine)
    ~(force_path : Runtime.path) :
    Trace.totals * (int * Ssa.space * Memory.storage) list * (unit, string) result =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare ~engine fn in
  let w = case.Kit.mk ~scale:8 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ~force_path ()
  in
  (totals, snapshot_buffers w.Kit.mem, w.Kit.check ())

let check_wgvec_agrees (case : Kit.case) (v : H.version)
    (engine : Interp.engine) () =
  let runs =
    List.map
      (fun (p, pn) ->
        let tot, bufs, valid = run_forced case v ~engine ~force_path:p in
        (match valid with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s path invalid output: %s" pn m);
        (pn, tot, bufs))
      [ (Runtime.Wg_vec, "wg-vec"); (Runtime.Wg_loop, "wg-loop");
        (Runtime.Fiber, "fiber") ]
  in
  match runs with
  | (_, ref_tot, ref_bufs) :: rest ->
      List.iter
        (fun (pn, tot, bufs) ->
          Alcotest.(check bool)
            (Printf.sprintf "wg-vec vs %s: identical launch totals" pn)
            true (ref_tot = tot);
          Alcotest.(check bool)
            (Printf.sprintf "wg-vec vs %s: bit-identical buffers" pn)
            true
            (compare ref_bufs bufs = 0))
        rest
  | [] -> assert false

let wgvec_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.concat_map
        (fun (v, vn) ->
          List.map
            (fun (e, en) ->
              Alcotest.test_case
                (Printf.sprintf "%s %s %s" case.Kit.id vn en)
                `Quick
                (check_wgvec_agrees case v e))
            [ (Interp.Compiled, "compiled"); (Interp.Tree, "tree") ])
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

(* Non-vacuousness: the differential above only exercises the region
   executors if the default plan actually selects them. Every with-lm
   suite kernel that has barriers must compile region metadata (all suite
   barriers sit in group-uniform control flow), and — unless the run
   forces a path via GROVER_FORCE_PATH — must plan as wg-vec when its
   regions are lane-capable and wg-loop otherwise. At least one suite
   kernel must take the lane-batched path, or the wg-vec differentials
   above would be vacuous. *)
let test_wgloop_selected_for_suite () =
  let forced =
    match Sys.getenv_opt "GROVER_FORCE_PATH" with
    | None | Some "" -> false
    | Some _ -> true
  in
  let barrier_kernels = ref 0 and wgvec_kernels = ref 0 in
  List.iter
    (fun (case : Kit.case) ->
      let fn, _ = H.compile_version case H.With_lm in
      let c = Interp.prepare ~engine:Interp.Compiled fn in
      if c.Interp.has_barrier then begin
        incr barrier_kernels;
        Alcotest.(check bool)
          (Printf.sprintf "%s: region metadata compiled" case.Kit.id)
          true (Runtime.wg_capable c);
        let expected =
          if Runtime.wgvec_capable c then begin
            incr wgvec_kernels;
            "wg-vec"
          end
          else "wg-loop"
        in
        if not forced then
          let w = case.Kit.mk ~scale:8 in
          let plan =
            Runtime.plan c
              ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
              ()
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: planned path" case.Kit.id)
            expected (Runtime.path_name plan)
      end)
    Grover_suite.Suite.all;
  Alcotest.(check bool) "suite has with-lm barrier kernels" true
    (!barrier_kernels >= 1);
  Alcotest.(check bool) "suite has lane-capable (wg-vec) barrier kernels" true
    (!wgvec_kernels >= 1)

(* A kernel with an int, a float and a boxed (vector) value all live
   across its barrier: every context-spill kind is exercised. *)
let spill_prop_source =
  {|__kernel void k(__global float4 *vout, __global float *sout,
                    __global const float4 *a, __global const float *b, int n) {
      __local float tmp[64];
      int l = get_local_id(0);
      int g = get_global_id(0);
      int li = l * 2 + 1;
      float fv = b[g] * 0.5f;
      float4 v = a[g];
      tmp[l] = b[g] + (float)n;
      barrier(CLK_LOCAL_MEM_FENCE);
      sout[g] = tmp[(l + 1) % get_local_size(0)] + fv + (float)li;
      vout[g] = v * v;
    }|}

let test_spill_kernel_forms_regions () =
  let fn =
    match Lower.compile spill_prop_source with [ f ] -> f | _ -> assert false
  in
  Grover_passes.Pipeline.normalize fn;
  match Regions.form fn with
  | Regions.Formed i ->
      Alcotest.(check int) "two regions" 2 i.Regions.n_regions;
      Alcotest.(check bool) "at least int+float+vector live across" true
        (Regions.spill_footprint i >= 3)
  | Regions.Fallback r -> Alcotest.failf "unexpected fallback: %s" r

(* Region-boundary spilling preserves results: under random launch
   shapes, the wg-loop default plan and the fiber scheduler agree on
   buffers and totals for the every-spill-kind kernel above. *)
let prop_spill_preserves_results =
  QCheck.Test.make ~name:"region spilling preserves results" ~count:25
    QCheck.(pair (int_range 1 8) (int_range 1 16))
    (fun (groups, wg) ->
      let n = groups * wg in
      let run force_fibers =
        let fn =
          match Lower.compile spill_prop_source with
          | [ f ] -> f
          | _ -> assert false
        in
        Grover_passes.Pipeline.normalize fn;
        let c = Interp.prepare fn in
        let mem = Memory.create () in
        let vout = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) n in
        let sout = Memory.alloc mem Ssa.F32 n in
        let a = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) n in
        let b = Memory.alloc mem Ssa.F32 n in
        Memory.fill_floats a (fun i -> float_of_int (i - 5) /. 3.0);
        Memory.fill_floats b (fun i -> float_of_int (i * 7 mod 11) /. 4.0);
        let totals =
          Runtime.launch c
            ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
            ~args:
              [ Runtime.Abuf vout; Runtime.Abuf sout; Runtime.Abuf a;
                Runtime.Abuf b; Runtime.Aint n ]
            ~mem ~force_fibers ()
        in
        (totals, snapshot_buffers mem)
      in
      let d_tot, d_bufs = run false in
      let f_tot, f_bufs = run true in
      d_tot = f_tot && compare d_bufs f_bufs = 0)

(* Lane width is an implementation knob, not a semantic one: W ∈ {1,4,8}
   must be output-invariant for every launch shape, including group sizes
   that are not a multiple of W (the final batch of a sweep shrinks to
   the remainder — the peeled tail). The every-spill-kind kernel above
   runs under the forced wg-vec plan at each width and is compared
   against the fiber scheduler bit for bit. *)
let prop_lane_width_invariant =
  QCheck.Test.make ~name:"lane width W in {1,4,8} is output-invariant"
    ~count:20
    QCheck.(triple (int_range 1 6) (int_range 1 16) (oneofl [ 1; 4; 8 ]))
    (fun (groups, wg, width) ->
      let n = groups * wg in
      let run mode =
        let fn =
          match Lower.compile spill_prop_source with
          | [ f ] -> f
          | _ -> assert false
        in
        Grover_passes.Pipeline.normalize fn;
        let mem = Memory.create () in
        let vout = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) n in
        let sout = Memory.alloc mem Ssa.F32 n in
        let a = Memory.alloc mem (Ssa.Vec (Ssa.F32, 4)) n in
        let b = Memory.alloc mem Ssa.F32 n in
        Memory.fill_floats a (fun i -> float_of_int (i - 5) /. 3.0);
        Memory.fill_floats b (fun i -> float_of_int (i * 7 mod 11) /. 4.0);
        let c, force_path =
          match mode with
          | `Lanes w -> (Interp.prepare ~lane_width:w fn, Some Runtime.Wg_vec)
          | `Fibers -> (Interp.prepare fn, Some Runtime.Fiber)
        in
        let totals =
          Runtime.launch c
            ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
            ~args:
              [ Runtime.Abuf vout; Runtime.Abuf sout; Runtime.Abuf a;
                Runtime.Abuf b; Runtime.Aint n ]
            ~mem ?force_path ()
        in
        (totals, snapshot_buffers mem)
      in
      let v_tot, v_bufs = run (`Lanes width) in
      let f_tot, f_bufs = run `Fibers in
      v_tot = f_tot && compare v_bufs f_bufs = 0)

(* -- Masked lane execution (divergent diamonds) -------------------------------
   A guarded-diamond kernel: a boundary clamp (triangle — one arm is the
   fall-through edge) and a two-armed pure value diamond, both divergent,
   plus a barrier so wg-vec, wg-loop and fiber all execute distinct
   machinery. The diamonds must classify as lane-capable-with-mask and the
   masked batch must stay bit-identical to every scalar oracle. *)

let lower_one src =
  let fn = match Lower.compile src with [ f ] -> f | _ -> assert false in
  Grover_passes.Pipeline.normalize fn;
  fn

let masked_diamond_source =
  {|__kernel void k(__global float *out, __global const float *a, int n) {
      __local float tile[64];
      int g = get_global_id(0);
      int l = get_local_id(0);
      int idx = g;
      if (idx >= n) idx = n - 1;
      float x = a[idx];
      float y;
      if (x > 0.5f) { y = x * 2.0f; } else { y = x - 3.0f; }
      tile[l] = y;
      barrier(CLK_LOCAL_MEM_FENCE);
      out[g] = tile[(l + 1) % get_local_size(0)] + (float)idx;
    }|}

let test_masked_diamonds_classify () =
  let fn = lower_one masked_diamond_source in
  match Regions.form fn with
  | Regions.Formed i ->
      Alcotest.(check int) "two regions" 2 i.Regions.n_regions;
      (match i.Regions.lane_entries.(0) with
      | Regions.Lane_masked d ->
          Alcotest.(check int) "two masked diamonds" 2 d
      | lv ->
          Alcotest.failf "region 0 should be masked, got: %s"
            (Regions.verdict_string lv));
      (match i.Regions.lane_entries.(1) with
      | Regions.Lane -> ()
      | lv ->
          Alcotest.failf "region 1 should be plain lane batch, got: %s"
            (Regions.verdict_string lv))
  | Regions.Fallback r -> Alcotest.failf "unexpected fallback: %s" r

let test_divergent_store_still_bails () =
  let fn =
    lower_one
      {|__kernel void f(__global int *out, int n) {
          __local int tmp[8];
          int l = get_local_id(0);
          if (l < 4) { tmp[l] = l; }
          barrier(CLK_LOCAL_MEM_FENCE);
          out[get_global_id(0)] = tmp[l % 4] + n;
        }|}
  in
  match Regions.form fn with
  | Regions.Formed i -> (
      match i.Regions.lane_entries.(0) with
      | Regions.Scalar r ->
          Alcotest.(check bool)
            (Printf.sprintf "bail reason names the store: %s" r)
            true
            (String.length r >= 15
            && String.sub r 0 15 = "divergent store")
      | lv ->
          Alcotest.failf "divergent store must stay scalar, got: %s"
            (Regions.verdict_string lv))
  | Regions.Fallback r -> Alcotest.failf "unexpected fallback: %s" r

let run_masked_kernel ~(engine : Interp.engine) ?lane_width ~force_path ~n ~wg
    () =
  let fn =
    match Lower.compile masked_diamond_source with
    | [ f ] -> f
    | _ -> assert false
  in
  Grover_passes.Pipeline.normalize fn;
  let mem = Memory.create () in
  let out = Memory.alloc mem Ssa.F32 n in
  let a = Memory.alloc mem Ssa.F32 n in
  Memory.fill_floats a (fun i -> float_of_int (i * 13 mod 17) /. 8.0);
  let c = Interp.prepare ~engine ?lane_width fn in
  let totals =
    Runtime.launch c
      ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
      ~args:[ Runtime.Abuf out; Runtime.Abuf a; Runtime.Aint n ]
      ~mem ?force_path ()
  in
  (c, totals, snapshot_buffers mem)

(* Satellite: the peeled-tail edge case. A group smaller than the chosen
   lane width W must run as one nl-wide batch — same buffers and totals as
   the scalar sweeps — for every wg in 1..W-1 under W in {4,8}, and the
   kernel must actually be lane-capable (not a silent fallback). *)
let test_masked_tail_smaller_than_width () =
  List.iter
    (fun w ->
      for wg = 1 to w - 1 do
        let n = wg * 3 in
        let cv, v_tot, v_bufs =
          run_masked_kernel ~engine:Interp.Compiled ~lane_width:w
            ~force_path:(Some Runtime.Wg_vec) ~n ~wg ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "W=%d wg=%d: kernel is lane-capable" w wg)
          true
          (Runtime.wgvec_capable cv);
        let _, l_tot, l_bufs =
          run_masked_kernel ~engine:Interp.Compiled
            ~force_path:(Some Runtime.Wg_loop) ~n ~wg ()
        in
        let _, f_tot, f_bufs =
          run_masked_kernel ~engine:Interp.Compiled
            ~force_path:(Some Runtime.Fiber) ~n ~wg ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "W=%d wg=%d: wg-vec totals = wg-loop totals" w wg)
          true (v_tot = l_tot);
        Alcotest.(check bool)
          (Printf.sprintf "W=%d wg=%d: wg-vec totals = fiber totals" w wg)
          true (v_tot = f_tot);
        Alcotest.(check bool)
          (Printf.sprintf "W=%d wg=%d: buffers vs wg-loop" w wg)
          true
          (compare v_bufs l_bufs = 0);
        Alcotest.(check bool)
          (Printf.sprintf "W=%d wg=%d: buffers vs fiber" w wg)
          true
          (compare v_bufs f_bufs = 0)
      done)
    [ 4; 8 ]

(* Satellite: random guarded-diamond kernels. A pure two-armed diamond
   with a random predicate and random pure arms, behind a random clamp
   guard, at group sizes that are deliberately not multiples of W:
   masked wg-vec must agree with the scalar wg-loop sweep and the fiber
   scheduler bit for bit, under both engines (the tree engine has no lane
   code, so its forced wg-vec run degrades down the ladder — the property
   still pins all three paths to one answer). *)
let prop_masked_diamond_agrees =
  let pred_of = function
    | 0 -> "x > 0.25f"
    | 1 -> "x < 0.75f"
    | 2 -> "g % 3 == 1"
    | _ -> "x * x > 0.5f"
  and then_of = function
    | 0 -> "x * 2.0f"
    | 1 -> "x + 1.5f"
    | _ -> "0.5f - x"
  and else_of = function
    | 0 -> "x - 3.0f"
    | 1 -> "x * x"
    | _ -> "1.0f / (x + 2.0f)"
  in
  QCheck.Test.make ~name:"masked wg-vec = wg-loop = fiber on guarded diamonds"
    ~count:15
    QCheck.(
      pair
        (triple (int_range 0 3) (int_range 0 2) (int_range 0 2))
        (triple (int_range 1 4) (int_range 1 16) (oneofl [ 4; 8 ])))
    (fun ((p, t, e), (groups, wg, width)) ->
      let src =
        Printf.sprintf
          {|__kernel void k(__global float *out, __global const float *a, int n) {
              __local float tile[64];
              int g = get_global_id(0);
              int l = get_local_id(0);
              int idx = g;
              if (idx >= n) idx = n - 1;
              float x = a[idx];
              float y;
              if (%s) { y = %s; } else { y = %s; }
              tile[l] = y;
              barrier(CLK_LOCAL_MEM_FENCE);
              out[g] = tile[(l + 1) %% get_local_size(0)] + (float)idx;
            }|}
          (pred_of p) (then_of t) (else_of e)
      in
      let n = groups * wg in
      let run engine force_path lane_width =
        let fn =
          match Lower.compile src with [ f ] -> f | _ -> assert false
        in
        Grover_passes.Pipeline.normalize fn;
        let mem = Memory.create () in
        let out = Memory.alloc mem Ssa.F32 n in
        let a = Memory.alloc mem Ssa.F32 n in
        Memory.fill_floats a (fun i -> float_of_int (i * 7 mod 13) /. 6.0);
        let c = Interp.prepare ~engine ?lane_width fn in
        let totals =
          Runtime.launch c
            ~cfg:{ Runtime.global = (n, 1, 1); local = (wg, 1, 1); queues = 1 }
            ~args:[ Runtime.Abuf out; Runtime.Abuf a; Runtime.Aint n ]
            ~mem ~force_path ()
        in
        (totals, snapshot_buffers mem)
      in
      List.for_all
        (fun engine ->
          let v = run engine Runtime.Wg_vec (Some width) in
          let l = run engine Runtime.Wg_loop None in
          let f = run engine Runtime.Fiber None in
          v = l && l = f)
        [ Interp.Compiled; Interp.Tree ])

(* -- Region formation verdicts ------------------------------------------------ *)

let test_regions_barrier_free () =
  let fn =
    lower_one
      "__kernel void f(__global float *o, __global const float *a) { int i = get_global_id(0); o[i] = a[i] * 2.0f; }"
  in
  match Regions.form fn with
  | Regions.Formed i ->
      Alcotest.(check int) "one region" 1 i.Regions.n_regions;
      Alcotest.(check int) "no barriers" 0 (Array.length i.Regions.barriers)
  | Regions.Fallback r -> Alcotest.failf "unexpected fallback: %s" r

let test_regions_transpose () =
  let fn = lower_one mt_source in
  match Regions.form fn with
  | Regions.Formed i ->
      Alcotest.(check int) "two regions" 2 i.Regions.n_regions;
      Alcotest.(check int) "one barrier" 1 (Array.length i.Regions.barriers);
      Alcotest.(check bool) "values live across the barrier" true
        (Array.length i.Regions.live_across.(0) > 0)
  | Regions.Fallback r -> Alcotest.failf "unexpected fallback: %s" r

let test_regions_divergent_barrier_falls_back () =
  let fn =
    lower_one
      {|__kernel void f(__global int *out) {
          __local int tmp[8];
          int l = get_local_id(0);
          tmp[l] = l;
          if (l < 4) { barrier(CLK_LOCAL_MEM_FENCE); }
          out[get_global_id(0)] = tmp[0];
        }|}
  in
  match Regions.form fn with
  | Regions.Fallback _ -> ()
  | Regions.Formed _ ->
      Alcotest.fail "divergent barrier must not form regions"

let test_regions_uniform_branch_qualifies () =
  (* Same shape as examples/kernels/uniform_branch_barrier.cl: the
     barrier sits under a branch, but the condition is group-uniform. *)
  let fn =
    lower_one
      {|__kernel void f(__global float *out, __global const float *in) {
          __local float tile[16];
          int l = get_local_id(0);
          int g = get_global_id(0);
          if (get_group_id(0) % 2 == 0) {
            tile[l] = in[g] * 2.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[g] = tile[15 - l];
          } else {
            out[g] = in[g];
          }
        }|}
  in
  match Regions.form fn with
  | Regions.Formed i ->
      Alcotest.(check int) "two regions" 2 i.Regions.n_regions
  | Regions.Fallback r ->
      Alcotest.failf "uniform branch wrongly rejected: %s" r

(* -- Differential: chunked parallel execution vs serial -----------------------
   Work-groups distributed over pool domains by atomic chunk-claiming must
   produce the same global buffers and totals as the serial launch. Local
   and private scratch lives in per-domain memory under parallel execution,
   so only Global/Constant buffers (the kernel-visible results) are
   compared. *)

let snapshot_globals (mem : Memory.t) : (int * Ssa.space * Memory.storage) list =
  snapshot_buffers mem
  |> List.filter (fun (_, sp, _) ->
         match sp with Ssa.Global | Ssa.Constant -> true | _ -> false)

let run_domains (case : Kit.case) (v : H.version) ~(domains : int) :
    Trace.totals * (int * Ssa.space * Memory.storage) list * (unit, string) result =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare fn in
  let w = case.Kit.mk ~scale:8 in
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 }
      ~args:w.Kit.args ~mem:w.Kit.mem ~domains ()
  in
  (totals, snapshot_globals w.Kit.mem, w.Kit.check ())

let check_parallel_agrees (case : Kit.case) (v : H.version) () =
  let s_tot, s_bufs, s_valid = run_domains case v ~domains:1 in
  let p_tot, p_bufs, p_valid =
    with_domain_cap 4 (fun () -> run_domains case v ~domains:4)
  in
  (match s_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "serial launch invalid output: %s" m);
  (match p_valid with
  | Ok () -> ()
  | Error m -> Alcotest.failf "parallel launch invalid output: %s" m);
  Alcotest.(check bool) "identical launch totals" true (s_tot = p_tot);
  Alcotest.(check bool) "bit-identical global buffers" true
    (compare s_bufs p_bufs = 0)

let parallel_cases =
  List.concat_map
    (fun (case : Kit.case) ->
      List.map
        (fun (v, vn) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s" case.Kit.id vn)
            `Quick
            (check_parallel_agrees case v))
        [ (H.With_lm, "with-lm"); (H.Without_lm, "grover") ])
    Grover_suite.Suite.all

(* Totals must be invariant in the domain count (and in the chunk
   partition it induces) over random NDRange / work-group shapes. *)
let prop_domain_count_invariant =
  QCheck.Test.make ~name:"totals are domain-count invariant" ~count:20
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 4))
    (fun (groups, wg, wg_y) ->
      let n = groups * wg in
      let run domains =
        let fn =
          match Lower.compile diff_prop_source with
          | [ f ] -> f
          | _ -> assert false
        in
        Grover_passes.Pipeline.normalize fn;
        let c = Interp.prepare fn in
        let mem = Memory.create () in
        let out = Memory.alloc mem Ssa.F32 (n * wg_y) in
        let a = Memory.alloc mem Ssa.F32 (n * wg_y) in
        Memory.fill_floats a (fun i -> float_of_int (i - 3) /. 7.0);
        let totals =
          Runtime.launch c
            ~cfg:
              {
                Runtime.global = (n, wg_y, 1);
                local = (wg, wg_y, 1);
                queues = 1;
              }
            ~args:[ Runtime.Abuf out; Runtime.Abuf a; Runtime.Aint n ]
            ~mem ~domains ()
        in
        (totals, Memory.to_float_array out)
      in
      let t1, o1 = run 1 in
      with_domain_cap 4 (fun () ->
          List.for_all
            (fun d ->
              let td, od = run d in
              t1 = td && compare o1 od = 0)
            [ 2; 4; 0 ]))

(* -- Launch validation -------------------------------------------------------- *)

let test_launch_bad_sizes () =
  let c =
    Runtime.compile_kernel "__kernel void f(__global int *a) { a[0] = 1; }"
      ~name:"f"
  in
  let mem = Memory.create () in
  let a = Memory.alloc mem Ssa.I32 4 in
  match
    Runtime.launch c
      ~cfg:{ Runtime.global = (10, 1, 1); local = (4, 1, 1); queues = 1 }
      ~args:[ Runtime.Abuf a ] ~mem ()
  with
  | exception Runtime.Launch_error _ -> ()
  | _ -> Alcotest.fail "non-divisible global size must be rejected"

let test_launch_bad_args () =
  let c =
    Runtime.compile_kernel "__kernel void f(__global int *a, int n) { a[0] = n; }"
      ~name:"f"
  in
  let mem = Memory.create () in
  let a = Memory.alloc mem Ssa.I32 4 in
  (match
     Runtime.launch c
       ~cfg:{ Runtime.global = (1, 1, 1); local = (1, 1, 1); queues = 1 }
       ~args:[ Runtime.Abuf a ] ~mem ()
   with
  | exception Runtime.Launch_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected");
  match
    Runtime.launch c
      ~cfg:{ Runtime.global = (1, 1, 1); local = (1, 1, 1); queues = 1 }
      ~args:[ Runtime.Abuf a; Runtime.Afloat 1.0 ] ~mem ()
  with
  | exception Runtime.Launch_error _ -> ()
  | _ -> Alcotest.fail "type mismatch must be rejected"

let test_out_of_bounds_trapped () =
  let c =
    Runtime.compile_kernel "__kernel void f(__global int *a) { a[99] = 1; }"
      ~name:"f"
  in
  let mem = Memory.create () in
  let a = Memory.alloc mem Ssa.I32 4 in
  match
    Runtime.launch c
      ~cfg:{ Runtime.global = (1, 1, 1); local = (1, 1, 1); queues = 1 }
      ~args:[ Runtime.Abuf a ] ~mem ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds store must trap"

let suite =
  [ ( "interp",
      [ Alcotest.test_case "vector add" `Quick test_vector_add;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "conditional" `Quick test_conditional;
        Alcotest.test_case "vector types" `Quick test_vector_types;
        Alcotest.test_case "math builtins" `Quick test_math_builtins ] );
    ( "barriers",
      [ Alcotest.test_case "staging reversal" `Quick test_barrier_reversal;
        Alcotest.test_case "rounds counted" `Quick test_barrier_rounds_counted ] );
    ( "transpose",
      [ Alcotest.test_case "with local memory" `Quick test_transpose_with_local;
        Alcotest.test_case "grover equivalence" `Quick test_transpose_grover_equivalent;
        Alcotest.test_case "grover removes local traffic" `Quick
          test_transpose_grover_no_local_traffic ] );
    ( "parallel",
      [ Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
        Alcotest.test_case "rejects tracing" `Quick test_parallel_rejects_tracing ] );
    ( "launch-validation",
      [ Alcotest.test_case "bad sizes" `Quick test_launch_bad_sizes;
        Alcotest.test_case "bad args" `Quick test_launch_bad_args;
        Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_trapped ] );
    ("engine-differential", differential_cases);
    ("fastpath-differential", fastpath_cases);
    ("wgloop-differential", wgloop_cases);
    ("wgvec-differential", wgvec_cases);
    ( "wgloop-selection",
      [ Alcotest.test_case "barrier kernels plan as wg-vec or wg-loop" `Quick
          test_wgloop_selected_for_suite;
        Alcotest.test_case "spill kernel forms regions" `Quick
          test_spill_kernel_forms_regions ] );
    ( "masked-lanes",
      [ Alcotest.test_case "guarded diamonds classify as masked" `Quick
          test_masked_diamonds_classify;
        Alcotest.test_case "divergent store still bails with a reason" `Quick
          test_divergent_store_still_bails;
        Alcotest.test_case "tail group smaller than lane width" `Quick
          test_masked_tail_smaller_than_width;
        QCheck_alcotest.to_alcotest prop_masked_diamond_agrees ] );
    ( "regions",
      [ Alcotest.test_case "barrier-free is trivial" `Quick
          test_regions_barrier_free;
        Alcotest.test_case "transpose splits in two" `Quick
          test_regions_transpose;
        Alcotest.test_case "divergent barrier falls back" `Quick
          test_regions_divergent_barrier_falls_back;
        Alcotest.test_case "uniform branch qualifies" `Quick
          test_regions_uniform_branch_qualifies ] );
    ("parallel-differential", parallel_cases);
    ( "engine-differential-props",
      [ QCheck_alcotest.to_alcotest prop_engines_agree;
        QCheck_alcotest.to_alcotest prop_domain_count_invariant;
        QCheck_alcotest.to_alcotest prop_spill_preserves_results;
        QCheck_alcotest.to_alcotest prop_lane_width_invariant ] ) ]
