(* Memory-simulator tests: cache behaviour (hit/miss/LRU/writeback/set
   conflicts), GPU coalescing and bank conflicts, and end-to-end sanity of
   the platform models. *)

open Grover_ocl
module M = Grover_memsim
module Cache = M.Cache
module P = M.Platform
module Sim = M.Simulate

let cfg ?(size = 1024) ?(line = 64) ?(ways = 2) ?(latency = 4) () =
  { Cache.size_bytes = size; line_bytes = line; ways; latency }

(* -- Cache ----------------------------------------------------------------- *)

let test_cache_hit_after_miss () =
  let c = Cache.create (cfg ()) in
  Alcotest.(check int) "first access misses" 1
    (Cache.access c ~addr:0 ~bytes:4 ~is_write:false);
  Alcotest.(check int) "second access hits" 0
    (Cache.access c ~addr:32 ~bytes:4 ~is_write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.s_hits;
  Alcotest.(check int) "misses" 1 s.Cache.s_misses

let test_cache_line_spanning () =
  let c = Cache.create (cfg ()) in
  (* 8 bytes straddling a line boundary touch two lines. *)
  Alcotest.(check int) "two misses" 2
    (Cache.access c ~addr:60 ~bytes:8 ~is_write:false)

let test_cache_lru_eviction () =
  (* 1 KiB, 2-way, 64B lines -> 8 sets. Lines 0, 8, 16 map to set 0. *)
  let c = Cache.create (cfg ()) in
  let touch line = Cache.access c ~addr:(line * 64) ~bytes:1 ~is_write:false in
  ignore (touch 0);
  ignore (touch 8);
  ignore (touch 0);
  (* line 8 is now LRU *)
  ignore (touch 16);
  (* evicts 8 *)
  Alcotest.(check int) "line 0 still resident" 0 (touch 0);
  Alcotest.(check int) "line 8 was evicted" 1 (touch 8)

let test_cache_set_conflict_thrash () =
  (* Three lines cycling through a 2-way set always miss. *)
  let c = Cache.create (cfg ()) in
  let touch line = Cache.access c ~addr:(line * 64) ~bytes:1 ~is_write:false in
  for _ = 1 to 3 do
    ignore (touch 0);
    ignore (touch 8);
    ignore (touch 16)
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "every access misses" 9 s.Cache.s_misses

let test_cache_writeback () =
  let c = Cache.create (cfg ()) in
  ignore (Cache.access c ~addr:0 ~bytes:4 ~is_write:true);
  ignore (Cache.access c ~addr:(8 * 64) ~bytes:4 ~is_write:false);
  ignore (Cache.access c ~addr:(16 * 64) ~bytes:4 ~is_write:false);
  (* The dirty line 0 must have been written back on eviction. *)
  let s = Cache.stats c in
  Alcotest.(check int) "one writeback" 1 s.Cache.s_writebacks

let test_cache_reset () =
  let c = Cache.create (cfg ()) in
  ignore (Cache.access c ~addr:0 ~bytes:4 ~is_write:false);
  Cache.reset c;
  let s = Cache.stats c in
  Alcotest.(check int) "misses cleared" 0 s.Cache.s_misses;
  Alcotest.(check int) "cold again" 1 (Cache.access c ~addr:0 ~bytes:4 ~is_write:false)

let prop_cache_miss_bound =
  (* Total misses never exceed total accesses; unique lines lower-bound. *)
  QCheck.Test.make ~name:"cache miss bounds" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 4095))
    (fun addrs ->
      let c = Cache.create (cfg ()) in
      List.iter
        (fun a -> ignore (Cache.access c ~addr:a ~bytes:1 ~is_write:false))
        addrs;
      let s = Cache.stats c in
      let unique_lines =
        List.sort_uniq compare (List.map (fun a -> a / 64) addrs)
      in
      s.Cache.s_hits + s.Cache.s_misses = List.length addrs
      && s.Cache.s_misses >= List.length unique_lines)

(* -- Synthetic traces through the simulator ---------------------------------- *)

let mk_stats ?(queue = 0) ~wg_size events =
  let s = Grover_ocl.Trace.fresh_stats ~wg_id:0 ~queue ~wg_size in
  List.iter (fun e -> Trace.push_event s e) events;
  s

let ev ~wi ~addr ?(bytes = 4) ?(write = false) ?(space = Grover_ir.Ssa.Global) () =
  { Trace.addr; bytes; is_write = write; space; wi }

let gpu_mem_cycles plat events ~wg_size =
  let sim = Sim.create plat in
  Sim.consume sim (mk_stats ~wg_size events);
  let r = Sim.result sim in
  r.Sim.r_memory

let test_gpu_coalesced_vs_strided () =
  (* 32 lanes reading 32 consecutive floats = 1 segment; reading a 128-byte
     strided column = 32 segments. *)
  let coalesced =
    List.init 32 (fun l -> ev ~wi:l ~addr:(0x1000 + (4 * l)) ())
  in
  let strided = List.init 32 (fun l -> ev ~wi:l ~addr:(0x1000 + (128 * l)) ()) in
  let c1 = gpu_mem_cycles P.fermi coalesced ~wg_size:32 in
  let c2 = gpu_mem_cycles P.fermi strided ~wg_size:32 in
  Alcotest.(check bool)
    (Printf.sprintf "strided (%.0f) >= 16x coalesced (%.0f)" c2 c1)
    true
    (c2 >= 16.0 *. c1)

let test_gpu_broadcast_single_transaction () =
  let broadcast = List.init 32 (fun l -> ev ~wi:l ~addr:0x2000 ()) in
  let coalesced = List.init 32 (fun l -> ev ~wi:l ~addr:(0x2000 + (4 * l)) ()) in
  let b = gpu_mem_cycles P.fermi broadcast ~wg_size:32 in
  let c = gpu_mem_cycles P.fermi coalesced ~wg_size:32 in
  Alcotest.(check bool) "broadcast costs no more than coalesced" true (b <= c)

let spm_cycles plat events ~wg_size =
  let sim = Sim.create plat in
  Sim.consume sim (mk_stats ~wg_size events);
  (Sim.result sim).Sim.r_spm

let test_gpu_bank_conflicts () =
  let local = Grover_ir.Ssa.Local in
  (* Conflict-free: lane l touches bank l. *)
  let free =
    List.init 32 (fun l -> ev ~wi:l ~addr:(0x100 + (4 * l)) ~space:local ())
  in
  (* 32-way conflict: every lane touches bank 0 at a different address. *)
  let conflict =
    List.init 32 (fun l -> ev ~wi:l ~addr:(0x100 + (128 * l)) ~space:local ())
  in
  let f = spm_cycles P.fermi free ~wg_size:32 in
  let c = spm_cycles P.fermi conflict ~wg_size:32 in
  Alcotest.(check bool)
    (Printf.sprintf "conflict (%.1f) = 32x free (%.1f)" c f)
    true
    (c = 32.0 *. f)

let test_gpu_spm_broadcast () =
  let local = Grover_ir.Ssa.Local in
  (* All lanes read the same local address: broadcast, one bank access. *)
  let bcast = List.init 32 (fun l -> ev ~wi:l ~addr:0x100 ~space:local ()) in
  let free =
    List.init 32 (fun l -> ev ~wi:l ~addr:(0x100 + (4 * l)) ~space:local ())
  in
  Alcotest.(check bool) "broadcast is conflict-free" true
    (spm_cycles P.fermi bcast ~wg_size:32 <= spm_cycles P.fermi free ~wg_size:32)

let test_cpu_simd_coalescing () =
  (* 8 lanes reading consecutive floats = 1 line access per position. *)
  let unit_stride = List.init 8 (fun l -> ev ~wi:l ~addr:(0x1000 + (4 * l)) ()) in
  let big_stride = List.init 8 (fun l -> ev ~wi:l ~addr:(0x1000 + (256 * l)) ()) in
  let cycles events =
    let sim = Sim.create P.snb in
    Sim.consume sim (mk_stats ~wg_size:8 events);
    (Sim.result sim).Sim.r_memory
  in
  Alcotest.(check bool) "strided costs more" true
    (cycles big_stride >= 4.0 *. cycles unit_stride)

(* -- Platform sanity ------------------------------------------------------------ *)

let test_platform_lookup () =
  Alcotest.(check bool) "snb" true (P.by_name "snb" <> None);
  Alcotest.(check bool) "TAHITI" true (P.by_name "TAHITI" <> None);
  Alcotest.(check bool) "bogus" true (P.by_name "bogus" = None);
  Alcotest.(check int) "six platforms" 6 (List.length P.all)

let test_platform_structure () =
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check bool) (p.P.name ^ " cores > 0") true (p.P.cores > 0);
      match (p.P.kind, p.P.mem) with
      | P.Gpu, P.Gpu_mem _ -> ()
      | (P.Cpu | P.Mic), P.Cpu_mem _ -> ()
      | _ -> Alcotest.failf "%s: kind/memory-model mismatch" p.P.name)
    P.all;
  (* The paper's MIC story requires no shared LLC there. *)
  match P.mic.P.mem with
  | P.Cpu_mem m -> Alcotest.(check bool) "MIC has no shared LLC" true (m.P.llc = None)
  | _ -> Alcotest.fail "MIC must be a cache hierarchy"

let test_simulate_accumulates_queues () =
  let sim = Sim.create P.snb in
  let mk q = mk_stats ~queue:q ~wg_size:1 [ ev ~wi:0 ~addr:0 () ] in
  Sim.consume sim (mk 0);
  Sim.consume sim (mk 1);
  let r = Sim.result sim in
  Alcotest.(check int) "two groups" 2 r.Sim.r_groups;
  Alcotest.(check bool) "both queues charged" true
    (r.Sim.per_queue.(0) > 0.0 && r.Sim.per_queue.(1) > 0.0);
  (* Critical path = max, not sum. *)
  Alcotest.(check bool) "max over queues" true
    (r.Sim.cycles < r.Sim.per_queue.(0) +. r.Sim.per_queue.(1))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "cache",
      [ Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
        Alcotest.test_case "line spanning" `Quick test_cache_line_spanning;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "set conflict thrash" `Quick test_cache_set_conflict_thrash;
        Alcotest.test_case "writeback" `Quick test_cache_writeback;
        Alcotest.test_case "reset" `Quick test_cache_reset ] );
    qsuite "cache-props" [ prop_cache_miss_bound ];
    ( "gpu-model",
      [ Alcotest.test_case "coalescing" `Quick test_gpu_coalesced_vs_strided;
        Alcotest.test_case "broadcast" `Quick test_gpu_broadcast_single_transaction;
        Alcotest.test_case "bank conflicts" `Quick test_gpu_bank_conflicts;
        Alcotest.test_case "SPM broadcast" `Quick test_gpu_spm_broadcast ] );
    ( "cpu-model",
      [ Alcotest.test_case "SIMD coalescing" `Quick test_cpu_simd_coalescing ] );
    ( "platforms",
      [ Alcotest.test_case "lookup" `Quick test_platform_lookup;
        Alcotest.test_case "structure" `Quick test_platform_structure;
        Alcotest.test_case "queue accumulation" `Quick test_simulate_accumulates_queues ] ) ]
