(* IR tests: lowering, verification, dominators, mem2reg, simplify, DCE. *)

open Grover_ir
module Pass = Grover_passes

let compile src = Lower.compile src

let compile1 src =
  match compile src with
  | [ fn ] -> fn
  | fns -> Alcotest.failf "expected 1 function, got %d" (List.length fns)

let normalized src =
  let fn = compile1 src in
  Pass.Pipeline.normalize fn;
  fn

let count_op p fn = Ssa.fold_instrs (fun n i -> if p i.Ssa.op then n + 1 else n) 0 fn

let is_load = function Ssa.Load _ -> true | _ -> false
let is_store = function Ssa.Store _ -> true | _ -> false
let is_alloca = function Ssa.Alloca _ -> true | _ -> false
let is_phi = function Ssa.Phi _ -> true | _ -> false
let is_barrier = function Ssa.Barrier _ -> true | _ -> false

let mt_source =
  {|
#define S 16
__kernel void transpose(__global float *out, __global const float *in,
                        int W, int H) {
  __local float lm[S][S];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int wx = get_group_id(0);
  int wy = get_group_id(1);
  lm[ly][lx] = in[(wx * S + ly) * W + (wy * S + lx)];
  barrier(CLK_LOCAL_MEM_FENCE);
  float val = lm[lx][ly];
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  out[gy * H + gx] = val;
}
|}

(* -- Lowering -------------------------------------------------------------- *)

let test_lower_verifies () =
  let fn = compile1 mt_source in
  Verify.run fn (* raises on malformed IR *)

let test_lower_local_alloca () =
  let fn = compile1 mt_source in
  let found = ref false in
  Ssa.iter_instrs
    (fun i ->
      match i.Ssa.op with
      | Ssa.Alloca { aspace = Ssa.Local; count; _ } ->
          found := true;
          Alcotest.(check int) "S*S elements" 256 count
      | _ -> ())
    fn;
  Alcotest.(check bool) "local alloca present" true !found

let test_lower_barrier () =
  let fn = compile1 mt_source in
  Alcotest.(check int) "one local barrier" 1
    (count_op
       (function Ssa.Barrier { blocal = true; _ } -> true | _ -> false)
       fn)

let test_lower_if_control_flow () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { if (n > 0) a[0] = 1; else a[0] = 2; }"
  in
  Verify.run fn;
  Alcotest.(check bool) "at least 4 blocks" true (List.length fn.Ssa.blocks >= 4)

let test_lower_loop_verifies () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { for (int i = 0; i < n; i++) a[i] = 2 * i; }"
  in
  Verify.run fn

let test_lower_vector_ops () =
  let fn =
    compile1
      {|__kernel void f(__global float4 *a) {
          float4 v = a[0];
          v.x = v.y + 1.0f;
          a[1] = v * v;
        }|}
  in
  Verify.run fn;
  Alcotest.(check bool) "has extract" true
    (count_op (function Ssa.Extract _ -> true | _ -> false) fn > 0);
  Alcotest.(check bool) "has insert" true
    (count_op (function Ssa.Insert _ -> true | _ -> false) fn > 0)

let test_lower_type_error () =
  match compile "__kernel void f(__global float *a) { a[0] = a; }" with
  | exception Grover_clc.Loc.Error _ -> ()
  | _ -> Alcotest.fail "storing a pointer into float must be rejected"

let test_lower_unknown_var () =
  match compile "__kernel void f() { x = 1; }" with
  | exception Grover_clc.Loc.Error _ -> ()
  | _ -> Alcotest.fail "unknown variable must be rejected"

(* -- mem2reg ----------------------------------------------------------------- *)

let test_mem2reg_promotes_scalars () =
  let fn = compile1 mt_source in
  ignore (Pass.Mem2reg.run fn);
  Verify.run fn;
  (* All private single slots promoted: remaining allocas are local only. *)
  Ssa.iter_instrs
    (fun i ->
      match i.Ssa.op with
      | Ssa.Alloca { aspace; _ } ->
          Alcotest.(check bool) "only local allocas remain" true (aspace = Ssa.Local)
      | _ -> ())
    fn

let test_mem2reg_loop_phi () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s = s + i; a[0] = s; }"
  in
  ignore (Pass.Mem2reg.run fn);
  Verify.run fn;
  Alcotest.(check bool) "loop-carried phi exists" true (count_op is_phi fn > 0)

let test_mem2reg_if_phi () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { int v; if (n > 0) v = 1; else v = 2; a[0] = v; }"
  in
  ignore (Pass.Mem2reg.run fn);
  Verify.run fn;
  Alcotest.(check int) "one merge phi" 1 (count_op is_phi fn)

let test_mem2reg_no_trivial_phi () =
  (* A variable assigned identically on both arms must not keep a phi after
     trivial-phi removal... it will have two distinct constants, so instead
     check a genuinely invariant variable. *)
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { int c = 7; if (n > 0) a[0] = c; else a[1] = c; a[2] = c; }"
  in
  ignore (Pass.Mem2reg.run fn);
  Verify.run fn;
  Alcotest.(check int) "no phi for the invariant" 0 (count_op is_phi fn)

let test_mem2reg_keeps_arrays () =
  let fn =
    compile1
      "__kernel void f(__global int *a) { int t[4]; t[0] = 1; t[1] = 2; a[0] = t[0] + t[1]; }"
  in
  ignore (Pass.Mem2reg.run fn);
  Verify.run fn;
  Alcotest.(check bool) "array alloca kept" true (count_op is_alloca fn > 0)

(* -- simplify / dce ----------------------------------------------------------- *)

let test_simplify_constant_folding () =
  let fn = compile1 "__kernel void f(__global int *a) { a[0] = 2 + 3 * 4; }" in
  Pass.Pipeline.normalize fn;
  (* The store's value must be the constant 14. *)
  let ok = ref false in
  Ssa.iter_instrs
    (fun i ->
      match i.Ssa.op with
      | Ssa.Store { v = Ssa.Cint (_, 14); _ } -> ok := true
      | _ -> ())
    fn;
  Alcotest.(check bool) "folded to 14" true !ok

let test_simplify_identities () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int x) { a[0] = (x + 0) * 1 + (x - x) * 99; }"
  in
  Pass.Pipeline.normalize fn;
  (* After simplification the store's value is just the argument x. *)
  let ok = ref false in
  Ssa.iter_instrs
    (fun i ->
      match i.Ssa.op with
      | Ssa.Store { v = Ssa.Arg a; _ } when a.Ssa.a_name = "x" -> ok := true
      | _ -> ())
    fn;
  Alcotest.(check bool) "reduced to x" true !ok

let test_simplify_dead_branch () =
  let fn =
    compile1 "__kernel void f(__global int *a) { if (0) a[0] = 1; else a[0] = 2; }"
  in
  Pass.Pipeline.normalize fn;
  Alcotest.(check int) "single store survives" 1 (count_op is_store fn)

let test_dce_removes_dead_code () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int x) { int dead = x * 37 + 5; a[0] = x; }"
  in
  Pass.Pipeline.normalize fn;
  Alcotest.(check int) "no arithmetic left" 0
    (count_op (function Ssa.Binop _ -> true | _ -> false) fn)

let test_dce_keeps_stores () =
  let fn = normalized "__kernel void f(__global int *a, int x) { a[0] = x; }" in
  Alcotest.(check int) "store kept" 1 (count_op is_store fn)

let test_dce_write_only_local () =
  (* A local array that is written but never read disappears entirely. *)
  let fn =
    normalized
      {|__kernel void f(__global int *a, int x) {
          __local int tmp[16];
          tmp[get_local_id(0)] = x;
          a[0] = x;
        }|}
  in
  Alcotest.(check int) "write-only local removed" 0 (count_op is_alloca fn)

(* -- normalization shape (what Grover relies on) ------------------------------- *)

let test_normalize_index_leaves () =
  (* After normalize, the MT store index chain must bottom out at calls,
     constants and arguments only (plus no loads of scalars). *)
  let fn = normalized mt_source in
  Verify.run fn;
  let ok = ref true in
  let rec check_value v =
    match v with
    | Ssa.Cint _ | Ssa.Cfloat _ | Ssa.Arg _ -> ()
    | Ssa.Vinstr i -> (
        match i.Ssa.op with
        | Ssa.Call _ | Ssa.Phi _ -> ()
        | Ssa.Binop _ | Ssa.Cast _ ->
            List.iter check_value (Ssa.operands i.Ssa.op)
        | Ssa.Load _ -> () (* the GL load itself *)
        | _ -> ok := false)
  in
  Ssa.iter_instrs
    (fun i ->
      match i.Ssa.op with
      | Ssa.Store { index; _ } | Ssa.Load { index; _ } -> check_value index
      | _ -> ())
    fn;
  Alcotest.(check bool) "index chains are normal" true !ok

let test_printer_roundtrip_stability () =
  let fn = normalized mt_source in
  let s1 = Printer.func_to_string fn in
  let s2 = Printer.func_to_string fn in
  Alcotest.(check string) "printing is deterministic" s1 s2;
  Alcotest.(check bool) "mentions kernel name" true
    (String.length s1 > 0
    &&
    let re = "transpose" in
    let found = ref false in
    for i = 0 to String.length s1 - String.length re do
      if String.sub s1 i (String.length re) = re then found := true
    done;
    !found)

(* -- verifier negatives ----------------------------------------------------------- *)

let expect_invalid name build =
  match build () with
  | exception Verify.Invalid_ir _ -> ()
  | () -> Alcotest.failf "%s: verifier accepted malformed IR" name

let test_verify_missing_terminator () =
  expect_invalid "missing terminator" (fun () ->
      let fn, _ = Builder.create_function ~name:"bad" ~args:[] in
      Verify.run fn)

let test_verify_type_mismatch () =
  expect_invalid "binop type mismatch" (fun () ->
      let fn, b = Builder.create_function ~name:"bad" ~args:[] in
      ignore (Builder.binop b Ssa.Add (Builder.i32 1) (Builder.f32 2.0));
      Builder.ret b;
      Verify.run fn)

let test_verify_float_op_on_ints () =
  expect_invalid "fadd on ints" (fun () ->
      let fn, b = Builder.create_function ~name:"bad" ~args:[] in
      ignore (Builder.binop b Ssa.Fadd (Builder.i32 1) (Builder.i32 2));
      Builder.ret b;
      Verify.run fn)

let test_verify_store_type_mismatch () =
  expect_invalid "store type mismatch" (fun () ->
      let fn, b = Builder.create_function ~name:"bad" ~args:[] in
      let p = Builder.alloca b Ssa.Private Ssa.F32 1 in
      Builder.store b p (Builder.i32 0) (Builder.i32 7);
      Builder.ret b;
      Verify.run fn)

let test_verify_cond_on_non_i1 () =
  expect_invalid "cond_br on i32" (fun () ->
      let fn, b = Builder.create_function ~name:"bad" ~args:[] in
      let blk1 = Builder.new_block b "a" in
      let blk2 = Builder.new_block b "b" in
      Builder.cond_br b (Builder.i32 1) blk1 blk2;
      Builder.set_block b blk1;
      Builder.ret b;
      Builder.set_block b blk2;
      Builder.ret b;
      Verify.run fn)

let test_verify_use_before_def () =
  expect_invalid "use before def" (fun () ->
      let fn, b = Builder.create_function ~name:"bad" ~args:[] in
      (* Build v2 = v1 + 1 with v1 defined *after* v2 in the block. *)
      let blk = Builder.current b in
      let v1 = Ssa.fresh_instr (Ssa.Binop (Ssa.Add, Builder.i32 1, Builder.i32 2)) in
      let v2 = Ssa.fresh_instr (Ssa.Binop (Ssa.Add, Ssa.Vinstr v1, Builder.i32 1)) in
      Ssa.append_instr blk v2;
      Ssa.append_instr blk v1;
      (* Keep both alive through a store so DCE-style reasoning is moot. *)
      let p = Builder.alloca b Ssa.Private Ssa.I32 1 in
      Builder.store b p (Builder.i32 0) (Ssa.Vinstr v2);
      Builder.ret b;
      Verify.run fn)

(* -- dominators ----------------------------------------------------------------- *)

let test_dominators_diamond () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { if (n > 0) a[0] = 1; else a[1] = 2; a[2] = 3; }"
  in
  let dom = Dom.compute fn in
  let entry = Ssa.entry fn in
  List.iter
    (fun b ->
      if Cfg.is_reachable dom.Dom.cfg b then
        Alcotest.(check bool)
          (Printf.sprintf "entry dominates %s" b.Ssa.b_name)
          true
          (Dom.dominates dom entry b))
    fn.Ssa.blocks

let test_dominators_loop_frontier () =
  let fn =
    compile1
      "__kernel void f(__global int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }"
  in
  let dom = Dom.compute fn in
  (* The loop header must be in the dominance frontier of the loop body. *)
  let has_frontier = Array.exists (fun f -> f <> []) dom.Dom.frontier in
  Alcotest.(check bool) "loop creates a frontier" true has_frontier

(* -- property: random expression programs fold identically ----------------------- *)

(* Generate a random arithmetic expression over x (an int argument), lower
   both as a kernel storing the expression, and check the normalized IR still
   verifies. A cheap fuzz for parser+lowering+passes plumbing. *)
let gen_expr_src =
  let open QCheck.Gen in
  let rec expr depth =
    if depth = 0 then oneof [ map string_of_int (int_range 0 9); return "x" ]
    else
      let* l = expr (depth - 1) in
      let* r = expr (depth - 1) in
      let* op = oneofl [ "+"; "-"; "*" ] in
      return (Printf.sprintf "(%s %s %s)" l op r)
  in
  let* d = int_range 1 4 in
  let* e = expr d in
  return (Printf.sprintf "__kernel void f(__global int *a, int x) { a[0] = %s; }" e)

let prop_random_exprs_normalize =
  QCheck.Test.make ~name:"random expressions lower and normalize" ~count:100
    (QCheck.make ~print:(fun s -> s) gen_expr_src)
    (fun src ->
      let fn = compile1 src in
      Pass.Pipeline.normalize fn;
      Verify.run fn;
      count_op is_store fn = 1)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "lowering",
      [ Alcotest.test_case "verifies" `Quick test_lower_verifies;
        Alcotest.test_case "local alloca" `Quick test_lower_local_alloca;
        Alcotest.test_case "barrier" `Quick test_lower_barrier;
        Alcotest.test_case "if control flow" `Quick test_lower_if_control_flow;
        Alcotest.test_case "loop" `Quick test_lower_loop_verifies;
        Alcotest.test_case "vector ops" `Quick test_lower_vector_ops;
        Alcotest.test_case "type error" `Quick test_lower_type_error;
        Alcotest.test_case "unknown variable" `Quick test_lower_unknown_var ] );
    ( "mem2reg",
      [ Alcotest.test_case "promotes scalars" `Quick test_mem2reg_promotes_scalars;
        Alcotest.test_case "loop phi" `Quick test_mem2reg_loop_phi;
        Alcotest.test_case "if phi" `Quick test_mem2reg_if_phi;
        Alcotest.test_case "invariant has no phi" `Quick test_mem2reg_no_trivial_phi;
        Alcotest.test_case "keeps arrays" `Quick test_mem2reg_keeps_arrays ] );
    ( "simplify-dce",
      [ Alcotest.test_case "constant folding" `Quick test_simplify_constant_folding;
        Alcotest.test_case "identities" `Quick test_simplify_identities;
        Alcotest.test_case "dead branch" `Quick test_simplify_dead_branch;
        Alcotest.test_case "dead code removed" `Quick test_dce_removes_dead_code;
        Alcotest.test_case "stores kept" `Quick test_dce_keeps_stores;
        Alcotest.test_case "write-only local removed" `Quick test_dce_write_only_local ] );
    ( "normal-form",
      [ Alcotest.test_case "index leaves" `Quick test_normalize_index_leaves;
        Alcotest.test_case "printer stability" `Quick test_printer_roundtrip_stability ] );
    ( "verifier-negatives",
      [ Alcotest.test_case "missing terminator" `Quick test_verify_missing_terminator;
        Alcotest.test_case "binop type mismatch" `Quick test_verify_type_mismatch;
        Alcotest.test_case "float op on ints" `Quick test_verify_float_op_on_ints;
        Alcotest.test_case "store type mismatch" `Quick test_verify_store_type_mismatch;
        Alcotest.test_case "cond on non-i1" `Quick test_verify_cond_on_non_i1;
        Alcotest.test_case "use before def" `Quick test_verify_use_before_def ] );
    ( "dominators",
      [ Alcotest.test_case "diamond" `Quick test_dominators_diamond;
        Alcotest.test_case "loop frontier" `Quick test_dominators_loop_frontier ] );
    qsuite "ir-props" [ prop_random_exprs_normalize ] ]
