let () =
  Alcotest.run "grover"
    (List.concat [ Test_support.suite; Test_clc.suite; Test_ir.suite; Test_passes.suite;
      Test_pass_manager.suite; Test_ocl.suite; Test_queue.suite; Test_core.suite; Test_memsim.suite; Test_emit.suite; Test_suite.suite;
      Test_analysis.suite; Test_cache.suite; Test_promote.suite ])
