(* Correctness-subsystem tests: the static race/barrier/bounds passes must
   certify every suite kernel race-free under its true work-group size and
   reject each kernel of the negative corpus with the right finding code;
   the dynamic sanitizer must stay silent on the whole suite (both kernel
   versions, both engines) and must not perturb results — sanitized output
   buffers are bit-identical to a plain launch. *)

open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module Pass = Grover_passes.Pass
module Diag = Grover_support.Diag
module Analysis = Grover_analysis.Analysis

let scale = 4

let codes_of (ds : Diag.t list) : string list =
  List.filter_map (fun d -> d.Diag.code) ds

let analyze_fn ?local_size (fn : Grover_ir.Ssa.func) : Diag.t list =
  let c = Pass.ctx () in
  Analysis.analyze ?local_size c fn;
  Pass.diags c

(* -- Static: the 11 suite kernels are race-free ----------------------------- *)

let test_static_race_free (case : Kit.case) () =
  let fn, _ = H.compile_version case H.With_lm in
  let local = (case.Kit.mk ~scale).Kit.local in
  let ds = analyze_fn ~local_size:local fn in
  let codes = codes_of ds in
  List.iter
    (fun bad ->
      if List.mem bad codes then
        Alcotest.failf "%s: unexpected %s under local size %s" case.Kit.id bad
          (let x, y, z = local in
           Printf.sprintf "%dx%dx%d" x y z))
    [ "GRV-RACE-MUST"; "GRV-RACE-MAY"; "GRV-BARRIER-DIV"; "GRV-OOB-STATIC" ];
  (* Every local buffer must be positively certified, not just un-flagged. *)
  let frees = List.length (List.filter (( = ) "GRV-RACE-FREE") codes) in
  let n_locals =
    Grover_ir.Ssa.fold_instrs
      (fun n i ->
        match i.Grover_ir.Ssa.op with
        | Grover_ir.Ssa.Alloca { aspace = Grover_ir.Ssa.Local; _ } -> n + 1
        | _ -> n)
      0 fn
  in
  Alcotest.(check int) (case.Kit.id ^ " race-free buffers") n_locals frees

(* -- Static: the negative corpus is rejected -------------------------------- *)

let bad_racy_store =
  {|__kernel void racy_store(__global float *out, __global const float *in) {
  __local float acc[16];
  int lx = get_local_id(0);
  acc[0] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = acc[0];
}|}

let bad_divergent_barrier =
  {|__kernel void divergent_barrier(__global float *out, __global const float *in) {
  __local float tmp[16];
  int lx = get_local_id(0);
  tmp[lx] = in[lx];
  if (lx < 8) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[lx] = tmp[15 - lx];
}|}

let bad_oob_index =
  {|__kernel void oob_index(__global float *out, __global const float *in) {
  __local float tmp[16];
  int lx = get_local_id(0);
  tmp[lx + 1] = in[lx];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lx] = tmp[lx];
}|}

let compile_one (src : string) : Grover_ir.Ssa.func =
  match Grover_ir.Lower.compile src with
  | [ fn ] ->
      Grover_passes.Pipeline.normalize fn;
      fn
  | _ -> Alcotest.fail "bad-corpus source must contain exactly one kernel"

let test_bad_kernel (name : string) (src : string) (expected : string) () =
  let fn = compile_one src in
  let ds = analyze_fn ~local_size:(16, 1, 1) fn in
  let codes = codes_of ds in
  if not (List.mem expected codes) then
    Alcotest.failf "%s: expected %s, got [%s]" name expected
      (String.concat "; " codes);
  (* With the true local size supplied the finding must be a hard error. *)
  let errs = List.filter Diag.is_error ds in
  Alcotest.(check bool)
    (name ^ " is an error")
    true
    (List.exists (fun d -> d.Diag.code = Some expected) errs)

(* -- Dynamic: the sanitizer is silent on the whole suite -------------------- *)

let test_sanitize_clean (case : Kit.case) (v : H.version) (eng : Interp.engine)
    () =
  let r = H.sanitize_run ~engine:eng ~scale case v in
  (match r.H.sz_check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: sanitized run invalid: %s" case.Kit.id m);
  match r.H.sz_findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s: sanitizer finding: %s" case.Kit.id
        (Sanitize.message f)

(* -- Dynamic: sanitizing must not perturb results --------------------------- *)

let buffers_of (args : Runtime.arg_binding list) : Memory.buffer list =
  List.filter_map (function Runtime.Abuf b -> Some b | _ -> None) args

let storage_bits (b : Memory.buffer) : string =
  (* Compare through Marshal so float payloads (NaNs included) are
     compared bit-for-bit, not through (=) on possibly-boxed floats. *)
  Marshal.to_string (Memory.to_float_array b, Memory.to_int_array b) []

let run_pair (case : Kit.case) (v : H.version) (eng : Interp.engine) :
    string list * string list =
  let fn, _ = H.compile_version case v in
  let compiled = Interp.prepare ~engine:eng fn in
  let mk () =
    let w = case.Kit.mk ~scale in
    ( { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 },
      w.Kit.args,
      w.Kit.mem )
  in
  let cfg, args, mem = mk () in
  ignore (Runtime.launch compiled ~cfg ~args ~mem ());
  let plain = List.map storage_bits (buffers_of args) in
  let cfg2, args2, mem2 = mk () in
  let _totals, findings =
    Runtime.run_sanitized compiled ~cfg:cfg2 ~args:args2 ~mem:mem2 ()
  in
  Alcotest.(check int) (case.Kit.id ^ " findings") 0 (List.length findings);
  (plain, List.map storage_bits (buffers_of args2))

let qcheck_bit_identity =
  let cases = Array.of_list Grover_suite.Suite.all in
  let gen =
    QCheck.Gen.(
      triple
        (int_bound (Array.length cases - 1))
        (oneofl [ H.With_lm; H.Without_lm ])
        (oneofl [ Interp.Compiled; Interp.Tree ]))
  in
  let print (i, v, e) =
    Printf.sprintf "%s/%s/%s" cases.(i).Kit.id
      (match v with H.With_lm -> "lm" | H.Without_lm -> "grover")
      (match e with Interp.Compiled -> "compiled" | Interp.Tree -> "tree")
  in
  QCheck.Test.make ~name:"sanitized runs are bit-identical to plain runs"
    ~count:16
    (QCheck.make ~print gen)
    (fun (i, v, e) ->
      let plain, sanitized = run_pair cases.(i) v e in
      plain = sanitized)

let suite =
  let static =
    List.map
      (fun case ->
        Alcotest.test_case (case.Kit.id ^ " race-free") `Quick
          (test_static_race_free case))
      Grover_suite.Suite.all
    @ [
        Alcotest.test_case "bad: racy store" `Quick
          (test_bad_kernel "racy_store" bad_racy_store "GRV-RACE-MUST");
        Alcotest.test_case "bad: divergent barrier" `Quick
          (test_bad_kernel "divergent_barrier" bad_divergent_barrier
             "GRV-BARRIER-DIV");
        Alcotest.test_case "bad: oob index" `Quick
          (test_bad_kernel "oob_index" bad_oob_index "GRV-OOB-STATIC");
      ]
  in
  let dynamic =
    List.concat_map
      (fun case ->
        List.concat_map
          (fun (vn, v) ->
            List.map
              (fun (en, e) ->
                Alcotest.test_case
                  (Printf.sprintf "%s %s/%s clean" case.Kit.id vn en)
                  `Quick
                  (test_sanitize_clean case v e))
              [ ("compiled", Interp.Compiled); ("tree", Interp.Tree) ])
          [ ("lm", H.With_lm); ("grover", H.Without_lm) ])
      Grover_suite.Suite.all
  in
  [
    ("analysis-static", static);
    ("analysis-sanitize", dynamic);
    ( "analysis-props",
      [ QCheck_alcotest.to_alcotest qcheck_bit_identity ] );
  ]
