(* Promotion (automatic __local insertion) tests: suite kernels whose
   Grover-removed form must promote back to a race-certified, sanitizer-clean
   tiled version with reference-correct output; kernels without reuse must be
   refused; and the qcheck round trip — promote-lm then the Grover removal —
   must be observationally identical to the original on random affine
   kernels. *)

open Grover_ir
open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module Suite = Grover_suite.Suite
module Promote = Grover_promote.Promote
module Config = Grover_analysis.Config
module Predict = Grover_memsim.Predict
module P = Grover_memsim.Platform

let scale = 4

let by_id id =
  match Suite.by_id id with
  | Some c -> c
  | None -> Alcotest.failf "unknown suite case %s" id

(* -- Suite kernels promote back to validated tiled versions ------------------- *)

let test_promotes id () =
  let pm = H.promote_run ~scale (by_id id) in
  Alcotest.(check bool)
    (id ^ " promoted something") true
    (pm.H.pm_outcome.Promote.promoted <> []);
  Alcotest.(check bool) (id ^ " race-free") true pm.H.pm_race_free;
  Alcotest.(check int) (id ^ " sanitizer findings") 0 (List.length pm.H.pm_findings);
  (match pm.H.pm_check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s (promoted): wrong output: %s" id m);
  Alcotest.(check bool)
    (id ^ " uses local memory again") true
    (pm.H.pm_totals.Trace.t_local_accesses > 0);
  Alcotest.(check bool)
    (id ^ " has barriers again") true
    (pm.H.pm_totals.Trace.t_barriers > 0)

let test_transpose_refused id () =
  (* Transposes have no inter-work-item reuse: every element is read by one
     work item, so promotion must refuse rather than stage a useless tile. *)
  let pm = H.promote_run ~scale (by_id id) in
  Alcotest.(check (list (pair string int)))
    (id ^ " promoted nothing") []
    pm.H.pm_outcome.Promote.promoted;
  Alcotest.(check bool)
    (id ^ " gave a reason") true
    (pm.H.pm_outcome.Promote.p_rejected <> []);
  (match pm.H.pm_check with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s (unpromoted): wrong output: %s" id m)

(* -- Footprint exceeding the local-size box must refuse ------------------------ *)

let compile1 src =
  match Lower.compile src with
  | [ fn ] ->
      Grover_passes.Pipeline.normalize fn;
      fn
  | _ -> Alcotest.fail "expected one kernel"

(* A 16-iteration reuse loop under an 8x8 work-group: the tile footprint
   (8x16) does not tile the box, so promotion must refuse. *)
let oversized_src =
  {|__kernel void k(__global float *out, __global const float *in, int W) {
      int lx = get_local_id(0);
      int ly = get_local_id(1);
      int wy = get_group_id(1);
      float acc = 0.0f;
      for (int t = 0; t < 16; ++t)
        acc += in[(wy * 8 + ly) * W + t];
      out[get_global_id(1) * W + get_global_id(0) % 8] = acc + (float)lx * 0.0f;
    }|}

let test_footprint_exceeds_box () =
  let fn = compile1 oversized_src in
  let o = Config.with_local (Some (8, 8, 1)) (fun () -> Promote.run fn) in
  Alcotest.(check (list (pair string int))) "promoted nothing" [] o.Promote.promoted;
  Alcotest.(check bool)
    "reason mentions the footprint" true
    (List.exists
       (fun (_, r) ->
         let has_sub s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         has_sub r "footprint" || has_sub r "work-group is larger")
       o.Promote.p_rejected)

(* -- qcheck round trip: promote then remove == original ------------------------ *)

(* Random affine reuse kernels over a 16x16 grid of 8x8 groups:

     acc += in[...] (styles: A-row reuse over k, B-column reuse over k)

   promote-lm must stage them, and running the Grover removal on the
   promoted kernel must yield IR observationally identical to the original:
   bit-identical buffers and identical load/store/float/barrier totals. *)
type rt_params = { style_a : bool; use_ly : bool; ck : int }

let gen_rt =
  let open QCheck.Gen in
  let* style_a = bool in
  let* use_ly = bool in
  let* ck = oneofl [ 1; 2 ] in
  return { style_a; use_ly; ck }

let render_rt (p : rt_params) =
  let lid = if p.use_ly then "ly" else "lx" in
  let grp = if p.use_ly then "wy" else "wx" in
  let idx =
    if p.style_a then
      (* row-major reuse: var coeffs {lid: W, k: ck} *)
      Printf.sprintf "(%s * 8 + %s) * W + %d * k" grp lid p.ck
    else
      (* column-major reuse: var coeffs {k: W, lid: ck} *)
      Printf.sprintf "k * W + %s * 8 + %d * %s" grp p.ck lid
  in
  Printf.sprintf
    {|__kernel void k(__global float *out, __global const float *in, int W) {
        int lx = get_local_id(0);
        int ly = get_local_id(1);
        int wx = get_group_id(0);
        int wy = get_group_id(1);
        float acc = 0.0f;
        for (int k = 0; k < 8; ++k)
          acc += in[%s] * 0.5f;
        out[get_global_id(1) * (W / 2) + get_global_id(0)] = acc;
      }|}
    idx

let exec_rt fn =
  let compiled = Interp.prepare fn in
  let mem = Memory.create () in
  let n = 16 and w = 32 in
  let out = Memory.alloc mem Ssa.F32 (n * w) in
  let inp = Memory.alloc mem Ssa.F32 (n * w) in
  Memory.fill_floats inp (fun i -> float_of_int (i mod 97) *. 0.25);
  let totals =
    Runtime.launch compiled
      ~cfg:{ Runtime.global = (n, n, 1); local = (8, 8, 1); queues = 1 }
      ~args:[ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint w ]
      ~mem ()
  in
  (Memory.to_float_array out, totals)

let prop_promote_remove_roundtrip =
  QCheck.Test.make ~name:"promote-lm then grover is observationally identity"
    ~count:16
    (QCheck.make ~print:render_rt gen_rt)
    (fun params ->
      let src = render_rt params in
      let ref_out, ref_totals = exec_rt (compile1 src) in
      let fn = compile1 src in
      let po = Config.with_local (Some (8, 8, 1)) (fun () -> Promote.run fn) in
      if po.Promote.promoted = [] then
        QCheck.Test.fail_reportf "promotion refused: %s"
          (String.concat "; "
             (List.map (fun (n, r) -> n ^ ": " ^ r) po.Promote.p_rejected));
      (* The promoted kernel must stage through local memory and still
         compute the same buffers. *)
      let p_out, p_totals = exec_rt fn in
      if p_totals.Trace.t_local_accesses = 0 then
        QCheck.Test.fail_report "promoted kernel has no local traffic";
      if p_out <> ref_out then
        QCheck.Test.fail_report "promoted kernel changed the output";
      (* Now run the forward (removal) transform on the promoted kernel. *)
      let go = Grover_core.Grover.run fn in
      if go.Grover_core.Grover.transformed = [] then
        QCheck.Test.fail_report "grover could not remove the promoted tile";
      let rt_out, rt_totals = exec_rt fn in
      rt_out = ref_out
      && rt_totals.Trace.t_loads = ref_totals.Trace.t_loads
      && rt_totals.Trace.t_stores = ref_totals.Trace.t_stores
      && rt_totals.Trace.t_float_ops = ref_totals.Trace.t_float_ops
      && rt_totals.Trace.t_barriers = ref_totals.Trace.t_barriers
      && rt_totals.Trace.t_local_accesses = 0)

(* -- Predict.rank --------------------------------------------------------------- *)

let test_rank_orders_variants () =
  let case = by_id "NVD-MT" in
  let c = H.compare case ~platform:P.snb ~scale:8 in
  let wg (x, y, z) = x * y * z in
  let w = case.Kit.mk ~scale:8 in
  let inp totals =
    { Predict.totals; wg_size = wg w.Kit.local; vectorized = false }
  in
  let ranked =
    Predict.rank P.snb
      [ ("with_lm", inp c.H.with_lm.H.totals);
        ("without_lm", inp c.H.without_lm.H.totals) ]
  in
  Alcotest.(check int) "two variants ranked" 2 (List.length ranked);
  let sorted =
    match ranked with
    | [ a; b ] -> a.Predict.rk_seconds <= b.Predict.rk_seconds
    | _ -> false
  in
  Alcotest.(check bool) "fastest first" true sorted;
  (* NVD-MT is the paper's flagship removal gain: the model must rank the
     without_lm version faster. *)
  Alcotest.(check string)
    "without_lm wins" "without_lm"
    (List.hd ranked).Predict.rk_label

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suite =
  [ ( "promote",
      [ Alcotest.test_case "NVD-MM-A promotes" `Quick (test_promotes "NVD-MM-A");
        Alcotest.test_case "AMD-MM promotes" `Quick (test_promotes "AMD-MM");
        Alcotest.test_case "NVD-MM-AB promotes" `Quick (test_promotes "NVD-MM-AB");
        Alcotest.test_case "AMD-MT refused (no reuse)" `Quick
          (test_transpose_refused "AMD-MT");
        Alcotest.test_case "footprint exceeds box refused" `Quick
          test_footprint_exceeds_box;
        Alcotest.test_case "Predict.rank orders variants" `Quick
          test_rank_orders_variants ] );
    qsuite "promote-props" [ prop_promote_remove_roundtrip ] ]
