(** Command completion events (OpenCL [cl_event] analogue).

    An event is the passive completion record of one enqueued command —
    an ND-range launch or a queue barrier/marker. Commands name events in
    their wait-lists; the {!Queue} layer also derives implicit events
    from buffer read/write hazards. All mutation happens under the
    {!Runtime.Sched} lock; reads from the submitting thread are safe once
    the command's queue has been drained ([Queue.finish] / [Queue.wait]).

    [ev_seqno] is the global completion order (1-based, monotonically
    increasing across all queues): dependency-order properties — "no
    event fires before its wait-list" — are checked by comparing seqnos.

    Each event also carries the OpenCL profiling timestamps
    ([CL_PROFILING_COMMAND_QUEUED] / [_SUBMIT] / [_END] analogues):
    wall-clock seconds at enqueue, at dependency resolution (when the
    command was handed to the scheduler) and at completion. [nan] until
    the corresponding transition has happened. *)

type state = Pending | Complete

type t = {
  ev_id : int;  (** unique per process; creation order *)
  mutable ev_state : state;
  mutable ev_seqno : int;  (** global completion order; -1 while pending *)
  mutable ev_error : exn option;
      (** the failure that poisoned this command, re-raised by
          [Queue.wait] / [Queue.finish] *)
  mutable ev_totals : Trace.totals option;
      (** the launch's trace totals; [None] for markers/barriers and
          while pending *)
  mutable ev_callbacks : (unit -> unit) list;
      (** fired (scheduler lock held) at completion; the queue layer's
          dependency-resolution hooks *)
  mutable ev_queued : float;  (** [gettimeofday] at enqueue *)
  mutable ev_submitted : float;
      (** when the last dependency resolved and the command went to the
          scheduler; [nan] while still waiting *)
  mutable ev_completed : float;  (** [gettimeofday] at completion *)
}

let next_id = Atomic.make 0

let make () : t =
  {
    ev_id = Atomic.fetch_and_add next_id 1;
    ev_state = Pending;
    ev_seqno = -1;
    ev_error = None;
    ev_totals = None;
    ev_callbacks = [];
    ev_queued = Unix.gettimeofday ();
    ev_submitted = Float.nan;
    ev_completed = Float.nan;
  }

let is_complete (ev : t) : bool = ev.ev_state = Complete
let seqno (ev : t) : int = ev.ev_seqno
let error (ev : t) : exn option = ev.ev_error

(** Profiling timestamps (absolute seconds): enqueue, submission to the
    scheduler, completion. [nan] for transitions that have not happened. *)
let profile (ev : t) : float * float * float =
  (ev.ev_queued, ev.ev_submitted, ev.ev_completed)

(** The completed launch's totals.
    @raise Invalid_argument while pending, or on a marker/barrier. *)
let totals (ev : t) : Trace.totals =
  match ev.ev_totals with
  | Some t -> t
  | None -> invalid_arg "Event.totals: event pending or not an ND-range"
