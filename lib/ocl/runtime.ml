(** Kernel launch: NDRange iteration, per-queue local-memory allocation,
    pooled work-item states, and four group schedulers —

    - {b wg-vec}: lane-batched work-item loops (pocl-style work-group
      vectorization) for kernels whose barriers {!Grover_ir.Regions}
      proved group-uniform {e and} whose regions stay lane-sweepable
      (uniform control flow, no private allocas); each region advances a
      batch of W work-items per compiled closure over struct-of-arrays
      lane slots, so the sweep runs group-size/W times. Regions the lane
      compiler could not batch run the scalar sweep within the same
      launch;
    - {b wg-loop}: pocl-style work-item loops for kernels whose barriers
      {!Grover_ir.Regions} proved group-uniform; each barrier-delimited
      region runs as a plain loop over the group's work-items, live values
      crossing region boundaries ride in per-work-item context arrays;
    - {b fiberless}: the degenerate single-region loop for statically
      barrier-free kernels (every Grover-transformed kernel, and any
      original that never synchronizes);
    - {b fiber}: the effect-handler scheduler, kept as the differential
      oracle and as the fallback for kernels with divergent barriers
      (where it detects the divergence dynamically).

    [GROVER_FORCE_PATH=wg-vec|wg-loop|fiberless|fiber] overrides the
    choice for every launch of the process, within static capability (a
    path a kernel cannot take degrades to the nearest one that it can).

    Parallel launches run on a {e persistent} domain pool: worker domains
    are spawned once (lazily, grown on demand) and reused across launches,
    and work-groups are distributed by atomic chunk-claiming rather than a
    fixed stride, so repeated launches — the autotune / bench pattern —
    pay neither [Domain.spawn] nor load-imbalance costs. *)

open Grover_ir
open Ssa

type arg_binding =
  | Abuf of Memory.buffer
  | Aint of int
  | Afloat of float

type launch_config = {
  global : int * int * int;  (** global work size per dimension *)
  local : int * int * int;  (** work-group size per dimension *)
  queues : int;  (** hardware queues (cores / CUs); groups round-robin *)
}

exception Launch_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Launch_error m)) fmt

let bind_args (fn : func) (bindings : arg_binding list) : Interp.rv array =
  if List.length bindings <> List.length fn.f_args then
    fail "kernel %s expects %d arguments, got %d" fn.f_name
      (List.length fn.f_args) (List.length bindings);
  Array.of_list
    (List.map2
       (fun (a : arg) b ->
         match (a.a_ty, b) with
         | Ptr (sp, elem), Abuf buf ->
             if buf.Memory.elem <> elem then
               fail "argument %s: buffer element type mismatch" a.a_name;
             if sp <> buf.Memory.space && not (sp = Global && buf.Memory.space = Constant)
             then fail "argument %s: address space mismatch" a.a_name;
             (* Diagnostics (the sanitizer in particular) name buffers
                after the kernel argument they are bound to. *)
             if buf.Memory.bname = "" then buf.Memory.bname <- a.a_name;
             Interp.RBuf buf
         | (I8 | I16 | I32 | I64), Aint n -> Interp.RInt n
         | F32, Afloat f -> Interp.RFloat f
         | _, _ -> fail "argument %s: binding type mismatch" a.a_name)
       fn.f_args bindings)

(* -- Execution plan ----------------------------------------------------------- *)

(** The group scheduler a launch will use (see the module docs). *)
type path = Wg_vec | Wg_loop | Fiberless | Fiber

(** How a launch will execute: which group scheduler, and on how many
    domains (including the calling one). Computed by {!plan} with the
    exact rules {!launch} applies, so benches and autotuners can report
    auditable execution metadata without re-deriving the policy. *)
type exec_plan = {
  path : path;
  domains_used : int;  (** parallel domains, including the caller *)
  domains_requested : int;  (** post-[resolve_domains] request *)
  domains_clamped : bool;
      (** [domains_used < domains_requested]: the request exceeded either
          the hardware parallelism cap or the profitable per-domain share
          of this NDRange *)
}

let max_domains = 64

(* Hardware parallelism cap. Explicit multi-domain requests used to be
   taken at face value; on a host with fewer cores than the request the
   extra domains time-slice one core and the coordination overhead makes
   the launch *slower* than serial (the BENCH_interp.json 4-domain
   regression). Every domain request is therefore clamped to the
   recommended domain count, overridable for tests and oversubscription
   experiments via {!set_domain_cap} or [GROVER_DOMAIN_CAP]. *)
let domain_cap : int option ref = ref None

(** Override the hardware parallelism cap ([Some n]) or restore the
    default ([None]: [GROVER_DOMAIN_CAP] if set, else
    [Domain.recommended_domain_count ()]). *)
let set_domain_cap (c : int option) : unit = domain_cap := c

let warned_cap_env = ref false

let effective_domain_cap () : int =
  let cap =
    match !domain_cap with
    | Some n when n > 0 -> n
    | Some _ | None -> (
        match Sys.getenv_opt "GROVER_DOMAIN_CAP" with
        | None | Some "" -> Domain.recommended_domain_count ()
        | Some s -> (
            match int_of_string_opt s with
            | Some n when n > 0 -> n
            | Some _ | None ->
                if not !warned_cap_env then begin
                  warned_cap_env := true;
                  Printf.eprintf
                    "grover: ignoring invalid GROVER_DOMAIN_CAP=%S (want a \
                     positive integer)\n%!"
                    s
                end;
                Domain.recommended_domain_count ()))
  in
  max 1 (min max_domains cap)

let resolve_domains (domains : int) : int =
  if domains = 0 then effective_domain_cap ()
  else max 1 (min max_domains domains)

(* The region executor needs the compiled spill metadata — absent on the
   tree engine and whenever region formation fell back. *)
let wg_capable (c : Interp.compiled) : bool =
  match c.Interp.code with
  | Some cf -> cf.Interp.wg <> None
  | None -> false

(* The lane executor additionally needs lane-batched code with at least
   one sweepable region entry (the refined [lentry], which also accounts
   for segments the lane compiler had to give up on). *)
let wgvec_capable (c : Interp.compiled) : bool =
  match c.Interp.code with
  | Some { Interp.lanes = Some ln; _ } ->
      Array.exists Fun.id ln.Interp.lentry
  | _ -> false

(* -- Autotune hook ------------------------------------------------------- *)

let path_of_string (s : string) : path option =
  match s with
  | "fiber" | "fibers" -> Some Fiber
  | "fiberless" -> Some Fiberless
  | "wg-loop" | "wgloop" | "wg_loop" -> Some Wg_loop
  | "wg-vec" | "wgvec" | "wg_vec" -> Some Wg_vec
  | _ -> None

(** A tuning decision resolved from a persistent database: which kernel
    version won the paper's with_lm/without_lm race for this (kernel,
    geometry), which execution path it took and at what lane width. The
    runtime applies [tn_path] itself (in {!plan} / {!choose_path}, within
    static capability); [tn_version] and [tn_lane_width] are decided before
    a kernel reaches the runtime, so drivers read them via {!lookup_tuned}
    when choosing what to compile. *)
type tuned = {
  tn_version : string;  (** "with_lm" or "without_lm" *)
  tn_path : path option;
  tn_lane_width : int option;
}

(** The installed tuner: kernel name + launch geometry in, database entry
    out. [None] means "no entry — fall back to measurement / static
    choice"; installed by [Grover_cache.Autotune_db.install_tuner]. *)
type tuner = name:string -> cfg:launch_config -> tuned option

let the_tuner : tuner option ref = ref None

let set_tuner (t : tuner) : unit = the_tuner := Some t
let clear_tuner () : unit = the_tuner := None

let lookup_tuned ~(name : string) ~(cfg : launch_config) : tuned option =
  match !the_tuner with None -> None | Some t -> t ~name ~cfg

let choose_path (c : Interp.compiled) ~(cfg : launch_config option)
    ~(force_fibers : bool) ~(force_path : path option) : path =
  if force_fibers then Fiber
  else
    let forced =
      match force_path with
      | Some _ -> force_path
      | None -> (
          match Sys.getenv_opt "GROVER_FORCE_PATH" with
          | None | Some "" -> (
              (* No explicit override: a populated autotune DB decides,
                 still subject to the capability ladder below. *)
              match cfg with
              | None -> None
              | Some cfg -> (
                  match lookup_tuned ~name:c.Interp.fn.f_name ~cfg with
                  | Some { tn_path; _ } -> tn_path
                  | None -> None))
          | Some ("fiber" | "fibers") -> Some Fiber
          | Some "fiberless" -> Some Fiberless
          | Some ("wg-loop" | "wgloop" | "wg_loop") -> Some Wg_loop
          | Some ("wg-vec" | "wgvec" | "wg_vec") -> Some Wg_vec
          | Some s ->
              fail
                "unknown GROVER_FORCE_PATH %S (expected wg-vec, wg-loop, \
                 fiberless or fiber)"
                s)
    in
    match forced with
    | None ->
        if not c.Interp.has_barrier then Fiberless
        else if wgvec_capable c then Wg_vec
        else if wg_capable c then Wg_loop
        else Fiber
    | Some Fiber -> Fiber
    | Some Fiberless ->
        (* A kernel with barriers cannot run unsynchronized; degrade to
           the fiber scheduler rather than miscompute. *)
        if c.Interp.has_barrier then Fiber else Fiberless
    | Some Wg_loop ->
        if wg_capable c then Wg_loop
        else if c.Interp.has_barrier then Fiber
        else Fiberless
    | Some Wg_vec ->
        if wgvec_capable c then Wg_vec
        else if wg_capable c && c.Interp.has_barrier then Wg_loop
        else if c.Interp.has_barrier then Fiber
        else Fiberless

(* Pool-growth cap: a domain whose share of the NDRange is below one
   claimable chunk of work adds coordination (and domain wake-up) cost
   without amortizing it, so small launches stop growing the pool instead
   of spreading a handful of groups over every core. *)
let min_groups_per_domain = 2

let plan (c : Interp.compiled) ~(cfg : launch_config) ?(force_fibers = false)
    ?force_path ?(domains = 1) () : exec_plan =
  let gx, gy, gz = cfg.global and lx, ly, lz = cfg.local in
  let n_groups =
    if lx <= 0 || ly <= 0 || lz <= 0 then 0
    else gx / lx * (gy / ly) * (gz / lz)
  in
  let requested = resolve_domains domains in
  let d = min requested (effective_domain_cap ()) in
  let d =
    if n_groups < 2 then 1
    else min d (max 1 (n_groups / min_groups_per_domain))
  in
  {
    path = choose_path c ~cfg:(Some cfg) ~force_fibers ~force_path;
    domains_used = d;
    domains_requested = requested;
    domains_clamped = d < requested;
  }

let path_name (p : exec_plan) : string =
  match p.path with
  | Wg_vec -> "wg-vec"
  | Wg_loop -> "wg-loop"
  | Fiberless -> "fiberless"
  | Fiber -> "fiber"

(* -- Per-(launch x domain) execution context ---------------------------------

   Everything a domain needs to run work-groups, allocated once per launch
   per domain and reused across all its groups: the pooled work-item
   states (one per group slot under fibers, a single one on the fiberless
   path), the reused [grp] coordinate array shared by every state's
   context, the per-queue local-memory allocations, and the parked-
   continuation queue of the fiber scheduler. *)

type local_set = {
  ls_tab : (int, Memory.buffer) Hashtbl.t;  (** alloca iid -> buffer *)
  ls_bufs : Memory.buffer list;  (** same buffers, for per-group clearing *)
}

(* Kernels with no local allocas share one immutable empty table: no
   Hashtbl.create, no per-group setup at all. *)
let no_locals : local_set = { ls_tab = Hashtbl.create 1; ls_bufs = [] }

type exec_ctx = {
  xc : Interp.compiled;
  scratch : Memory.t;  (** local / private allocations land here *)
  stats : Trace.wg_stats;  (** pooled; reset per group *)
  lsz : int array;
  ngr : int array;
  grp : int array;  (** shared by all states' contexts; rewritten per group *)
  states : Interp.wi_state array;
      (** pooled work-item states: [n_items] under fibers (work-items of a
          group are live concurrently between barriers), 1 otherwise *)
  n_items : int;
  path : path;
  parked : (unit, unit) Effect.Deep.continuation Stdlib.Queue.t;
  (* Region-executor context matrices: [n_items] rows of the widths in
     [cwg]; a work-item's values that survive a region boundary park in
     its row between sweeps. Empty on the other paths. *)
  wg_ictx : int array;
  wg_fctx : float array;
  wg_bctx : Interp.rv array;
  wg_priv : int array;
      (** per work-item private-allocation bump offset carried across
          regions, so private allocas land at the same addresses the fiber
          path would give them *)
  lanes : Interp.lane_state option;
      (** lane-batched execution state; [Some] iff [path] is [Wg_vec].
          Shares the group context and stats sink with [states.(0)] so
          mixed lane/scalar regions observe the same group. *)
  mutable local_sets : local_set option array;  (** per queue, lazy *)
  mutable cur_queue : int;  (** queue the states are currently aimed at *)
  san : Sanitize.t option;
}

let make_ctx (c : Interp.compiled) ~(rv_args : Interp.rv array)
    ~(scratch : Memory.t) ~(stats : Trace.wg_stats) ~(lsz : int array)
    ~(gsz : int array) ~(ngr : int array) ~(path : path)
    ?(san : Sanitize.t option) () : exec_ctx =
  let n_items = lsz.(0) * lsz.(1) * lsz.(2) in
  let grp = [| 0; 0; 0 |] in
  let n_states = if path = Fiber then n_items else 1 in
  let states =
    Array.init n_states (fun _ ->
        let ctx =
          {
            Interp.lid = [| 0; 0; 0 |];
            gid = [| 0; 0; 0 |];
            grp;
            lsz;
            gsz;
            ngr;
            flat_lid = 0;
          }
        in
        let st =
          Interp.make_state c ~args:rv_args ~ctx ~stats
            ~local_bufs:no_locals.ls_tab ~mem:scratch ~queue:0
        in
        st.Interp.san <- san;
        st)
  in
  let wg_ictx, wg_fctx, wg_bctx, wg_priv =
    match path with
    | Wg_loop | Wg_vec -> (
        match c.Interp.code with
        | Some { Interp.wg = Some w; _ } ->
            ( Array.make (max 1 (n_items * w.Interp.ctx_i)) 0,
              Array.make (max 1 (n_items * w.Interp.ctx_f)) 0.0,
              Array.make (max 1 (n_items * w.Interp.ctx_b)) (Interp.RInt 0),
              Array.make n_items 0 )
        | _ -> fail "wg-loop planned for a kernel without region metadata")
    | Fiberless | Fiber -> ([||], [||], [||], [||])
  in
  let lanes =
    match path with
    | Wg_vec -> (
        let st0 = states.(0) in
        match
          Interp.make_lane_state c ~ctx:st0.Interp.ctx ~args:rv_args ~stats
            ~local_bufs:no_locals.ls_tab
        with
        | Some ls ->
            ls.Interp.lsan <- san;
            Some ls
        | None -> fail "wg-vec planned for a kernel without lane metadata")
    | Wg_loop | Fiberless | Fiber -> None
  in
  {
    xc = c;
    scratch;
    stats;
    lsz;
    ngr;
    grp;
    states;
    n_items;
    path;
    parked = Stdlib.Queue.create ();
    wg_ictx;
    wg_fctx;
    wg_bctx;
    wg_priv;
    lanes;
    local_sets = [||];
    cur_queue = -1;
    san;
  }

(* Local buffers are allocated once per (launch, queue) — their addresses
   recycle per queue exactly as before, but the storage is now reused and
   cleared per group instead of reallocated. *)
let local_set_for (x : exec_ctx) (queue : int) : local_set =
  if x.xc.Interp.local_allocas = [] then no_locals
  else begin
    if queue >= Array.length x.local_sets then begin
      let a = Array.make (queue + 1) None in
      Array.blit x.local_sets 0 a 0 (Array.length x.local_sets);
      x.local_sets <- a
    end;
    match x.local_sets.(queue) with
    | Some ls -> ls
    | None ->
        let tab = Hashtbl.create 4 in
        let offset = ref 0 in
        let bufs =
          List.map
            (fun (i : instr) ->
              match i.op with
              | Alloca { elem; count; aname; _ } ->
                  let b =
                    Memory.alloc_local x.scratch ~name:aname ~queue
                      ~offset:!offset elem count
                  in
                  offset := !offset + (count * ty_size_bytes elem);
                  Hashtbl.replace tab i.iid b;
                  b
              | _ -> assert false)
            x.xc.Interp.local_allocas
        in
        let ls = { ls_tab = tab; ls_bufs = bufs } in
        x.local_sets.(queue) <- Some ls;
        ls
  end

(* -- Group schedulers --------------------------------------------------------- *)

(* Barrier-aware scheduler: every work-item runs as a fiber; hitting a
   barrier performs [Barrier_hit], the handler parks the continuation, and
   the group resumes in rounds once all still-running items have arrived. *)
let run_group_fibers (x : exec_ctx) : unit =
  let open Effect.Deep in
  let parked = x.parked in
  let finished = ref 0 in
  for flat = 0 to x.n_items - 1 do
    let st = x.states.(flat) in
    Interp.reset_item st ~flat;
    match_with
      (fun () ->
        Interp.run_workitem st;
        incr finished)
      ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Interp.Barrier_hit ->
                Some (fun (k : (a, unit) continuation) -> Stdlib.Queue.add k parked)
            | _ -> None);
      }
  done;
  (* Barrier rounds: a released barrier must have been reached by every
     work-item of the group. A work-item that already finished performed
     fewer barrier crossings than the parked ones are about to — barrier
     divergence, undefined behaviour in OpenCL. *)
  while not (Stdlib.Queue.is_empty parked) do
    let waiting = Stdlib.Queue.length parked in
    if !finished > 0 then
      fail "barrier divergence in %s: %d of %d work-items reached the barrier"
        x.xc.Interp.fn.f_name waiting x.n_items;
    x.stats.Trace.barrier_rounds <- x.stats.Trace.barrier_rounds + 1;
    (* All work-items synchronized: accesses after this point are ordered
       against everything before it. *)
    (match x.san with Some s -> Sanitize.barrier_round s | None -> ());
    let batch = Stdlib.Queue.create () in
    Stdlib.Queue.transfer parked batch;
    Stdlib.Queue.iter (fun k -> continue k ()) batch
  done;
  if !finished <> x.n_items then
    fail "work-group did not run to completion in %s" x.xc.Interp.fn.f_name

(* Fiberless fast path: the kernel provably performs no [Barrier_hit], so
   work-items are just a loop over one pooled state — no [match_with], no
   fiber stacks, no continuation queue. *)
let run_group_fiberless (x : exec_ctx) : unit =
  let st = x.states.(0) in
  for flat = 0 to x.n_items - 1 do
    if flat = 0 then Interp.reset_item st ~flat:0 else Interp.advance_item st;
    Interp.run_workitem st
  done

(* Work-group loops: sweep every work-item through the current parallel
   region, then advance the whole group past the barrier and sweep the
   next region. One pooled state serves all work-items — values that
   survive a region boundary are spilled to (and restored from) the
   work-item's row of the context matrices. The sweep order matches the
   fiber scheduler's FIFO rounds (work-item 0..n-1 per region), so trace
   event streams are bit-identical.

   Region formation proved barriers group-uniform, but that is a static
   claim about a dynamic property; the sweep still verifies that every
   work-item leaves the region at the same exit and reports barrier
   divergence like the fiber scheduler would. *)
let run_group_wgloop (x : exec_ctx) : unit =
  let st = x.states.(0) in
  let cf =
    match x.xc.Interp.code with
    | Some cf -> cf
    | None -> fail "wg-loop without compiled code"
  in
  let w =
    match cf.Interp.wg with
    | Some w -> w
    | None -> fail "wg-loop without region metadata"
  in
  let n = x.n_items in
  let cur = ref 0 in
  let entered = ref (-1) in
  (* barrier we resumed from; -1 = kernel entry *)
  let finished = ref false in
  while not !finished do
    let exit0 = ref (-1) in
    for flat = 0 to n - 1 do
      if flat = 0 then Interp.reset_item st ~flat:0
      else Interp.advance_item st;
      if !entered >= 0 then begin
        st.Interp.private_offset <- x.wg_priv.(flat);
        Interp.spill_restore st w ~bar:!entered ~ictx:x.wg_ictx
          ~fctx:x.wg_fctx ~bctx:x.wg_bctx ~flat
      end;
      let e = Interp.run_region st cf ~from:!cur in
      if e >= 0 then begin
        Interp.spill_save st w ~bar:e ~ictx:x.wg_ictx ~fctx:x.wg_fctx
          ~bctx:x.wg_bctx ~flat;
        x.wg_priv.(flat) <- st.Interp.private_offset
      end;
      if flat = 0 then exit0 := e
      else if e <> !exit0 then
        fail
          "barrier divergence in %s: work-item %d left the parallel region \
           at a different point than work-item 0"
          x.xc.Interp.fn.f_name flat
    done;
    if !exit0 < 0 then finished := true
    else begin
      (* The whole group arrived: this sweep boundary is the barrier. *)
      x.stats.Trace.barrier_rounds <- x.stats.Trace.barrier_rounds + 1;
      (match x.san with Some s -> Sanitize.barrier_round s | None -> ());
      entered := !exit0;
      cur := w.Interp.bar_entry.(!exit0)
    end
  done

(* Lane-batched work-group loops: like [run_group_wgloop], but a region
   whose (refined) entry is lane-sweepable advances a whole batch of
   work-items per pass — group-size/W sweep steps instead of group-size.
   Regions the lane compiler could not batch run the scalar sweep; the two
   execution styles exchange live values through the same per-work-item
   context matrices (uniform values replicate into every row on the lane
   side, so a following scalar region reads exactly what the scalar path
   would have written). *)
let run_group_wgvec (x : exec_ctx) : unit =
  let st = x.states.(0) in
  let cf =
    match x.xc.Interp.code with
    | Some cf -> cf
    | None -> fail "wg-vec without compiled code"
  in
  let w =
    match cf.Interp.wg with
    | Some w -> w
    | None -> fail "wg-vec without region metadata"
  in
  let ln =
    match cf.Interp.lanes with
    | Some ln -> ln
    | None -> fail "wg-vec without lane metadata"
  in
  let lst =
    match x.lanes with
    | Some lst -> lst
    | None -> fail "wg-vec without a lane state"
  in
  let n = x.n_items in
  let lw = lst.Interp.lw in
  (* Lane regions have no private allocas and never write the bump
     offsets; clear last group's values so a later scalar region starts
     from the same offsets the pure-scalar sweep would. *)
  Array.fill x.wg_priv 0 (Array.length x.wg_priv) 0;
  let cur = ref 0 in
  let entered = ref (-1) in
  (* barrier we resumed from; -1 = kernel entry *)
  let finished = ref false in
  while not !finished do
    (* -2 = no batch/work-item has exited this region yet *)
    let exit0 = ref (-2) in
    if ln.Interp.lentry.(!entered + 1) then begin
      let base = ref 0 in
      while !base < n do
        let nl = min lw (n - !base) in
        Interp.reset_lane_batch lst ~base:!base ~nl;
        if !entered >= 0 then
          Interp.lane_spill_restore lst w ln ~bar:!entered ~ictx:x.wg_ictx
            ~fctx:x.wg_fctx ~bctx:x.wg_bctx;
        let e = Interp.run_lane_region lst cf ln ~from:!cur in
        if e >= 0 then
          Interp.lane_spill_save lst w ln ~bar:e ~ictx:x.wg_ictx
            ~fctx:x.wg_fctx ~bctx:x.wg_bctx;
        if !exit0 = -2 then exit0 := e
        else if e <> !exit0 then
          fail
            "barrier divergence in %s: work-item %d left the parallel \
             region at a different point than work-item 0"
            x.xc.Interp.fn.f_name !base;
        base := !base + nl
      done
    end
    else
      for flat = 0 to n - 1 do
        if flat = 0 then Interp.reset_item st ~flat:0
        else Interp.advance_item st;
        if !entered >= 0 then begin
          st.Interp.private_offset <- x.wg_priv.(flat);
          Interp.spill_restore st w ~bar:!entered ~ictx:x.wg_ictx
            ~fctx:x.wg_fctx ~bctx:x.wg_bctx ~flat
        end;
        let e = Interp.run_region st cf ~from:!cur in
        if e >= 0 then begin
          Interp.spill_save st w ~bar:e ~ictx:x.wg_ictx ~fctx:x.wg_fctx
            ~bctx:x.wg_bctx ~flat;
          x.wg_priv.(flat) <- st.Interp.private_offset
        end;
        if flat = 0 then exit0 := e
        else if e <> !exit0 then
          fail
            "barrier divergence in %s: work-item %d left the parallel \
             region at a different point than work-item 0"
            x.xc.Interp.fn.f_name flat
      done;
    if !exit0 < 0 then finished := true
    else begin
      x.stats.Trace.barrier_rounds <- x.stats.Trace.barrier_rounds + 1;
      (match x.san with Some s -> Sanitize.barrier_round s | None -> ());
      entered := !exit0;
      cur := w.Interp.bar_entry.(!exit0)
    end
  done

let run_one_group (x : exec_ctx) ~(wg : int) ~(queue : int) : unit =
  (match x.san with Some s -> Sanitize.enter_group s ~group:wg | None -> ());
  let ngr = x.ngr in
  x.grp.(0) <- wg mod ngr.(0);
  x.grp.(1) <- wg / ngr.(0) mod ngr.(1);
  x.grp.(2) <- wg / (ngr.(0) * ngr.(1));
  let ls = local_set_for x queue in
  if queue <> x.cur_queue then begin
    Array.iter
      (fun (st : Interp.wi_state) ->
        st.Interp.queue <- queue;
        st.Interp.local_bufs <- ls.ls_tab)
      x.states;
    (match x.lanes with
    | Some lst -> lst.Interp.llocal <- ls.ls_tab
    | None -> ());
    x.cur_queue <- queue
  end;
  (* Fresh local memory per group, matching the former per-group
     allocation semantics. *)
  List.iter Memory.clear ls.ls_bufs;
  Trace.reset x.stats ~wg_id:wg ~queue ~wg_size:x.n_items;
  match x.path with
  | Wg_vec -> run_group_wgvec x
  | Wg_loop -> run_group_wgloop x
  | Fiberless -> run_group_fiberless x
  | Fiber -> run_group_fibers x

(* -- The persistent domain pool -----------------------------------------------

   Worker domains are spawned lazily, kept parked on a condition variable
   between launches, and reused forever; a launch that wants d domains
   publishes one job and participates as worker 0 itself. Jobs receive the
   worker's stable 1-based index; workers beyond the launch's requested
   width no-op (they still take part in the completion count). Exceptions
   raised inside a job are captured and re-raised on the launching domain.
   Only the main launching domain may dispatch (no nested parallel
   launches from inside a kernel). *)

module Pool = struct
  type t = {
    m : Mutex.t;
    work : Condition.t;  (** a new job was published *)
    idle : Condition.t;  (** all workers finished the current job *)
    mutable job : (int -> unit) option;
    mutable seq : int;  (** job sequence number *)
    mutable pending : int;  (** workers yet to finish the current job *)
    mutable n : int;  (** spawned worker domains *)
    mutable error : exn option;  (** first exception raised by a worker *)
  }

  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      seq = 0;
      pending = 0;
      n = 0;
      error = None;
    }

  (** How many worker domains have ever been spawned (for reporting). *)
  let size () = t.n

  let worker ~seen0 idx () =
    let seen = ref seen0 in
    while true do
      Mutex.lock t.m;
      while t.seq = !seen do
        Condition.wait t.work t.m
      done;
      seen := t.seq;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.m;
      (try job idx
       with e ->
         Mutex.lock t.m;
         if t.error = None then t.error <- Some e;
         Mutex.unlock t.m);
      Mutex.lock t.m;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.m
    done

  (* Grow the pool to [n] workers. Called from the launching domain only,
     and never concurrently with a dispatch, so reading [t.seq] for the
     new worker's baseline is race-free. *)
  let ensure (n : int) : unit =
    while t.n < min n max_domains do
      t.n <- t.n + 1;
      ignore (Domain.spawn (worker ~seen0:t.seq t.n))
    done

  let dispatch ~(workers : int) (job : int -> unit) : unit =
    ensure workers;
    Mutex.lock t.m;
    t.job <- Some (fun idx -> if idx <= workers then job idx);
    t.pending <- t.n;
    t.seq <- t.seq + 1;
    t.error <- None;
    Condition.broadcast t.work;
    Mutex.unlock t.m

  let wait () : exn option =
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.idle t.m
    done;
    let e = t.error in
    t.error <- None;
    t.job <- None;
    Mutex.unlock t.m;
    e
end

(* -- Out-of-order multi-launch scheduler --------------------------------------

   The unit of work is a (launch, chunk) pair: submitted launches form a
   ready set, and every participating domain repeatedly claims a chunk of
   work-groups from one of them. A domain keeps claiming from the launch
   it last ran — its execution context (pooled states, lane slots, local
   allocations) stays hot chunk after chunk (cache affinity) — and only
   picks a new launch when the current one is exhausted; the pick prefers
   the ready launch with the fewest domains already on it, so many small
   launches spread across the pool instead of convoying behind one.

   Submission is deferred: [submit] only records the launch; nothing runs
   until [drain], which runs the scheduler to quiescence with the calling
   domain participating as worker 0 and [workers] pool domains joining.
   The command-queue layer ({!Queue}) builds its event / buffer-hazard
   dependency graph on top of [submit_locked]/[l_on_complete] under the
   same lock, so completion cascades are atomic with chunk scheduling. *)

module Sched = struct
  type launch_rec = {
    l_c : Interp.compiled;
    l_args : Interp.rv array;
    l_lsz : int array;
    l_gsz : int array;
    l_ngr : int array;
    l_path : path;
    l_n_groups : int;
    l_chunk : int;  (** max groups per claim (launch-size / width aware) *)
    l_width : int;  (** planned parallel width; bounds guided chunk sizing *)
    mutable l_next : int;  (** first unclaimed group *)
    mutable l_holders : int;  (** domains currently holding a context on us *)
    mutable l_finished : bool;
    mutable l_error : exn option;
    l_totals : Trace.totals;
        (** merged holder partials; complete once [l_finished] *)
    mutable l_on_complete : launch_rec -> unit;
        (** fired — scheduler lock held — when the last holder releases a
            fully executed (or poisoned) launch *)
  }

  let m = Mutex.create ()
  let work = Condition.create ()

  (* Launches with unclaimed groups, in submission order. *)
  let ready : launch_rec list ref = ref []

  (* Submitted launches not yet completed (including fully claimed ones
     still executing); [drain] runs until this reaches 0. *)
  let live = ref 0

  (** Run [f] with the scheduler lock held (the queue layer's enqueue /
      completion entry points). *)
  let locked f = Mutex.protect m f

  (* Chunks amortize scheduler locking but bound load imbalance: scale
     with the launch and the width it may spread over, so a 4096-group
     launch claims dozens of groups at a time while an 8-group launch on
     4 domains hands out single groups. *)
  let chunk_for ~n_groups ~width = max 1 (min 64 (n_groups / (max 1 width * 8)))

  let make (c : Interp.compiled) ~(rv_args : Interp.rv array)
      ~(lsz : int array) ~(gsz : int array) ~(ngr : int array) ~(path : path)
      ~(width : int) : launch_rec =
    let n_groups = ngr.(0) * ngr.(1) * ngr.(2) in
    {
      l_c = c;
      l_args = rv_args;
      l_lsz = lsz;
      l_gsz = gsz;
      l_ngr = ngr;
      l_path = path;
      l_n_groups = n_groups;
      l_chunk = chunk_for ~n_groups ~width;
      l_width = max 1 width;
      l_next = 0;
      l_holders = 0;
      l_finished = false;
      l_error = None;
      l_totals = Trace.empty_totals ();
      l_on_complete = ignore;
    }

  (* Lock held. *)
  let complete_locked (l : launch_rec) : unit =
    l.l_finished <- true;
    decr live;
    l.l_on_complete l;
    (* Completion may have readied dependent commands (queue layer), or
       left nothing live so sleeping workers can exit. *)
    Condition.broadcast work

  (* Lock held. An empty launch completes synchronously. *)
  let submit_locked (l : launch_rec) : unit =
    if l.l_n_groups = 0 then begin
      l.l_finished <- true;
      l.l_on_complete l
    end
    else begin
      incr live;
      ready := !ready @ [ l ];
      Condition.broadcast work
    end

  let submit (l : launch_rec) : unit = locked (fun () -> submit_locked l)

  (* Lock held: claim the next chunk of [l]; an exhausted launch drops out
     of the ready set. Guided self-scheduling as before, per launch: a
     claim takes a share of what remains (remaining / width, capped) so
     early claims amortize locking while the tail degrades to single
     groups. *)
  let claim_locked (l : launch_rec) : (int * int) option =
    if l.l_next >= l.l_n_groups then None
    else begin
      let remaining = l.l_n_groups - l.l_next in
      let sz = max 1 (min l.l_chunk (remaining / l.l_width)) in
      let g0 = l.l_next in
      l.l_next <- g0 + sz;
      if l.l_next >= l.l_n_groups then
        ready := List.filter (fun r -> r != l) !ready;
      Some (g0, sz)
    end

  (* Lock held: least-loaded ready launch, ties to the oldest. *)
  let pick_locked () : launch_rec option =
    List.fold_left
      (fun best l ->
        match best with
        | Some b when b.l_holders <= l.l_holders -> best
        | _ -> Some l)
      None !ready

  (* A domain's hold on a launch: the execution context it runs groups
     with, and a domain-private totals sink merged into the launch at
     release time (allocated on the worker domain — see the false-sharing
     note at the old parallel path, which this preserves). *)
  type holder = { h_l : launch_rec; h_x : exec_ctx; h_tot : Trace.totals }

  (* Per-domain context cache: the few most recent (kernel, geometry,
     path) execution contexts, so repeated launches of the same kernel —
     the bench / autotune / server pattern — rebind arguments into a hot
     context instead of rebuilding states, lane slots and local
     allocations every launch. *)
  let ctx_cache_max = 4

  type cached_ctx = {
    cc_c : Interp.compiled;
    cc_path : path;
    cc_lsz : int array;
    cc_gsz : int array;
    cc_ngr : int array;
    cc_x : exec_ctx;
  }

  let ctx_cache : cached_ctx list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let ctx_for (l : launch_rec) : exec_ctx =
    let cache = Domain.DLS.get ctx_cache in
    let matches cc =
      cc.cc_c == l.l_c && cc.cc_path = l.l_path && cc.cc_lsz = l.l_lsz
      && cc.cc_gsz = l.l_gsz && cc.cc_ngr = l.l_ngr
    in
    match List.find_opt matches !cache with
    | Some cc ->
        let x = cc.cc_x in
        (* Rebind this launch's arguments into the pooled states (every
           state of a context aliases one args array) and drop private
           allocations left by the previous launch; local allocations are
           kept — their addresses are (queue, offset)-determined and their
           storage is cleared per group anyway. *)
        Array.blit l.l_args 0 x.states.(0).Interp.args 0
          (Array.length l.l_args);
        x.scratch.Memory.buffers <-
          List.filter
            (fun (b : Memory.buffer) -> b.Memory.space <> Private)
            x.scratch.Memory.buffers;
        cache := cc :: List.filter (fun c -> c != cc) !cache;
        x
    | None ->
        let stats = Trace.fresh_stats ~wg_id:0 ~queue:0 ~wg_size:0 in
        let x =
          make_ctx l.l_c ~rv_args:(Array.copy l.l_args)
            ~scratch:(Memory.create ()) ~stats ~lsz:l.l_lsz ~gsz:l.l_gsz
            ~ngr:l.l_ngr ~path:l.l_path ()
        in
        let cc =
          {
            cc_c = l.l_c;
            cc_path = l.l_path;
            cc_lsz = l.l_lsz;
            cc_gsz = l.l_gsz;
            cc_ngr = l.l_ngr;
            cc_x = x;
          }
        in
        cache := cc :: take (ctx_cache_max - 1) !cache;
        x

  (* Execute a claimed chunk (no lock held). A failure poisons the launch:
     the first error is recorded, unclaimed groups are abandoned, and the
     error re-raises at the launch's wait point. *)
  let execute (h : holder) ~(g0 : int) ~(sz : int) ~(idx : int) : unit =
    try
      for wg = g0 to g0 + sz - 1 do
        run_one_group h.h_x ~wg ~queue:idx;
        Trace.accumulate h.h_tot h.h_x.stats
      done
    with e ->
      locked (fun () ->
          let l = h.h_l in
          if l.l_error = None then l.l_error <- Some e;
          if l.l_next < l.l_n_groups then begin
            l.l_next <- l.l_n_groups;
            ready := List.filter (fun r -> r != l) !ready
          end)

  (* Lock held: merge the holder's totals and complete the launch when it
     was the last one out. (A holder only ever sleeps with no launch held,
     so every in-flight chunk belongs to some holder: no-unclaimed-groups
     plus no-holders means fully executed.) *)
  let release_locked (h : holder) : unit =
    let l = h.h_l in
    Trace.merge_totals l.l_totals h.h_tot;
    l.l_holders <- l.l_holders - 1;
    if l.l_next >= l.l_n_groups && l.l_holders = 0 && not l.l_finished then
      complete_locked l

  type action =
    | Run of holder * int * int
    | Acquire of launch_rec
    | Retry
    | Exit

  (** Scheduler worker loop: claim and execute (launch, chunk) pairs until
      nothing is live, or [stop] (checked between chunks) says this domain
      may leave. [idx] is the stable worker index — it is the hardware-
      queue id work-groups observe, so local-memory addresses recycle per
      domain exactly as single-launch dispatch always did. *)
  let run_worker ~(idx : int) ~(stop : unit -> bool) : unit =
    let cur : holder option ref = ref None in
    let running = ref true in
    while !running do
      let act =
        locked (fun () ->
            let rec decide () =
              if stop () then begin
                (match !cur with
                | Some h ->
                    release_locked h;
                    cur := None
                | None -> ());
                Exit
              end
              else
                match !cur with
                | Some h -> (
                    match claim_locked h.h_l with
                    | Some (g0, sz) -> Run (h, g0, sz)
                    | None ->
                        release_locked h;
                        cur := None;
                        decide ())
                | None -> (
                    match pick_locked () with
                    | Some l ->
                        l.l_holders <- l.l_holders + 1;
                        Acquire l
                    | None ->
                        if !live = 0 then Exit
                        else begin
                          Condition.wait work m;
                          Retry
                        end)
            in
            decide ())
      in
      match act with
      | Run (h, g0, sz) -> execute h ~g0 ~sz ~idx
      | Acquire l ->
          (* Context lookup / construction is heavy; outside the lock. *)
          cur :=
            Some { h_l = l; h_x = ctx_for l; h_tot = Trace.empty_totals () }
      | Retry -> ()
      | Exit -> running := false
    done

  (** Run the scheduler from the launching domain: dispatch [workers] pool
      domains and participate as worker 0. Pool workers always run to
      quiescence (nothing live); [stop] lets the caller's own loop leave
      as soon as the event it waits on has fired — but with pool workers
      dispatched the call still returns only once they have drained
      everything, so a single-launch [drain ~workers:0] with a satisfied
      [stop] is the only early-return case. Only the main domain may call
      this (same rule as [Pool.dispatch]). *)
  let drain ?(stop = fun () -> false) ~(workers : int) () : unit =
    let workers = max 0 (min workers (max_domains - 1)) in
    if workers = 0 then run_worker ~idx:0 ~stop
    else begin
      Pool.dispatch ~workers (fun k ->
          run_worker ~idx:k ~stop:(fun () -> false));
      run_worker ~idx:0 ~stop;
      match Pool.wait () with Some e -> raise e | None -> ()
    end
end

(* -- Launch -------------------------------------------------------------------- *)

(** Launch a compiled kernel over the NDRange. [on_group] receives each
    work-group's statistics (with its raw memory events) as soon as the
    group finishes — the performance simulator consumes them streamingly.
    The [wg_stats] record is a pooled buffer reused for the next group:
    [on_group] must extract what it needs before returning and must not
    retain the record.

    [domains > 1] runs work-groups concurrently on that many OCaml domains
    (true multicore execution, on the persistent pool, with atomic
    chunk-claimed group distribution); [domains = 0] asks for
    [Domain.recommended_domain_count ()], clamped to a sane range. This is
    for correctness/throughput runs: it requires [on_group] to be [None]
    (the performance simulator needs a deterministic group order) and
    assumes work-groups write disjoint output elements, as well-formed
    data-parallel kernels do.

    [force_fibers] runs a barrier-free kernel under the fiber scheduler
    anyway — the differential test hook for the fast path.

    [sanitizer] installs a {!Sanitize.t} on every work-item state: each
    load/store is checked for intra-group races and out-of-bounds indices
    (findings accumulate in the sanitizer; the run's buffers are
    unaffected). Sanitized launches run on one domain — the shadow state
    is not thread-safe, so a larger [domains] request is clamped.

    Returns aggregate totals. *)
let launch (c : Interp.compiled) ~(cfg : launch_config)
    ~(args : arg_binding list) ~(mem : Memory.t)
    ?(on_group : (Trace.wg_stats -> unit) option) ?(domains = 1)
    ?(force_fibers = false) ?force_path ?(sanitizer : Sanitize.t option) () :
    Trace.totals =
  let gx, gy, gz = cfg.global and lx, ly, lz = cfg.local in
  if lx <= 0 || ly <= 0 || lz <= 0 then fail "work-group sizes must be positive";
  if gx mod lx <> 0 || gy mod ly <> 0 || gz mod lz <> 0 then
    fail "global size must be a multiple of the work-group size";
  let rv_args = bind_args c.Interp.fn args in
  let lsz = [| lx; ly; lz |] in
  let gsz = [| gx; gy; gz |] in
  let ngr = [| gx / lx; gy / ly; gz / lz |] in
  let totals = Trace.empty_totals () in
  let n_groups = ngr.(0) * ngr.(1) * ngr.(2) in
  let domains = if sanitizer <> None then 1 else domains in
  let { path; domains_used = d; _ } =
    plan c ~cfg ~force_fibers ?force_path ~domains ()
  in
  if d <= 1 then begin
    (* One pooled execution context for the whole launch: states, stats
       event arrays and local allocations all keep their capacity across
       groups. *)
    let stats = Trace.fresh_stats ~wg_id:0 ~queue:0 ~wg_size:0 in
    let x =
      make_ctx c ~rv_args ~scratch:mem ~stats ~lsz ~gsz ~ngr ~path
        ?san:sanitizer ()
    in
    for wg = 0 to n_groups - 1 do
      let queue = wg mod max 1 cfg.queues in
      run_one_group x ~wg ~queue;
      Trace.accumulate totals stats;
      match on_group with Some f -> f stats | None -> ()
    done;
    totals
  end
  else begin
    if on_group <> None then
      fail "parallel launches cannot stream per-group traces";
    (* One launch through the multi-launch scheduler: the same
       guided-chunk distribution as before, with each domain reusing a
       cached execution context (own scratch memory for local/private
       allocations; global buffers inside rv_args are shared, and
       well-formed kernels write disjoint elements). *)
    let lr = Sched.make c ~rv_args ~lsz ~gsz ~ngr ~path ~width:d in
    Sched.submit lr;
    Sched.drain ~workers:(d - 1) ();
    (match lr.Sched.l_error with Some e -> raise e | None -> ());
    Trace.merge_totals totals lr.Sched.l_totals;
    totals
  end

(** Launch under the sanitizer and return the totals plus every finding.
    An out-of-bounds access aborts the launch after being recorded (normal
    mode would have crashed on the same access); runtime barrier
    divergence still raises {!Launch_error} — drivers render it as a
    diagnostic of its own. The execution itself is bit-identical to a
    normal [launch]. *)
let run_sanitized (c : Interp.compiled) ~(cfg : launch_config)
    ~(args : arg_binding list) ~(mem : Memory.t) ?(force_fibers = false)
    ?force_path () : Trace.totals * Sanitize.finding list =
  let san = Sanitize.create () in
  let totals =
    try launch c ~cfg ~args ~mem ~force_fibers ?force_path ~sanitizer:san ()
    with Sanitize.Abort _ -> Trace.empty_totals ()
  in
  (totals, Sanitize.findings san)

(** Compile OpenCL C source into launchable kernels (normalised IR). *)
let compile_source ?defines (src : string) : (string * Interp.compiled) list =
  Lower.compile ?defines src
  |> List.map (fun fn ->
         Grover_passes.Pipeline.normalize fn;
         (fn.f_name, Interp.prepare fn))

let compile_kernel ?defines (src : string) ~(name : string) : Interp.compiled =
  match List.assoc_opt name (compile_source ?defines src) with
  | Some c -> c
  | None -> fail "kernel %s not found in source" name
