(** Kernel launch: NDRange iteration, per-group local-memory allocation,
    and the barrier-aware group scheduler built on effect handlers. *)

open Grover_ir
open Ssa

type arg_binding =
  | Abuf of Memory.buffer
  | Aint of int
  | Afloat of float

type launch_config = {
  global : int * int * int;  (** global work size per dimension *)
  local : int * int * int;  (** work-group size per dimension *)
  queues : int;  (** hardware queues (cores / CUs); groups round-robin *)
}

exception Launch_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Launch_error m)) fmt

let bind_args (fn : func) (bindings : arg_binding list) : Interp.rv array =
  if List.length bindings <> List.length fn.f_args then
    fail "kernel %s expects %d arguments, got %d" fn.f_name
      (List.length fn.f_args) (List.length bindings);
  Array.of_list
    (List.map2
       (fun (a : arg) b ->
         match (a.a_ty, b) with
         | Ptr (sp, elem), Abuf buf ->
             if buf.Memory.elem <> elem then
               fail "argument %s: buffer element type mismatch" a.a_name;
             if sp <> buf.Memory.space && not (sp = Global && buf.Memory.space = Constant)
             then fail "argument %s: address space mismatch" a.a_name;
             Interp.RBuf buf
         | (I8 | I16 | I32 | I64), Aint n -> Interp.RInt n
         | F32, Afloat f -> Interp.RFloat f
         | _, _ -> fail "argument %s: binding type mismatch" a.a_name)
       fn.f_args bindings)

(* Execute one work-group: spawn every work-item as a fiber; park them at
   barriers; resume in rounds until all are done. *)
let run_group (c : Interp.compiled) ~(args : Interp.rv array)
    ~(grp : int array) ~(lsz : int array) ~(gsz : int array)
    ~(ngr : int array) ~(stats : Trace.wg_stats)
    ~(local_bufs : (int, Memory.buffer) Hashtbl.t) ~(mem : Memory.t)
    ~(queue : int) : unit =
  let open Effect.Deep in
  let n_items = lsz.(0) * lsz.(1) * lsz.(2) in
  let parked : (unit, unit) continuation Queue.t = Queue.create () in
  let finished = ref 0 in
  let start_item flat =
    let lid =
      [| flat mod lsz.(0); flat / lsz.(0) mod lsz.(1); flat / (lsz.(0) * lsz.(1)) |]
    in
    let gid = Array.init 3 (fun d -> (grp.(d) * lsz.(d)) + lid.(d)) in
    let ctx =
      { Interp.lid; gid; grp; lsz; gsz; ngr; flat_lid = flat }
    in
    let st = Interp.make_state c ~args ~ctx ~stats ~local_bufs ~mem ~queue in
    match_with
      (fun () ->
        Interp.run_workitem st;
        incr finished)
      ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Interp.Barrier_hit ->
                Some
                  (fun (k : (a, unit) continuation) -> Queue.add k parked)
            | _ -> None);
      }
  in
  for flat = 0 to n_items - 1 do
    start_item flat
  done;
  (* Barrier rounds: every still-running work-item must have parked. *)
  while not (Queue.is_empty parked) do
    let waiting = Queue.length parked in
    if waiting + !finished <> n_items then
      fail
        "barrier divergence in %s: %d of %d work-items reached the barrier"
        c.Interp.fn.f_name waiting (n_items - !finished);
    stats.Trace.barrier_rounds <- stats.Trace.barrier_rounds + 1;
    let batch = Queue.create () in
    Queue.transfer parked batch;
    Queue.iter (fun k -> continue k ()) batch
  done;
  if !finished <> n_items then
    fail "work-group did not run to completion in %s" c.Interp.fn.f_name

let run_one_group (c : Interp.compiled) ~(rv_args : Interp.rv array)
    ~(scratch : Memory.t) ~(stats : Trace.wg_stats) ~(wg : int)
    ~(ngr : int array) ~(lsz : int array) ~(gsz : int array) ~(queue : int) :
    unit =
  let grp =
    [| wg mod ngr.(0); wg / ngr.(0) mod ngr.(1); wg / (ngr.(0) * ngr.(1)) |]
  in
  (* Per-group local buffers; addresses recycle per queue (vendor CPU
     runtimes map local memory to a per-thread allocation). *)
  let local_bufs = Hashtbl.create 4 in
  let offset = ref 0 in
  List.iter
    (fun (i : instr) ->
      match i.op with
      | Alloca { elem; count; _ } ->
          let b = Memory.alloc_local scratch ~queue ~offset:!offset elem count in
          offset := !offset + (count * ty_size_bytes elem);
          Hashtbl.replace local_bufs i.iid b
      | _ -> ())
    c.Interp.local_allocas;
  Trace.reset stats ~wg_id:wg ~queue ~wg_size:(lsz.(0) * lsz.(1) * lsz.(2));
  run_group c ~args:rv_args ~grp ~lsz ~gsz ~ngr ~stats ~local_bufs
    ~mem:scratch ~queue

(** Launch a compiled kernel over the NDRange. [on_group] receives each
    work-group's statistics (with its raw memory events) as soon as the
    group finishes — the performance simulator consumes them streamingly.
    The [wg_stats] record is a pooled buffer reused for the next group:
    [on_group] must extract what it needs before returning and must not
    retain the record.

    [domains > 1] runs work-groups concurrently on that many OCaml domains
    (true multicore execution); [domains = 0] asks for
    [Domain.recommended_domain_count ()], clamped to a sane range. This is
    for correctness/throughput runs: it requires [on_group] to be [None]
    (the performance simulator needs a deterministic group order) and
    assumes work-groups write disjoint output elements, as well-formed
    data-parallel kernels do.

    Returns aggregate totals. *)
let launch (c : Interp.compiled) ~(cfg : launch_config)
    ~(args : arg_binding list) ~(mem : Memory.t)
    ?(on_group : (Trace.wg_stats -> unit) option) ?(domains = 1) () :
    Trace.totals =
  let domains =
    if domains = 0 then max 1 (min 64 (Domain.recommended_domain_count ()))
    else domains
  in
  let gx, gy, gz = cfg.global and lx, ly, lz = cfg.local in
  if lx <= 0 || ly <= 0 || lz <= 0 then fail "work-group sizes must be positive";
  if gx mod lx <> 0 || gy mod ly <> 0 || gz mod lz <> 0 then
    fail "global size must be a multiple of the work-group size";
  let rv_args = bind_args c.Interp.fn args in
  let lsz = [| lx; ly; lz |] in
  let gsz = [| gx; gy; gz |] in
  let ngr = [| gx / lx; gy / ly; gz / lz |] in
  let totals = Trace.empty_totals () in
  let n_groups = ngr.(0) * ngr.(1) * ngr.(2) in
  if domains <= 1 || n_groups < 2 then begin
    (* One pooled stats buffer for the whole launch; its event arrays keep
       their capacity across groups. *)
    let stats = Trace.fresh_stats ~wg_id:0 ~queue:0 ~wg_size:0 in
    for wg = 0 to n_groups - 1 do
      let queue = wg mod max 1 cfg.queues in
      run_one_group c ~rv_args ~scratch:mem ~stats ~wg ~ngr ~lsz ~gsz ~queue;
      Trace.accumulate totals stats;
      match on_group with Some f -> f stats | None -> ()
    done;
    totals
  end
  else begin
    if on_group <> None then
      fail "parallel launches cannot stream per-group traces";
    let d = min domains n_groups in
    let worker k () =
      (* Each domain gets its own scratch memory for local/private
         allocations; global buffers (inside rv_args) are shared, and
         well-formed kernels write disjoint elements. *)
      let scratch = Memory.create () in
      let stats = Trace.fresh_stats ~wg_id:0 ~queue:k ~wg_size:0 in
      let local = Trace.empty_totals () in
      let wg = ref k in
      while !wg < n_groups do
        run_one_group c ~rv_args ~scratch ~stats ~wg:!wg ~ngr ~lsz ~gsz
          ~queue:k;
        Trace.accumulate local stats;
        wg := !wg + d
      done;
      local
    in
    let spawned = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let mine = worker 0 () in
    let merge (a : Trace.totals) (b : Trace.totals) =
      a.Trace.t_int_ops <- a.Trace.t_int_ops + b.Trace.t_int_ops;
      a.Trace.t_float_ops <- a.Trace.t_float_ops + b.Trace.t_float_ops;
      a.Trace.t_special_ops <- a.Trace.t_special_ops + b.Trace.t_special_ops;
      a.Trace.t_branches <- a.Trace.t_branches + b.Trace.t_branches;
      a.Trace.t_barriers <- a.Trace.t_barriers + b.Trace.t_barriers;
      a.Trace.t_loads <- a.Trace.t_loads + b.Trace.t_loads;
      a.Trace.t_stores <- a.Trace.t_stores + b.Trace.t_stores;
      a.Trace.t_local_accesses <-
        a.Trace.t_local_accesses + b.Trace.t_local_accesses;
      a.Trace.t_groups <- a.Trace.t_groups + b.Trace.t_groups
    in
    merge totals mine;
    List.iter (fun h -> merge totals (Domain.join h)) spawned;
    totals
  end

(** Compile OpenCL C source into launchable kernels (normalised IR). *)
let compile_source ?defines (src : string) : (string * Interp.compiled) list =
  Lower.compile ?defines src
  |> List.map (fun fn ->
         Grover_passes.Pipeline.normalize fn;
         (fn.f_name, Interp.prepare fn))

let compile_kernel ?defines (src : string) ~(name : string) : Interp.compiled =
  match List.assoc_opt name (compile_source ?defines src) with
  | Some c -> c
  | None -> fail "kernel %s not found in source" name
