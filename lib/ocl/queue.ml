(** Out-of-order command queues (OpenCL in-context command queue
    analogue) over the multi-launch chunk scheduler {!Runtime.Sched}.

    [enqueue_nd_range] (and the [enqueue_read] / [enqueue_write] buffer
    barriers, and [enqueue_marker]) record commands and return an
    {!Event.t} immediately; nothing executes until [finish] or [wait]
    drains the scheduler. A command becomes ready when every dependency
    has completed; dependencies are the explicit event wait-list plus
    implicit buffer hazards: a command that reads a buffer is ordered
    after the last enqueued writer (RAW), a command that writes one after
    the last writer and all readers since (WAW, WAR). Which pointer
    arguments a kernel may read or write is derived from its IR
    ({!arg_modes}: pointer provenance through phis/selects/casts, falling
    back to "reads and writes everything" for opaque flows), so
    well-formed independent launches need no explicit events at all.

    Ready launches are executed as (launch, chunk) pairs pulled from the
    shared ready set — many small launches saturate the domain pool even
    when no single launch scales (the pocl command-queue model). Totals
    accumulate per event and per queue by the same additive
    {!Trace.merge_totals} a sequential run uses, so fig2/fig10/table4
    aggregates are schedule-invariant.

    All queues share one scheduler: [finish] on any queue drains every
    submitted command in the process. Only the main domain may enqueue or
    drain (same rule as parallel {!Runtime.launch}). Sanitized execution
    is not routed through queues — {!Runtime.run_sanitized} runs
    launches one at a time on one domain. *)

open Grover_ir
open Ssa
module Sched = Runtime.Sched

(* -- Which pointer args may a kernel read / write? ------------------------- *)

(** [(may_read, may_write)] per kernel argument index. Conservative:
    pointer provenance is tracked through phis, selects and casts; a
    pointer reaching a [Load]/[Store] through any flow the walk cannot
    resolve (including phi cycles and unknown callees) taints every
    pointer argument. *)
let compute_arg_modes (fn : func) : (bool * bool) array =
  let n = List.length fn.f_args in
  let reads = Array.make n false and writes = Array.make n false in
  let all = List.init n Fun.id in
  let memo : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let visiting : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec ptr_args (v : value) : int list =
    match v with
    | Arg a -> ( match a.a_ty with Ptr _ -> [ a.a_index ] | _ -> [])
    | Cint _ | Cfloat _ -> []
    | Vinstr i -> (
        match Hashtbl.find_opt memo i.iid with
        | Some s -> s
        | None ->
            if Hashtbl.mem visiting i.iid then
              (* A pointer phi cycle: give up on precision, not safety. *)
              all
            else begin
              Hashtbl.add visiting i.iid ();
              let s =
                match i.op with
                | Alloca _ -> []
                | Phi { incoming; _ } ->
                    List.concat_map (fun (_, v) -> ptr_args v) incoming
                | Select (_, a, b) -> ptr_args a @ ptr_args b
                | Cast (_, v, _) -> ptr_args v
                | _ -> ( match type_of v with Ptr _ -> all | _ -> [])
              in
              Hashtbl.remove visiting i.iid;
              Hashtbl.replace memo i.iid s;
              s
            end)
  in
  iter_instrs
    (fun i ->
      match i.op with
      | Load { ptr; _ } ->
          List.iter (fun k -> reads.(k) <- true) (ptr_args ptr)
      | Store { ptr; _ } ->
          List.iter (fun k -> writes.(k) <- true) (ptr_args ptr)
      | Call { args; _ } ->
          (* Unknown callee: a pointer argument may be read and written. *)
          List.iter
            (fun v ->
              match type_of v with
              | Ptr _ ->
                  List.iter
                    (fun k ->
                      reads.(k) <- true;
                      writes.(k) <- true)
                    (ptr_args v)
              | _ -> ())
            args
      | _ -> ())
    fn;
  Array.init n (fun k -> (reads.(k), writes.(k)))

(* Memoized per function (physical identity — IR is not hash-consed):
   enqueues of the same compiled kernel, the common case, pay the IR walk
   once. Main-domain only, like every enqueue entry point. *)
let arg_modes_memo : (func * (bool * bool) array) list ref = ref []
let arg_modes_memo_max = 64

let arg_modes (fn : func) : (bool * bool) array =
  match List.find_opt (fun (f, _) -> f == fn) !arg_modes_memo with
  | Some (_, m) -> m
  | None ->
      let m = compute_arg_modes fn in
      let keep =
        List.filteri (fun i _ -> i < arg_modes_memo_max - 1) !arg_modes_memo
      in
      arg_modes_memo := (fn, m) :: keep;
      m

(* -- Queues ----------------------------------------------------------------- *)

(* Last enqueued writer and the readers since, per buffer ([buid]). *)
type hazard = {
  mutable hz_writer : Event.t option;
  mutable hz_readers : Event.t list;
}

type t = {
  q_domains : int;  (** drain width request; 0 = auto *)
  mutable q_pending : int;  (** enqueued, not yet completed commands *)
  mutable q_live : Event.t list;
      (** still-pending events, newest first — what an empty-wait-list
          marker ("after everything enqueued so far") depends on *)
  mutable q_error : exn option;  (** first command failure; sticky *)
  q_totals : Trace.totals;
      (** merged totals of every completed launch, identical to
          sequentially launching and merging *)
  hazards : (int, hazard) Hashtbl.t;
}

let create ?(domains = 0) () : t =
  {
    q_domains = domains;
    q_pending = 0;
    q_live = [];
    q_error = None;
    q_totals = Trace.empty_totals ();
    hazards = Hashtbl.create 16;
  }

(* A recorded command waiting on [p_deps] incomplete dependencies;
   [p_fire] (scheduler lock held) submits the launch / completes the
   marker once the count reaches 0. *)
type pending = { mutable p_deps : int; p_fire : unit -> unit }

(* Global completion order across all queues (scheduler lock held). *)
let completion_seq = ref 0

(* Lock held: mark [ev] complete and fire dependency callbacks. *)
let complete_locked (q : t) (ev : Event.t) ~(totals : Trace.totals option)
    ~(error : exn option) : unit =
  ev.Event.ev_state <- Event.Complete;
  ev.Event.ev_completed <- Unix.gettimeofday ();
  incr completion_seq;
  ev.Event.ev_seqno <- !completion_seq;
  ev.Event.ev_totals <- totals;
  ev.Event.ev_error <- error;
  (match (totals, error) with
  | Some t, None -> Trace.merge_totals q.q_totals t
  | _ -> ());
  (match error with
  | Some e when q.q_error = None -> q.q_error <- Some e
  | _ -> ());
  q.q_pending <- q.q_pending - 1;
  q.q_live <- List.filter (fun e -> e != ev) q.q_live;
  let cbs = ev.Event.ev_callbacks in
  ev.Event.ev_callbacks <- [];
  List.iter (fun f -> f ()) cbs

(* Lock held: make [p] depend on [deps] (dedup'd, completed ones skipped)
   and fire it if nothing is left to wait for. *)
let resolve_deps_locked (p : pending) (deps : Event.t list) : unit =
  let deps =
    List.sort_uniq
      (fun (a : Event.t) b -> compare a.Event.ev_id b.Event.ev_id)
      deps
  in
  List.iter
    (fun (ev : Event.t) ->
      if ev.Event.ev_state = Event.Pending then begin
        p.p_deps <- p.p_deps + 1;
        ev.Event.ev_callbacks <-
          (fun () ->
            p.p_deps <- p.p_deps - 1;
            if p.p_deps = 0 then p.p_fire ())
          :: ev.Event.ev_callbacks
      end)
    deps;
  if p.p_deps = 0 then p.p_fire ()

let hazard_for (q : t) (buf : Memory.buffer) : hazard =
  match Hashtbl.find_opt q.hazards buf.Memory.buid with
  | Some h -> h
  | None ->
      let h = { hz_writer = None; hz_readers = [] } in
      Hashtbl.add q.hazards buf.Memory.buid h;
      h

(* Lock held: dependencies implied by reading [reads] and writing
   [writes], then record [ev] as the new reader/writer. *)
let hazard_deps_locked (q : t) ~(reads : Memory.buffer list)
    ~(writes : Memory.buffer list) (ev : Event.t) : Event.t list =
  let deps = ref [] in
  List.iter
    (fun b ->
      match (hazard_for q b).hz_writer with
      | Some w -> deps := w :: !deps
      | None -> ())
    reads;
  List.iter
    (fun b ->
      let h = hazard_for q b in
      (match h.hz_writer with Some w -> deps := w :: !deps | None -> ());
      deps := h.hz_readers @ !deps)
    writes;
  List.iter (fun b -> (hazard_for q b).hz_readers <- ev :: (hazard_for q b).hz_readers) reads;
  List.iter
    (fun b ->
      let h = hazard_for q b in
      h.hz_writer <- Some ev;
      h.hz_readers <- [])
    writes;
  !deps

(* -- Enqueue ---------------------------------------------------------------- *)

(** Enqueue an ND-range launch. Executes — once [finish]/[wait] drains
    the scheduler — after every event in [wait] and every command it has
    a buffer hazard against; independent launches run concurrently as
    interleaved group-chunks over the domain pool. Execution matches
    [Runtime.launch ~domains] on the same arguments: same plan policy,
    same per-queue local-memory addresses, and totals that merge to the
    same values. *)
let enqueue_nd_range (q : t) (c : Interp.compiled)
    ~(cfg : Runtime.launch_config) ~(args : Runtime.arg_binding list)
    ?(wait : Event.t list = []) ?(force_fibers = false) ?force_path () :
    Event.t =
  let gx, gy, gz = cfg.Runtime.global and lx, ly, lz = cfg.Runtime.local in
  if lx <= 0 || ly <= 0 || lz <= 0 then
    raise (Runtime.Launch_error "work-group sizes must be positive");
  if gx mod lx <> 0 || gy mod ly <> 0 || gz mod lz <> 0 then
    raise
      (Runtime.Launch_error
         "global size must be a multiple of the work-group size");
  let rv_args = Runtime.bind_args c.Interp.fn args in
  let plan =
    Runtime.plan c ~cfg ~force_fibers ?force_path ~domains:q.q_domains ()
  in
  let lsz = [| lx; ly; lz |] in
  let gsz = [| gx; gy; gz |] in
  let ngr = [| gx / lx; gy / ly; gz / lz |] in
  let lr =
    Sched.make c ~rv_args ~lsz ~gsz ~ngr ~path:plan.Runtime.path
      ~width:plan.Runtime.domains_used
  in
  let ev = Event.make () in
  let modes = arg_modes c.Interp.fn in
  let reads = ref [] and writes = ref [] in
  List.iteri
    (fun k (b : Runtime.arg_binding) ->
      match b with
      | Runtime.Abuf buf ->
          let r, w =
            if k < Array.length modes then modes.(k) else (true, true)
          in
          if r then reads := buf :: !reads;
          if w then writes := buf :: !writes
      | Runtime.Aint _ | Runtime.Afloat _ -> ())
    args;
  lr.Sched.l_on_complete <-
    (fun (lr : Sched.launch_rec) ->
      complete_locked q ev ~totals:(Some lr.Sched.l_totals)
        ~error:lr.Sched.l_error);
  Sched.locked (fun () ->
      q.q_pending <- q.q_pending + 1;
      let p =
        {
          p_deps = 0;
          p_fire =
            (fun () ->
              ev.Event.ev_submitted <- Unix.gettimeofday ();
              Sched.submit_locked lr);
        }
      in
      let deps = hazard_deps_locked q ~reads:!reads ~writes:!writes ev in
      q.q_live <- ev :: q.q_live;
      resolve_deps_locked p (wait @ deps));
  ev

(* Marker-style commands share one shape: no execution, they complete the
   moment their dependencies have. *)
let enqueue_barrier ?(all = false) (q : t) ~(reads : Memory.buffer list)
    ~(writes : Memory.buffer list) ~(wait : Event.t list) : Event.t =
  let ev = Event.make () in
  Sched.locked (fun () ->
      q.q_pending <- q.q_pending + 1;
      let p =
        {
          p_deps = 0;
          p_fire =
            (fun () ->
              ev.Event.ev_submitted <- Unix.gettimeofday ();
              complete_locked q ev ~totals:None ~error:None);
        }
      in
      (* Snapshot before [ev] joins the live set: no self-dependency. *)
      let prior = if all then q.q_live else [] in
      let deps = hazard_deps_locked q ~reads ~writes ev in
      q.q_live <- ev :: q.q_live;
      resolve_deps_locked p (wait @ prior @ deps));
  ev

(** A read barrier on [buf]: its event completes once every previously
    enqueued command writing [buf] has — the host may then read the
    buffer's contents (OpenCL [clEnqueueReadBuffer] without the copy). *)
let enqueue_read (q : t) (buf : Memory.buffer) ?(wait = []) () : Event.t =
  enqueue_barrier q ~reads:[ buf ] ~writes:[] ~wait

(** A write barrier on [buf]: its event completes once every previously
    enqueued command touching [buf] has, and every later command touching
    it is ordered after this event — the fence around a host-side update
    of the buffer. *)
let enqueue_write (q : t) (buf : Memory.buffer) ?(wait = []) () : Event.t =
  enqueue_barrier q ~reads:[] ~writes:[ buf ] ~wait

(** A pure synchronization point: completes after [wait] (after all of
    [q]'s previously enqueued commands when [wait] is empty — an
    [clEnqueueBarrierWithWaitList] analogue is built by passing those
    events explicitly). *)
let enqueue_marker (q : t) ?(wait = []) () : Event.t =
  enqueue_barrier ~all:(wait = []) q ~reads:[] ~writes:[] ~wait

(* -- Drain ------------------------------------------------------------------ *)

let width (q : t) : int =
  min (Runtime.resolve_domains q.q_domains) (Runtime.effective_domain_cap ())

(** Drain the scheduler to quiescence (every submitted command in the
    process, not just [q]'s) with the caller participating as worker 0,
    then re-raise the first failure among [q]'s commands, if any. *)
let finish (q : t) : unit =
  Runtime.Sched.drain ~workers:(width q - 1) ();
  Sched.locked (fun () ->
      if q.q_pending > 0 then
        raise
          (Runtime.Launch_error
             "Queue.finish: commands still pending after drain (wait-list \
              cycle?)"));
  match q.q_error with Some e -> raise e | None -> ()

(** Wait for one event (drains the scheduler; with pool workers involved
    this runs to quiescence like [finish]), then re-raise its command's
    failure, if any. *)
let wait (q : t) (ev : Event.t) : unit =
  if not (Event.is_complete ev) then
    Runtime.Sched.drain
      ~stop:(fun () -> Event.is_complete ev)
      ~workers:(width q - 1) ();
  if not (Event.is_complete ev) then
    raise
      (Runtime.Launch_error
         "Queue.wait: event still pending after drain (wait-list cycle?)");
  match Event.error ev with Some e -> raise e | None -> ()

(** Merged trace totals of every launch completed on [q] so far —
    bit-identical to sequentially launching the same set and merging. *)
let totals (q : t) : Trace.totals = q.q_totals
