(** Device memory: flat buffers with a byte-address layout for the
    performance simulator.

    Every buffer gets a range in a single 64-bit address space (global and
    constant buffers from a bump allocator; local buffers inside per-queue
    regions so that a hardware thread re-uses the same local addresses
    across work-groups, as vendor CPU runtimes do). Data itself lives in
    OCaml arrays — one scalar slot per vector lane. *)

open Grover_ir
open Ssa

type storage = F of float array | I of int array

type buffer = {
  bid : int;
  buid : int;
      (** process-globally unique id (buffers of different {!t}s share a
          [bid] space but never a [buid]); the command-queue layer keys its
          read/write hazard tracking on it. Allocated atomically — worker
          domains allocate private buffers concurrently. *)
  mutable bname : string;
      (** best-known source name: the [__local] variable or the kernel
          argument the buffer is bound to ("" until known); diagnostics
          only, never used for lookup *)
  elem : ty;  (** element type (may be a vector) *)
  lanes : int;  (** scalar lanes per element (1 for scalars) *)
  elem_bytes : int;
  n : int;  (** number of elements *)
  st : storage;
  base_addr : int;  (** byte address of element 0 *)
  space : space;
}

type t = {
  mutable next_addr : int;
  mutable next_bid : int;
  mutable buffers : buffer list;
}

let global_base = 0x1000_0000
let local_region_base = 0x0100_0000
let local_region_size = 0x0010_0000 (* 1 MiB of local addresses per queue *)

let create () : t = { next_addr = global_base; next_bid = 0; buffers = [] }

let next_buid = Atomic.make 0

let scalar_of = function Vec (s, _) -> s | s -> s

let lanes_of = function Vec (_, n) -> n | _ -> 1

let storage_for (elem : ty) (slots : int) : storage =
  match scalar_of elem with
  | F32 -> F (Array.make slots 0.0)
  | I1 | I8 | I16 | I32 | I64 -> I (Array.make slots 0)
  | _ -> invalid_arg "storage_for: unsupported element type"

let align_up n a = (n + a - 1) / a * a

let alloc_at (m : t) ?(name = "") ~(space : space) ~(base_addr : int)
    (elem : ty) (n : int) : buffer =
  let lanes = lanes_of elem in
  let b =
    {
      bid = m.next_bid;
      buid = Atomic.fetch_and_add next_buid 1;
      bname = name;
      elem;
      lanes;
      elem_bytes = ty_size_bytes elem;
      n;
      st = storage_for elem (n * lanes);
      base_addr;
      space;
    }
  in
  m.next_bid <- m.next_bid + 1;
  m.buffers <- b :: m.buffers;
  b

(** Allocate a global (or constant) buffer of [n] elements. *)
let alloc (m : t) ?name ?(space = Global) (elem : ty) (n : int) : buffer =
  let base = align_up m.next_addr 256 in
  let b = alloc_at m ?name ~space ~base_addr:base elem n in
  m.next_addr <- base + (n * ty_size_bytes elem);
  b

(** Allocate a local buffer whose addresses live in [queue]'s local region
    at byte offset [offset] (so a queue re-uses the same local addresses
    for every work-group it runs). *)
let alloc_local (m : t) ?name ~(queue : int) ~(offset : int) (elem : ty)
    (n : int) : buffer =
  let base = local_region_base + (queue * local_region_size) + offset in
  alloc_at m ?name ~space:Local ~base_addr:base elem n

(** A short human label for diagnostics: the source name when known,
    otherwise the address space plus buffer id. *)
let describe (b : buffer) : string =
  let space =
    match b.space with
    | Global -> "global"
    | Local -> "local"
    | Constant -> "constant"
    | Private -> "private"
  in
  if b.bname <> "" then Printf.sprintf "%s buffer '%s'" space b.bname
  else Printf.sprintf "%s buffer #%d" space b.bid

(** Zero a buffer's storage in place. The runtime reuses one local-memory
    allocation per (queue, launch) across all the work-groups that run on
    that queue; clearing it at group start restores the fresh-buffer
    semantics groups observed when each one allocated its own storage. *)
let clear (b : buffer) : unit =
  match b.st with
  | F a -> Array.fill a 0 (Array.length a) 0.0
  | I a -> Array.fill a 0 (Array.length a) 0

(* -- Element access ------------------------------------------------------- *)

let addr_of (b : buffer) (idx : int) : int = b.base_addr + (idx * b.elem_bytes)

let check b idx =
  if idx < 0 || idx >= b.n then
    invalid_arg
      (Printf.sprintf "buffer %d (%s): element index %d out of bounds [0,%d)"
         b.bid
         (match b.space with
         | Global -> "global"
         | Local -> "local"
         | Constant -> "constant"
         | Private -> "private")
         idx b.n)

let get_float (b : buffer) (idx : int) : float =
  check b idx;
  match b.st with F a -> a.(idx) | I a -> float_of_int a.(idx)

let set_float (b : buffer) (idx : int) (v : float) : unit =
  check b idx;
  match b.st with F a -> a.(idx) <- v | I a -> a.(idx) <- int_of_float v

let get_int (b : buffer) (idx : int) : int =
  check b idx;
  match b.st with I a -> a.(idx) | F a -> int_of_float a.(idx)

let set_int (b : buffer) (idx : int) (v : int) : unit =
  check b idx;
  match b.st with I a -> a.(idx) <- v | F a -> a.(idx) <- float_of_int v

(* Lane-resolved accessors for vector elements. *)
let slot (b : buffer) (idx : int) (lane : int) : int = (idx * b.lanes) + lane

let get_lane_float (b : buffer) (idx : int) (lane : int) : float =
  check b idx;
  match b.st with
  | F a -> a.(slot b idx lane)
  | I a -> float_of_int a.(slot b idx lane)

let set_lane_float (b : buffer) (idx : int) (lane : int) (v : float) : unit =
  check b idx;
  match b.st with
  | F a -> a.(slot b idx lane) <- v
  | I a -> a.(slot b idx lane) <- int_of_float v

let get_lane_int (b : buffer) (idx : int) (lane : int) : int =
  check b idx;
  match b.st with
  | I a -> a.(slot b idx lane)
  | F a -> int_of_float a.(slot b idx lane)

let set_lane_int (b : buffer) (idx : int) (lane : int) (v : int) : unit =
  check b idx;
  match b.st with
  | I a -> a.(slot b idx lane) <- v
  | F a -> a.(slot b idx lane) <- float_of_int v

(* -- Whole-buffer helpers for hosts and tests ------------------------------ *)

let fill_floats (b : buffer) (f : int -> float) : unit =
  match b.st with
  | F a -> Array.iteri (fun i _ -> a.(i) <- f i) a
  | I _ -> invalid_arg "fill_floats on an integer buffer"

let fill_ints (b : buffer) (f : int -> int) : unit =
  match b.st with
  | I a -> Array.iteri (fun i _ -> a.(i) <- f i) a
  | F _ -> invalid_arg "fill_ints on a float buffer"

let to_float_array (b : buffer) : float array =
  match b.st with F a -> Array.copy a | I a -> Array.map float_of_int a

let to_int_array (b : buffer) : int array =
  match b.st with I a -> Array.copy a | F a -> Array.map int_of_float a
