(** Dynamic memory sanitizer: shadow every buffer with last-accessor
    metadata and flag intra-group races and out-of-bounds accesses while a
    kernel runs.

    Each buffer element gets a shadow cell recording the last writer and
    the last reader as [(flat work-item id, epoch stamp)]. The epoch is a
    single monotone counter bumped when a work-group starts and again after
    every barrier round, so two accesses carry the same stamp iff they were
    made by the same work-group inside the same barrier interval — exactly
    the window in which the OpenCL memory model gives no ordering between
    distinct work-items. The checks are then local and O(1) per access:

    - write after write by another work-item in the same epoch: a
      write/write race;
    - write after read, or read after write, by another work-item in the
      same epoch: a read/write race (on [__local] buffers this is the
      classic missing-barrier bug);
    - index outside [0, n): an out-of-bounds access, reported with the
      source span and aborted (normal mode would crash on the same
      access).

    Private buffers are skipped: they are per-work-item by construction.
    The sanitizer only observes — it never changes what is read or
    written, so sanitized runs are bit-identical to normal runs. One
    finding is kept per (kind, source location, buffer); the interpreter
    feeds accesses through {!access} only when a sanitizer is installed,
    so normal runs pay one mutable-field test per access. *)

module Loc = Grover_support.Loc

type kind = Write_write | Read_write | Out_of_bounds

let code_of_kind = function
  | Write_write -> "GRV-SAN-WW"
  | Read_write -> "GRV-SAN-RW"
  | Out_of_bounds -> "GRV-SAN-OOB"

type finding = {
  f_kind : kind;
  f_loc : Loc.t;  (** source span of the access that completed the race *)
  f_buffer : string;  (** [Memory.describe] of the buffer *)
  f_space : Grover_ir.Ssa.space;
  f_index : int;  (** element index both work-items touched *)
  f_extent : int;  (** buffer size in elements, for OOB messages *)
  f_group : int;  (** flat work-group id *)
  f_wi1 : int;  (** flat local id of the earlier conflicting work-item *)
  f_wi2 : int;  (** flat local id of the work-item whose access fired *)
}

exception Abort of finding
(** Raised on an out-of-bounds access after recording it: execution cannot
    meaningfully continue past the access. *)

(* Per-element shadow state. Epoch [-1] means "never accessed", and the
   live epoch counter starts at 1, so fresh cells can never alias a real
   stamp. *)
type shadow = {
  sw_wi : int array;  (** last writer: flat local id *)
  sw_ep : int array;  (** last writer: epoch stamp *)
  sr_wi : int array;  (** last reader: flat local id *)
  sr_ep : int array;  (** last reader: epoch stamp *)
}

type t = {
  shadows : (int, shadow) Hashtbl.t;  (** buffer id -> shadow arrays *)
  seen : (string * int * int * string, unit) Hashtbl.t;
      (** (code, line, col, buffer) already reported *)
  mutable findings : finding list;  (** newest first *)
  mutable n_findings : int;
  mutable epoch : int;
  mutable group : int;
  max_findings : int;
}

let create ?(max_findings = 64) () : t =
  {
    shadows = Hashtbl.create 8;
    seen = Hashtbl.create 8;
    findings = [];
    n_findings = 0;
    epoch = 1;
    group = 0;
    max_findings;
  }

(** Findings in detection order. *)
let findings (t : t) : finding list = List.rev t.findings

let clear (t : t) : unit =
  Hashtbl.reset t.shadows;
  Hashtbl.reset t.seen;
  t.findings <- [];
  t.n_findings <- 0;
  t.epoch <- 1;
  t.group <- 0

(** The runtime is about to run work-group [group]. *)
let enter_group (t : t) ~(group : int) : unit =
  t.group <- group;
  t.epoch <- t.epoch + 1

(** All work-items of the current group reached a barrier and are about to
    resume. *)
let barrier_round (t : t) : unit = t.epoch <- t.epoch + 1

let record (t : t) (f : finding) : unit =
  let key =
    (code_of_kind f.f_kind, f.f_loc.Loc.line, f.f_loc.Loc.col, f.f_buffer)
  in
  if (not (Hashtbl.mem t.seen key)) && t.n_findings < t.max_findings then begin
    Hashtbl.add t.seen key ();
    t.findings <- f :: t.findings;
    t.n_findings <- t.n_findings + 1
  end

let shadow_for (t : t) (b : Memory.buffer) : shadow =
  match Hashtbl.find_opt t.shadows b.Memory.bid with
  | Some s -> s
  | None ->
      let n = b.Memory.n in
      let s =
        {
          sw_wi = Array.make n (-1);
          sw_ep = Array.make n (-1);
          sr_wi = Array.make n (-1);
          sr_ep = Array.make n (-1);
        }
      in
      Hashtbl.add t.shadows b.Memory.bid s;
      s

(** Observe one element access. Must run before the actual memory
    operation so that an out-of-bounds index is reported (and aborted)
    instead of crashing the interpreter. *)
let access (t : t) ~(buf : Memory.buffer) ~(idx : int) ~(is_write : bool)
    ~(wi : int) ~(loc : Loc.t) : unit =
  let mk kind wi1 =
    {
      f_kind = kind;
      f_loc = loc;
      f_buffer = Memory.describe buf;
      f_space = buf.Memory.space;
      f_index = idx;
      f_extent = buf.Memory.n;
      f_group = t.group;
      f_wi1 = wi1;
      f_wi2 = wi;
    }
  in
  if idx < 0 || idx >= buf.Memory.n then begin
    let f = mk Out_of_bounds wi in
    record t f;
    raise (Abort f)
  end;
  match buf.Memory.space with
  | Grover_ir.Ssa.Private -> ()
  | _ ->
      let s = shadow_for t buf in
      let ep = t.epoch in
      if is_write then begin
        if s.sw_ep.(idx) = ep && s.sw_wi.(idx) <> wi then
          record t (mk Write_write s.sw_wi.(idx));
        if s.sr_ep.(idx) = ep && s.sr_wi.(idx) <> wi then
          record t (mk Read_write s.sr_wi.(idx));
        s.sw_ep.(idx) <- ep;
        s.sw_wi.(idx) <- wi
      end
      else begin
        if s.sw_ep.(idx) = ep && s.sw_wi.(idx) <> wi then
          record t (mk Read_write s.sw_wi.(idx));
        s.sr_ep.(idx) <- ep;
        s.sr_wi.(idx) <- wi
      end

(* -- Rendering -------------------------------------------------------------- *)

let message (f : finding) : string =
  let local_hint =
    match f.f_space with
    | Grover_ir.Ssa.Local -> " (unsynchronized local-memory use: missing barrier?)"
    | _ -> ""
  in
  match f.f_kind with
  | Write_write ->
      Printf.sprintf
        "data race: work-items %d and %d of group %d both write element %d \
         of %s within one barrier interval%s"
        f.f_wi1 f.f_wi2 f.f_group f.f_index f.f_buffer local_hint
  | Read_write ->
      Printf.sprintf
        "data race: work-items %d and %d of group %d read and write element \
         %d of %s within one barrier interval%s"
        f.f_wi1 f.f_wi2 f.f_group f.f_index f.f_buffer local_hint
  | Out_of_bounds ->
      Printf.sprintf
        "out-of-bounds access: work-item %d of group %d accesses element %d \
         of %s (valid range [0,%d))"
        f.f_wi2 f.f_group f.f_index f.f_buffer f.f_extent

let to_diag ?file (f : finding) : Grover_support.Diag.t =
  Grover_support.Diag.make ?file
    ?loc:(if Loc.is_dummy f.f_loc then None else Some f.f_loc)
    ~pass:"sanitize" ~code:(code_of_kind f.f_kind) Grover_support.Diag.Error
    (message f)
