(** The work-item interpreter.

    Executes one kernel instance per work-item over the SSA IR, in one of
    two engines:

    - {b Compiled} (the default): {!prepare} translates every basic block,
      once per kernel, into an array of OCaml closures. Operand slots,
      argument indices, branch targets, builtin dispatch and phi moves are
      all resolved at compile time — the hot loop does no [Hashtbl]
      lookups and no [op] pattern matching, and scalar [int]/[float]
      results live unboxed in typed slot arrays.
    - {b Tree}: the original tree-walking reference engine, kept as the
      oracle for the differential test suite (and selectable with
      [GROVER_ENGINE=tree]).

    [barrier()] semantics come in two flavours:

    - {b fibers} (the fallback, and the only option for the tree engine):
      each work-item runs as an OCaml 5 fiber; hitting a barrier performs
      [Barrier_hit], the group scheduler parks the continuation, and
      resumes every work-item of the group once all of them have arrived;
    - {b work-group loops} (compiled engine, when {!Grover_ir.Regions}
      verifies every barrier is group-uniform): the kernel is compiled
      into barrier-split {e segments}; the runtime sweeps a plain
      [for]-loop over the group's work-items once per barrier-delimited
      region, spilling the SSA values that cross a region boundary into
      per-work-item context arrays. No effect handlers, no fiber stacks.

    Memory accesses stream into the group's {!Trace.wg_stats} for the
    performance simulator either way, in the same order. *)

open Grover_ir
open Ssa

type rv =
  | RInt of int
  | RFloat of float
  | RVecF of float array
  | RVecI of int array
  | RBuf of Memory.buffer

exception Kernel_trap of string

let trap fmt = Printf.ksprintf (fun m -> raise (Kernel_trap m)) fmt

type engine = Compiled | Tree

let engine_name = function Compiled -> "compiled" | Tree -> "tree"

(* Bad environment values warn (once per process, on stderr) instead of
   falling back silently — same spirit as the GROVER_FORCE_PATH error in
   Runtime.choose_path, but non-fatal: an env var is advisory, a typo in it
   should not abort a launch, only stop being invisible. *)
let env_warned : (string, unit) Hashtbl.t = Hashtbl.create 4
let env_warn_mutex = Mutex.create ()

let warn_env (var : string) fmt =
  Format.kasprintf
    (fun msg ->
      Mutex.protect env_warn_mutex (fun () ->
          if not (Hashtbl.mem env_warned var) then begin
            Hashtbl.replace env_warned var ();
            prerr_endline
              (Grover_support.Diag.to_string
                 (Grover_support.Diag.warningf ~file:("$" ^ var)
                    ~code:"GRV-ENV" "%s" msg))
          end))
    fmt

let default_engine () =
  match Sys.getenv_opt "GROVER_ENGINE" with
  | Some ("tree" | "Tree" | "TREE") -> Tree
  | None | Some ("" | "closure" | "compiled") -> Compiled
  | Some s ->
      warn_env "GROVER_ENGINE"
        "unknown GROVER_ENGINE %S (expected tree or compiled); using the \
         compiled engine"
        s;
      Compiled

(* -- Work-item context ------------------------------------------------------- *)

type wi_ctx = {
  lid : int array;  (** 3 entries; rewritten in place between work-items *)
  gid : int array;
  grp : int array;  (** shared with the group runner, rewritten per group *)
  lsz : int array;
  gsz : int array;
  ngr : int array;
  mutable flat_lid : int;  (** linear id within the group, for traces *)
}

type _ Effect.t += Barrier_hit : unit Effect.t

(* -- Scalar helpers ----------------------------------------------------------- *)

let as_int = function
  | RInt n -> n
  | RFloat f -> trap "expected int, got float %g" f
  | _ -> trap "expected int, got aggregate"

let as_float = function
  | RFloat f -> f
  | RInt n -> trap "expected float, got int %d" n
  | _ -> trap "expected float, got aggregate"

let as_buf = function RBuf b -> b | _ -> trap "expected a pointer"

let mask_of = function
  | I1 -> 1
  | I8 -> 0xff
  | I16 -> 0xffff
  | I32 -> 0xffffffff
  | _ -> -1

let sext_of t n =
  match t with
  | I1 -> n land 1 (* i1 is canonically 0/1, matching icmp results *)
  | I8 ->
      let n = n land 0xff in
      if n >= 0x80 then n - 0x100 else n
  | I16 ->
      let n = n land 0xffff in
      if n >= 0x8000 then n - 0x10000 else n
  | I32 ->
      let n = n land 0xffffffff in
      if n >= 0x80000000 then n - 0x100000000 else n
  | _ -> n

(* Binop/cmp implementations resolved once per instruction at compile time. *)

let int_binop_fn t op : int -> int -> int =
  let m = mask_of t in
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Sdiv -> fun a b -> if b = 0 then trap "division by zero" else a / b
  | Udiv ->
      fun a b -> if b = 0 then trap "division by zero" else (a land m) / (b land m)
  | Srem -> fun a b -> if b = 0 then trap "remainder by zero" else a mod b
  | Urem ->
      fun a b ->
        if b = 0 then trap "remainder by zero" else (a land m) mod (b land m)
  | Shl -> fun a b -> a lsl (b land 63)
  | Ashr -> fun a b -> a asr (b land 63)
  | Lshr -> fun a b -> (a land m) lsr (b land 63)
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | _ -> fun _ _ -> trap "float binop on ints"

let float_binop_fn op : float -> float -> float =
  match op with
  | Fadd -> ( +. )
  | Fsub -> ( -. )
  | Fmul -> ( *. )
  | Fdiv -> ( /. )
  | Frem -> Float.rem
  | _ -> fun _ _ -> trap "int binop on floats"

let int_binop t op a b = int_binop_fn t op a b
let float_binop op a b = float_binop_fn op a b

let icmp_fn t c : int -> int -> bool =
  let m = mask_of t in
  match c with
  | Ieq -> ( = )
  | Ine -> ( <> )
  | Islt -> ( < )
  | Isle -> ( <= )
  | Isgt -> ( > )
  | Isge -> ( >= )
  | Iult -> fun a b -> a land m < b land m
  | Iule -> fun a b -> a land m <= b land m
  | Iugt -> fun a b -> a land m > b land m
  | Iuge -> fun a b -> a land m >= b land m

let fcmp_fn c : float -> float -> bool =
  match c with
  | Foeq -> ( = )
  | Fone -> ( <> )
  | Folt -> ( < )
  | Fole -> ( <= )
  | Fogt -> ( > )
  | Foge -> ( >= )

let icmp_op t c a b = icmp_fn t c a b
let fcmp_op c a b = fcmp_fn c a b

let lanes_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

(* -- Builtin math ---------------------------------------------------------- *)

let special_fns =
  [ "sqrt"; "native_sqrt"; "rsqrt"; "native_rsqrt"; "exp"; "native_exp";
    "log"; "native_log"; "sin"; "native_sin"; "cos"; "native_cos"; "pow";
    "hypot"; "native_divide" ]

let math1_fn name : (float -> float) option =
  match name with
  | "sqrt" | "native_sqrt" -> Some Float.sqrt
  | "rsqrt" | "native_rsqrt" -> Some (fun x -> 1.0 /. Float.sqrt x)
  | "fabs" -> Some Float.abs
  | "exp" | "native_exp" -> Some Float.exp
  | "log" | "native_log" -> Some Float.log
  | "sin" | "native_sin" -> Some Float.sin
  | "cos" | "native_cos" -> Some Float.cos
  | "floor" -> Some Float.floor
  | "ceil" -> Some Float.ceil
  | _ -> None

let math1 name x =
  match math1_fn name with
  | Some f -> f x
  | None -> trap "unknown unary math builtin %s" name

let math2_fn name : (float -> float -> float) option =
  match name with
  | "fmax" -> Some Float.max
  | "fmin" -> Some Float.min
  | "pow" -> Some Float.pow
  | "fmod" -> Some Float.rem
  | "hypot" -> Some Float.hypot
  | "native_divide" -> Some ( /. )
  | _ -> None

let math2 name a b =
  match math2_fn name with
  | Some f -> f a b
  | None -> trap "unknown binary math builtin %s" name

(* -- State and compiled form -------------------------------------------------

   The compiled form assigns each value-producing instruction a slot in a
   typed environment: scalar integers in [ienv], scalar floats in [fenv]
   (both unboxed), everything else (vectors, pointers) in [benv]. Phi moves
   ride on CFG edges with evaluate-all-then-commit semantics, staged
   through the per-work-item scratch arrays. *)

(** Lane-batched execution state (the wg-vec path): one state executes a
    batch of [lw] consecutive work-items per closure invocation over
    struct-of-arrays slots. Every value-producing instruction keeps its
    scalar slot number [s]; the lane environments store slot [s] in the
    columns [s*lw .. s*lw+lw-1]. A value the uniformity analysis proved
    group-uniform is computed once per batch and lives in column 0 of its
    slot ([s*lw]); varying values occupy one column per lane. [nl] < [lw]
    only in the peeled tail batch of a group whose size is not a multiple
    of the lane width. *)
type lane_state = {
  lw : int;  (** compiled lane width W *)
  mutable nl : int;  (** active lanes in the current batch *)
  mutable base_flat : int;  (** flat work-item id of lane 0 *)
  lienv : int array;  (** [n_int] slots x [lw] lanes *)
  lfenv : float array;
  lbenv : rv array;
  (* Phi-move staging, split by uniformity: uniform moves stage one value,
     varying moves stage [lw] columns per move. *)
  luiscr : int array;
  lufscr : float array;
  lubscr : rv array;
  lviscr : int array;  (** varying move [k], lane [l] at [k*lw + l] *)
  lvfscr : float array;
  lvbscr : rv array;
  lpred : int array;
      (** per-lane predicate of the masked diamond being executed: 1 =
          the lane takes the then arm, 0 = the else arm. Written by the
          diamond's predicate closure, immutable while the arms run
          (arms are pure, so nothing re-enters a diamond mid-flight). *)
  mutable lnthen : int;
      (** lanes (of the active [nl]) whose predicate is 1 — the then
          arm's population count; the else arm's is [nl - lnthen] *)
  llid : int array array;  (** 3 dims x [lw]: per-lane local ids *)
  lgid : int array array;  (** 3 dims x [lw]: per-lane global ids *)
  lctx : wi_ctx;
      (** shares [grp]/[lsz]/[gsz]/[ngr] with the group runner; its
          [lid]/[gid] fields are unused here (lanes read [llid]/[lgid]) *)
  largs : rv array;
  lstats : Trace.wg_stats;
  mutable llocal : (int, Memory.buffer) Hashtbl.t;
      (** alloca iid -> group buffer, swapped with the queue like
          [wi_state.local_bufs] *)
  mutable lsan : Sanitize.t option;
}

type wi_state = {
  c : compiled;
  (* Tree engine: one boxed slot per instruction. *)
  env : rv array;
  (* Compiled engine: typed slot arrays + phi-move scratch. *)
  ienv : int array;
  fenv : float array;
  benv : rv array;
  iscr : int array;
  fscr : float array;
  bscr : rv array;
  args : rv array;
  ctx : wi_ctx;
  stats : Trace.wg_stats;
  mutable local_bufs : (int, Memory.buffer) Hashtbl.t;
      (** alloca iid -> group buffer; swapped by the runtime when the
          executing queue changes *)
  mem : Memory.t;
  mutable queue : int;
  mutable private_offset : int;  (** bump offset in the private address region *)
  mutable san : Sanitize.t option;
      (** installed by [Runtime.launch ~sanitizer]; [None] on normal runs *)
}

and compiled = {
  fn : func;
  slots : (int, int) Hashtbl.t;  (** instruction id -> tree environment slot *)
  n_slots : int;
  local_allocas : instr list;  (** local arrays, allocated once per group *)
  has_barrier : bool;
      (** statically true iff the kernel contains a [Barrier] instruction;
          barrier-free kernels take the fiberless fast path *)
  regions : Regions.verdict;
      (** barrier-region formation result, for path reporting; the
          compiled spill metadata derived from it lives in [code.wg] *)
  code : cfunc option;  (** [Some] iff the kernel was closure-compiled *)
}

and cfunc = {
  csegs : cseg array;
      (** basic blocks split at barriers; index 0 is the kernel entry,
          each block's segments are contiguous in block order *)
  n_int : int;
  n_float : int;
  n_box : int;
  scr_int : int;  (** max int phi moves on any edge *)
  scr_float : int;
  scr_box : int;
  wg : cwg option;
      (** region-execution metadata; [Some] iff {!Regions.form} verified
          every barrier group-uniform (trivially for barrier-free code) *)
  lanes : clanes option;
      (** lane-batched compilation (the wg-vec path); [Some] iff [wg] is
          [Some] and at least one region entry is lane-capable *)
}

and cseg = {
  body : (wi_state -> unit) array;
  cterm : cterm;
  (* Op counts are only observable at group granularity, so the
     statically-known per-instruction costs are summed once per segment at
     compile time and bumped in one go per segment execution. *)
  b_int : int;
  b_float : int;
  b_special : int;
}

and cterm =
  | Tbr of edge
  | Tcond of (wi_state -> int) * edge * edge
  | Tret
  | Tbarrier of { bar : int; next : int }
      (** barrier [bar] (dense {!Regions} index); [next] is the
          continuation segment right after it. The fiber executor performs
          [Barrier_hit] and continues at [next]; the region executor
          returns [bar] to the group sweep instead. *)
  | Ttrap of string

(** Per-work-item spill plan of the region executor. Every SSA value live
    across some barrier owns one column in a per-kind context matrix
    ([n_items] rows of width [ctx_*]); per barrier, the (env slot, context
    column) pairs to copy are precompiled into parallel arrays. *)
and cwg = {
  bar_entry : int array;  (** barrier index -> continuation segment *)
  sp_i_env : int array array;  (** per barrier: int env slots to spill *)
  sp_i_ctx : int array array;  (** per barrier: matching context columns *)
  sp_f_env : int array array;
  sp_f_ctx : int array array;
  sp_b_env : int array array;
  sp_b_ctx : int array array;
  ctx_i : int;  (** context row width per kind *)
  ctx_f : int;
  ctx_b : int;
}

and edge = {
  e_dst : int;  (** dense index of the successor block's entry segment *)
  im_dst : int array;  (** phi destination slots, by kind *)
  im_src : (wi_state -> int) array;
  fm_dst : int array;
  fm_src : (wi_state -> float) array;
  bm_dst : int array;
  bm_src : (wi_state -> rv) array;
}

(** Lane-batched compilation of the same segment layout (the wg-vec
    path). [lsegs] parallels [csegs]; a segment the lane compiler could
    not batch (divergent branch condition, private alloca) is [None] and
    every region entry reaching it is marked not lane-capable in
    [lentry] — those regions run the scalar one-work-item sweep of the
    wg-loop path within the same launch. Op costs are read from the
    parallel {!cseg} and bumped once per batch, multiplied by the active
    lane count, so trace totals are bit-identical to the scalar paths. *)
and clanes = {
  lwidth : int;  (** lane width W the kernel was compiled for *)
  lsegs : lseg option array;
  lentry : bool array;
      (** per region entry (0 = kernel entry, [b+1] = barrier [b]'s
          continuation): sweep this region in lane batches? *)
  lscr_ui : int;  (** phi staging widths: uniform moves (scalars)... *)
  lscr_uf : int;
  lscr_ub : int;
  lscr_vi : int;  (** ...and varying moves (x [lwidth] lane columns) *)
  lscr_vf : int;
  lscr_vb : int;
  (* Lane spill plans, per barrier. Uniform values replicate slot column 0
     into every active work-item's context row; varying values copy one
     lane column per row. Slot entries are pre-multiplied bases
     ([slot * lwidth]); context columns are shared with {!cwg} so lane and
     scalar regions exchange live values through the same matrices. *)
  lsp_ui_slot : int array array;
  lsp_ui_ctx : int array array;
  lsp_uf_slot : int array array;
  lsp_uf_ctx : int array array;
  lsp_ub_slot : int array array;
  lsp_ub_ctx : int array array;
  lsp_vi_slot : int array array;
  lsp_vi_ctx : int array array;
  lsp_vf_slot : int array array;
  lsp_vf_ctx : int array array;
  lsp_vb_slot : int array array;
  lsp_vb_ctx : int array array;
}

and lseg = { lbody : (lane_state -> unit) array; lterm : lterm }

and lterm =
  | LTbr of ledge
  | LTcond of (lane_state -> int) * ledge * ledge
      (** the condition is group-uniform by construction — one evaluation
          decides the branch for the whole batch *)
  | LTret
  | LTbarrier of { lbar : int; lnext : int }
  | LTtrap of string

and ledge = {
  le_dst : int;
  (* uniform phi moves: one value each *)
  lu_im_dst : int array;  (** destination slot bases ([slot * lwidth]) *)
  lu_im_src : (lane_state -> int) array;
  lu_fm_dst : int array;
  lu_fm_src : (lane_state -> float) array;
  lu_bm_dst : int array;
  lu_bm_src : (lane_state -> rv) array;
  (* varying phi moves: one value per active lane *)
  lv_im_dst : int array;
  lv_im_src : (lane_state -> int -> int) array;
  lv_fm_dst : int array;
  lv_fm_src : (lane_state -> int -> float) array;
  lv_bm_dst : int array;
  lv_bm_src : (lane_state -> int -> rv) array;
}

(* -- Shared memory-access recording ----------------------------------------- *)

let record_access (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) : unit =
  Trace.record st.stats
    ~addr:(Memory.addr_of b idx)
    ~bytes:b.Memory.elem_bytes ~is_write ~space:b.Memory.space
    ~wi:st.ctx.flat_lid

(* Sanitizer tap on the same access stream. Runs before the actual memory
   operation so an out-of-bounds index becomes a located finding rather
   than an [Invalid_argument] crash from [Memory.check]. *)
let san_access (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) ~(loc : Grover_support.Loc.t) : unit =
  match st.san with
  | None -> ()
  | Some s -> Sanitize.access s ~buf:b ~idx ~is_write ~wi:st.ctx.flat_lid ~loc

let load_elem (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(loc : Grover_support.Loc.t) : rv =
  record_access st b idx ~is_write:false;
  san_access st b idx ~is_write:false ~loc;
  match b.Memory.elem with
  | F32 -> RFloat (Memory.get_float b idx)
  | I1 | I8 | I16 | I32 | I64 -> RInt (Memory.get_int b idx)
  | Vec (F32, n) -> RVecF (Array.init n (fun l -> Memory.get_lane_float b idx l))
  | Vec (_, n) -> RVecI (Array.init n (fun l -> Memory.get_lane_int b idx l))
  | _ -> trap "load of unsupported element type"

let store_elem (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(loc : Grover_support.Loc.t) (v : rv) : unit =
  record_access st b idx ~is_write:true;
  san_access st b idx ~is_write:true ~loc;
  match v with
  | RFloat f -> Memory.set_float b idx f
  | RInt n -> Memory.set_int b idx n
  | RVecF a -> Array.iteri (fun l x -> Memory.set_lane_float b idx l x) a
  | RVecI a -> Array.iteri (fun l x -> Memory.set_lane_int b idx l x) a
  | RBuf _ -> trap "cannot store a pointer"

(* Lane-side taps on the same access stream: identical recording, but the
   work-item id is the batch base plus the lane index. Each lane's events
   land in its own program order, which is the only ordering the memory
   simulator and the sanitizer depend on. *)
let lane_record (ls : lane_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) ~(wi : int) : unit =
  Trace.record ls.lstats
    ~addr:(Memory.addr_of b idx)
    ~bytes:b.Memory.elem_bytes ~is_write ~space:b.Memory.space ~wi

let lane_san (ls : lane_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) ~(loc : Grover_support.Loc.t) ~(wi : int) : unit =
  match ls.lsan with
  | None -> ()
  | Some s -> Sanitize.access s ~buf:b ~idx ~is_write ~wi ~loc

let alloc_private (st : wi_state) elem count : Memory.buffer =
  (* Private arrays live in a per-queue private address region; the data
     array itself is fresh per work-item. *)
  let base = 0x0000_1000 + (st.queue * 0x0010_0000) + st.private_offset in
  st.private_offset <- st.private_offset + (count * ty_size_bytes elem);
  Memory.alloc_at st.mem ~space:Private ~base_addr:base elem count

(* == The tree-walking reference engine ====================================== *)

let slot st (i : instr) : int = Hashtbl.find st.c.slots i.iid

let rec eval (st : wi_state) (v : value) : rv =
  match v with
  | Cint (t, n) -> RInt (sext_of t n)
  | Cfloat f -> RFloat f
  | Arg a -> st.args.(a.a_index)
  | Vinstr i -> st.env.(slot st i)

and exec_call (st : wi_state) callee (args : rv list) : rv =
  let dim_of = function
    | [ RInt d ] -> if d >= 0 && d < 3 then d else trap "dimension out of range"
    | _ -> trap "%s expects a dimension" callee
  in
  match callee with
  | "get_local_id" -> RInt st.ctx.lid.(dim_of args)
  | "get_global_id" -> RInt st.ctx.gid.(dim_of args)
  | "get_group_id" -> RInt st.ctx.grp.(dim_of args)
  | "get_local_size" -> RInt st.ctx.lsz.(dim_of args)
  | "get_global_size" -> RInt st.ctx.gsz.(dim_of args)
  | "get_num_groups" -> RInt st.ctx.ngr.(dim_of args)
  | "get_global_offset" -> RInt 0
  | "get_work_dim" -> RInt 3
  | _ -> data_call callee args

(** The pure (state-free) builtin calls — everything except the work-item
    geometry queries. Shared by the tree engine and the lane executor's
    generic per-lane fallback. *)
and data_call callee (args : rv list) : rv =
  match callee with
  | "dot" -> (
      match args with
      | [ RVecF a; RVecF b ] ->
          let s = ref 0.0 in
          Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
          RFloat !s
      | [ RFloat a; RFloat b ] -> RFloat (a *. b)
      | _ -> trap "dot expects float vectors")
  | "mad" | "fma" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat c ] -> RFloat ((a *. b) +. c)
      | [ RVecF a; RVecF b; RVecF c ] ->
          RVecF (Array.init (Array.length a) (fun i -> (a.(i) *. b.(i)) +. c.(i)))
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad argument mismatch")
  | "clamp" -> (
      match args with
      | [ RFloat x; RFloat lo; RFloat hi ] -> RFloat (Float.min (Float.max x lo) hi)
      | [ RInt x; RInt lo; RInt hi ] -> RInt (min (max x lo) hi)
      | _ -> trap "clamp argument mismatch")
  | "mix" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat t ] -> RFloat (a +. ((b -. a) *. t))
      | _ -> trap "mix argument mismatch")
  | "min" | "max" -> (
      let pick_i : int -> int -> int = if callee = "min" then min else max in
      let pick_f : float -> float -> float =
        if callee = "min" then Float.min else Float.max
      in
      match args with
      | [ RInt a; RInt b ] -> RInt (pick_i a b)
      | [ RFloat a; RFloat b ] -> RFloat (pick_f a b)
      | _ -> trap "min/max argument mismatch")
  | "abs" -> (
      match args with
      | [ RInt a ] -> RInt (abs a)
      | [ RFloat a ] -> RFloat (Float.abs a)
      | _ -> trap "abs argument mismatch")
  | "mul24" -> (
      match args with
      | [ RInt a; RInt b ] -> RInt (a * b)
      | _ -> trap "mul24 argument mismatch")
  | "mad24" -> (
      match args with
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad24 argument mismatch")
  | "fmax" | "fmin" | "pow" | "fmod" | "hypot" | "native_divide" -> (
      match args with
      | [ RFloat a; RFloat b ] -> RFloat (math2 callee a b)
      | [ RVecF a; RVecF b ] -> RVecF (lanes_map2 (math2 callee) a b)
      | _ -> trap "%s argument mismatch" callee)
  | _ -> (
      (* Remaining builtins are unary float math. *)
      match args with
      | [ RFloat x ] -> RFloat (math1 callee x)
      | [ RVecF a ] -> RVecF (Array.map (math1 callee) a)
      | _ -> trap "unsupported call %s" callee)

and exec_instr (st : wi_state) (i : instr) : unit =
  let set rv = st.env.(slot st i) <- rv in
  match i.op with
  | Binop (op, a, b) -> (
      match (eval st a, eval st b) with
      | RInt x, RInt y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
          set (RInt (int_binop (type_of a) op x y))
      | RFloat x, RFloat y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
          set (RFloat (float_binop op x y))
      | RVecF x, RVecF y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + Array.length x;
          set (RVecF (lanes_map2 (float_binop op) x y))
      | RVecI x, RVecI y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + Array.length x;
          set (RVecI (lanes_map2 (int_binop I32 op) x y))
      | _ -> trap "binop operand mismatch")
  | Icmp (c, a, b) ->
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (RInt (if icmp_op (type_of a) c (as_int (eval st a)) (as_int (eval st b)) then 1 else 0))
  | Fcmp (c, a, b) ->
      st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
      set (RInt (if fcmp_op c (as_float (eval st a)) (as_float (eval st b)) then 1 else 0))
  | Select (c, a, b) ->
      set (if as_int (eval st c) <> 0 then eval st a else eval st b)
  | Cast (k, v, t) -> (
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      let rv = eval st v in
      match (k, rv) with
      | (Sext | Bitcast), RInt n -> set (RInt (sext_of (type_of v) n))
      | Zext, RInt n -> set (RInt (n land mask_of (type_of v)))
      | Trunc, RInt n -> set (RInt (sext_of t n))
      | Si_to_fp, RInt n -> set (RFloat (float_of_int n))
      | Ui_to_fp, RInt n -> set (RFloat (float_of_int (n land mask_of (type_of v))))
      | Fp_to_si, RFloat f -> set (RInt (int_of_float f))
      | Bitcast, rv -> set rv
      | _ -> trap "unsupported cast")
  | Call { callee; args; _ } ->
      if List.mem callee special_fns then
        st.stats.Trace.special_ops <- st.stats.Trace.special_ops + 1
      else st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (exec_call st callee (List.map (eval st) args))
  | Alloca { aspace = Local; _ } -> (
      match Hashtbl.find_opt st.local_bufs i.iid with
      | Some b -> set (RBuf b)
      | None -> trap "local alloca without a group buffer")
  | Alloca { aspace = Private; elem; count; _ } ->
      set (RBuf (alloc_private st elem count))
  | Alloca _ -> trap "unsupported alloca space"
  | Load { ptr; index } ->
      set
        (load_elem st (as_buf (eval st ptr)) (as_int (eval st index))
           ~loc:i.iloc)
  | Store { ptr; index; v } ->
      store_elem st (as_buf (eval st ptr)) (as_int (eval st index)) ~loc:i.iloc
        (eval st v)
  | Extract (v, lane) -> (
      let l = as_int (eval st lane) in
      match eval st v with
      | RVecF a -> set (RFloat a.(l))
      | RVecI a -> set (RInt a.(l))
      | _ -> trap "extract from non-vector")
  | Insert (v, lane, s) -> (
      let l = as_int (eval st lane) in
      match (eval st v, eval st s) with
      | RVecF a, RFloat x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecF a)
      | RVecI a, RInt x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecI a)
      | _ -> trap "insert mismatch")
  | Vecbuild (t, vs) -> (
      match t with
      | Vec (F32, _) -> set (RVecF (Array.of_list (List.map (fun v -> as_float (eval st v)) vs)))
      | Vec (_, _) -> set (RVecI (Array.of_list (List.map (fun v -> as_int (eval st v)) vs)))
      | _ -> trap "vecbuild of non-vector")
  | Phi _ -> trap "phi executed outside block entry"
  | Barrier _ ->
      st.stats.Trace.barriers <- st.stats.Trace.barriers + 1;
      Effect.perform Barrier_hit
  | Br _ | Cond_br _ | Ret -> trap "terminator executed as body instruction"

and run_tree (st : wi_state) : unit =
  let cur = ref (entry st.c.fn) in
  let prev = ref None in
  let running = ref true in
  while !running do
    let blk = !cur in
    (* Phase 1: evaluate all phis against the incoming edge, then commit. *)
    let phis =
      List.filter_map
        (fun i ->
          match i.op with
          | Phi { incoming; _ } -> (
              match !prev with
              | None -> trap "phi in entry block"
              | Some p -> (
                  match
                    List.find_opt (fun (b, _) -> b.bid = p.bid) incoming
                  with
                  | Some (_, v) -> Some (i, eval st v)
                  | None -> trap "phi has no incoming for predecessor"))
          | _ -> None)
        blk.instrs
    in
    List.iter (fun (i, rv) -> st.env.(slot st i) <- rv) phis;
    List.iter
      (fun i -> match i.op with Phi _ -> () | _ -> exec_instr st i)
      blk.instrs;
    (match blk.term with
    | Some { op = Br target; _ } ->
        prev := Some blk;
        cur := target
    | Some { op = Cond_br (c, t, e); _ } ->
        st.stats.Trace.branches <- st.stats.Trace.branches + 1;
        prev := Some blk;
        cur := if as_int (eval st c) <> 0 then t else e
    | Some { op = Ret; _ } -> running := false
    | _ -> trap "missing terminator")
  done

(* == The closure compiler =================================================== *)

type kind = KInt of int | KFloat of int | KBox of int

(* Raised while lane-compiling a segment that cannot be batched (private
   alloca, divergent branch condition outside a classified diamond); the
   segment stays [None] in [clanes.lsegs] and every region entry reaching
   it runs scalar. *)
exception Unbatchable

(* Static op cost of one instruction, (int, float, special) — mirrors the
   per-instruction bumps of the tree engine exactly. Shared between the
   scalar segment compiler (summed per segment, bumped per work-item) and
   the lane compiler (masked diamond arms bump their sum once per batch,
   multiplied by the arm's active-lane count). *)
let op_cost (i : instr) : int * int * int =
  match i.op with
  | Binop (_, a, _) -> (
      match type_of a with
      | F32 -> (0, 1, 0)
      | Vec (F32, n) -> (0, n, 0)
      | Vec (_, n) -> (n, 0, 0)
      | _ -> (1, 0, 0))
  | Icmp _ | Cast _ -> (1, 0, 0)
  | Fcmp _ -> (0, 1, 0)
  | Call { callee; _ } ->
      if List.mem callee special_fns then (0, 0, 1) else (1, 0, 0)
  | _ -> (0, 0, 0)

(* Summed static cost of a block's body — what one work-item executing
   every instruction of the block would be charged. *)
let block_cost (instrs : instr list) : int * int * int =
  List.fold_left
    (fun (ai, af, as_) (i : instr) ->
      match i.op with
      | Phi _ -> (ai, af, as_)
      | _ ->
          let ci, cf, cs = op_cost i in
          (ai + ci, af + cf, as_ + cs))
    (0, 0, 0) instrs

(* Lane-batched compilation: the same segment layout as the scalar closure
   compiler, but each closure advances a whole batch of [lw] work-items
   over struct-of-arrays columns. Uniform values (per the {!Divergence}
   fixpoint) are computed once per batch into column 0 of their slot;
   varying values loop over the active lanes. *)
let compile_lanes ~(lw : int) ~(kinds : (int, kind) Hashtbl.t)
    ~(bidx : (int, int) Hashtbl.t) ~(bar_index : (int, int) Hashtbl.t)
    ~(bar_entry : int array)
    ~(seg_descs : (block * instr list * instr option) array)
    ~(info : Regions.info) ~(ctx_col : (int, int) Hashtbl.t) : clanes =
  let dv = info.Regions.div in
  let kind_of (i : instr) = Hashtbl.find_opt kinds i.iid in
  let is_int_ty = function I1 | I8 | I16 | I32 | I64 -> true | _ -> false in

  (* Uniform operand getters: one value per batch, read from the slot's
     base column. The divergence fixpoint guarantees every operand of a
     uniform instruction is itself uniform, so reading column 0 is sound. *)
  let lu_iget (v : value) : lane_state -> int =
    match v with
    | Cint (t, n) ->
        let k = sext_of t n in
        fun _ -> k
    | Cfloat f -> fun _ -> trap "expected int, got float %g" f
    | Arg a ->
        let j = a.a_index in
        fun ls -> as_int ls.largs.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) ->
            let b = s * lw in
            fun ls -> ls.lienv.(b)
        | Some (KFloat s) ->
            let b = s * lw in
            fun ls -> trap "expected int, got float %g" ls.lfenv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            fun ls -> as_int ls.lbenv.(b)
        | None -> fun _ -> trap "use of a void value")
  in
  let lu_fget (v : value) : lane_state -> float =
    match v with
    | Cfloat f -> fun _ -> f
    | Cint (_, n) -> fun _ -> trap "expected float, got int %d" n
    | Arg a ->
        let j = a.a_index in
        fun ls -> as_float ls.largs.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KFloat s) ->
            let b = s * lw in
            fun ls -> ls.lfenv.(b)
        | Some (KInt s) ->
            let b = s * lw in
            fun ls -> trap "expected float, got int %d" ls.lienv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            fun ls -> as_float ls.lbenv.(b)
        | None -> fun _ -> trap "use of a void value")
  in
  let lu_vget (v : value) : lane_state -> rv =
    match v with
    | Cint (t, n) ->
        let r = RInt (sext_of t n) in
        fun _ -> r
    | Cfloat f ->
        let r = RFloat f in
        fun _ -> r
    | Arg a ->
        let j = a.a_index in
        fun ls -> ls.largs.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) ->
            let b = s * lw in
            fun ls -> RInt ls.lienv.(b)
        | Some (KFloat s) ->
            let b = s * lw in
            fun ls -> RFloat ls.lfenv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            fun ls -> ls.lbenv.(b)
        | None -> fun _ -> trap "use of a void value")
  in

  (* Varying operand getters: one value per lane. A uniform operand of a
     varying instruction reads its base column whatever the lane. *)
  let varying (v : value) =
    match v with Vinstr i -> Divergence.iid_divergent dv i.iid | _ -> false
  in
  let lv_iget (v : value) : lane_state -> int -> int =
    match v with
    | Cint (t, n) ->
        let k = sext_of t n in
        fun _ _ -> k
    | Cfloat f -> fun _ _ -> trap "expected int, got float %g" f
    | Arg a ->
        let j = a.a_index in
        fun ls _ -> as_int ls.largs.(j)
    | Vinstr i -> (
        let vr = varying v in
        match kind_of i with
        | Some (KInt s) ->
            let b = s * lw in
            if vr then fun ls l -> ls.lienv.(b + l)
            else fun ls _ -> ls.lienv.(b)
        | Some (KFloat s) ->
            let b = s * lw in
            fun ls _ -> trap "expected int, got float %g" ls.lfenv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            if vr then fun ls l -> as_int ls.lbenv.(b + l)
            else fun ls _ -> as_int ls.lbenv.(b)
        | None -> fun _ _ -> trap "use of a void value")
  in
  let lv_fget (v : value) : lane_state -> int -> float =
    match v with
    | Cfloat f -> fun _ _ -> f
    | Cint (_, n) -> fun _ _ -> trap "expected float, got int %d" n
    | Arg a ->
        let j = a.a_index in
        fun ls _ -> as_float ls.largs.(j)
    | Vinstr i -> (
        let vr = varying v in
        match kind_of i with
        | Some (KFloat s) ->
            let b = s * lw in
            if vr then fun ls l -> ls.lfenv.(b + l)
            else fun ls _ -> ls.lfenv.(b)
        | Some (KInt s) ->
            let b = s * lw in
            fun ls _ -> trap "expected float, got int %d" ls.lienv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            if vr then fun ls l -> as_float ls.lbenv.(b + l)
            else fun ls _ -> as_float ls.lbenv.(b)
        | None -> fun _ _ -> trap "use of a void value")
  in
  let lv_bufget (v : value) : lane_state -> int -> Memory.buffer =
    match v with
    | Arg a ->
        let j = a.a_index in
        fun ls _ -> as_buf ls.largs.(j)
    | Vinstr i -> (
        let vr = varying v in
        match kind_of i with
        | Some (KBox s) ->
            let b = s * lw in
            if vr then fun ls l -> as_buf ls.lbenv.(b + l)
            else fun ls _ -> as_buf ls.lbenv.(b)
        | _ -> fun _ _ -> trap "expected a pointer")
    | _ -> fun _ _ -> trap "expected a pointer"
  in
  let lv_vget (v : value) : lane_state -> int -> rv =
    match v with
    | Cint (t, n) ->
        let r = RInt (sext_of t n) in
        fun _ _ -> r
    | Cfloat f ->
        let r = RFloat f in
        fun _ _ -> r
    | Arg a ->
        let j = a.a_index in
        fun ls _ -> ls.largs.(j)
    | Vinstr i -> (
        let vr = varying v in
        match kind_of i with
        | Some (KInt s) ->
            let b = s * lw in
            if vr then fun ls l -> RInt ls.lienv.(b + l)
            else fun ls _ -> RInt ls.lienv.(b)
        | Some (KFloat s) ->
            let b = s * lw in
            if vr then fun ls l -> RFloat ls.lfenv.(b + l)
            else fun ls _ -> RFloat ls.lfenv.(b)
        | Some (KBox s) ->
            let b = s * lw in
            if vr then fun ls l -> ls.lbenv.(b + l)
            else fun ls _ -> ls.lbenv.(b)
        | None -> fun _ _ -> trap "use of a void value")
  in

  (* Operand classification for the specialized hot loops below. An
     operand is either a varying slot read at a compile-time base offset
     (the common case in address arithmetic), or hoistable — the same
     value for every lane of a batch (constants, kernel arguments,
     uniform slots), read once at batch entry instead of per lane.
     [None] from both classifiers sends the instruction to the generic
     closure-per-operand arm. *)
  let ivar_slot (v : value) : int option =
    match v with
    | Vinstr i when varying v -> (
        match kind_of i with Some (KInt s) -> Some (s * lw) | _ -> None)
    | _ -> None
  in
  let ihoist (v : value) : (lane_state -> int) option =
    if varying v then None
    else
      match v with
      | Cint (t, n) ->
          let k = sext_of t n in
          Some (fun _ -> k)
      | Arg a ->
          let j = a.a_index in
          Some (fun ls -> as_int ls.largs.(j))
      | Vinstr i -> (
          match kind_of i with
          | Some (KInt s) ->
              let b = s * lw in
              Some (fun ls -> ls.lienv.(b))
          | Some (KBox s) ->
              let b = s * lw in
              Some (fun ls -> as_int ls.lbenv.(b))
          | _ -> None)
      | Cfloat _ -> None
  in
  let fvar_slot (v : value) : int option =
    match v with
    | Vinstr i when varying v -> (
        match kind_of i with Some (KFloat s) -> Some (s * lw) | _ -> None)
    | _ -> None
  in
  let fhoist (v : value) : (lane_state -> float) option =
    if varying v then None
    else
      match v with
      | Cfloat f -> Some (fun _ -> f)
      | Arg a ->
          let j = a.a_index in
          Some (fun ls -> as_float ls.largs.(j))
      | Vinstr i -> (
          match kind_of i with
          | Some (KFloat s) ->
              let b = s * lw in
              Some (fun ls -> ls.lfenv.(b))
          | Some (KBox s) ->
              let b = s * lw in
              Some (fun ls -> as_float ls.lbenv.(b))
          | _ -> None)
      | Cint _ -> None
  in
  let bvar_slot (v : value) : int option =
    match v with
    | Vinstr i when varying v -> (
        match kind_of i with Some (KBox s) -> Some (s * lw) | _ -> None)
    | _ -> None
  in
  let buf_hoist (v : value) : (lane_state -> Memory.buffer) option =
    if varying v then None
    else
      match v with
      | Arg a ->
          let j = a.a_index in
          Some (fun ls -> as_buf ls.largs.(j))
      | Vinstr i -> (
          match kind_of i with
          | Some (KBox s) ->
              let b = s * lw in
              Some (fun ls -> as_buf ls.lbenv.(b))
          | _ -> None)
      | _ -> None
  in

  (* Destination helpers: the slot base ([slot * lw]) is resolved at
     compile time; uniform writers touch the base column only. *)
  let lwith_int_dst (i : instr) (mk : int -> lane_state -> unit) =
    match kind_of i with
    | Some (KInt s) -> mk (s * lw)
    | _ -> fun _ -> trap "slot kind mismatch (int) at instruction %d" i.iid
  in
  let lwith_float_dst (i : instr) (mk : int -> lane_state -> unit) =
    match kind_of i with
    | Some (KFloat s) -> mk (s * lw)
    | _ -> fun _ -> trap "slot kind mismatch (float) at instruction %d" i.iid
  in
  let lwith_box_dst (i : instr) (mk : int -> lane_state -> unit) =
    match kind_of i with
    | Some (KBox s) -> mk (s * lw)
    | _ ->
        fun _ -> trap "slot kind mismatch (aggregate) at instruction %d" i.iid
  in
  let lset_rv (i : instr) : lane_state -> int -> rv -> unit =
    match kind_of i with
    | Some (KInt s) ->
        let b = s * lw in
        fun ls l v -> ls.lienv.(b + l) <- as_int v
    | Some (KFloat s) ->
        let b = s * lw in
        fun ls l v -> ls.lfenv.(b + l) <- as_float v
    | Some (KBox s) ->
        let b = s * lw in
        fun ls l v -> ls.lbenv.(b + l) <- v
    | None ->
        fun _ _ _ -> trap "slot kind mismatch at instruction %d" i.iid
  in
  let luset_rv (i : instr) : lane_state -> rv -> unit =
    match kind_of i with
    | Some (KInt s) ->
        let b = s * lw in
        fun ls v -> ls.lienv.(b) <- as_int v
    | Some (KFloat s) ->
        let b = s * lw in
        fun ls v -> ls.lfenv.(b) <- as_float v
    | Some (KBox s) ->
        let b = s * lw in
        fun ls v -> ls.lbenv.(b) <- v
    | None ->
        fun _ _ -> trap "slot kind mismatch at instruction %d" i.iid
  in

  (* A group-uniform call: geometry queries read the shared context;
     everything else evaluates once per batch through the shared builtin
     interpreter. [get_local_id]/[get_global_id] are divergence seeds, so
     the analysis can never classify them uniform. *)
  let lcompile_ucall (i : instr) callee (args : value list) :
      lane_state -> unit =
    let geom (sel : wi_ctx -> int array) =
      match args with
      | [ Cint (_, d) ] when d >= 0 && d < 3 ->
          lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- (sel ls.lctx).(d))
      | [ dvv ] ->
          let g = lu_iget dvv in
          lwith_int_dst i (fun dst ls ->
              let d = g ls in
              if d < 0 || d >= 3 then trap "dimension out of range";
              ls.lienv.(dst) <- (sel ls.lctx).(d))
      | _ -> fun _ -> trap "%s expects a dimension" callee
    in
    match callee with
    | "get_local_id" | "get_global_id" ->
        fun _ -> trap "%s classified uniform" callee
    | "get_group_id" -> geom (fun c -> c.grp)
    | "get_local_size" -> geom (fun c -> c.lsz)
    | "get_global_size" -> geom (fun c -> c.gsz)
    | "get_num_groups" -> geom (fun c -> c.ngr)
    | "get_global_offset" ->
        lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- 0)
    | "get_work_dim" -> lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- 3)
    | _ ->
        let gargs = List.map lu_vget args in
        let set = luset_rv i in
        fun ls -> set ls (data_call callee (List.map (fun g -> g ls) gargs))
  in

  (* A uniform instruction: computed once per batch into the base column,
     exactly mirroring the scalar closure compiler's arms. *)
  let lcompile_uni (i : instr) : lane_state -> unit =
    match i.op with
    | Binop (op, a, b) -> (
        match type_of a with
        | (I1 | I8 | I16 | I32 | I64) as t ->
            let ga = lu_iget a and gb = lu_iget b and f = int_binop_fn t op in
            lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- f (ga ls) (gb ls))
        | F32 ->
            let ga = lu_fget a and gb = lu_fget b and f = float_binop_fn op in
            lwith_float_dst i (fun dst ls ->
                ls.lfenv.(dst) <- f (ga ls) (gb ls))
        | Vec (F32, _) ->
            let ga = lu_vget a and gb = lu_vget b and f = float_binop_fn op in
            lwith_box_dst i (fun dst ls ->
                match (ga ls, gb ls) with
                | RVecF x, RVecF y -> ls.lbenv.(dst) <- RVecF (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | Vec (_, _) ->
            let ga = lu_vget a and gb = lu_vget b and f = int_binop_fn I32 op in
            lwith_box_dst i (fun dst ls ->
                match (ga ls, gb ls) with
                | RVecI x, RVecI y -> ls.lbenv.(dst) <- RVecI (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | _ -> fun _ -> trap "binop operand mismatch")
    | Icmp (c, a, b) ->
        let ga = lu_iget a and gb = lu_iget b and f = icmp_fn (type_of a) c in
        lwith_int_dst i (fun dst ls ->
            ls.lienv.(dst) <- (if f (ga ls) (gb ls) then 1 else 0))
    | Fcmp (c, a, b) ->
        let ga = lu_fget a and gb = lu_fget b and f = fcmp_fn c in
        lwith_int_dst i (fun dst ls ->
            ls.lienv.(dst) <- (if f (ga ls) (gb ls) then 1 else 0))
    | Select (c, a, b) -> (
        let gc = lu_iget c in
        match type_of a with
        | I1 | I8 | I16 | I32 | I64 ->
            let ga = lu_iget a and gb = lu_iget b in
            lwith_int_dst i (fun dst ls ->
                ls.lienv.(dst) <- (if gc ls <> 0 then ga ls else gb ls))
        | F32 ->
            let ga = lu_fget a and gb = lu_fget b in
            lwith_float_dst i (fun dst ls ->
                ls.lfenv.(dst) <- (if gc ls <> 0 then ga ls else gb ls))
        | _ ->
            let ga = lu_vget a and gb = lu_vget b in
            lwith_box_dst i (fun dst ls ->
                ls.lbenv.(dst) <- (if gc ls <> 0 then ga ls else gb ls)))
    | Cast (k, v, t) -> (
        let src_t = type_of v in
        match (k, src_t) with
        | (Sext | Bitcast), (I1 | I8 | I16 | I32 | I64) ->
            let g = lu_iget v in
            lwith_int_dst i (fun dst ls ->
                ls.lienv.(dst) <- sext_of src_t (g ls))
        | Zext, (I1 | I8 | I16 | I32 | I64) ->
            let g = lu_iget v and m = mask_of src_t in
            lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- g ls land m)
        | Trunc, (I1 | I8 | I16 | I32 | I64) ->
            let g = lu_iget v in
            lwith_int_dst i (fun dst ls -> ls.lienv.(dst) <- sext_of t (g ls))
        | Si_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = lu_iget v in
            lwith_float_dst i (fun dst ls ->
                ls.lfenv.(dst) <- float_of_int (g ls))
        | Ui_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = lu_iget v and m = mask_of src_t in
            lwith_float_dst i (fun dst ls ->
                ls.lfenv.(dst) <- float_of_int (g ls land m))
        | Fp_to_si, F32 ->
            let g = lu_fget v in
            lwith_int_dst i (fun dst ls ->
                ls.lienv.(dst) <- int_of_float (g ls))
        | Bitcast, F32 ->
            let g = lu_fget v in
            lwith_float_dst i (fun dst ls -> ls.lfenv.(dst) <- g ls)
        | Bitcast, _ ->
            let g = lu_vget v in
            lwith_box_dst i (fun dst ls -> ls.lbenv.(dst) <- g ls)
        | _ -> fun _ -> trap "unsupported cast")
    | Call { callee; args; _ } -> lcompile_ucall i callee args
    | Alloca { aspace = Local; _ } ->
        let iid = i.iid in
        lwith_box_dst i (fun dst ls ->
            match Hashtbl.find_opt ls.llocal iid with
            | Some b -> ls.lbenv.(dst) <- RBuf b
            | None -> trap "local alloca without a group buffer")
    | Load _ ->
        (* Loads are divergence seeds — never classified uniform. *)
        fun _ -> trap "load classified uniform"
    | Extract (v, lane) -> (
        let gl = lu_iget lane in
        match type_of v with
        | Vec (F32, _) ->
            let gv = lu_vget v in
            lwith_float_dst i (fun dst ls ->
                match gv ls with
                | RVecF a -> ls.lfenv.(dst) <- a.(gl ls)
                | _ -> trap "extract from non-vector")
        | Vec (_, _) ->
            let gv = lu_vget v in
            lwith_int_dst i (fun dst ls ->
                match gv ls with
                | RVecI a -> ls.lienv.(dst) <- a.(gl ls)
                | _ -> trap "extract from non-vector")
        | _ -> fun _ -> trap "extract from non-vector")
    | Insert (v, lane, s) ->
        let gv = lu_vget v and gl = lu_iget lane and gs = lu_vget s in
        lwith_box_dst i (fun dst ls ->
            let l = gl ls in
            match (gv ls, gs ls) with
            | RVecF a, RFloat x ->
                let a = Array.copy a in
                a.(l) <- x;
                ls.lbenv.(dst) <- RVecF a
            | RVecI a, RInt x ->
                let a = Array.copy a in
                a.(l) <- x;
                ls.lbenv.(dst) <- RVecI a
            | _ -> trap "insert mismatch")
    | Vecbuild (t, vs) -> (
        match t with
        | Vec (F32, _) ->
            let gs = Array.of_list (List.map lu_fget vs) in
            lwith_box_dst i (fun dst ls ->
                ls.lbenv.(dst) <- RVecF (Array.map (fun g -> g ls) gs))
        | Vec (_, _) ->
            let gs = Array.of_list (List.map lu_iget vs) in
            lwith_box_dst i (fun dst ls ->
                ls.lbenv.(dst) <- RVecI (Array.map (fun g -> g ls) gs))
        | _ -> fun _ -> trap "vecbuild of non-vector")
    | Store _ | Alloca _ | Phi _ | Barrier _ | Br _ | Cond_br _ | Ret ->
        fun _ -> trap "non-value instruction compiled as uniform"
  in

  (* A varying call: work-item index queries read the per-lane id rows;
     the hot F32 mad/fma gets a fused arm; everything else goes through
     the per-lane generic fallback. *)
  let lcompile_vcall (i : instr) callee (args : value list) :
      lane_state -> unit =
    let arg_tys = List.map type_of args in
    let lane_query (rows : lane_state -> int array array) =
      match args with
      | [ Cint (_, d) ] when d >= 0 && d < 3 ->
          lwith_int_dst i (fun dst ls ->
              let r = (rows ls).(d) in
              for l = 0 to ls.nl - 1 do
                ls.lienv.(dst + l) <- r.(l)
              done)
      | [ dvv ] ->
          let g = lv_iget dvv in
          lwith_int_dst i (fun dst ls ->
              for l = 0 to ls.nl - 1 do
                let d = g ls l in
                if d < 0 || d >= 3 then trap "dimension out of range";
                ls.lienv.(dst + l) <- (rows ls).(d).(l)
              done)
      | _ -> fun _ -> trap "%s expects a dimension" callee
    in
    let geom_var (sel : wi_ctx -> int array) =
      (* geometry query whose dimension operand is divergent *)
      match args with
      | [ dvv ] ->
          let g = lv_iget dvv in
          lwith_int_dst i (fun dst ls ->
              for l = 0 to ls.nl - 1 do
                let d = g ls l in
                if d < 0 || d >= 3 then trap "dimension out of range";
                ls.lienv.(dst + l) <- (sel ls.lctx).(d)
              done)
      | _ -> fun _ -> trap "%s expects a dimension" callee
    in
    match callee with
    | "get_local_id" -> lane_query (fun ls -> ls.llid)
    | "get_global_id" -> lane_query (fun ls -> ls.lgid)
    | "get_group_id" -> geom_var (fun c -> c.grp)
    | "get_local_size" -> geom_var (fun c -> c.lsz)
    | "get_global_size" -> geom_var (fun c -> c.gsz)
    | "get_num_groups" -> geom_var (fun c -> c.ngr)
    | "get_global_offset" ->
        lwith_int_dst i (fun dst ls ->
            for l = 0 to ls.nl - 1 do
              ls.lienv.(dst + l) <- 0
            done)
    | "get_work_dim" ->
        lwith_int_dst i (fun dst ls ->
            for l = 0 to ls.nl - 1 do
              ls.lienv.(dst + l) <- 3
            done)
    | "mad" | "fma" -> (
        match (args, arg_tys) with
        | [ a; b; c ], [ F32; F32; F32 ] ->
            let ga = lv_fget a and gb = lv_fget b and gc = lv_fget c in
            lwith_float_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lfenv.(dst + l) <- (ga ls l *. gb ls l) +. gc ls l
                done)
        | [ a; b; c ], [ ta; tb; tc ]
          when is_int_ty ta && is_int_ty tb && is_int_ty tc ->
            let ga = lv_iget a and gb = lv_iget b and gc = lv_iget c in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lienv.(dst + l) <- (ga ls l * gb ls l) + gc ls l
                done)
        | _ ->
            let gargs = List.map lv_vget args in
            let set = lset_rv i in
            fun ls ->
              for l = 0 to ls.nl - 1 do
                set ls l
                  (data_call callee (List.map (fun g -> g ls l) gargs))
              done)
    | _ ->
        let gargs = List.map lv_vget args in
        let set = lset_rv i in
        fun ls ->
          for l = 0 to ls.nl - 1 do
            set ls l (data_call callee (List.map (fun g -> g ls l) gargs))
          done
  in

  (* A varying instruction: one result column per active lane. The int
     and float binop arms are the innermost ops of every address
     computation, so their common operand shapes (slot x slot, slot x
     hoistable) get dedicated loops with direct array reads — and the
     wrap-free operators are inlined rather than called through the
     resolved closure. *)
  let lcompile_var (i : instr) : lane_state -> unit =
    match i.op with
    | Binop (op, a, b) -> (
        match type_of a with
        | (I1 | I8 | I16 | I32 | I64) as t -> (
            let f = int_binop_fn t op in
            let generic () =
              let ga = lv_iget a and gb = lv_iget b in
              lwith_int_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lienv.(dst + l) <- f (ga ls l) (gb ls l)
                  done)
            in
            match (ivar_slot a, ivar_slot b) with
            | Some ao, Some bo -> (
                match op with
                | Add ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) + ie.(bo + l)
                        done)
                | Mul ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) * ie.(bo + l)
                        done)
                | Sub ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) - ie.(bo + l)
                        done)
                | And ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) land ie.(bo + l)
                        done)
                | Or ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) lor ie.(bo + l)
                        done)
                | Xor ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) lxor ie.(bo + l)
                        done)
                | Shl ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) lsl (ie.(bo + l) land 63)
                        done)
                | Ashr ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- ie.(ao + l) asr (ie.(bo + l) land 63)
                        done)
                | Lshr ->
                    let m = mask_of t in
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <-
                            (ie.(ao + l) land m) lsr (ie.(bo + l) land 63)
                        done)
                | _ ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- f ie.(ao + l) ie.(bo + l)
                        done))
            | Some ao, None -> (
                match ihoist b with
                | None -> generic ()
                | Some hb -> (
                    match op with
                    | Add ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) + y
                            done)
                    | Mul ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) * y
                            done)
                    | Sub ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) - y
                            done)
                    | And ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) land y
                            done)
                    | Or ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) lor y
                            done)
                    | Xor ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) lxor y
                            done)
                    | Shl ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and sh = hb ls land 63 in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) lsl sh
                            done)
                    | Ashr ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and sh = hb ls land 63 in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- ie.(ao + l) asr sh
                            done)
                    | Lshr ->
                        let m = mask_of t in
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and sh = hb ls land 63 in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- (ie.(ao + l) land m) lsr sh
                            done)
                    | _ ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and y = hb ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- f ie.(ao + l) y
                            done)))
            | None, Some bo -> (
                match ihoist a with
                | None -> generic ()
                | Some ha -> (
                    match op with
                    | Add ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x + ie.(bo + l)
                            done)
                    | Mul ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x * ie.(bo + l)
                            done)
                    | Sub ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x - ie.(bo + l)
                            done)
                    | And ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x land ie.(bo + l)
                            done)
                    | Or ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x lor ie.(bo + l)
                            done)
                    | Xor ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x lxor ie.(bo + l)
                            done)
                    | Shl ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x lsl (ie.(bo + l) land 63)
                            done)
                    | Ashr ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x asr (ie.(bo + l) land 63)
                            done)
                    | Lshr ->
                        let m = mask_of t in
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv in
                            let x = ha ls land m in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- x lsr (ie.(bo + l) land 63)
                            done)
                    | _ ->
                        lwith_int_dst i (fun dst ls ->
                            let ie = ls.lienv and x = ha ls in
                            for l = 0 to ls.nl - 1 do
                              ie.(dst + l) <- f x ie.(bo + l)
                            done)))
            | None, None -> generic ())
        | F32 -> (
            let f = float_binop_fn op in
            let generic () =
              let ga = lv_fget a and gb = lv_fget b in
              lwith_float_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lfenv.(dst + l) <- f (ga ls l) (gb ls l)
                  done)
            in
            match (fvar_slot a, fvar_slot b) with
            | Some ao, Some bo -> (
                match op with
                | Fadd ->
                    lwith_float_dst i (fun dst ls ->
                        let fe = ls.lfenv in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- fe.(ao + l) +. fe.(bo + l)
                        done)
                | Fmul ->
                    lwith_float_dst i (fun dst ls ->
                        let fe = ls.lfenv in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- fe.(ao + l) *. fe.(bo + l)
                        done)
                | _ ->
                    lwith_float_dst i (fun dst ls ->
                        let fe = ls.lfenv in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- f fe.(ao + l) fe.(bo + l)
                        done))
            | Some ao, None -> (
                match fhoist b with
                | None -> generic ()
                | Some hb ->
                    lwith_float_dst i (fun dst ls ->
                        let fe = ls.lfenv and y = hb ls in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- f fe.(ao + l) y
                        done))
            | None, Some bo -> (
                match fhoist a with
                | None -> generic ()
                | Some ha ->
                    lwith_float_dst i (fun dst ls ->
                        let fe = ls.lfenv and x = ha ls in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- f x fe.(bo + l)
                        done))
            | None, None -> generic ())
        | Vec (F32, _) -> (
            let f = float_binop_fn op in
            let generic () =
              let ga = lv_vget a and gb = lv_vget b in
              lwith_box_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lbenv.(dst + l) <-
                      (match (ga ls l, gb ls l) with
                      | RVecF x, RVecF y -> RVecF (lanes_map2 f x y)
                      | _ -> trap "binop operand mismatch")
                  done)
            in
            match (bvar_slot a, bvar_slot b) with
            | Some ao, Some bo -> (
                match op with
                | Fadd ->
                    lwith_box_dst i (fun dst ls ->
                        let be = ls.lbenv in
                        for l = 0 to ls.nl - 1 do
                          be.(dst + l) <-
                            (match (be.(ao + l), be.(bo + l)) with
                            | RVecF x, RVecF y ->
                                RVecF (lanes_map2 ( +. ) x y)
                            | _ -> trap "binop operand mismatch")
                        done)
                | Fmul ->
                    lwith_box_dst i (fun dst ls ->
                        let be = ls.lbenv in
                        for l = 0 to ls.nl - 1 do
                          be.(dst + l) <-
                            (match (be.(ao + l), be.(bo + l)) with
                            | RVecF x, RVecF y ->
                                RVecF (lanes_map2 ( *. ) x y)
                            | _ -> trap "binop operand mismatch")
                        done)
                | _ ->
                    lwith_box_dst i (fun dst ls ->
                        let be = ls.lbenv in
                        for l = 0 to ls.nl - 1 do
                          be.(dst + l) <-
                            (match (be.(ao + l), be.(bo + l)) with
                            | RVecF x, RVecF y -> RVecF (lanes_map2 f x y)
                            | _ -> trap "binop operand mismatch")
                        done))
            | _ -> generic ())
        | Vec (_, _) ->
            let ga = lv_vget a and gb = lv_vget b and f = int_binop_fn I32 op in
            lwith_box_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lbenv.(dst + l) <-
                    (match (ga ls l, gb ls l) with
                    | RVecI x, RVecI y -> RVecI (lanes_map2 f x y)
                    | _ -> trap "binop operand mismatch")
                done)
        | _ -> fun _ -> trap "binop operand mismatch")
    | Icmp (c, a, b) -> (
        let f = icmp_fn (type_of a) c in
        let generic () =
          let ga = lv_iget a and gb = lv_iget b in
          lwith_int_dst i (fun dst ls ->
              for l = 0 to ls.nl - 1 do
                ls.lienv.(dst + l) <- (if f (ga ls l) (gb ls l) then 1 else 0)
              done)
        in
        match (ivar_slot a, ivar_slot b) with
        | Some ao, Some bo ->
            lwith_int_dst i (fun dst ls ->
                let ie = ls.lienv in
                for l = 0 to ls.nl - 1 do
                  ie.(dst + l) <- (if f ie.(ao + l) ie.(bo + l) then 1 else 0)
                done)
        | Some ao, None -> (
            match ihoist b with
            | None -> generic ()
            | Some hb ->
                lwith_int_dst i (fun dst ls ->
                    let ie = ls.lienv and y = hb ls in
                    for l = 0 to ls.nl - 1 do
                      ie.(dst + l) <- (if f ie.(ao + l) y then 1 else 0)
                    done))
        | None, Some bo -> (
            match ihoist a with
            | None -> generic ()
            | Some ha ->
                lwith_int_dst i (fun dst ls ->
                    let ie = ls.lienv and x = ha ls in
                    for l = 0 to ls.nl - 1 do
                      ie.(dst + l) <- (if f x ie.(bo + l) then 1 else 0)
                    done))
        | None, None -> generic ())
    | Fcmp (c, a, b) -> (
        let f = fcmp_fn c in
        let generic () =
          let ga = lv_fget a and gb = lv_fget b in
          lwith_int_dst i (fun dst ls ->
              for l = 0 to ls.nl - 1 do
                ls.lienv.(dst + l) <- (if f (ga ls l) (gb ls l) then 1 else 0)
              done)
        in
        match (fvar_slot a, fvar_slot b) with
        | Some ao, Some bo ->
            lwith_int_dst i (fun dst ls ->
                let ie = ls.lienv and fe = ls.lfenv in
                for l = 0 to ls.nl - 1 do
                  ie.(dst + l) <- (if f fe.(ao + l) fe.(bo + l) then 1 else 0)
                done)
        | Some ao, None -> (
            match fhoist b with
            | None -> generic ()
            | Some hb ->
                lwith_int_dst i (fun dst ls ->
                    let ie = ls.lienv and fe = ls.lfenv and y = hb ls in
                    for l = 0 to ls.nl - 1 do
                      ie.(dst + l) <- (if f fe.(ao + l) y then 1 else 0)
                    done))
        | None, Some bo -> (
            match fhoist a with
            | None -> generic ()
            | Some ha ->
                lwith_int_dst i (fun dst ls ->
                    let ie = ls.lienv and fe = ls.lfenv and x = ha ls in
                    for l = 0 to ls.nl - 1 do
                      ie.(dst + l) <- (if f x fe.(bo + l) then 1 else 0)
                    done))
        | None, None -> generic ())
    | Select (c, a, b) -> (
        let gc = lv_iget c in
        match type_of a with
        | I1 | I8 | I16 | I32 | I64 -> (
            let generic () =
              let ga = lv_iget a and gb = lv_iget b in
              lwith_int_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lienv.(dst + l) <-
                      (if gc ls l <> 0 then ga ls l else gb ls l)
                  done)
            in
            match (ivar_slot c, ivar_slot a, ivar_slot b) with
            | Some co, Some ao, Some bo ->
                lwith_int_dst i (fun dst ls ->
                    let ie = ls.lienv in
                    for l = 0 to ls.nl - 1 do
                      ie.(dst + l) <-
                        (if ie.(co + l) <> 0 then ie.(ao + l) else ie.(bo + l))
                    done)
            | Some co, _, _ -> (
                match (ihoist a, ihoist b) with
                | Some ha, Some hb ->
                    lwith_int_dst i (fun dst ls ->
                        let ie = ls.lienv in
                        let x = ha ls and y = hb ls in
                        for l = 0 to ls.nl - 1 do
                          ie.(dst + l) <- (if ie.(co + l) <> 0 then x else y)
                        done)
                | _ -> generic ())
            | _ -> generic ())
        | F32 -> (
            let generic () =
              let ga = lv_fget a and gb = lv_fget b in
              lwith_float_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lfenv.(dst + l) <-
                      (if gc ls l <> 0 then ga ls l else gb ls l)
                  done)
            in
            match (ivar_slot c, fvar_slot a, fvar_slot b) with
            | Some co, Some ao, Some bo ->
                lwith_float_dst i (fun dst ls ->
                    let ie = ls.lienv and fe = ls.lfenv in
                    for l = 0 to ls.nl - 1 do
                      fe.(dst + l) <-
                        (if ie.(co + l) <> 0 then fe.(ao + l) else fe.(bo + l))
                    done)
            | Some co, _, _ -> (
                match (fhoist a, fhoist b) with
                | Some ha, Some hb ->
                    lwith_float_dst i (fun dst ls ->
                        let ie = ls.lienv and fe = ls.lfenv in
                        let x = ha ls and y = hb ls in
                        for l = 0 to ls.nl - 1 do
                          fe.(dst + l) <- (if ie.(co + l) <> 0 then x else y)
                        done)
                | _ -> generic ())
            | _ -> generic ())
        | _ -> (
            let generic () =
              let ga = lv_vget a and gb = lv_vget b in
              lwith_box_dst i (fun dst ls ->
                  for l = 0 to ls.nl - 1 do
                    ls.lbenv.(dst + l) <-
                      (if gc ls l <> 0 then ga ls l else gb ls l)
                  done)
            in
            match (ivar_slot c, bvar_slot a, bvar_slot b) with
            | Some co, Some ao, Some bo ->
                lwith_box_dst i (fun dst ls ->
                    let ie = ls.lienv and be = ls.lbenv in
                    for l = 0 to ls.nl - 1 do
                      be.(dst + l) <-
                        (if ie.(co + l) <> 0 then be.(ao + l) else be.(bo + l))
                    done)
            | _ -> generic ()))
    | Cast (k, v, t) -> (
        let src_t = type_of v in
        match (k, src_t) with
        | (Sext | Bitcast), (I1 | I8 | I16 | I32 | I64) ->
            let g = lv_iget v in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lienv.(dst + l) <- sext_of src_t (g ls l)
                done)
        | Zext, (I1 | I8 | I16 | I32 | I64) ->
            let g = lv_iget v and m = mask_of src_t in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lienv.(dst + l) <- g ls l land m
                done)
        | Trunc, (I1 | I8 | I16 | I32 | I64) ->
            let g = lv_iget v in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lienv.(dst + l) <- sext_of t (g ls l)
                done)
        | Si_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = lv_iget v in
            lwith_float_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lfenv.(dst + l) <- float_of_int (g ls l)
                done)
        | Ui_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = lv_iget v and m = mask_of src_t in
            lwith_float_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lfenv.(dst + l) <- float_of_int (g ls l land m)
                done)
        | Fp_to_si, F32 ->
            let g = lv_fget v in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lienv.(dst + l) <- int_of_float (g ls l)
                done)
        | Bitcast, F32 ->
            let g = lv_fget v in
            lwith_float_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lfenv.(dst + l) <- g ls l
                done)
        | Bitcast, _ ->
            let g = lv_vget v in
            lwith_box_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lbenv.(dst + l) <- g ls l
                done)
        | _ -> fun _ -> trap "unsupported cast")
    | Call { callee; args; _ } -> lcompile_vcall i callee args
    | Load { ptr; index } -> (
        let gp = lv_bufget ptr and gi = lv_iget index in
        let loc = i.iloc in
        match elem_of_ptr (type_of ptr) with
        | F32 -> (
            match (buf_hoist ptr, ivar_slot index) with
            | Some hb, Some io ->
                lwith_float_dst i (fun dst ls ->
                    let b = hb ls in
                    let ie = ls.lienv and fe = ls.lfenv in
                    let bf = ls.base_flat in
                    match ls.lsan with
                    | None ->
                        for l = 0 to ls.nl - 1 do
                          let idx = ie.(io + l) in
                          Trace.record ls.lstats
                            ~addr:(Memory.addr_of b idx)
                            ~bytes:b.Memory.elem_bytes ~is_write:false
                            ~space:b.Memory.space ~wi:(bf + l);
                          fe.(dst + l) <- Memory.get_float b idx
                        done
                    | Some _ ->
                        for l = 0 to ls.nl - 1 do
                          let idx = ie.(io + l) in
                          let wi = bf + l in
                          lane_record ls b idx ~is_write:false ~wi;
                          lane_san ls b idx ~is_write:false ~loc ~wi;
                          fe.(dst + l) <- Memory.get_float b idx
                        done)
            | _ ->
                lwith_float_dst i (fun dst ls ->
                    let bf = ls.base_flat in
                    for l = 0 to ls.nl - 1 do
                      let b = gp ls l and idx = gi ls l in
                      let wi = bf + l in
                      lane_record ls b idx ~is_write:false ~wi;
                      lane_san ls b idx ~is_write:false ~loc ~wi;
                      ls.lfenv.(dst + l) <- Memory.get_float b idx
                    done))
        | I1 | I8 | I16 | I32 | I64 -> (
            match (buf_hoist ptr, ivar_slot index) with
            | Some hb, Some io ->
                lwith_int_dst i (fun dst ls ->
                    let b = hb ls in
                    let ie = ls.lienv in
                    let bf = ls.base_flat in
                    match ls.lsan with
                    | None ->
                        for l = 0 to ls.nl - 1 do
                          let idx = ie.(io + l) in
                          Trace.record ls.lstats
                            ~addr:(Memory.addr_of b idx)
                            ~bytes:b.Memory.elem_bytes ~is_write:false
                            ~space:b.Memory.space ~wi:(bf + l);
                          ie.(dst + l) <- Memory.get_int b idx
                        done
                    | Some _ ->
                        for l = 0 to ls.nl - 1 do
                          let idx = ie.(io + l) in
                          let wi = bf + l in
                          lane_record ls b idx ~is_write:false ~wi;
                          lane_san ls b idx ~is_write:false ~loc ~wi;
                          ie.(dst + l) <- Memory.get_int b idx
                        done)
            | _ ->
                lwith_int_dst i (fun dst ls ->
                    let bf = ls.base_flat in
                    for l = 0 to ls.nl - 1 do
                      let b = gp ls l and idx = gi ls l in
                      let wi = bf + l in
                      lane_record ls b idx ~is_write:false ~wi;
                      lane_san ls b idx ~is_write:false ~loc ~wi;
                      ls.lienv.(dst + l) <- Memory.get_int b idx
                    done))
        | Vec (F32, n) ->
            lwith_box_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  let b = gp ls l and idx = gi ls l in
                  let wi = bf + l in
                  lane_record ls b idx ~is_write:false ~wi;
                  lane_san ls b idx ~is_write:false ~loc ~wi;
                  ls.lbenv.(dst + l) <-
                    RVecF
                      (Array.init n (fun j -> Memory.get_lane_float b idx j))
                done)
        | Vec (_, n) ->
            lwith_box_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  let b = gp ls l and idx = gi ls l in
                  let wi = bf + l in
                  lane_record ls b idx ~is_write:false ~wi;
                  lane_san ls b idx ~is_write:false ~loc ~wi;
                  ls.lbenv.(dst + l) <-
                    RVecI (Array.init n (fun j -> Memory.get_lane_int b idx j))
                done)
        | _ -> fun _ -> trap "load of unsupported element type"
        | exception Invalid_argument _ ->
            fun _ -> trap "load of unsupported element type")
    | Store { ptr; index; v } -> (
        let gp = lv_bufget ptr and gi = lv_iget index in
        let loc = i.iloc in
        match type_of v with
        | F32 -> (
            let gv = lv_fget v in
            match (buf_hoist ptr, ivar_slot index, fvar_slot v) with
            | Some hb, Some io, Some vo ->
                fun ls ->
                  let b = hb ls in
                  let ie = ls.lienv and fe = ls.lfenv in
                  let bf = ls.base_flat in
                  (match ls.lsan with
                  | None ->
                      for l = 0 to ls.nl - 1 do
                        let idx = ie.(io + l) in
                        Trace.record ls.lstats
                          ~addr:(Memory.addr_of b idx)
                          ~bytes:b.Memory.elem_bytes ~is_write:true
                          ~space:b.Memory.space ~wi:(bf + l);
                        Memory.set_float b idx fe.(vo + l)
                      done
                  | Some _ ->
                      for l = 0 to ls.nl - 1 do
                        let idx = ie.(io + l) in
                        let wi = bf + l in
                        lane_record ls b idx ~is_write:true ~wi;
                        lane_san ls b idx ~is_write:true ~loc ~wi;
                        Memory.set_float b idx fe.(vo + l)
                      done)
            | _ ->
                fun ls ->
                  let bf = ls.base_flat in
                  for l = 0 to ls.nl - 1 do
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:true ~wi;
                    lane_san ls b idx ~is_write:true ~loc ~wi;
                    Memory.set_float b idx (gv ls l)
                  done)
        | I1 | I8 | I16 | I32 | I64 -> (
            let gv = lv_iget v in
            match (buf_hoist ptr, ivar_slot index, ivar_slot v) with
            | Some hb, Some io, Some vo ->
                fun ls ->
                  let b = hb ls in
                  let ie = ls.lienv in
                  let bf = ls.base_flat in
                  (match ls.lsan with
                  | None ->
                      for l = 0 to ls.nl - 1 do
                        let idx = ie.(io + l) in
                        Trace.record ls.lstats
                          ~addr:(Memory.addr_of b idx)
                          ~bytes:b.Memory.elem_bytes ~is_write:true
                          ~space:b.Memory.space ~wi:(bf + l);
                        Memory.set_int b idx ie.(vo + l)
                      done
                  | Some _ ->
                      for l = 0 to ls.nl - 1 do
                        let idx = ie.(io + l) in
                        let wi = bf + l in
                        lane_record ls b idx ~is_write:true ~wi;
                        lane_san ls b idx ~is_write:true ~loc ~wi;
                        Memory.set_int b idx ie.(vo + l)
                      done)
            | _ ->
                fun ls ->
                  let bf = ls.base_flat in
                  for l = 0 to ls.nl - 1 do
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:true ~wi;
                    lane_san ls b idx ~is_write:true ~loc ~wi;
                    Memory.set_int b idx (gv ls l)
                  done)
        | _ ->
            let gv = lv_vget v in
            fun ls ->
              let bf = ls.base_flat in
              for l = 0 to ls.nl - 1 do
                let b = gp ls l and idx = gi ls l in
                let wi = bf + l in
                lane_record ls b idx ~is_write:true ~wi;
                lane_san ls b idx ~is_write:true ~loc ~wi;
                match gv ls l with
                | RFloat f -> Memory.set_float b idx f
                | RInt n -> Memory.set_int b idx n
                | RVecF a ->
                    Array.iteri (fun j x -> Memory.set_lane_float b idx j x) a
                | RVecI a ->
                    Array.iteri (fun j x -> Memory.set_lane_int b idx j x) a
                | RBuf _ -> trap "cannot store a pointer"
              done)
    | Extract (v, lane) -> (
        let gl = lv_iget lane in
        match type_of v with
        | Vec (F32, _) -> (
            match (bvar_slot v, ihoist lane) with
            | Some vo, Some hl ->
                lwith_float_dst i (fun dst ls ->
                    let be = ls.lbenv and fe = ls.lfenv in
                    let j = hl ls in
                    for l = 0 to ls.nl - 1 do
                      (match be.(vo + l) with
                      | RVecF a -> fe.(dst + l) <- a.(j)
                      | _ -> trap "extract from non-vector")
                    done)
            | _ ->
                let gv = lv_vget v in
                lwith_float_dst i (fun dst ls ->
                    for l = 0 to ls.nl - 1 do
                      (match gv ls l with
                      | RVecF a -> ls.lfenv.(dst + l) <- a.(gl ls l)
                      | _ -> trap "extract from non-vector")
                    done))
        | Vec (_, _) ->
            let gv = lv_vget v in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  (match gv ls l with
                  | RVecI a -> ls.lienv.(dst + l) <- a.(gl ls l)
                  | _ -> trap "extract from non-vector")
                done)
        | _ -> fun _ -> trap "extract from non-vector")
    | Insert (v, lane, s) ->
        let gv = lv_vget v and gl = lv_iget lane and gs = lv_vget s in
        lwith_box_dst i (fun dst ls ->
            for l = 0 to ls.nl - 1 do
              (match (gv ls l, gs ls l) with
              | RVecF a, RFloat x ->
                  let a = Array.copy a in
                  a.(gl ls l) <- x;
                  ls.lbenv.(dst + l) <- RVecF a
              | RVecI a, RInt x ->
                  let a = Array.copy a in
                  a.(gl ls l) <- x;
                  ls.lbenv.(dst + l) <- RVecI a
              | _ -> trap "insert mismatch")
            done)
    | Vecbuild (t, vs) -> (
        match t with
        | Vec (F32, _) ->
            let gs = Array.of_list (List.map lv_fget vs) in
            lwith_box_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lbenv.(dst + l) <-
                    RVecF (Array.map (fun g -> g ls l) gs)
                done)
        | Vec (_, _) ->
            let gs = Array.of_list (List.map lv_iget vs) in
            lwith_box_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  ls.lbenv.(dst + l) <-
                    RVecI (Array.map (fun g -> g ls l) gs)
                done)
        | _ -> fun _ -> trap "vecbuild of non-vector")
    | Alloca _ -> fun _ -> trap "unsupported alloca space"
    | Phi _ -> fun _ -> trap "phi executed outside block entry"
    | Barrier _ -> fun _ -> trap "barrier executed as a body instruction"
    | Br _ | Cond_br _ | Ret ->
        fun _ -> trap "terminator executed as body instruction"
  in

  let lane_instr (i : instr) : lane_state -> unit =
    match i.op with
    | Alloca { aspace = Private; _ } -> raise Unbatchable
    | _ ->
        if Hashtbl.mem kinds i.iid && not (Divergence.iid_divergent dv i.iid)
        then lcompile_uni i
        else lcompile_var i
  in

  (* Per-edge phi moves, split by the destination phi's uniformity. The
     fixpoint guarantees a uniform phi only has uniform incomings. *)
  let scr_ui = ref 0 and scr_uf = ref 0 and scr_ub = ref 0 in
  let scr_vi = ref 0 and scr_vf = ref 0 and scr_vb = ref 0 in
  let mk_ledge (src : block) (dst : block) : ledge =
    let uim = ref [] and ufm = ref [] and ubm = ref [] in
    let vim = ref [] and vfm = ref [] and vbm = ref [] in
    List.iter
      (fun (pi : instr) ->
        match pi.op with
        | Phi { incoming; _ } -> (
            match List.find_opt (fun (b, _) -> b.bid = src.bid) incoming with
            | None ->
                uim :=
                  (0, fun _ -> trap "phi has no incoming for predecessor")
                  :: !uim
            | Some (_, v) -> (
                let phi_uni = not (Divergence.iid_divergent dv pi.iid) in
                match kind_of pi with
                | Some (KInt s) ->
                    if phi_uni then uim := (s * lw, lu_iget v) :: !uim
                    else vim := (s * lw, lv_iget v) :: !vim
                | Some (KFloat s) ->
                    if phi_uni then ufm := (s * lw, lu_fget v) :: !ufm
                    else vfm := (s * lw, lv_fget v) :: !vfm
                | Some (KBox s) ->
                    if phi_uni then ubm := (s * lw, lu_vget v) :: !ubm
                    else vbm := (s * lw, lv_vget v) :: !vbm
                | None -> ()))
        | _ -> ())
      dst.instrs;
    let uim = Array.of_list (List.rev !uim)
    and ufm = Array.of_list (List.rev !ufm)
    and ubm = Array.of_list (List.rev !ubm)
    and vim = Array.of_list (List.rev !vim)
    and vfm = Array.of_list (List.rev !vfm)
    and vbm = Array.of_list (List.rev !vbm) in
    scr_ui := max !scr_ui (Array.length uim);
    scr_uf := max !scr_uf (Array.length ufm);
    scr_ub := max !scr_ub (Array.length ubm);
    scr_vi := max !scr_vi (Array.length vim);
    scr_vf := max !scr_vf (Array.length vfm);
    scr_vb := max !scr_vb (Array.length vbm);
    {
      le_dst = Hashtbl.find bidx dst.bid;
      lu_im_dst = Array.map fst uim;
      lu_im_src = Array.map snd uim;
      lu_fm_dst = Array.map fst ufm;
      lu_fm_src = Array.map snd ufm;
      lu_bm_dst = Array.map fst ubm;
      lu_bm_src = Array.map snd ubm;
      lv_im_dst = Array.map fst vim;
      lv_im_src = Array.map snd vim;
      lv_fm_dst = Array.map fst vfm;
      lv_fm_src = Array.map snd vfm;
      lv_bm_dst = Array.map fst vbm;
      lv_bm_src = Array.map snd vbm;
    }
  in
  let bare_ledge (dst : block) : ledge =
    {
      le_dst = Hashtbl.find bidx dst.bid;
      lu_im_dst = [||];
      lu_im_src = [||];
      lu_fm_dst = [||];
      lu_fm_src = [||];
      lu_bm_dst = [||];
      lu_bm_src = [||];
      lv_im_dst = [||];
      lv_im_src = [||];
      lv_fm_dst = [||];
      lv_fm_src = [||];
      lv_bm_dst = [||];
      lv_bm_src = [||];
    }
  in

  (* -- Masked diamond if-conversion ---------------------------------------

     A divergent [Cond_br] classified by {!Regions} as a pure diamond is
     compiled into the branch block's own segment: a predicate closure
     fills [lpred]/[lnthen] (charging one branch per lane, as the scalar
     executors do at [Tcond]), each arm's body runs under its mask, phi
     nodes at the join are written as per-lane masked merges, and the
     terminator becomes a plain jump to the join. Pure varying
     instructions evaluate flat over every lane — an inactive lane's
     garbage is only ever read by the masked merge, which selects the
     other side — while instructions whose execution is observable or can
     fault (loads: trace/sanitizer event identity; integer division:
     traps; vector extract/insert: data-dependent lane indices) run under
     an explicit per-lane guard. Each arm's static cost is charged per
     active lane and the arm is skipped outright when no lane takes it,
     so trace totals stay bit-identical to the scalar sweep, which
     executes an arm only for the work-items that branch into it. *)
  let blk_of_bid : (int, block) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun ((b : block), _, _) -> Hashtbl.replace blk_of_bid b.bid b)
    seg_descs;

  (* Masked compilation of the arm instructions that must not run on
     inactive lanes; [on] is the [lpred] value (1 = then, 0 = else) that
     activates this arm. *)
  let lmasked_var ~(on : int) (i : instr) : lane_state -> unit =
    match i.op with
    | Load { ptr; index } -> (
        let gp = lv_bufget ptr and gi = lv_iget index in
        let loc = i.iloc in
        match elem_of_ptr (type_of ptr) with
        | F32 ->
            lwith_float_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then begin
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:false ~wi;
                    lane_san ls b idx ~is_write:false ~loc ~wi;
                    ls.lfenv.(dst + l) <- Memory.get_float b idx
                  end
                done)
        | I1 | I8 | I16 | I32 | I64 ->
            lwith_int_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then begin
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:false ~wi;
                    lane_san ls b idx ~is_write:false ~loc ~wi;
                    ls.lienv.(dst + l) <- Memory.get_int b idx
                  end
                done)
        | Vec (F32, n) ->
            lwith_box_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then begin
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:false ~wi;
                    lane_san ls b idx ~is_write:false ~loc ~wi;
                    ls.lbenv.(dst + l) <-
                      RVecF
                        (Array.init n (fun j -> Memory.get_lane_float b idx j))
                  end
                done)
        | Vec (_, n) ->
            lwith_box_dst i (fun dst ls ->
                let bf = ls.base_flat in
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then begin
                    let b = gp ls l and idx = gi ls l in
                    let wi = bf + l in
                    lane_record ls b idx ~is_write:false ~wi;
                    lane_san ls b idx ~is_write:false ~loc ~wi;
                    ls.lbenv.(dst + l) <-
                      RVecI
                        (Array.init n (fun j -> Memory.get_lane_int b idx j))
                  end
                done)
        | _ -> fun _ -> trap "load of unsupported element type"
        | exception Invalid_argument _ ->
            fun _ -> trap "load of unsupported element type")
    | Binop (op, a, b) -> (
        match type_of a with
        | (I1 | I8 | I16 | I32 | I64) as t ->
            let f = int_binop_fn t op in
            let ga = lv_iget a and gb = lv_iget b in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then
                    ls.lienv.(dst + l) <- f (ga ls l) (gb ls l)
                done)
        | Vec (_, _) ->
            let ga = lv_vget a and gb = lv_vget b and f = int_binop_fn I32 op in
            lwith_box_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then
                    ls.lbenv.(dst + l) <-
                      (match (ga ls l, gb ls l) with
                      | RVecI x, RVecI y -> RVecI (lanes_map2 f x y)
                      | _ -> trap "binop operand mismatch")
                done)
        | _ -> lcompile_var i)
    | Extract (v, lane) -> (
        let gl = lv_iget lane in
        match type_of v with
        | Vec (F32, _) ->
            let gv = lv_vget v in
            lwith_float_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then
                    match gv ls l with
                    | RVecF a -> ls.lfenv.(dst + l) <- a.(gl ls l)
                    | _ -> trap "extract from non-vector"
                done)
        | Vec (_, _) ->
            let gv = lv_vget v in
            lwith_int_dst i (fun dst ls ->
                for l = 0 to ls.nl - 1 do
                  if ls.lpred.(l) = on then
                    match gv ls l with
                    | RVecI a -> ls.lienv.(dst + l) <- a.(gl ls l)
                    | _ -> trap "extract from non-vector"
                done)
        | _ -> fun _ -> trap "extract from non-vector")
    | Insert (v, lane, s) ->
        let gv = lv_vget v and gl = lv_iget lane and gs = lv_vget s in
        lwith_box_dst i (fun dst ls ->
            for l = 0 to ls.nl - 1 do
              if ls.lpred.(l) = on then
                match (gv ls l, gs ls l) with
                | RVecF a, RFloat x ->
                    let a = Array.copy a in
                    a.(gl ls l) <- x;
                    ls.lbenv.(dst + l) <- RVecF a
                | RVecI a, RInt x ->
                    let a = Array.copy a in
                    a.(gl ls l) <- x;
                    ls.lbenv.(dst + l) <- RVecI a
                | _ -> trap "insert mismatch"
            done)
    | _ -> lcompile_var i
  in
  let lane_arm_instr ~(on : int) (i : instr) : lane_state -> unit =
    match i.op with
    | Alloca { aspace = Private; _ } -> raise Unbatchable
    | _ ->
        if Hashtbl.mem kinds i.iid && not (Divergence.iid_divergent dv i.iid)
        then
          (* uniform: computed flat once per batch — safe because the arm
             body is skipped entirely when no lane is active, and a
             uniform divisor is the same value the scalar sweep divides
             by for every work-item that takes the arm *)
          lcompile_uni i
        else (
          match i.op with
          | Load _
          | Binop ((Sdiv | Udiv | Srem | Urem), _, _)
          | Extract _ | Insert _ ->
              lmasked_var ~on i
          | _ -> lcompile_var i)
  in

  (* Per-lane masked merges for the join's phis: each lane selects the
     incoming value of the arm it took. Join phis are divergent by
     construction (the divergence fixpoint marks every phi of a join
     block), so the destinations are varying columns. *)
  let masked_phi_merges (jb : block) ~(tpred : int) ~(epred : int) :
      (lane_state -> unit) list =
    List.filter_map
      (fun (pi : instr) ->
        match pi.op with
        | Phi { incoming; _ } -> (
            let inc bid =
              List.find_opt (fun ((p : block), _) -> p.bid = bid) incoming
            in
            match (inc tpred, inc epred, kind_of pi) with
            | _, _, None -> None
            | Some (_, tv), Some (_, ev), Some (KInt s) ->
                let b = s * lw in
                let gt = lv_iget tv and ge = lv_iget ev in
                Some
                  (fun ls ->
                    let ie = ls.lienv and pr = ls.lpred in
                    for l = 0 to ls.nl - 1 do
                      ie.(b + l) <- (if pr.(l) <> 0 then gt ls l else ge ls l)
                    done)
            | Some (_, tv), Some (_, ev), Some (KFloat s) ->
                let b = s * lw in
                let gt = lv_fget tv and ge = lv_fget ev in
                Some
                  (fun ls ->
                    let fe = ls.lfenv and pr = ls.lpred in
                    for l = 0 to ls.nl - 1 do
                      fe.(b + l) <- (if pr.(l) <> 0 then gt ls l else ge ls l)
                    done)
            | Some (_, tv), Some (_, ev), Some (KBox s) ->
                let b = s * lw in
                let gt = lv_vget tv and ge = lv_vget ev in
                Some
                  (fun ls ->
                    let be = ls.lbenv and pr = ls.lpred in
                    for l = 0 to ls.nl - 1 do
                      be.(b + l) <- (if pr.(l) <> 0 then gt ls l else ge ls l)
                    done)
            | _ ->
                Some
                  (fun _ -> trap "phi has no incoming for a diamond edge"))
        | _ -> None)
      jb.instrs
  in
  let compile_diamond (b : block) (c : value) (d : Regions.diamond) :
      (lane_state -> unit) list * lterm =
    let arm_blk = Option.map (Hashtbl.find blk_of_bid) in
    let tb = arm_blk d.Regions.d_then and eb = arm_blk d.Regions.d_else in
    let jb = Hashtbl.find blk_of_bid d.Regions.d_join in
    let gc = lv_iget c in
    let predicate ls =
      let n = ls.nl in
      let m = ref 0 in
      for l = 0 to n - 1 do
        let p = if gc ls l <> 0 then 1 else 0 in
        ls.lpred.(l) <- p;
        m := !m + p
      done;
      ls.lnthen <- !m;
      ls.lstats.Trace.branches <- ls.lstats.Trace.branches + n
    in
    let arm ~(on : int) (ab : block option) : (lane_state -> unit) list =
      match ab with
      | None -> []
      | Some blk ->
          let body =
            Array.of_list (List.map (lane_arm_instr ~on) blk.instrs)
          in
          let ci, cf, cs = block_cost blk.instrs in
          [
            (fun ls ->
              let act = if on = 1 then ls.lnthen else ls.nl - ls.lnthen in
              if act > 0 then begin
                let st = ls.lstats in
                st.Trace.int_ops <- st.Trace.int_ops + (ci * act);
                st.Trace.float_ops <- st.Trace.float_ops + (cf * act);
                st.Trace.special_ops <- st.Trace.special_ops + (cs * act);
                for k = 0 to Array.length body - 1 do
                  body.(k) ls
                done
              end);
          ]
    in
    let tpred = Option.value d.Regions.d_then ~default:b.bid
    and epred = Option.value d.Regions.d_else ~default:b.bid in
    let merges = masked_phi_merges jb ~tpred ~epred in
    ( (predicate :: arm ~on:1 tb) @ arm ~on:0 eb @ merges,
      LTbr (bare_ledge jb) )
  in

  (* Compile every segment that can be batched; [Unbatchable] leaves its
     slot [None]. *)
  let n_segs = Array.length seg_descs in
  let lsegs : lseg option array = Array.make n_segs None in
  Array.iteri
    (fun si ((b : block), (instrs : instr list), (bar : instr option)) ->
      match
        let lbody =
          List.filter_map
            (fun (i : instr) ->
              match i.op with Phi _ -> None | _ -> Some (lane_instr i))
            instrs
        in
        let lbody =
          if
            si = 0
            && List.exists
                 (fun (i : instr) ->
                   match i.op with Phi _ -> true | _ -> false)
                 instrs
          then (fun _ -> trap "phi in entry block") :: lbody
          else lbody
        in
        let extra, lterm =
          match bar with
          | Some bi ->
              let lbar = Hashtbl.find bar_index bi.iid in
              ([], LTbarrier { lbar; lnext = bar_entry.(lbar) })
          | None -> (
              match b.term with
              | Some { op = Br target; _ } -> ([], LTbr (mk_ledge b target))
              | Some { op = Cond_br (c, t, e); _ } ->
                  if Divergence.value_divergent dv c then (
                    match Hashtbl.find_opt info.Regions.diamonds b.bid with
                    | Some d -> compile_diamond b c d
                    | None -> raise Unbatchable)
                  else ([], LTcond (lu_iget c, mk_ledge b t, mk_ledge b e))
              | Some { op = Ret; _ } -> ([], LTret)
              | _ -> ([], LTtrap "missing terminator"))
        in
        { lbody = Array.of_list (lbody @ extra); lterm }
      with
      | lseg -> lsegs.(si) <- Some lseg
      | exception Unbatchable -> ())
    seg_descs;

  (* A region entry is lane-sweepable iff {!Regions} said so and every
     segment reachable from it (stopping at barriers) actually compiled. *)
  let entry_seg e = if e = 0 then 0 else bar_entry.(e - 1) in
  let reachable_ok (start : int) : bool =
    let seen = Array.make (max 1 n_segs) false in
    let ok = ref true in
    let rec walk s =
      if !ok && not seen.(s) then begin
        seen.(s) <- true;
        match lsegs.(s) with
        | None -> ok := false
        | Some sg -> (
            match sg.lterm with
            | LTbr e -> walk e.le_dst
            | LTcond (_, t, e) ->
                walk t.le_dst;
                walk e.le_dst
            | LTret | LTbarrier _ | LTtrap _ -> ())
      end
    in
    walk start;
    !ok
  in
  let lentry =
    Array.init
      (Array.length info.Regions.lane_entries)
      (fun e ->
        Regions.lane_ok info.Regions.lane_entries.(e)
        && reachable_ok (entry_seg e))
  in

  (* Lane spill plans: same context columns as the scalar plan ([ctx_col]),
     slot bases pre-multiplied, split by uniformity. *)
  let n_bars = Array.length info.Regions.barriers in
  let uis = Array.make n_bars [||] and uic = Array.make n_bars [||] in
  let ufs = Array.make n_bars [||] and ufc = Array.make n_bars [||] in
  let ubs = Array.make n_bars [||] and ubc = Array.make n_bars [||] in
  let vis = Array.make n_bars [||] and vic = Array.make n_bars [||] in
  let vfs = Array.make n_bars [||] and vfc = Array.make n_bars [||] in
  let vbs = Array.make n_bars [||] and vbc = Array.make n_bars [||] in
  Array.iteri
    (fun j (bi : instr) ->
      let at = Hashtbl.find bar_index bi.iid in
      let ui = ref [] and uf = ref [] and ub = ref [] in
      let vi = ref [] and vf = ref [] and vb = ref [] in
      Array.iter
        (fun iid ->
          let u = not (Divergence.iid_divergent dv iid) in
          match Hashtbl.find_opt kinds iid with
          | Some (KInt s) ->
              let p = (s * lw, Hashtbl.find ctx_col iid) in
              if u then ui := p :: !ui else vi := p :: !vi
          | Some (KFloat s) ->
              let p = (s * lw, Hashtbl.find ctx_col iid) in
              if u then uf := p :: !uf else vf := p :: !vf
          | Some (KBox s) ->
              let p = (s * lw, Hashtbl.find ctx_col iid) in
              if u then ub := p :: !ub else vb := p :: !vb
          | None -> ())
        info.Regions.live_across.(j);
      let fill slots cols l =
        let a = Array.of_list (List.rev l) in
        slots.(at) <- Array.map fst a;
        cols.(at) <- Array.map snd a
      in
      fill uis uic !ui;
      fill ufs ufc !uf;
      fill ubs ubc !ub;
      fill vis vic !vi;
      fill vfs vfc !vf;
      fill vbs vbc !vb)
    info.Regions.barriers;
  {
    lwidth = lw;
    lsegs;
    lentry;
    lscr_ui = !scr_ui;
    lscr_uf = !scr_uf;
    lscr_ub = !scr_ub;
    lscr_vi = !scr_vi;
    lscr_vf = !scr_vf;
    lscr_vb = !scr_vb;
    lsp_ui_slot = uis;
    lsp_ui_ctx = uic;
    lsp_uf_slot = ufs;
    lsp_uf_ctx = ufc;
    lsp_ub_slot = ubs;
    lsp_ub_ctx = ubc;
    lsp_vi_slot = vis;
    lsp_vi_ctx = vic;
    lsp_vf_slot = vfs;
    lsp_vf_ctx = vfc;
    lsp_vb_slot = vbs;
    lsp_vb_ctx = vbc;
  }

let compile_fn ~(lane_width : int) (fn : func) (regions : Regions.verdict) :
    cfunc =
  let kinds : (int, kind) Hashtbl.t = Hashtbl.create 64 in
  let ni = ref 0 and nf = ref 0 and nb = ref 0 in
  iter_instrs
    (fun i ->
      match type_of_opcode i.op with
      | Void -> ()
      | I1 | I8 | I16 | I32 | I64 ->
          Hashtbl.replace kinds i.iid (KInt !ni);
          incr ni
      | F32 ->
          Hashtbl.replace kinds i.iid (KFloat !nf);
          incr nf
      | _ ->
          Hashtbl.replace kinds i.iid (KBox !nb);
          incr nb
      | exception Invalid_argument _ -> ())
    fn;
  let kind_of (i : instr) = Hashtbl.find_opt kinds i.iid in
  (* Segment layout: each block contributes an entry segment plus one
     continuation segment per barrier it contains, laid out contiguously.
     [bidx] maps a block id to its entry segment (branch edges can only
     target block entries); [bar_index]/[bar_entry] number barriers
     densely in block-then-body order, matching {!Regions.form}. *)
  let bidx : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let bar_index : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let n_segs = ref 0 and n_bars = ref 0 in
  let bar_entry_rev = ref [] in
  List.iter
    (fun b ->
      Hashtbl.replace bidx b.bid !n_segs;
      incr n_segs;
      List.iter
        (fun (i : instr) ->
          match i.op with
          | Barrier _ ->
              Hashtbl.replace bar_index i.iid !n_bars;
              incr n_bars;
              bar_entry_rev := !n_segs :: !bar_entry_rev;
              incr n_segs
          | _ -> ())
        b.instrs)
    fn.blocks;
  let bar_entry = Array.of_list (List.rev !bar_entry_rev) in

  (* Destination helpers: hand the slot to [mk], or trap at execution time
     if the instruction's static type disagrees with the expected kind. *)
  let with_int_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KInt s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (int) at instruction %d" i.iid
  in
  let with_float_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KFloat s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (float) at instruction %d" i.iid
  in
  let with_box_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KBox s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (aggregate) at instruction %d" i.iid
  in

  (* Typed operand getters, resolved at compile time. *)
  let iget (v : value) : wi_state -> int =
    match v with
    | Cint (t, n) ->
        let k = sext_of t n in
        fun _ -> k
    | Cfloat f -> fun _ -> trap "expected int, got float %g" f
    | Arg a ->
        let j = a.a_index in
        fun st -> as_int st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) -> fun st -> st.ienv.(s)
        | Some (KFloat s) -> fun st -> trap "expected int, got float %g" st.fenv.(s)
        | Some (KBox s) -> fun st -> as_int st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in
  let fget (v : value) : wi_state -> float =
    match v with
    | Cfloat f -> fun _ -> f
    | Cint (_, n) -> fun _ -> trap "expected float, got int %d" n
    | Arg a ->
        let j = a.a_index in
        fun st -> as_float st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KFloat s) -> fun st -> st.fenv.(s)
        | Some (KInt s) -> fun st -> trap "expected float, got int %d" st.ienv.(s)
        | Some (KBox s) -> fun st -> as_float st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in
  let bufget (v : value) : wi_state -> Memory.buffer =
    match v with
    | Arg a ->
        let j = a.a_index in
        fun st -> as_buf st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KBox s) -> fun st -> as_buf st.benv.(s)
        | _ -> fun _ -> trap "expected a pointer")
    | _ -> fun _ -> trap "expected a pointer"
  in
  let vget (v : value) : wi_state -> rv =
    match v with
    | Cint (t, n) ->
        let r = RInt (sext_of t n) in
        fun _ -> r
    | Cfloat f ->
        let r = RFloat f in
        fun _ -> r
    | Arg a ->
        let j = a.a_index in
        fun st -> st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) -> fun st -> RInt st.ienv.(s)
        | Some (KFloat s) -> fun st -> RFloat st.fenv.(s)
        | Some (KBox s) -> fun st -> st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in

  let is_int_ty = function I1 | I8 | I16 | I32 | I64 -> true | _ -> false in

  let compile_call (i : instr) callee (args : value list) : wi_state -> unit =
    let arg_tys = List.map type_of args in
    (* Work-item index queries: resolve the selector and, when the
       dimension is a constant (the common case after canon), the index. *)
    let wi_query (sel : wi_ctx -> int array) =
      match args with
      | [ Cint (_, d) ] when d >= 0 && d < 3 ->
          with_int_dst i (fun dst st ->
              st.ienv.(dst) <- (sel st.ctx).(d))
      | [ dv ] ->
          let g = iget dv in
          with_int_dst i (fun dst st ->
              let d = g st in
              if d < 0 || d >= 3 then trap "dimension out of range";
              st.ienv.(dst) <- (sel st.ctx).(d))
      | _ -> fun _ -> trap "%s expects a dimension" callee
    in
    let mismatch = fun _ -> trap "%s argument mismatch" callee in
    match callee with
    | "get_local_id" -> wi_query (fun c -> c.lid)
    | "get_global_id" -> wi_query (fun c -> c.gid)
    | "get_group_id" -> wi_query (fun c -> c.grp)
    | "get_local_size" -> wi_query (fun c -> c.lsz)
    | "get_global_size" -> wi_query (fun c -> c.gsz)
    | "get_num_groups" -> wi_query (fun c -> c.ngr)
    | "get_global_offset" ->
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- 0)
    | "get_work_dim" ->
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- 3)
    | "dot" -> (
        match (args, arg_tys) with
        | [ a; b ], [ Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b in
            with_float_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y ->
                    let s = ref 0.0 in
                    Array.iteri (fun l v -> s := !s +. (v *. y.(l))) x;
                    st.fenv.(dst) <- !s
                | _ -> trap "dot expects float vectors")
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- ga st *. gb st)
        | _ -> fun _ -> trap "dot expects float vectors")
    | "mad" | "fma" -> (
        match (args, arg_tys) with
        | [ a; b; c ], [ F32; F32; F32 ] ->
            let ga = fget a and gb = fget b and gc = fget c in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- (ga st *. gb st) +. gc st)
        | [ a; b; c ], [ Vec (F32, _); Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b and gc = vget c in
            with_box_dst i (fun dst st ->
                match (ga st, gb st, gc st) with
                | RVecF x, RVecF y, RVecF z ->
                    st.benv.(dst) <-
                      RVecF
                        (Array.init (Array.length x) (fun l ->
                             (x.(l) *. y.(l)) +. z.(l)))
                | _ -> trap "mad argument mismatch")
        | [ a; b; c ], [ ta; tb; tc ]
          when is_int_ty ta && is_int_ty tb && is_int_ty tc ->
            let ga = iget a and gb = iget b and gc = iget c in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (ga st * gb st) + gc st)
        | _ -> mismatch)
    | "clamp" -> (
        match (args, arg_tys) with
        | [ x; lo; hi ], [ F32; F32; F32 ] ->
            let gx = fget x and gl = fget lo and gh = fget hi in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- Float.min (Float.max (gx st) (gl st)) (gh st))
        | [ x; lo; hi ], [ tx; tl; th ]
          when is_int_ty tx && is_int_ty tl && is_int_ty th ->
            let gx = iget x and gl = iget lo and gh = iget hi in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- min (max (gx st) (gl st)) (gh st))
        | _ -> mismatch)
    | "mix" -> (
        match (args, arg_tys) with
        | [ a; b; t ], [ F32; F32; F32 ] ->
            let ga = fget a and gb = fget b and gt = fget t in
            with_float_dst i (fun dst st ->
                let a = ga st in
                st.fenv.(dst) <- a +. ((gb st -. a) *. gt st))
        | _ -> mismatch)
    | "min" | "max" -> (
        let pick_i : int -> int -> int = if callee = "min" then min else max in
        let pick_f : float -> float -> float =
          if callee = "min" then Float.min else Float.max
        in
        match (args, arg_tys) with
        | [ a; b ], [ ta; tb ] when is_int_ty ta && is_int_ty tb ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- pick_i (ga st) (gb st))
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- pick_f (ga st) (gb st))
        | _ -> mismatch)
    | "abs" -> (
        match (args, arg_tys) with
        | [ a ], [ ta ] when is_int_ty ta ->
            let ga = iget a in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- abs (ga st))
        | [ a ], [ F32 ] ->
            let ga = fget a in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- Float.abs (ga st))
        | _ -> mismatch)
    | "mul24" -> (
        match (args, arg_tys) with
        | [ a; b ], [ ta; tb ] when is_int_ty ta && is_int_ty tb ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- ga st * gb st)
        | _ -> mismatch)
    | "mad24" -> (
        match (args, arg_tys) with
        | [ a; b; c ], [ ta; tb; tc ]
          when is_int_ty ta && is_int_ty tb && is_int_ty tc ->
            let ga = iget a and gb = iget b and gc = iget c in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (ga st * gb st) + gc st)
        | _ -> mismatch)
    | "fmax" | "fmin" | "pow" | "fmod" | "hypot" | "native_divide" -> (
        let f =
          match math2_fn callee with Some f -> f | None -> assert false
        in
        match (args, arg_tys) with
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st) (gb st))
        | [ a; b ], [ Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y -> st.benv.(dst) <- RVecF (lanes_map2 f x y)
                | _ -> trap "%s argument mismatch" callee)
        | _ -> mismatch)
    | _ -> (
        (* Remaining builtins are unary float math. *)
        match (args, arg_tys, math1_fn callee) with
        | [ a ], [ F32 ], Some f ->
            let ga = fget a in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st))
        | [ a ], [ Vec (F32, _) ], Some f ->
            let ga = vget a in
            with_box_dst i (fun dst st ->
                match ga st with
                | RVecF x -> st.benv.(dst) <- RVecF (Array.map f x)
                | _ -> trap "unsupported call %s" callee)
        | _ -> fun _ -> trap "unsupported call %s" callee)
  in

  let compile_instr (i : instr) : wi_state -> unit =
    match i.op with
    | Binop (op, a, b) -> (
        match type_of a with
        | (I1 | I8 | I16 | I32 | I64) as t ->
            let ga = iget a and gb = iget b and f = int_binop_fn t op in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- f (ga st) (gb st))
        | F32 ->
            let ga = fget a and gb = fget b and f = float_binop_fn op in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st) (gb st))
        | Vec (F32, _) ->
            let ga = vget a and gb = vget b and f = float_binop_fn op in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y ->
                    st.benv.(dst) <- RVecF (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | Vec (_, _) ->
            let ga = vget a and gb = vget b and f = int_binop_fn I32 op in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecI x, RVecI y ->
                    st.benv.(dst) <- RVecI (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | _ -> fun _ -> trap "binop operand mismatch")
    | Icmp (c, a, b) ->
        let ga = iget a and gb = iget b and f = icmp_fn (type_of a) c in
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- (if f (ga st) (gb st) then 1 else 0))
    | Fcmp (c, a, b) ->
        let ga = fget a and gb = fget b and f = fcmp_fn c in
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- (if f (ga st) (gb st) then 1 else 0))
    | Select (c, a, b) -> (
        let gc = iget c in
        match type_of a with
        | I1 | I8 | I16 | I32 | I64 ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (if gc st <> 0 then ga st else gb st))
        | F32 ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- (if gc st <> 0 then ga st else gb st))
        | _ ->
            let ga = vget a and gb = vget b in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- (if gc st <> 0 then ga st else gb st)))
    | Cast (k, v, t) -> (
        let src_t = type_of v in
        match (k, src_t) with
        | (Sext | Bitcast), (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- sext_of src_t (g st))
        | Zext, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v and m = mask_of src_t in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- g st land m)
        | Trunc, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- sext_of t (g st))
        | Si_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- float_of_int (g st))
        | Ui_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v and m = mask_of src_t in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- float_of_int (g st land m))
        | Fp_to_si, F32 ->
            let g = fget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- int_of_float (g st))
        | Bitcast, F32 ->
            let g = fget v in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- g st)
        | Bitcast, _ ->
            let g = vget v in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- g st)
        | _ -> fun _ -> trap "unsupported cast")
    | Call { callee; args; _ } -> compile_call i callee args
    | Alloca { aspace = Local; _ } ->
        let iid = i.iid in
        with_box_dst i (fun dst st ->
            match Hashtbl.find_opt st.local_bufs iid with
            | Some b -> st.benv.(dst) <- RBuf b
            | None -> trap "local alloca without a group buffer")
    | Alloca { aspace = Private; elem; count; _ } ->
        with_box_dst i (fun dst st ->
            st.benv.(dst) <- RBuf (alloc_private st elem count))
    | Alloca _ -> fun _ -> trap "unsupported alloca space"
    | Load { ptr; index } -> (
        let gp = bufget ptr and gi = iget index in
        let loc = i.iloc in
        match elem_of_ptr (type_of ptr) with
        | F32 ->
            with_float_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.fenv.(dst) <- Memory.get_float b idx)
        | I1 | I8 | I16 | I32 | I64 ->
            with_int_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.ienv.(dst) <- Memory.get_int b idx)
        | Vec (F32, n) ->
            with_box_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.benv.(dst) <-
                  RVecF (Array.init n (fun l -> Memory.get_lane_float b idx l)))
        | Vec (_, n) ->
            with_box_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.benv.(dst) <-
                  RVecI (Array.init n (fun l -> Memory.get_lane_int b idx l)))
        | _ -> fun _ -> trap "load of unsupported element type"
        | exception Invalid_argument _ ->
            fun _ -> trap "load of unsupported element type")
    | Store { ptr; index; v } -> (
        let gp = bufget ptr and gi = iget index in
        let loc = i.iloc in
        match type_of v with
        | F32 ->
            let gv = fget v in
            fun st ->
              let b = gp st in
              let idx = gi st in
              record_access st b idx ~is_write:true;
              san_access st b idx ~is_write:true ~loc;
              Memory.set_float b idx (gv st)
        | I1 | I8 | I16 | I32 | I64 ->
            let gv = iget v in
            fun st ->
              let b = gp st in
              let idx = gi st in
              record_access st b idx ~is_write:true;
              san_access st b idx ~is_write:true ~loc;
              Memory.set_int b idx (gv st)
        | _ ->
            let gv = vget v in
            fun st -> store_elem st (gp st) (gi st) ~loc (gv st))
    | Extract (v, lane) -> (
        let gl = iget lane in
        match type_of v with
        | Vec (F32, _) ->
            let gv = vget v in
            with_float_dst i (fun dst st ->
                let l = gl st in
                match gv st with
                | RVecF a -> st.fenv.(dst) <- a.(l)
                | _ -> trap "extract from non-vector")
        | Vec (_, _) ->
            let gv = vget v in
            with_int_dst i (fun dst st ->
                let l = gl st in
                match gv st with
                | RVecI a -> st.ienv.(dst) <- a.(l)
                | _ -> trap "extract from non-vector")
        | _ -> fun _ -> trap "extract from non-vector")
    | Insert (v, lane, s) ->
        let gv = vget v and gl = iget lane and gs = vget s in
        with_box_dst i (fun dst st ->
            let l = gl st in
            match (gv st, gs st) with
            | RVecF a, RFloat x ->
                let a = Array.copy a in
                a.(l) <- x;
                st.benv.(dst) <- RVecF a
            | RVecI a, RInt x ->
                let a = Array.copy a in
                a.(l) <- x;
                st.benv.(dst) <- RVecI a
            | _ -> trap "insert mismatch")
    | Vecbuild (t, vs) -> (
        match t with
        | Vec (F32, _) ->
            let gs = Array.of_list (List.map fget vs) in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- RVecF (Array.map (fun g -> g st) gs))
        | Vec (_, _) ->
            let gs = Array.of_list (List.map iget vs) in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- RVecI (Array.map (fun g -> g st) gs))
        | _ -> fun _ -> trap "vecbuild of non-vector")
    | Phi _ -> fun _ -> trap "phi executed outside block entry"
    | Barrier _ ->
        (* Barriers end a segment; they never appear in a segment body. *)
        fun _ -> trap "barrier executed as a body instruction"
    | Br _ | Cond_br _ | Ret ->
        fun _ -> trap "terminator executed as body instruction"
  in

  (* Per-edge phi moves: evaluated against the predecessor's environment,
     committed together (staged through the scratch arrays at run time). *)
  let scr_i = ref 0 and scr_f = ref 0 and scr_b = ref 0 in
  let mk_edge (src : block) (dst : block) : edge =
    let im = ref [] and fm = ref [] and bm = ref [] in
    List.iter
      (fun (pi : instr) ->
        match pi.op with
        | Phi { incoming; _ } -> (
            match List.find_opt (fun (b, _) -> b.bid = src.bid) incoming with
            | None ->
                im :=
                  (0, fun _ -> trap "phi has no incoming for predecessor")
                  :: !im
            | Some (_, v) -> (
                match kind_of pi with
                | Some (KInt s) -> im := (s, iget v) :: !im
                | Some (KFloat s) -> fm := (s, fget v) :: !fm
                | Some (KBox s) -> bm := (s, vget v) :: !bm
                | None -> ()))
        | _ -> ())
      dst.instrs;
    let im = Array.of_list (List.rev !im)
    and fm = Array.of_list (List.rev !fm)
    and bm = Array.of_list (List.rev !bm) in
    scr_i := max !scr_i (Array.length im);
    scr_f := max !scr_f (Array.length fm);
    scr_b := max !scr_b (Array.length bm);
    {
      e_dst = Hashtbl.find bidx dst.bid;
      im_dst = Array.map fst im;
      im_src = Array.map snd im;
      fm_dst = Array.map fst fm;
      fm_src = Array.map snd fm;
      bm_dst = Array.map fst bm;
      bm_src = Array.map snd bm;
    }
  in

  (* One block compiles to 1 + (barriers in block) segments: the body is
     cut at each barrier, non-final chunks terminate in [Tbarrier], the
     final chunk carries the block's real terminator. *)
  let compile_block (k : int) (b : block) : cseg list =
    let final_term =
      match b.term with
      | Some { op = Br target; _ } -> Tbr (mk_edge b target)
      | Some { op = Cond_br (c, t, e); _ } ->
          Tcond (iget c, mk_edge b t, mk_edge b e)
      | Some { op = Ret; _ } -> Tret
      | _ -> Ttrap "missing terminator"
    in
    let rec cut acc cur = function
      | [] -> List.rev ((List.rev cur, None) :: acc)
      | (i : instr) :: tl when (match i.op with Barrier _ -> true | _ -> false)
        ->
          cut ((List.rev cur, Some i) :: acc) [] tl
      | i :: tl -> cut acc (i :: cur) tl
    in
    let mk_seg (j : int) ((instrs : instr list), (bar : instr option)) : cseg =
      let body =
        List.filter_map
          (fun (i : instr) ->
            match i.op with Phi _ -> None | _ -> Some (compile_instr i))
          instrs
      in
      let body =
        (* Phis are only written by incoming edges; a phi in the entry
           block has no incoming edge and is malformed IR. *)
        if
          j = 0 && k = 0
          && List.exists
               (fun i -> match i.op with Phi _ -> true | _ -> false)
               instrs
        then (fun _ -> trap "phi in entry block") :: body
        else body
      in
      let cterm =
        match bar with
        | Some bi ->
            let bar = Hashtbl.find bar_index bi.iid in
            Tbarrier { bar; next = bar_entry.(bar) }
        | None -> final_term
      in
      let c_int = ref 0 and c_float = ref 0 and c_special = ref 0 in
      List.iter
        (fun (i : instr) ->
          match i.op with
          | Phi _ -> ()
          | _ ->
              let ci, cf, cs = op_cost i in
              c_int := !c_int + ci;
              c_float := !c_float + cf;
              c_special := !c_special + cs)
        instrs;
      {
        body = Array.of_list body;
        cterm;
        b_int = !c_int;
        b_float = !c_float;
        b_special = !c_special;
      }
    in
    List.mapi mk_seg (cut [] [] b.instrs)
  in
  let csegs =
    Array.of_list (List.concat (List.mapi compile_block fn.blocks))
  in
  assert (Array.length csegs = !n_segs);
  (* The same cut, kept as data: per segment its owning block, body
     instructions and terminating barrier (if any) — the lane compiler
     re-walks it to build the parallel [lsegs] array. *)
  let seg_descs : (block * instr list * instr option) array =
    let cut_block (b : block) =
      let rec go acc cur = function
        | [] -> List.rev ((b, List.rev cur, None) :: acc)
        | (i : instr) :: tl
          when (match i.op with Barrier _ -> true | _ -> false) ->
            go ((b, List.rev cur, Some i) :: acc) [] tl
        | i :: tl -> go acc (i :: cur) tl
      in
      go [] [] b.instrs
    in
    Array.of_list (List.concat_map cut_block fn.blocks)
  in
  assert (Array.length seg_descs = !n_segs);
  (* Spill plan for the region executor: give every value that is live
     across {e some} barrier one context column of its kind, then
     precompile each barrier's (env slot, column) copy lists. *)
  let wg, lanes =
    match regions with
    | Regions.Fallback _ -> (None, None)
    | Regions.Formed info ->
        let enumeration_matches =
          Array.length info.barriers = !n_bars
          && Array.for_all
               (fun (bi : instr) ->
                 match Hashtbl.find_opt bar_index bi.iid with
                 | Some _ -> true
                 | None -> false)
               info.barriers
        in
        if not enumeration_matches then (None, None)
        else begin
          let ctx_col : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let ci = ref 0 and cf = ref 0 and cb = ref 0 in
          Array.iter
            (Array.iter (fun iid ->
                 if not (Hashtbl.mem ctx_col iid) then
                   match Hashtbl.find_opt kinds iid with
                   | Some (KInt _) ->
                       Hashtbl.replace ctx_col iid !ci;
                       incr ci
                   | Some (KFloat _) ->
                       Hashtbl.replace ctx_col iid !cf;
                       incr cf
                   | Some (KBox _) ->
                       Hashtbl.replace ctx_col iid !cb;
                       incr cb
                   | None -> ()))
            info.live_across;
          let n = !n_bars in
          let sp_i_env = Array.make n [||] and sp_i_ctx = Array.make n [||] in
          let sp_f_env = Array.make n [||] and sp_f_ctx = Array.make n [||] in
          let sp_b_env = Array.make n [||] and sp_b_ctx = Array.make n [||] in
          Array.iteri
            (fun j (bi : instr) ->
              let at = Hashtbl.find bar_index bi.iid in
              let ie = ref [] and fe = ref [] and be = ref [] in
              Array.iter
                (fun iid ->
                  match Hashtbl.find_opt kinds iid with
                  | Some (KInt s) ->
                      ie := (s, Hashtbl.find ctx_col iid) :: !ie
                  | Some (KFloat s) ->
                      fe := (s, Hashtbl.find ctx_col iid) :: !fe
                  | Some (KBox s) ->
                      be := (s, Hashtbl.find ctx_col iid) :: !be
                  | None -> ())
                info.live_across.(j);
              let fill env ctx l =
                let a = Array.of_list (List.rev l) in
                env.(at) <- Array.map fst a;
                ctx.(at) <- Array.map snd a
              in
              fill sp_i_env sp_i_ctx !ie;
              fill sp_f_env sp_f_ctx !fe;
              fill sp_b_env sp_b_ctx !be)
            info.barriers;
          let w =
            {
              bar_entry;
              sp_i_env;
              sp_i_ctx;
              sp_f_env;
              sp_f_ctx;
              sp_b_env;
              sp_b_ctx;
              ctx_i = !ci;
              ctx_f = !cf;
              ctx_b = !cb;
            }
          in
          let lanes =
            if Array.exists Regions.lane_ok info.lane_entries then
              Some
                (compile_lanes ~lw:lane_width ~kinds ~bidx ~bar_index
                   ~bar_entry ~seg_descs ~info ~ctx_col)
            else None
          in
          (Some w, lanes)
        end
  in
  {
    csegs;
    n_int = !ni;
    n_float = !nf;
    n_box = !nb;
    scr_int = !scr_i;
    scr_float = !scr_f;
    scr_box = !scr_b;
    wg;
    lanes;
  }

(* -- The compiled-engine hot loop ------------------------------------------- *)

let take_edge (st : wi_state) (e : edge) : int =
  let ni = Array.length e.im_dst in
  if ni > 0 then begin
    for k = 0 to ni - 1 do
      st.iscr.(k) <- e.im_src.(k) st
    done;
    for k = 0 to ni - 1 do
      st.ienv.(e.im_dst.(k)) <- st.iscr.(k)
    done
  end;
  let nf = Array.length e.fm_dst in
  if nf > 0 then begin
    for k = 0 to nf - 1 do
      st.fscr.(k) <- e.fm_src.(k) st
    done;
    for k = 0 to nf - 1 do
      st.fenv.(e.fm_dst.(k)) <- st.fscr.(k)
    done
  end;
  let nb = Array.length e.bm_dst in
  if nb > 0 then begin
    for k = 0 to nb - 1 do
      st.bscr.(k) <- e.bm_src.(k) st
    done;
    for k = 0 to nb - 1 do
      st.benv.(e.bm_dst.(k)) <- st.bscr.(k)
    done
  end;
  e.e_dst

let run_compiled (st : wi_state) (cf : cfunc) : unit =
  let segs = cf.csegs in
  let cur = ref 0 in
  let stats = st.stats in
  while !cur >= 0 do
    let b = segs.(!cur) in
    stats.Trace.int_ops <- stats.Trace.int_ops + b.b_int;
    stats.Trace.float_ops <- stats.Trace.float_ops + b.b_float;
    stats.Trace.special_ops <- stats.Trace.special_ops + b.b_special;
    let body = b.body in
    for k = 0 to Array.length body - 1 do
      body.(k) st
    done;
    cur :=
      (match b.cterm with
      | Tbr e -> take_edge st e
      | Tcond (g, t, e) ->
          st.stats.Trace.branches <- st.stats.Trace.branches + 1;
          if g st <> 0 then take_edge st t else take_edge st e
      | Tret -> -1
      | Tbarrier { bar = _; next } ->
          stats.Trace.barriers <- stats.Trace.barriers + 1;
          Effect.perform Barrier_hit;
          next
      | Ttrap m -> trap "%s" m)
  done

(* -- The region executor ------------------------------------------------------

   The runtime's wg-loop scheduler drives one work-item at a time through
   the current parallel region: [run_region] runs from segment [from]
   until the work-item either returns (result -1) or reaches a barrier
   (result = the barrier's dense index; the sweep continues the whole
   group at [cwg.bar_entry.(bar)] once every work-item arrived there).
   Values live across the boundary are copied between the shared slot
   environment and the work-item's row of the group's context matrices by
   [spill_save]/[spill_restore]. *)

let run_region (st : wi_state) (cf : cfunc) ~(from : int) : int =
  let segs = cf.csegs in
  let cur = ref from in
  let exitc = ref (-1) in
  let running = ref true in
  let stats = st.stats in
  while !running do
    let b = segs.(!cur) in
    stats.Trace.int_ops <- stats.Trace.int_ops + b.b_int;
    stats.Trace.float_ops <- stats.Trace.float_ops + b.b_float;
    stats.Trace.special_ops <- stats.Trace.special_ops + b.b_special;
    let body = b.body in
    for k = 0 to Array.length body - 1 do
      body.(k) st
    done;
    match b.cterm with
    | Tbr e -> cur := take_edge st e
    | Tcond (g, t, e) ->
        stats.Trace.branches <- stats.Trace.branches + 1;
        cur := (if g st <> 0 then take_edge st t else take_edge st e)
    | Tret -> running := false
    | Tbarrier { bar; next = _ } ->
        stats.Trace.barriers <- stats.Trace.barriers + 1;
        exitc := bar;
        running := false
    | Ttrap m -> trap "%s" m
  done;
  !exitc

let spill_save (st : wi_state) (w : cwg) ~(bar : int) ~(ictx : int array)
    ~(fctx : float array) ~(bctx : rv array) ~(flat : int) : unit =
  let env = w.sp_i_env.(bar) and col = w.sp_i_ctx.(bar) in
  let base = flat * w.ctx_i in
  for k = 0 to Array.length env - 1 do
    ictx.(base + col.(k)) <- st.ienv.(env.(k))
  done;
  let env = w.sp_f_env.(bar) and col = w.sp_f_ctx.(bar) in
  let base = flat * w.ctx_f in
  for k = 0 to Array.length env - 1 do
    fctx.(base + col.(k)) <- st.fenv.(env.(k))
  done;
  let env = w.sp_b_env.(bar) and col = w.sp_b_ctx.(bar) in
  let base = flat * w.ctx_b in
  for k = 0 to Array.length env - 1 do
    bctx.(base + col.(k)) <- st.benv.(env.(k))
  done

let spill_restore (st : wi_state) (w : cwg) ~(bar : int) ~(ictx : int array)
    ~(fctx : float array) ~(bctx : rv array) ~(flat : int) : unit =
  let env = w.sp_i_env.(bar) and col = w.sp_i_ctx.(bar) in
  let base = flat * w.ctx_i in
  for k = 0 to Array.length env - 1 do
    st.ienv.(env.(k)) <- ictx.(base + col.(k))
  done;
  let env = w.sp_f_env.(bar) and col = w.sp_f_ctx.(bar) in
  let base = flat * w.ctx_f in
  for k = 0 to Array.length env - 1 do
    st.fenv.(env.(k)) <- fctx.(base + col.(k))
  done;
  let env = w.sp_b_env.(bar) and col = w.sp_b_ctx.(bar) in
  let base = flat * w.ctx_b in
  for k = 0 to Array.length env - 1 do
    st.benv.(env.(k)) <- bctx.(base + col.(k))
  done

(* -- The lane-batched region executor (wg-vec) -------------------------------

   [run_lane_region] drives a whole batch of [nl] consecutive work-items
   through the current parallel region in one pass over the compiled lane
   segments; the group sweep advances [group-size / lane-width] times per
   region instead of [group-size] times. Costs are read from the parallel
   scalar segment and bumped once per batch, multiplied by the active lane
   count, so trace totals are bit-identical to the scalar paths. *)

let take_ledge (ls : lane_state) (e : ledge) : int =
  let lw = ls.lw and nl = ls.nl in
  (* Stage every move against the predecessor's columns... *)
  let nui = Array.length e.lu_im_dst in
  for k = 0 to nui - 1 do
    ls.luiscr.(k) <- e.lu_im_src.(k) ls
  done;
  let nuf = Array.length e.lu_fm_dst in
  for k = 0 to nuf - 1 do
    ls.lufscr.(k) <- e.lu_fm_src.(k) ls
  done;
  let nub = Array.length e.lu_bm_dst in
  for k = 0 to nub - 1 do
    ls.lubscr.(k) <- e.lu_bm_src.(k) ls
  done;
  let nvi = Array.length e.lv_im_dst in
  for k = 0 to nvi - 1 do
    let g = e.lv_im_src.(k) in
    let base = k * lw in
    for l = 0 to nl - 1 do
      ls.lviscr.(base + l) <- g ls l
    done
  done;
  let nvf = Array.length e.lv_fm_dst in
  for k = 0 to nvf - 1 do
    let g = e.lv_fm_src.(k) in
    let base = k * lw in
    for l = 0 to nl - 1 do
      ls.lvfscr.(base + l) <- g ls l
    done
  done;
  let nvb = Array.length e.lv_bm_dst in
  for k = 0 to nvb - 1 do
    let g = e.lv_bm_src.(k) in
    let base = k * lw in
    for l = 0 to nl - 1 do
      ls.lvbscr.(base + l) <- g ls l
    done
  done;
  (* ...then commit. *)
  for k = 0 to nui - 1 do
    ls.lienv.(e.lu_im_dst.(k)) <- ls.luiscr.(k)
  done;
  for k = 0 to nuf - 1 do
    ls.lfenv.(e.lu_fm_dst.(k)) <- ls.lufscr.(k)
  done;
  for k = 0 to nub - 1 do
    ls.lbenv.(e.lu_bm_dst.(k)) <- ls.lubscr.(k)
  done;
  for k = 0 to nvi - 1 do
    let d = e.lv_im_dst.(k) and base = k * lw in
    for l = 0 to nl - 1 do
      ls.lienv.(d + l) <- ls.lviscr.(base + l)
    done
  done;
  for k = 0 to nvf - 1 do
    let d = e.lv_fm_dst.(k) and base = k * lw in
    for l = 0 to nl - 1 do
      ls.lfenv.(d + l) <- ls.lvfscr.(base + l)
    done
  done;
  for k = 0 to nvb - 1 do
    let d = e.lv_bm_dst.(k) and base = k * lw in
    for l = 0 to nl - 1 do
      ls.lbenv.(d + l) <- ls.lvbscr.(base + l)
    done
  done;
  e.le_dst

let run_lane_region (ls : lane_state) (cf : cfunc) (ln : clanes)
    ~(from : int) : int =
  let segs = ln.lsegs and costs = cf.csegs in
  let cur = ref from in
  let exitc = ref (-1) in
  let running = ref true in
  let stats = ls.lstats in
  let nl = ls.nl in
  while !running do
    let si = !cur in
    let cb = costs.(si) in
    stats.Trace.int_ops <- stats.Trace.int_ops + (cb.b_int * nl);
    stats.Trace.float_ops <- stats.Trace.float_ops + (cb.b_float * nl);
    stats.Trace.special_ops <- stats.Trace.special_ops + (cb.b_special * nl);
    match segs.(si) with
    | None -> trap "lane executor entered an unvectorized segment"
    | Some sg -> (
        let body = sg.lbody in
        for k = 0 to Array.length body - 1 do
          body.(k) ls
        done;
        match sg.lterm with
        | LTbr e -> cur := take_ledge ls e
        | LTcond (g, t, e) ->
            stats.Trace.branches <- stats.Trace.branches + nl;
            cur := (if g ls <> 0 then take_ledge ls t else take_ledge ls e)
        | LTret -> running := false
        | LTbarrier { lbar; lnext = _ } ->
            stats.Trace.barriers <- stats.Trace.barriers + nl;
            exitc := lbar;
            running := false
        | LTtrap m -> trap "%s" m)
  done;
  !exitc

(* Lane spill save/restore against the same per-work-item context matrices
   as the scalar region executor ([cwg] columns): uniform values replicate
   their base column into every active row on save and read the batch's
   base row on restore (a group-uniform value is identical in every row by
   construction, whichever path wrote it); varying values copy one lane
   column per row. *)

let lane_spill_save (ls : lane_state) (w : cwg) (ln : clanes) ~(bar : int)
    ~(ictx : int array) ~(fctx : float array) ~(bctx : rv array) : unit =
  let bf = ls.base_flat and nl = ls.nl in
  let slots = ln.lsp_ui_slot.(bar) and cols = ln.lsp_ui_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let v = ls.lienv.(slots.(k)) and c = cols.(k) in
    for l = 0 to nl - 1 do
      ictx.(((bf + l) * w.ctx_i) + c) <- v
    done
  done;
  let slots = ln.lsp_uf_slot.(bar) and cols = ln.lsp_uf_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let v = ls.lfenv.(slots.(k)) and c = cols.(k) in
    for l = 0 to nl - 1 do
      fctx.(((bf + l) * w.ctx_f) + c) <- v
    done
  done;
  let slots = ln.lsp_ub_slot.(bar) and cols = ln.lsp_ub_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let v = ls.lbenv.(slots.(k)) and c = cols.(k) in
    for l = 0 to nl - 1 do
      bctx.(((bf + l) * w.ctx_b) + c) <- v
    done
  done;
  let slots = ln.lsp_vi_slot.(bar) and cols = ln.lsp_vi_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      ictx.(((bf + l) * w.ctx_i) + c) <- ls.lienv.(s + l)
    done
  done;
  let slots = ln.lsp_vf_slot.(bar) and cols = ln.lsp_vf_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      fctx.(((bf + l) * w.ctx_f) + c) <- ls.lfenv.(s + l)
    done
  done;
  let slots = ln.lsp_vb_slot.(bar) and cols = ln.lsp_vb_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      bctx.(((bf + l) * w.ctx_b) + c) <- ls.lbenv.(s + l)
    done
  done

let lane_spill_restore (ls : lane_state) (w : cwg) (ln : clanes) ~(bar : int)
    ~(ictx : int array) ~(fctx : float array) ~(bctx : rv array) : unit =
  let bf = ls.base_flat and nl = ls.nl in
  let slots = ln.lsp_ui_slot.(bar) and cols = ln.lsp_ui_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    ls.lienv.(slots.(k)) <- ictx.((bf * w.ctx_i) + cols.(k))
  done;
  let slots = ln.lsp_uf_slot.(bar) and cols = ln.lsp_uf_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    ls.lfenv.(slots.(k)) <- fctx.((bf * w.ctx_f) + cols.(k))
  done;
  let slots = ln.lsp_ub_slot.(bar) and cols = ln.lsp_ub_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    ls.lbenv.(slots.(k)) <- bctx.((bf * w.ctx_b) + cols.(k))
  done;
  let slots = ln.lsp_vi_slot.(bar) and cols = ln.lsp_vi_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      ls.lienv.(s + l) <- ictx.(((bf + l) * w.ctx_i) + c)
    done
  done;
  let slots = ln.lsp_vf_slot.(bar) and cols = ln.lsp_vf_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      ls.lfenv.(s + l) <- fctx.(((bf + l) * w.ctx_f) + c)
    done
  done;
  let slots = ln.lsp_vb_slot.(bar) and cols = ln.lsp_vb_ctx.(bar) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) and c = cols.(k) in
    for l = 0 to nl - 1 do
      ls.lbenv.(s + l) <- bctx.(((bf + l) * w.ctx_b) + c)
    done
  done

(** Re-aim the lane state at the batch of [nl] work-items starting at flat
    id [base] of the group currently held in [lctx.grp]. *)
let reset_lane_batch (ls : lane_state) ~(base : int) ~(nl : int) : unit =
  ls.base_flat <- base;
  ls.nl <- nl;
  let lsz = ls.lctx.lsz and grp = ls.lctx.grp in
  for l = 0 to nl - 1 do
    let flat = base + l in
    let lx = flat mod lsz.(0)
    and ly = flat / lsz.(0) mod lsz.(1)
    and lz = flat / (lsz.(0) * lsz.(1)) in
    ls.llid.(0).(l) <- lx;
    ls.llid.(1).(l) <- ly;
    ls.llid.(2).(l) <- lz;
    ls.lgid.(0).(l) <- (grp.(0) * lsz.(0)) + lx;
    ls.lgid.(1).(l) <- (grp.(1) * lsz.(1)) + ly;
    ls.lgid.(2).(l) <- (grp.(2) * lsz.(2)) + lz
  done

(* -- Public interface -------------------------------------------------------- *)

(* Default lane width: 8, dropping to 4 for kernels with many live slots
   (a wide batch of a slot-heavy kernel blows the L1-resident working set
   of the lane environments). [GROVER_LANE_WIDTH] overrides, clamped to
   1..16. *)
(** The [GROVER_LANE_WIDTH] override, clamped to 1..16; [None] when unset,
    empty, or unparseable (which warns — see {!warn_env}). *)
let lane_width_env () : int option =
  match Sys.getenv_opt "GROVER_LANE_WIDTH" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> Some (min w 16)
      | _ ->
          warn_env "GROVER_LANE_WIDTH"
            "bad GROVER_LANE_WIDTH %S (expected an integer >= 1); using the \
             kernel-size default"
            s;
          None)

let lane_width_for (fn : func) : int =
  let default () =
    let n =
      fold_instrs
        (fun acc i ->
          match type_of_opcode i.op with
          | Void -> acc
          | _ -> acc + 1
          | exception Invalid_argument _ -> acc)
        0 fn
    in
    if n > 96 then 4 else 8
  in
  match lane_width_env () with Some w -> w | None -> default ()

let prepare ?engine ?lane_width (fn : func) : compiled =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  let lane_width =
    match lane_width with
    | Some w -> max 1 (min w 16)
    | None -> lane_width_for fn
  in
  let slots = Hashtbl.create 64 in
  let n = ref 0 in
  iter_instrs
    (fun i ->
      Hashtbl.replace slots i.iid !n;
      incr n)
    fn;
  let local_allocas =
    fold_instrs
      (fun acc i ->
        match i.op with
        | Alloca { aspace = Local; _ } -> i :: acc
        | _ -> acc)
      [] fn
    |> List.rev
  in
  let has_barrier =
    fold_instrs
      (fun acc i -> acc || match i.op with Barrier _ -> true | _ -> false)
      false fn
  in
  let regions = Regions.form fn in
  let code =
    match engine with
    | Compiled -> Some (compile_fn ~lane_width fn regions)
    | Tree -> None
  in
  { fn; slots; n_slots = !n; local_allocas; has_barrier; regions; code }

let engine_of (c : compiled) : engine =
  match c.code with Some _ -> Compiled | None -> Tree

(** Lane width the kernel was compiled for; 1 when no lane-batched code
    exists (tree engine, fiber fallback, or no lane-capable region). *)
let lane_width_of (c : compiled) : int =
  match c.code with Some { lanes = Some ln; _ } -> ln.lwidth | _ -> 1

(** Per-region-entry lane capability as the lane compiler refined it: the
    static {!Regions.lane_entries} verdict, narrowed by whatever the
    compiler itself had to reject ([Unbatchable] segments). [None] when no
    lane code exists at all (tree engine, or no statically lane-capable
    region). *)
let lane_entry_flags (c : compiled) : bool array option =
  match c.code with
  | Some { lanes = Some ln; _ } -> Some (Array.copy ln.lentry)
  | _ -> None

let make_state (c : compiled) ~(args : rv array) ~(ctx : wi_ctx)
    ~(stats : Trace.wg_stats) ~(local_bufs : (int, Memory.buffer) Hashtbl.t)
    ~(mem : Memory.t) ~(queue : int) : wi_state =
  match c.code with
  | Some cf ->
      {
        c;
        env = [||];
        ienv = Array.make cf.n_int 0;
        fenv = Array.make cf.n_float 0.0;
        benv = Array.make cf.n_box (RInt 0);
        iscr = Array.make cf.scr_int 0;
        fscr = Array.make cf.scr_float 0.0;
        bscr = Array.make cf.scr_box (RInt 0);
        args;
        ctx;
        stats;
        local_bufs;
        mem;
        queue;
        private_offset = 0;
        san = None;
      }
  | None ->
      {
        c;
        env = Array.make c.n_slots (RInt 0);
        ienv = [||];
        fenv = [||];
        benv = [||];
        iscr = [||];
        fscr = [||];
        bscr = [||];
        args;
        ctx;
        stats;
        local_bufs;
        mem;
        queue;
        private_offset = 0;
        san = None;
      }

(** Fresh lane-batched execution state, [None] unless the kernel was
    closure-compiled with at least one lane-capable region. Shares the
    group context, argument row and stats sink with the scalar states so
    mixed lane/scalar execution of one launch observes the same group. *)
let make_lane_state (c : compiled) ~(ctx : wi_ctx) ~(args : rv array)
    ~(stats : Trace.wg_stats) ~(local_bufs : (int, Memory.buffer) Hashtbl.t) :
    lane_state option =
  match c.code with
  | Some ({ lanes = Some ln; _ } as cf) ->
      let lw = ln.lwidth in
      Some
        {
          lw;
          nl = 0;
          base_flat = 0;
          lienv = Array.make (max 1 (cf.n_int * lw)) 0;
          lfenv = Array.make (max 1 (cf.n_float * lw)) 0.0;
          lbenv = Array.make (max 1 (cf.n_box * lw)) (RInt 0);
          luiscr = Array.make (max 1 ln.lscr_ui) 0;
          lufscr = Array.make (max 1 ln.lscr_uf) 0.0;
          lubscr = Array.make (max 1 ln.lscr_ub) (RInt 0);
          lviscr = Array.make (max 1 (ln.lscr_vi * lw)) 0;
          lvfscr = Array.make (max 1 (ln.lscr_vf * lw)) 0.0;
          lvbscr = Array.make (max 1 (ln.lscr_vb * lw)) (RInt 0);
          lpred = Array.make lw 0;
          lnthen = 0;
          llid = Array.init 3 (fun _ -> Array.make lw 0);
          lgid = Array.init 3 (fun _ -> Array.make lw 0);
          lctx = ctx;
          largs = args;
          lstats = stats;
          llocal = local_bufs;
          lsan = None;
        }
  | _ -> None

(** Re-aim a pooled state at work-item [flat] of the group currently held
    in [st.ctx.grp]: recompute [lid]/[gid] in place and rewind the private
    bump allocator. Slot arrays are deliberately {e not} cleared — SSA
    dominance guarantees every use is preceded by a def on any execution
    path, so a stale slot from the previous work-item is unobservable. *)
let reset_item (st : wi_state) ~(flat : int) : unit =
  let ctx = st.ctx in
  let lsz = ctx.lsz and grp = ctx.grp in
  let lx = flat mod lsz.(0)
  and ly = flat / lsz.(0) mod lsz.(1)
  and lz = flat / (lsz.(0) * lsz.(1)) in
  ctx.lid.(0) <- lx;
  ctx.lid.(1) <- ly;
  ctx.lid.(2) <- lz;
  ctx.gid.(0) <- (grp.(0) * lsz.(0)) + lx;
  ctx.gid.(1) <- (grp.(1) * lsz.(1)) + ly;
  ctx.gid.(2) <- (grp.(2) * lsz.(2)) + lz;
  ctx.flat_lid <- flat;
  st.private_offset <- 0

(** [advance_item st] = [reset_item st ~flat:(st.ctx.flat_lid + 1)], but
    by carry-propagating increments instead of the div/mod chain — the
    sweep loops of the fiberless and wg-loop schedulers visit work-items
    in flat order, so the full recomputation is only needed at [flat = 0]. *)
let advance_item (st : wi_state) : unit =
  let ctx = st.ctx in
  let lid = ctx.lid and gid = ctx.gid and lsz = ctx.lsz in
  ctx.flat_lid <- ctx.flat_lid + 1;
  st.private_offset <- 0;
  let x = lid.(0) + 1 in
  if x < lsz.(0) then begin
    lid.(0) <- x;
    gid.(0) <- gid.(0) + 1
  end
  else begin
    lid.(0) <- 0;
    gid.(0) <- gid.(0) - lsz.(0) + 1;
    let y = lid.(1) + 1 in
    if y < lsz.(1) then begin
      lid.(1) <- y;
      gid.(1) <- gid.(1) + 1
    end
    else begin
      lid.(1) <- 0;
      gid.(1) <- gid.(1) - lsz.(1) + 1;
      lid.(2) <- lid.(2) + 1;
      gid.(2) <- gid.(2) + 1
    end
  end

let run_workitem (st : wi_state) : unit =
  match st.c.code with Some cf -> run_compiled st cf | None -> run_tree st
