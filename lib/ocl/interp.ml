(** The work-item interpreter.

    Executes one kernel instance per work-item over the SSA IR, in one of
    two engines:

    - {b Compiled} (the default): {!prepare} translates every basic block,
      once per kernel, into an array of OCaml closures. Operand slots,
      argument indices, branch targets, builtin dispatch and phi moves are
      all resolved at compile time — the hot loop does no [Hashtbl]
      lookups and no [op] pattern matching, and scalar [int]/[float]
      results live unboxed in typed slot arrays.
    - {b Tree}: the original tree-walking reference engine, kept as the
      oracle for the differential test suite (and selectable with
      [GROVER_ENGINE=tree]).

    [barrier()] semantics come in two flavours:

    - {b fibers} (the fallback, and the only option for the tree engine):
      each work-item runs as an OCaml 5 fiber; hitting a barrier performs
      [Barrier_hit], the group scheduler parks the continuation, and
      resumes every work-item of the group once all of them have arrived;
    - {b work-group loops} (compiled engine, when {!Grover_ir.Regions}
      verifies every barrier is group-uniform): the kernel is compiled
      into barrier-split {e segments}; the runtime sweeps a plain
      [for]-loop over the group's work-items once per barrier-delimited
      region, spilling the SSA values that cross a region boundary into
      per-work-item context arrays. No effect handlers, no fiber stacks.

    Memory accesses stream into the group's {!Trace.wg_stats} for the
    performance simulator either way, in the same order. *)

open Grover_ir
open Ssa

type rv =
  | RInt of int
  | RFloat of float
  | RVecF of float array
  | RVecI of int array
  | RBuf of Memory.buffer

exception Kernel_trap of string

let trap fmt = Printf.ksprintf (fun m -> raise (Kernel_trap m)) fmt

type engine = Compiled | Tree

let default_engine =
  match Sys.getenv_opt "GROVER_ENGINE" with
  | Some ("tree" | "Tree" | "TREE") -> Tree
  | _ -> Compiled

(* -- Work-item context ------------------------------------------------------- *)

type wi_ctx = {
  lid : int array;  (** 3 entries; rewritten in place between work-items *)
  gid : int array;
  grp : int array;  (** shared with the group runner, rewritten per group *)
  lsz : int array;
  gsz : int array;
  ngr : int array;
  mutable flat_lid : int;  (** linear id within the group, for traces *)
}

type _ Effect.t += Barrier_hit : unit Effect.t

(* -- Scalar helpers ----------------------------------------------------------- *)

let as_int = function
  | RInt n -> n
  | RFloat f -> trap "expected int, got float %g" f
  | _ -> trap "expected int, got aggregate"

let as_float = function
  | RFloat f -> f
  | RInt n -> trap "expected float, got int %d" n
  | _ -> trap "expected float, got aggregate"

let as_buf = function RBuf b -> b | _ -> trap "expected a pointer"

let mask_of = function
  | I1 -> 1
  | I8 -> 0xff
  | I16 -> 0xffff
  | I32 -> 0xffffffff
  | _ -> -1

let sext_of t n =
  match t with
  | I1 -> n land 1 (* i1 is canonically 0/1, matching icmp results *)
  | I8 ->
      let n = n land 0xff in
      if n >= 0x80 then n - 0x100 else n
  | I16 ->
      let n = n land 0xffff in
      if n >= 0x8000 then n - 0x10000 else n
  | I32 ->
      let n = n land 0xffffffff in
      if n >= 0x80000000 then n - 0x100000000 else n
  | _ -> n

(* Binop/cmp implementations resolved once per instruction at compile time. *)

let int_binop_fn t op : int -> int -> int =
  let m = mask_of t in
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Sdiv -> fun a b -> if b = 0 then trap "division by zero" else a / b
  | Udiv ->
      fun a b -> if b = 0 then trap "division by zero" else (a land m) / (b land m)
  | Srem -> fun a b -> if b = 0 then trap "remainder by zero" else a mod b
  | Urem ->
      fun a b ->
        if b = 0 then trap "remainder by zero" else (a land m) mod (b land m)
  | Shl -> fun a b -> a lsl (b land 63)
  | Ashr -> fun a b -> a asr (b land 63)
  | Lshr -> fun a b -> (a land m) lsr (b land 63)
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | _ -> fun _ _ -> trap "float binop on ints"

let float_binop_fn op : float -> float -> float =
  match op with
  | Fadd -> ( +. )
  | Fsub -> ( -. )
  | Fmul -> ( *. )
  | Fdiv -> ( /. )
  | Frem -> Float.rem
  | _ -> fun _ _ -> trap "int binop on floats"

let int_binop t op a b = int_binop_fn t op a b
let float_binop op a b = float_binop_fn op a b

let icmp_fn t c : int -> int -> bool =
  let m = mask_of t in
  match c with
  | Ieq -> ( = )
  | Ine -> ( <> )
  | Islt -> ( < )
  | Isle -> ( <= )
  | Isgt -> ( > )
  | Isge -> ( >= )
  | Iult -> fun a b -> a land m < b land m
  | Iule -> fun a b -> a land m <= b land m
  | Iugt -> fun a b -> a land m > b land m
  | Iuge -> fun a b -> a land m >= b land m

let fcmp_fn c : float -> float -> bool =
  match c with
  | Foeq -> ( = )
  | Fone -> ( <> )
  | Folt -> ( < )
  | Fole -> ( <= )
  | Fogt -> ( > )
  | Foge -> ( >= )

let icmp_op t c a b = icmp_fn t c a b
let fcmp_op c a b = fcmp_fn c a b

let lanes_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

(* -- Builtin math ---------------------------------------------------------- *)

let special_fns =
  [ "sqrt"; "native_sqrt"; "rsqrt"; "native_rsqrt"; "exp"; "native_exp";
    "log"; "native_log"; "sin"; "native_sin"; "cos"; "native_cos"; "pow";
    "hypot"; "native_divide" ]

let math1_fn name : (float -> float) option =
  match name with
  | "sqrt" | "native_sqrt" -> Some Float.sqrt
  | "rsqrt" | "native_rsqrt" -> Some (fun x -> 1.0 /. Float.sqrt x)
  | "fabs" -> Some Float.abs
  | "exp" | "native_exp" -> Some Float.exp
  | "log" | "native_log" -> Some Float.log
  | "sin" | "native_sin" -> Some Float.sin
  | "cos" | "native_cos" -> Some Float.cos
  | "floor" -> Some Float.floor
  | "ceil" -> Some Float.ceil
  | _ -> None

let math1 name x =
  match math1_fn name with
  | Some f -> f x
  | None -> trap "unknown unary math builtin %s" name

let math2_fn name : (float -> float -> float) option =
  match name with
  | "fmax" -> Some Float.max
  | "fmin" -> Some Float.min
  | "pow" -> Some Float.pow
  | "fmod" -> Some Float.rem
  | "hypot" -> Some Float.hypot
  | "native_divide" -> Some ( /. )
  | _ -> None

let math2 name a b =
  match math2_fn name with
  | Some f -> f a b
  | None -> trap "unknown binary math builtin %s" name

(* -- State and compiled form -------------------------------------------------

   The compiled form assigns each value-producing instruction a slot in a
   typed environment: scalar integers in [ienv], scalar floats in [fenv]
   (both unboxed), everything else (vectors, pointers) in [benv]. Phi moves
   ride on CFG edges with evaluate-all-then-commit semantics, staged
   through the per-work-item scratch arrays. *)

type wi_state = {
  c : compiled;
  (* Tree engine: one boxed slot per instruction. *)
  env : rv array;
  (* Compiled engine: typed slot arrays + phi-move scratch. *)
  ienv : int array;
  fenv : float array;
  benv : rv array;
  iscr : int array;
  fscr : float array;
  bscr : rv array;
  args : rv array;
  ctx : wi_ctx;
  stats : Trace.wg_stats;
  mutable local_bufs : (int, Memory.buffer) Hashtbl.t;
      (** alloca iid -> group buffer; swapped by the runtime when the
          executing queue changes *)
  mem : Memory.t;
  mutable queue : int;
  mutable private_offset : int;  (** bump offset in the private address region *)
  mutable san : Sanitize.t option;
      (** installed by [Runtime.launch ~sanitizer]; [None] on normal runs *)
}

and compiled = {
  fn : func;
  slots : (int, int) Hashtbl.t;  (** instruction id -> tree environment slot *)
  n_slots : int;
  local_allocas : instr list;  (** local arrays, allocated once per group *)
  has_barrier : bool;
      (** statically true iff the kernel contains a [Barrier] instruction;
          barrier-free kernels take the fiberless fast path *)
  regions : Regions.verdict;
      (** barrier-region formation result, for path reporting; the
          compiled spill metadata derived from it lives in [code.wg] *)
  code : cfunc option;  (** [Some] iff the kernel was closure-compiled *)
}

and cfunc = {
  csegs : cseg array;
      (** basic blocks split at barriers; index 0 is the kernel entry,
          each block's segments are contiguous in block order *)
  n_int : int;
  n_float : int;
  n_box : int;
  scr_int : int;  (** max int phi moves on any edge *)
  scr_float : int;
  scr_box : int;
  wg : cwg option;
      (** region-execution metadata; [Some] iff {!Regions.form} verified
          every barrier group-uniform (trivially for barrier-free code) *)
}

and cseg = {
  body : (wi_state -> unit) array;
  cterm : cterm;
  (* Op counts are only observable at group granularity, so the
     statically-known per-instruction costs are summed once per segment at
     compile time and bumped in one go per segment execution. *)
  b_int : int;
  b_float : int;
  b_special : int;
}

and cterm =
  | Tbr of edge
  | Tcond of (wi_state -> int) * edge * edge
  | Tret
  | Tbarrier of { bar : int; next : int }
      (** barrier [bar] (dense {!Regions} index); [next] is the
          continuation segment right after it. The fiber executor performs
          [Barrier_hit] and continues at [next]; the region executor
          returns [bar] to the group sweep instead. *)
  | Ttrap of string

(** Per-work-item spill plan of the region executor. Every SSA value live
    across some barrier owns one column in a per-kind context matrix
    ([n_items] rows of width [ctx_*]); per barrier, the (env slot, context
    column) pairs to copy are precompiled into parallel arrays. *)
and cwg = {
  bar_entry : int array;  (** barrier index -> continuation segment *)
  sp_i_env : int array array;  (** per barrier: int env slots to spill *)
  sp_i_ctx : int array array;  (** per barrier: matching context columns *)
  sp_f_env : int array array;
  sp_f_ctx : int array array;
  sp_b_env : int array array;
  sp_b_ctx : int array array;
  ctx_i : int;  (** context row width per kind *)
  ctx_f : int;
  ctx_b : int;
}

and edge = {
  e_dst : int;  (** dense index of the successor block's entry segment *)
  im_dst : int array;  (** phi destination slots, by kind *)
  im_src : (wi_state -> int) array;
  fm_dst : int array;
  fm_src : (wi_state -> float) array;
  bm_dst : int array;
  bm_src : (wi_state -> rv) array;
}

(* -- Shared memory-access recording ----------------------------------------- *)

let record_access (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) : unit =
  Trace.record st.stats
    ~addr:(Memory.addr_of b idx)
    ~bytes:b.Memory.elem_bytes ~is_write ~space:b.Memory.space
    ~wi:st.ctx.flat_lid

(* Sanitizer tap on the same access stream. Runs before the actual memory
   operation so an out-of-bounds index becomes a located finding rather
   than an [Invalid_argument] crash from [Memory.check]. *)
let san_access (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(is_write : bool) ~(loc : Grover_support.Loc.t) : unit =
  match st.san with
  | None -> ()
  | Some s -> Sanitize.access s ~buf:b ~idx ~is_write ~wi:st.ctx.flat_lid ~loc

let load_elem (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(loc : Grover_support.Loc.t) : rv =
  record_access st b idx ~is_write:false;
  san_access st b idx ~is_write:false ~loc;
  match b.Memory.elem with
  | F32 -> RFloat (Memory.get_float b idx)
  | I1 | I8 | I16 | I32 | I64 -> RInt (Memory.get_int b idx)
  | Vec (F32, n) -> RVecF (Array.init n (fun l -> Memory.get_lane_float b idx l))
  | Vec (_, n) -> RVecI (Array.init n (fun l -> Memory.get_lane_int b idx l))
  | _ -> trap "load of unsupported element type"

let store_elem (st : wi_state) (b : Memory.buffer) (idx : int)
    ~(loc : Grover_support.Loc.t) (v : rv) : unit =
  record_access st b idx ~is_write:true;
  san_access st b idx ~is_write:true ~loc;
  match v with
  | RFloat f -> Memory.set_float b idx f
  | RInt n -> Memory.set_int b idx n
  | RVecF a -> Array.iteri (fun l x -> Memory.set_lane_float b idx l x) a
  | RVecI a -> Array.iteri (fun l x -> Memory.set_lane_int b idx l x) a
  | RBuf _ -> trap "cannot store a pointer"

let alloc_private (st : wi_state) elem count : Memory.buffer =
  (* Private arrays live in a per-queue private address region; the data
     array itself is fresh per work-item. *)
  let base = 0x0000_1000 + (st.queue * 0x0010_0000) + st.private_offset in
  st.private_offset <- st.private_offset + (count * ty_size_bytes elem);
  Memory.alloc_at st.mem ~space:Private ~base_addr:base elem count

(* == The tree-walking reference engine ====================================== *)

let slot st (i : instr) : int = Hashtbl.find st.c.slots i.iid

let rec eval (st : wi_state) (v : value) : rv =
  match v with
  | Cint (t, n) -> RInt (sext_of t n)
  | Cfloat f -> RFloat f
  | Arg a -> st.args.(a.a_index)
  | Vinstr i -> st.env.(slot st i)

and exec_call (st : wi_state) callee (args : rv list) : rv =
  let dim_of = function
    | [ RInt d ] -> if d >= 0 && d < 3 then d else trap "dimension out of range"
    | _ -> trap "%s expects a dimension" callee
  in
  match callee with
  | "get_local_id" -> RInt st.ctx.lid.(dim_of args)
  | "get_global_id" -> RInt st.ctx.gid.(dim_of args)
  | "get_group_id" -> RInt st.ctx.grp.(dim_of args)
  | "get_local_size" -> RInt st.ctx.lsz.(dim_of args)
  | "get_global_size" -> RInt st.ctx.gsz.(dim_of args)
  | "get_num_groups" -> RInt st.ctx.ngr.(dim_of args)
  | "get_global_offset" -> RInt 0
  | "get_work_dim" -> RInt 3
  | "dot" -> (
      match args with
      | [ RVecF a; RVecF b ] ->
          let s = ref 0.0 in
          Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
          RFloat !s
      | [ RFloat a; RFloat b ] -> RFloat (a *. b)
      | _ -> trap "dot expects float vectors")
  | "mad" | "fma" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat c ] -> RFloat ((a *. b) +. c)
      | [ RVecF a; RVecF b; RVecF c ] ->
          RVecF (Array.init (Array.length a) (fun i -> (a.(i) *. b.(i)) +. c.(i)))
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad argument mismatch")
  | "clamp" -> (
      match args with
      | [ RFloat x; RFloat lo; RFloat hi ] -> RFloat (Float.min (Float.max x lo) hi)
      | [ RInt x; RInt lo; RInt hi ] -> RInt (min (max x lo) hi)
      | _ -> trap "clamp argument mismatch")
  | "mix" -> (
      match args with
      | [ RFloat a; RFloat b; RFloat t ] -> RFloat (a +. ((b -. a) *. t))
      | _ -> trap "mix argument mismatch")
  | "min" | "max" -> (
      let pick_i : int -> int -> int = if callee = "min" then min else max in
      let pick_f : float -> float -> float =
        if callee = "min" then Float.min else Float.max
      in
      match args with
      | [ RInt a; RInt b ] -> RInt (pick_i a b)
      | [ RFloat a; RFloat b ] -> RFloat (pick_f a b)
      | _ -> trap "min/max argument mismatch")
  | "abs" -> (
      match args with
      | [ RInt a ] -> RInt (abs a)
      | [ RFloat a ] -> RFloat (Float.abs a)
      | _ -> trap "abs argument mismatch")
  | "mul24" -> (
      match args with
      | [ RInt a; RInt b ] -> RInt (a * b)
      | _ -> trap "mul24 argument mismatch")
  | "mad24" -> (
      match args with
      | [ RInt a; RInt b; RInt c ] -> RInt ((a * b) + c)
      | _ -> trap "mad24 argument mismatch")
  | "fmax" | "fmin" | "pow" | "fmod" | "hypot" | "native_divide" -> (
      match args with
      | [ RFloat a; RFloat b ] -> RFloat (math2 callee a b)
      | [ RVecF a; RVecF b ] -> RVecF (lanes_map2 (math2 callee) a b)
      | _ -> trap "%s argument mismatch" callee)
  | _ -> (
      (* Remaining builtins are unary float math. *)
      match args with
      | [ RFloat x ] -> RFloat (math1 callee x)
      | [ RVecF a ] -> RVecF (Array.map (math1 callee) a)
      | _ -> trap "unsupported call %s" callee)

and exec_instr (st : wi_state) (i : instr) : unit =
  let set rv = st.env.(slot st i) <- rv in
  match i.op with
  | Binop (op, a, b) -> (
      match (eval st a, eval st b) with
      | RInt x, RInt y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
          set (RInt (int_binop (type_of a) op x y))
      | RFloat x, RFloat y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
          set (RFloat (float_binop op x y))
      | RVecF x, RVecF y ->
          st.stats.Trace.float_ops <- st.stats.Trace.float_ops + Array.length x;
          set (RVecF (lanes_map2 (float_binop op) x y))
      | RVecI x, RVecI y ->
          st.stats.Trace.int_ops <- st.stats.Trace.int_ops + Array.length x;
          set (RVecI (lanes_map2 (int_binop I32 op) x y))
      | _ -> trap "binop operand mismatch")
  | Icmp (c, a, b) ->
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (RInt (if icmp_op (type_of a) c (as_int (eval st a)) (as_int (eval st b)) then 1 else 0))
  | Fcmp (c, a, b) ->
      st.stats.Trace.float_ops <- st.stats.Trace.float_ops + 1;
      set (RInt (if fcmp_op c (as_float (eval st a)) (as_float (eval st b)) then 1 else 0))
  | Select (c, a, b) ->
      set (if as_int (eval st c) <> 0 then eval st a else eval st b)
  | Cast (k, v, t) -> (
      st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      let rv = eval st v in
      match (k, rv) with
      | (Sext | Bitcast), RInt n -> set (RInt (sext_of (type_of v) n))
      | Zext, RInt n -> set (RInt (n land mask_of (type_of v)))
      | Trunc, RInt n -> set (RInt (sext_of t n))
      | Si_to_fp, RInt n -> set (RFloat (float_of_int n))
      | Ui_to_fp, RInt n -> set (RFloat (float_of_int (n land mask_of (type_of v))))
      | Fp_to_si, RFloat f -> set (RInt (int_of_float f))
      | Bitcast, rv -> set rv
      | _ -> trap "unsupported cast")
  | Call { callee; args; _ } ->
      if List.mem callee special_fns then
        st.stats.Trace.special_ops <- st.stats.Trace.special_ops + 1
      else st.stats.Trace.int_ops <- st.stats.Trace.int_ops + 1;
      set (exec_call st callee (List.map (eval st) args))
  | Alloca { aspace = Local; _ } -> (
      match Hashtbl.find_opt st.local_bufs i.iid with
      | Some b -> set (RBuf b)
      | None -> trap "local alloca without a group buffer")
  | Alloca { aspace = Private; elem; count; _ } ->
      set (RBuf (alloc_private st elem count))
  | Alloca _ -> trap "unsupported alloca space"
  | Load { ptr; index } ->
      set
        (load_elem st (as_buf (eval st ptr)) (as_int (eval st index))
           ~loc:i.iloc)
  | Store { ptr; index; v } ->
      store_elem st (as_buf (eval st ptr)) (as_int (eval st index)) ~loc:i.iloc
        (eval st v)
  | Extract (v, lane) -> (
      let l = as_int (eval st lane) in
      match eval st v with
      | RVecF a -> set (RFloat a.(l))
      | RVecI a -> set (RInt a.(l))
      | _ -> trap "extract from non-vector")
  | Insert (v, lane, s) -> (
      let l = as_int (eval st lane) in
      match (eval st v, eval st s) with
      | RVecF a, RFloat x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecF a)
      | RVecI a, RInt x ->
          let a = Array.copy a in
          a.(l) <- x;
          set (RVecI a)
      | _ -> trap "insert mismatch")
  | Vecbuild (t, vs) -> (
      match t with
      | Vec (F32, _) -> set (RVecF (Array.of_list (List.map (fun v -> as_float (eval st v)) vs)))
      | Vec (_, _) -> set (RVecI (Array.of_list (List.map (fun v -> as_int (eval st v)) vs)))
      | _ -> trap "vecbuild of non-vector")
  | Phi _ -> trap "phi executed outside block entry"
  | Barrier _ ->
      st.stats.Trace.barriers <- st.stats.Trace.barriers + 1;
      Effect.perform Barrier_hit
  | Br _ | Cond_br _ | Ret -> trap "terminator executed as body instruction"

and run_tree (st : wi_state) : unit =
  let cur = ref (entry st.c.fn) in
  let prev = ref None in
  let running = ref true in
  while !running do
    let blk = !cur in
    (* Phase 1: evaluate all phis against the incoming edge, then commit. *)
    let phis =
      List.filter_map
        (fun i ->
          match i.op with
          | Phi { incoming; _ } -> (
              match !prev with
              | None -> trap "phi in entry block"
              | Some p -> (
                  match
                    List.find_opt (fun (b, _) -> b.bid = p.bid) incoming
                  with
                  | Some (_, v) -> Some (i, eval st v)
                  | None -> trap "phi has no incoming for predecessor"))
          | _ -> None)
        blk.instrs
    in
    List.iter (fun (i, rv) -> st.env.(slot st i) <- rv) phis;
    List.iter
      (fun i -> match i.op with Phi _ -> () | _ -> exec_instr st i)
      blk.instrs;
    (match blk.term with
    | Some { op = Br target; _ } ->
        prev := Some blk;
        cur := target
    | Some { op = Cond_br (c, t, e); _ } ->
        st.stats.Trace.branches <- st.stats.Trace.branches + 1;
        prev := Some blk;
        cur := if as_int (eval st c) <> 0 then t else e
    | Some { op = Ret; _ } -> running := false
    | _ -> trap "missing terminator")
  done

(* == The closure compiler =================================================== *)

type kind = KInt of int | KFloat of int | KBox of int

let compile_fn (fn : func) (regions : Regions.verdict) : cfunc =
  let kinds : (int, kind) Hashtbl.t = Hashtbl.create 64 in
  let ni = ref 0 and nf = ref 0 and nb = ref 0 in
  iter_instrs
    (fun i ->
      match type_of_opcode i.op with
      | Void -> ()
      | I1 | I8 | I16 | I32 | I64 ->
          Hashtbl.replace kinds i.iid (KInt !ni);
          incr ni
      | F32 ->
          Hashtbl.replace kinds i.iid (KFloat !nf);
          incr nf
      | _ ->
          Hashtbl.replace kinds i.iid (KBox !nb);
          incr nb
      | exception Invalid_argument _ -> ())
    fn;
  let kind_of (i : instr) = Hashtbl.find_opt kinds i.iid in
  (* Segment layout: each block contributes an entry segment plus one
     continuation segment per barrier it contains, laid out contiguously.
     [bidx] maps a block id to its entry segment (branch edges can only
     target block entries); [bar_index]/[bar_entry] number barriers
     densely in block-then-body order, matching {!Regions.form}. *)
  let bidx : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let bar_index : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let n_segs = ref 0 and n_bars = ref 0 in
  let bar_entry_rev = ref [] in
  List.iter
    (fun b ->
      Hashtbl.replace bidx b.bid !n_segs;
      incr n_segs;
      List.iter
        (fun (i : instr) ->
          match i.op with
          | Barrier _ ->
              Hashtbl.replace bar_index i.iid !n_bars;
              incr n_bars;
              bar_entry_rev := !n_segs :: !bar_entry_rev;
              incr n_segs
          | _ -> ())
        b.instrs)
    fn.blocks;
  let bar_entry = Array.of_list (List.rev !bar_entry_rev) in

  (* Destination helpers: hand the slot to [mk], or trap at execution time
     if the instruction's static type disagrees with the expected kind. *)
  let with_int_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KInt s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (int) at instruction %d" i.iid
  in
  let with_float_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KFloat s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (float) at instruction %d" i.iid
  in
  let with_box_dst (i : instr) (mk : int -> wi_state -> unit) =
    match kind_of i with
    | Some (KBox s) -> mk s
    | _ -> fun _ -> trap "slot kind mismatch (aggregate) at instruction %d" i.iid
  in

  (* Typed operand getters, resolved at compile time. *)
  let iget (v : value) : wi_state -> int =
    match v with
    | Cint (t, n) ->
        let k = sext_of t n in
        fun _ -> k
    | Cfloat f -> fun _ -> trap "expected int, got float %g" f
    | Arg a ->
        let j = a.a_index in
        fun st -> as_int st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) -> fun st -> st.ienv.(s)
        | Some (KFloat s) -> fun st -> trap "expected int, got float %g" st.fenv.(s)
        | Some (KBox s) -> fun st -> as_int st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in
  let fget (v : value) : wi_state -> float =
    match v with
    | Cfloat f -> fun _ -> f
    | Cint (_, n) -> fun _ -> trap "expected float, got int %d" n
    | Arg a ->
        let j = a.a_index in
        fun st -> as_float st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KFloat s) -> fun st -> st.fenv.(s)
        | Some (KInt s) -> fun st -> trap "expected float, got int %d" st.ienv.(s)
        | Some (KBox s) -> fun st -> as_float st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in
  let bufget (v : value) : wi_state -> Memory.buffer =
    match v with
    | Arg a ->
        let j = a.a_index in
        fun st -> as_buf st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KBox s) -> fun st -> as_buf st.benv.(s)
        | _ -> fun _ -> trap "expected a pointer")
    | _ -> fun _ -> trap "expected a pointer"
  in
  let vget (v : value) : wi_state -> rv =
    match v with
    | Cint (t, n) ->
        let r = RInt (sext_of t n) in
        fun _ -> r
    | Cfloat f ->
        let r = RFloat f in
        fun _ -> r
    | Arg a ->
        let j = a.a_index in
        fun st -> st.args.(j)
    | Vinstr i -> (
        match kind_of i with
        | Some (KInt s) -> fun st -> RInt st.ienv.(s)
        | Some (KFloat s) -> fun st -> RFloat st.fenv.(s)
        | Some (KBox s) -> fun st -> st.benv.(s)
        | None -> fun _ -> trap "use of a void value")
  in

  let is_int_ty = function I1 | I8 | I16 | I32 | I64 -> true | _ -> false in

  let compile_call (i : instr) callee (args : value list) : wi_state -> unit =
    let arg_tys = List.map type_of args in
    (* Work-item index queries: resolve the selector and, when the
       dimension is a constant (the common case after canon), the index. *)
    let wi_query (sel : wi_ctx -> int array) =
      match args with
      | [ Cint (_, d) ] when d >= 0 && d < 3 ->
          with_int_dst i (fun dst st ->
              st.ienv.(dst) <- (sel st.ctx).(d))
      | [ dv ] ->
          let g = iget dv in
          with_int_dst i (fun dst st ->
              let d = g st in
              if d < 0 || d >= 3 then trap "dimension out of range";
              st.ienv.(dst) <- (sel st.ctx).(d))
      | _ -> fun _ -> trap "%s expects a dimension" callee
    in
    let mismatch = fun _ -> trap "%s argument mismatch" callee in
    match callee with
    | "get_local_id" -> wi_query (fun c -> c.lid)
    | "get_global_id" -> wi_query (fun c -> c.gid)
    | "get_group_id" -> wi_query (fun c -> c.grp)
    | "get_local_size" -> wi_query (fun c -> c.lsz)
    | "get_global_size" -> wi_query (fun c -> c.gsz)
    | "get_num_groups" -> wi_query (fun c -> c.ngr)
    | "get_global_offset" ->
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- 0)
    | "get_work_dim" ->
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- 3)
    | "dot" -> (
        match (args, arg_tys) with
        | [ a; b ], [ Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b in
            with_float_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y ->
                    let s = ref 0.0 in
                    Array.iteri (fun l v -> s := !s +. (v *. y.(l))) x;
                    st.fenv.(dst) <- !s
                | _ -> trap "dot expects float vectors")
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- ga st *. gb st)
        | _ -> fun _ -> trap "dot expects float vectors")
    | "mad" | "fma" -> (
        match (args, arg_tys) with
        | [ a; b; c ], [ F32; F32; F32 ] ->
            let ga = fget a and gb = fget b and gc = fget c in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- (ga st *. gb st) +. gc st)
        | [ a; b; c ], [ Vec (F32, _); Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b and gc = vget c in
            with_box_dst i (fun dst st ->
                match (ga st, gb st, gc st) with
                | RVecF x, RVecF y, RVecF z ->
                    st.benv.(dst) <-
                      RVecF
                        (Array.init (Array.length x) (fun l ->
                             (x.(l) *. y.(l)) +. z.(l)))
                | _ -> trap "mad argument mismatch")
        | [ a; b; c ], [ ta; tb; tc ]
          when is_int_ty ta && is_int_ty tb && is_int_ty tc ->
            let ga = iget a and gb = iget b and gc = iget c in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (ga st * gb st) + gc st)
        | _ -> mismatch)
    | "clamp" -> (
        match (args, arg_tys) with
        | [ x; lo; hi ], [ F32; F32; F32 ] ->
            let gx = fget x and gl = fget lo and gh = fget hi in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- Float.min (Float.max (gx st) (gl st)) (gh st))
        | [ x; lo; hi ], [ tx; tl; th ]
          when is_int_ty tx && is_int_ty tl && is_int_ty th ->
            let gx = iget x and gl = iget lo and gh = iget hi in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- min (max (gx st) (gl st)) (gh st))
        | _ -> mismatch)
    | "mix" -> (
        match (args, arg_tys) with
        | [ a; b; t ], [ F32; F32; F32 ] ->
            let ga = fget a and gb = fget b and gt = fget t in
            with_float_dst i (fun dst st ->
                let a = ga st in
                st.fenv.(dst) <- a +. ((gb st -. a) *. gt st))
        | _ -> mismatch)
    | "min" | "max" -> (
        let pick_i : int -> int -> int = if callee = "min" then min else max in
        let pick_f : float -> float -> float =
          if callee = "min" then Float.min else Float.max
        in
        match (args, arg_tys) with
        | [ a; b ], [ ta; tb ] when is_int_ty ta && is_int_ty tb ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- pick_i (ga st) (gb st))
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- pick_f (ga st) (gb st))
        | _ -> mismatch)
    | "abs" -> (
        match (args, arg_tys) with
        | [ a ], [ ta ] when is_int_ty ta ->
            let ga = iget a in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- abs (ga st))
        | [ a ], [ F32 ] ->
            let ga = fget a in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- Float.abs (ga st))
        | _ -> mismatch)
    | "mul24" -> (
        match (args, arg_tys) with
        | [ a; b ], [ ta; tb ] when is_int_ty ta && is_int_ty tb ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- ga st * gb st)
        | _ -> mismatch)
    | "mad24" -> (
        match (args, arg_tys) with
        | [ a; b; c ], [ ta; tb; tc ]
          when is_int_ty ta && is_int_ty tb && is_int_ty tc ->
            let ga = iget a and gb = iget b and gc = iget c in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (ga st * gb st) + gc st)
        | _ -> mismatch)
    | "fmax" | "fmin" | "pow" | "fmod" | "hypot" | "native_divide" -> (
        let f =
          match math2_fn callee with Some f -> f | None -> assert false
        in
        match (args, arg_tys) with
        | [ a; b ], [ F32; F32 ] ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st) (gb st))
        | [ a; b ], [ Vec (F32, _); Vec (F32, _) ] ->
            let ga = vget a and gb = vget b in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y -> st.benv.(dst) <- RVecF (lanes_map2 f x y)
                | _ -> trap "%s argument mismatch" callee)
        | _ -> mismatch)
    | _ -> (
        (* Remaining builtins are unary float math. *)
        match (args, arg_tys, math1_fn callee) with
        | [ a ], [ F32 ], Some f ->
            let ga = fget a in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st))
        | [ a ], [ Vec (F32, _) ], Some f ->
            let ga = vget a in
            with_box_dst i (fun dst st ->
                match ga st with
                | RVecF x -> st.benv.(dst) <- RVecF (Array.map f x)
                | _ -> trap "unsupported call %s" callee)
        | _ -> fun _ -> trap "unsupported call %s" callee)
  in

  let compile_instr (i : instr) : wi_state -> unit =
    match i.op with
    | Binop (op, a, b) -> (
        match type_of a with
        | (I1 | I8 | I16 | I32 | I64) as t ->
            let ga = iget a and gb = iget b and f = int_binop_fn t op in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- f (ga st) (gb st))
        | F32 ->
            let ga = fget a and gb = fget b and f = float_binop_fn op in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- f (ga st) (gb st))
        | Vec (F32, _) ->
            let ga = vget a and gb = vget b and f = float_binop_fn op in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecF x, RVecF y ->
                    st.benv.(dst) <- RVecF (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | Vec (_, _) ->
            let ga = vget a and gb = vget b and f = int_binop_fn I32 op in
            with_box_dst i (fun dst st ->
                match (ga st, gb st) with
                | RVecI x, RVecI y ->
                    st.benv.(dst) <- RVecI (lanes_map2 f x y)
                | _ -> trap "binop operand mismatch")
        | _ -> fun _ -> trap "binop operand mismatch")
    | Icmp (c, a, b) ->
        let ga = iget a and gb = iget b and f = icmp_fn (type_of a) c in
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- (if f (ga st) (gb st) then 1 else 0))
    | Fcmp (c, a, b) ->
        let ga = fget a and gb = fget b and f = fcmp_fn c in
        with_int_dst i (fun dst st ->
            st.ienv.(dst) <- (if f (ga st) (gb st) then 1 else 0))
    | Select (c, a, b) -> (
        let gc = iget c in
        match type_of a with
        | I1 | I8 | I16 | I32 | I64 ->
            let ga = iget a and gb = iget b in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- (if gc st <> 0 then ga st else gb st))
        | F32 ->
            let ga = fget a and gb = fget b in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- (if gc st <> 0 then ga st else gb st))
        | _ ->
            let ga = vget a and gb = vget b in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- (if gc st <> 0 then ga st else gb st)))
    | Cast (k, v, t) -> (
        let src_t = type_of v in
        match (k, src_t) with
        | (Sext | Bitcast), (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- sext_of src_t (g st))
        | Zext, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v and m = mask_of src_t in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- g st land m)
        | Trunc, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- sext_of t (g st))
        | Si_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- float_of_int (g st))
        | Ui_to_fp, (I1 | I8 | I16 | I32 | I64) ->
            let g = iget v and m = mask_of src_t in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- float_of_int (g st land m))
        | Fp_to_si, F32 ->
            let g = fget v in
            with_int_dst i (fun dst st ->
                st.ienv.(dst) <- int_of_float (g st))
        | Bitcast, F32 ->
            let g = fget v in
            with_float_dst i (fun dst st ->
                st.fenv.(dst) <- g st)
        | Bitcast, _ ->
            let g = vget v in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- g st)
        | _ -> fun _ -> trap "unsupported cast")
    | Call { callee; args; _ } -> compile_call i callee args
    | Alloca { aspace = Local; _ } ->
        let iid = i.iid in
        with_box_dst i (fun dst st ->
            match Hashtbl.find_opt st.local_bufs iid with
            | Some b -> st.benv.(dst) <- RBuf b
            | None -> trap "local alloca without a group buffer")
    | Alloca { aspace = Private; elem; count; _ } ->
        with_box_dst i (fun dst st ->
            st.benv.(dst) <- RBuf (alloc_private st elem count))
    | Alloca _ -> fun _ -> trap "unsupported alloca space"
    | Load { ptr; index } -> (
        let gp = bufget ptr and gi = iget index in
        let loc = i.iloc in
        match elem_of_ptr (type_of ptr) with
        | F32 ->
            with_float_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.fenv.(dst) <- Memory.get_float b idx)
        | I1 | I8 | I16 | I32 | I64 ->
            with_int_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.ienv.(dst) <- Memory.get_int b idx)
        | Vec (F32, n) ->
            with_box_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.benv.(dst) <-
                  RVecF (Array.init n (fun l -> Memory.get_lane_float b idx l)))
        | Vec (_, n) ->
            with_box_dst i (fun dst st ->
                let b = gp st in
                let idx = gi st in
                record_access st b idx ~is_write:false;
                san_access st b idx ~is_write:false ~loc;
                st.benv.(dst) <-
                  RVecI (Array.init n (fun l -> Memory.get_lane_int b idx l)))
        | _ -> fun _ -> trap "load of unsupported element type"
        | exception Invalid_argument _ ->
            fun _ -> trap "load of unsupported element type")
    | Store { ptr; index; v } -> (
        let gp = bufget ptr and gi = iget index in
        let loc = i.iloc in
        match type_of v with
        | F32 ->
            let gv = fget v in
            fun st ->
              let b = gp st in
              let idx = gi st in
              record_access st b idx ~is_write:true;
              san_access st b idx ~is_write:true ~loc;
              Memory.set_float b idx (gv st)
        | I1 | I8 | I16 | I32 | I64 ->
            let gv = iget v in
            fun st ->
              let b = gp st in
              let idx = gi st in
              record_access st b idx ~is_write:true;
              san_access st b idx ~is_write:true ~loc;
              Memory.set_int b idx (gv st)
        | _ ->
            let gv = vget v in
            fun st -> store_elem st (gp st) (gi st) ~loc (gv st))
    | Extract (v, lane) -> (
        let gl = iget lane in
        match type_of v with
        | Vec (F32, _) ->
            let gv = vget v in
            with_float_dst i (fun dst st ->
                let l = gl st in
                match gv st with
                | RVecF a -> st.fenv.(dst) <- a.(l)
                | _ -> trap "extract from non-vector")
        | Vec (_, _) ->
            let gv = vget v in
            with_int_dst i (fun dst st ->
                let l = gl st in
                match gv st with
                | RVecI a -> st.ienv.(dst) <- a.(l)
                | _ -> trap "extract from non-vector")
        | _ -> fun _ -> trap "extract from non-vector")
    | Insert (v, lane, s) ->
        let gv = vget v and gl = iget lane and gs = vget s in
        with_box_dst i (fun dst st ->
            let l = gl st in
            match (gv st, gs st) with
            | RVecF a, RFloat x ->
                let a = Array.copy a in
                a.(l) <- x;
                st.benv.(dst) <- RVecF a
            | RVecI a, RInt x ->
                let a = Array.copy a in
                a.(l) <- x;
                st.benv.(dst) <- RVecI a
            | _ -> trap "insert mismatch")
    | Vecbuild (t, vs) -> (
        match t with
        | Vec (F32, _) ->
            let gs = Array.of_list (List.map fget vs) in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- RVecF (Array.map (fun g -> g st) gs))
        | Vec (_, _) ->
            let gs = Array.of_list (List.map iget vs) in
            with_box_dst i (fun dst st ->
                st.benv.(dst) <- RVecI (Array.map (fun g -> g st) gs))
        | _ -> fun _ -> trap "vecbuild of non-vector")
    | Phi _ -> fun _ -> trap "phi executed outside block entry"
    | Barrier _ ->
        (* Barriers end a segment; they never appear in a segment body. *)
        fun _ -> trap "barrier executed as a body instruction"
    | Br _ | Cond_br _ | Ret ->
        fun _ -> trap "terminator executed as body instruction"
  in

  (* Per-edge phi moves: evaluated against the predecessor's environment,
     committed together (staged through the scratch arrays at run time). *)
  let scr_i = ref 0 and scr_f = ref 0 and scr_b = ref 0 in
  let mk_edge (src : block) (dst : block) : edge =
    let im = ref [] and fm = ref [] and bm = ref [] in
    List.iter
      (fun (pi : instr) ->
        match pi.op with
        | Phi { incoming; _ } -> (
            match List.find_opt (fun (b, _) -> b.bid = src.bid) incoming with
            | None ->
                im :=
                  (0, fun _ -> trap "phi has no incoming for predecessor")
                  :: !im
            | Some (_, v) -> (
                match kind_of pi with
                | Some (KInt s) -> im := (s, iget v) :: !im
                | Some (KFloat s) -> fm := (s, fget v) :: !fm
                | Some (KBox s) -> bm := (s, vget v) :: !bm
                | None -> ()))
        | _ -> ())
      dst.instrs;
    let im = Array.of_list (List.rev !im)
    and fm = Array.of_list (List.rev !fm)
    and bm = Array.of_list (List.rev !bm) in
    scr_i := max !scr_i (Array.length im);
    scr_f := max !scr_f (Array.length fm);
    scr_b := max !scr_b (Array.length bm);
    {
      e_dst = Hashtbl.find bidx dst.bid;
      im_dst = Array.map fst im;
      im_src = Array.map snd im;
      fm_dst = Array.map fst fm;
      fm_src = Array.map snd fm;
      bm_dst = Array.map fst bm;
      bm_src = Array.map snd bm;
    }
  in

  (* Static op cost of one instruction, (int, float, special) — mirrors
     the per-instruction bumps of the tree engine exactly. *)
  let op_cost (i : instr) : int * int * int =
    match i.op with
    | Binop (_, a, _) -> (
        match type_of a with
        | F32 -> (0, 1, 0)
        | Vec (F32, n) -> (0, n, 0)
        | Vec (_, n) -> (n, 0, 0)
        | _ -> (1, 0, 0))
    | Icmp _ | Cast _ -> (1, 0, 0)
    | Fcmp _ -> (0, 1, 0)
    | Call { callee; _ } ->
        if List.mem callee special_fns then (0, 0, 1) else (1, 0, 0)
    | _ -> (0, 0, 0)
  in

  (* One block compiles to 1 + (barriers in block) segments: the body is
     cut at each barrier, non-final chunks terminate in [Tbarrier], the
     final chunk carries the block's real terminator. *)
  let compile_block (k : int) (b : block) : cseg list =
    let final_term =
      match b.term with
      | Some { op = Br target; _ } -> Tbr (mk_edge b target)
      | Some { op = Cond_br (c, t, e); _ } ->
          Tcond (iget c, mk_edge b t, mk_edge b e)
      | Some { op = Ret; _ } -> Tret
      | _ -> Ttrap "missing terminator"
    in
    let rec cut acc cur = function
      | [] -> List.rev ((List.rev cur, None) :: acc)
      | (i : instr) :: tl when (match i.op with Barrier _ -> true | _ -> false)
        ->
          cut ((List.rev cur, Some i) :: acc) [] tl
      | i :: tl -> cut acc (i :: cur) tl
    in
    let mk_seg (j : int) ((instrs : instr list), (bar : instr option)) : cseg =
      let body =
        List.filter_map
          (fun (i : instr) ->
            match i.op with Phi _ -> None | _ -> Some (compile_instr i))
          instrs
      in
      let body =
        (* Phis are only written by incoming edges; a phi in the entry
           block has no incoming edge and is malformed IR. *)
        if
          j = 0 && k = 0
          && List.exists
               (fun i -> match i.op with Phi _ -> true | _ -> false)
               instrs
        then (fun _ -> trap "phi in entry block") :: body
        else body
      in
      let cterm =
        match bar with
        | Some bi ->
            let bar = Hashtbl.find bar_index bi.iid in
            Tbarrier { bar; next = bar_entry.(bar) }
        | None -> final_term
      in
      let c_int = ref 0 and c_float = ref 0 and c_special = ref 0 in
      List.iter
        (fun (i : instr) ->
          match i.op with
          | Phi _ -> ()
          | _ ->
              let ci, cf, cs = op_cost i in
              c_int := !c_int + ci;
              c_float := !c_float + cf;
              c_special := !c_special + cs)
        instrs;
      {
        body = Array.of_list body;
        cterm;
        b_int = !c_int;
        b_float = !c_float;
        b_special = !c_special;
      }
    in
    List.mapi mk_seg (cut [] [] b.instrs)
  in
  let csegs =
    Array.of_list (List.concat (List.mapi compile_block fn.blocks))
  in
  assert (Array.length csegs = !n_segs);
  (* Spill plan for the region executor: give every value that is live
     across {e some} barrier one context column of its kind, then
     precompile each barrier's (env slot, column) copy lists. *)
  let wg =
    match regions with
    | Regions.Fallback _ -> None
    | Regions.Formed info ->
        let enumeration_matches =
          Array.length info.barriers = !n_bars
          && Array.for_all
               (fun (bi : instr) ->
                 match Hashtbl.find_opt bar_index bi.iid with
                 | Some _ -> true
                 | None -> false)
               info.barriers
        in
        if not enumeration_matches then None
        else begin
          let ctx_col : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let ci = ref 0 and cf = ref 0 and cb = ref 0 in
          Array.iter
            (Array.iter (fun iid ->
                 if not (Hashtbl.mem ctx_col iid) then
                   match Hashtbl.find_opt kinds iid with
                   | Some (KInt _) ->
                       Hashtbl.replace ctx_col iid !ci;
                       incr ci
                   | Some (KFloat _) ->
                       Hashtbl.replace ctx_col iid !cf;
                       incr cf
                   | Some (KBox _) ->
                       Hashtbl.replace ctx_col iid !cb;
                       incr cb
                   | None -> ()))
            info.live_across;
          let n = !n_bars in
          let sp_i_env = Array.make n [||] and sp_i_ctx = Array.make n [||] in
          let sp_f_env = Array.make n [||] and sp_f_ctx = Array.make n [||] in
          let sp_b_env = Array.make n [||] and sp_b_ctx = Array.make n [||] in
          Array.iteri
            (fun j (bi : instr) ->
              let at = Hashtbl.find bar_index bi.iid in
              let ie = ref [] and fe = ref [] and be = ref [] in
              Array.iter
                (fun iid ->
                  match Hashtbl.find_opt kinds iid with
                  | Some (KInt s) ->
                      ie := (s, Hashtbl.find ctx_col iid) :: !ie
                  | Some (KFloat s) ->
                      fe := (s, Hashtbl.find ctx_col iid) :: !fe
                  | Some (KBox s) ->
                      be := (s, Hashtbl.find ctx_col iid) :: !be
                  | None -> ())
                info.live_across.(j);
              let fill env ctx l =
                let a = Array.of_list (List.rev l) in
                env.(at) <- Array.map fst a;
                ctx.(at) <- Array.map snd a
              in
              fill sp_i_env sp_i_ctx !ie;
              fill sp_f_env sp_f_ctx !fe;
              fill sp_b_env sp_b_ctx !be)
            info.barriers;
          Some
            {
              bar_entry;
              sp_i_env;
              sp_i_ctx;
              sp_f_env;
              sp_f_ctx;
              sp_b_env;
              sp_b_ctx;
              ctx_i = !ci;
              ctx_f = !cf;
              ctx_b = !cb;
            }
        end
  in
  {
    csegs;
    n_int = !ni;
    n_float = !nf;
    n_box = !nb;
    scr_int = !scr_i;
    scr_float = !scr_f;
    scr_box = !scr_b;
    wg;
  }

(* -- The compiled-engine hot loop ------------------------------------------- *)

let take_edge (st : wi_state) (e : edge) : int =
  let ni = Array.length e.im_dst in
  if ni > 0 then begin
    for k = 0 to ni - 1 do
      st.iscr.(k) <- e.im_src.(k) st
    done;
    for k = 0 to ni - 1 do
      st.ienv.(e.im_dst.(k)) <- st.iscr.(k)
    done
  end;
  let nf = Array.length e.fm_dst in
  if nf > 0 then begin
    for k = 0 to nf - 1 do
      st.fscr.(k) <- e.fm_src.(k) st
    done;
    for k = 0 to nf - 1 do
      st.fenv.(e.fm_dst.(k)) <- st.fscr.(k)
    done
  end;
  let nb = Array.length e.bm_dst in
  if nb > 0 then begin
    for k = 0 to nb - 1 do
      st.bscr.(k) <- e.bm_src.(k) st
    done;
    for k = 0 to nb - 1 do
      st.benv.(e.bm_dst.(k)) <- st.bscr.(k)
    done
  end;
  e.e_dst

let run_compiled (st : wi_state) (cf : cfunc) : unit =
  let segs = cf.csegs in
  let cur = ref 0 in
  let stats = st.stats in
  while !cur >= 0 do
    let b = segs.(!cur) in
    stats.Trace.int_ops <- stats.Trace.int_ops + b.b_int;
    stats.Trace.float_ops <- stats.Trace.float_ops + b.b_float;
    stats.Trace.special_ops <- stats.Trace.special_ops + b.b_special;
    let body = b.body in
    for k = 0 to Array.length body - 1 do
      body.(k) st
    done;
    cur :=
      (match b.cterm with
      | Tbr e -> take_edge st e
      | Tcond (g, t, e) ->
          st.stats.Trace.branches <- st.stats.Trace.branches + 1;
          if g st <> 0 then take_edge st t else take_edge st e
      | Tret -> -1
      | Tbarrier { bar = _; next } ->
          stats.Trace.barriers <- stats.Trace.barriers + 1;
          Effect.perform Barrier_hit;
          next
      | Ttrap m -> trap "%s" m)
  done

(* -- The region executor ------------------------------------------------------

   The runtime's wg-loop scheduler drives one work-item at a time through
   the current parallel region: [run_region] runs from segment [from]
   until the work-item either returns (result -1) or reaches a barrier
   (result = the barrier's dense index; the sweep continues the whole
   group at [cwg.bar_entry.(bar)] once every work-item arrived there).
   Values live across the boundary are copied between the shared slot
   environment and the work-item's row of the group's context matrices by
   [spill_save]/[spill_restore]. *)

let run_region (st : wi_state) (cf : cfunc) ~(from : int) : int =
  let segs = cf.csegs in
  let cur = ref from in
  let exitc = ref (-1) in
  let running = ref true in
  let stats = st.stats in
  while !running do
    let b = segs.(!cur) in
    stats.Trace.int_ops <- stats.Trace.int_ops + b.b_int;
    stats.Trace.float_ops <- stats.Trace.float_ops + b.b_float;
    stats.Trace.special_ops <- stats.Trace.special_ops + b.b_special;
    let body = b.body in
    for k = 0 to Array.length body - 1 do
      body.(k) st
    done;
    match b.cterm with
    | Tbr e -> cur := take_edge st e
    | Tcond (g, t, e) ->
        stats.Trace.branches <- stats.Trace.branches + 1;
        cur := (if g st <> 0 then take_edge st t else take_edge st e)
    | Tret -> running := false
    | Tbarrier { bar; next = _ } ->
        stats.Trace.barriers <- stats.Trace.barriers + 1;
        exitc := bar;
        running := false
    | Ttrap m -> trap "%s" m
  done;
  !exitc

let spill_save (st : wi_state) (w : cwg) ~(bar : int) ~(ictx : int array)
    ~(fctx : float array) ~(bctx : rv array) ~(flat : int) : unit =
  let env = w.sp_i_env.(bar) and col = w.sp_i_ctx.(bar) in
  let base = flat * w.ctx_i in
  for k = 0 to Array.length env - 1 do
    ictx.(base + col.(k)) <- st.ienv.(env.(k))
  done;
  let env = w.sp_f_env.(bar) and col = w.sp_f_ctx.(bar) in
  let base = flat * w.ctx_f in
  for k = 0 to Array.length env - 1 do
    fctx.(base + col.(k)) <- st.fenv.(env.(k))
  done;
  let env = w.sp_b_env.(bar) and col = w.sp_b_ctx.(bar) in
  let base = flat * w.ctx_b in
  for k = 0 to Array.length env - 1 do
    bctx.(base + col.(k)) <- st.benv.(env.(k))
  done

let spill_restore (st : wi_state) (w : cwg) ~(bar : int) ~(ictx : int array)
    ~(fctx : float array) ~(bctx : rv array) ~(flat : int) : unit =
  let env = w.sp_i_env.(bar) and col = w.sp_i_ctx.(bar) in
  let base = flat * w.ctx_i in
  for k = 0 to Array.length env - 1 do
    st.ienv.(env.(k)) <- ictx.(base + col.(k))
  done;
  let env = w.sp_f_env.(bar) and col = w.sp_f_ctx.(bar) in
  let base = flat * w.ctx_f in
  for k = 0 to Array.length env - 1 do
    st.fenv.(env.(k)) <- fctx.(base + col.(k))
  done;
  let env = w.sp_b_env.(bar) and col = w.sp_b_ctx.(bar) in
  let base = flat * w.ctx_b in
  for k = 0 to Array.length env - 1 do
    st.benv.(env.(k)) <- bctx.(base + col.(k))
  done

(* -- Public interface -------------------------------------------------------- *)

let prepare ?engine (fn : func) : compiled =
  let engine = Option.value engine ~default:default_engine in
  let slots = Hashtbl.create 64 in
  let n = ref 0 in
  iter_instrs
    (fun i ->
      Hashtbl.replace slots i.iid !n;
      incr n)
    fn;
  let local_allocas =
    fold_instrs
      (fun acc i ->
        match i.op with
        | Alloca { aspace = Local; _ } -> i :: acc
        | _ -> acc)
      [] fn
    |> List.rev
  in
  let has_barrier =
    fold_instrs
      (fun acc i -> acc || match i.op with Barrier _ -> true | _ -> false)
      false fn
  in
  let regions = Regions.form fn in
  let code =
    match engine with Compiled -> Some (compile_fn fn regions) | Tree -> None
  in
  { fn; slots; n_slots = !n; local_allocas; has_barrier; regions; code }

let engine_of (c : compiled) : engine =
  match c.code with Some _ -> Compiled | None -> Tree

let make_state (c : compiled) ~(args : rv array) ~(ctx : wi_ctx)
    ~(stats : Trace.wg_stats) ~(local_bufs : (int, Memory.buffer) Hashtbl.t)
    ~(mem : Memory.t) ~(queue : int) : wi_state =
  match c.code with
  | Some cf ->
      {
        c;
        env = [||];
        ienv = Array.make cf.n_int 0;
        fenv = Array.make cf.n_float 0.0;
        benv = Array.make cf.n_box (RInt 0);
        iscr = Array.make cf.scr_int 0;
        fscr = Array.make cf.scr_float 0.0;
        bscr = Array.make cf.scr_box (RInt 0);
        args;
        ctx;
        stats;
        local_bufs;
        mem;
        queue;
        private_offset = 0;
        san = None;
      }
  | None ->
      {
        c;
        env = Array.make c.n_slots (RInt 0);
        ienv = [||];
        fenv = [||];
        benv = [||];
        iscr = [||];
        fscr = [||];
        bscr = [||];
        args;
        ctx;
        stats;
        local_bufs;
        mem;
        queue;
        private_offset = 0;
        san = None;
      }

(** Re-aim a pooled state at work-item [flat] of the group currently held
    in [st.ctx.grp]: recompute [lid]/[gid] in place and rewind the private
    bump allocator. Slot arrays are deliberately {e not} cleared — SSA
    dominance guarantees every use is preceded by a def on any execution
    path, so a stale slot from the previous work-item is unobservable. *)
let reset_item (st : wi_state) ~(flat : int) : unit =
  let ctx = st.ctx in
  let lsz = ctx.lsz and grp = ctx.grp in
  let lx = flat mod lsz.(0)
  and ly = flat / lsz.(0) mod lsz.(1)
  and lz = flat / (lsz.(0) * lsz.(1)) in
  ctx.lid.(0) <- lx;
  ctx.lid.(1) <- ly;
  ctx.lid.(2) <- lz;
  ctx.gid.(0) <- (grp.(0) * lsz.(0)) + lx;
  ctx.gid.(1) <- (grp.(1) * lsz.(1)) + ly;
  ctx.gid.(2) <- (grp.(2) * lsz.(2)) + lz;
  ctx.flat_lid <- flat;
  st.private_offset <- 0

(** [advance_item st] = [reset_item st ~flat:(st.ctx.flat_lid + 1)], but
    by carry-propagating increments instead of the div/mod chain — the
    sweep loops of the fiberless and wg-loop schedulers visit work-items
    in flat order, so the full recomputation is only needed at [flat = 0]. *)
let advance_item (st : wi_state) : unit =
  let ctx = st.ctx in
  let lid = ctx.lid and gid = ctx.gid and lsz = ctx.lsz in
  ctx.flat_lid <- ctx.flat_lid + 1;
  st.private_offset <- 0;
  let x = lid.(0) + 1 in
  if x < lsz.(0) then begin
    lid.(0) <- x;
    gid.(0) <- gid.(0) + 1
  end
  else begin
    lid.(0) <- 0;
    gid.(0) <- gid.(0) - lsz.(0) + 1;
    let y = lid.(1) + 1 in
    if y < lsz.(1) then begin
      lid.(1) <- y;
      gid.(1) <- gid.(1) + 1
    end
    else begin
      lid.(1) <- 0;
      gid.(1) <- gid.(1) - lsz.(1) + 1;
      lid.(2) <- lid.(2) + 1;
      gid.(2) <- gid.(2) + 1
    end
  end

let run_workitem (st : wi_state) : unit =
  match st.c.code with Some cf -> run_compiled st cf | None -> run_tree st
