(** Memory-access traces and per-work-group execution statistics, the
    interface between the execution engine and the performance simulator.

    Events are stored in struct-of-arrays form — three parallel [int]
    arrays instead of one boxed record per access — so recording an event
    in the interpreter hot loop is three unboxed array writes and no
    allocation. A [wg_stats] value is a {b pooled} buffer: the runtime
    creates one per execution context (launch, or domain worker) and
    {!reset}s it between work-groups, so its capacity is reused across the
    whole NDRange. Consumers receiving a [wg_stats] through a streaming
    hook (e.g. [Runtime.launch ~on_group]) must therefore extract whatever
    they need before returning and never retain the record itself. *)

open Grover_ir

(** A single memory access, as a plain record. The packed arrays below are
    the storage format; this record is the convenience view used by tests
    and by {!push_event}/{!get_event}. *)
type event = {
  addr : int;  (** byte address *)
  bytes : int;
  is_write : bool;
  space : Ssa.space;
  wi : int;  (** linear work-item id within its work-group *)
}

let dummy_event =
  { addr = 0; bytes = 0; is_write = false; space = Ssa.Global; wi = 0 }

(* Packed event info word: [wi lsl 3 lor space lsl 1 lor is_write]. *)

let space_code = function
  | Ssa.Global -> 0
  | Ssa.Local -> 1
  | Ssa.Constant -> 2
  | Ssa.Private -> 3

let space_of_code = function
  | 0 -> Ssa.Global
  | 1 -> Ssa.Local
  | 2 -> Ssa.Constant
  | _ -> Ssa.Private

type wg_stats = {
  mutable wg_id : int;
  mutable queue : int;  (** hardware queue (core / CU) the group ran on *)
  mutable wg_size : int;
  mutable int_ops : int;
  mutable float_ops : int;
  mutable special_ops : int;  (** sqrt/rsqrt/exp/... *)
  mutable branches : int;
  mutable barriers : int;  (** barrier *instances* (per work-item) *)
  mutable barrier_rounds : int;  (** barrier sites crossed by the group *)
  mutable n_events : int;
  mutable ev_addr : int array;
  mutable ev_bytes : int array;
  mutable ev_info : int array;
}

let fresh_stats ~wg_id ~queue ~wg_size : wg_stats =
  {
    wg_id;
    queue;
    wg_size;
    int_ops = 0;
    float_ops = 0;
    special_ops = 0;
    branches = 0;
    barriers = 0;
    barrier_rounds = 0;
    n_events = 0;
    ev_addr = Array.make 64 0;
    ev_bytes = Array.make 64 0;
    ev_info = Array.make 64 0;
  }

(** Rewind a pooled stats buffer for the next work-group: zero the
    counters and the event count, keep the event arrays' capacity. *)
let reset (s : wg_stats) ~wg_id ~queue ~wg_size : unit =
  s.wg_id <- wg_id;
  s.queue <- queue;
  s.wg_size <- wg_size;
  s.int_ops <- 0;
  s.float_ops <- 0;
  s.special_ops <- 0;
  s.branches <- 0;
  s.barriers <- 0;
  s.barrier_rounds <- 0;
  s.n_events <- 0

let grow (s : wg_stats) : unit =
  let cap = Array.length s.ev_addr in
  let cap' = cap * 2 in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  s.ev_addr <- extend s.ev_addr;
  s.ev_bytes <- extend s.ev_bytes;
  s.ev_info <- extend s.ev_info

let record (s : wg_stats) ~addr ~bytes ~is_write ~space ~wi : unit =
  let n = s.n_events in
  if n = Array.length s.ev_addr then grow s;
  s.ev_addr.(n) <- addr;
  s.ev_bytes.(n) <- bytes;
  s.ev_info.(n) <- (wi lsl 3) lor (space_code space lsl 1) lor Bool.to_int is_write;
  s.n_events <- n + 1

(* Per-event accessors over the packed arrays. *)
let ev_addr (s : wg_stats) k = s.ev_addr.(k)
let ev_bytes (s : wg_stats) k = s.ev_bytes.(k)
let ev_is_write (s : wg_stats) k = s.ev_info.(k) land 1 <> 0
let ev_space (s : wg_stats) k = space_of_code ((s.ev_info.(k) lsr 1) land 3)
let ev_wi (s : wg_stats) k = s.ev_info.(k) lsr 3

(** Record-view helpers for tests and debugging. *)
let push_event (s : wg_stats) (e : event) : unit =
  record s ~addr:e.addr ~bytes:e.bytes ~is_write:e.is_write ~space:e.space
    ~wi:e.wi

let get_event (s : wg_stats) k : event =
  {
    addr = ev_addr s k;
    bytes = ev_bytes s k;
    is_write = ev_is_write s k;
    space = ev_space s k;
    wi = ev_wi s k;
  }

let iter_events (f : event -> unit) (s : wg_stats) : unit =
  for k = 0 to s.n_events - 1 do
    f (get_event s k)
  done

(** Aggregated totals over a whole launch (correctness runs often only need
    these, not the raw events). *)
type totals = {
  mutable t_int_ops : int;
  mutable t_float_ops : int;
  mutable t_special_ops : int;
  mutable t_branches : int;
  mutable t_barriers : int;
  mutable t_loads : int;
  mutable t_stores : int;
  mutable t_local_accesses : int;
  mutable t_groups : int;
}

let empty_totals () =
  {
    t_int_ops = 0;
    t_float_ops = 0;
    t_special_ops = 0;
    t_branches = 0;
    t_barriers = 0;
    t_loads = 0;
    t_stores = 0;
    t_local_accesses = 0;
    t_groups = 0;
  }

(** Fold [b] into [a] (all counters are additive). Used to combine the
    per-domain partial totals of a parallel launch; since every field is a
    plain sum, the result is independent of how work-groups were
    distributed over domains. *)
let merge_totals (a : totals) (b : totals) : unit =
  a.t_int_ops <- a.t_int_ops + b.t_int_ops;
  a.t_float_ops <- a.t_float_ops + b.t_float_ops;
  a.t_special_ops <- a.t_special_ops + b.t_special_ops;
  a.t_branches <- a.t_branches + b.t_branches;
  a.t_barriers <- a.t_barriers + b.t_barriers;
  a.t_loads <- a.t_loads + b.t_loads;
  a.t_stores <- a.t_stores + b.t_stores;
  a.t_local_accesses <- a.t_local_accesses + b.t_local_accesses;
  a.t_groups <- a.t_groups + b.t_groups

let accumulate (tot : totals) (s : wg_stats) : unit =
  tot.t_int_ops <- tot.t_int_ops + s.int_ops;
  tot.t_float_ops <- tot.t_float_ops + s.float_ops;
  tot.t_special_ops <- tot.t_special_ops + s.special_ops;
  tot.t_branches <- tot.t_branches + s.branches;
  tot.t_barriers <- tot.t_barriers + s.barriers;
  tot.t_groups <- tot.t_groups + 1;
  for k = 0 to s.n_events - 1 do
    let info = s.ev_info.(k) in
    if info land 1 <> 0 then tot.t_stores <- tot.t_stores + 1
    else tot.t_loads <- tot.t_loads + 1;
    if (info lsr 1) land 3 = 1 then
      tot.t_local_accesses <- tot.t_local_accesses + 1
  done
