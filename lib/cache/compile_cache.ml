(** Staged compilation with a content-addressed compile cache.

    The monolithic [Lower.compile -> pipeline -> Grover -> Interp.prepare]
    path becomes three explicit stages with a cache in front of each
    boundary:

    {ol
    {- {b key}: a content hash of everything that can change the result —
       the macro-expanded canonical token stream of the source
       ({!Grover_clc.Lexer.canonical_source}), the [-D] defines, the
       structural pipeline spec ({!Grover_passes.Pass.pipeline_spec}), the
       requested variant (with_lm, or without_lm with its buffer
       selection), the resolved engine and lane width, and a code-version
       stamp bumped whenever the compiler itself changes meaning;}
    {- {b artifact}: the post-pipeline (and, for without_lm, post-Grover)
       IR plus the transformation outcome, in {e canonically renumbered}
       form ({!Grover_ir.Ssa.renumber_func}) so two compiles of the same
       input are bit-identical and the artifact can live on disk
       ([<dir>/<key>.art], written atomically via rename);}
    {- {b prepared}: the {!Grover_ocl.Interp.compiled} closures, which
       cannot be serialized — they live only in the in-memory LRU tier, and
       are re-[prepare]d (cheap relative to the pipeline) on a disk hit.}}

    Batches of distinct kernels compile concurrently over the runtime's
    persistent domain pool ({!compile_batch}); everything on the compile
    path is domain-safe (atomic SSA id counters, domain-local phi-name
    tables, a read-only pass registry).

    Cached functions are {b shared}: callers must treat [ka_fn] /
    [pr_compiled] as read-only and take a private copy
    ([Ssa.renumber_func]) before running further transforms on one. *)

open Grover_ir
module Lexer = Grover_clc.Lexer
module Pass = Grover_passes.Pass
module Pipeline = Grover_passes.Pipeline
module Grover = Grover_core.Grover
module Interp = Grover_ocl.Interp
module Runtime = Grover_ocl.Runtime

(* Bump whenever a change to the front-end, the passes, Grover or the IR
   could make an old artifact stale: every on-disk entry keyed under a
   different stamp is simply never hit again. *)
let code_version = "grover-cache-2"

(* -- Requests and keys ----------------------------------------------------- *)

type variant =
  | With_lm
  | Without_lm of string list option
      (** local buffers to disable, [None] = all (Grover's default) *)

type request = {
  rq_source : string;
  rq_defines : (string * string) list;
  rq_pipeline : Pass.t list;  (** pre-transform pipeline *)
  rq_variant : variant;
  rq_engine : Interp.engine option;  (** [None] = process default *)
  rq_lane_width : int option;  (** [None] = per-kernel auto width *)
}

let request ?(defines = []) ?(pipeline = [ Pipeline.normalize_pass ])
    ?(variant = With_lm) ?engine ?lane_width source =
  {
    rq_source = source;
    rq_defines = defines;
    rq_pipeline = pipeline;
    rq_variant = variant;
    rq_engine = engine;
    rq_lane_width = lane_width;
  }

let variant_spec = function
  | With_lm -> "with_lm"
  | Without_lm None -> "without_lm[*]"
  | Without_lm (Some names) ->
      Printf.sprintf "without_lm[%s]" (String.concat ";" names)

let defines_spec (defines : (string * string) list) : string =
  List.sort compare defines
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ","

(* Canonicalizing a source is a full tokenization — by far the dominant
   cost of deriving a key, and cache lookups re-derive keys on every call.
   The same few sources are keyed over and over (every suite request, both
   variants, every warm hit), so canonicalization itself is memoized on
   the raw (source, defines) pair. Bounded and mutex-guarded: key
   derivation happens concurrently inside [compile_batch]. *)
let canon_memo : (string * string, string) Hashtbl.t = Hashtbl.create 64
let canon_mutex = Mutex.create ()
let canon_memo_capacity = 256

let canonical_source ~(defines : (string * string) list) (src : string) :
    string =
  let memo_key = (src, defines_spec defines) in
  match
    Mutex.protect canon_mutex (fun () -> Hashtbl.find_opt canon_memo memo_key)
  with
  | Some c -> c
  | None ->
      let c = Lexer.canonical_source ~defines src in
      Mutex.protect canon_mutex (fun () ->
          if Hashtbl.length canon_memo >= canon_memo_capacity then
            Hashtbl.reset canon_memo;
          Hashtbl.replace canon_memo memo_key c);
      c

(* The engine and lane width are resolved against the environment *at key
   time*: "GROVER_LANE_WIDTH=4" and an explicit [lane_width:4] request are
   the same compilation and share an entry, while the auto width (which
   depends on the kernel) keys as "auto" and resolves deterministically
   per function inside [Interp.prepare]. *)
let resolved_engine (rq : request) : Interp.engine =
  match rq.rq_engine with Some e -> e | None -> Interp.default_engine ()

let resolved_lane_width (rq : request) : int option =
  match rq.rq_lane_width with
  | Some w -> Some (max 1 (min w 16))
  | None -> Interp.lane_width_env ()

(** The human-readable key material; {!key_of_request} hashes exactly this.
    Exposed so tests and [groverc cache stats] can explain a key. *)
let key_spec (rq : request) : string =
  String.concat "\x00"
    [
      code_version;
      canonical_source ~defines:rq.rq_defines rq.rq_source;
      defines_spec rq.rq_defines;
      Pass.pipeline_spec rq.rq_pipeline;
      variant_spec rq.rq_variant;
      Interp.engine_name (resolved_engine rq);
      (match resolved_lane_width rq with
      | Some w -> string_of_int w
      | None -> "auto");
    ]

let key_of_request (rq : request) : string =
  Digest.to_hex (Digest.string (key_spec rq))

(** Content hash identifying one kernel for the autotune database: the
    canonical source (under its defines) and the kernel name. Pipeline,
    engine and lane width are deliberately {e not} part of it — a tuning
    entry answers "which version wins for this kernel", which survives
    recompilation with different executor settings. *)
let kernel_hash ~(source : string) ~(defines : (string * string) list)
    ~(name : string) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ canonical_source ~defines source; defines_spec defines; name ]))

(* -- Artifacts -------------------------------------------------------------- *)

type kernel_art = {
  ka_name : string;
  ka_fn : Ssa.func;  (** post-pipeline IR, canonically renumbered *)
  ka_outcome : Grover.outcome option;  (** [Some] iff variant is without_lm *)
  ka_before : int;  (** instruction count as lowered, pre-pipeline *)
  ka_after : int;  (** instruction count in [ka_fn] *)
  ka_changed : bool;  (** whether the pipeline changed the function *)
  ka_diags : Grover_support.Diag.t list;
      (** diagnostics the pipeline and transform emitted, in emission
          order — replayed on a cache hit so a cached driver run prints
          what a fresh one would *)
}

type artifact = {
  art_version : string;  (** = [code_version] at build time *)
  art_key : string;
  art_kernels : kernel_art list;
}

(** A cache value ready to launch: the artifact plus the prepared
    per-kernel closures (memory tier only — closures never touch disk). *)
type prepared = {
  pr_art : artifact;
  pr_compiled : (string * Interp.compiled) list;
}

exception Cache_error of string

let cache_fail fmt = Printf.ksprintf (fun m -> raise (Cache_error m)) fmt

(* -- Building (the cache miss path) ----------------------------------------- *)

let build_artifact (rq : request) ~(key : string) : artifact =
  let fns = Lower.compile ~defines:rq.rq_defines rq.rq_source in
  let kernels =
    List.map
      (fun fn ->
        let before = Pass.instr_count fn in
        let c = Pass.ctx () in
        let changed = Pass.run_pipeline c rq.rq_pipeline fn in
        Verify.run fn;
        (* Renumbering before the transform pins every id Grover's report
           strings can observe, so rendered reports (and hence the whole
           artifact) do not depend on where the process-global id counters
           happened to stand. *)
        let fn = Ssa.renumber_func fn in
        let outcome =
          match rq.rq_variant with
          | With_lm -> None
          | Without_lm only -> Some (Grover.run ?only ~ctx:c fn)
        in
        let fn = Ssa.renumber_func fn in
        {
          ka_name = fn.Ssa.f_name;
          ka_fn = fn;
          ka_outcome = outcome;
          ka_before = before;
          ka_after = Pass.instr_count fn;
          ka_changed = changed;
          ka_diags = Pass.diags c;
        })
      fns
  in
  { art_version = code_version; art_key = key; art_kernels = kernels }

let prepare_artifact (rq : request) (art : artifact) :
    (string * Interp.compiled) list =
  let engine = resolved_engine rq in
  let lane_width = resolved_lane_width rq in
  List.map
    (fun ka -> (ka.ka_name, Interp.prepare ~engine ?lane_width ka.ka_fn))
    art.art_kernels

(** One full compile with no cache involved (the baseline the determinism
    tests and the cold-compile bench rows measure). *)
let compile_nocache (rq : request) : prepared =
  let key = key_of_request rq in
  let art = build_artifact rq ~key in
  { pr_art = art; pr_compiled = prepare_artifact rq art }

(* -- The cache -------------------------------------------------------------- *)

type stats = {
  mutable st_mem_hits : int;
  mutable st_disk_hits : int;
  mutable st_misses : int;
  mutable st_evictions : int;
  mutable st_disk_writes : int;
}

type slot = { sl_prepared : prepared; mutable sl_used : int }

type t = {
  dir : string option;  (** on-disk tier root; [None] = memory-only *)
  mem_capacity : int;
  max_bytes : int option;
      (** disk-tier size budget; stores trim LRU-by-mtime past it *)
  tbl : (string, slot) Hashtbl.t;
  mutable tick : int;
  mutex : Mutex.t;  (** guards [tbl], [tick] and [stats] *)
  stats : stats;
}

let warned_max_bytes_env = ref false

(* The disk budget: an explicit [?max_bytes] wins; otherwise
   [GROVER_CACHE_MAX_BYTES] (plain byte count) applies to every cache the
   process opens. 0 or negative disables the budget. *)
let resolve_max_bytes (arg : int option) : int option =
  match arg with
  | Some n -> if n > 0 then Some n else None
  | None -> (
      match Sys.getenv_opt "GROVER_CACHE_MAX_BYTES" with
      | None | Some "" -> None
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Some n
          | Some _ -> None
          | None ->
              if not !warned_max_bytes_env then begin
                warned_max_bytes_env := true;
                Printf.eprintf
                  "grover: ignoring invalid GROVER_CACHE_MAX_BYTES=%S (want \
                   a byte count)\n%!"
                  s
              end;
              None))

let create ?dir ?(mem_capacity = 128) ?max_bytes () : t =
  if mem_capacity < 1 then cache_fail "mem_capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755
      with Unix.Unix_error (e, _, _) ->
        cache_fail "cannot create cache dir %s: %s" d (Unix.error_message e))
  | Some d when not (Sys.is_directory d) ->
      cache_fail "cache dir %s exists and is not a directory" d
  | _ -> ());
  {
    dir;
    mem_capacity;
    max_bytes = resolve_max_bytes max_bytes;
    tbl = Hashtbl.create 64;
    tick = 0;
    mutex = Mutex.create ();
    stats =
      {
        st_mem_hits = 0;
        st_disk_hits = 0;
        st_misses = 0;
        st_evictions = 0;
        st_disk_writes = 0;
      };
  }

let stats (t : t) : stats = t.stats

let reset_stats (t : t) : unit =
  Mutex.protect t.mutex (fun () ->
      t.stats.st_mem_hits <- 0;
      t.stats.st_disk_hits <- 0;
      t.stats.st_misses <- 0;
      t.stats.st_evictions <- 0;
      t.stats.st_disk_writes <- 0)

let mem_size (t : t) : int =
  Mutex.protect t.mutex (fun () -> Hashtbl.length t.tbl)

(* -- Disk tier -- *)

let art_path (dir : string) (key : string) : string =
  Filename.concat dir (key ^ ".art")

(* -- Cross-process locking --

   The disk tier is shared between processes (several groverc invocations,
   CI jobs, the bench) and every write is already an atomic rename, so
   readers can never observe a torn artifact. What the rename alone does
   not prevent is N processes missing on the same key at once and all
   paying the full build. A per-key advisory lock file ([<key>.lock],
   zero bytes, sibling of the artifact) closes that window: readers take
   it shared around the load, a builder takes it exclusive around
   miss -> re-probe -> build -> store, so late builders block until the
   winner has published and then hit its artifact on the re-probe.

   The lock is an optimization, never a correctness requirement: if the
   lock file cannot be opened or locked (read-only dir, NFS without lock
   support), the code degrades to today's behaviour — duplicate builds,
   still-correct atomic publishes. POSIX record locks are per-process, so
   within one process concurrent builders of the same key are serialized
   by {!compile_batch}'s owner table instead, and a same-process re-entry
   never self-deadlocks. *)

let lock_path (dir : string) (key : string) : string =
  Filename.concat dir (key ^ ".lock")

let with_key_lock (t : t) (key : string) ~(shared : bool) (f : unit -> 'a) :
    'a =
  match t.dir with
  | None -> f ()
  | Some dir -> (
      match
        Unix.openfile (lock_path dir key) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644
      with
      | exception Unix.Unix_error _ -> f ()
      | fd ->
          Fun.protect
            ~finally:(fun () ->
              (try Unix.lockf fd Unix.F_ULOCK 0
               with Unix.Unix_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (try
                 Unix.lockf fd
                   (if shared then Unix.F_RLOCK else Unix.F_LOCK)
                   0
               with Unix.Unix_error _ -> ());
              f ()))

(* Every artifact file with its mtime and size; unstattable entries (a
   concurrent trim/clear) are skipped. *)
let art_files (dir : string) : (string * float * int) list =
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun f ->
           if not (Filename.check_suffix f ".art") then None
           else
             let path = Filename.concat dir f in
             match Unix.stat path with
             | { Unix.st_mtime; st_size; _ } -> Some (path, st_mtime, st_size)
             | exception Unix.Unix_error _ -> None)

(** Bytes held by the on-disk tier. *)
let disk_bytes (t : t) : int =
  match t.dir with
  | None -> 0
  | Some dir -> List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 (art_files dir)

(** Trim the on-disk tier to at most [max_bytes], evicting least-recently
    used artifacts first (mtime order — {!disk_load} touches an artifact
    on every hit, so mtime is recency of use, not of creation). Returns
    [(files_removed, bytes_freed)]. The memory tier is untouched: its
    entries remain valid and simply re-persist on their next store.
    Zero-byte [.lock] sidecars are deliberately kept: unlinking a lock
    file another process holds open would let a third process create a
    fresh one and split the lock. [clear] removes them. *)
let trim (t : t) ~(max_bytes : int) : int * int =
  match t.dir with
  | None -> (0, 0)
  | Some dir ->
      let newest_first =
        List.sort
          (fun (_, m1, _) (_, m2, _) -> compare (m2 : float) m1)
          (art_files dir)
      in
      let kept = ref 0 and removed = ref 0 and freed = ref 0 in
      List.iter
        (fun (path, _, sz) ->
          if !kept + sz <= max_bytes then kept := !kept + sz
          else
            try
              Sys.remove path;
              removed := !removed + 1;
              freed := !freed + sz;
              Mutex.protect t.mutex (fun () ->
                  t.stats.st_evictions <- t.stats.st_evictions + 1)
            with Sys_error _ -> ())
        newest_first;
      (!removed, !freed)

let disk_store (t : t) (art : artifact) : unit =
  match t.dir with
  | None -> ()
  | Some dir ->
      let final = art_path dir art.art_key in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Marshal.to_channel oc art []);
      (* Atomic publish: a concurrent reader sees the old state or the
         complete new file, never a torn write. *)
      Sys.rename tmp final;
      Mutex.protect t.mutex (fun () ->
          t.stats.st_disk_writes <- t.stats.st_disk_writes + 1);
      (* Keep the tier inside its size budget; the just-written artifact
         is the newest, so it is evicted last (and only if it alone
         exceeds the budget). *)
      match t.max_bytes with
      | Some mb -> ignore (trim t ~max_bytes:mb : int * int)
      | None -> ()

(* Largest id the artifact's functions use; the loader reserves past it so
   instructions created later in this process cannot collide. Functions
   are renumbered dense from 1, so the instruction count is the bound. *)
let max_ids (art : artifact) : int =
  List.fold_left
    (fun acc ka ->
      max acc (max ka.ka_after (List.length ka.ka_fn.Ssa.blocks)))
    0 art.art_kernels

let disk_load (t : t) (key : string) : artifact option =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = art_path dir key in
      if not (Sys.file_exists path) then None
      else
        (* A corrupt, truncated or stale-versioned artifact is a miss, not
           an error: the entry is rebuilt and overwritten. *)
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> (Marshal.from_channel ic : artifact))
        with
        | art when art.art_version = code_version && art.art_key = key ->
            Ssa.reserve_ids (max_ids art);
            (* Touch for LRU: {!trim} evicts by mtime, so a hit must
               refresh it or hot artifacts age out by creation date. *)
            (let now = Unix.gettimeofday () in
             try Unix.utimes path now now with Unix.Unix_error _ -> ());
            Some art
        | _ -> None
        | exception _ -> None)

(* -- Memory (LRU) tier -- *)

(* Callers hold the lock. *)
let evict_if_full (t : t) : unit =
  if Hashtbl.length t.tbl >= t.mem_capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun k sl ->
        match !victim with
        | Some (_, used) when used <= sl.sl_used -> ()
        | _ -> victim := Some (k, sl.sl_used))
      t.tbl;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.stats.st_evictions <- t.stats.st_evictions + 1
    | None -> ()
  end

let mem_lookup (t : t) (key : string) : prepared option =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some sl ->
          t.tick <- t.tick + 1;
          sl.sl_used <- t.tick;
          t.stats.st_mem_hits <- t.stats.st_mem_hits + 1;
          Some sl.sl_prepared
      | None -> None)

let mem_insert (t : t) (key : string) (pr : prepared) : unit =
  Mutex.protect t.mutex (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        evict_if_full t;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { sl_prepared = pr; sl_used = t.tick }
      end)

let count_miss (t : t) ~(disk : bool) : unit =
  Mutex.protect t.mutex (fun () ->
      if disk then t.stats.st_disk_hits <- t.stats.st_disk_hits + 1
      else t.stats.st_misses <- t.stats.st_misses + 1)

(* -- Lookup ------------------------------------------------------------------ *)

(** Compile [rq] through the cache: memory tier (prepared closures), then
    disk tier (artifact only; re-prepared), then a full build (stored to
    both tiers). *)
let compile (t : t) (rq : request) : prepared =
  let key = key_of_request rq in
  match mem_lookup t key with
  | Some pr -> pr
  | None -> (
      let from_disk art =
        let pr = { pr_art = art; pr_compiled = prepare_artifact rq art } in
        count_miss t ~disk:true;
        mem_insert t key pr;
        pr
      in
      match with_key_lock t key ~shared:true (fun () -> disk_load t key) with
      | Some art -> from_disk art
      | None ->
          (* Miss: take the key's lock exclusively, so concurrent builders
             of the same key in other processes queue up behind the first.
             Whoever waited re-probes and hits the winner's artifact
             instead of rebuilding it. *)
          with_key_lock t key ~shared:false (fun () ->
              match disk_load t key with
              | Some art -> from_disk art
              | None ->
                  let art = build_artifact rq ~key in
                  let pr =
                    { pr_art = art; pr_compiled = prepare_artifact rq art }
                  in
                  count_miss t ~disk:false;
                  disk_store t art;
                  mem_insert t key pr;
                  pr))

(** Compile a batch of requests, distinct cache misses running concurrently
    over the runtime's persistent domain pool. Results are positionally
    aligned with the input; duplicate keys within one batch are compiled
    once. A failed compile re-raises the first failure after the batch
    drains. *)
let compile_batch (t : t) (rqs : request list) : prepared list =
  let rqs = Array.of_list rqs in
  let n = Array.length rqs in
  if n = 0 then []
  else begin
    let keys = Array.map key_of_request rqs in
    (* Memory-tier prefilter: a fully warm batch is pure table lookups and
       never wakes the pool. *)
    let results : prepared option array = Array.map (mem_lookup t) keys in
    (* One owner per distinct missing key: the first position claims the
       compile, later duplicates read its published result. *)
    let owner : (string, int) Hashtbl.t = Hashtbl.create n in
    Array.iteri
      (fun i k ->
        if results.(i) = None && not (Hashtbl.mem owner k) then
          Hashtbl.add owner k i)
      keys;
    let pending =
      Array.of_seq (Seq.map snd (Hashtbl.to_seq owner))
    in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let work _idx =
      let continue_ = ref true in
      while !continue_ do
        let p = Atomic.fetch_and_add next 1 in
        if p >= Array.length pending then continue_ := false
        else
          let i = pending.(p) in
          match compile t rqs.(i) with
          | pr -> results.(i) <- Some pr
          | exception e -> errors.(i) <- Some e
      done
    in
    let workers =
      max 0
        (min
           (Array.length pending - 1)
           (min (Runtime.max_domains - 1)
              (Domain.recommended_domain_count () - 1)))
    in
    if Array.length pending = 0 then ()
    else if workers = 0 then work 0
    else begin
      Runtime.Pool.dispatch ~workers work;
      let caller_error = (try work 0; None with e -> Some e) in
      let pool_error = Runtime.Pool.wait () in
      match (caller_error, pool_error) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end;
    (match Array.find_opt Option.is_some errors with
    | Some (Some e) -> raise e
    | _ -> ());
    Array.to_list
      (Array.mapi
         (fun i k ->
           match results.(i) with
           | Some pr -> pr
           | None -> (
               match Hashtbl.find_opt owner k with
               | Some o when results.(o) <> None -> Option.get results.(o)
               | _ -> (
                   (* Duplicate of a key whose owner compiled it; the
                      memory tier now holds it. *)
                   match mem_lookup t k with
                   | Some pr -> pr
                   | None -> compile t rqs.(i))))
         keys)
  end

(** Find one kernel's compiled form in a cache value. *)
let find_kernel (pr : prepared) ~(name : string) : Interp.compiled option =
  List.assoc_opt name pr.pr_compiled

let find_art (pr : prepared) ~(name : string) : kernel_art option =
  List.find_opt (fun ka -> ka.ka_name = name) pr.pr_art.art_kernels

(* -- Maintenance ------------------------------------------------------------- *)

(** Number of artifacts in the on-disk tier. *)
let disk_size (t : t) : int =
  match t.dir with
  | None -> 0
  | Some dir ->
      if not (Sys.file_exists dir) then 0
      else
        Array.fold_left
          (fun acc f ->
            if Filename.check_suffix f ".art" then acc + 1 else acc)
          0 (Sys.readdir dir)

(** Drop both tiers (the autotune DB, which shares the directory, is kept). *)
let clear (t : t) : unit =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.tbl;
      t.tick <- 0);
  match t.dir with
  | None -> ()
  | Some dir ->
      if Sys.file_exists dir then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".art" || Filename.check_suffix f ".lock"
            then
              try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir)

let stats_line (t : t) : string =
  let s = t.stats in
  Printf.sprintf
    "cache: %d mem hit%s, %d disk hit%s, %d miss%s (%d in memory, %d on \
     disk, %d eviction%s)"
    s.st_mem_hits
    (if s.st_mem_hits = 1 then "" else "s")
    s.st_disk_hits
    (if s.st_disk_hits = 1 then "" else "s")
    s.st_misses
    (if s.st_misses = 1 then "" else "es")
    (mem_size t) (disk_size t) s.st_evictions
    (if s.st_evictions = 1 then "" else "s")
