(** Persistent autotune database.

    Maps (kernel, content hash, platform, launch geometry) to the winner of
    the paper's with_lm / without_lm race — plus the execution path and
    lane width the winner ran with — so "run both, keep the faster" (§V) is
    paid once fleet-wide and every later launch resolves the decision by
    lookup. [groverc autotune] populates it with min-of-N wall-clock
    timings; {!install_tuner} plugs it into {!Grover_ocl.Runtime.plan}.

    The file format is one tab-separated line per entry, human-greppable
    and merge-friendly; unparseable lines are skipped so mixed-version
    files degrade to fewer entries, not a crash.

    Since "atdb2", every entry carries its provenance ([tuned-by]):
    ["measured"] for wall-clock winners and ["predictor"] for decisions
    taken analytically by {!Grover_memsim.Predict.rank} without executing
    the losing versions. "atdb1" lines (which were always measured) still
    parse, as measured. *)

module Runtime = Grover_ocl.Runtime

let db_version = "atdb2"
let db_version_v1 = "atdb1"

(** Provenance values for {!entry.e_tuned_by}. *)
let tuned_by_measured = "measured"

let tuned_by_predictor = "predictor"

(** The platform tag for timings taken on the host interpreter (the only
    measurement source today; simulated platforms would record their
    [Platform.name]). *)
let host_platform = "host"

type entry = {
  e_kernel : string;
  e_khash : string;  (** {!Compile_cache.kernel_hash} of the kernel *)
  e_platform : string;
  e_global : int * int * int;
  e_local : int * int * int;
  e_version : string;  (** winner: "with_lm", "without_lm" or "promoted" *)
  e_path : string;  (** execution path the winner ran on *)
  e_lane_width : int;  (** lane width of the winner (1 = scalar) *)
  e_np : float;  (** normalized perf t_with / t_without (> 1 = gain) *)
  e_t_with : float;  (** best-of-N seconds, with_lm *)
  e_t_without : float;  (** best-of-N seconds, without_lm *)
  e_tuned_by : string;  (** provenance: {!tuned_by_measured} or {!tuned_by_predictor} *)
}

type t = {
  file : string;
  mutable entries : entry list;  (** newest first *)
  mutex : Mutex.t;
}

(* -- Serialization ---------------------------------------------------------- *)

let dims_to_string (x, y, z) = Printf.sprintf "%d,%d,%d" x y z

let dims_of_string s =
  match String.split_on_char ',' s with
  | [ x; y; z ] -> (int_of_string x, int_of_string y, int_of_string z)
  | _ -> failwith "bad dims"

let entry_to_line (e : entry) : string =
  String.concat "\t"
    [
      db_version;
      e.e_kernel;
      e.e_khash;
      e.e_platform;
      dims_to_string e.e_global;
      dims_to_string e.e_local;
      e.e_version;
      e.e_path;
      string_of_int e.e_lane_width;
      Printf.sprintf "%.6f" e.e_np;
      Printf.sprintf "%.9f" e.e_t_with;
      Printf.sprintf "%.9f" e.e_t_without;
      e.e_tuned_by;
    ]

let entry_of_fields ~tuned_by kernel khash platform global local version path
    lw np tw two : entry option =
  try
    Some
      {
        e_kernel = kernel;
        e_khash = khash;
        e_platform = platform;
        e_global = dims_of_string global;
        e_local = dims_of_string local;
        e_version = version;
        e_path = path;
        e_lane_width = int_of_string lw;
        e_np = float_of_string np;
        e_t_with = float_of_string tw;
        e_t_without = float_of_string two;
        e_tuned_by = tuned_by;
      }
  with _ -> None

let entry_of_line (line : string) : entry option =
  match String.split_on_char '\t' line with
  | [ v; kernel; khash; platform; global; local; version; path; lw; np;
      tw; two; tuned_by ]
    when v = db_version ->
      entry_of_fields ~tuned_by kernel khash platform global local version
        path lw np tw two
  | [ v; kernel; khash; platform; global; local; version; path; lw; np;
      tw; two ]
    when v = db_version_v1 ->
      (* atdb1 predates provenance; every entry came from a measurement. *)
      entry_of_fields ~tuned_by:tuned_by_measured kernel khash platform
        global local version path lw np tw two
  | _ -> None

(* -- Load / save ------------------------------------------------------------ *)

(** The DB file inside a cache directory (shared with the compile cache's
    artifacts). *)
let default_file ~(cache_dir : string) : string =
  Filename.concat cache_dir "autotune.db"

let load (file : string) : t =
  let entries =
    if not (Sys.file_exists file) then []
    else begin
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> (
                match entry_of_line line with
                | Some e -> go (e :: acc)
                | None -> go acc)
            | exception End_of_file -> acc
          in
          go [])
    end
  in
  { file; entries; mutex = Mutex.create () }

let save (t : t) : unit =
  Mutex.protect t.mutex (fun () ->
      let dir = Filename.dirname t.file in
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let tmp = Printf.sprintf "%s.tmp.%d" t.file (Unix.getpid ()) in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          List.iter
            (fun e ->
              output_string oc (entry_to_line e);
              output_char oc '\n')
            (List.rev t.entries));
      Sys.rename tmp t.file)

let entries (t : t) : entry list =
  Mutex.protect t.mutex (fun () -> List.rev t.entries)

let size (t : t) : int =
  Mutex.protect t.mutex (fun () -> List.length t.entries)

(** (measured, predictor-sourced) entry counts, for [groverc cache stats]. *)
let provenance_counts (t : t) : int * int =
  Mutex.protect t.mutex (fun () ->
      List.fold_left
        (fun (m, p) e ->
          if e.e_tuned_by = tuned_by_predictor then (m, p + 1) else (m + 1, p))
        (0, 0) t.entries)

(* -- Record / lookup -------------------------------------------------------- *)

let same_site (a : entry) ~kernel ~platform ~global ~local : bool =
  a.e_kernel = kernel && a.e_platform = platform && a.e_global = global
  && a.e_local = local

(** Insert or replace the entry for this (kernel, platform, geometry)
    site. In memory only; call {!save} to persist. *)
let record (t : t) (e : entry) : unit =
  Mutex.protect t.mutex (fun () ->
      t.entries <-
        e
        :: List.filter
             (fun o ->
               not
                 (same_site o ~kernel:e.e_kernel ~platform:e.e_platform
                    ~global:e.e_global ~local:e.e_local))
             t.entries)

(** Exact-site lookup. When [khash] is given, a stale entry (recorded for
    a different version of the kernel's source) does not match. *)
let lookup (t : t) ~(kernel : string) ?khash
    ?(platform = host_platform) ~(global : int * int * int)
    ~(local : int * int * int) () : entry option =
  Mutex.protect t.mutex (fun () ->
      List.find_opt
        (fun e ->
          same_site e ~kernel ~platform ~global ~local
          && match khash with None -> true | Some h -> e.e_khash = h)
        t.entries)

let tuned_of_entry (e : entry) : Runtime.tuned =
  {
    Runtime.tn_version = e.e_version;
    tn_path = Runtime.path_of_string e.e_path;
    tn_lane_width = (if e.e_lane_width >= 1 then Some e.e_lane_width else None);
  }

(** Install this DB as the runtime's tuner: {!Grover_ocl.Runtime.plan}
    then resolves the execution path for a (kernel name, geometry) site
    from the recorded winner, and drivers resolve version / lane width via
    [Runtime.lookup_tuned] — no measurement, no double execution. Entries
    recorded for a different kernel source under the same name are ignored
    when the caller provides [khash_of] (kernel name -> current content
    hash). *)
let install_tuner ?(khash_of : (string -> string option) option) (t : t) : unit
    =
  Runtime.set_tuner (fun ~name ~cfg ->
      let khash = match khash_of with None -> None | Some f -> f name in
      lookup t ~kernel:name ?khash ~global:cfg.Runtime.global
        ~local:cfg.Runtime.local ()
      |> Option.map tuned_of_entry)

let clear_tuner = Runtime.clear_tuner
