(** Dominator tree and dominance frontiers.

    Implements the Cooper–Harvey–Kennedy iterative algorithm over the
    reverse postorder from {!Cfg}. Needed by mem2reg (phi placement) and by
    the verifier (SSA def-dominates-use check). *)

open Ssa

type t = {
  cfg : Cfg.t;
  idom : int array;  (** immediate dominator, as rpo index; entry maps to itself *)
  children : int list array;  (** dominator-tree children *)
  frontier : int list array;  (** dominance frontier per rpo index *)
}

let compute_idom (cfg : Cfg.t) : int array =
  let n = Cfg.n_blocks cfg in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while !f1 > !f2 do
        f1 := idom.(!f1)
      done;
      while !f2 > !f1 do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        List.filter_map
          (fun p ->
            let j = Cfg.rpo_index cfg p in
            if idom.(j) >= 0 then Some j else None)
          cfg.preds.(i)
      in
      match preds with
      | [] -> ()
      | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
    done
  done;
  idom

let compute (fn : func) : t =
  let cfg = Cfg.compute fn in
  let n = Cfg.n_blocks cfg in
  let idom = compute_idom cfg in
  let children = Array.make n [] in
  for i = 1 to n - 1 do
    if idom.(i) >= 0 then children.(idom.(i)) <- i :: children.(idom.(i))
  done;
  let frontier = Array.make n [] in
  for i = 0 to n - 1 do
    let preds = cfg.preds.(i) in
    if List.length preds >= 2 then
      List.iter
        (fun p ->
          let runner = ref (Cfg.rpo_index cfg p) in
          while !runner <> idom.(i) do
            if not (List.mem i frontier.(!runner)) then
              frontier.(!runner) <- i :: frontier.(!runner);
            runner := idom.(!runner)
          done)
        preds
  done;
  { cfg; idom; children; frontier }

(** The dominator chain of [b]: entry first, [b] last (reflexive). *)
let dominators (t : t) (b : block) : block list =
  let rec up i acc =
    let acc = t.cfg.Cfg.order.(i) :: acc in
    if i = 0 then acc else up t.idom.(i) acc
  in
  up (Cfg.rpo_index t.cfg b) []

(** Does block [a] dominate block [b]? (Reflexive.) *)
let dominates (t : t) (a : block) (b : block) : bool =
  let ia = Cfg.rpo_index t.cfg a and ib = Cfg.rpo_index t.cfg b in
  let rec up i = if i = ia then true else if i = 0 then ia = 0 else up t.idom.(i) in
  up ib

(** Does the definition site of instruction [def] dominate the use of one of
    its values at instruction [use]? Instructions within a block are ordered
    by position; a phi use is attributed to the end of the incoming block by
    the caller. *)
let def_dominates_use (t : t) ~(def : instr) ~(use : instr) : bool =
  match (def.parent, use.parent) with
  | Some db, Some ub ->
      if db.bid <> ub.bid then dominates t db ub
      else begin
        (* Same block: def must appear strictly before use. *)
        let pos i =
          let rec go k = function
            | [] -> if Option.fold ~none:false ~some:(fun t -> t.iid = i.iid) db.term then k else -1
            | x :: _ when x.iid = i.iid -> k
            | _ :: rest -> go (k + 1) rest
          in
          go 0 db.instrs
        in
        pos def < pos use
      end
  | _ -> false
