(** Divergence analysis: which values and blocks can differ between the
    work-items of one work-group.

    Classic forward data-flow with control-dependence propagation:

    - seeds are [get_local_id]/[get_global_id] calls and every [Load]
      (memory contents are per-work-item in general — conservative);
    - kernel arguments, constants, and launch-geometry builtins
      ([get_group_id], [get_local_size], ...) are uniform *within a group*,
      which is the scope that matters for barriers and local-memory races;
    - a conditional branch on a divergent value makes every block strictly
      between the branch and its immediate post-dominator
      control-divergent (work-items disagree on whether to execute it),
      and phis at the join merge values from divergent paths.

    The whole analysis runs to a fixpoint, so divergence feeding back
    through phis and nested branches is handled.

    Lives in [Grover_ir] (rather than the analysis library that consumes
    it for race/barrier checking) because barrier-region formation
    ({!Regions}) needs the same uniformity facts at kernel-compile time. *)

module H = Hashtbl

type t = {
  div_value : (int, unit) H.t;  (** iid of instructions with divergent results *)
  div_block : (int, unit) H.t;  (** bid of control-divergent blocks *)
  join_block : (int, unit) H.t;  (** bid of blocks joining divergent paths *)
}

let value_divergent (t : t) (v : Ssa.value) : bool =
  match v with Ssa.Vinstr i -> H.mem t.div_value i.iid | _ -> false

(** Group-uniformity, the complement used by the lane-batched executor:
    constants, kernel arguments and launch-geometry builtins are the same
    for every work-item of a group; an instruction result is uniform iff
    the fixpoint never marked it divergent. *)
let value_uniform (t : t) (v : Ssa.value) : bool = not (value_divergent t v)

let iid_divergent (t : t) (iid : int) : bool = H.mem t.div_value iid

(** Work-items of one group may disagree on whether they execute [b]. *)
let block_divergent (t : t) (b : Ssa.block) : bool = H.mem t.div_block b.bid

let divergent_call (callee : string) : bool =
  callee = "get_local_id" || callee = "get_global_id"

let compute (fn : Ssa.func) : t =
  let t =
    { div_value = H.create 64; div_block = H.create 16; join_block = H.create 16 }
  in
  let cfg = Cfg.compute fn in
  let pd = Postdom.compute fn in
  let changed = ref true in
  let mark tbl key = if not (H.mem tbl key) then begin H.add tbl key (); changed := true end in
  (* Influence region of a divergent branch at [x]: all blocks on paths
     from the successors of [x] up to, but excluding, ipdom(x). A fresh
     visited set per branch — a shared one would stop a later branch with
     a larger region too early. *)
  let mark_region (x : Ssa.block) : unit =
    let stop_bid =
      match Postdom.immediate pd x with
      | Some j ->
          mark t.join_block j.bid;
          j.bid
      | None -> -1
    in
    let seen = H.create 16 in
    let rec dfs b =
      if b.Ssa.bid <> stop_bid && not (H.mem seen b.Ssa.bid) then begin
        H.add seen b.Ssa.bid ();
        mark t.div_block b.Ssa.bid;
        List.iter dfs (Ssa.successors b)
      end
    in
    List.iter dfs (Ssa.successors x)
  in
  while !changed do
    changed := false;
    Ssa.iter_instrs
      (fun i ->
        if not (H.mem t.div_value i.iid) then
          let div =
            match i.op with
            | Ssa.Call { callee; args; _ } ->
                divergent_call callee || List.exists (value_divergent t) args
            | Ssa.Load _ -> true
            | Ssa.Phi p ->
                (match i.parent with
                | Some b -> H.mem t.div_block b.bid || H.mem t.join_block b.bid
                | None -> true)
                || List.exists (fun (_, v) -> value_divergent t v) p.incoming
            | op -> List.exists (value_divergent t) (Ssa.operands op)
          in
          if div then mark t.div_value i.iid)
      fn;
    List.iter
      (fun b ->
        if Cfg.is_reachable cfg b then
          match b.Ssa.term with
          | Some { op = Ssa.Cond_br (c, _, _); _ } when value_divergent t c ->
              mark_region b
          | _ -> ())
      fn.Ssa.blocks
  done;
  t
