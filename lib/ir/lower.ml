(** AST -> IR lowering with integrated type checking.

    Follows the classic Clang recipe: every source variable gets a private
    alloca slot and every read/write goes through memory; the mem2reg pass
    then promotes slots to SSA registers. [__local] arrays become
    local-space allocas — the objects Grover later eliminates. *)

open Grover_clc
module A = Ast
open Ssa

type binding =
  | Slot of { ptr : value; ast_ty : A.ty }  (** private scalar/vector slot *)
  | Arr of { ptr : value; ast_ty : A.ty }  (** array alloca; ast_ty is the full array type *)
  | Ptr_arg of { v : value; ast_ty : A.ty }  (** pointer parameter *)
  | Named_const of int  (** e.g. CLK_LOCAL_MEM_FENCE *)

type env = {
  fn : func;
  bld : Builder.t;
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable loop_stack : (block * block) list;  (** (continue target, break target) *)
}

module Diag = Grover_support.Diag

let err loc fmt = Loc.errorf loc fmt

(* Internal invariant violations (not user errors): a structured Diag
   instead of a bare invalid_arg, so drivers print a located diagnostic
   and exit instead of dumping a backtrace. *)
let bug fmt = Diag.fatalf ~pass:"lower" fmt

(* -- Type mapping --------------------------------------------------------- *)

let ir_scalar = function
  | A.Bool -> I8
  | A.Char | A.UChar -> I8
  | A.Short | A.UShort -> I16
  | A.Int | A.UInt -> I32
  | A.Long | A.ULong -> I64
  | A.Float -> F32

let ir_space = function
  | A.Global -> Global
  | A.Local -> Local
  | A.Constant -> Constant
  | A.Private -> Private

let rec ir_ty (t : A.ty) : ty =
  match t with
  | A.Void -> Void
  | A.Scalar s -> ir_scalar s
  | A.Vector (s, n) -> Vec (ir_scalar s, n)
  | A.Ptr (sp, elem) -> Ptr (ir_space sp, ir_ty elem)
  | A.Array (elem, _) -> ir_ty (Sema.elem_type (A.Array (elem, 0)))

let ast_is_signed = function
  | A.Scalar s | A.Vector (s, _) -> Sema.is_signed s
  | _ -> false

(* -- Scope handling ------------------------------------------------------- *)

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> bug "pop_scope on empty stack"

let bind env loc name b =
  match env.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope name then err loc "redeclaration of %s" name
      else Hashtbl.add scope name b
  | [] -> bug "no scope open at %a binding %s" Loc.pp loc name

let lookup env name : binding option =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some b -> Some b
        | None -> go rest)
  in
  go env.scopes

(* -- Allocas (always in the entry block, before any control flow) -------- *)

let add_alloca ?dims ?(name = "") env (aspace : space) (elem : ty) (count : int)
    : value =
  let dims = match dims with Some d -> d | None -> [ count ] in
  let i = fresh_instr (Alloca { aspace; elem; count; dims; aname = name }) in
  let e = entry env.fn in
  i.parent <- Some e;
  (* Keep allocas grouped at the top of the entry block. *)
  let rec ins = function
    | ({ op = Alloca _; _ } as a) :: rest -> a :: ins rest
    | rest -> i :: rest
  in
  e.instrs <- ins e.instrs;
  Vinstr i

(* -- Conversions ---------------------------------------------------------- *)

(* Convert [v] (of AST type [src]) to AST type [dst]. *)
let rec convert env loc ~(src : A.ty) ~(dst : A.ty) (v : value) : value =
  if src = dst then v
  else
    let b = env.bld in
    match (src, dst) with
    | A.Scalar s1, A.Scalar s2 -> (
        let t1 = ir_scalar s1 and t2 = ir_scalar s2 in
        match (s1, s2) with
        | A.Float, A.Float -> v
        | A.Float, _ -> Builder.cast b Fp_to_si v t2
        | _, A.Float ->
            let kind = if Sema.is_signed s1 then Si_to_fp else Ui_to_fp in
            Builder.cast b kind v F32
        | _ ->
            let b1 = ty_bits t1 and b2 = ty_bits t2 in
            if b1 = b2 then v
            else if b2 < b1 then Builder.cast b Trunc v t2
            else if Sema.is_signed s1 then Builder.cast b Sext v t2
            else Builder.cast b Zext v t2)
    | A.Scalar s, A.Vector (s', n) ->
        let scalar = convert env loc ~src ~dst:(A.Scalar s') v in
        ignore s;
        Builder.vecbuild b (Vec (ir_scalar s', n)) (List.init n (fun _ -> scalar))
    | A.Vector (s1, n1), A.Vector (s2, n2) when n1 = n2 ->
        if s1 = s2 then v
        else
          (* Lane-wise conversion via extract/convert/insert chain. *)
          let lanes =
            List.init n1 (fun i ->
                let e = Builder.extract b v (Builder.i32 i) in
                convert env loc ~src:(A.Scalar s1) ~dst:(A.Scalar s2) e)
          in
          Builder.vecbuild b (Vec (ir_scalar s2, n1)) lanes
    | A.Array (elem, _), A.Ptr (_, elem') when elem = elem' -> v
    | _ ->
        err loc "cannot convert %s to %s" (A.ty_name src) (A.ty_name dst)

(* -- AST-level constant evaluation (for barrier flags, array dims) ------- *)

let rec const_eval env (e : A.expr) : int option =
  match e.A.desc with
  | A.Int_lit n -> Some n
  | A.Ident name -> (
      match lookup env name with
      | Some (Named_const n) -> Some n
      | _ -> None)
  | A.Binop (op, a, b) -> (
      match (const_eval env a, const_eval env b) with
      | Some x, Some y -> (
          match op with
          | A.Add -> Some (x + y)
          | A.Sub -> Some (x - y)
          | A.Mul -> Some (x * y)
          | A.Div -> if y = 0 then None else Some (x / y)
          | A.Rem -> if y = 0 then None else Some (x mod y)
          | A.Shl -> Some (x lsl y)
          | A.Shr -> Some (x asr y)
          | A.BAnd -> Some (x land y)
          | A.BOr -> Some (x lor y)
          | A.BXor -> Some (x lxor y)
          | _ -> None)
      | _ -> None)
  | A.Unop (A.Neg, a) -> Option.map (fun x -> -x) (const_eval env a)
  | A.Cast (_, a) -> const_eval env a
  | _ -> None

(* -- Places (lvalues) ----------------------------------------------------- *)

type place = {
  pl_base : value;  (** pointer the access goes through *)
  pl_index : value;  (** element index (I32), in units of [pl_ty] *)
  pl_ty : A.ty;  (** AST type stored at this place (may still be an array) *)
  pl_lane : int option;  (** vector component, if a .x-style access *)
}

let mul_index env a b =
  match (a, b) with
  | Cint (I32, x), Cint (I32, y) -> Builder.i32 (x * y)
  | _ -> Builder.binop env.bld Mul a b

let add_index env a b =
  match (a, b) with
  | Cint (I32, 0), v | v, Cint (I32, 0) -> v
  | Cint (I32, x), Cint (I32, y) -> Builder.i32 (x + y)
  | _ -> Builder.binop env.bld Add a b

let rec lower_place env (e : A.expr) : place =
  match e.A.desc with
  | A.Ident name -> (
      match lookup env name with
      | Some (Slot { ptr; ast_ty }) ->
          { pl_base = ptr; pl_index = Builder.i32 0; pl_ty = ast_ty; pl_lane = None }
      | Some (Arr { ptr; ast_ty }) ->
          { pl_base = ptr; pl_index = Builder.i32 0; pl_ty = ast_ty; pl_lane = None }
      | Some (Ptr_arg _) -> err e.A.loc "%s is a pointer, not an lvalue" name
      | Some (Named_const _) -> err e.A.loc "%s is a constant" name
      | None -> err e.A.loc "unknown variable %s" name)
  | A.Index (arr, idx) -> (
      let idx_ty, idx_v = lower_expr env idx in
      let idx_v = convert env idx.A.loc ~src:idx_ty ~dst:(A.Scalar A.Int) idx_v in
      match arr.A.desc with
      | A.Ident name when (match lookup env name with Some (Ptr_arg _) -> true | _ -> false) -> (
          match lookup env name with
          | Some (Ptr_arg { v; ast_ty = A.Ptr (_, elem) }) ->
              { pl_base = v; pl_index = idx_v; pl_ty = elem; pl_lane = None }
          | _ -> assert false)
      | _ -> (
          let p = lower_place env arr in
          match p.pl_ty with
          | A.Array (inner, _) ->
              let stride = Sema.array_length inner in
              let contrib = mul_index env idx_v (Builder.i32 stride) in
              { p with pl_index = add_index env p.pl_index contrib; pl_ty = inner }
          | A.Ptr (_, elem) ->
              (* A pointer stored in a slot: load it, then index. *)
              let ptr_v = Builder.load env.bld p.pl_base p.pl_index in
              { pl_base = ptr_v; pl_index = idx_v; pl_ty = elem; pl_lane = None }
          | t -> err e.A.loc "cannot index a value of type %s" (A.ty_name t)))
  | A.Member (base, field) -> (
      let p = lower_place env base in
      match (p.pl_ty, p.pl_lane) with
      | A.Vector (s, n), None ->
          let lane = Sema.component_index e.A.loc ~width:n field in
          { p with pl_ty = A.Scalar s; pl_lane = Some lane }
      | _ -> err e.A.loc "component access on a non-vector")
  | _ -> err e.A.loc "expression is not an lvalue"

and load_place env loc (p : place) : A.ty * value =
  (match p.pl_ty with
  | A.Array _ -> err loc "cannot read a whole array"
  | _ -> ());
  match p.pl_lane with
  | None -> (p.pl_ty, Builder.load env.bld p.pl_base p.pl_index)
  | Some lane ->
      let vec = Builder.load env.bld p.pl_base p.pl_index in
      (p.pl_ty, Builder.extract env.bld vec (Builder.i32 lane))

and store_place env loc (p : place) ~(src_ty : A.ty) (v : value) : value =
  match p.pl_lane with
  | None ->
      let v = convert env loc ~src:src_ty ~dst:p.pl_ty v in
      Builder.store env.bld p.pl_base p.pl_index v;
      v
  | Some lane ->
      let v = convert env loc ~src:src_ty ~dst:p.pl_ty v in
      let old = Builder.load env.bld p.pl_base p.pl_index in
      let updated = Builder.insert env.bld old (Builder.i32 lane) v in
      Builder.store env.bld p.pl_base p.pl_index updated;
      v

(* -- Expressions ----------------------------------------------------------- *)

and truth_value env loc (ty, v) : value =
  match type_of v with
  | I1 -> v
  | t when ty_is_integer t -> Builder.icmp env.bld Ine v (Cint (t, 0))
  | F32 -> Builder.fcmp env.bld Fone v (Cfloat 0.0)
  | _ -> err loc "cannot use %s as a condition" (A.ty_name ty)

and as_int_bool env (v : value) : value =
  (* Comparisons produce i1; C expressions need int 0/1. *)
  Builder.cast env.bld Zext v I32

and lower_binop env loc op (lt, lv) (rt, rv) : A.ty * value =
  match op with
  | A.LAnd | A.LOr ->
      let lb = truth_value env loc (lt, lv) and rb = truth_value env loc (rt, rv) in
      let ir_op = if op = A.LAnd then And else Or in
      let r = Builder.binop env.bld ir_op lb rb in
      (A.Scalar A.Int, as_int_bool env r)
  | _ -> (
      let common = Sema.usual_conversions loc lt rt in
      let result_ty = Sema.binop_result loc op common in
      let lv = convert env loc ~src:lt ~dst:common lv in
      let rv = convert env loc ~src:rt ~dst:common rv in
      let signed = ast_is_signed common in
      let is_f = Sema.is_float_based common in
      match op with
      | A.Add -> (result_ty, Builder.binop env.bld (if is_f then Fadd else Add) lv rv)
      | A.Sub -> (result_ty, Builder.binop env.bld (if is_f then Fsub else Sub) lv rv)
      | A.Mul -> (result_ty, Builder.binop env.bld (if is_f then Fmul else Mul) lv rv)
      | A.Div ->
          ( result_ty,
            Builder.binop env.bld
              (if is_f then Fdiv else if signed then Sdiv else Udiv)
              lv rv )
      | A.Rem ->
          ( result_ty,
            Builder.binop env.bld
              (if is_f then Frem else if signed then Srem else Urem)
              lv rv )
      | A.Shl -> (result_ty, Builder.binop env.bld Shl lv rv)
      | A.Shr ->
          (result_ty, Builder.binop env.bld (if signed then Ashr else Lshr) lv rv)
      | A.BAnd -> (result_ty, Builder.binop env.bld And lv rv)
      | A.BOr -> (result_ty, Builder.binop env.bld Or lv rv)
      | A.BXor -> (result_ty, Builder.binop env.bld Xor lv rv)
      | A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne ->
          let r =
            if is_f then
              let c =
                match op with
                | A.Lt -> Folt | A.Gt -> Fogt | A.Le -> Fole | A.Ge -> Foge
                | A.Eq -> Foeq | _ -> Fone
              in
              Builder.fcmp env.bld c lv rv
            else
              let c =
                match (op, signed) with
                | A.Lt, true -> Islt | A.Lt, false -> Iult
                | A.Gt, true -> Isgt | A.Gt, false -> Iugt
                | A.Le, true -> Isle | A.Le, false -> Iule
                | A.Ge, true -> Isge | A.Ge, false -> Iuge
                | A.Eq, _ -> Ieq | _ -> Ine
              in
              Builder.icmp env.bld c lv rv
          in
          (A.Scalar A.Int, as_int_bool env r)
      | A.LAnd | A.LOr -> assert false)

and lower_call env loc name (args : A.expr list) : A.ty * value =
  if name = "barrier" then begin
    let flags =
      match args with
      | [ a ] -> (
          match const_eval env a with
          | Some f -> f
          | None -> 3 (* unknown flags: conservatively fence both *))
      | _ -> err loc "barrier expects one argument"
    in
    Builder.barrier env.bld ~blocal:(flags land 1 <> 0) ~bglobal:(flags land 2 <> 0);
    (A.Void, Cint (I32, 0))
  end
  else begin
    let lowered = List.map (fun a -> (a.A.loc, lower_expr env a)) args in
    let arg_tys = List.map (fun (_, (t, _)) -> t) lowered in
    let ret = Sema.builtin_result loc name arg_tys in
    match Builtins.category name with
    | Some Builtins.Work_item ->
        let v =
          match lowered with
          | [ (al, (t, v)) ] -> convert env al ~src:t ~dst:(A.Scalar A.Int) v
          | _ -> err loc "%s expects one argument" name
        in
        (A.Scalar A.Int, Builder.call env.bld name [ v ] I32)
    | Some Builtins.Work_dim -> (A.Scalar A.Int, Builder.call env.bld name [] I32)
    | Some _ ->
        (* Generic builtins: convert every argument to the result type,
           except [dot]'s which stay vectors while the result is scalar. *)
        let target = if name = "dot" then List.hd arg_tys else ret in
        let vs =
          List.map (fun (al, (t, v)) -> convert env al ~src:t ~dst:target v) lowered
        in
        (ret, Builder.call env.bld name vs (ir_ty ret))
    | None -> err loc "unknown function %s" name
  end

and lower_expr env (e : A.expr) : A.ty * value =
  Builder.set_loc env.bld e.A.loc;
  match e.A.desc with
  | A.Int_lit n -> (A.Scalar A.Int, Builder.i32 n)
  | A.Float_lit f -> (A.Scalar A.Float, Builder.f32 f)
  | A.Ident name -> (
      match lookup env name with
      | Some (Slot _ | Arr _) -> load_place env e.A.loc (lower_place env e)
      | Some (Ptr_arg { v; ast_ty }) -> (ast_ty, v)
      | Some (Named_const n) -> (A.Scalar A.Int, Builder.i32 n)
      | None -> err e.A.loc "unknown variable %s" name)
  | A.Binop (op, a, b) ->
      let la = lower_expr env a and lb = lower_expr env b in
      lower_binop env e.A.loc op la lb
  | A.Unop (A.Neg, a) -> (
      let t, v = lower_expr env a in
      match t with
      | A.Scalar A.Float | A.Vector (A.Float, _) ->
          (t, Builder.binop env.bld Fsub (zero_of env t) v)
      | A.Scalar _ | A.Vector _ -> (t, Builder.binop env.bld Sub (zero_of env t) v)
      | _ -> err e.A.loc "cannot negate %s" (A.ty_name t))
  | A.Unop (A.Not, a) ->
      let la = lower_expr env a in
      let b = truth_value env e.A.loc la in
      let inv = Builder.binop env.bld Xor b (Cint (I1, 1)) in
      (A.Scalar A.Int, as_int_bool env inv)
  | A.Unop (A.BNot, a) -> (
      let t, v = lower_expr env a in
      match type_of v with
      | (I8 | I16 | I32 | I64) as it ->
          (t, Builder.binop env.bld Xor v (Cint (it, -1)))
      | _ -> err e.A.loc "operator ~ needs an integer")
  | A.Assign (lhs, rhs) ->
      let rt, rv = lower_expr env rhs in
      let p = lower_place env lhs in
      let v = store_place env e.A.loc p ~src_ty:rt rv in
      (p.pl_ty, v)
  | A.Index _ | A.Member _ -> (
      match e.A.desc with
      | A.Member (base, field) when not (is_lvalue env base) ->
          (* Component of a temporary vector value. *)
          let t, v = lower_expr env base in
          (match t with
          | A.Vector (s, n) ->
              let lane = Sema.component_index e.A.loc ~width:n field in
              (A.Scalar s, Builder.extract env.bld v (Builder.i32 lane))
          | _ -> err e.A.loc "component access on non-vector")
      | _ -> load_place env e.A.loc (lower_place env e))
  | A.Call (name, args) -> lower_call env e.A.loc name args
  | A.Cast (t, a) ->
      let src, v = lower_expr env a in
      (t, convert env e.A.loc ~src ~dst:t v)
  | A.Vec_lit (t, elems) -> (
      match t with
      | A.Vector (s, n) ->
          if List.length elems <> n then
            err e.A.loc "vector literal arity mismatch for %s" (A.ty_name t);
          let vs =
            List.map
              (fun el ->
                let et, ev = lower_expr env el in
                convert env el.A.loc ~src:et ~dst:(A.Scalar s) ev)
              elems
          in
          (t, Builder.vecbuild env.bld (Vec (ir_scalar s, n)) vs)
      | _ -> err e.A.loc "vector literal of non-vector type")
  | A.Cond (c, a, b) ->
      let lc = lower_expr env c in
      let cb = truth_value env e.A.loc lc in
      let ta, va = lower_expr env a in
      let tb, vb = lower_expr env b in
      let common = Sema.usual_conversions e.A.loc ta tb in
      let va = convert env a.A.loc ~src:ta ~dst:common va in
      let vb = convert env b.A.loc ~src:tb ~dst:common vb in
      (common, Builder.select env.bld cb va vb)
  | A.Pre_incr (up, a) ->
      let p = lower_place env a in
      let t, old = load_place env e.A.loc p in
      let newer = incr_value env e.A.loc t old up in
      ignore (store_place env e.A.loc p ~src_ty:t newer);
      (t, newer)
  | A.Post_incr (up, a) ->
      let p = lower_place env a in
      let t, old = load_place env e.A.loc p in
      let newer = incr_value env e.A.loc t old up in
      ignore (store_place env e.A.loc p ~src_ty:t newer);
      (t, old)

and is_lvalue env (e : A.expr) : bool =
  match e.A.desc with
  | A.Ident name -> (
      match lookup env name with Some (Slot _ | Arr _) -> true | _ -> false)
  | A.Index _ -> true
  | A.Member (b, _) -> is_lvalue env b
  | _ -> false

and zero_of env (t : A.ty) : value =
  match t with
  | A.Scalar A.Float -> Builder.f32 0.0
  | A.Scalar s -> Cint (ir_scalar s, 0)
  | A.Vector (s, n) ->
      let z = if s = A.Float then Builder.f32 0.0 else Cint (ir_scalar s, 0) in
      Builder.vecbuild env.bld (Vec (ir_scalar s, n)) (List.init n (fun _ -> z))
  | _ -> bug "zero_of: no zero for type %s" (A.ty_name t)

and incr_value env loc t v up =
  match t with
  | A.Scalar A.Float ->
      Builder.binop env.bld (if up then Fadd else Fsub) v (Builder.f32 1.0)
  | A.Scalar s ->
      Builder.binop env.bld (if up then Add else Sub) v (Cint (ir_scalar s, 1))
  | _ -> err loc "++/-- on non-scalar"

(* -- Statements ------------------------------------------------------------ *)

let rec lower_stmt env (s : A.stmt) : unit =
  Builder.set_loc env.bld s.A.s_loc;
  if Builder.is_terminated env.bld then begin
    (* Code after return/break: emit into a fresh dead block, pruned later. *)
    let b = Builder.new_block env.bld "dead" in
    Builder.set_block env.bld b
  end;
  match s.A.s_desc with
  | A.Sdecl d -> lower_decl env d
  | A.Sexpr e -> ignore (lower_expr env e)
  | A.Sblock body ->
      push_scope env;
      List.iter (lower_stmt env) body;
      pop_scope env
  | A.Sif (c, then_s, else_s) ->
      let lc = lower_expr env c in
      let cb = truth_value env s.A.s_loc lc in
      let then_b = Builder.new_block env.bld "then" in
      let join_b = Builder.new_block env.bld "endif" in
      let else_b =
        match else_s with
        | Some _ -> Builder.new_block env.bld "else"
        | None -> join_b
      in
      Builder.cond_br env.bld cb then_b else_b;
      Builder.set_block env.bld then_b;
      lower_stmt env then_s;
      if not (Builder.is_terminated env.bld) then Builder.br env.bld join_b;
      (match else_s with
      | Some es ->
          Builder.set_block env.bld else_b;
          lower_stmt env es;
          if not (Builder.is_terminated env.bld) then Builder.br env.bld join_b
      | None -> ());
      Builder.set_block env.bld join_b
  | A.Sfor (init, cond, step, body) ->
      push_scope env;
      (match init with Some i -> lower_stmt env i | None -> ());
      let header = Builder.new_block env.bld "for.cond" in
      let body_b = Builder.new_block env.bld "for.body" in
      let step_b = Builder.new_block env.bld "for.step" in
      let exit_b = Builder.new_block env.bld "for.end" in
      Builder.br env.bld header;
      Builder.set_block env.bld header;
      (match cond with
      | Some c ->
          let lc = lower_expr env c in
          let cb = truth_value env s.A.s_loc lc in
          Builder.cond_br env.bld cb body_b exit_b
      | None -> Builder.br env.bld body_b);
      env.loop_stack <- (step_b, exit_b) :: env.loop_stack;
      Builder.set_block env.bld body_b;
      lower_stmt env body;
      if not (Builder.is_terminated env.bld) then Builder.br env.bld step_b;
      Builder.set_block env.bld step_b;
      (match step with Some e -> ignore (lower_expr env e) | None -> ());
      Builder.br env.bld header;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.set_block env.bld exit_b;
      pop_scope env
  | A.Swhile (cond, body) ->
      let header = Builder.new_block env.bld "while.cond" in
      let body_b = Builder.new_block env.bld "while.body" in
      let exit_b = Builder.new_block env.bld "while.end" in
      Builder.br env.bld header;
      Builder.set_block env.bld header;
      let lc = lower_expr env cond in
      let cb = truth_value env s.A.s_loc lc in
      Builder.cond_br env.bld cb body_b exit_b;
      env.loop_stack <- (header, exit_b) :: env.loop_stack;
      Builder.set_block env.bld body_b;
      lower_stmt env body;
      if not (Builder.is_terminated env.bld) then Builder.br env.bld header;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.set_block env.bld exit_b
  | A.Sdo (body, cond) ->
      let body_b = Builder.new_block env.bld "do.body" in
      let cond_b = Builder.new_block env.bld "do.cond" in
      let exit_b = Builder.new_block env.bld "do.end" in
      Builder.br env.bld body_b;
      env.loop_stack <- (cond_b, exit_b) :: env.loop_stack;
      Builder.set_block env.bld body_b;
      lower_stmt env body;
      if not (Builder.is_terminated env.bld) then Builder.br env.bld cond_b;
      Builder.set_block env.bld cond_b;
      let lc = lower_expr env cond in
      let cb = truth_value env s.A.s_loc lc in
      Builder.cond_br env.bld cb body_b exit_b;
      env.loop_stack <- List.tl env.loop_stack;
      Builder.set_block env.bld exit_b
  | A.Sreturn None -> Builder.ret env.bld
  | A.Sreturn (Some _) -> err s.A.s_loc "kernels cannot return a value"
  | A.Sbreak -> (
      match env.loop_stack with
      | (_, brk) :: _ -> Builder.br env.bld brk
      | [] -> err s.A.s_loc "break outside a loop")
  | A.Scontinue -> (
      match env.loop_stack with
      | (cont, _) :: _ -> Builder.br env.bld cont
      | [] -> err s.A.s_loc "continue outside a loop")

and lower_decl env (d : A.decl) : unit =
  let loc = d.A.d_loc in
  match d.A.d_ty with
  | A.Array (_, _) as arr_ty ->
      let elem = Sema.elem_type arr_ty in
      let count = Sema.array_length arr_ty in
      let rec shape = function
        | A.Array (inner, n) -> n :: shape inner
        | _ -> []
      in
      let space = ir_space d.A.d_space in
      if d.A.d_init <> None then
        err loc "array initialisers are not supported in the subset";
      let ptr =
        add_alloca ~dims:(shape arr_ty) ~name:d.A.d_name env space (ir_ty elem)
          count
      in
      bind env loc d.A.d_name (Arr { ptr; ast_ty = arr_ty })
  | A.Scalar _ | A.Vector _ | A.Ptr _ ->
      if d.A.d_space = A.Local then
        err loc "__local scalars are not supported; use an array";
      let ptr = add_alloca env Private (ir_ty d.A.d_ty) 1 in
      bind env loc d.A.d_name (Slot { ptr; ast_ty = d.A.d_ty });
      (match d.A.d_init with
      | Some e ->
          let t, v = lower_expr env e in
          let v = convert env loc ~src:t ~dst:d.A.d_ty v in
          Builder.store env.bld ptr (Builder.i32 0) v
      | None -> ())
  | A.Void -> err loc "cannot declare a void variable"

(* -- Kernels ---------------------------------------------------------------- *)

let lower_kernel (k : A.kernel) : func =
  let args =
    List.mapi
      (fun i (p : A.param) -> { a_index = i; a_name = p.A.p_name; a_ty = ir_ty p.A.p_ty })
      k.A.k_params
  in
  let fn, bld = Builder.create_function ~name:k.A.k_name ~args in
  let env = { fn; bld; scopes = []; loop_stack = [] } in
  push_scope env;
  List.iter
    (fun (name, v) -> bind env k.A.k_loc name (Named_const v))
    Builtins.predefined_constants;
  push_scope env;
  List.iter2
    (fun (p : A.param) (a : arg) ->
      match p.A.p_ty with
      | A.Ptr _ -> bind env p.A.p_loc p.A.p_name (Ptr_arg { v = Arg a; ast_ty = p.A.p_ty })
      | A.Scalar _ | A.Vector _ ->
          (* Parameters are mutable in C: give them a slot. *)
          let slot = add_alloca env Private (ir_ty p.A.p_ty) 1 in
          Builder.store env.bld slot (Builder.i32 0) (Arg a);
          bind env p.A.p_loc p.A.p_name (Slot { ptr = slot; ast_ty = p.A.p_ty })
      | t -> err p.A.p_loc "unsupported parameter type %s" (A.ty_name t))
    k.A.k_params fn.f_args;
  push_scope env;
  List.iter (lower_stmt env) k.A.k_body;
  if not (Builder.is_terminated env.bld) then Builder.ret env.bld;
  (* Terminate any dangling dead blocks so the verifier is happy. *)
  List.iter
    (fun b -> if b.term = None then set_term b (fresh_instr Ret))
    fn.blocks;
  Cfg.prune_unreachable fn;
  Verify.run fn;
  fn

let lower_program (p : A.program) : func list = List.map lower_kernel p.A.kernels

(** Front door: OpenCL C source -> IR functions. *)
let compile ?defines (src : string) : func list =
  lower_program (Parser.parse ?defines src)
