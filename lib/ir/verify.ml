(** Structural and SSA well-formedness checks. Passes call this after
    mutating a function; tests call it on everything they build. *)

open Ssa
module Loc = Grover_support.Loc

exception Invalid_ir of string

let fail fmt = Format.kasprintf (fun m -> raise (Invalid_ir m)) fmt

(* Same, but citing the source span the instruction was lowered from, so a
   broken pass points back at the OpenCL C construct involved. *)
let fail_at (loc : Loc.t) fmt =
  Format.kasprintf
    (fun m ->
      let m =
        if Loc.is_dummy loc then m
        else Format.asprintf "%s (from source %a)" m Loc.pp loc
      in
      raise (Invalid_ir m))
    fmt

let check_types (i : instr) : unit =
  let t v = type_of v in
  let fail fmt = fail_at i.iloc fmt in
  match i.op with
  | Binop (b, x, y) ->
      if t x <> t y then
        fail "binop %s: operand types differ (%s)" (Printer.binop_name b)
          (Format.asprintf "%a vs %a" Printer.pp_ty (t x) Printer.pp_ty (t y));
      if binop_is_float b && not (ty_is_float (t x)) then
        fail "float binop on non-float type";
      if (not (binop_is_float b)) && not (ty_is_integer (t x)) then
        fail "integer binop on non-integer type"
  | Icmp (_, x, y) ->
      if t x <> t y then fail "icmp: operand types differ";
      if not (ty_is_integer (t x)) then fail "icmp on non-integer"
  | Fcmp (_, x, y) ->
      if t x <> t y then fail "fcmp: operand types differ";
      if not (ty_is_float (t x)) then fail "fcmp on non-float"
  | Select (c, x, y) ->
      if t c <> I1 then fail "select condition must be i1";
      if t x <> t y then fail "select arms differ in type"
  | Load { ptr; index } ->
      (match t ptr with
      | Ptr _ -> ()
      | _ -> fail "load from non-pointer");
      if not (ty_is_integer (t index)) then fail "load index must be integer"
  | Store { ptr; index; v } ->
      (match t ptr with
      | Ptr (_, elem) ->
          if elem <> t v then
            fail "store type mismatch: %s into %s*"
              (Format.asprintf "%a" Printer.pp_ty (t v))
              (Format.asprintf "%a" Printer.pp_ty elem)
      | _ -> fail "store to non-pointer");
      if not (ty_is_integer (t index)) then fail "store index must be integer"
  | Extract (v, lane) ->
      (match t v with Vec _ -> () | _ -> fail "extract from non-vector");
      if not (ty_is_integer (t lane)) then fail "extract lane must be integer"
  | Insert (v, lane, s) -> (
      match t v with
      | Vec (e, _) ->
          if e <> t s then fail "insert scalar type mismatch";
          if not (ty_is_integer (t lane)) then fail "insert lane must be integer"
      | _ -> fail "insert into non-vector")
  | Vecbuild (ty, vs) -> (
      match ty with
      | Vec (e, n) ->
          if List.length vs <> n then fail "vecbuild arity mismatch";
          List.iter (fun v -> if t v <> e then fail "vecbuild element type") vs
      | _ -> fail "vecbuild of non-vector type")
  | Phi { incoming; p_ty } ->
      List.iter
        (fun (_, v) ->
          if t v <> p_ty then
            fail "phi incoming type %s differs from phi type %s"
              (Format.asprintf "%a" Printer.pp_ty (t v))
              (Format.asprintf "%a" Printer.pp_ty p_ty))
        incoming
  | Cond_br (c, _, _) -> if t c <> I1 then fail "cond_br condition must be i1"
  | Cast _ | Call _ | Alloca _ | Br _ | Ret | Barrier _ -> ()

let run (fn : func) : unit =
  (* Every block terminated; terminators only in terminator position. *)
  List.iter
    (fun b ->
      (match b.term with
      | None -> fail "block %s.%d lacks a terminator" b.b_name b.bid
      | Some t -> (
          match t.op with
          | Br _ | Cond_br _ | Ret -> ()
          | _ -> fail "block %s.%d has a non-terminator in tail position" b.b_name b.bid));
      List.iter
        (fun i ->
          match i.op with
          | Br _ | Cond_br _ | Ret ->
              fail "terminator in the middle of block %s.%d" b.b_name b.bid
          | _ -> ())
        b.instrs)
    fn.blocks;
  (* Instruction parents are consistent. *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.parent with
          | Some p when p.bid = b.bid -> ()
          | _ -> fail "instr %%v%d has a stale parent pointer" i.iid)
        (all_instrs b))
    fn.blocks;
  (* Phis: one entry per predecessor; phis lead their block. *)
  let dom = Dom.compute fn in
  List.iter
    (fun b ->
      if Cfg.is_reachable dom.Dom.cfg b then begin
        let preds = Cfg.preds dom.Dom.cfg b in
        let seen_non_phi = ref false in
        List.iter
          (fun i ->
            match i.op with
            | Phi { incoming; _ } ->
                if !seen_non_phi then
                  fail "phi %%v%d after non-phi instruction" i.iid;
                let have = List.map (fun (blk, _) -> blk.bid) incoming in
                List.iter
                  (fun p ->
                    if not (List.mem p.bid have) then
                      fail "phi %%v%d misses incoming from %s.%d" i.iid
                        p.b_name p.bid)
                  preds;
                if List.length incoming <> List.length preds then
                  fail "phi %%v%d has %d entries for %d predecessors" i.iid
                    (List.length incoming) (List.length preds)
            | _ -> seen_non_phi := true)
          b.instrs
      end)
    fn.blocks;
  (* Per-instruction typing. *)
  iter_instrs check_types fn;
  (* SSA: definitions dominate uses (phi uses checked at edge ends). *)
  iter_instrs
    (fun use ->
      match use.op with
      | Phi { incoming; _ } ->
          List.iter
            (fun (from, v) ->
              match v with
              | Vinstr def -> (
                  match (def.parent, ()) with
                  | Some db, () ->
                      if
                        Cfg.is_reachable dom.Dom.cfg db
                        && Cfg.is_reachable dom.Dom.cfg from
                        && not (Dom.dominates dom db from)
                      then
                        fail "phi %%v%d: %%v%d does not dominate edge from %s.%d"
                          use.iid def.iid from.b_name from.bid
                  | None, () -> fail "phi operand %%v%d is detached" def.iid)
              | _ -> ())
            incoming
      | _ ->
          List.iter
            (fun v ->
              match v with
              | Vinstr def ->
                  let reachable i =
                    match i.parent with
                    | Some b -> Cfg.is_reachable dom.Dom.cfg b
                    | None -> false
                  in
                  if reachable def && reachable use
                     && not (Dom.def_dominates_use dom ~def ~use) then
                    fail "use of %%v%d in %%v%d does not follow its definition"
                      def.iid use.iid
              | _ -> ())
            (operands use.op))
    fn
