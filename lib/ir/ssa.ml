(** The SSA intermediate representation.

    A deliberately LLVM/SPIR-shaped IR: typed SSA values, basic blocks with
    explicit terminators, phi nodes, address-space-qualified memory
    operations. Two simplifications keep the Grover analysis close to the
    paper's presentation:

    - memory operations are [base-pointer + element-index] pairs (a GEP
      folded into the access), so the index expression tree of paper §IV-B
      is literally the def-use chain of the [index] operand;
    - pointers are typed ([Ptr (space, elem)]), so loads know their width
      without a separate type table.

    Instructions are mutable records: transformation passes rewrite
    [op] fields in place and splice instruction lists, as in LLVM. *)

type space = Global | Local | Constant | Private

type ty =
  | Void
  | I1
  | I8
  | I16
  | I32
  | I64
  | F32
  | Vec of ty * int  (** element type is always a scalar *)
  | Ptr of space * ty

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | Shl | Ashr | Lshr | And | Or | Xor
  | Fadd | Fsub | Fmul | Fdiv | Frem

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast_kind =
  | Sext
  | Zext
  | Trunc
  | Si_to_fp
  | Ui_to_fp
  | Fp_to_si
  | Bitcast

type value =
  | Cint of ty * int  (** integer constant of the given integer type *)
  | Cfloat of float
  | Arg of arg
  | Vinstr of instr

and arg = { a_index : int; a_name : string; a_ty : ty }

and instr = {
  iid : int;  (** unique within a process; dense enough for arrays *)
  mutable op : opcode;
  mutable parent : block option;
  mutable iloc : Grover_support.Loc.t;
      (** source span of the construct this instruction was lowered from;
          [Loc.dummy] for synthesised instructions *)
}

and opcode =
  | Binop of binop * value * value
  | Icmp of icmp * value * value
  | Fcmp of fcmp * value * value
  | Select of value * value * value
  | Cast of cast_kind * value * ty
  | Call of { callee : string; args : value list; ret : ty }
  | Alloca of {
      aspace : space;
      elem : ty;
      count : int;  (** total number of elements *)
      dims : int list;  (** declared array shape, e.g. [16; 16]; product = count *)
      aname : string;  (** source variable name, for reports and selection *)
    }
  | Load of { ptr : value; index : value }
  | Store of { ptr : value; index : value; v : value }
  | Extract of value * value  (** vector, lane *)
  | Insert of value * value * value  (** vector, lane, scalar *)
  | Vecbuild of ty * value list
  | Phi of phi
  | Br of block
  | Cond_br of value * block * block
  | Ret
  | Barrier of { blocal : bool; bglobal : bool }

and phi = { mutable incoming : (block * value) list; p_ty : ty }

and block = {
  bid : int;
  mutable b_name : string;
  mutable instrs : instr list;  (** body, excluding the terminator *)
  mutable term : instr option;  (** always [Some] in a complete function *)
}

and func = {
  f_name : string;
  f_args : arg list;
  mutable blocks : block list;  (** head is the entry block *)
}

(* -- Identity ------------------------------------------------------------ *)

(* Atomic so that independent kernels can be compiled concurrently (the
   compile cache dispatches batch compiles over the runtime's domain pool);
   ids only need to be unique within one function, but the global counters
   must never hand the same id to two domains. *)
let instr_counter = Atomic.make 0
let block_counter = Atomic.make 0

let fresh_instr ?(loc = Grover_support.Loc.dummy) op =
  { iid = Atomic.fetch_and_add instr_counter 1 + 1; op; parent = None;
    iloc = loc }

let fresh_block name =
  { bid = Atomic.fetch_and_add block_counter 1 + 1; b_name = name; instrs = [];
    term = None }

(** Ensure the global counters are past [n], so instructions created later
    cannot collide with ids already present in a function loaded from a
    serialized artifact. *)
let reserve_ids (n : int) : unit =
  let rec bump (c : int Atomic.t) =
    let cur = Atomic.get c in
    if cur < n && not (Atomic.compare_and_set c cur n) then bump c
  in
  bump instr_counter;
  bump block_counter

let value_equal (a : value) (b : value) =
  match (a, b) with
  | Vinstr i, Vinstr j -> i.iid = j.iid
  | Arg x, Arg y -> x.a_index = y.a_index && x.a_name = y.a_name
  | Cint (t1, n1), Cint (t2, n2) -> t1 = t2 && n1 = n2
  | Cfloat f1, Cfloat f2 -> Float.equal f1 f2
  | _ -> false

(* -- Type utilities ------------------------------------------------------ *)

let rec ty_is_integer = function
  | I1 | I8 | I16 | I32 | I64 -> true
  | Vec (t, _) -> ty_is_integer t
  | _ -> false

let rec ty_is_float = function
  | F32 -> true
  | Vec (t, _) -> ty_is_float t
  | _ -> false

let ty_bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 | F32 -> 32
  | I64 -> 64
  | Void | Vec _ | Ptr _ -> invalid_arg "ty_bits: not a scalar"

let rec ty_size_bytes = function
  | Void -> 0
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | F32 -> 4
  | I64 -> 8
  | Vec (t, n) ->
      let n = if n = 3 then 4 else n in
      ty_size_bytes t * n
  | Ptr _ -> 8

let elem_of_ptr = function
  | Ptr (_, t) -> t
  | _ -> invalid_arg "elem_of_ptr: not a pointer"

let space_of_ptr = function
  | Ptr (sp, _) -> sp
  | _ -> invalid_arg "space_of_ptr: not a pointer"

let binop_is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Frem -> true
  | _ -> false

(* -- Value typing -------------------------------------------------------- *)

let rec type_of (v : value) : ty =
  match v with
  | Cint (t, _) -> t
  | Cfloat _ -> F32
  | Arg a -> a.a_ty
  | Vinstr i -> type_of_opcode i.op

and type_of_opcode = function
  | Binop (_, a, _) -> type_of a
  | Icmp _ -> I1
  | Fcmp _ -> I1
  | Select (_, a, _) -> type_of a
  | Cast (_, _, t) -> t
  | Call { ret; _ } -> ret
  | Alloca { aspace; elem; _ } -> Ptr (aspace, elem)
  | Load { ptr; _ } -> elem_of_ptr (type_of ptr)
  | Store _ -> Void
  | Extract (v, _) -> (
      match type_of v with
      | Vec (t, _) -> t
      | _ -> invalid_arg "extract from non-vector")
  | Insert (v, _, _) -> type_of v
  | Vecbuild (t, _) -> t
  | Phi { p_ty; _ } -> p_ty
  | Br _ | Cond_br _ | Ret | Barrier _ -> Void

(* -- Traversal ----------------------------------------------------------- *)

let operands (op : opcode) : value list =
  match op with
  | Binop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Select (a, b, c) -> [ a; b; c ]
  | Cast (_, v, _) -> [ v ]
  | Call { args; _ } -> args
  | Alloca _ -> []
  | Load { ptr; index } -> [ ptr; index ]
  | Store { ptr; index; v } -> [ ptr; index; v ]
  | Extract (a, b) -> [ a; b ]
  | Insert (a, b, c) -> [ a; b; c ]
  | Vecbuild (_, vs) -> vs
  | Phi { incoming; _ } -> List.map snd incoming
  | Cond_br (c, _, _) -> [ c ]
  | Br _ | Ret | Barrier _ -> []

let map_operands ~(f : value -> value) (op : opcode) : opcode =
  match op with
  | Binop (b, x, y) -> Binop (b, f x, f y)
  | Icmp (c, x, y) -> Icmp (c, f x, f y)
  | Fcmp (c, x, y) -> Fcmp (c, f x, f y)
  | Select (a, b, c) -> Select (f a, f b, f c)
  | Cast (k, v, t) -> Cast (k, f v, t)
  | Call c -> Call { c with args = List.map f c.args }
  | Alloca _ -> op
  | Load { ptr; index } -> Load { ptr = f ptr; index = f index }
  | Store { ptr; index; v } -> Store { ptr = f ptr; index = f index; v = f v }
  | Extract (a, b) -> Extract (f a, f b)
  | Insert (a, b, c) -> Insert (f a, f b, f c)
  | Vecbuild (t, vs) -> Vecbuild (t, List.map f vs)
  | Phi p ->
      p.incoming <- List.map (fun (blk, v) -> (blk, f v)) p.incoming;
      Phi p
  | Cond_br (c, t, e) -> Cond_br (f c, t, e)
  | Br _ | Ret | Barrier _ -> op

let all_instrs (b : block) : instr list =
  match b.term with Some t -> b.instrs @ [ t ] | None -> b.instrs

let iter_instrs (f : instr -> unit) (fn : func) : unit =
  List.iter (fun b -> List.iter f (all_instrs b)) fn.blocks

let fold_instrs (f : 'acc -> instr -> 'acc) (acc : 'acc) (fn : func) : 'acc =
  List.fold_left
    (fun acc b -> List.fold_left f acc (all_instrs b))
    acc fn.blocks

(** Rewrite every use of [target] as [by] across the whole function,
    including phi incoming values and branch conditions. *)
let replace_uses (fn : func) ~(target : value) ~(by : value) : unit =
  let subst v = if value_equal v target then by else v in
  iter_instrs (fun i -> i.op <- map_operands ~f:subst i.op) fn

(** Number of instruction operands referring to [v]. *)
let count_uses (fn : func) (v : value) : int =
  fold_instrs
    (fun acc i ->
      acc
      + List.length (List.filter (fun o -> value_equal o v) (operands i.op)))
    0 fn

let successors (b : block) : block list =
  match b.term with
  | Some { op = Br t; _ } -> [ t ]
  | Some { op = Cond_br (_, t, e); _ } -> [ t; e ]
  | _ -> []

let predecessors (fn : func) (b : block) : block list =
  List.filter (fun p -> List.exists (fun s -> s.bid = b.bid) (successors p)) fn.blocks

(* -- Structural edits ---------------------------------------------------- *)

let append_instr (b : block) (i : instr) : unit =
  i.parent <- Some b;
  b.instrs <- b.instrs @ [ i ]

let set_term (b : block) (i : instr) : unit =
  i.parent <- Some b;
  b.term <- Some i

(** Insert [i] immediately before [before] in its block.
    @raise Not_found if [before] is not in block [b]'s body. *)
let insert_before (b : block) ~(before : instr) (i : instr) : unit =
  if Option.fold ~none:false ~some:(fun t -> t.iid = before.iid) b.term then begin
    i.parent <- Some b;
    b.instrs <- b.instrs @ [ i ]
  end
  else begin
    let rec go = function
      | [] -> raise Not_found
      | x :: rest when x.iid = before.iid -> i :: x :: rest
      | x :: rest -> x :: go rest
    in
    i.parent <- Some b;
    b.instrs <- go b.instrs
  end

let remove_instr (b : block) (i : instr) : unit =
  b.instrs <- List.filter (fun x -> x.iid <> i.iid) b.instrs

let entry (fn : func) : block =
  match fn.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "entry: function has no blocks"

let find_arg (fn : func) (name : string) : arg option =
  List.find_opt (fun a -> a.a_name = name) fn.f_args

(* -- Canonical renumbering ------------------------------------------------ *)

(** Deep-copy [fn] with dense, order-derived ids: blocks are numbered 1..b
    in list order, instructions 1..n in (block, body, terminator) order.
    Two structurally identical functions — e.g. two compiles of the same
    source in one process, whose global counters handed out different ids —
    renumber to {e bit-identical} values, which is what makes compile
    artifacts content-addressable and their serialized form deterministic.
    The input function is left untouched. *)
let renumber_func (fn : func) : func =
  let imap : (int, instr) Hashtbl.t = Hashtbl.create 64 in
  let bmap : (int, block) Hashtbl.t = Hashtbl.create 16 in
  let next_i = ref 0 and next_b = ref 0 in
  (* Pass 1: allocate shells so forward references resolve. *)
  let blocks =
    List.map
      (fun (b : block) ->
        incr next_b;
        let nb = { bid = !next_b; b_name = b.b_name; instrs = []; term = None } in
        Hashtbl.replace bmap b.bid nb;
        nb)
      fn.blocks
  in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun (i : instr) ->
          incr next_i;
          Hashtbl.replace imap i.iid
            { iid = !next_i; op = i.op; parent = None; iloc = i.iloc })
        (all_instrs b))
    fn.blocks;
  (* Pass 2: rewrite operands, blocks and parents to the new records. *)
  let mv (v : value) : value =
    match v with Vinstr i -> Vinstr (Hashtbl.find imap i.iid) | _ -> v
  in
  let mb (b : block) : block = Hashtbl.find bmap b.bid in
  let mop (op : opcode) : opcode =
    match op with
    | Phi { incoming; p_ty } ->
        (* A fresh phi record: [map_operands] mutates phis in place, which
           would corrupt the input function. *)
        Phi { incoming = List.map (fun (b, v) -> (mb b, mv v)) incoming; p_ty }
    | Br b -> Br (mb b)
    | Cond_br (c, t, e) -> Cond_br (mv c, mb t, mb e)
    | Alloca _ | Ret | Barrier _ -> op
    | _ -> map_operands ~f:mv op
  in
  List.iter2
    (fun (ob : block) (nb : block) ->
      nb.instrs <-
        List.map
          (fun (i : instr) ->
            let ni = Hashtbl.find imap i.iid in
            ni.op <- mop i.op;
            ni.parent <- Some nb;
            ni)
          ob.instrs;
      nb.term <-
        Option.map
          (fun (t : instr) ->
            let nt = Hashtbl.find imap t.iid in
            nt.op <- mop t.op;
            nt.parent <- Some nb;
            nt)
          ob.term)
    fn.blocks blocks;
  { f_name = fn.f_name; f_args = fn.f_args; blocks }
