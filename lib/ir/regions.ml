(** Barrier-region formation: the static side of pocl-style work-item
    loops.

    A kernel's CFG is partitioned at its [Barrier] instructions into
    {e parallel regions}: maximal stretches of code between two barriers
    (or between kernel entry / exit and the nearest barrier). When every
    barrier sits under group-uniform control flow, a work-group can be
    executed without any scheduler at all — each region runs as a plain
    [for]-loop over the group's work-items, and the loop only advances to
    the next region once the sweep finishes, which {e is} the barrier
    ("pocl: A Performance-Portable OpenCL Implementation" calls these
    work-item loops).

    This module answers the two static questions that executor needs:

    - {b verification}: is every (reachable) barrier in group-uniform
      control flow? Uses {!Divergence} — a barrier inside a block that
      work-items may disagree on executing cannot be a region boundary
      (OpenCL calls it undefined behaviour; our fiber scheduler keeps
      handling it dynamically, so such kernels fall back to fibers);
    - {b spill sets}: which SSA values are live {e across} each barrier?
      Work-items of one group share a single slot environment under the
      region executor, so values that cross a region boundary must be
      saved to (and restored from) a per-work-item context array.

    Liveness is the standard backward block-level dataflow over
    instruction results (phi operands count as uses on the incoming edge,
    phi results as definitions at the head of their block), refined to the
    exact barrier position by a backward scan inside the barrier's block. *)

open Ssa
module ISet = Set.Make (Int)

(** A side-effect-free divergent diamond (or triangle) the lane compiler
    may if-convert: both arms are straight-line single-predecessor blocks
    containing only pure instructions, reconverging at the branch block's
    immediate post-dominator. [None] for an arm means that edge of the
    branch jumps straight to the join. *)
type diamond = {
  d_bid : int;  (** bid of the block whose divergent [Cond_br] heads it *)
  d_then : int option;  (** then-arm block bid, [None] = edge to the join *)
  d_else : int option;
  d_join : int;  (** join block bid — the branch's immediate post-dominator *)
}

(** Per-region-entry lane capability. [Lane]: group-uniform control
    throughout, plain lane batching. [Lane_masked n]: lane batching after
    if-converting [n] pure divergent diamonds under a per-lane predicate
    mask. [Scalar reason]: the region runs the one-work-item sweep, and
    [reason] says why (located where the source carries positions). *)
type lane_verdict = Lane | Lane_masked of int | Scalar of string

let lane_ok = function Lane | Lane_masked _ -> true | Scalar _ -> false

type info = {
  barriers : instr array;
      (** dense, in block order then body order — the "barrier index"
          shared with the compiled executor *)
  live_across : int array array;
      (** per barrier: iids of the instruction results still live at the
          barrier's continuation point, sorted ascending *)
  n_regions : int;  (** barrier count + 1 *)
  lane_entries : lane_verdict array;
      (** per region entry (index 0 = kernel entry, index [b+1] = the
          continuation of barrier [b]): can the region be swept in lane
          batches? Every reachable block up to the next barrier must stay
          under group-uniform control — except classified {!diamond}s,
          which the lane compiler executes under a mask — and allocate no
          private memory. [Scalar] regions fall back to the one-work-item
          sweep within the same launch. *)
  diamonds : (int, diamond) Hashtbl.t;
      (** branch-block bid -> classified maskable diamond, shared across
          regions; the lane compiler looks its divergent branches up here *)
  div : Divergence.t;
      (** the uniformity facts behind [lane_entries]; the lane compiler
          reuses them to split values into uniform and varying slots *)
}

type verdict =
  | Formed of info
  | Fallback of string
      (** why region execution is unavailable; the fiber scheduler
          remains the (dynamically checked) execution path *)

let is_barrier (i : instr) = match i.op with Barrier _ -> true | _ -> false

(* An instruction defines a value iff its opcode has a non-void result.
   [type_of_opcode] can raise on malformed aggregates; treat those as
   non-defining, matching the closure compiler's slot assignment. *)
let defines (i : instr) : bool =
  match type_of_opcode i.op with
  | Void -> false
  | _ -> true
  | exception Invalid_argument _ -> false

(* iids of instruction-result operands. Phi operands are excluded here —
   they are uses on the incoming edge, charged to the predecessor. *)
let use_iids (i : instr) : int list =
  match i.op with
  | Phi _ -> []
  | op ->
      List.filter_map
        (function Vinstr u -> Some u.iid | _ -> None)
        (operands op)

(* Values used by [s]'s phis along the edge [pred -> s]. *)
let phi_edge_uses (s : block) (pred_bid : int) : ISet.t =
  List.fold_left
    (fun acc (i : instr) ->
      match i.op with
      | Phi { incoming; _ } ->
          List.fold_left
            (fun acc (b, v) ->
              match v with
              | Vinstr u when b.bid = pred_bid -> ISet.add u.iid acc
              | _ -> acc)
            acc incoming
      | _ -> acc)
    ISet.empty s.instrs

(* Block-level liveness to a fixpoint; returns bid -> live-out set. *)
let block_live_out (fn : func) : (int, ISet.t) Hashtbl.t =
  let gen : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let def : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let defined = ref ISet.empty and g = ref ISet.empty in
      let visit (i : instr) =
        List.iter
          (fun u -> if not (ISet.mem u !defined) then g := ISet.add u !g)
          (use_iids i);
        if defines i then defined := ISet.add i.iid !defined
      in
      List.iter visit b.instrs;
      (match b.term with Some t -> visit t | None -> ());
      Hashtbl.replace gen b.bid !g;
      Hashtbl.replace def b.bid !defined)
    fn.blocks;
  let live_in : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let get tbl bid =
    match Hashtbl.find_opt tbl bid with Some s -> s | None -> ISet.empty
  in
  let rev_blocks = List.rev fn.blocks in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let lo =
          List.fold_left
            (fun acc s ->
              ISet.union acc
                (ISet.union (get live_in s.bid) (phi_edge_uses s b.bid)))
            ISet.empty (successors b)
        in
        let li = ISet.union (get gen b.bid) (ISet.diff lo (get def b.bid)) in
        if not (ISet.equal lo (get live_out b.bid)) then begin
          Hashtbl.replace live_out b.bid lo;
          changed := true
        end;
        if not (ISet.equal li (get live_in b.bid)) then begin
          Hashtbl.replace live_in b.bid li;
          changed := true
        end)
      rev_blocks
  done;
  live_out

(* Refine block live-out to the program point just after [bar]: walk the
   terminator and every instruction after the barrier backwards, removing
   definitions and adding uses. *)
let live_after_barrier (b : block) (bar : instr) (live_out : ISet.t) : ISet.t =
  let rec after = function
    | [] -> []
    | (i : instr) :: tl -> if i.iid = bar.iid then tl else after tl
  in
  let live = ref live_out in
  let visit (i : instr) =
    if defines i then live := ISet.remove i.iid !live;
    List.iter (fun u -> live := ISet.add u !live) (use_iids i)
  in
  (match b.term with Some t -> visit t | None -> ());
  List.iter visit (List.rev (after b.instrs));
  !live

(* [reason fmt loc]: a bail reason, suffixed " at file:line" when the
   source carries a position. *)
let located (what : string) (loc : Grover_support.Loc.t) : string =
  if Grover_support.Loc.is_dummy loc then what
  else Format.asprintf "%s at %a" what Grover_support.Loc.pp loc

(* Classify the divergent [Cond_br] ending [b] as an if-convertible
   diamond/triangle. Legal iff both arms reconverge at [b]'s immediate
   post-dominator, each non-trivial arm is a straight-line block with [b]
   as its only predecessor ending in [Br join], the arms contain only
   pure instructions (no stores, calls, barriers, allocas or phis — the
   lane executor evaluates both arms flat under a mask, so nothing with a
   side effect or a work-item-ordered resource may appear), and the join
   has no predecessors beyond the two diamond edges. *)
let classify_diamond ~(cfg : Cfg.t) ~(pdom : Postdom.t) (b : block)
    (t : block) (e : block) : (diamond * block, string) result =
  let branch_loc =
    match b.term with Some i -> i.iloc | None -> Grover_support.Loc.dummy
  in
  match Postdom.immediate pdom b with
  | None -> Error (located "divergent branch without a join point" branch_loc)
  | Some j ->
      if t.bid = e.bid then
        Error (located "degenerate divergent branch" branch_loc)
      else begin
        let arm (a : block) : (int option, string) result =
          if a.bid = j.bid then Ok None
          else if
            match Cfg.preds cfg a with [ p ] -> p.bid <> b.bid | _ -> true
          then
            Error
              (located "divergent branch arm with multiple predecessors"
                 branch_loc)
          else
            match a.term with
            | Some { op = Br tgt; _ } when tgt.bid = j.bid ->
                let rec scan = function
                  | [] -> Ok (Some a.bid)
                  | (i : instr) :: tl -> (
                      match i.op with
                      | Store _ -> Error (located "divergent store" i.iloc)
                      | Call _ ->
                          Error (located "call on a divergent arm" i.iloc)
                      | Barrier _ ->
                          Error (located "divergent barrier" i.iloc)
                      | Alloca _ ->
                          Error (located "alloca on a divergent arm" i.iloc)
                      | Phi _ -> Error (located "phi on a divergent arm" i.iloc)
                      | _ -> scan tl)
                in
                scan a.instrs
            | _ ->
                Error
                  (located "divergent branch arms do not reconverge"
                     branch_loc)
        in
        match (arm t, arm e) with
        | Error r, _ | _, Error r -> Error r
        | Ok dt, Ok de ->
            let tp = Option.value dt ~default:b.bid
            and ep = Option.value de ~default:b.bid in
            let jpreds =
              List.sort compare
                (List.map (fun (p : block) -> p.bid) (Cfg.preds cfg j))
            in
            if jpreds <> List.sort compare [ tp; ep ] then
              Error
                (located "join reachable from outside the divergent branch"
                   branch_loc)
            else
              Ok ({ d_bid = b.bid; d_then = dt; d_else = de; d_join = j.bid }, j)
      end

(* Lane capability of the region entered at instruction index [start] of
   block [b0]. Everything reachable up to the next barrier must stay
   under group-uniform control and allocate no private memory (the bump
   allocator hands out per-work-item addresses in flat work-item order,
   which a lane batch would permute) — with one exception: a divergent
   conditional branch heading a pure diamond is if-converted under a
   per-lane mask, recorded in [diamonds], and the walk continues at the
   join. Anything else divergent yields [Scalar] with the reason. *)
let lane_verdict_from ~(cfg : Cfg.t) ~(pdom : Postdom.t) (div : Divergence.t)
    (diamonds : (int, diamond) Hashtbl.t) (b0 : block) (start : int) :
    lane_verdict =
  let seen = Hashtbl.create 16 in
  let bail = ref None in
  let masked = ref 0 in
  let rec drop n l =
    if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
  in
  let rec walk (b : block) (start : int) : unit =
    if !bail = None then begin
      let visit (s : block) =
        if not (Hashtbl.mem seen s.bid) then begin
          Hashtbl.add seen s.bid ();
          walk s 0
        end
      in
      let rec scan = function
        | [] -> (
            match b.term with
            | Some { op = Cond_br (c, t, e); _ }
              when Divergence.value_divergent div c -> (
                if not (Cfg.is_reachable cfg b) then
                  (* an unreachable divergent branch never executes; any
                     verdict is sound, and the classifier needs CFG facts *)
                  ()
                else
                  match classify_diamond ~cfg ~pdom b t e with
                  | Ok (d, j) ->
                      Hashtbl.replace diamonds b.bid d;
                      incr masked;
                      visit j
                  | Error r -> bail := Some r)
            | _ -> List.iter visit (successors b))
        | (i : instr) :: tl -> (
            match i.op with
            | Barrier _ -> () (* the region ends here *)
            | Alloca { aspace = Private; _ } ->
                bail := Some (located "private alloca" i.iloc)
            | _ -> scan tl)
      in
      scan (drop start b.instrs)
    end
  in
  walk b0 start;
  match !bail with
  | Some r -> Scalar r
  | None -> if !masked = 0 then Lane else Lane_masked !masked

(* Instruction index just past [bar] within its block — where the
   barrier's continuation region enters the block. *)
let pos_after (b : block) (bar : instr) : int =
  let rec go k = function
    | [] -> k
    | (i : instr) :: tl -> if i.iid = bar.iid then k + 1 else go (k + 1) tl
  in
  go 0 b.instrs

let form (fn : func) : verdict =
  let barriers =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun i -> if is_barrier i then Some (b, i) else None)
          b.instrs)
      fn.blocks
  in
  let div = Divergence.compute fn in
  let cfg = Cfg.compute fn in
  let pdom = Postdom.compute fn in
  let diamonds : (int, diamond) Hashtbl.t = Hashtbl.create 4 in
  let lane_entries () =
    Array.of_list
      (List.map
         (fun (b, start) -> lane_verdict_from ~cfg ~pdom div diamonds b start)
         ((entry fn, 0)
         :: List.map (fun (b, bar) -> (b, pos_after b bar)) barriers))
  in
  if barriers = [] then
    Formed
      {
        barriers = [||];
        live_across = [||];
        n_regions = 1;
        lane_entries = lane_entries ();
        diamonds;
        div;
      }
  else begin
    match
      List.find_opt
        (fun ((b : block), _) ->
          Cfg.is_reachable cfg b && Divergence.block_divergent div b)
        barriers
    with
    | Some (_, (i : instr)) ->
        Fallback
          (if Grover_support.Loc.is_dummy i.iloc then
             "barrier under divergent control flow"
           else
             Format.asprintf "barrier at %a under divergent control flow"
               Grover_support.Loc.pp i.iloc)
    | None ->
        let live_out = block_live_out fn in
        let live_across =
          Array.of_list
            (List.map
               (fun ((b : block), bar) ->
                 let lo =
                   match Hashtbl.find_opt live_out b.bid with
                   | Some s -> s
                   | None -> ISet.empty
                 in
                 Array.of_list (ISet.elements (live_after_barrier b bar lo)))
               barriers)
        in
        Formed
          {
            barriers = Array.of_list (List.map snd barriers);
            live_across;
            n_regions = List.length barriers + 1;
            lane_entries = lane_entries ();
            diamonds;
            div;
          }
  end

(** Distinct values live across any region boundary — the per-work-item
    context footprint of the region executor. *)
let spill_footprint (i : info) : int =
  Array.fold_left
    (fun acc a -> Array.fold_left (fun acc iid -> ISet.add iid acc) acc a)
    ISet.empty i.live_across
  |> ISet.cardinal

let describe (v : verdict) : string =
  match v with
  | Formed i when Array.length i.barriers = 0 ->
      "barrier-free: one parallel region"
  | Formed i ->
      let nb = Array.length i.barriers in
      let nl = spill_footprint i in
      Printf.sprintf
        "%d uniform barrier%s -> %d parallel regions, %d value%s live across \
         region boundaries"
        nb
        (if nb = 1 then "" else "s")
        i.n_regions nl
        (if nl = 1 then "" else "s")
  | Fallback reason -> reason

(** Human-readable per-region lane verdict, as printed by
    [groverc report]. *)
let verdict_string (v : lane_verdict) : string =
  match v with
  | Lane -> "lane batch"
  | Lane_masked n ->
      Printf.sprintf "lane batch (masked, %d diamond%s)" n
        (if n = 1 then "" else "s")
  | Scalar r -> "scalar sweep: " ^ r
