(** Instruction-builder with an insertion cursor, in the style of LLVM's
    IRBuilder. All [add_*] helpers append at the end of the current block
    and return the instruction's value. *)

open Ssa
module Loc = Grover_support.Loc

type t = { fn : func; mutable cur : block; mutable loc : Loc.t }

let create_function ~name ~args : func * t =
  let entry = fresh_block "entry" in
  let fn = { f_name = name; f_args = args; blocks = [ entry ] } in
  (fn, { fn; cur = entry; loc = Loc.dummy })

let on_function (fn : func) : t = { fn; cur = entry fn; loc = Loc.dummy }

let current (b : t) : block = b.cur
let set_block (b : t) (blk : block) : unit = b.cur <- blk

(** Source span stamped onto every instruction built from here on; the
    lowering sets it as it walks the AST so pass diagnostics and verifier
    failures can cite the original OpenCL C construct. *)
let set_loc (b : t) (loc : Loc.t) : unit = b.loc <- loc

let new_block (b : t) (name : string) : block =
  let blk = fresh_block name in
  b.fn.blocks <- b.fn.blocks @ [ blk ];
  blk

let add (b : t) (op : opcode) : value =
  let i = fresh_instr ~loc:b.loc op in
  append_instr b.cur i;
  Vinstr i

let add_unit (b : t) (op : opcode) : unit = ignore (add b op)

let terminate (b : t) (op : opcode) : unit =
  match b.cur.term with
  | Some _ -> invalid_arg "terminate: block already terminated"
  | None -> set_term b.cur (fresh_instr ~loc:b.loc op)

let is_terminated (b : t) : bool = b.cur.term <> None

(* -- Convenience constructors ------------------------------------------- *)

let i32 n = Cint (I32, n)
let i1 b = Cint (I1, if b then 1 else 0)
let f32 f = Cfloat f

let binop b op x y = add b (Binop (op, x, y))
let icmp b c x y = add b (Icmp (c, x, y))
let fcmp b c x y = add b (Fcmp (c, x, y))
let select b c x y = add b (Select (c, x, y))
let cast b k v t = add b (Cast (k, v, t))
let call b callee args ret = add b (Call { callee; args; ret })
let alloca ?dims ?(name = "") b aspace elem count =
  let dims = match dims with Some d -> d | None -> [ count ] in
  add b (Alloca { aspace; elem; count; dims; aname = name })
let load b ptr index = add b (Load { ptr; index })
let store b ptr index v = add_unit b (Store { ptr; index; v })
let extract b v lane = add b (Extract (v, lane))
let insert b v lane s = add b (Insert (v, lane, s))
let vecbuild b t vs = add b (Vecbuild (t, vs))
let barrier b ~blocal ~bglobal = add_unit b (Barrier { blocal; bglobal })

let phi_in (blk : block) (p_ty : ty) : value =
  (* Phis must precede ordinary instructions: prepend. *)
  let i = fresh_instr (Phi { incoming = []; p_ty }) in
  i.parent <- Some blk;
  blk.instrs <- i :: blk.instrs;
  Vinstr i

let add_incoming (v : value) ~(from : block) (inc : value) : unit =
  match v with
  | Vinstr ({ op = Phi p; _ } as _i) -> p.incoming <- p.incoming @ [ (from, inc) ]
  | _ -> invalid_arg "add_incoming: not a phi"

let br b target = terminate b (Br target)
let cond_br b c t e = terminate b (Cond_br (c, t, e))
let ret b = terminate b Ret
