(** Hand-written lexer with an integrated object-like macro preprocessor.

    The benchmark kernels only need [#define NAME replacement-tokens] (tile
    sizes, problem dimensions), comment stripping, and external [-D]-style
    definitions, so the full C preprocessor is intentionally out of scope. *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
  macros : (string, Token.t list) Hashtbl.t;
}

let loc st = { Loc.line = st.line; col = st.pos - st.bol + 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_space_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_space_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_space_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      let l = loc st in
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> Loc.errorf l "unterminated comment"
      in
      close ();
      skip_space_and_comments st
  | _ -> ()

(* Multi-character punctuation, longest first. *)
let puncts =
  [ "<<="; ">>="; "..."; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "->";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|"; "^"; "~";
    "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; "?"; ":" ]

let lex_number st =
  let l = loc st in
  let start = st.pos in
  let seen_dot = ref false and seen_exp = ref false and is_hexn = ref false in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    is_hexn := true;
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done
  end
  else begin
    while
      match peek st with
      | Some c when is_digit c -> true
      | Some '.' when not !seen_dot && not !seen_exp -> (
          (* Only a digit after '.' continues the number ('a[i].x' stays
             member access because we only call lex_number on a digit). *)
          seen_dot := true;
          true)
      | Some ('e' | 'E') when not !seen_exp -> (
          match peek2 st with
          | Some c when is_digit c || c = '+' || c = '-' ->
              seen_exp := true;
              advance st;
              (* consume sign if present; the digit loop takes the rest *)
              (match peek st with Some ('+' | '-') -> () | _ -> st.pos <- st.pos - 1);
              true
          | _ -> false)
      | _ -> false
    do
      advance st
    done
  end;
  let body = String.sub st.src start (st.pos - start) in
  (* Swallow C numeric suffixes. *)
  let rec suffix () =
    match peek st with
    | Some ('f' | 'F' | 'u' | 'U' | 'l' | 'L') when not !is_hexn ->
        advance st;
        suffix ()
    | Some ('u' | 'U' | 'l' | 'L') ->
        advance st;
        suffix ()
    | _ -> ()
  in
  let is_float_suffix =
    (not !is_hexn) && (match peek st with Some ('f' | 'F') -> true | _ -> false)
  in
  suffix ();
  if !seen_dot || !seen_exp || is_float_suffix then
    match float_of_string_opt body with
    | Some f -> Token.Float_lit f
    | None -> Loc.errorf l "bad float literal %S" body
  else
    match int_of_string_opt body with
    | Some n -> Token.Int_lit n
    | None -> Loc.errorf l "bad integer literal %S" body

let lex_raw st : Token.t * Loc.t =
  skip_space_and_comments st;
  let l = loc st in
  match peek st with
  | None -> (Token.Eof, l)
  | Some c when is_digit c -> (lex_number st, l)
  | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let name = String.sub st.src start (st.pos - start) in
      let tok =
        match Token.canonical_keyword name with
        | Some kw -> Token.Kw kw
        | None -> Token.Ident name
      in
      (tok, l)
  | Some '#' ->
      advance st;
      (Token.Punct "#", l)
  | Some _ ->
      let matching =
        List.find_opt
          (fun p ->
            let n = String.length p in
            st.pos + n <= String.length st.src
            && String.sub st.src st.pos n = p)
          puncts
      in
      (match matching with
      | Some p ->
          for _ = 1 to String.length p do
            advance st
          done;
          (Token.Punct p, l)
      | None -> Loc.errorf l "unexpected character %C" st.src.[st.pos])

(* Read raw tokens until the end of the current line (for directives). *)
let rec raw_tokens_until_eol st acc =
  skip_space_and_comments_same_line st;
  match peek st with
  | None | Some '\n' -> List.rev acc
  | Some _ ->
      let tok, _ = lex_raw st in
      raw_tokens_until_eol st (tok :: acc)

and skip_space_and_comments_same_line st =
  match peek st with
  | Some (' ' | '\t' | '\r') ->
      advance st;
      skip_space_and_comments_same_line st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> ()
      in
      close ();
      skip_space_and_comments_same_line st
  | _ -> ()

let handle_directive st l =
  match lex_raw st with
  | Token.Ident "define", _ -> (
      match lex_raw st with
      | Token.Ident name, _ ->
          let replacement = raw_tokens_until_eol st [] in
          Hashtbl.replace st.macros name replacement
      | tok, dl -> Loc.errorf dl "#define expects a name, got %a" Token.pp tok)
  | Token.Ident "undef", _ -> (
      match lex_raw st with
      | Token.Ident name, _ ->
          ignore (raw_tokens_until_eol st []);
          Hashtbl.remove st.macros name
      | tok, dl -> Loc.errorf dl "#undef expects a name, got %a" Token.pp tok)
  | Token.Ident ("pragma" | "include"), _ ->
      (* Pragmas and includes are ignored: the subset is self-contained. *)
      ignore (raw_tokens_until_eol st [])
  | tok, _ -> Loc.errorf l "unsupported preprocessor directive %a" Token.pp tok

let max_expansion_depth = 64

let tokenize ?(defines = []) src : (Token.t * Loc.t) list =
  let st = { src; pos = 0; line = 1; bol = 0; macros = Hashtbl.create 16 } in
  List.iter
    (fun (name, text) ->
      let sub = { src = text; pos = 0; line = 1; bol = 0; macros = Hashtbl.create 0 } in
      let toks = raw_tokens_until_eol sub [] in
      Hashtbl.replace st.macros name toks)
    defines;
  let out = ref [] in
  (* Pending macro-expanded tokens carry the location of the use site. *)
  let pending : (Token.t * Loc.t * int) list ref = ref [] in
  let rec next () =
    match !pending with
    | (tok, l, depth) :: rest ->
        pending := rest;
        emit tok l depth
    | [] -> (
        let tok, l = lex_raw st in
        match tok with
        | Token.Punct "#" -> handle_directive st l
        | _ -> emit tok l 0)
  and emit tok l depth =
    match tok with
    | Token.Ident name when Hashtbl.mem st.macros name ->
        if depth >= max_expansion_depth then
          Loc.errorf l "macro expansion too deep at %s" name;
        let toks = Hashtbl.find st.macros name in
        pending :=
          List.map (fun t -> (t, l, depth + 1)) toks @ !pending
    | _ -> out := (tok, l) :: !out
  in
  let rec loop () =
    next ();
    match !out with
    | (Token.Eof, _) :: _ when !pending = [] -> ()
    | _ -> loop ()
  in
  loop ();
  List.rev !out

(* -- Canonical source form ------------------------------------------------ *)

(** One line per token, rendered exactly. Floats use the hexadecimal [%h]
    form so two literals canonicalise identically iff they denote the same
    IEEE value; "%g" would conflate e.g. 0.1 and its nearest neighbours. *)
let render_token (t : Token.t) : string =
  match t with
  | Token.Int_lit n -> Printf.sprintf "i%d" n
  | Token.Float_lit f -> Printf.sprintf "f%h" f
  | Token.Ident s -> "n" ^ s
  | Token.Kw s -> "k" ^ s
  | Token.Punct s -> "p" ^ s
  | Token.Eof -> "$"

(** The content-hashable form of a kernel source: the macro-expanded token
    stream, one token per line. Comments, whitespace and macro spelling
    vanish — two sources that lex identically (under the same [defines])
    canonicalise to the same string, so they share a compile-cache entry.
    Sources the lexer rejects fall back to the raw text (prefixed so a
    canonical form can never collide with a raw one): the subsequent compile
    will report the error properly; the cache just needs a stable key. *)
let canonical_source ?(defines = []) (src : string) : string =
  match tokenize ~defines src with
  | toks ->
      let b = Buffer.create (String.length src) in
      List.iter
        (fun (t, _) ->
          Buffer.add_string b (render_token t);
          Buffer.add_char b '\n')
        toks;
      Buffer.contents b
  | exception Loc.Error _ -> "!raw\n" ^ src
