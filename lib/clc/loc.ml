(** Source locations for diagnostics. The definition lives in
    {!Grover_support.Loc} so lower layers can carry locations too; this
    module re-exports it unchanged (same type, same [Error] exception). *)

include Grover_support.Loc
