(** The benchmark registry: the 11 test cases of the paper's Table I
    (NVD-MM appears three times, once per local-memory removal variant),
    plus TNG-GEMM4, a vector-typed GEMM added to exercise the lane-batched
    executor's varying vector slots. *)

let all : Kit.case list =
  [ Amd_ss.case;
    Amd_mt.case;
    Nvd_mt.case;
    Amd_rg.case;
    Amd_mm.case;
    Nvd_mm.case_a;
    Nvd_mm.case_b;
    Nvd_mm.case_ab;
    Nvd_nbody.case;
    Pab_st.case;
    Rod_sc.case;
    Gemm4.case ]

let by_id (id : string) : Kit.case option =
  List.find_opt (fun c -> String.lowercase_ascii c.Kit.id = String.lowercase_ascii id) all

(* Distinct kernels (the 10 sources behind the 12 cases). *)
let distinct_sources : Kit.case list =
  [ Amd_ss.case; Amd_mt.case; Nvd_mt.case; Amd_rg.case; Amd_mm.case;
    Nvd_mm.case_a; Nvd_nbody.case; Pab_st.case; Rod_sc.case; Gemm4.case ]
