(** GEMM4: tinygrad-style float4-accumulator GEMM (the cl_gemm benchmark
    shape). Each work-item produces one [float4] of C; the row-accessed
    matrix A is staged in local memory as scalar floats, each of which is
    splatted across the 4 lanes of a B column vector in the inner product.
    The vector-typed accumulator and the strided float4 loads from B make
    this the suite's exercise of the lane-batched executor's varying
    vector slots. Also shipped standalone as
    [examples/kernels/gemm_float4.cl]. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define TS 16
__kernel void gemm4(__global float4 *C, __global const float *A,
                    __global const float4 *B, int N4, int K) {
  __local float As[TS][TS];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int t = 0; t < K / TS; t++) {
    As[ly][lx] = A[gy * K + t * TS + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TS; k++) {
      acc = acc + As[ly][k] * B[(t * TS + k) * N4 + gx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[gy * N4 + gx] = acc;
}
|}

let base_m = 64 (* C is base_m rows x (base_n4 * 4) columns of floats *)
let base_n4 = 32
let base_k = 64
let ts = 16

let mk ~scale : Kit.workload =
  let m = max ts (base_m / scale) in
  let n4 = max ts (base_n4 / scale) in
  let k = max ts (base_k / scale) in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let c = Memory.alloc mem vec4 (m * n4) in
  let a = Memory.alloc mem Ssa.F32 (m * k) in
  let b = Memory.alloc mem vec4 (k * n4) in
  let gen = Kit.float_gen 4242 in
  Memory.fill_floats a (fun _ -> gen ());
  Memory.fill_floats b (fun _ -> gen ());
  let check () =
    let av = Memory.to_float_array a
    and bv = Memory.to_float_array b
    and cv = Memory.to_float_array c in
    let expected = Array.make (m * n4 * 4) 0.0 in
    for i = 0 to m - 1 do
      for j4 = 0 to n4 - 1 do
        for l = 0 to 3 do
          let acc = ref 0.0 in
          for kk = 0 to k - 1 do
            acc :=
              !acc +. (av.((i * k) + kk) *. bv.((((kk * n4) + j4) * 4) + l))
          done;
          expected.((((i * n4) + j4) * 4) + l) <- !acc
        done
      done
    done;
    Kit.check_floats ~label:"GEMM4" ~expected ~actual:cv ~eps:1e-4
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf c; Runtime.Abuf a; Runtime.Abuf b; Runtime.Aint n4;
        Runtime.Aint k ];
    global = (n4, m, 1);
    local = (ts, ts, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "TNG-GEMM4";
    origin = "tinygrad (extra/gemm/cl_gemm benchmark)";
    description =
      "float4-accumulator GEMM; the row-accessed matrix A is staged in \
       local memory and splatted across B's vector lanes";
    dataset =
      Printf.sprintf "C %dx%d float4s, K=%d, %dx%d tiles" base_m base_n4
        base_k ts ts;
    source;
    kernel = "gemm4";
    defines = [];
    remove = None;
    mk;
  }
