(** The experiment harness: compile a benchmark in its two versions (with
    local memory, and with local memory disabled by Grover), execute both on
    the simulated platform, validate outputs against the host reference, and
    report the normalized performance — the paper's measurement loop
    (§V-B / §VI-B). *)

open Grover_ir
open Grover_ocl
module P = Grover_memsim.Platform
module Sim = Grover_memsim.Simulate

type version = With_lm | Without_lm

type run = {
  version : version;
  seconds : float;
  cycles : float;
  valid : (unit, string) result;
  totals : Trace.totals;
  sim : Sim.result option;
  path : string;
      (** execution path taken: "wg-vec", "wg-loop", "fiberless" or "fiber" *)
}

type comparison = {
  case_id : string;
  platform : string;
  with_lm : run;
  without_lm : run;
  grover : Grover_core.Grover.outcome;
  normalized : float;
      (** perf(without) / perf(with) = t_with / t_without; > 1 = gain *)
}

exception Harness_error of string

let compile_version (case : Kit.case) (v : version) :
    Ssa.func * Grover_core.Grover.outcome option =
  let fns = Lower.compile ~defines:case.Kit.defines case.Kit.source in
  let fn =
    match List.find_opt (fun f -> f.Ssa.f_name = case.Kit.kernel) fns with
    | Some f -> f
    | None ->
        raise
          (Harness_error
             (Printf.sprintf "%s: kernel %s missing" case.Kit.id case.Kit.kernel))
  in
  Grover_passes.Pipeline.normalize fn;
  match v with
  | With_lm -> (fn, None)
  | Without_lm ->
      let outcome = Grover_core.Grover.run ?only:case.Kit.remove fn in
      if outcome.Grover_core.Grover.transformed = [] then
        raise
          (Harness_error
             (Printf.sprintf "%s: Grover transformed nothing (%s)" case.Kit.id
                (String.concat "; "
                   (List.map
                      (fun (n, r) -> n ^ ": " ^ r)
                      outcome.Grover_core.Grover.rejected))));
      (fn, Some outcome)

(* Kernels that already use explicit vector types defeat the CPU runtimes'
   implicit work-item vectorisation (the AMD-MT/AMD-MM situation the paper
   discusses in §VI-C). *)
let uses_vector_types (fn : Ssa.func) : bool =
  List.exists
    (fun (a : Ssa.arg) ->
      match a.Ssa.a_ty with
      | Ssa.Ptr (_, Ssa.Vec _) | Ssa.Vec _ -> true
      | _ -> false)
    fn.Ssa.f_args
  || Ssa.fold_instrs
       (fun acc i ->
         acc
         ||
         match i.Ssa.op with
         | Ssa.Vecbuild _ | Ssa.Extract _ | Ssa.Insert _ -> true
         | _ -> false)
       false fn

let execute ?vectorized_override ?engine ?(domains = 1) (case : Kit.case)
    (fn : Ssa.func) ~(scale : int) ~(platform : P.t option) :
    float * Trace.totals * Sim.result option * (unit, string) result * string =
  let w = case.Kit.mk ~scale in
  let compiled = Interp.prepare ?engine fn in
  let queues = match platform with Some p -> p.P.cores | None -> 1 in
  let vectorized =
    match vectorized_override with
    | Some v -> v
    | None -> uses_vector_types fn
  in
  let sim = Option.map (Sim.create ~vectorized) platform in
  let on_group = Option.map (fun s -> fun g -> Sim.consume s g) sim in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues } in
  let totals =
    Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ?on_group
      ~domains ()
  in
  let result = Option.map Sim.result sim in
  let seconds = match result with Some r -> r.Sim.seconds | None -> 0.0 in
  let path = Runtime.path_name (Runtime.plan compiled ~cfg ~domains ()) in
  (seconds, totals, result, w.Kit.check (), path)

let run_version ?vectorized_override ?engine ?domains (case : Kit.case)
    (v : version) ~(scale : int) ~(platform : P.t option) :
    run * Grover_core.Grover.outcome option =
  let fn, outcome = compile_version case v in
  let seconds, totals, sim, valid, path =
    execute ?vectorized_override ?engine ?domains case fn ~scale ~platform
  in
  ( {
      version = v;
      seconds;
      cycles = (match sim with Some r -> r.Sim.cycles | None -> 0.0);
      valid;
      totals;
      sim;
      path;
    },
    outcome )

(** One wall-clock execution of one version on the host (no platform
    simulation), with the execution metadata needed to audit a tuning
    decision. Used by the interpreter-throughput bench and
    [groverc autotune --domains]. *)
type wallclock_run = {
  wc_seconds : float;
  wc_items : int;  (** work-items executed *)
  wc_path : string;  (** "wg-vec", "wg-loop", "fiberless" or "fiber" *)
  wc_domains : int;  (** parallel domains actually used (incl. the caller) *)
  wc_lane_width : int;  (** lane width compiled for (1 = scalar) *)
}

let wallclock ?engine ?(domains = 1) ?(force_fibers = false) ?(reps = 1)
    (case : Kit.case) (v : version) ~(scale : int) : wallclock_run =
  if reps < 1 then invalid_arg "wallclock: reps must be >= 1";
  let fn, _ = compile_version case v in
  let compiled = Interp.prepare ?engine fn in
  let w = case.Kit.mk ~scale in
  let gx, gy, gz = w.Kit.global in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let p = Runtime.plan compiled ~cfg ~force_fibers ~domains () in
  (* Min-of-N: scheduler noise and warm-up only ever make a run slower, so
     the minimum is the honest estimate of the kernel's cost (the tinygrad
     timing idiom) — what the autotune DB should record. *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let (_ : Trace.totals) =
      Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ~domains
        ~force_fibers ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (match w.Kit.check () with
  | Ok () -> ()
  | Error m ->
      raise
        (Harness_error
           (Printf.sprintf "%s (%s, %d domain%s): wrong output: %s" case.Kit.id
              (Runtime.path_name p) p.Runtime.domains_used
              (if p.Runtime.domains_used = 1 then "" else "s")
              m)));
  {
    wc_seconds = !best;
    wc_items = gx * gy * gz;
    wc_path = Runtime.path_name p;
    wc_domains = p.Runtime.domains_used;
    wc_lane_width = Interp.lane_width_of compiled;
  }

(* -- Multi-launch (command queue) submission ---------------------------------- *)

let version_name = function With_lm -> "with_lm" | Without_lm -> "without_lm"

(** One prepared launch of a suite case: compiled kernel, geometry and a
    deterministic workload ([Kit.mk] seeds its PRNG identically per
    (case, scale), so two prepared sets are bit-identical inputs). *)
type prepared_launch = {
  pl_label : string;
  pl_compiled : Interp.compiled;
  pl_cfg : Runtime.launch_config;
  pl_w : Kit.workload;
}

(** Prepare [jobs] independent workloads for every (case, version) pair:
    each job gets its own buffers, but all jobs of a pair share one
    compiled kernel — the shape of a queue fed by many clients. *)
let prepare_launches ?engine ~(jobs : int) ~(scale : int)
    (cases : (Kit.case * version) list) : prepared_launch list =
  List.concat_map
    (fun ((case : Kit.case), v) ->
      let fn, _ = compile_version case v in
      let compiled = Interp.prepare ?engine fn in
      List.init jobs (fun j ->
          let w = case.Kit.mk ~scale in
          {
            pl_label =
              Printf.sprintf "%s/%s#%d" case.Kit.id (version_name v) j;
            pl_compiled = compiled;
            pl_cfg =
              { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 };
            pl_w = w;
          }))
    cases

(** Submit every prepared launch to one out-of-order queue and drain it.
    Returns wall-clock seconds and each launch's labelled completion
    event (carrying totals and the queued/submitted/completed profiling
    timestamps) in submission order. *)
let run_queued_events ?(domains = 0) (pls : prepared_launch list) :
    float * (string * Event.t) list =
  let q = Queue.create ~domains () in
  let t0 = Unix.gettimeofday () in
  let evs =
    List.map
      (fun pl ->
        ( pl.pl_label,
          Queue.enqueue_nd_range q pl.pl_compiled ~cfg:pl.pl_cfg
            ~args:pl.pl_w.Kit.args () ))
      pls
  in
  Queue.finish q;
  let dt = Unix.gettimeofday () -. t0 in
  (dt, evs)

(** [run_queued_events] reduced to per-launch totals. *)
let run_queued ?(domains = 0) (pls : prepared_launch list) :
    float * Trace.totals list =
  let dt, evs = run_queued_events ~domains pls in
  (dt, List.map (fun (_, ev) -> Event.totals ev) evs)

(** The same launch set, one serial [Runtime.launch] at a time — the
    queue's baseline and differential oracle. *)
let run_sequential (pls : prepared_launch list) : float * Trace.totals list =
  let t0 = Unix.gettimeofday () in
  let tots =
    List.map
      (fun pl ->
        Runtime.launch pl.pl_compiled ~cfg:pl.pl_cfg ~args:pl.pl_w.Kit.args
          ~mem:pl.pl_w.Kit.mem ())
      pls
  in
  (Unix.gettimeofday () -. t0, tots)

(** Validate every workload's output against its host reference. *)
let validate_launches (pls : prepared_launch list) : unit =
  List.iter
    (fun pl ->
      match pl.pl_w.Kit.check () with
      | Ok () -> ()
      | Error m ->
          raise
            (Harness_error
               (Printf.sprintf "%s: wrong output: %s" pl.pl_label m)))
    pls

(** Total work-items across a prepared set. *)
let launch_items (pls : prepared_launch list) : int =
  List.fold_left
    (fun acc pl ->
      let x, y, z = pl.pl_cfg.Runtime.global in
      acc + (x * y * z))
    0 pls

(** One sanitized execution of one version of a benchmark: the kernel runs
    under the dynamic race/OOB sanitizer with the case's real work-group
    geometry. A correct kernel must report no findings *and* still produce
    the reference output (the sanitizer only observes). *)
type sanitize_run = {
  sz_findings : Sanitize.finding list;
  sz_check : (unit, string) result;  (** output validation of the sanitized run *)
  sz_local : int * int * int;  (** work-group size the case launches with *)
  sz_fn : Ssa.func;  (** the normalised kernel, for the static passes *)
}

let sanitize_run ?engine ?(scale = 4) (case : Kit.case) (v : version) :
    sanitize_run =
  let fn, _ = compile_version case v in
  let compiled = Interp.prepare ?engine fn in
  let w = case.Kit.mk ~scale in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let _totals, findings =
    Runtime.run_sanitized compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ()
  in
  {
    sz_findings = findings;
    sz_check = w.Kit.check ();
    sz_local = w.Kit.local;
    sz_fn = fn;
  }

(* -- Promotion (the reverse transform) ---------------------------------------- *)

(** Deep-copy a function through marshalling, bumping the global id
    counters past every id in the copy so later synthesised instructions
    cannot collide. Promotion mutates IR in place; callers usually want to
    keep the unpromoted form too. *)
let clone_fn (fn : Ssa.func) : Ssa.func =
  let s = Marshal.to_string (fn : Ssa.func) [] in
  let fn' : Ssa.func = Marshal.from_string s 0 in
  let maxi = Ssa.fold_instrs (fun a (i : Ssa.instr) -> max a i.Ssa.iid) 0 fn' in
  let maxb =
    List.fold_left (fun a (b : Ssa.block) -> max a b.Ssa.bid) 0 fn'.Ssa.blocks
  in
  Ssa.reserve_ids (max maxi maxb);
  fn'

(** A validated promotion of one case's [Without_lm] form back to a
    `__local`-tiled kernel. *)
type promoted = {
  pm_fn : Ssa.func;  (** the promoted kernel (the input is left untouched) *)
  pm_outcome : Grover_promote.Promote.outcome;
  pm_race_free : bool;  (** every local buffer certified [Race_free] *)
  pm_findings : Sanitize.finding list;  (** sanitizer findings (must be []) *)
  pm_check : (unit, string) result;  (** output vs the host reference *)
  pm_totals : Trace.totals;
  pm_local : int * int * int;
}

(** Run the bidirectional loop's insertion direction on [case]: take the
    Grover-removed ([Without_lm]) kernel, promote its reused global loads
    back into `__local` tiles under the case's real work-group geometry,
    then validate the result end to end — static race certification, a
    sanitized execution, and output validation against the host
    reference. *)
let promote_run ?engine ?(scale = 4) (case : Kit.case) : promoted =
  let fn0, _ = compile_version case Without_lm in
  let fn = clone_fn fn0 in
  let w = case.Kit.mk ~scale in
  let outcome, race_free =
    Grover_analysis.Config.with_local (Some w.Kit.local) (fun () ->
        let o = Grover_promote.Promote.run fn in
        let reports, _box, _assumed = Grover_analysis.Race.analyse fn in
        let rf =
          List.for_all
            (fun (r : Grover_analysis.Race.report) ->
              r.Grover_analysis.Race.r_verdict = Grover_analysis.Race.Race_free)
            reports
        in
        (o, rf))
  in
  let compiled = Interp.prepare ?engine fn in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let totals, findings =
    Runtime.run_sanitized compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ()
  in
  {
    pm_fn = fn;
    pm_outcome = outcome;
    pm_race_free = race_free;
    pm_findings = findings;
    pm_check = w.Kit.check ();
    pm_totals = totals;
    pm_local = w.Kit.local;
  }

(** The full experiment for one (benchmark, platform) test case. *)
let compare ?vectorized_override (case : Kit.case) ~(platform : P.t)
    ~(scale : int) : comparison =
  let with_lm, _ =
    run_version ?vectorized_override case With_lm ~scale
      ~platform:(Some platform)
  in
  let without_lm, outcome =
    run_version ?vectorized_override case Without_lm ~scale
      ~platform:(Some platform)
  in
  let grover =
    match outcome with
    | Some o -> o
    | None -> raise (Harness_error "missing Grover outcome")
  in
  {
    case_id = case.Kit.id;
    platform = platform.P.name;
    with_lm;
    without_lm;
    grover;
    normalized = with_lm.seconds /. without_lm.seconds;
  }

(** Classification with the paper's 5% similarity threshold (Table IV). *)
type verdict = Gain | Loss | Similar

let classify ?(threshold = 0.05) (np : float) : verdict =
  if np > 1.0 +. threshold then Gain
  else if np < 1.0 -. threshold then Loss
  else Similar

let verdict_name = function Gain -> "gain" | Loss -> "loss" | Similar -> "similar"
