(** NVD-MM: NVIDIA-SDK-style tiled matrix multiplication. Both input
    matrices are staged in 16x16 local tiles. The paper derives three test
    cases by removing local memory for matrix A only (NVD-MM-A), matrix B
    only (NVD-MM-B), or both (NVD-MM-AB) — selected here through Grover's
    candidate restriction.

    The B matrix is column-accessed with a power-of-two row stride
    (N = 1024 floats = 4 KiB), so without local staging its tile columns
    collide in the same L1 set — the cache-layout effect the paper blames
    for the NVD-MM-B performance loss.

    The output row is clamped with a boundary guard ([row >= N] never
    fires at these launch sizes), the divergent-but-pure diamond the
    real SDK kernels carry — it must run as a masked lane batch, not
    force the scalar sweep. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define TS 16
__kernel void matmul(__global float *C, __global const float *A,
                     __global const float *B, int N, int K) {
  __local float As[TS][TS];
  __local float Bs[TS][TS];
  int lx = get_local_id(0);
  int ly = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  int row = gy;
  if (row >= N) row = N - 1;
  float acc = 0.0f;
  for (int t = 0; t < K / TS; t++) {
    As[ly][lx] = A[gy * K + t * TS + lx];
    Bs[ly][lx] = B[(t * TS + ly) * N + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < TS; k++) {
      acc += As[ly][k] * Bs[k][lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[row * N + gx] = acc;
}
|}

(* C is an m x m slab computed against a B whose physical row stride is a
   full n columns — the slab keeps the interpreter fast while preserving
   the stride that causes the set conflicts. *)
let base_m = 32
let row_stride = 1024
let base_k = 64

let mk_slab ~scale : Kit.workload =
  let m = max 16 (base_m / scale) in
  let k = max 16 (base_k / scale) in
  let n = row_stride in
  let mem = Memory.create () in
  let c = Memory.alloc mem Ssa.F32 (m * n) in
  let a = Memory.alloc mem Ssa.F32 (m * k) in
  let b = Memory.alloc mem Ssa.F32 (k * n) in
  let gen = Kit.float_gen 314 in
  Memory.fill_floats a (fun _ -> gen ());
  Memory.fill_floats b (fun _ -> gen ());
  let check () =
    let av = Memory.to_float_array a
    and bv = Memory.to_float_array b
    and cv = Memory.to_float_array c in
    let ok = ref (Ok ()) in
    (try
       for i = 0 to m - 1 do
         for j = 0 to m - 1 do
           let acc = ref 0.0 in
           for kk = 0 to k - 1 do
             acc := !acc +. (av.((i * k) + kk) *. bv.((kk * n) + j))
           done;
           let got = cv.((i * n) + j) in
           let tol = 1e-6 *. Float.max 1.0 (Float.abs !acc) in
           if Float.abs (got -. !acc) > tol then begin
             ok :=
               Error
                 (Printf.sprintf "NVD-MM: C[%d][%d] expected %.6g got %.6g" i j
                    !acc got);
             raise Exit
           end
         done
       done
     with Exit -> ());
    !ok
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf c; Runtime.Abuf a; Runtime.Abuf b; Runtime.Aint n;
        Runtime.Aint k ];
    global = (m, m, 1);
    local = (16, 16, 1);
    check;
  }

let base_case ~id ~remove ~what : Kit.case =
  {
    Kit.id;
    origin = "NVIDIA SDK (oclMatrixMul)";
    description =
      Printf.sprintf "Tiled matrix multiplication; local memory disabled for %s"
        what;
    dataset =
      Printf.sprintf "C slab %dx%d, K=%d, B row stride %d floats" base_m base_m
        base_k row_stride;
    source;
    kernel = "matmul";
    defines = [];
    remove;
    mk = mk_slab;
  }

let case_a : Kit.case = base_case ~id:"NVD-MM-A" ~remove:(Some [ "As" ]) ~what:"matrix A"
let case_b : Kit.case = base_case ~id:"NVD-MM-B" ~remove:(Some [ "Bs" ]) ~what:"matrix B"

let case_ab : Kit.case =
  base_case ~id:"NVD-MM-AB" ~remove:(Some [ "As"; "Bs" ]) ~what:"both matrices"
