(** NVD-NBody: the NVIDIA SDK all-pairs N-body kernel. Body positions are
    processed in tiles; each tile is staged into local memory and then read
    by every work-item of the group (work-group index component of the
    global index is zero within a tile — shared data, paper Table III).

    The initial position read is guarded by a tail clamp ([me >= n]
    never fires at these launch sizes: the global size equals [n]) — a
    divergent-but-pure diamond that must run as a masked lane batch
    rather than forcing the scalar sweep. *)

open Grover_ir
open Grover_ocl

let source =
  {|
#define TILE 64
__kernel void nbody(__global float4 *accel, __global const float4 *pos,
                    int n, float eps) {
  __local float4 sh[TILE];
  int gid = get_global_id(0);
  int lx = get_local_id(0);
  int me = gid;
  if (me >= n) me = 0;
  float4 my = pos[me];
  float ax = 0.0f;
  float ay = 0.0f;
  float az = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    sh[lx] = pos[t * TILE + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int j = 0; j < TILE; j++) {
      float4 o = sh[j];
      float dx = o.x - my.x;
      float dy = o.y - my.y;
      float dz = o.z - my.z;
      float r2 = dx * dx + dy * dy + dz * dz + eps;
      float inv = rsqrt(r2);
      float inv3 = inv * inv * inv * o.w;
      ax = ax + dx * inv3;
      ay = ay + dy * inv3;
      az = az + dz * inv3;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  accel[gid] = (float4)(ax, ay, az, 0.0f);
}
|}

let base_n = 512
let eps = 0.01

let mk ~scale : Kit.workload =
  let n = max 128 (base_n / scale) in
  let mem = Memory.create () in
  let vec4 = Ssa.Vec (Ssa.F32, 4) in
  let accel = Memory.alloc mem vec4 n in
  let pos = Memory.alloc mem vec4 n in
  let gen = Kit.float_gen 555 in
  Memory.fill_floats pos (fun i -> if i mod 4 = 3 then 1.0 else gen ());
  let check () =
    let p = Memory.to_float_array pos and a = Memory.to_float_array accel in
    let expected = Array.make (n * 4) 0.0 in
    for i = 0 to n - 1 do
      let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
      for j = 0 to n - 1 do
        let dx = p.(4 * j) -. p.(4 * i) in
        let dy = p.((4 * j) + 1) -. p.((4 * i) + 1) in
        let dz = p.((4 * j) + 2) -. p.((4 * i) + 2) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. eps in
        let inv = 1.0 /. sqrt r2 in
        let inv3 = inv *. inv *. inv *. p.((4 * j) + 3) in
        ax := !ax +. (dx *. inv3);
        ay := !ay +. (dy *. inv3);
        az := !az +. (dz *. inv3)
      done;
      expected.(4 * i) <- !ax;
      expected.((4 * i) + 1) <- !ay;
      expected.((4 * i) + 2) <- !az
    done;
    Kit.check_floats ~label:"NVD-NBody" ~expected ~actual:a ~eps:1e-6
  in
  {
    Kit.mem;
    args =
      [ Runtime.Abuf accel; Runtime.Abuf pos; Runtime.Aint n; Runtime.Afloat eps ];
    global = (n, 1, 1);
    local = (64, 1, 1);
    check;
  }

let case : Kit.case =
  {
    Kit.id = "NVD-NBody";
    origin = "NVIDIA SDK (oclNbody)";
    description = "All-pairs N-body; position tiles staged in local memory";
    dataset = Printf.sprintf "%d bodies (float4)" base_n;
    source;
    kernel = "nbody";
    defines = [];
    remove = None;
    mk;
  }
