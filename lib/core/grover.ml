(** Grover — the compiler pass that disables local memory usage in OpenCL
    kernels (Fang, Sips, Jääskeläinen, Varbanescu; ICPP 2014).

    [run] takes a normalised kernel (see {!Grover_passes.Pipeline.normalize})
    and rewrites every selected software-cache use of local memory into
    direct global loads:

    + select candidates and classify GL/LS/LL operations ({!Access});
    + determine per-dimension data indexes ({!Affine_index}, {!Index});
    + create and solve the linear system for the thread-index
      correspondence ({!Solve});
    + duplicate the GL index chain with the solution substituted, insert
      the nGL, and replace the LL's uses ({!Rewrite});
    + clean up: DCE removes the dead staging code, and redundant local
      barriers are removed.

    Candidates that do not fit the software-cache pattern are left intact
    and reported with the reason, mirroring the paper's §VI-D limitations. *)

open Grover_ir
module Passes = Grover_passes
module Pass = Grover_passes.Pass
module Diag = Grover_support.Diag

type outcome = {
  transformed : string list;  (** candidate names rewritten *)
  rejected : (string * string) list;  (** candidate name, reason *)
  reports : Report.entry list;
  barriers_removed : int;
}

let no_candidates = { transformed = []; rejected = []; reports = []; barriers_removed = 0 }

(* Table-III-style outcomes become structured remarks on the pass-manager
   context instead of ad-hoc strings. *)
let emit_remarks (ctx : Pass.ctx option) (fn : Ssa.func) (o : outcome) : unit =
  match ctx with
  | None -> ()
  | Some c ->
      List.iter
        (fun name ->
          Pass.remarkf c ~pass:"grover" "%s: disabled local memory usage of '%s'"
            fn.Ssa.f_name name)
        o.transformed;
      List.iter
        (fun (name, reason) ->
          Pass.remarkf c ~pass:"grover" "%s: kept local buffer '%s': %s"
            fn.Ssa.f_name name reason)
        o.rejected;
      if o.barriers_removed > 0 then
        Pass.remarkf c ~pass:"grover" "%s: removed %d redundant local barrier%s"
          fn.Ssa.f_name o.barriers_removed
          (if o.barriers_removed = 1 then "" else "s")

(** Transform [fn] in place.

    @param only restrict the rewrite to local buffers with these source
    names (e.g. [["As"]] to reproduce NVD-MM-A). Buffers not selected are
    preserved untouched and do not appear in [rejected].
    @param ctx pass-manager context: Grover's internal cleanup pipelines are
    instrumented through it and the per-candidate outcomes are emitted as
    [remark] diagnostics. *)
let run ?(only : string list option) ?(ctx : Pass.ctx option) (fn : Ssa.func) :
    outcome =
  Atom.assign_phi_names fn;
  let selected name =
    match only with None -> true | Some names -> List.mem name names
  in
  let classified = Access.candidates fn in
  let plans, rejected =
    List.fold_left
      (fun (plans, rejected) c ->
        match c with
        | Error r ->
            if selected r.Access.rej_name then
              (plans, (r.Access.rej_name, r.Access.reason) :: rejected)
            else (plans, rejected)
        | Ok cand ->
            if not (selected cand.Access.cand_name) then (plans, rejected)
            else (
              match Rewrite.analyse fn cand with
              | Ok plan -> (plan :: plans, rejected)
              | Error e ->
                  (plans, (e.Rewrite.err_candidate, e.Rewrite.err_reason) :: rejected)))
      ([], []) classified
  in
  let plans = List.rev plans and rejected = List.rev rejected in
  if plans = [] then begin
    let o = { no_candidates with rejected } in
    emit_remarks ctx fn o;
    o
  end
  else begin
    let applied = List.map (fun plan -> (plan, Rewrite.apply fn plan)) plans in
    (* The staging code is now dead; remove it, then the barriers that only
       guarded it. *)
    Passes.Pipeline.cleanup ?ctx fn;
    let barriers_removed = Rewrite.remove_local_barriers fn in
    Passes.Pipeline.cleanup ?ctx fn;
    Verify.run fn;
    let reports =
      List.map
        (fun (plan, ngls) ->
          Report.of_plan ~kernel:fn.Ssa.f_name ~barriers_removed plan ~ngls)
        applied
    in
    let o =
      {
        transformed =
          List.map (fun (p, _) -> p.Rewrite.cand.Access.cand_name) applied;
        rejected;
        reports;
        barriers_removed;
      }
    in
    emit_remarks ctx fn o;
    o
  end

(** Compile + normalise + transform: the whole Fig. 9 pipeline on source.
    Returns one (function, outcome) per kernel in the source. *)
let run_on_source ?defines ?only ?ctx (src : string) : (Ssa.func * outcome) list =
  Lower.compile ?defines src
  |> List.map (fun fn ->
         Passes.Pipeline.normalize ?ctx fn;
         let o = run ?only ?ctx fn in
         (fn, o))

(** Grover as a registered pass ("grover"), so custom [-passes=...]
    pipelines can place the transformation anywhere. The per-candidate
    outcome is reported through the context as remarks; the boolean is
    "did anything get rewritten". *)
let pass : Pass.t =
  Pass.register
    (Pass.make "grover"
       ~descr:"disable local memory usage (the paper's transformation)"
       (fun ctx fn ->
         let o = run ~ctx fn in
         o.transformed <> [] || o.barriers_removed > 0))
