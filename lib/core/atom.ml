(** Atoms: the IR values Grover's index analysis treats as opaque symbols.

    Per paper §IV-B, index expression trees bottom out at four leaf kinds —
    call instructions, constants, function arguments, and phi nodes.
    Constants fold into affine coefficients; the other three become atoms.
    The thread-index coordinates ([get_local_id(d)] calls) are the special
    atoms that act as unknowns of the linear system. *)

open Grover_ir
open Ssa

type t = value
(** Invariant: an [Arg _], or a [Vinstr] whose opcode is [Call _] or
    [Phi _]. *)

let is_atom_value (v : value) : bool =
  match v with
  | Arg _ -> true
  | Vinstr { op = Call _ | Phi _; _ } -> true
  | Cint _ | Cfloat _ | Vinstr _ -> false

let compare (a : t) (b : t) : int =
  let key = function
    | Arg x -> (0, x.a_index)
    | Vinstr i -> (1, i.iid)
    | Cint _ | Cfloat _ -> invalid_arg "Atom.compare: constant is not an atom"
  in
  Stdlib.compare (key a) (key b)

(** Which [get_local_id] dimension an atom is, if any. *)
let lid_dim (v : t) : int option =
  match v with
  | Vinstr { op = Call { callee = "get_local_id"; args = [ Cint (_, d) ]; _ }; _ }
    ->
      Some d
  | _ -> None

let is_lid (v : t) : bool = lid_dim v <> None

(* Human-readable loop-variable names for phi atoms, assigned per kernel by
   [assign_phi_names]; reports then print "i"/"j" like the paper's Table III
   rather than internal instruction ids. Domain-local: the compile cache runs
   Grover on distinct kernels concurrently over the domain pool, and this
   table is scoped to one kernel at a time. *)
let phi_names_key : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let phi_names () : (int, string) Hashtbl.t = Domain.DLS.get phi_names_key

let assign_phi_names (fn : func) : unit =
  let phi_names = phi_names () in
  Hashtbl.reset phi_names;
  let pool = [ "i"; "j"; "k"; "m"; "n2"; "p"; "q" ] in
  let next = ref 0 in
  iter_instrs
    (fun i ->
      match i.op with
      | Phi { p_ty; _ } when ty_is_integer p_ty ->
          let nm =
            if !next < List.length pool then List.nth pool !next
            else Printf.sprintf "i%d" !next
          in
          incr next;
          Hashtbl.replace phi_names i.iid nm
      | _ -> ())
    fn

(** Canonical short names matching the paper's notation: lx/ly/lz for local
    thread ids, wx/wy/wz for work-group ids, gx/gy/gz for global ids. *)
let name (v : t) : string =
  let dim_letter d = match d with 0 -> "x" | 1 -> "y" | 2 -> "z" | _ -> string_of_int d in
  match v with
  | Arg a -> a.a_name
  | Vinstr { op = Call { callee; args = [ Cint (_, d) ]; _ }; _ } -> (
      match callee with
      | "get_local_id" -> "l" ^ dim_letter d
      | "get_group_id" -> "w" ^ dim_letter d
      | "get_global_id" -> "g" ^ dim_letter d
      | "get_local_size" -> "ls" ^ dim_letter d
      | "get_global_size" -> "gs" ^ dim_letter d
      | "get_num_groups" -> "ng" ^ dim_letter d
      | c -> Printf.sprintf "%s(%d)" c d)
  | Vinstr ({ op = Phi _; _ } as i) -> (
      match Hashtbl.find_opt (phi_names ()) i.iid with
      | Some n -> n
      | None -> Printf.sprintf "phi%d" i.iid)
  | Vinstr ({ op = Call { callee; _ }; _ } as i) ->
      Printf.sprintf "%s.%d" callee i.iid
  | Vinstr i -> Printf.sprintf "v%d" i.iid
  | Cint _ | Cfloat _ -> "<const>"

let pp ppf v = Format.pp_print_string ppf (name v)

module Form = Grover_support.Affine.Make (struct
  type nonrec t = t

  let compare = compare
  let pp = pp
end)

module Form_space = struct
  type t = Form.t

  let zero = Form.zero
  let add = Form.add
  let scale = Form.scale
end

module Solver = Grover_support.Linsolve.Make (Form_space)
