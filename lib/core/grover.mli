(** Grover — the compiler pass that disables local memory usage in OpenCL
    kernels (Fang, Sips, Jääskeläinen, Varbanescu; ICPP 2014).

    The input function must be in normal form
    (see {!Grover_passes.Pipeline.normalize}): index chains bottoming out at
    calls, constants, arguments and phi nodes. The pass mutates the function
    in place; candidates that do not fit the software-cache pattern are left
    intact and reported with a reason. *)

type outcome = {
  transformed : string list;  (** local buffers whose usage was disabled *)
  rejected : (string * string) list;  (** (buffer, reason) for the rest *)
  reports : Report.entry list;  (** one Table-III-style entry per buffer *)
  barriers_removed : int;
}

val run :
  ?only:string list ->
  ?ctx:Grover_passes.Pass.ctx ->
  Grover_ir.Ssa.func ->
  outcome
(** [run ?only ?ctx fn] disables local memory usage in [fn].

    @param only restrict the rewrite to local buffers with these source
    names (e.g. [["As"]] reproduces the paper's NVD-MM-A case). Unselected
    buffers are preserved untouched and do not appear in [rejected].
    @param ctx pass-manager context: internal cleanup pipelines are
    instrumented through it and per-candidate outcomes (the paper's
    Table-III "why rejected" reasons) are emitted as [remark]
    diagnostics. *)

val run_on_source :
  ?defines:(string * string) list ->
  ?only:string list ->
  ?ctx:Grover_passes.Pass.ctx ->
  string ->
  (Grover_ir.Ssa.func * outcome) list
(** The whole paper-Fig.-9 pipeline: compile OpenCL C, normalise, transform.
    Returns one (function, outcome) pair per kernel in the source. *)

val pass : Grover_passes.Pass.t
(** Grover registered as the pass ["grover"], for custom pipelines. *)
