(** Trace-driven performance simulation.

    A simulator instance consumes per-work-group traces (streamed from
    {!Grover_ocl.Runtime.launch}'s [on_group] callback) and charges cycles
    to the hardware queue the group ran on:

    - CPU/MIC: work-items of a group execute serially on one core; every
      memory access (global, local and private alike — local memory is
      ordinary memory on cache-only processors) walks that core's L1/L2 and
      the shared LLC; barriers cost a fiber switch per work-item.
    - GPU: work-items execute in warps; the k-th global access of a warp's
      lanes coalesces into as many transactions as it touches distinct
      address segments; local memory is a banked scratch-pad with conflict
      serialisation; barriers are hardware-cheap.

    The [wg_stats] handed to {!consume} is a pooled buffer owned by the
    runtime — everything needed from it is charged before returning, and
    no reference to it (or its event arrays) is retained. Per-lane event
    index buffers are likewise pooled in the simulator instance and reused
    across work-groups.

    The total is the maximum over queues (cores run concurrently). *)

open Grover_ocl
module P = Platform
module Varray = Grover_support.Varray

type queue_state = {
  l1 : Cache.t option;
  l2 : Cache.t option;
  mutable q_cycles : float;
}

type breakdown = {
  mutable compute : float;
  mutable memory : float;
  mutable barrier : float;
  mutable spm : float;
}

type t = {
  plat : P.t;
  simd : int;  (** effective implicit-vectorisation width for this kernel *)
  queues : queue_state array;
  shared : Cache.t option;  (** LLC (CPU) or device L2 (GPU) *)
  bd : breakdown;
  mutable groups : int;
  mutable lanes : int Varray.t array;
      (** pooled per-lane event-index streams, reused across groups *)
}

(** [vectorized] — whether the kernel already uses explicit vector types.
    Vendor CPU compilers then disable implicit work-item vectorisation
    (Intel's rule), so work-items run scalar and lane coalescing is lost. *)
let create ?(vectorized = false) (plat : P.t) : t =
  let mk_queue () =
    match plat.P.mem with
    | P.Cpu_mem m ->
        {
          l1 = Some (Cache.create m.P.l1);
          l2 = Option.map Cache.create m.P.l2;
          q_cycles = 0.0;
        }
    | P.Gpu_mem g ->
        { l1 = Option.map Cache.create g.P.l1g; l2 = None; q_cycles = 0.0 }
  in
  let shared =
    match plat.P.mem with
    | P.Cpu_mem m -> Option.map Cache.create m.P.llc
    | P.Gpu_mem g -> Option.map Cache.create g.P.l2g
  in
  {
    plat;
    simd = (if vectorized then 1 else max 1 plat.P.simd);
    queues = Array.init plat.P.cores (fun _ -> mk_queue ());
    shared;
    bd = { compute = 0.0; memory = 0.0; barrier = 0.0; spm = 0.0 };
    groups = 0;
    lanes = [||];
  }

(* -- CPU engine -------------------------------------------------------------- *)

let cpu_access (t : t) (q : queue_state) (m : P.cpu_mem) ~addr ~bytes ~is_write
    : float =
  let l1 = Option.get q.l1 in
  let missed = Cache.access l1 ~addr ~bytes ~is_write in
  if missed = 0 then float_of_int m.P.l1.Cache.latency
  else begin
    (* Walk outward once per missed line. *)
    let cost = ref 0.0 in
    for _ = 1 to missed do
      let level2 =
        match q.l2 with
        | Some l2 ->
            if Cache.access l2 ~addr ~bytes:1 ~is_write > 0 then None
            else Some (float_of_int (match m.P.l2 with Some c -> c.Cache.latency | None -> 0))
        | None -> None
      in
      match level2 with
      | Some lat -> cost := !cost +. lat
      | None -> (
          match t.shared with
          | Some llc ->
              if Cache.access llc ~addr ~bytes:1 ~is_write > 0 then
                cost := !cost +. float_of_int m.P.mem_latency
              else
                cost :=
                  !cost
                  +. float_of_int
                       (match m.P.llc with Some c -> c.Cache.latency | None -> 0)
          | None -> cost := !cost +. float_of_int m.P.mem_latency)
    done;
    !cost
  end

(* Split the group's event stream into per-lane streams of event indices
   (index order within a lane is execution order). The per-lane buffers are
   pooled in [t] and reused for every group. Shared by the CPU SIMD-batch
   and GPU warp engines. *)
let lane_streams (t : t) (s : Trace.wg_stats) : int Varray.t array =
  let n = s.Trace.wg_size in
  if Array.length t.lanes < n then begin
    let old = t.lanes in
    t.lanes <-
      Array.init n (fun l ->
          if l < Array.length old then old.(l) else Varray.create ~dummy:0)
  end;
  for l = 0 to n - 1 do
    Varray.clear t.lanes.(l)
  done;
  for k = 0 to s.Trace.n_events - 1 do
    let wi = Trace.ev_wi s k in
    if wi >= 0 && wi < n then Varray.push t.lanes.(wi) k
  done;
  t.lanes

let consume_cpu (t : t) (m : P.cpu_mem) (s : Trace.wg_stats) : unit =
  let q = t.queues.(s.Trace.queue mod Array.length t.queues) in
  let c = t.plat.P.costs in
  let simd = t.simd in
  let compute =
    ((float_of_int s.Trace.int_ops *. c.P.c_int)
    +. (float_of_int s.Trace.float_ops *. c.P.c_float)
    +. (float_of_int s.Trace.special_ops *. c.P.c_special)
    +. (float_of_int s.Trace.branches *. c.P.c_branch))
    /. float_of_int simd
  in
  let dispatch = float_of_int s.Trace.wg_size *. c.P.c_wi_dispatch /. float_of_int simd in
  let barrier =
    float_of_int s.Trace.barrier_rounds
    *. (c.P.c_barrier_round +. (float_of_int s.Trace.wg_size *. c.P.c_barrier_wi))
  in
  (* Vendor CPU runtimes execute [simd] work-items in lockstep vector lanes;
     the k-th access of a lane batch coalesces into one access per distinct
     cache line (an 8-wide unit-stride load is one hardware access). *)
  let line = m.P.l1.Cache.line_bytes in
  let lanes = lane_streams t s in
  let memory = ref 0.0 in
  let n_batches = (s.Trace.wg_size + simd - 1) / simd in
  for b = 0 to n_batches - 1 do
    let first = b * simd in
    let last = min (first + simd) s.Trace.wg_size - 1 in
    let depth = ref 0 in
    for l = first to last do
      depth := max !depth (Varray.length lanes.(l))
    done;
    for k = 0 to !depth - 1 do
      let uniq : (int, bool) Hashtbl.t = Hashtbl.create 8 in
      for l = first to last do
        if k < Varray.length lanes.(l) then begin
          let ei = Varray.get lanes.(l) k in
          let addr = Trace.ev_addr s ei in
          let is_write = Trace.ev_is_write s ei in
          let l0 = addr / line in
          let l1 = (addr + Trace.ev_bytes s ei - 1) / line in
          for ln = l0 to l1 do
            let w = Option.value ~default:false (Hashtbl.find_opt uniq ln) in
            Hashtbl.replace uniq ln (w || is_write)
          done
        end
      done;
      Hashtbl.iter
        (fun ln is_write ->
          memory :=
            !memory
            +. cpu_access t q m ~addr:(ln * line) ~bytes:1 ~is_write)
        uniq
    done
  done;
  (* Accesses pipeline on real cores; charge a fraction of pure latency. *)
  let memory = !memory *. 0.35 in
  q.q_cycles <- q.q_cycles +. compute +. dispatch +. barrier +. memory;
  t.bd.compute <- t.bd.compute +. compute +. dispatch;
  t.bd.barrier <- t.bd.barrier +. barrier;
  t.bd.memory <- t.bd.memory +. memory

(* -- GPU engine --------------------------------------------------------------- *)

let consume_gpu (t : t) (g : P.gpu_mem) (s : Trace.wg_stats) : unit =
  let q = t.queues.(s.Trace.queue mod Array.length t.queues) in
  let c = t.plat.P.costs in
  let warp = max 1 t.plat.P.warp in
  let compute =
    ((float_of_int s.Trace.int_ops *. c.P.c_int)
    +. (float_of_int s.Trace.float_ops *. c.P.c_float)
    +. (float_of_int s.Trace.special_ops *. c.P.c_special)
    +. (float_of_int s.Trace.branches *. c.P.c_branch))
    /. float_of_int warp
  in
  let barrier = float_of_int s.Trace.barrier_rounds *. c.P.c_barrier_round in
  (* Split events into per-lane streams, warp by warp. *)
  let n_warps = (s.Trace.wg_size + warp - 1) / warp in
  let lanes = lane_streams t s in
  let memory = ref 0.0 and spm = ref 0.0 in
  for w = 0 to n_warps - 1 do
    let first = w * warp in
    let last = min (first + warp) s.Trace.wg_size - 1 in
    let depth = ref 0 in
    for l = first to last do
      depth := max !depth (Varray.length lanes.(l))
    done;
    for k = 0 to !depth - 1 do
      (* Gather the k-th access of each lane of this warp. *)
      let evs = ref [] in
      for l = first to last do
        if k < Varray.length lanes.(l) then
          evs := Varray.get lanes.(l) k :: !evs
      done;
      let evs = !evs in
      let local_evs, rest =
        List.partition (fun ei -> Trace.ev_space s ei = Grover_ir.Ssa.Local) evs
      in
      let global_evs =
        List.filter
          (fun ei ->
            match Trace.ev_space s ei with
            | Grover_ir.Ssa.Global | Grover_ir.Ssa.Constant -> true
            | _ -> false)
          rest
      in
      (* Coalescing: distinct aligned segments among the lanes. *)
      if global_evs <> [] then begin
        let segs = Hashtbl.create 8 in
        List.iter
          (fun ei ->
            let addr = Trace.ev_addr s ei in
            let s0 = addr / g.P.segment in
            let s1 = (addr + Trace.ev_bytes s ei - 1) / g.P.segment in
            for seg = s0 to s1 do
              Hashtbl.replace segs seg (Trace.ev_is_write s ei)
            done)
          global_evs;
        Hashtbl.iter
          (fun seg is_write ->
            let addr = seg * g.P.segment in
            (* A per-CU L1 that caches global loads (Tahiti) absorbs
               repeated and broadcast transactions. *)
            let l1_hit =
              match q.l1 with
              | Some l1 when not is_write ->
                  Cache.access l1 ~addr ~bytes:1 ~is_write = 0
              | _ -> false
            in
            if l1_hit then
              memory :=
                !memory
                +. float_of_int
                     (match g.P.l1g with Some c -> c.Cache.latency | None -> 4)
            else begin
              let extra =
                match t.shared with
                | Some l2 ->
                    if Cache.access l2 ~addr ~bytes:1 ~is_write > 0 then
                      float_of_int g.P.mem_latency
                    else 0.0
                | None -> float_of_int g.P.mem_latency
              in
              memory := !memory +. g.P.trans_cost +. extra
            end)
          segs
      end;
      (* Scratch-pad: serialisation by the worst-loaded bank. *)
      if local_evs <> [] then begin
        let bank_counts = Hashtbl.create 8 in
        let by_addr = Hashtbl.create 8 in
        List.iter
          (fun ei ->
            let addr = Trace.ev_addr s ei in
            let is_write = Trace.ev_is_write s ei in
            (* Lanes reading the same address broadcast. *)
            if not (Hashtbl.mem by_addr (addr, is_write)) then begin
              Hashtbl.replace by_addr (addr, is_write) ();
              let bank = addr / 4 mod g.P.banks in
              Hashtbl.replace bank_counts bank
                (1 + Option.value ~default:0 (Hashtbl.find_opt bank_counts bank))
            end)
          local_evs;
        let conflict = Hashtbl.fold (fun _ n acc -> max n acc) bank_counts 1 in
        spm := !spm +. (g.P.spm_cost *. float_of_int conflict)
      end
    done
  done;
  q.q_cycles <- q.q_cycles +. compute +. barrier +. !memory +. !spm;
  t.bd.compute <- t.bd.compute +. compute;
  t.bd.barrier <- t.bd.barrier +. barrier;
  t.bd.memory <- t.bd.memory +. !memory;
  t.bd.spm <- t.bd.spm +. !spm

let consume (t : t) (s : Trace.wg_stats) : unit =
  t.groups <- t.groups + 1;
  match t.plat.P.mem with
  | P.Cpu_mem m -> consume_cpu t m s
  | P.Gpu_mem g -> consume_gpu t g s

(* -- Results -------------------------------------------------------------------- *)

type result = {
  r_platform : string;
  cycles : float;  (** critical-path cycles (max over queues) *)
  seconds : float;
  per_queue : float array;
  r_compute : float;
  r_memory : float;
  r_barrier : float;
  r_spm : float;
  r_groups : int;
}

let result (t : t) : result =
  let per_queue = Array.map (fun q -> q.q_cycles) t.queues in
  let cycles = Array.fold_left max 0.0 per_queue in
  {
    r_platform = t.plat.P.name;
    cycles;
    seconds = cycles /. (t.plat.P.freq_ghz *. 1e9);
    per_queue;
    r_compute = t.bd.compute;
    r_memory = t.bd.memory;
    r_barrier = t.bd.barrier;
    r_spm = t.bd.spm;
    r_groups = t.groups;
  }
